package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/layout"
)

// APIError is a non-2xx daemon response decoded into a typed error: the
// HTTP status, the machine-stable error class from the wire contract, and
// the Retry-After hint (zero when absent). Check it with errors.As.
type APIError struct {
	Status     int
	Class      string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Class != "" {
		return fmt.Sprintf("%s (%d %s)", e.Message, e.Status, e.Class)
	}
	return fmt.Sprintf("%s (%d)", e.Message, e.Status)
}

// Client drives a running dicheckd over its /v1 HTTP API. It is the
// library behind `dicheck -serve` and the load/integration harnesses;
// methods map one-to-one onto the daemon's endpoints and follow one
// shape: context first, Session* verbs for per-session calls, exported
// typed request/response structs.
//
// Every call is bounded by AttemptTimeout and retried up to MaxRetries
// times with exponential backoff and jitter when it is safe to: GETs and
// DELETEs retry on connection errors and on 429/503; POSTs retry only on
// 429/503 carrying a Retry-After header — the daemon sets it exactly on
// the rejections that happen before any state changes, so a retried POST
// can never double-apply.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8347". The /v1
	// prefix is the client's business, not the caller's.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient; per-call deadlines come
	// from AttemptTimeout, not the http.Client timeout.
	HTTPClient *http.Client
	// AttemptTimeout bounds each individual attempt (default 5m — cold
	// checks of large designs are slow on small machines).
	AttemptTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (default 3;
	// negative disables retries).
	MaxRetries int
	// RetryBase is the first backoff step; it doubles per retry and gets
	// ±50% jitter (default 100ms).
	RetryBase time.Duration
}

// NewClient creates a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: base}
}

// SessionCreate opens a session and returns its id plus the initial cold
// report.
func (c *Client) SessionCreate(ctx context.Context, req CreateRequest) (*CreateResponse, error) {
	var resp CreateResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SessionList returns every live session.
func (c *Client) SessionList(ctx context.Context) ([]SessionInfo, error) {
	var resp []SessionInfo
	if err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// SessionFind returns the id of the live session with the given name
// ("", false when absent; the lowest id wins if names collide).
func (c *Client) SessionFind(ctx context.Context, name string) (string, bool, error) {
	infos, err := c.SessionList(ctx)
	if err != nil {
		return "", false, err
	}
	for _, info := range infos {
		if info.Name == name {
			return info.ID, true, nil
		}
	}
	return "", false, nil
}

// SessionEdit applies one edit batch to a session.
func (c *Client) SessionEdit(ctx context.Context, id string, edits []layout.Edit) (*EditResponse, error) {
	var resp EditResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/edits", EditRequest{Edits: edits}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SessionReport fetches the session's current full report, forcing any
// pending edits through a recheck first.
func (c *Client) SessionReport(ctx context.Context, id string) (*Report, error) {
	var resp Report
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/report", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SessionReportSince fetches the session's report as a delta against the
// given base fingerprint. An unknown or evicted fingerprint (or "") does
// not fail: the daemon answers with a reset delta carrying the complete
// violation list, so the caller always converges — check Reset before
// patching.
func (c *Client) SessionReportSince(ctx context.Context, id, since string) (*ReportDelta, error) {
	var resp ReportDelta
	path := "/v1/sessions/" + id + "/report?since=" + url.QueryEscape(since)
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SessionReportApply refreshes a cached report over the delta path: only
// what changed since base's fingerprint crosses the wire, and the full
// current report is reconstructed locally (ApplyDelta — byte-identical
// to what SessionReport would have returned). A nil base, or a base the
// daemon no longer remembers, transparently degrades to a reset. The
// returned delta is what actually crossed the wire; its WireBytes and
// Reset fields are how callers observe the saving.
func (c *Client) SessionReportApply(ctx context.Context, id string, base *Report) (*Report, *ReportDelta, error) {
	since := ""
	if base != nil {
		since = base.Fingerprint
	}
	d, err := c.SessionReportSince(ctx, id, since)
	if err != nil {
		return nil, nil, err
	}
	rep, err := ApplyDelta(base, d)
	if err != nil {
		return nil, nil, err
	}
	return rep, d, nil
}

// SessionStats fetches the session's service and engine counters.
func (c *Client) SessionStats(ctx context.Context, id string) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SessionInject arms the fault-injection hook on a session (daemon must
// run with test hooks enabled).
func (c *Client) SessionInject(ctx context.Context, id string, req InjectRequest) error {
	return c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/inject", req, nil)
}

// SessionDelete removes a session.
func (c *Client) SessionDelete(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, nil)
}

// ServerStats fetches the daemon-wide gauges and counters.
func (c *Client) ServerStats(ctx context.Context) (*ServerStatsResponse, error) {
	var resp ServerStatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SnapshotAll asks the daemon to snapshot every session to its state
// directory immediately and reports what the sweep wrote.
func (c *Client) SnapshotAll(ctx context.Context) (*SnapshotSweepResponse, error) {
	var resp SnapshotSweepResponse
	if err := c.do(ctx, http.MethodPost, "/v1/snapshot", struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do runs one JSON call with bounded retries. Non-2xx responses decode
// the daemon's error payload into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = buf
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	idempotent := method == http.MethodGet || method == http.MethodDelete

	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.attempt(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= retries || ctx.Err() != nil {
			return lastErr
		}
		wait, retryable := retryDelay(err, idempotent, base, attempt)
		if !retryable {
			return lastErr
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// retryDelay decides whether err warrants another attempt and how long to
// back off first.
func retryDelay(err error, idempotent bool, base time.Duration, attempt int) (time.Duration, bool) {
	backoff := base << attempt
	// ±50% jitter so synchronized clients don't stampede in lockstep.
	backoff = backoff/2 + time.Duration(rand.Int63n(int64(backoff)+1))
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		// 429/503 are issued before any state changes; the Retry-After
		// header is the daemon's explicit safe-to-retry signal, so even
		// POSTs retry on it.
		if (apiErr.Status == http.StatusTooManyRequests || apiErr.Status == http.StatusServiceUnavailable) &&
			(idempotent || apiErr.RetryAfter > 0) {
			if apiErr.RetryAfter > backoff {
				backoff = apiErr.RetryAfter
			}
			return backoff, true
		}
		return 0, false
	}
	// Transport-level failure (connection refused/reset, EOF): the request
	// may or may not have reached the daemon, so only idempotent methods
	// retry automatically.
	return backoff, idempotent
}

// wireSized is implemented by response types that record their encoded
// payload size (Report, ReportDelta) — the measurement behind the load
// harness's payload-bytes histograms.
type wireSized interface{ setWireBytes(int64) }

// attempt runs a single HTTP round trip under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any) error {
	timeout := c.AttemptTimeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Message: resp.Status}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			apiErr.Message = fmt.Sprintf("%s %s: %s", method, path, eb.Error)
			apiErr.Class = eb.Class
		} else {
			apiErr.Message = fmt.Sprintf("%s %s: %s", method, path, resp.Status)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return err
	}
	if ws, ok := out.(wireSized); ok {
		ws.setWireBytes(int64(len(data)))
	}
	return nil
}
