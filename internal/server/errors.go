package server

import (
	"fmt"
	"net/http"
)

// Error classes of the wire error contract. Every non-2xx response body
// is {"error": "...", "class": "..."}; the class is machine-stable (the
// message is not) and is what clients and the load harness key their
// histograms on.
//
//	bad_request  400  malformed JSON, unknown tech/metric, invalid edit
//	not_found    404  no such session (never existed, or fully evicted)
//	gone         410  session evicted or deleted while the request raced it
//	too_large    413  request body over the -max-body cap
//	failed       422  the check itself failed (structural design error)
//	overload     429  admission queue full — back off and retry
//	poisoned     500  session quarantined after a recovered panic
//	panic        500  this request's handler panicked (and was recovered)
//	timeout      503  deadline expired (in queue or mid-check) — retry later
const (
	ClassBadRequest = "bad_request"
	ClassNotFound   = "not_found"
	ClassGone       = "gone"
	ClassTooLarge   = "too_large"
	ClassFailed     = "failed"
	ClassOverload   = "overload"
	ClassPoisoned   = "poisoned"
	ClassPanic      = "panic"
	ClassTimeout    = "timeout"
)

// svcError is a service error carrying its HTTP status and wire class.
type svcError struct {
	code  int
	class string
	err   error
}

func (e *svcError) Error() string { return e.err.Error() }
func (e *svcError) Unwrap() error { return e.err }

// errf builds a svcError from a format string.
func errf(code int, class, format string, args ...any) *svcError {
	return &svcError{code: code, class: class, err: fmt.Errorf(format, args...)}
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class,omitempty"`
}

// retryAfterSeconds is the Retry-After hint on 429/503 rejections. The
// rejections happen before any session state changes, so the header
// doubles as the safe-to-retry signal the client's POST retry needs.
const retryAfterSeconds = 1

func writeErr(w http.ResponseWriter, code int, err error) {
	writeErrClass(w, code, "", err)
}

func writeErrClass(w http.ResponseWriter, code int, class string, err error) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds))
	}
	writeJSON(w, code, errorBody{Error: err.Error(), Class: class})
}

// writeSvcErr renders a svcError; other errors default to 500/panic-free
// generic form with the given fallback code.
func writeSvcErr(w http.ResponseWriter, err *svcError) {
	writeErrClass(w, err.code, err.class, err.err)
}
