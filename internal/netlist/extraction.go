package netlist

import (
	"sort"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// ConnItem is one piece of connectable or checkable geometry produced by
// extraction, in chip coordinates. Interconnect elements and device
// terminals carry a net; device support geometry (contact cuts, implants,
// buried windows) carries NoNet.
type ConnItem struct {
	Layer  tech.LayerID
	Bounds geom.Rect
	Reg    geom.Region
	Net    NetID // NoNet for unassignable geometry (gate, implant, cut)
	Dev    int   // index into Netlist.Devices; -1 for interconnect
	Sym    *layout.Symbol
	Elem   int    // element index within Sym (interconnect only, else -1)
	Path   string // instance path
}

// NoNet marks geometry that cannot be assigned to a net (the paper: "the
// gate or implant of a transistor cannot be assigned to a net").
const NoNet NetID = -1

// Keepout is a device-exported protected region (chip coordinates).
type Keepout struct {
	Dev       int
	Reg       geom.Region
	Bounds    geom.Rect
	Clearance int64 // 0 = overlap forbidden, >0 = spacing required
}

// Extraction is the full result of netlist extraction, retained so the
// checker's connection and interaction stages reuse the same geometry and
// net assignment instead of re-deriving them.
type Extraction struct {
	Netlist *Netlist
	Items   []ConnItem

	// Gates are MOS channel keepouts (contact cuts must not land on them,
	// Figure 7).
	Gates []Keepout

	// BaseKeepouts are bipolar base regions that isolation must stay clear
	// of (Figure 6a).
	BaseKeepouts []Keepout

	// IllegalPairs indexes Item pairs that overlap on the same layer
	// without being skeletally connected AND end up on different nets —
	// the illegal connections of Figures 11/15.
	IllegalPairs [][2]int
}

// ExtractFull runs extraction and returns both the netlist and the
// artifacts the checker's later stages need.
func ExtractFull(d *layout.Design, tc *tech.Technology) (*Extraction, []Issue, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	var issues []Issue
	var foots []footprint
	var items []ConnItem
	var devices []DeviceUse
	var pendingUnions [][2]int
	ex := &Extraction{}
	infoCache := make(map[*layout.Symbol]*device.Info)

	// Per-symbol support geometry (layer regions not covered by terminal
	// footprints — contact cuts, implants, buried windows, and interior
	// device geometry like a resistor's body middle), computed once per
	// definition and transformed per instance.
	type layerReg struct {
		layer tech.LayerID
		reg   geom.Region
	}
	extraCache := make(map[*layout.Symbol][]layerReg)
	symExtras := func(s *layout.Symbol, info *device.Info) []layerReg {
		if e, ok := extraCache[s]; ok {
			return e
		}
		// One k-way sweep per layer instead of a fold of pairwise unions.
		termRegs := make(map[tech.LayerID][]geom.Region)
		for _, term := range info.Terminals {
			termRegs[term.Layer] = append(termRegs[term.Layer], term.Reg)
		}
		termCover := make(map[tech.LayerID]geom.Region, len(termRegs))
		for layer, regs := range termRegs {
			termCover[layer] = geom.BulkUnion(regs)
		}
		var extras []layerReg
		for _, l := range tc.Layers() {
			reg := s.LayerRegion(l.ID)
			if reg.Empty() {
				continue
			}
			if cover, ok := termCover[l.ID]; ok {
				reg = reg.Subtract(cover)
				if reg.Empty() {
					continue
				}
			}
			extras = append(extras, layerReg{l.ID, reg})
		}
		extraCache[s] = extras
		return extras
	}

	var walk func(s *layout.Symbol, t geom.Transform, path string)
	walk = func(s *layout.Symbol, t geom.Transform, path string) {
		if s.IsPrimitive() {
			info, ok := infoCache[s]
			if !ok {
				info, _ = device.Analyze(s, tc)
				infoCache[s] = info
			}
			if info == nil {
				return
			}
			devIdx := len(devices)
			dev := DeviceUse{
				Path: path, Symbol: s, Type: s.DeviceType, Class: info.Class,
				T: t, Info: info,
			}
			nodeToFoot := make(map[int]int)
			for _, term := range info.Terminals {
				reg := term.Reg.TransformBy(t)
				if reg.Empty() {
					continue
				}
				idx := len(foots)
				foots = append(foots, footprint{
					layer: term.Layer, bounds: reg.Bounds(), reg: reg, node: idx,
				})
				items = append(items, ConnItem{
					Layer: term.Layer, Bounds: reg.Bounds(), Reg: reg,
					Dev: devIdx, Sym: s, Elem: -1, Path: path,
				})
				if prev, seen := nodeToFoot[term.Node]; seen {
					pendingUnions = append(pendingUnions, [2]int{prev, idx})
				} else {
					nodeToFoot[term.Node] = idx
				}
				if _, have := dev.TerminalNet(term.Name); !have {
					dev.TerminalNets = append(dev.TerminalNets, TerminalNet{Name: term.Name, Net: NetID(idx)})
				}
			}
			// Support geometry not covered by terminals (cuts, implants,
			// buried windows, resistor body middles): checkable but
			// netless — "the gate or implant of a transistor cannot be
			// assigned to a net".
			for _, e := range symExtras(s, info) {
				reg := e.reg.TransformBy(t)
				items = append(items, ConnItem{
					Layer: e.layer, Bounds: reg.Bounds(), Reg: reg,
					Net: NoNet, Dev: devIdx, Sym: s, Elem: -1, Path: path,
				})
			}
			if !info.Gate.Empty() {
				g := info.Gate.TransformBy(t)
				ex.Gates = append(ex.Gates, Keepout{Dev: devIdx, Reg: g, Bounds: g.Bounds()})
			}
			if !info.BaseKeepout.Empty() {
				b := info.BaseKeepout.TransformBy(t)
				ex.BaseKeepouts = append(ex.BaseKeepouts, Keepout{
					Dev: devIdx, Reg: b, Bounds: b.Bounds(), Clearance: info.BaseClearance,
				})
			}
			sort.Slice(dev.TerminalNets, func(i, j int) bool {
				return dev.TerminalNets[i].Name < dev.TerminalNets[j].Name
			})
			devices = append(devices, dev)
			return
		}
		for _, e := range s.Elements {
			reg, err := e.Region()
			if err != nil {
				issues = append(issues, Issue{
					Rule:   "NET.ELEM",
					Detail: err.Error(),
					Where:  t.ApplyRect(e.Bounds()),
				})
				continue
			}
			reg = reg.TransformBy(t)
			declared := ""
			if e.Net != "" {
				declared = qualifyNet(e.Net, path, tc)
			}
			foots = append(foots, footprint{
				layer: e.Layer, bounds: reg.Bounds(), reg: reg,
				node: len(foots), declared: declared, elements: 1,
			})
			items = append(items, ConnItem{
				Layer: e.Layer, Bounds: reg.Bounds(), Reg: reg,
				Dev: -1, Sym: s, Elem: e.Index, Path: path,
			})
		}
		for _, c := range s.Calls {
			walk(c.Target, c.T.Compose(t), joinPath(path, c.Name))
		}
	}
	walk(d.Top, geom.Identity, "")

	// Items with a footprint counterpart share indices in creation order:
	// rebuild the mapping item -> footprint.
	itemFoot := make([]int, len(items))
	fi := 0
	for i := range items {
		if items[i].Net == NoNet && items[i].Dev >= 0 {
			itemFoot[i] = -1 // support geometry has no footprint
			continue
		}
		itemFoot[i] = fi
		fi++
	}

	uf := newUF(len(foots))
	for _, pu := range pendingUnions {
		uf.union(pu[0], pu[1])
	}
	var pf geom.PairFinder
	for i := range foots {
		pf.AddRect(i, foots[i].bounds, int(foots[i].layer))
	}
	skeletons := make([]geom.Region, len(foots))
	haveSkel := make([]bool, len(foots))
	skel := func(i int) geom.Region {
		if !haveSkel[i] {
			mw := tc.Layer(foots[i].layer).MinWidth
			skeletons[i] = geom.Skeleton(foots[i].reg, mw)
			haveSkel[i] = true
		}
		return skeletons[i]
	}
	type candPair struct{ a, b int } // footprint indices, a < b
	var illegalCands []candPair
	pf.Pairs(0, func(a, b geom.Item) bool { return a.Tag == b.Tag }, func(p geom.Pair) {
		i, j := p.A.ID, p.B.ID
		if i > j {
			i, j = j, i // canonical orientation: lower footprint index first
		}
		if !foots[i].reg.Overlaps(foots[j].reg) {
			return
		}
		if geom.SkeletonsConnected(skel(i), skel(j)) {
			uf.union(i, j)
		} else {
			illegalCands = append(illegalCands, candPair{i, j})
		}
	})

	nl, issues, err := assemble(foots, devices, uf, tc, issues)
	if err != nil {
		return nil, issues, err
	}
	ex.Netlist = nl

	// Assign nets to items from the canonical class labels.
	classOf, _ := classify(uf, len(foots))
	for i := range items {
		if f := itemFoot[i]; f >= 0 {
			items[i].Net = NetID(classOf[f])
		}
	}
	ex.Items = items

	// Footprint-index pairs translate to item indices.
	footItem := make(map[int]int, len(foots))
	for i, f := range itemFoot {
		if f >= 0 {
			footItem[f] = i
		}
	}
	for _, c := range illegalCands {
		if classOf[c.a] != classOf[c.b] {
			ex.IllegalPairs = append(ex.IllegalPairs, [2]int{footItem[c.a], footItem[c.b]})
		}
	}
	return ex, issues, nil
}
