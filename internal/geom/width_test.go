package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthViolationsBasic(t *testing.T) {
	// A 10-wide wire passes w=10, fails w=11.
	wire := FromRectR(R(0, 0, 100, 10))
	if !MinWidthOK(wire, 10) {
		t.Fatal("10-wide wire must pass w=10")
	}
	if MinWidthOK(wire, 11) {
		t.Fatal("10-wide wire must fail w=11")
	}
	v := WidthViolations(wire, 11)
	if len(v) != 1 {
		t.Fatalf("violations = %d, want 1", len(v))
	}
	if v[0] != R(0, 0, 100, 10) {
		t.Fatalf("violation rect = %v", v[0])
	}
}

func TestWidthViolationsOddWidth(t *testing.T) {
	// Odd rule widths must be exact: a 7-wide wire passes 7 and fails 8.
	wire := FromRectR(R(0, 0, 50, 7))
	if !MinWidthOK(wire, 7) {
		t.Fatal("7-wide wire must pass w=7")
	}
	if MinWidthOK(wire, 8) {
		t.Fatal("7-wide wire must fail w=8")
	}
}

func TestWidthViolationLocalizedToNeck(t *testing.T) {
	// Dumbbell: two fat pads joined by a thin neck; only the neck flags.
	reg := FromRects([]Rect{
		R(0, 0, 20, 20),
		R(20, 8, 40, 12), // 4-wide neck
		R(40, 0, 60, 20),
	})
	if MinWidthOK(reg, 10) {
		t.Fatal("neck must violate w=10")
	}
	vs := WidthViolations(reg, 10)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1 (%v)", len(vs), vs)
	}
	v := vs[0]
	if v.X1 < 18 || v.X2 > 42 || v.Y1 < 6 || v.Y2 > 14 {
		t.Fatalf("violation %v not localized to the neck", v)
	}
	// Pads remain clean under their own width.
	if !MinWidthOK(FromRectR(R(0, 0, 20, 20)), 20) {
		t.Fatal("pad should pass w=20")
	}
}

func TestWidthLegalLShapeNoCornerFalseError(t *testing.T) {
	// The orthogonal check must not flag the corner of a legal L — this is
	// exactly the pathology the Euclidean variant has (Figure 4).
	l := FromRects([]Rect{R(0, 0, 30, 10), R(0, 0, 10, 30)})
	if !MinWidthOK(l, 10) {
		t.Fatalf("legal L flagged: %v", WidthViolations(l, 10))
	}
}

func TestSkeletonBasics(t *testing.T) {
	// Skeleton of an exactly-minimum-width wire is its medial line,
	// represented on the 4x grid as a quarter-unit fattened strip.
	wire := FromRectR(R(0, 0, 40, 10))
	sk := Skeleton(wire, 10)
	if sk.Empty() {
		t.Fatal("skeleton of legal wire must be non-empty")
	}
	if got := sk.Bounds(); got != R(19, 19, 141, 21) {
		t.Fatalf("skeleton bounds = %v", got)
	}
	narrow := FromRectR(R(0, 0, 40, 4))
	if !Skeleton(narrow, 10).Empty() {
		t.Fatal("skeleton of sub-minimum wire must be empty")
	}
}

func TestSkeletalConnectivityFigure11(t *testing.T) {
	// Two overlapping legal wires whose overlap is at least the minimum
	// width: skeletons (medial lines) overlap — connected.
	a := FromRectR(R(0, 0, 40, 10))
	b := FromRectR(R(30, 0, 70, 10))
	if !SkeletalConnected(a, b, 10) {
		t.Fatal("deep overlap must be skeletally connected")
	}
	// Barely corner-overlapping wires: skeletons do not touch.
	c := FromRectR(R(38, 8, 80, 18))
	if SkeletalConnected(a, c, 10) {
		t.Fatal("shallow corner overlap must not be skeletally connected")
	}
	// Abutting end-to-end wires: medial lines are half a width apart. Per
	// the paper's self-sufficiency rule (Figure 15), butting is NOT a legal
	// connection — overlap is required.
	d := FromRectR(R(40, 0, 80, 10))
	if SkeletalConnected(a, d, 10) {
		t.Fatal("abutting wires must not be skeletally connected (Figure 15)")
	}
	// Overlap of exactly the minimum width: skeleton endpoints touch.
	e := FromRectR(R(30, 0, 70, 10))
	if !SkeletalConnected(a, e, 10) {
		t.Fatal("overlap of one minimum width must connect")
	}
	// Disjoint wires: not connected.
	g := FromRectR(R(50, 20, 90, 30))
	if SkeletalConnected(a, g, 10) {
		t.Fatal("disjoint wires must not be skeletally connected")
	}
	// Enclosure: a small legal element fully inside a large one.
	big := FromRectR(R(0, 0, 100, 100))
	small := FromRectR(R(30, 30, 60, 60))
	if !SkeletalConnected(big, small, 10) {
		t.Fatal("enclosed element must be skeletally connected")
	}
}

// Property (the paper's skeletal-connectivity invariant, Figure 11): if two
// elements are each of legal width and are skeletally connected, then their
// union is of legal width.
func TestQuickSkeletalInvariant(t *testing.T) {
	const w = 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Region {
			x := int64(rng.Intn(30))
			y := int64(rng.Intn(30))
			wd := int64(w + rng.Intn(20))
			ht := int64(w + rng.Intn(20))
			return FromRectR(Rect{x, y, x + wd, y + ht})
		}
		a, b := mk(), mk()
		if !MinWidthOK(a, w) || !MinWidthOK(b, w) {
			return true // precondition violated, skip
		}
		if !SkeletalConnected(a, b, w) {
			return true
		}
		return MinWidthOK(a.Union(b), w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSpacingViolations(t *testing.T) {
	a := FromRectR(R(0, 0, 10, 10))
	b := FromRectR(R(13, 0, 23, 10)) // gap 3
	if got := SpacingViolations(a, b, 3); len(got) != 0 {
		t.Fatalf("gap 3 vs rule 3: violations %v, want none", got)
	}
	if got := SpacingViolations(a, b, 4); len(got) != 1 {
		t.Fatalf("gap 3 vs rule 4: violations %d, want 1", len(got))
	}
	// Orthogonal expand-check-overlap flags diagonal pairs at L∞ < s even
	// when Euclidean distance >= s (Figure 4 corner pathology).
	c := FromRectR(R(13, 14, 23, 24)) // gaps 3,4; Euclidean 5, L∞ 4
	if got := SpacingViolations(a, c, 5); len(got) != 1 {
		t.Fatalf("diagonal pair: orthogonal check should flag, got %d", len(got))
	}
	if d, _, _ := RegionDist(a, c); d != 5 {
		t.Fatalf("Euclidean distance = %v, want 5 (no true violation)", d)
	}
}

func TestNotchViolations(t *testing.T) {
	// U-shape with a 4-wide slot; slot violates s=6, passes s=4.
	u := FromRects([]Rect{
		R(0, 0, 30, 10),
		R(0, 10, 12, 30),
		R(16, 10, 30, 30), // slot between x=12..16
	})
	if got := NotchViolations(u, 4); len(got) != 0 {
		t.Fatalf("4-wide slot at s=4: %v, want none", got)
	}
	got := NotchViolations(u, 6)
	if len(got) != 1 {
		t.Fatalf("4-wide slot at s=6: %d violations, want 1 (%v)", len(got), got)
	}
	v := got[0]
	if v.X1 > 12 || v.X2 < 16 {
		t.Fatalf("notch violation %v does not cover the slot", v)
	}
}

func TestSpacingEmptyAndZero(t *testing.T) {
	a := FromRectR(R(0, 0, 10, 10))
	if got := SpacingViolations(a, EmptyRegion(), 5); got != nil {
		t.Fatal("empty region should produce no violations")
	}
	if got := SpacingViolations(a, a, 0); got != nil {
		t.Fatal("zero spacing rule should produce no violations")
	}
}

func TestWidthViolationsEmpty(t *testing.T) {
	if got := WidthViolations(EmptyRegion(), 5); got != nil {
		t.Fatal("empty region has no violations")
	}
	if !MinWidthOK(EmptyRegion(), 5) {
		t.Fatal("empty region is vacuously legal")
	}
}
