package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/tech"
)

// fullJSON marshals a wire report the way the test compares them:
// byte-identical marshaling is the delta parity contract.
func fullJSON(t *testing.T, rep *Report) string {
	t.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestReportDeltaProperty is the randomized edit-script property test:
// a client that only ever fetches deltas (SessionReportApply) must hold
// a report byte-identical — fingerprint included — to what a cold full
// fetch returns, after every batch of a random edit script.
func TestReportDeltaProperty(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: -1})
	ctx := context.Background()

	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(42 + trial)))
		created, err := c.SessionCreate(ctx, CreateRequest{Name: "delta-prop", CIF: text, Tech: "cmos"})
		if err != nil {
			t.Fatal(err)
		}
		// The cached report a delta-only client maintains; seeded by the
		// cold report from create.
		cached := created.Report

		script := randomEdits(rng, 6+rng.Intn(8))
		for i := range script {
			if _, err := c.SessionEdit(ctx, created.ID, script[i:i+1]); err != nil {
				t.Fatalf("trial %d edit %d: %v", trial, i, err)
			}
			rep, delta, err := c.SessionReportApply(ctx, created.ID, cached)
			if err != nil {
				t.Fatalf("trial %d apply %d: %v", trial, i, err)
			}
			full, err := c.SessionReport(ctx, created.ID)
			if err != nil {
				t.Fatalf("trial %d full %d: %v", trial, i, err)
			}
			if rep.Fingerprint != full.Fingerprint {
				t.Fatalf("trial %d step %d: reconstructed fingerprint %s != full %s",
					trial, i, rep.Fingerprint, full.Fingerprint)
			}
			if got, want := fullJSON(t, rep), fullJSON(t, full); got != want {
				t.Fatalf("trial %d step %d: reconstruction not byte-identical\ngot:  %s\nwant: %s",
					trial, i, got, want)
			}
			if delta.Reset {
				t.Fatalf("trial %d step %d: delta unexpectedly reset (base %q)", trial, i, cached.Fingerprint)
			}
			if delta.Base != cached.Fingerprint {
				t.Fatalf("trial %d step %d: delta base %s, want %s", trial, i, delta.Base, cached.Fingerprint)
			}
			cached = rep
		}
		if err := c.SessionDelete(ctx, created.ID); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReportDeltaAddedRemoved pins the shape of a delta across a
// break/revert cycle: breaking the chip shows up in added, reverting it
// moves the same violations to removed, and an unchanged state yields an
// empty delta.
func TestReportDeltaAddedRemoved(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: -1})
	ctx := context.Background()

	created, err := c.SessionCreate(ctx, CreateRequest{Name: "shape", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	cleanFP := created.Report.Fingerprint

	// Unchanged state: empty delta against the current fingerprint.
	d0, err := c.SessionReportSince(ctx, created.ID, cleanFP)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Reset || len(d0.Added) != 0 || len(d0.Removed) != 0 {
		t.Fatalf("no-op delta: reset=%v added=%d removed=%d", d0.Reset, len(d0.Added), len(d0.Removed))
	}
	if d0.Schema != SchemaReportDelta {
		t.Fatalf("delta schema %q, want %q", d0.Schema, SchemaReportDelta)
	}

	if _, err := c.SessionEdit(ctx, created.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	d1, err := c.SessionReportSince(ctx, created.ID, cleanFP)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Reset || len(d1.Added) == 0 || len(d1.Removed) != 0 {
		t.Fatalf("break delta: reset=%v added=%d removed=%d", d1.Reset, len(d1.Added), len(d1.Removed))
	}

	if _, err := c.SessionEdit(ctx, created.ID, revertEdits()); err != nil {
		t.Fatal(err)
	}
	d2, err := c.SessionReportSince(ctx, created.ID, d1.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Reset || len(d2.Added) != 0 || len(d2.Removed) != len(d1.Added) {
		t.Fatalf("revert delta: reset=%v added=%d removed=%d (want removed=%d)",
			d2.Reset, len(d2.Added), len(d2.Removed), len(d1.Added))
	}
	if d2.Fingerprint != cleanFP {
		t.Fatalf("revert did not return to the clean fingerprint")
	}
}

// TestReportDeltaReset covers the fallback paths: an unknown fingerprint,
// the empty cold-client fingerprint, and a fingerprint evicted from a
// deliberately tiny history ring all answer with a reset delta that
// reconstructs the full report from nothing.
func TestReportDeltaReset(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: -1, ReportHistory: 2})
	ctx := context.Background()

	created, err := c.SessionCreate(ctx, CreateRequest{Name: "reset", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}

	for _, since := range []string{"", "not-a-fingerprint"} {
		d, err := c.SessionReportSince(ctx, created.ID, since)
		if err != nil {
			t.Fatalf("since=%q: %v", since, err)
		}
		if !d.Reset || d.Base != "" {
			t.Fatalf("since=%q: reset=%v base=%q, want reset with empty base", since, d.Reset, d.Base)
		}
		rep, err := ApplyDelta(nil, d)
		if err != nil {
			t.Fatalf("since=%q: apply reset: %v", since, err)
		}
		full, err := c.SessionReport(ctx, created.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fullJSON(t, rep), fullJSON(t, full); got != want {
			t.Fatalf("since=%q: reset reconstruction not byte-identical", since)
		}
	}

	// Evict the cold fingerprint out of the 2-entry ring: two further
	// distinct states (break, then revert+break at another column push two
	// new fingerprints) and the original must be gone.
	coldFP := created.Report.Fingerprint
	if _, err := c.SessionEdit(ctx, created.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionReport(ctx, created.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionEdit(ctx, created.ID, []layout.Edit{{
		Op: layout.OpAddBox, Symbol: "chip", Layer: tech.CMOSMetal,
		Box: []int64{-50000, 0, -49000, 1000},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionReport(ctx, created.ID); err != nil {
		t.Fatal(err)
	}
	d, err := c.SessionReportSince(ctx, created.ID, coldFP)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Reset {
		t.Fatalf("evicted fingerprint %s still produced a delta", coldFP)
	}

	// A transparent client converges through the reset without noticing.
	rep, delta, err := c.SessionReportApply(ctx, created.ID, created.Report)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Reset {
		t.Fatal("expected reset for the evicted base")
	}
	full, err := c.SessionReport(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fullJSON(t, rep), fullJSON(t, full); got != want {
		t.Fatal("post-eviction reconstruction not byte-identical")
	}
}

// TestApplyDeltaErrors pins the misuse contract: a non-reset delta
// demands a base and refuses a mismatched one.
func TestApplyDeltaErrors(t *testing.T) {
	d := &ReportDelta{Base: "abc"}
	if _, err := ApplyDelta(nil, d); err == nil {
		t.Fatal("nil base accepted for a non-reset delta")
	}
	base := &Report{}
	base.Fingerprint = "def"
	if _, err := ApplyDelta(base, d); err == nil {
		t.Fatal("mismatched base accepted")
	}
	if _, err := ApplyDelta(base, &ReportDelta{Base: "def", Removed: []Violation{{Rule: "X"}}}); err == nil {
		t.Fatal("removed violation absent from base accepted")
	}
}

// TestDeltaSurvivesRestore is the snapshot-persistence case: a client's
// pre-crash fingerprint must still resolve to a real delta (not a reset)
// after the daemon is killed and a fresh one restores from disk.
func TestDeltaSurvivesRestore(t *testing.T) {
	dir := t.TempDir()
	text, _ := cmosCIF(t, 2, 2)
	cfg := Config{Debounce: -1, StateDir: dir}

	srv1 := New(cfg)
	ts1 := httptest.NewServer(srv1)
	c1 := NewClient(ts1.URL)
	ctx := context.Background()

	created, err := c1.SessionCreate(ctx, CreateRequest{Name: "crash", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	preFP := created.Report.Fingerprint
	if _, err := c1.SessionEdit(ctx, created.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	broken, err := c1.SessionReport(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SnapshotAll(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close() // kill -9: no graceful shutdown

	srv2 := New(cfg)
	ts2 := httptest.NewServer(srv2)
	defer func() { ts2.Close(); srv2.Close() }()
	c2 := NewClient(ts2.URL)
	if restored, errs := srv2.RestoreFromDisk(ctx); len(errs) > 0 || restored != 1 {
		t.Fatalf("restore: %d sessions, errs %v", restored, errs)
	}

	d, err := c2.SessionReportSince(ctx, created.ID, preFP)
	if err != nil {
		t.Fatal(err)
	}
	if d.Reset {
		t.Fatalf("pre-crash fingerprint %s degraded to reset after restore", preFP)
	}
	if d.Fingerprint != broken.Fingerprint {
		t.Fatalf("post-restore delta fingerprint %s != pre-crash %s", d.Fingerprint, broken.Fingerprint)
	}
	rep, err := ApplyDelta(created.Report, d)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identity is against what the restored daemon serves for this
	// state (run durations are per-run, so the pre-crash serving can only
	// be compared by its duration-free fingerprint — asserted above).
	full, err := c2.SessionReport(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fullJSON(t, rep), fullJSON(t, full); got != want {
		t.Fatal("post-restore reconstruction not byte-identical to the restored daemon's full report")
	}
}

// TestV1Redirects asserts the deprecated unprefixed paths answer 308 with
// the /v1 location, query string preserved, and that the redirect is
// followable end to end.
func TestV1Redirects(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	srv, c := newTestServer(t, Config{Debounce: -1})
	ctx := context.Background()

	created, err := c.SessionCreate(ctx, CreateRequest{Name: "legacy", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet,
		"/sessions/"+created.ID+"/report?since="+created.Report.Fingerprint, nil))
	if rec.Code != http.StatusPermanentRedirect {
		t.Fatalf("legacy path answered %d, want 308", rec.Code)
	}
	want := "/v1/sessions/" + created.ID + "/report?since=" + created.Report.Fingerprint
	if loc := rec.Header().Get("Location"); loc != want {
		t.Fatalf("redirect location %q, want %q", loc, want)
	}
	for _, path := range []string{"/healthz", "/stats", "/sessions"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusPermanentRedirect {
			t.Fatalf("%s answered %d, want 308", path, rec.Code)
		}
		if loc := rec.Header().Get("Location"); loc != "/v1"+path {
			t.Fatalf("%s redirect location %q", path, loc)
		}
	}

	// A stock http.Client follows the 308 transparently.
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("followed legacy /healthz: %d", resp.StatusCode)
	}
}

// TestDeltaStats asserts the delta path is observable: per-session and
// daemon-wide counters move, and the wire schema fields are set.
func TestDeltaStats(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	_, c := newTestServer(t, Config{Debounce: -1})
	ctx := context.Background()

	created, err := c.SessionCreate(ctx, CreateRequest{Name: "obs", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.SessionReport(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if full.Schema != SchemaReport {
		t.Fatalf("report schema %q, want %q", full.Schema, SchemaReport)
	}
	if _, err := c.SessionReportSince(ctx, created.ID, full.Fingerprint); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionReportSince(ctx, created.ID, "bogus"); err != nil {
		t.Fatal(err)
	}

	st, err := c.SessionStats(ctx, created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Session.DeltaReports != 2 || st.Session.DeltaResets != 1 {
		t.Fatalf("session delta counters: reports=%d resets=%d, want 2/1",
			st.Session.DeltaReports, st.Session.DeltaResets)
	}
	gst, err := c.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gst.DeltasServed != 2 || gst.DeltaResets != 1 {
		t.Fatalf("server delta counters: served=%d resets=%d, want 2/1",
			gst.DeltasServed, gst.DeltaResets)
	}
	_ = time.Now
}
