// Command dicheck runs layout verification on an extended-CIF file.
//
// By default it runs the design-integrity checker (the paper's
// hierarchical pipeline); -flat runs the traditional mask-level baseline
// instead, and -both runs the two side by side for comparison.
//
// Usage:
//
//	dicheck [flags] layout.cif
//	dicheck -validate rules.deck...
//	dicheck -serve URL [-session NAME] [-edits FILE] [layout.cif]
//
//	-tech NAME           registered technology (default nmos; see -tech help)
//	-deck FILE           load the technology from a rule deck instead
//	-validate            validate rule decks given as arguments and exit
//	-flat                run only the traditional baseline
//	-both                run both checkers
//	-metric euclid|ortho spacing metric for the DIC (default euclid)
//	-noconstruct         skip the non-geometric construction rules (the
//	                     bipolar demo workload needs this: its device
//	                     terminals are deliberately unwired)
//	-workers n           interaction-stage goroutines (0 = all cores, 1 = serial)
//	-v                   print every violation, not just the summary
//	-netlist             print the extracted hierarchical net list
//	-stats               print per-stage statistics
//	-json                emit the report as machine-readable JSON
//	-edits FILE          apply the JSON edit script to the design before
//	                     checking (offline), or to the served session
//	-repeat n            run the incremental engine n times (cold + warm
//	                     replays), printing per-run timings and cache stats
//	-serve URL           check through a running dicheckd instead of
//	                     in-process: one-shot (create, report, delete)
//	                     unless -session names a persistent session
//	-session NAME        with -serve: reuse (or create) the named session
//	                     and keep it alive after the run
//	-cpuprofile FILE     write a pprof CPU profile of the run
//	-memprofile FILE     write a pprof heap profile at exit
//
// Exit codes (so CI and scripts can branch without parsing output):
//
//	0  the checked design is clean (no error-severity violations)
//	1  the checker ran and found violations
//	2  usage, parse, or I/O error (bad flags, unreadable CIF, invalid
//	   deck, unreachable server)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	dic "repro"
	"repro/internal/cif"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/device"
	"repro/internal/flat"
	"repro/internal/process"
	"repro/internal/tech"
)

func main() {
	os.Exit(run())
}

// run holds main's body so profile-writing defers fire before the process
// exits with the report's status code.
func run() int {
	techName := flag.String("tech", "nmos",
		fmt.Sprintf("technology: %s", strings.Join(tech.Names(), ", ")))
	deckFile := flag.String("deck", "", "load the technology from a rule deck file instead of -tech")
	validate := flag.Bool("validate", false, "validate the rule decks given as arguments, then exit")
	flatOnly := flag.Bool("flat", false, "run only the traditional mask-level baseline")
	both := flag.Bool("both", false, "run both checkers")
	metric := flag.String("metric", "euclid", "DIC spacing metric: euclid or ortho")
	verbose := flag.Bool("v", false, "print every violation")
	showNetlist := flag.Bool("netlist", false, "print the extracted net list")
	showStats := flag.Bool("stats", false, "print per-stage statistics")
	noConstruct := flag.Bool("noconstruct", false, "skip the non-geometric construction rules (fanout, rails)")
	procModel := flag.Bool("process", false, "give spacing violations a second opinion from the Eq.1 process model")
	workers := flag.Int("workers", 0, "interaction-stage goroutines (0 = all cores, 1 = serial reference)")
	jsonOut := flag.Bool("json", false, "emit the report as machine-readable JSON")
	repeat := flag.Int("repeat", 0, "run the incremental engine this many times (0 = one-shot pipeline)")
	editsFile := flag.String("edits", "", "apply this JSON edit script before checking (or to the served session)")
	serve := flag.String("serve", "", "check through the dicheckd at this URL instead of in-process")
	session := flag.String("session", "", "with -serve: reuse (or create) this named persistent session")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dicheck [flags] layout.cif")
		fmt.Fprintln(os.Stderr, "       dicheck -validate rules.deck...")
		fmt.Fprintln(os.Stderr, "       dicheck -serve URL [-session NAME] [-edits FILE] [layout.cif]")
		fmt.Fprintln(os.Stderr, "exit codes: 0 = clean, 1 = violations found, 2 = usage/parse error")
		flag.PrintDefaults()
	}
	flag.Parse()

	// Profiling hooks: hot-path investigation shouldn't require writing a
	// throwaway test harness around the checker.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dicheck: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dicheck: memprofile: %v\n", err)
			}
		}()
	}

	if *validate {
		files := flag.Args()
		if *deckFile != "" {
			files = append([]string{*deckFile}, files...)
		}
		if len(files) == 0 {
			fatalf("-validate needs at least one deck file")
		}
		return validateDecks(files)
	}

	if *serve != "" {
		return runServed(servedRun{
			url:         *serve,
			session:     *session,
			editsFile:   *editsFile,
			cifPath:     flag.Arg(0),
			tech:        *techName,
			deckFile:    *deckFile,
			metric:      *metric,
			noConstruct: *noConstruct,
			jsonOut:     *jsonOut,
			verbose:     *verbose,
		})
	}
	if flag.NArg() != 1 {
		flag.Usage()
		return 2
	}
	tc, err := dic.ResolveTechnology(*techName, *deckFile)
	if err != nil {
		fatalf("%v", err)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	design, err := cif.Parse(string(src), tc, flag.Arg(0))
	if err != nil {
		fatalf("parse: %v", err)
	}
	if *editsFile != "" {
		// Offline replay of an edit script: the same mutations a served
		// session applies, so fingerprints are comparable across the two.
		if err := applyEditScript(design, tc, *editsFile); err != nil {
			fatalf("%v", err)
		}
	}
	st := design.Stats()
	if !*jsonOut {
		fmt.Printf("design %q: %d symbols, %d elements, %d flat elements, %d devices\n",
			design.Name, st.Symbols, st.Elements, st.FlatElements, st.FlatDevices)
	}

	exitCode := 0
	if !*flatOnly {
		opts := core.Options{Workers: *workers, SkipConstruction: *noConstruct}
		if *metric == "ortho" {
			opts.Metric = core.Orthogonal
		}
		if *procModel {
			m := process.DefaultModel()
			opts.ProcessSpacing = &m
			opts.ProcessMargin = 100
		}
		var rep *core.Report
		var eng *core.Engine
		var err error
		if *repeat > 0 {
			// Incremental session: the first run is cold and fills the
			// definition caches; the following runs replay them — the
			// shape of a long-lived checking service between edits.
			eng = core.NewEngine(tc, opts)
			for i := 0; i < *repeat; i++ {
				start := time.Now()
				rep, err = eng.Recheck(design)
				if err != nil {
					fatalf("check: %v", err)
				}
				if !*jsonOut {
					fmt.Printf("engine run %d: %v (%s)\n", i+1, time.Since(start).Round(time.Microsecond), eng.Stats())
				}
			}
		} else {
			rep, err = core.Check(design, tc, opts)
			if err != nil {
				fatalf("check: %v", err)
			}
		}
		if *jsonOut {
			if err := printJSON(rep, eng); err != nil {
				fatalf("json: %v", err)
			}
		} else {
			printDICReport(rep, *verbose, *showStats, *showNetlist)
		}
		if !rep.Clean() {
			exitCode = 1
		}
	}
	if *flatOnly || *both {
		frep, err := flat.Check(design, tc, flat.Options{})
		if err != nil {
			fatalf("flat check: %v", err)
		}
		fmt.Printf("\ntraditional baseline: %d violations in %v (%d components)\n",
			len(frep.Violations), frep.Duration, frep.Components)
		if *verbose {
			for _, v := range frep.Violations {
				fmt.Printf("  %v\n", v)
			}
		} else {
			printRuleCounts(countFlatRules(frep.Violations))
		}
		// Exit-code contract: 1 whenever any checker that ran found
		// violations, regardless of which combination was selected.
		if len(frep.Violations) > 0 {
			exitCode = 1
		}
	}
	return exitCode
}

func printDICReport(rep *core.Report, verbose, stats, nets bool) {
	errs := rep.Errors()
	warns := len(rep.Violations) - len(errs)
	fmt.Printf("design-integrity check: %d errors, %d warnings\n", len(errs), warns)
	if len(rep.Violations) > 0 {
		printClassCounts(core.CountByClass(rep.Violations))
	}
	if verbose {
		for _, v := range rep.Violations {
			fmt.Printf("  %v\n", v)
		}
	} else {
		printRuleCounts(core.CountByRule(rep.Violations))
	}
	if stats {
		fmt.Println("stages:")
		for _, s := range rep.Stats.Stages {
			fmt.Printf("  %-32s %10v  %6d checks  %4d violations\n",
				s.Name, s.Duration, s.Checks, s.Violations)
		}
		st := rep.Stats
		fmt.Printf("definition-level work: %d elements + %d device defs (chip has %d device instances)\n",
			st.ElementsChecked, st.SymbolDefsChecked, st.DeviceInstances)
		fmt.Printf("interactions: %d candidates -> %d measured (skips: %d no-rule, %d same-net, %d related, %d connection)\n",
			st.InteractionCandidates, st.InteractionChecked,
			st.SkippedNoRule, st.SkippedSameNetExempt, st.SkippedRelated, st.SkippedConnectionPairs)
	}
	if nets && rep.Netlist != nil {
		fmt.Printf("netlist: %s\n", rep.Netlist.Stats())
		for i := range rep.Netlist.Nets {
			n := &rep.Netlist.Nets[i]
			fmt.Printf("  %-24s %2d elements %2d terminals %v\n",
				n.Name, n.Elements, len(n.Terminals), rep.Netlist.Signature(n.ID))
		}
	}
}

// printClassCounts prints the one-line per-class summary, the same tally
// the wire report carries in its "classes" field.
func printClassCounts(classes map[string]int) {
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, c := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", c, classes[c]))
	}
	fmt.Printf("classes: %s\n", strings.Join(parts, " "))
}

func printRuleCounts(counts map[string]int) {
	rules := make([]string, 0, len(counts))
	for r := range counts {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Printf("  %-24s %d\n", r, counts[r])
	}
}

func countFlatRules(vs []flat.Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Rule]++
	}
	return out
}

// validateDecks runs the full validation over each deck, printing every
// problem, and returns the exit code (1 if any deck has errors).
func validateDecks(files []string) int {
	code := 0
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Printf("%s: %v\n", path, err)
			code = 1
			continue
		}
		d, err := deck.Parse(string(src))
		if err != nil {
			fmt.Printf("%s: %v\n", path, err)
			code = 1
			continue
		}
		probs := tech.ValidateDeck(d, device.Classes())
		for _, p := range probs {
			fmt.Printf("%s: %v\n", path, p)
		}
		if len(deck.Errors(probs)) > 0 {
			code = 1
			continue
		}
		if _, err := tech.FromDeck(d); err != nil {
			fmt.Printf("%s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: ok (%q, %d layers, %d cells, %d devices, %d warnings)\n",
			path, d.Name, len(d.Layers), len(d.Spaces), len(d.Devices), len(probs))
	}
	return code
}

func fatalf(format string, args ...any) {
	// Hard exits skip run()'s defers; flush an in-flight CPU profile so
	// -cpuprofile never leaves a truncated file (no-op when not profiling).
	pprof.StopCPUProfile()
	fmt.Fprintf(os.Stderr, "dicheck: "+format+"\n", args...)
	os.Exit(2)
}
