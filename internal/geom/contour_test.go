package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContourOfRect(t *testing.T) {
	r := FromRectR(R(0, 0, 10, 5))
	loops := r.Contours()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	lp := loops[0]
	if len(lp) != 4 {
		t.Fatalf("vertices = %d, want 4 (%v)", len(lp), lp)
	}
	if !lp.IsCCW() {
		t.Fatal("outer loop must be CCW")
	}
	if got := lp.Area(); got != 50 {
		t.Fatalf("loop area = %d", got)
	}
}

func TestContourOfLShape(t *testing.T) {
	l := FromRects([]Rect{R(0, 0, 30, 10), R(0, 0, 10, 30)})
	loops := l.Contours()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	lp := loops[0]
	if len(lp) != 6 {
		t.Fatalf("vertices = %d, want 6 (%v)", len(lp), lp)
	}
	convex, concave := CornerCounts(l)
	if convex != 5 || concave != 1 {
		t.Fatalf("corners = %d convex / %d concave, want 5/1", convex, concave)
	}
}

func TestContourOfDonut(t *testing.T) {
	outer := FromRectR(R(0, 0, 20, 20))
	donut := outer.Subtract(FromRectR(R(5, 5, 15, 15)))
	loops := donut.Contours()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2 (outer + hole)", len(loops))
	}
	var ccw, cw int
	var signed int64
	for _, lp := range loops {
		signed += lp.SignedArea2()
		if lp.IsCCW() {
			ccw++
		} else {
			cw++
		}
	}
	if ccw != 1 || cw != 1 {
		t.Fatalf("windings = %d ccw / %d cw, want 1/1", ccw, cw)
	}
	if signed != 2*donut.Area() {
		t.Fatalf("signed loop area %d != 2*region area %d", signed, 2*donut.Area())
	}
}

func TestContourTwoComponents(t *testing.T) {
	r := FromRects([]Rect{R(0, 0, 5, 5), R(10, 10, 15, 15)})
	loops := r.Contours()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	for _, lp := range loops {
		if !lp.IsCCW() {
			t.Fatal("both loops are outer boundaries, must be CCW")
		}
	}
}

func TestPerimeterValues(t *testing.T) {
	if got := Perimeter(FromRectR(R(0, 0, 10, 5))); got != 30 {
		t.Fatalf("rect perimeter = %d", got)
	}
	l := FromRects([]Rect{R(0, 0, 30, 10), R(0, 0, 10, 30)})
	if got := Perimeter(l); got != 120 {
		t.Fatalf("L perimeter = %d, want 120", got)
	}
}

func TestCornerCountsSquare(t *testing.T) {
	convex, concave := CornerCounts(FromRectR(R(0, 0, 10, 10)))
	if convex != 4 || concave != 0 {
		t.Fatalf("corners = %d/%d, want 4/0", convex, concave)
	}
}

// Property: for any random region, total signed contour area equals region
// area and convex-concave corner balance equals 4 per outer loop minus 4
// per hole (Euler relation for rectilinear polygons).
func TestQuickContourInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := randomRegion(rng, 6)
		loops := reg.Contours()
		var signed int64
		outers, holes := 0, 0
		for _, lp := range loops {
			signed += lp.SignedArea2()
			if lp.IsCCW() {
				outers++
			} else {
				holes++
			}
		}
		if signed != 2*reg.Area() {
			return false
		}
		convex, concave := CornerCounts(reg)
		return convex-concave == 4*(outers-holes)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: reconstructing the region from its contours (outers minus
// holes) reproduces it exactly.
func TestQuickContourRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := randomRegion(rng, 6)
		rebuilt := EmptyRegion()
		var holes []Region
		for _, lp := range reg.Contours() {
			sub, err := FromPolygon(lp)
			if err != nil {
				return false
			}
			if lp.IsCCW() {
				rebuilt = rebuilt.Union(sub)
			} else {
				holes = append(holes, sub)
			}
		}
		for _, h := range holes {
			rebuilt = rebuilt.Subtract(h)
		}
		return rebuilt.Equal(reg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestContourCornerCrossing(t *testing.T) {
	// Two squares sharing only a corner point: the stitcher must keep two
	// simple CCW loops rather than one self-intersecting bowtie.
	r := FromRects([]Rect{R(0, 0, 5, 5), R(5, 5, 10, 10)})
	loops := r.Contours()
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	for _, lp := range loops {
		if !lp.IsCCW() {
			t.Fatalf("loop not CCW: %v", lp)
		}
		if len(lp) != 4 {
			t.Fatalf("loop vertices = %d, want 4: %v", len(lp), lp)
		}
		if err := lp.Validate(); err != nil {
			t.Fatalf("loop invalid: %v", err)
		}
	}
	// The inverse: a frame with two corner-touching square holes.
	frame := FromRectR(R(-5, -5, 15, 15)).Subtract(r)
	holes := 0
	for _, lp := range frame.Contours() {
		if !lp.IsCCW() {
			holes++
		}
	}
	if holes != 2 {
		t.Fatalf("hole loops = %d, want 2", holes)
	}
}
