package deck

import "testing"

// FuzzParseDeck drives the parser with arbitrary text. The invariants: no
// panic on any input, and any input that parses must survive the canonical
// round trip (write, reparse, write again identically) — the writer may
// never emit text its own parser rejects or reads differently.
func FuzzParseDeck(f *testing.F) {
	f.Add("tech t lambda=250\nlayer a cif=XA role=metal width=2L space=3L\nspace a a diff=1.5L note=\"x\"\n")
	f.Add("tech t\nlayer a cif=XA\ndevice d class=c depletion describe=\"y\"\n  use lower=a\n  param k=40\nrail power VDD\n")
	f.Add("# comment only\n")
	f.Add("tech \"quoted name\" lambda=2\nspace a b exempt-related\n")
	f.Add("tech t lambda=9223372036854775807\nlayer a cif=XA width=3L\n")
	f.Add("tech t lambda=200\nlayer a cif=XA role=metal\nwidth a 2L note=\"w\"\narea a 10L\n")
	f.Add("tech t lambda=100\nlayer a cif=XA role=metal\nlayer c cif=XC role=contact\nenclose a c 1L\noverlap a c 2L\nextend a c 0.5L note=\"gate\"\n")
	f.Add("tech t\nwidth a 350\narea a 122500\nenclose a a 0\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := Parse(src)
		if err != nil {
			return
		}
		text1 := Write(d)
		d2, err := Parse(text1)
		if err != nil {
			t.Fatalf("written deck does not reparse: %v\ninput: %q\nwritten: %q", err, src, text1)
		}
		if text2 := Write(d2); text1 != text2 {
			t.Fatalf("writer not idempotent:\nfirst:  %q\nsecond: %q", text1, text2)
		}
		Validate(d, Options{})
	})
}
