package netlist

// Incremental, content-addressed extraction.
//
// ExtractFull walks the fully instantiated chip: every element region,
// every skeleton, and every connectivity test is redone per instance and
// per run. This file restructures extraction around the paper's own
// locality argument — "the information about what symbol the piece of
// geometry came from is never lost" — so that everything derivable from a
// symbol *definition* is computed once, keyed by the definition's content
// hash, and reused across instances and across checker runs:
//
//   - SymbolArtifacts holds the fully flattened subtree of one symbol in
//     symbol-local coordinates: items, footprints, the subtree-local net
//     partition (union-find classes), device uses, keepouts, illegal
//     connection candidates, and NET.ELEM issues. It is keyed by the
//     symbol's subtree content hash (layout.ContentHashes).
//   - Connectivity between two footprints is discovered exactly once, at
//     the definition of their lowest common ancestor: each definition runs
//     a cross-owner sweep over its own footprints and its children's
//     bounding boxes; pairs internal to one child were already resolved in
//     the child's artifacts and are inherited by index translation.
//   - A span cache keys the transformed embedding of a child subtree by
//     (child hash, call transform, call name), so re-deriving a parent
//     does not re-transform unchanged child geometry.
//
// The root symbol's artifacts are, by construction, exactly the flat
// extraction: local coordinates are chip coordinates, relative paths are
// instance paths, and local class ids are the final net ids (both number
// connected components by first-footprint order). ExtractIncremental
// therefore produces an Extraction equal to ExtractFull's, cheaper on a
// warm cache by every subtree whose content hash is unchanged.

import (
	"sort"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// LocalFoot is one connectable footprint of a subtree, in the subtree's
// local coordinates.
type LocalFoot struct {
	Layer    tech.LayerID
	Bounds   geom.Rect
	Reg      geom.Region
	Declared string // declared net name, qualified relative to this frame
	Elements int    // interconnect elements represented (0 or 1)
	MinWidth int64  // layer minimum width (skeleton shrink), own foots only
}

// ChildSpan locates one call's embedded subtree within the parent's
// flattened arrays.
type ChildSpan struct {
	Call *layout.Call
	Art  *SymbolArtifacts // the callee's definition-level artifacts

	Bounds             geom.Rect // bounds of the embedded subtree (parent frame)
	ItemStart, ItemEnd int
	FootStart, FootEnd int
	DevStart, DevEnd   int

	sd *spanData // shared transformed embedding (skeleton cache lives here)
}

// SymbolArtifacts is the complete extraction of one symbol's subtree in
// symbol-local coordinates, content-addressed by the subtree hash.
// Everything in it is instance-independent; instance-dependent facts
// (global net identity, absolute paths, chip coordinates) are re-derived
// by embedding these arrays translated and index-shifted.
type SymbolArtifacts struct {
	Sym  *layout.Symbol
	Hash layout.Hash

	// Flattened subtree in walk order: own elements (or device terminals
	// and support geometry for a primitive), then each call's subtree.
	// ItemFoot is always full subtree length, even on Virtual artifacts
	// (it is the one flat array cheap enough to keep everywhere, and it
	// makes item→foot resolution a direct index).
	Items    []ConnItem  // Net holds the LOCAL class id (or NoNet)
	Foots    []LocalFoot // connectable subset, parallel order
	ItemFoot []int       // item index -> foot index, -1 for support geometry

	// Local net partition over Foots, labeled in first-footprint order.
	ClassOf    []int
	ClassFoot  []int // class -> first (representative) foot index
	NumClasses int

	Devices      []DeviceUse // Path and T relative; TerminalNets hold local class ids
	Gates        []Keepout   // local coordinates; Dev is the local device index
	BaseKeepouts []Keepout
	Issues       []Issue  // NET.ELEM findings, local coordinates
	IllegalCands [][2]int // item-index pairs (a < b), candidates for CONN.ILLEGAL

	Children []ChildSpan

	// Instances counts the placements in this subtree including itself
	// (primitive and composite definitions alike), sized once at build so
	// per-run instance enumeration can preallocate.
	Instances int

	// LayerMask has bit l set when some item in the subtree sits on layer
	// l (layers ≥ 63 set the overflow bit 63, making the mask
	// conservative: a set bit means "maybe present").
	LayerMask uint64

	// Virtual marks an artifact built without materializing the embedded
	// Items array — the subtree is never fully instantiated. Items then
	// holds only the symbol's own entries; embedded entries resolve
	// through the accessors below (NumItems, ItemView, ResolveItem,
	// FootView, ItemFootAt, FootItemAt), which are valid on materialized
	// artifacts too. Foots holds only own entries on every composite
	// (embedded footprints live solely in span storage), and counts,
	// index offsets (Children spans, ClassOf, ClassFoot) and ItemFoot are
	// always for the full flattened subtree.
	Virtual  bool
	numItems int
	numFoots int

	footItem []int // lazy inverse of ItemFoot (materialized artifacts)

	skels map[int]geom.Region // lazy skeletons of own footprints
}

// NumItems returns the flattened subtree item count.
func (a *SymbolArtifacts) NumItems() int { return a.numItems }

// NumFoots returns the flattened subtree footprint count.
func (a *SymbolArtifacts) NumFoots() int { return a.numFoots }

// itemSpan locates the child span containing item index i (-1 for own).
func (a *SymbolArtifacts) itemSpan(i int) int {
	if i < a.OwnItemEnd() {
		return -1
	}
	lo, hi := 0, len(a.Children)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if a.Children[mid].ItemStart <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// footSpan locates the child span containing foot index i (-1 for own).
func (a *SymbolArtifacts) footSpan(i int) int {
	if i < a.ownFootEnd() {
		return -1
	}
	lo, hi := 0, len(a.Children)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if a.Children[mid].FootStart <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// ItemView returns a pointer to the stored item for index i. Geometry
// (Layer, Bounds, Reg) is always frame-correct; on a Virtual artifact the
// Path, Net, and Dev of embedded items are in the CHILD's frame — use
// ResolveItem when those matter.
func (a *SymbolArtifacts) ItemView(i int) *ConnItem {
	if !a.Virtual || i < a.OwnItemEnd() {
		return &a.Items[i]
	}
	sp := &a.Children[a.itemSpan(i)]
	return &sp.sd.items[i-sp.ItemStart]
}

// ResolveItem returns a frame-correct copy of item i: geometry and path
// as stored in the span embedding (span construction already prefixed the
// call name), Dev offset into this frame, Net set to this frame's local
// class (NoNet for support geometry).
func (a *SymbolArtifacts) ResolveItem(i int) ConnItem {
	if !a.Virtual || i < a.OwnItemEnd() {
		return a.Items[i]
	}
	sp := &a.Children[a.itemSpan(i)]
	it := sp.sd.items[i-sp.ItemStart]
	if it.Dev >= 0 {
		it.Dev += sp.DevStart
	}
	if f := a.ItemFootAt(i); f >= 0 {
		it.Net = NetID(a.ClassOf[f])
	} else {
		it.Net = NoNet
	}
	return it
}

// FootView returns a pointer to the stored footprint for index i; all
// fields, including the Declared name, are frame-correct (span
// construction qualified them on embedding). Embedded footprints always
// resolve through the span storage: unlike Items, the flattened Foots
// array is never materialized on composites, whatever the Virtual flag.
func (a *SymbolArtifacts) FootView(i int) *LocalFoot {
	if i < a.ownFootEnd() {
		return &a.Foots[i]
	}
	sp := &a.Children[a.footSpan(i)]
	return &sp.sd.foots[i-sp.FootStart]
}

// ItemFootAt returns the footprint index of item i, -1 for support
// geometry. ItemFoot is full subtree length on every artifact, so this is
// a direct index.
func (a *SymbolArtifacts) ItemFootAt(i int) int {
	return a.ItemFoot[i]
}

// FootItemAt returns the item index of footprint f.
func (a *SymbolArtifacts) FootItemAt(f int) int {
	if a.footItem == nil {
		a.footItem = make([]int, a.NumFoots())
		for i, ff := range a.ItemFoot {
			if ff >= 0 {
				a.footItem[ff] = i
			}
		}
	}
	return a.footItem[f]
}

// MayHaveLayer reports whether the subtree may contain items on layer l
// (conservative: true can be a false positive for layers ≥ 63). With
// enabled false it returns false, letting callers fold a feature gate in.
func (a *SymbolArtifacts) MayHaveLayer(l tech.LayerID, enabled bool) bool {
	return enabled && a.LayerMask&layerBit(l) != 0
}

// SpanItems exposes the embedded child's items in this frame (geometry
// frame-correct; Path/Net/Dev are child-frame — see ResolveItem).
func (sp *ChildSpan) SpanItems() []ConnItem { return sp.sd.items }

// OwnItemEnd returns the end of the symbol's own (non-embedded) items.
func (a *SymbolArtifacts) OwnItemEnd() int {
	if len(a.Children) > 0 {
		return a.Children[0].ItemStart
	}
	return len(a.Items)
}

func (a *SymbolArtifacts) ownFootEnd() int {
	if len(a.Children) > 0 {
		return a.Children[0].FootStart
	}
	return len(a.Foots)
}

// FootSkel returns the (lazily computed) skeleton of footprint i, in the
// 4× coordinates of geom.Skeleton. Own footprints erode their region;
// embedded footprints transform the child definition's cached skeleton —
// erosion commutes with Manhattan rigid transforms, so the result is the
// region the flat extractor would have eroded, at transform cost instead
// of erosion cost, shared across every instance of the child.
func (a *SymbolArtifacts) FootSkel(i int) geom.Region {
	if si := a.footSpan(i); si >= 0 {
		sp := &a.Children[si]
		return sp.sd.footSkel(i - sp.FootStart)
	}
	if a.skels == nil {
		a.skels = make(map[int]geom.Region)
	}
	if s, ok := a.skels[i]; ok {
		return s
	}
	f := &a.Foots[i]
	s := geom.Skeleton(f.Reg, f.MinWidth)
	a.skels[i] = s
	return s
}

// spanKey identifies one transformed embedding of a subtree.
type spanKey struct {
	hash layout.Hash
	t    geom.Transform
	name string
}

// spanClassKey identifies a family of embeddings that differ only by
// translation: same child content, same orientation. Every member of the
// class is the same geometry shifted, so once one member is built the
// rest derive by translating it — the array-regularity dedup that makes a
// uniform 64×64 array cost one full embedding plus cheap copies.
type spanClassKey struct {
	hash   layout.Hash
	orient geom.Orient
}

// spanData is the cached transformed embedding of a child subtree:
// the child's artifacts mapped through one call transform with paths
// prefixed by the call name. Shared by every parent that places the same
// content under the same transform and name, and across runs.
type spanData struct {
	childArt *SymbolArtifacts
	t        geom.Transform
	name     string      // call name the paths/declared names are prefixed with
	items    []ConnItem  // parent-frame coordinates, relative paths prefixed
	foots    []LocalFoot // span index left unset; parent assigns
	devs     []DeviceUse // TerminalNets nil; parent remaps classes
	gates    []Keepout
	keeps    []Keepout
	issues   []Issue
	bounds   geom.Rect

	skels map[int]geom.Region // lazily transformed child skeletons

	// Dense bounds tables for the cross-pair refinement scans: reading a
	// 32-byte rect stream instead of striding the full 100+-byte struct
	// array keeps the hot collect() loops in cache. Built eagerly with the
	// span (they are also read concurrently by the engine's parallel
	// definition builds, so they must never be materialized lazily).
	itemBoxes []geom.Rect
	footBoxes []geom.Rect

	// pathTab/itemPathIdx/devPathIdx index the distinct relative paths of
	// items and devices, built lazily on a family representative the first
	// time a sibling derives from it (extraction is single-goroutine, so
	// the lazy build needs no lock). Artifact item order favors sweep
	// locality over instance order, so consecutive-run memoization degrades
	// to one allocation per item; the table lets a derived span swap each
	// distinct path once and assign by index.
	pathTab     []string
	itemPathIdx []int32
	devPathIdx  []int32
}

// pathIndex builds the representative's distinct-path table.
func (sd *spanData) pathIndex() {
	if sd.pathTab != nil {
		return
	}
	idx := make(map[string]int32, 64)
	tab := make([]string, 0, 64)
	of := func(p string) int32 {
		if i, ok := idx[p]; ok {
			return i
		}
		i := int32(len(tab))
		tab = append(tab, p)
		idx[p] = i
		return i
	}
	sd.itemPathIdx = make([]int32, len(sd.items))
	for i := range sd.items {
		sd.itemPathIdx[i] = of(sd.items[i].Path)
	}
	sd.devPathIdx = make([]int32, len(sd.devs))
	for i := range sd.devs {
		sd.devPathIdx[i] = of(sd.devs[i].Path)
	}
	sd.pathTab = tab
}

func (sd *spanData) footSkel(i int) geom.Region {
	if sd.skels == nil {
		sd.skels = make(map[int]geom.Region)
	}
	if s, ok := sd.skels[i]; ok {
		return s
	}
	s := sd.childArt.FootSkel(i).TransformBy(scale4(sd.t))
	sd.skels[i] = s
	return s
}

// scale4 lifts a Manhattan transform into the 4× coordinate space of
// geom.Skeleton.
func scale4(t geom.Transform) geom.Transform {
	return geom.Transform{Orient: t.Orient, Trans: geom.Point{X: t.Trans.X * 4, Y: t.Trans.Y * 4}}
}

// Cache is the content-addressed artifact store backing incremental
// extraction. It is not safe for concurrent use, and it recycles working
// arrays across runs: only the MOST RECENT IncExtraction produced through
// a Cache is valid — a new extraction overwrites the previous result's
// Instances and (when the root changed) its root classification in place.
// The public Netlist (nets, devices) is never recycled and stays valid
// indefinitely. This is the engine's contract: one live run per session.
type Cache struct {
	arts  map[layout.Hash]*SymbolArtifacts
	spans map[spanKey]*spanData
	infos map[layout.Hash]*analysisEntry

	gen     int
	artGen  map[layout.Hash]int
	spanGen map[spanKey]int

	// spanClass indexes one representative embedding per (content,
	// orientation) family; span misses whose family has a representative
	// derive from it by translation instead of re-transforming the child.
	spanClass    map[spanClassKey]*spanData
	spanClassGen map[spanClassKey]int

	// Context-dedup effectiveness counters (cumulative for the session):
	// a hit is an embedding derived by translation from its family
	// representative, a miss is a full transform build.
	ctxHits, ctxMisses int

	// Reusable per-build scratch: the union-find and classification
	// working arrays are dead the moment a build returns, so one buffer
	// serves every build (the Cache is single-threaded by contract).
	ufScratch    uf
	classScratch []int32
	instScratch  []Instance
	spareClassOf []int

	// lastRoot is the most recent changed top-level artifact. A root's
	// subtree hash changes on every edit, so its (large, flat-sized)
	// arrays are dead weight the moment the next edit lands; buildRoot
	// recycles them instead of re-allocating ~megabytes per recheck.
	// Devices and their TerminalNets maps escape into the public Netlist
	// and are never recycled.
	lastRoot *SymbolArtifacts

	// regStore slab-allocates the storage of every transformed region the
	// span embeddings hold: two allocations per slab instead of two per
	// item region.
	regStore geom.RegionStore

	// lastInc/lastIssues retain the most recent virtual extraction so a
	// window-scoped root edit can patch it in place (tryPatchRoot) instead
	// of re-deriving the root. They obey the same contract as instScratch:
	// only the most recent IncExtraction is valid.
	lastInc    *IncExtraction
	lastIssues []Issue
}

type analysisEntry struct {
	info  *device.Info
	probs []device.Problem
}

// NewCache creates an empty artifact cache.
func NewCache() *Cache {
	return &Cache{
		arts:         make(map[layout.Hash]*SymbolArtifacts),
		spans:        make(map[spanKey]*spanData),
		infos:        make(map[layout.Hash]*analysisEntry),
		artGen:       make(map[layout.Hash]int),
		spanGen:      make(map[spanKey]int),
		spanClass:    make(map[spanClassKey]*spanData),
		spanClassGen: make(map[spanClassKey]int),
	}
}

// Len reports how many definition artifacts are cached.
func (c *Cache) Len() int { return len(c.arts) }

// ContextStats reports the cumulative span context-dedup counters: hits
// are embeddings derived by translation from a same-(content, orientation)
// representative, misses are full transform builds.
func (c *Cache) ContextStats() (hits, misses int) { return c.ctxHits, c.ctxMisses }

// Analyze memoizes device.Analyze by the symbol's own content hash.
func (c *Cache) Analyze(s *layout.Symbol, ownHash layout.Hash, tc *tech.Technology) (*device.Info, []device.Problem) {
	if e, ok := c.infos[ownHash]; ok {
		return e.info, e.probs
	}
	info, probs := device.Analyze(s, tc)
	c.infos[ownHash] = &analysisEntry{info: info, probs: probs}
	return info, probs
}

// evictAge is how many runs an unused entry survives before eviction. The
// root's artifacts turn over on every edit (its subtree hash always
// changes), so a short horizon keeps a busy session's memory flat while
// still riding out short A/B edit oscillations.
const evictAge = 3

func (c *Cache) evict() {
	for h, g := range c.artGen {
		if c.gen-g >= evictAge {
			delete(c.artGen, h)
			delete(c.arts, h)
		}
	}
	for k, g := range c.spanGen {
		if c.gen-g >= evictAge {
			delete(c.spanGen, k)
			delete(c.spans, k)
		}
	}
	for k, g := range c.spanClassGen {
		if c.gen-g >= evictAge {
			delete(c.spanClassGen, k)
			delete(c.spanClass, k)
		}
	}
}

// Instance is one placement of a definition on the chip: its artifacts
// plus the global transform and the offsets of its subtree within the
// root's flattened arrays. Absolute paths are derived on demand via
// IncExtraction.InstPath — they are needed only when a violation is
// instantiated, and eagerly joining tens of thousands of strings per run
// would dominate the warm-recheck floor.
type Instance struct {
	Art       *SymbolArtifacts
	Parent    int    // index of the parent instance, -1 for the root
	Name      string // call name within the parent ("" for the root)
	T         geom.Transform
	ItemStart int
	FootStart int
}

// EditWindow scopes one run's dirtiness to in-place geometry edits of the
// top symbol's own elements (layout.DirtyInfo, converted by the engine).
// The extractor may use it to patch the previous extraction instead of
// re-deriving the root; it is free to ignore it and rebuild.
type EditWindow struct {
	Elems  []int     // edited element indices
	Window geom.Rect // union of old and new bounds of the edits
}

// RootPatch reports that extraction reused the previous run's netlist and
// root artifacts, updating the changed items in place. Items lists the
// root item indices whose geometry moved (possibly none: an unchanged
// design replays verbatim). Consumers holding per-item caches keyed by
// PrevHash can migrate them to the new root hash and patch the listed
// items instead of rebuilding.
type RootPatch struct {
	PrevHash layout.Hash
	Items    []int
}

// IncExtraction is ExtractIncremental's result: the flat Extraction the
// checker stages consume, plus the definition/instance structure the
// incremental interaction stage keys its caches on.
type IncExtraction struct {
	*Extraction
	Root      *SymbolArtifacts
	Hashes    map[*layout.Symbol]layout.SymbolHashes
	Instances []Instance // depth-first preorder; [0] is the root
	// Patch is non-nil when this extraction was produced by patching the
	// previous one in place rather than re-deriving the root.
	Patch *RootPatch
}

// GlobalNet resolves a subtree-local net class of one instance to the
// chip-global net id.
func (x *IncExtraction) GlobalNet(inst int, class int) NetID {
	in := &x.Instances[inst]
	return NetID(x.Root.ClassOf[in.FootStart+in.Art.ClassFoot[class]])
}

// ExtractIncremental is ExtractFull restructured over the artifact cache:
// identical output (see TestIncrementalMatchesFull), but per-definition
// work is reused across instances and across runs. hashes may be nil, in
// which case content hashes are computed here.
func ExtractIncremental(d *layout.Design, tc *tech.Technology, c *Cache, hashes map[*layout.Symbol]layout.SymbolHashes) (*IncExtraction, []Issue, error) {
	return extractIncremental(d, tc, c, hashes, false, nil)
}

// ExtractVirtual is ExtractIncremental without materializing the flat
// item array: Extraction.Items is nil and per-item access goes through
// Root.ResolveItem / ItemView. This is the engine's steady-state path —
// the chip is never fully instantiated, so a warm recheck's cost scales
// with the edit, not with the flattened chip size.
func ExtractVirtual(d *layout.Design, tc *tech.Technology, c *Cache, hashes map[*layout.Symbol]layout.SymbolHashes) (*IncExtraction, []Issue, error) {
	return extractIncremental(d, tc, c, hashes, true, nil)
}

// ExtractVirtualWindow is ExtractVirtual with an optional edit window: when
// the caller can prove the only change since the previous extraction is
// the in-place geometry edits win describes (top symbol only), the
// extractor may patch the previous result instead of re-deriving the root.
// The result is identical either way (Patch reports which path was taken);
// win == nil is exactly ExtractVirtual.
func ExtractVirtualWindow(d *layout.Design, tc *tech.Technology, c *Cache, hashes map[*layout.Symbol]layout.SymbolHashes, win *EditWindow) (*IncExtraction, []Issue, error) {
	return extractIncremental(d, tc, c, hashes, true, win)
}

func extractIncremental(d *layout.Design, tc *tech.Technology, c *Cache, hashes map[*layout.Symbol]layout.SymbolHashes, virtual bool, win *EditWindow) (*IncExtraction, []Issue, error) {
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if hashes == nil {
		hashes = d.ContentHashes()
	}
	c.gen++
	if virtual {
		if inc, issues, ok := c.tryPatchRoot(d.Top, tc, hashes, win); ok {
			c.evict()
			return inc, issues, nil
		}
	}
	root := c.buildRoot(d.Top, hashes, tc, virtual)
	c.evict()

	issues := make([]Issue, 0, len(root.Issues))
	issues = append(issues, root.Issues...)
	// Sequential footprint resolution with a span cursor (the assembly
	// visits foots strictly in index order).
	ownEnd := root.ownFootEnd()
	cursor := 0
	foot := func(i int) (geom.Rect, string, int) {
		if i < ownEnd {
			f := &root.Foots[i]
			return f.Bounds, f.Declared, f.Elements
		}
		for cursor < len(root.Children) && i >= root.Children[cursor].FootEnd {
			cursor++
		}
		sp := &root.Children[cursor]
		f := &sp.sd.foots[i-sp.FootStart]
		return f.Bounds, f.Declared, f.Elements
	}
	nl := assembleNets(root.NumClasses, root.ClassOf, foot, root.NumFoots(), root.Devices)
	issues = nameNets(nl, &issues)

	ex := &Extraction{
		Netlist:      nl,
		Gates:        root.Gates,
		BaseKeepouts: root.BaseKeepouts,
	}
	if !root.Virtual {
		ex.Items = root.Items
	}
	netAt := func(i int) NetID {
		if f := root.ItemFootAt(i); f >= 0 {
			return NetID(root.ClassOf[f])
		}
		return NoNet
	}
	for _, p := range root.IllegalCands {
		if netAt(p[0]) != netAt(p[1]) {
			ex.IllegalPairs = append(ex.IllegalPairs, p)
		}
	}
	inc := &IncExtraction{Extraction: ex, Root: root, Hashes: hashes}
	if cap(c.instScratch) >= root.Instances {
		inc.Instances = c.instScratch[:0]
	}
	inc.buildInstances()
	c.instScratch = inc.Instances
	if virtual {
		c.lastInc, c.lastIssues = inc, issues
	} else {
		c.lastInc, c.lastIssues = nil, nil
	}
	return inc, issues, nil
}

// tryPatchRoot attempts the windowed recheck: when the design's only
// change since the previous virtual extraction is in-place geometry edits
// of top-level elements whose nets are provably isolated — each edited
// element is the sole member of an anonymous net, touches nothing on its
// layer before or after the move — the previous extraction stays valid
// verbatim except for the moved geometry, which is patched in place. The
// unchanged-hash case (no observable edit) replays with an empty patch.
// Any condition failure returns ok == false and the caller re-derives.
func (c *Cache) tryPatchRoot(top *layout.Symbol, tc *tech.Technology, hashes map[*layout.Symbol]layout.SymbolHashes, win *EditWindow) (*IncExtraction, []Issue, bool) {
	art := c.lastRoot
	inc := c.lastInc
	if art == nil || inc == nil || !art.Virtual || art.Sym != top || inc.Root != art || c.arts[art.Hash] != art {
		return nil, nil, false
	}
	newHash := hashes[top].Subtree
	if newHash == art.Hash {
		// Nothing changed: the previous extraction is the answer.
		inc.Hashes = hashes
		inc.Patch = &RootPatch{PrevHash: art.Hash}
		c.artGen[art.Hash] = c.gen
		c.refreshSubtree(art)
		return inc, c.lastIssues, true
	}
	if win == nil || len(win.Elems) == 0 || top.IsPrimitive() {
		return nil, nil, false
	}

	// Own items of the root in element order (skipping elements that
	// failed to materialize — those cannot be patched).
	ownEnd := art.OwnItemEnd()
	itemOfElem := make(map[int]int, ownEnd)
	for i := 0; i < ownEnd; i++ {
		if e := art.Items[i].Elem; e >= 0 {
			itemOfElem[e] = i
		}
	}
	type patchItem struct {
		item, foot, class int
		newBounds         geom.Rect
		newReg            geom.Region
	}
	nl := inc.Netlist
	patches := make([]patchItem, 0, len(win.Elems))
	seen := make(map[int]bool, len(win.Elems))
	for _, ei := range win.Elems {
		if seen[ei] {
			continue
		}
		seen[ei] = true
		if ei < 0 || ei >= len(top.Elements) {
			return nil, nil, false
		}
		el := top.Elements[ei]
		it, ok := itemOfElem[ei]
		if !ok || el.Net != "" {
			return nil, nil, false
		}
		f := art.ItemFoot[it]
		if f < 0 {
			return nil, nil, false
		}
		foot := &art.Foots[f]
		if el.Layer != foot.Layer {
			return nil, nil, false
		}
		cl := art.ClassOf[f]
		net := &nl.Nets[cl]
		// The edited element must be electrically inert: the sole member
		// of an anonymous net with no device terminals, and no candidate
		// illegal connection. Then moving it cannot change any class, any
		// name, or any extraction issue — only its own geometry.
		if len(net.Declared) != 0 || len(net.Terminals) != 0 || net.Elements != 1 {
			return nil, nil, false
		}
		for _, p := range art.IllegalCands {
			if p[0] == it || p[1] == it {
				return nil, nil, false
			}
		}
		reg, err := el.Region()
		if err != nil {
			return nil, nil, false
		}
		patches = append(patches, patchItem{item: it, foot: f, class: cl, newBounds: reg.Bounds(), newReg: reg})
	}
	// The new position must stay isolated on its layer: no bounds contact
	// with any other footprint (own or embedded). Contact would create
	// connectivity or an illegal-connection candidate — either way the
	// partition changes and the patch does not apply. The scan sees the
	// other patched elements at their old positions, which can only bail
	// conservatively; mutual contact among new positions is checked after.
	for _, pi := range patches {
		nb := pi.newBounds
		layer := art.Foots[pi.foot].Layer
		for f := range art.Foots {
			if f != pi.foot && art.Foots[f].Layer == layer && art.Foots[f].Bounds.Touches(nb) {
				return nil, nil, false
			}
		}
		for si := range art.Children {
			sp := &art.Children[si]
			if !sp.Bounds.Touches(nb) {
				continue
			}
			for local, b := range sp.sd.footBoxes {
				if b.Touches(nb) && sp.sd.foots[local].Layer == layer {
					return nil, nil, false
				}
			}
		}
	}
	for i := range patches {
		for j := i + 1; j < len(patches); j++ {
			if art.Foots[patches[i].foot].Layer == art.Foots[patches[j].foot].Layer &&
				patches[i].newBounds.Touches(patches[j].newBounds) {
				return nil, nil, false
			}
		}
	}

	// Commit: re-key the root under its new hash and patch the moved
	// geometry in place. Class structure, names, issues, devices, and
	// instances are all untouched by construction.
	prevHash := art.Hash
	delete(c.arts, prevHash)
	delete(c.artGen, prevHash)
	patched := make([]int, len(patches))
	for i, pi := range patches {
		art.Foots[pi.foot].Bounds = pi.newBounds
		art.Foots[pi.foot].Reg = pi.newReg
		art.Items[pi.item].Bounds = pi.newBounds
		art.Items[pi.item].Reg = pi.newReg
		delete(art.skels, pi.foot)
		// assembleNets unions the sole footprint's bounds into the zero
		// rect, which is the identity: the net bounds ARE the footprint's.
		nl.Nets[pi.class].Bounds = pi.newBounds
		patched[i] = pi.item
	}
	art.Hash = newHash
	c.arts[newHash] = art
	c.artGen[newHash] = c.gen
	c.refreshSubtree(art)
	inc.Hashes = hashes
	inc.Patch = &RootPatch{PrevHash: prevHash, Items: patched}
	return inc, c.lastIssues, true
}

// refreshSubtree marks every artifact and span reachable from art as used
// this generation, so a patched run ages nothing that is still live.
func (c *Cache) refreshSubtree(art *SymbolArtifacts) {
	seen := make(map[*SymbolArtifacts]bool, 16)
	var walk func(a *SymbolArtifacts)
	walk = func(a *SymbolArtifacts) {
		for si := range a.Children {
			sp := &a.Children[si]
			if c.arts[sp.Art.Hash] == sp.Art {
				c.artGen[sp.Art.Hash] = c.gen
			}
			key := spanKey{sp.Art.Hash, sp.Call.T, sp.Call.Name}
			if c.spans[key] == sp.sd {
				c.spanGen[key] = c.gen
			}
			ck := spanClassKey{sp.Art.Hash, sp.Call.T.Orient}
			if _, ok := c.spanClass[ck]; ok {
				c.spanClassGen[ck] = c.gen
			}
			if !seen[sp.Art] {
				seen[sp.Art] = true
				walk(sp.Art)
			}
		}
	}
	walk(art)
}

func (x *IncExtraction) buildInstances() {
	if x.Instances == nil {
		x.Instances = make([]Instance, 0, x.Root.Instances)
	}
	x.Instances = append(x.Instances, Instance{Art: x.Root, Parent: -1, T: geom.Identity})
	var rec func(pi int)
	rec = func(pi int) {
		inst := x.Instances[pi] // copy: the slice reallocates while growing
		for si := range inst.Art.Children {
			sp := &inst.Art.Children[si]
			ci := len(x.Instances)
			x.Instances = append(x.Instances, Instance{
				Art:       sp.Art,
				Parent:    pi,
				Name:      sp.Call.Name,
				T:         sp.Call.T.Compose(inst.T),
				ItemStart: inst.ItemStart + sp.ItemStart,
				FootStart: inst.FootStart + sp.FootStart,
			})
			rec(ci)
		}
	}
	rec(0)
}

// InstPath materializes the absolute instance path of instance ii.
func (x *IncExtraction) InstPath(ii int) string {
	if ii == 0 {
		return ""
	}
	// Collect names root-ward, then join in path order.
	var names []string
	for i := ii; i > 0; i = x.Instances[i].Parent {
		names = append(names, x.Instances[i].Name)
	}
	out := names[len(names)-1]
	for k := len(names) - 2; k >= 0; k-- {
		out += "." + names[k]
	}
	return out
}

// buildRoot builds the design top's artifacts. A root rebuilt in virtual
// mode never materializes the embedded item/footprint arrays — "the chip
// is never fully instantiated" — so an edit-recheck pays for offsets and
// classification, not for copying the flattened chip. On a content change
// the previous root entry is retired immediately (its hash can never be
// asked for again except by an exact undo, which simply rebuilds).
func (c *Cache) buildRoot(s *layout.Symbol, hs map[*layout.Symbol]layout.SymbolHashes, tc *tech.Technology, virtual bool) *SymbolArtifacts {
	h := hs[s].Subtree
	if a, ok := c.arts[h]; ok && a.Virtual == virtual {
		c.artGen[h] = c.gen
		return a
	}
	if old := c.lastRoot; old != nil && c.arts[old.Hash] == old {
		delete(c.arts, old.Hash)
		delete(c.artGen, old.Hash)
		// The retired root's classification arrays are unreachable from
		// any report (only the run-local extraction read them); recycle.
		c.spareClassOf = old.ClassOf
	}
	art := c.buildNew(s, hs, tc, virtual)
	c.lastRoot = art
	return art
}

// build computes (or returns cached) artifacts for one symbol. Non-root
// definitions are materialized: the engine's per-definition interaction
// replay indexes their flattened item arrays on its hottest path, where
// accessor indirection measurably outweighs the storage saved (the root —
// the one artifact that turns over on every edit — stays virtual).
func (c *Cache) build(s *layout.Symbol, hs map[*layout.Symbol]layout.SymbolHashes, tc *tech.Technology) *SymbolArtifacts {
	h := hs[s].Subtree
	if a, ok := c.arts[h]; ok {
		c.artGen[h] = c.gen
		return a
	}
	return c.buildNew(s, hs, tc, false)
}

func (c *Cache) buildNew(s *layout.Symbol, hs map[*layout.Symbol]layout.SymbolHashes, tc *tech.Technology, virtual bool) *SymbolArtifacts {
	h := hs[s].Subtree
	art := &SymbolArtifacts{Sym: s, Hash: h}
	u, pending := c.populate(art, s, hs, tc, virtual)
	for _, pu := range pending {
		u.union(pu[0], pu[1])
	}
	levelIllegal := c.connectSweep(art, u)
	art.ClassOf, art.NumClasses = c.classifyReuse(u, art.NumFoots(), c.spareClassOf)
	c.spareClassOf = nil
	art.ClassFoot = make([]int, art.NumClasses)
	for i := art.NumFoots() - 1; i >= 0; i-- {
		art.ClassFoot[art.ClassOf[i]] = i // first foot wins (reverse loop)
	}
	// Assign local classes to footprint-backed items.
	for i := range art.Items {
		if f := art.ItemFoot[i]; f >= 0 {
			art.Items[i].Net = NetID(art.ClassOf[f])
		}
	}
	// A primitive's own device recorded provisional foot indices in
	// TerminalNets; resolve them to classes.
	if s.IsPrimitive() && len(art.Devices) == 1 {
		dev := &art.Devices[0]
		for ti := range dev.TerminalNets {
			dev.TerminalNets[ti].Net = NetID(art.ClassOf[int(dev.TerminalNets[ti].Net)])
		}
	}
	// Remap embedded devices' terminal classes into this frame.
	for si := range art.Children {
		sp := &art.Children[si]
		for di := sp.DevStart; di < sp.DevEnd; di++ {
			childDev := &sp.Art.Devices[di-sp.DevStart]
			tns := make([]TerminalNet, len(childDev.TerminalNets))
			for ti := range childDev.TerminalNets {
				cc := childDev.TerminalNets[ti].Net
				tns[ti] = TerminalNet{
					Name: childDev.TerminalNets[ti].Name,
					Net:  NetID(art.ClassOf[sp.FootStart+sp.Art.ClassFoot[int(cc)]]),
				}
			}
			art.Devices[di].TerminalNets = tns
		}
	}
	// Footprint pairs translate to item pairs; inherited candidates first
	// (span order), then this level's, both already canonically oriented.
	for _, p := range levelIllegal {
		art.IllegalCands = append(art.IllegalCands, [2]int{art.FootItemAt(p[0]), art.FootItemAt(p[1])})
	}
	art.Instances = 1
	for i := 0; i < art.OwnItemEnd(); i++ {
		art.LayerMask |= layerBit(art.Items[i].Layer)
	}
	for si := range art.Children {
		art.Instances += art.Children[si].Art.Instances
		art.LayerMask |= art.Children[si].Art.LayerMask
	}
	c.arts[h] = art
	c.artGen[h] = c.gen
	return art
}

// layerBit maps a layer id into the conservative LayerMask (layers ≥ 63
// share the overflow bit).
func layerBit(l tech.LayerID) uint64 {
	if l >= 63 {
		return 1 << 63
	}
	return 1 << uint(l)
}

// populate fills the walk-order arrays of art (items, foots, devices,
// keepouts, issues, child spans) and returns the union-find seeded with
// child partitions, plus pending unions (device-internal node fusing).
// With virtual set, embedded item/footprint arrays are not materialized.
func (c *Cache) populate(art *SymbolArtifacts, s *layout.Symbol, hs map[*layout.Symbol]layout.SymbolHashes, tc *tech.Technology, virtual bool) (*uf, [][2]int) {
	var pending [][2]int
	if s.IsPrimitive() {
		info, _ := c.Analyze(s, hs[s].Own, tc)
		if info == nil {
			return c.takeUF(0), nil
		}
		dev := DeviceUse{
			Symbol: s, Type: s.DeviceType, Class: info.Class,
			T: geom.Identity, Info: info,
		}
		nodeToFoot := make(map[int]int)
		for _, term := range info.Terminals {
			if term.Reg.Empty() {
				continue
			}
			idx := len(art.Foots)
			art.Foots = append(art.Foots, LocalFoot{
				Layer: term.Layer, Bounds: term.Reg.Bounds(), Reg: term.Reg,
				MinWidth: tc.Layer(term.Layer).MinWidth,
			})
			art.Items = append(art.Items, ConnItem{
				Layer: term.Layer, Bounds: term.Reg.Bounds(), Reg: term.Reg,
				Dev: 0, Sym: s, Elem: -1,
			})
			art.ItemFoot = append(art.ItemFoot, idx)
			if prev, seen := nodeToFoot[term.Node]; seen {
				pending = append(pending, [2]int{prev, idx})
			} else {
				nodeToFoot[term.Node] = idx
			}
			if _, have := dev.TerminalNet(term.Name); !have {
				// Provisional foot index; build() remaps to classes.
				dev.TerminalNets = append(dev.TerminalNets, TerminalNet{Name: term.Name, Net: NetID(idx)})
			}
		}
		// Support geometry not covered by terminals: checkable but netless.
		// One k-way sweep per layer instead of a fold of pairwise unions.
		termRegs := make(map[tech.LayerID][]geom.Region)
		for _, term := range info.Terminals {
			termRegs[term.Layer] = append(termRegs[term.Layer], term.Reg)
		}
		termCover := make(map[tech.LayerID]geom.Region, len(termRegs))
		for layer, regs := range termRegs {
			termCover[layer] = geom.BulkUnion(regs)
		}
		for _, l := range tc.Layers() {
			reg := s.LayerRegion(l.ID)
			if reg.Empty() {
				continue
			}
			if cover, ok := termCover[l.ID]; ok {
				reg = reg.Subtract(cover)
				if reg.Empty() {
					continue
				}
			}
			art.Items = append(art.Items, ConnItem{
				Layer: l.ID, Bounds: reg.Bounds(), Reg: reg,
				Net: NoNet, Dev: 0, Sym: s, Elem: -1,
			})
			art.ItemFoot = append(art.ItemFoot, -1)
		}
		if !info.Gate.Empty() {
			art.Gates = append(art.Gates, Keepout{Dev: 0, Reg: info.Gate, Bounds: info.Gate.Bounds()})
		}
		if !info.BaseKeepout.Empty() {
			art.BaseKeepouts = append(art.BaseKeepouts, Keepout{
				Dev: 0, Reg: info.BaseKeepout, Bounds: info.BaseKeepout.Bounds(),
				Clearance: info.BaseClearance,
			})
		}
		sort.Slice(dev.TerminalNets, func(i, j int) bool {
			return dev.TerminalNets[i].Name < dev.TerminalNets[j].Name
		})
		art.Devices = append(art.Devices, dev)
		art.numItems, art.numFoots = len(art.Items), len(art.Foots)
		ufp := c.takeUF(len(art.Foots))
		// Defer the class remap of TerminalNets to build() via a pending
		// trick: record foot-index values now; build() remaps own devices.
		return ufp, pending
	}

	// Composite: own elements first, then each call's embedded subtree.
	// Child artifacts and spans are resolved up front so every array can
	// be sized exactly once — the root of a large chip embeds tens of
	// thousands of entries, and incremental regrowth would dominate the
	// whole warm-recheck budget. In virtual mode the embedded item and
	// footprint arrays are not copied at all: spans record offsets and the
	// accessors resolve entries straight out of the shared span cache.
	childArts := make([]*SymbolArtifacts, len(s.Calls))
	spans := make([]*spanData, len(s.Calls))
	nItems, nFoots, nDevs, nGates, nKeeps, nIssues, nIll := len(s.Elements), len(s.Elements), 0, 0, 0, 0, 0
	for ci, call := range s.Calls {
		childArts[ci] = c.build(call.Target, hs, tc)
		spans[ci] = c.span(childArts[ci], call.T, call.Name, tc)
		nItems += childArts[ci].NumItems()
		nFoots += childArts[ci].NumFoots()
		nDevs += len(childArts[ci].Devices)
		nGates += len(childArts[ci].Gates)
		nKeeps += len(childArts[ci].BaseKeepouts)
		nIssues += len(childArts[ci].Issues)
		nIll += len(childArts[ci].IllegalCands)
	}
	art.Virtual = virtual
	ownCap := nItems
	if virtual {
		ownCap = len(s.Elements)
	}
	art.Items = make([]ConnItem, 0, ownCap)
	art.Foots = make([]LocalFoot, 0, len(s.Elements))
	art.ItemFoot = make([]int, 0, nItems)
	art.Children = make([]ChildSpan, 0, len(s.Calls))
	if nGates > 0 {
		art.Gates = make([]Keepout, 0, nGates)
	}
	if nKeeps > 0 {
		art.BaseKeepouts = make([]Keepout, 0, nKeeps)
	}
	if nIssues > 0 {
		art.Issues = make([]Issue, 0, nIssues)
	}
	if nIll > 0 {
		art.IllegalCands = make([][2]int, 0, nIll)
	}
	art.Devices = make([]DeviceUse, 0, nDevs)
	for _, e := range s.Elements {
		reg, err := e.Region()
		if err != nil {
			art.Issues = append(art.Issues, Issue{
				Rule: "NET.ELEM", Detail: err.Error(), Where: e.Bounds(),
			})
			continue
		}
		declared := ""
		if e.Net != "" {
			declared = e.Net // frame-relative; spans re-qualify on embedding
		}
		art.Foots = append(art.Foots, LocalFoot{
			Layer: e.Layer, Bounds: reg.Bounds(), Reg: reg,
			Declared: declared, Elements: 1,
			MinWidth: tc.Layer(e.Layer).MinWidth,
		})
		art.Items = append(art.Items, ConnItem{
			Layer: e.Layer, Bounds: reg.Bounds(), Reg: reg,
			Dev: -1, Sym: s, Elem: e.Index,
		})
		art.ItemFoot = append(art.ItemFoot, len(art.Foots)-1)
	}
	itemCount, footCount := len(art.Items), len(art.Foots)
	ufp := c.takeUF(nFoots)
	for ci := range s.Calls {
		call := s.Calls[ci]
		childArt := childArts[ci]
		sd := spans[ci]
		sp := ChildSpan{
			Call: call, Art: childArt, sd: sd, Bounds: sd.bounds,
			ItemStart: itemCount, FootStart: footCount, DevStart: len(art.Devices),
		}
		if !virtual {
			// Bulk-copy the transformed embedding, then fix the offsets.
			art.Items = append(art.Items, sd.items...)
			if sp.DevStart > 0 {
				for i := sp.ItemStart; i < len(art.Items); i++ {
					if art.Items[i].Dev >= 0 {
						art.Items[i].Dev += sp.DevStart
					}
				}
			}
		}
		// ItemFoot is maintained at full subtree length in both modes.
		for _, cf := range childArt.ItemFoot {
			if cf >= 0 {
				art.ItemFoot = append(art.ItemFoot, sp.FootStart+cf)
			} else {
				art.ItemFoot = append(art.ItemFoot, -1)
			}
		}
		itemCount += childArt.NumItems()
		footCount += childArt.NumFoots()
		art.Devices = append(art.Devices, sd.devs...) // TerminalNets remapped by build()
		for _, g := range sd.gates {
			g.Dev += sp.DevStart
			art.Gates = append(art.Gates, g)
		}
		for _, k := range sd.keeps {
			k.Dev += sp.DevStart
			art.BaseKeepouts = append(art.BaseKeepouts, k)
		}
		art.Issues = append(art.Issues, sd.issues...)
		sp.ItemEnd = itemCount
		sp.FootEnd = footCount
		sp.DevEnd = len(art.Devices)
		art.Children = append(art.Children, sp)
		// Replay the child's internal partition by index translation.
		for cf := 0; cf < childArt.NumFoots(); cf++ {
			rep := childArt.ClassFoot[childArt.ClassOf[cf]]
			if rep != cf {
				ufp.union(sp.FootStart+rep, sp.FootStart+cf)
			}
		}
		// Inherit the child's illegal-connection candidates.
		for _, p := range childArt.IllegalCands {
			art.IllegalCands = append(art.IllegalCands, [2]int{sp.ItemStart + p[0], sp.ItemStart + p[1]})
		}
	}
	art.numItems, art.numFoots = itemCount, footCount
	return ufp, pending
}

// span returns the cached transformed embedding of childArt under (t, name).
// A miss first looks for a same-(content, orientation) representative to
// derive from by translation; only the first member of each family pays
// for the full transform build.
func (c *Cache) span(childArt *SymbolArtifacts, t geom.Transform, name string, tc *tech.Technology) *spanData {
	key := spanKey{childArt.Hash, t, name}
	if sd, ok := c.spans[key]; ok {
		c.spanGen[key] = c.gen
		return sd
	}
	ck := spanClassKey{childArt.Hash, t.Orient}
	var sd *spanData
	// The representative must reference the identical artifact value: a
	// hash seen again after eviction names a rebuilt artifact whose class
	// numbering the old embedding must not be replayed against.
	if base, ok := c.spanClass[ck]; ok && base.childArt == childArt {
		sd = c.deriveSpan(base, t, name, tc)
		c.ctxHits++
	} else {
		sd = c.buildSpan(childArt, t, name, tc)
		c.spanClass[ck] = sd
		c.ctxMisses++
	}
	c.spanClassGen[ck] = c.gen
	c.spans[key] = sd
	c.spanGen[key] = c.gen
	return sd
}

// buildSpan materializes one transformed embedding from the child's
// artifacts — the full-cost path, taken once per (content, orientation)
// family.
func (c *Cache) buildSpan(childArt *SymbolArtifacts, t geom.Transform, name string, tc *tech.Technology) *spanData {
	sd := &spanData{childArt: childArt, t: t, name: name}
	// The child may be virtual (its flattened arrays live in its own span
	// embeddings), so iteration goes through the accessors.
	nFoots, nItems := childArt.NumFoots(), childArt.NumItems()
	sd.foots = make([]LocalFoot, 0, nFoots)
	addFoot := func(f LocalFoot) {
		f.Bounds = t.ApplyRect(f.Bounds)
		f.Reg = c.regStore.TransformBy(f.Reg, t)
		if f.Declared != "" && !tc.IsRail(f.Declared) {
			f.Declared = name + "." + f.Declared
		}
		sd.foots = append(sd.foots, f)
	}
	for i := range childArt.Foots { // own footprints only, on any artifact
		addFoot(childArt.Foots[i])
	}
	for si := range childArt.Children {
		for _, f := range childArt.Children[si].sd.foots {
			addFoot(f)
		}
	}
	sd.items = make([]ConnItem, 0, nItems)
	// Consecutive items overwhelmingly share the same relative path (all
	// the geometry of one embedded instance comes in one run), so one
	// cached join replaces a per-item string concatenation; footprint-
	// backed items share the footprint's transformed geometry instead of
	// re-deriving it. The walk is sequential: own items first, then each
	// child embedding straight out of the shared span storage — a virtual
	// child's Dev offsets and net classes are mapped into the child frame
	// inline, with no per-item index resolution.
	lastRel, lastJoined := "\x00", ""
	addItem := func(it ConnItem) {
		if fi := childArt.ItemFoot[len(sd.items)]; fi >= 0 {
			it.Bounds = sd.foots[fi].Bounds
			it.Reg = sd.foots[fi].Reg
			it.Net = NetID(childArt.ClassOf[fi])
		} else {
			it.Bounds = t.ApplyRect(it.Bounds)
			it.Reg = c.regStore.TransformBy(it.Reg, t)
			it.Net = NoNet
		}
		if it.Path != lastRel {
			lastRel, lastJoined = it.Path, prefixPath(name, it.Path)
		}
		it.Path = lastJoined
		sd.items = append(sd.items, it)
		sd.bounds = sd.bounds.Union(it.Bounds)
	}
	for i := 0; i < childArt.OwnItemEnd(); i++ {
		addItem(childArt.Items[i])
	}
	if childArt.Virtual {
		for si := range childArt.Children {
			csp := &childArt.Children[si]
			for _, it := range csp.sd.items {
				if it.Dev >= 0 {
					it.Dev += csp.DevStart
				}
				addItem(it)
			}
		}
	} else {
		for i := childArt.OwnItemEnd(); i < len(childArt.Items); i++ {
			addItem(childArt.Items[i])
		}
	}
	sd.devs = make([]DeviceUse, len(childArt.Devices))
	for i, d := range childArt.Devices {
		d.Path = prefixPath(name, d.Path)
		d.T = d.T.Compose(t)
		d.TerminalNets = nil // parent remaps classes
		sd.devs[i] = d
	}
	sd.footBoxes = make([]geom.Rect, len(sd.foots))
	for i := range sd.foots {
		sd.footBoxes[i] = sd.foots[i].Bounds
	}
	sd.itemBoxes = make([]geom.Rect, len(sd.items))
	for i := range sd.items {
		sd.itemBoxes[i] = sd.items[i].Bounds
	}
	sd.gates = transformKeepouts(childArt.Gates, t)
	sd.keeps = transformKeepouts(childArt.BaseKeepouts, t)
	sd.issues = make([]Issue, len(childArt.Issues))
	for i, is := range childArt.Issues {
		is.Where = t.ApplyRect(is.Where)
		sd.issues[i] = is
	}
	return sd
}

// deriveSpan builds the embedding for (t, name) by translating the family
// representative: same child content, same orientation, so every region,
// bounds, and skeleton differs from base's by the constant offset
// d = t.Trans - base.t.Trans, and every path/declared name differs only
// in the leading call-name component. Copy, shift, and re-prefix — no
// region transform, no string qualification logic, no accessor walks.
func (c *Cache) deriveSpan(base *spanData, t geom.Transform, name string, tc *tech.Technology) *spanData {
	d := t.Trans.Sub(base.t.Trans)
	childArt := base.childArt
	sd := &spanData{childArt: childArt, t: t, name: name, bounds: base.bounds.Translate(d)}

	sd.foots = make([]LocalFoot, len(base.foots))
	for i := range base.foots {
		f := base.foots[i]
		f.Bounds = f.Bounds.Translate(d)
		f.Reg = c.regStore.Translate(f.Reg, d)
		// Base qualification left exactly two shapes: rails verbatim, and
		// everything else prefixed with the base call name.
		if f.Declared != "" && !tc.IsRail(f.Declared) {
			f.Declared = name + f.Declared[len(base.name):]
		}
		sd.foots[i] = f
	}

	// Base qualification is a pure prefix swap (base.name → name), so the
	// whole derivation needs one new string per *distinct* path, not per
	// item: the representative's path table maps every item/dev to its
	// distinct path, and this span swaps each table entry once.
	base.pathIndex()
	swapped := make([]string, len(base.pathTab))
	for i, p := range base.pathTab {
		if len(p) == len(base.name) {
			swapped[i] = name
		} else {
			swapped[i] = name + p[len(base.name):]
		}
	}
	sd.items = make([]ConnItem, len(base.items))
	for i := range base.items {
		it := base.items[i]
		if fi := childArt.ItemFoot[i]; fi >= 0 {
			it.Bounds = sd.foots[fi].Bounds
			it.Reg = sd.foots[fi].Reg
		} else {
			it.Bounds = it.Bounds.Translate(d)
			it.Reg = c.regStore.Translate(it.Reg, d)
		}
		it.Path = swapped[base.itemPathIdx[i]]
		sd.items[i] = it
	}

	sd.devs = make([]DeviceUse, len(base.devs))
	for i := range base.devs {
		dv := base.devs[i]
		dv.Path = swapped[base.devPathIdx[i]]
		dv.T.Trans = dv.T.Trans.Add(d)
		sd.devs[i] = dv
	}

	sd.footBoxes = make([]geom.Rect, len(sd.foots))
	for i := range sd.foots {
		sd.footBoxes[i] = sd.foots[i].Bounds
	}
	sd.itemBoxes = make([]geom.Rect, len(sd.items))
	for i := range sd.items {
		sd.itemBoxes[i] = sd.items[i].Bounds
	}
	if len(base.gates) > 0 {
		sd.gates = make([]Keepout, len(base.gates))
		for i, k := range base.gates {
			k.Reg = c.regStore.Translate(k.Reg, d)
			k.Bounds = k.Bounds.Translate(d)
			sd.gates[i] = k
		}
	}
	if len(base.keeps) > 0 {
		sd.keeps = make([]Keepout, len(base.keeps))
		for i, k := range base.keeps {
			k.Reg = c.regStore.Translate(k.Reg, d)
			k.Bounds = k.Bounds.Translate(d)
			sd.keeps[i] = k
		}
	}
	sd.issues = make([]Issue, len(base.issues))
	for i, is := range base.issues {
		is.Where = is.Where.Translate(d)
		sd.issues[i] = is
	}
	return sd
}

func transformKeepouts(ks []Keepout, t geom.Transform) []Keepout {
	if len(ks) == 0 {
		return nil
	}
	out := make([]Keepout, len(ks))
	for i, k := range ks {
		k.Reg = k.Reg.TransformBy(t)
		k.Bounds = t.ApplyRect(k.Bounds)
		out[i] = k
	}
	return out
}

func prefixPath(name, rel string) string {
	if rel == "" {
		return name
	}
	return name + "." + rel
}

// takeUF hands out the cache's reusable union-find sized for n nodes.
func (c *Cache) takeUF(n int) *uf {
	u := &c.ufScratch
	if cap(u.parent) < n {
		u.parent = make([]int, n)
		u.size = make([]int, n)
	}
	u.parent = u.parent[:n]
	u.size = u.size[:n]
	for i := 0; i < n; i++ {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

// classifyReuse is classify with cache-owned scratch and an optional
// recycled output buffer.
func (c *Cache) classifyReuse(u *uf, n int, out []int) ([]int, int) {
	if cap(out) >= n {
		out = out[:n]
	} else {
		out = make([]int, n)
	}
	if cap(c.classScratch) < n {
		c.classScratch = make([]int32, n)
	}
	rootToClass := c.classScratch[:n]
	for i := range rootToClass {
		rootToClass[i] = 0
	}
	numClasses := 0
	for i := 0; i < n; i++ {
		root := u.find(i)
		if cl := rootToClass[root]; cl != 0 {
			out[i] = int(cl - 1)
			continue
		}
		rootToClass[root] = int32(numClasses + 1)
		out[i] = numClasses
		numClasses++
	}
	return out, numClasses
}

// CrossItemPairs enumerates the candidate item pairs whose lowest common
// ancestor is this definition: own-item vs own-item, own-item vs embedded
// child item, and child vs child (different calls), with bounding boxes
// within gap in the L∞ sense — the same predicate as the flat interaction
// sweep. Pairs internal to one child are that child's business. Summing
// each definition's pairs over its instances reproduces the flat sweep's
// candidate multiset exactly (every chip-level pair has a unique LCA).
// Enumeration order is deterministic for identical artifacts.
func (a *SymbolArtifacts) CrossItemPairs(gap int64, emit func(i, j int)) {
	if a.NumItems() < 2 {
		return
	}
	forEachCrossPair(a.NumItems(), a.OwnItemEnd(), a.Children,
		func(si int) (int, int) { return a.Children[si].ItemStart, a.Children[si].ItemEnd },
		func(i int) geom.Rect { return a.ItemView(i).Bounds },
		func(si int) []geom.Rect { return a.Children[si].sd.itemBoxes },
		gap, emit)
}

// bipartiteThreshold bounds the brute-force cross product in span-vs-span
// refinement; beyond it a plane sweep takes over.
const bipartiteThreshold = 256

// connectSweep discovers same-layer footprint connectivity at this
// definition's level: own-vs-own, own-vs-child, and child-vs-child pairs
// (pairs internal to one child were resolved in the child's artifacts).
// Connected pairs are unioned; touching-but-unconnected pairs are returned
// as illegal-connection candidates in canonical (low foot, high foot)
// orientation.
func (c *Cache) connectSweep(art *SymbolArtifacts, u *uf) [][2]int {
	var illegal [][2]int
	ownEnd := art.ownFootEnd()
	if art.NumFoots() < 2 {
		return nil
	}
	test := func(i, j int) {
		if i > j {
			i, j = j, i
		}
		a, b := art.FootView(i), art.FootView(j)
		if a.Layer != b.Layer || !a.Bounds.Touches(b.Bounds) {
			return
		}
		if !a.Reg.Overlaps(b.Reg) {
			return
		}
		if geom.SkeletonsConnected(art.FootSkel(i), art.FootSkel(j)) {
			u.union(i, j)
		} else {
			illegal = append(illegal, [2]int{i, j})
		}
	}
	forEachCrossPair(art.NumFoots(), ownEnd, art.Children,
		func(si int) (int, int) { return art.Children[si].FootStart, art.Children[si].FootEnd },
		func(i int) geom.Rect { return art.FootView(i).Bounds },
		func(si int) []geom.Rect { return art.Children[si].sd.footBoxes },
		0, test)
	return illegal
}

// forEachCrossPair enumerates candidate element pairs at one hierarchy
// level without visiting pairs internal to a child: a coarse sweep over
// own entries and child bounding boxes, refined per candidate by scanning
// only the entries near the partner. The enumeration is deterministic for
// identical inputs, which the engine's replayable caches rely on.
func forEachCrossPair(n, ownEnd int, children []ChildSpan,
	childRange func(si int) (int, int), boundsAt func(i int) geom.Rect,
	spanBoxes func(si int) []geom.Rect,
	gap int64, emit func(i, j int)) {

	var pf geom.PairFinder
	for i := 0; i < ownEnd; i++ {
		pf.AddRect(i, boundsAt(i), 0)
	}
	coarseBase := n
	for si := range children {
		pf.AddRect(coarseBase+si, children[si].Bounds, 1)
	}
	if pf.Len() < 2 {
		return
	}
	within := func(a, b geom.Rect) bool { return a.Expand(gap).Touches(b) }
	// collect gathers the child's entries near the probe rect, with their
	// bounds, reading the span embedding directly (no per-element index
	// resolution — this scan is the hot inner loop of a root re-derive).
	type entry struct {
		i int
		b geom.Rect
	}
	collect := func(si int, probe geom.Rect, buf []entry) []entry {
		buf = buf[:0]
		probe = probe.Expand(gap)
		lo, _ := childRange(si)
		for local, b := range spanBoxes(si) {
			if probe.Touches(b) {
				buf = append(buf, entry{lo + local, b})
			}
		}
		return buf
	}
	var bufA, bufB []entry
	pf.Pairs(gap, nil, func(p geom.Pair) {
		ai, bi := p.A.ID, p.B.ID
		aChild, bChild := ai >= coarseBase, bi >= coarseBase
		switch {
		case !aChild && !bChild:
			emit(ai, bi)
		case aChild != bChild:
			own, child := ai, bi
			if aChild {
				own, child = bi, ai
			}
			// The collect probe is exactly the pairing predicate against
			// the own entry's bounds, so everything collected pairs.
			bufA = collect(child-coarseBase, boundsAt(own), bufA)
			for _, e := range bufA {
				emit(own, e.i)
			}
		default:
			sa, sb := ai-coarseBase, bi-coarseBase
			bufA = collect(sa, children[sb].Bounds, bufA)
			if len(bufA) == 0 {
				return
			}
			bufB = collect(sb, children[sa].Bounds, bufB)
			if len(bufB) == 0 {
				return
			}
			if len(bufA)*len(bufB) <= bipartiteThreshold {
				for _, ea := range bufA {
					for _, eb := range bufB {
						if within(ea.b, eb.b) {
							emit(ea.i, eb.i)
						}
					}
				}
				return
			}
			var bp geom.PairFinder
			for _, ea := range bufA {
				bp.AddRect(ea.i, ea.b, 0)
			}
			for _, eb := range bufB {
				bp.AddRect(eb.i, eb.b, 1)
			}
			bp.Pairs(gap, func(x, y geom.Item) bool { return x.Tag != y.Tag }, func(q geom.Pair) {
				emit(q.A.ID, q.B.ID)
			})
		}
	})
}
