// Package flat implements the traditional mask-level design rule checker
// the paper argues against — the baseline for every comparison experiment.
//
// It does what 1980-era production checkers did: fully instantiate the
// chip, union each mask layer, and check geometry with no topological or
// device information whatsoever:
//
//   - width by shrink-expand-compare on the unioned masks (orthogonal by
//     default; the Euclidean variant reproduces the Figure 4 corner
//     pathology),
//   - spacing by expand-check-overlap between connected components in the
//     L∞ metric (the Figure 4 corner-to-edge pathology),
//   - "no contact over gate" as the mask rule cut∩poly∩diffusion — which
//     falsely flags every legal butting contact (Figure 7),
//   - poly-diffusion crossings are assumed to be intentional transistors
//     and silently accepted — which misses every accidental transistor
//     (Figure 8) and every missing gate overlap,
//   - no netlist: electrical equivalence (Figure 5), power-ground shorts,
//     and all construction rules are invisible to it.
package flat

import (
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Metric selects the spacing/width geometry model.
type Metric uint8

// Metrics.
const (
	Orthogonal Metric = iota
	Euclidean
)

// Options configures the baseline.
type Options struct {
	// Metric for spacing checks (default Orthogonal, the traditional
	// expand-check-overlap).
	Metric Metric
	// EuclideanSECWidth turns on the Euclidean shrink-expand-compare width
	// check, which flags every convex corner (Figure 4); the default
	// orthogonal variant is exact.
	EuclideanSECWidth bool
}

// Violation is one baseline finding. Rules are FLAT.W.<layer>,
// FLAT.S.<layer>, FLAT.GATECONTACT.
type Violation struct {
	Rule   string
	Detail string
	Where  geom.Rect
	Layer  tech.LayerID
}

func (v Violation) String() string {
	return fmt.Sprintf("%s at %v: %s", v.Rule, v.Where, v.Detail)
}

// Report is the baseline's output.
type Report struct {
	Violations []Violation
	Duration   time.Duration
	FlatElems  int
	Components int
}

// Check runs the traditional checker.
func Check(d *layout.Design, tc *tech.Technology, opts Options) (*Report, error) {
	start := time.Now()
	regions, err := d.FlatLayerRegions(tc.NumLayers())
	if err != nil {
		return nil, err
	}
	rep := &Report{FlatElems: d.Stats().FlatElements}

	// Width on the unioned masks.
	for _, l := range tc.Layers() {
		if l.MinWidth <= 0 || regions[l.ID].Empty() {
			continue
		}
		if opts.EuclideanSECWidth {
			for _, w := range euclideanSECFlags(regions[l.ID], l.MinWidth) {
				rep.Violations = append(rep.Violations, Violation{
					Rule:   "FLAT.W." + l.CIF,
					Detail: fmt.Sprintf("%s width below %d (Euclidean SEC)", l.Name, l.MinWidth),
					Where:  w, Layer: l.ID,
				})
			}
			continue
		}
		for _, w := range geom.WidthViolations(regions[l.ID], l.MinWidth) {
			rep.Violations = append(rep.Violations, Violation{
				Rule:   "FLAT.W." + l.CIF,
				Detail: fmt.Sprintf("%s width below %d", l.Name, l.MinWidth),
				Where:  w, Layer: l.ID,
			})
		}
	}

	// Spacing between connected components, per layer, no net knowledge.
	for _, l := range tc.Layers() {
		if l.MinSpace <= 0 || regions[l.ID].Empty() {
			continue
		}
		comps := regions[l.ID].Components()
		rep.Components += len(comps)
		var pf geom.PairFinder
		for i := range comps {
			pf.AddRect(i, comps[i].Bounds(), 0)
		}
		pf.Pairs(l.MinSpace, nil, func(p geom.Pair) {
			a, b := comps[p.A.ID], comps[p.B.ID]
			var violated bool
			var dist float64
			if opts.Metric == Euclidean {
				dist, _, _ = geom.RegionDist(a, b)
				violated = dist < float64(l.MinSpace)
			} else {
				od := geom.RegionOrthoDist(a, b)
				dist = float64(od)
				violated = od < l.MinSpace
			}
			if violated {
				rep.Violations = append(rep.Violations, Violation{
					Rule:   "FLAT.S." + l.CIF,
					Detail: fmt.Sprintf("%s spacing %.0f < %d", l.Name, dist, l.MinSpace),
					Where:  p.A.Box.Union(p.B.Box),
					Layer:  l.ID,
				})
			}
		})
	}

	// Mask-level "no contact over gate": flags every butting contact.
	rep.Violations = append(rep.Violations, gateContactFlags(regions, tc)...)

	rep.Duration = time.Since(start)
	return rep, nil
}

// gateContactFlags implements the naive cut∩poly∩diffusion rule. Layers
// resolve through the compiled technology's roles, so the rule covers any
// process with gate and diffusion material — both polarities in CMOS.
func gateContactFlags(regions []geom.Region, tc *tech.Technology) []Violation {
	ct := tc.Compile()
	polyID, okP := ct.Poly()
	cutID, okC := ct.Cut()
	if !okP || !okC || !ct.HasDiffusion() {
		return nil
	}
	var diffRegs []geom.Region
	for _, l := range tc.Layers() {
		if ct.IsDiffusion(l.ID) {
			diffRegs = append(diffRegs, regions[l.ID])
		}
	}
	diff := geom.BulkUnion(diffRegs)
	gate := regions[polyID].Intersect(diff)
	if gate.Empty() {
		return nil
	}
	hit := regions[cutID].Intersect(gate)
	if hit.Empty() {
		return nil
	}
	var out []Violation
	for _, comp := range hit.Components() {
		out = append(out, Violation{
			Rule:   "FLAT.GATECONTACT",
			Detail: "contact cut over poly∩diffusion (mask rule; flags legal butting contacts)",
			Where:  comp.Bounds(),
			Layer:  cutID,
		})
	}
	return out
}

// euclideanSECFlags models the Euclidean shrink-expand-compare width
// check: beyond genuine violations it flags every convex corner, because
// disk dilation cannot restore the corners disk erosion preserves
// (Figure 4 left). Genuine violations are computed orthogonally; corner
// flags are h×h squares at each convex contour corner.
func euclideanSECFlags(r geom.Region, w int64) []geom.Rect {
	out := geom.WidthViolations(r, w)
	h := w / 2
	for _, loop := range r.Contours() {
		n := len(loop)
		for i := 0; i < n; i++ {
			a, b, c := loop[i], loop[(i+1)%n], loop[(i+2)%n]
			if b.Sub(a).Cross(c.Sub(b)) <= 0 {
				continue // not convex
			}
			// Corner square extends inward. With the interior on the left
			// of the walk, inward is the sum of the left-normals of the
			// incoming and outgoing edges.
			din := b.Sub(a)
			dout := c.Sub(b)
			ix := sign(-din.Y - dout.Y)
			iy := sign(din.X + dout.X)
			out = append(out, geom.R(b.X, b.Y, b.X+ix*h, b.Y+iy*h))
		}
	}
	return out
}

func sign(v int64) int64 {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
