package geom

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Shard is one x-strip of a sharded plane sweep. Each within-gap pair is
// owned by exactly one strip — the strip containing the x-event (the
// larger X1) of the pair — so concatenating every shard's Pairs output in
// shard order reproduces PairFinder.Pairs byte for byte, with no pair
// missed and none reported twice.
type Shard struct {
	pf     *PairFinder
	maxGap int64

	start, end int   // sweep-order index range of events this strip owns
	straddlers []int // sweep-order indices live at strip entry (X1 before the strip, reach into it)
}

// Shards splits the item set into at most n x-strips for the given gap.
// Strip width is at least maxGap so an item straddles O(1) strips. The
// shards share the finder's cached sweep order: mutating the finder with
// Add/AddRect invalidates them. Shard.Pairs calls on distinct shards are
// safe to run concurrently.
func (pf *PairFinder) Shards(maxGap int64, n int) []Shard {
	pf.ensureSorted()
	items := pf.sorted
	if len(items) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	minX := items[0].Box.X1
	span := items[len(items)-1].Box.X1 - minX + 1
	width := (span + int64(n) - 1) / int64(n)
	if width < maxGap {
		width = maxGap
	}
	if width < 1 {
		width = 1
	}
	nStrips := int((span + width - 1) / width)

	shards := make([]Shard, nStrips)
	for k := range shards {
		hi := minX + int64(k+1)*width
		shards[k] = Shard{pf: pf, maxGap: maxGap}
		shards[k].end = sort.Search(len(items), func(i int) bool { return items[i].Box.X1 >= hi })
		if k > 0 {
			shards[k].start = shards[k-1].end
		}
	}
	// An item reaches strip s (beyond its own) when s's left edge is within
	// the item's x-extent extended by maxGap.
	for i := range items {
		k := int((items[i].Box.X1 - minX) / width)
		reach := items[i].Box.X2 + maxGap
		for s := k + 1; s < nStrips && minX+int64(s)*width <= reach; s++ {
			shards[s].straddlers = append(shards[s].straddlers, i)
		}
	}
	return shards
}

// Pairs invokes fn for exactly the within-gap pairs owned by this strip,
// with the same filter semantics and per-event ordering as
// PairFinder.Pairs.
func (s *Shard) Pairs(filter func(a, b Item) bool, fn func(Pair)) {
	sweepRange(s.pf.sorted, s.start, s.end, s.straddlers, s.maxGap, s.pf.maxH, filter, fn)
}

// PairsParallel is Pairs with the sweep sharded into x-strips and run on
// the given number of worker goroutines (0 = runtime.NumCPU). fn is still
// invoked on the calling goroutine, in exactly the order Pairs would
// produce, so the two are interchangeable; only the sweeps themselves run
// concurrently. Callers whose per-pair work dominates should instead fan
// out Shards themselves and merge per-shard results in shard order.
func (pf *PairFinder) PairsParallel(maxGap int64, workers int, filter func(a, b Item) bool, fn func(Pair)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 || len(pf.items) < 2 {
		pf.Pairs(maxGap, filter, fn)
		return
	}
	shards := pf.Shards(maxGap, workers*StripsPerWorker)
	buf := make([][]Pair, len(shards))
	RunShards(len(shards), workers, func(k int) {
		shards[k].Pairs(filter, func(p Pair) { buf[k] = append(buf[k], p) })
	})
	for _, pairs := range buf {
		for _, p := range pairs {
			fn(p)
		}
	}
}

// StripsPerWorker over-decomposes the sweep so strips of uneven density
// still balance across the worker pool. Shared by every caller that fans
// out Shards over a worker count.
const StripsPerWorker = 4

// RunShards executes fn(0..n-1) on up to `workers` goroutines, handing out
// shard indices from a shared counter. It returns when every call is done.
func RunShards(n, workers int, fn func(k int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
}
