// Command cifgen emits synthetic workload chips as extended CIF: the
// inverter-array designs the experiments run on, optionally with seeded
// ground-truth errors, so dicheck (or any other CIF consumer) can be
// exercised on reproducible inputs.
//
// Usage:
//
//	cifgen [flags] > chip.cif
//
//	-tech nmos|cmos|bipolar  workload family and technology (default nmos)
//	-deck FILE  load the technology from a rule deck instead of the
//	            registry; it must stay layer- and device-compatible with
//	            the -tech workload family (e.g. an edited nmos.deck)
//	-rows N     rows of cells (default 4)
//	-cols N     columns of cells (default 5; pair count for bipolar)
//	-errors N   inject N seeded errors (nmos only, default 0)
//	-seed N     injection seed (default 1980)
//	-o FILE     write to FILE instead of stdout
//	-truth      print the injected ground truth to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	dic "repro"
	"repro/internal/cif"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

func main() {
	techName := flag.String("tech", "nmos",
		fmt.Sprintf("workload family and technology: %s", strings.Join(tech.Names(), ", ")))
	deckFile := flag.String("deck", "", "load the technology from a rule deck file")
	rows := flag.Int("rows", 4, "rows of cells")
	cols := flag.Int("cols", 5, "columns of cells (pair count for bipolar)")
	errs := flag.Int("errors", 0, "inject N seeded errors (nmos only)")
	seed := flag.Int64("seed", 1980, "injection seed")
	out := flag.String("o", "", "output file (default stdout)")
	truth := flag.Bool("truth", false, "print injected ground truth to stderr")
	flag.Parse()

	if *rows < 1 || *cols < 1 {
		fatalf("rows and cols must be positive")
	}
	tc, err := dic.ResolveTechnology(*techName, *deckFile)
	if err != nil {
		fatalf("%v", err)
	}
	if *errs > 0 && *techName != "nmos" {
		fatalf("-errors is only supported for the nmos workload")
	}
	// A substituted deck must still carry the layers and device types the
	// chosen workload family is built from — the generators resolve them
	// by name, so a mismatched deck would otherwise emit garbage geometry
	// silently (everything landing on layer 0).
	if err := checkFamily(tc, *techName); err != nil {
		fatalf("%v", err)
	}

	// The bipolar family is a one-dimensional strip: -rows does not apply
	// and stays out of the design name.
	name := fmt.Sprintf("gen-%s-%dx%d", *techName, *rows, *cols)
	if *techName == "bipolar" {
		name = fmt.Sprintf("gen-bipolar-%d", *cols)
	}
	var design *layout.Design
	var cells int
	switch *techName {
	case "nmos":
		chip := workload.NewChip(tc, name, *rows, *cols)
		cells = *rows * *cols
		if *errs > 0 {
			injected := workload.InjectErrors(chip, *errs, *seed)
			if *truth {
				for i, inj := range injected {
					fmt.Fprintf(os.Stderr, "truth %d: %v at %v %s\n", i, inj.Kind, inj.Where, inj.Symbol)
				}
			}
		}
		design = chip.Design
	case "cmos":
		chip := workload.NewCMOSChip(tc, name, *rows, *cols)
		cells = *rows * *cols
		design = chip.Design
	case "bipolar":
		chip := workload.NewBipolarChip(tc, name, *cols)
		cells = *cols
		design = chip.Design
	default:
		fatalf("no workload generator for technology %q", *techName)
	}

	text, err := cif.Write(design, tc)
	if err != nil {
		fatalf("write: %v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(text); err != nil {
		fatalf("%v", err)
	}
	st := design.Stats()
	fmt.Fprintf(os.Stderr, "cifgen: %d cells, %d devices, %d flat elements\n",
		cells, st.FlatDevices, st.FlatElements)
}

// checkFamily verifies the technology provides every layer and device
// type the named workload family's generator resolves by name.
func checkFamily(tc *tech.Technology, family string) error {
	var layers, devices []string
	switch family {
	case "nmos":
		layers = []string{tech.NMOSDiff, tech.NMOSPoly, tech.NMOSMetal, tech.NMOSContact, tech.NMOSImplant, tech.NMOSBuried}
		devices = []string{tech.DevNMOSEnh, tech.DevNMOSPullup, tech.DevContactDiff, tech.DevContactPoly, tech.DevButting}
	case "cmos":
		layers = []string{tech.CMOSWell, tech.CMOSNDiff, tech.CMOSPDiff, tech.CMOSPoly, tech.CMOSContact, tech.CMOSMetal}
		devices = []string{tech.DevCMOSNMOS, tech.DevCMOSPMOS, tech.DevContactNDiff, tech.DevContactPDiff, tech.DevContactCPoly}
	case "bipolar":
		layers = []string{tech.BipIso, tech.BipBase, tech.BipEmitter}
		devices = []string{tech.DevNPN, tech.DevResistorBase}
	}
	for _, l := range layers {
		if _, ok := tc.LayerByName(l); !ok {
			return fmt.Errorf("technology %q has no layer %q required by the %s workload (wrong -deck for -tech %s?)",
				tc.Name, l, family, family)
		}
	}
	for _, d := range devices {
		if _, ok := tc.Device(d); !ok {
			return fmt.Errorf("technology %q has no device type %q required by the %s workload (wrong -deck for -tech %s?)",
				tc.Name, d, family, family)
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cifgen: "+format+"\n", args...)
	os.Exit(2)
}
