// Package device implements the paper's device model: devices exist only
// as *primitive device symbols* (declared via the extended-CIF 9D command),
// so device recognition is replaced by device checking.
//
// For every device class the package provides two things:
//
//   - Analysis: the device's electrical terminals (with their geometry, in
//     symbol coordinates) and its protected regions — the MOS channel that
//     contacts must stay off (Figure 7), the bipolar base that isolation
//     must stay clear of (Figure 6). Terminals carry node numbers: a
//     contact fuses all its terminals into one node, a transistor keeps
//     gate/source/drain separate, and a resistor deliberately keeps its two
//     ends separate so that a resistor between power and ground is not a
//     short (Figure 5b).
//
//   - Checking: the device-internal geometric rules ("check primitive
//     symbols" in the Figure 10 pipeline) — enclosures, overlaps, and
//     overlap-of-overlap rules. A symbol marked Checked (9D ... CHK) is
//     exempt, which is the paper's mechanism for special devices that
//     intentionally break the rules.
package device

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Terminal is one electrical terminal of a device, in symbol coordinates.
type Terminal struct {
	Name  string
	Layer tech.LayerID
	Reg   geom.Region
	// Node groups internally connected terminals: terminals with equal
	// Node are fused inside the device (e.g. the layers of a contact).
	Node int
}

// Info is the electrical analysis of a primitive device symbol.
type Info struct {
	Class     string
	Type      string // declared type name
	Terminals []Terminal

	// Gate is the MOS channel region (poly∩diffusion) that contact cuts
	// must never overlap (Figure 7); empty for non-MOS devices.
	Gate geom.Region

	// BaseKeepout is the bipolar base region that must keep clear of the
	// isolation diffusion (Figure 6a); empty unless the device demands it.
	BaseKeepout geom.Region
	// BaseClearance is the required clearance for BaseKeepout.
	BaseClearance int64

	// MayTouchIsolation marks devices for which contact with isolation is
	// legal (the Figure 6b resistor).
	MayTouchIsolation bool

	// SpacingExemptSameNet: elements of this device are exempt from
	// same-net spacing (true for everything except resistors, Figure 5).
	SpacingExemptSameNet bool
}

// Problem is a device-level rule violation.
type Problem struct {
	Rule   string    // stable rule id, e.g. "DEV.GATE.EXT"
	Detail string    // human explanation
	Where  geom.Rect // location in symbol coordinates
}

func (p Problem) String() string {
	return fmt.Sprintf("%s at %v: %s", p.Rule, p.Where, p.Detail)
}

// analyzer computes Info and internal problems for one device class.
type analyzer func(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem)

// registry maps device class names (tech.DeviceSpec.Class) to analyzers.
var registry = map[string]analyzer{
	"mos-transistor":  analyzeMOS,
	"pullup":          analyzePullup,
	"contact":         analyzeContact,
	"butting-contact": analyzeButting,
	"buried-contact":  analyzeBuried,
	"resistor":        analyzeResistor,
	"npn-transistor":  analyzeNPN,
}

// Classes returns the registered device class names, sorted.
func Classes() []string {
	out := make([]string, 0, len(registry))
	for c := range registry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Analyze computes the electrical model of a primitive device symbol and,
// unless the symbol is marked Checked, its internal rule violations.
// Symbols whose declared type is unknown to the technology yield a single
// DEV.UNKNOWN problem and no Info.
func Analyze(sym *layout.Symbol, tc *tech.Technology) (*Info, []Problem) {
	if sym.DeviceType == "" {
		return nil, []Problem{{
			Rule:   "DEV.NOTDEVICE",
			Detail: fmt.Sprintf("symbol %q is not a device symbol", sym.Name),
			Where:  sym.Bounds(),
		}}
	}
	spec, ok := tc.Device(sym.DeviceType)
	if !ok {
		return nil, []Problem{{
			Rule:   "DEV.UNKNOWN",
			Detail: fmt.Sprintf("device type %q not in technology %s", sym.DeviceType, tc.Name),
			Where:  sym.Bounds(),
		}}
	}
	an, ok := registry[spec.Class]
	if !ok {
		return nil, []Problem{{
			Rule:   "DEV.NOCLASS",
			Detail: fmt.Sprintf("no analyzer for device class %q", spec.Class),
			Where:  sym.Bounds(),
		}}
	}
	info, probs := an(sym, spec, tc)
	if info != nil {
		info.Type = sym.DeviceType
		info.Class = spec.Class
	}
	if sym.Checked {
		// The designer vouches for this device (9D ... CHK): keep the
		// electrical model, drop the rule problems.
		probs = nil
	}
	return info, probs
}

// roleRegion unions a symbol's elements on the layer a device-rule role
// resolves to: the device's explicit "use" binding first, then the
// technology's role-tagged layer, then the legacy layer name. The role
// indirection is what lets one analyzer serve both polarities of a CMOS
// process — the p-channel spec binds "diffusion" to the p-diffusion layer.
func roleRegion(sym *layout.Symbol, tc *tech.Technology, spec tech.DeviceSpec, role, fallback string) geom.Region {
	id, ok := tc.LayerFor(spec, role, fallback)
	if !ok {
		return geom.EmptyRegion()
	}
	return sym.LayerRegion(id)
}

// roleID resolves a device-rule role to a layer id, NoLayer if unbound.
func roleID(tc *tech.Technology, spec tech.DeviceSpec, role, fallback string) tech.LayerID {
	id, ok := tc.LayerFor(spec, role, fallback)
	if !ok {
		return tech.NoLayer
	}
	return id
}

// requireCovered reports a problem when part of `need` is not covered by
// `have`; the violation location is the bounding box of the uncovered part.
func requireCovered(need, have geom.Region, rule, detail string, probs []Problem) []Problem {
	miss := need.Subtract(have)
	if miss.Empty() {
		return probs
	}
	return append(probs, Problem{Rule: rule, Detail: detail, Where: miss.Bounds()})
}
