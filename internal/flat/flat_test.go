package flat

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

func countRules(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Rule]++
	}
	return out
}

func TestFlatWidthAndSpacing(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("t")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(0, 0, 2000, 300), "")     // too narrow (min 500)
	top.AddBox(diff, geom.R(0, 2000, 2000, 2500), "") // fine
	top.AddBox(diff, geom.R(0, 3000, 2000, 3500), "") // 500 from previous (min 750)
	d.Top = top
	rep, err := Check(d, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rules := countRules(rep.Violations)
	if rules["FLAT.W.ND"] != 1 {
		t.Fatalf("width flags = %d, want 1 (%v)", rules["FLAT.W.ND"], rep.Violations)
	}
	if rules["FLAT.S.ND"] != 1 {
		t.Fatalf("spacing flags = %d, want 1 (%v)", rules["FLAT.S.ND"], rep.Violations)
	}
}

func TestFlatUnionHidesNarrowFigures(t *testing.T) {
	// Figure 2 right: two half-width boxes union into legal geometry; the
	// union-first baseline sees nothing.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("t")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(0, 0, 2000, 250), "")
	top.AddBox(diff, geom.R(0, 250, 2000, 500), "")
	d.Top = top
	rep, err := Check(d, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("baseline should miss the composition: %v", rep.Violations)
	}
}

func TestFlatGateContactFalseFlagsButting(t *testing.T) {
	// Figure 7: the mask rule flags legal butting contacts.
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	chip := workload.NewChip(tc, "chip", 1, 2)
	_ = d
	rep, err := Check(chip.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rules := countRules(rep.Violations)
	if rules["FLAT.GATECONTACT"] != 2 {
		t.Fatalf("gate-contact flags = %d, want 2 (one per butting contact): %v",
			rules["FLAT.GATECONTACT"], rep.Violations)
	}
	// Everything else on the clean chip must be quiet.
	for rule, n := range rules {
		if rule != "FLAT.GATECONTACT" && n > 0 {
			t.Errorf("unexpected baseline rule %s ×%d on clean chip", rule, n)
		}
	}
}

func TestFlatMissesAccidentalTransistor(t *testing.T) {
	tc := tech.NMOS()
	p := workload.Figure8AccidentalTransistor()
	rep, err := Check(p.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("baseline should be silent on fig8: %v", v)
	}
}

func TestFlatEuclideanSECFlagsCorners(t *testing.T) {
	// Figure 4: the Euclidean shrink-expand-compare flags every convex
	// corner of perfectly legal geometry.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("t")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(0, 0, 2000, 2000), "")
	d.Top = top
	rep, err := Check(d, tc, Options{EuclideanSECWidth: true})
	if err != nil {
		t.Fatal(err)
	}
	corners := 0
	for _, v := range rep.Violations {
		if strings.HasPrefix(v.Rule, "FLAT.W.") {
			corners++
		}
	}
	if corners != 4 {
		t.Fatalf("corner flags = %d, want 4: %v", corners, rep.Violations)
	}
	// The orthogonal variant reports nothing.
	rep2, _ := Check(d, tc, Options{})
	if len(rep2.Violations) != 0 {
		t.Fatalf("orthogonal baseline should pass the square: %v", rep2.Violations)
	}
}

func TestFlatOrthogonalCornerPathology(t *testing.T) {
	// Figure 4 right: expand-check-overlap flags diagonal pairs whose true
	// Euclidean clearance satisfies the rule.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("t")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(0, 0, 2000, 2000), "")
	// Diagonal neighbour: gaps (600, 600) -> L∞ 600 < 750, Euclidean 849 > 750.
	top.AddBox(diff, geom.R(2600, 2600, 4600, 4600), "")
	d.Top = top

	ortho, err := Check(d, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countRules(ortho.Violations)["FLAT.S.ND"] != 1 {
		t.Fatalf("orthogonal baseline should flag the diagonal pair: %v", ortho.Violations)
	}
	euc, err := Check(d, tc, Options{Metric: Euclidean})
	if err != nil {
		t.Fatal(err)
	}
	if countRules(euc.Violations)["FLAT.S.ND"] != 0 {
		t.Fatalf("euclidean baseline should pass the diagonal pair: %v", euc.Violations)
	}
}

func TestFlatReportMetadata(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "chip", 2, 2)
	rep, err := Check(chip.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlatElems == 0 || rep.Components == 0 || rep.Duration <= 0 {
		t.Fatalf("metadata missing: %+v", rep)
	}
}
