package geom

import (
	"math/rand"
	"testing"
)

// ---- Naive rect-by-rect reference implementation ----------------------
//
// The reference keeps a plain rect list and answers membership queries by
// scanning it; set operations are definitional (pointwise boolean
// combination), evaluated only at sample points. Every optimized path in
// region.go is checked against it op by op over seeded fuzz inputs.

type refRegion []Rect

func (rr refRegion) contains(p Point) bool {
	for _, r := range rr {
		if p.X >= r.X1 && p.X < r.X2 && p.Y >= r.Y1 && p.Y < r.Y2 {
			return true
		}
	}
	return false
}

// refFold unions the rects one at a time through the pairwise Union path —
// the naive accumulation loop the bulk APIs replace.
func refFold(rs []Rect) Region {
	out := EmptyRegion()
	for _, r := range rs {
		out = out.Union(FromRectR(r))
	}
	return out
}

func randRects(rng *rand.Rand, n int, span, maxW int64) []Rect {
	rs := make([]Rect, n)
	for i := range rs {
		x := int64(rng.Intn(int(span))) - span/2
		y := int64(rng.Intn(int(span))) - span/2
		w := int64(1 + rng.Intn(int(maxW)))
		h := int64(1 + rng.Intn(int(maxW)))
		rs[i] = Rect{x, y, x + w, y + h}
	}
	return rs
}

// samplePoints returns the probe grid of a rect set: every combination of
// interesting x and y coordinates (each boundary, and one unit inside and
// outside it).
func samplePoints(rs []Rect) []Point {
	var xs, ys []int64
	for _, r := range rs {
		xs = append(xs, r.X1-1, r.X1, r.X2-1, r.X2)
		ys = append(ys, r.Y1-1, r.Y1, r.Y2-1, r.Y2)
	}
	var out []Point
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Point{x, y})
		}
	}
	return out
}

// checkCanonical verifies the structural invariants of the slab form.
func checkCanonical(t *testing.T, r Region) {
	t.Helper()
	for bi, b := range r.bands {
		if b.y1 >= b.y2 {
			t.Fatalf("band %d degenerate: [%d,%d)", bi, b.y1, b.y2)
		}
		if len(b.spans) == 0 {
			t.Fatalf("band %d empty", bi)
		}
		if bi > 0 {
			prev := r.bands[bi-1]
			if prev.y2 > b.y1 {
				t.Fatalf("bands %d,%d overlap in y", bi-1, bi)
			}
			if prev.y2 == b.y1 && spansEqual(prev.spans, b.spans) {
				t.Fatalf("bands %d,%d not maximal (equal adjacent spans)", bi-1, bi)
			}
		}
		for si, s := range b.spans {
			if s.X1 >= s.X2 {
				t.Fatalf("band %d span %d degenerate", bi, si)
			}
			if si > 0 && b.spans[si-1].X2 >= s.X1 {
				t.Fatalf("band %d spans %d,%d not disjoint/merged", bi, si-1, si)
			}
		}
	}
}

func TestFromRectsMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		rs := randRects(rng, 1+rng.Intn(24), 200, 60)
		got := FromRects(rs)
		checkCanonical(t, got)
		if !got.Equal(refFold(rs)) {
			t.Fatalf("trial %d: FromRects != fold of pairwise unions\nrects: %v", trial, rs)
		}
		ref := refRegion(rs)
		for _, p := range samplePoints(rs) {
			if got.ContainsPoint(p) != ref.contains(p) {
				t.Fatalf("trial %d: membership mismatch at %v", trial, p)
			}
		}
	}
}

func TestBulkUnionMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(6)
		var regs []Region
		var all []Rect
		for i := 0; i < k; i++ {
			rs := randRects(rng, 1+rng.Intn(8), 150, 50)
			all = append(all, rs...)
			regs = append(regs, FromRects(rs))
		}
		got := BulkUnion(regs)
		checkCanonical(t, got)
		if !got.Equal(refFold(all)) {
			t.Fatalf("trial %d: BulkUnion != fold reference", trial)
		}
		var into Region
		BulkUnionInto(&into, regs)
		if !into.Equal(got) {
			t.Fatalf("trial %d: BulkUnionInto != BulkUnion", trial)
		}
		if !UnionRects(all).Equal(got) {
			t.Fatalf("trial %d: UnionRects != BulkUnion", trial)
		}
	}
}

func TestBinaryOpsMatchNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 200; trial++ {
		ra := randRects(rng, 1+rng.Intn(10), 120, 50)
		rb := randRects(rng, 1+rng.Intn(10), 120, 50)
		a, b := FromRects(ra), FromRects(rb)
		refA, refB := refRegion(ra), refRegion(rb)
		pts := samplePoints(append(append([]Rect{}, ra...), rb...))

		cases := []struct {
			name string
			got  Region
			op   func(x, y bool) bool
		}{
			{"union", a.Union(b), func(x, y bool) bool { return x || y }},
			{"intersect", a.Intersect(b), func(x, y bool) bool { return x && y }},
			{"subtract", a.Subtract(b), func(x, y bool) bool { return x && !y }},
			{"xor", a.Xor(b), func(x, y bool) bool { return x != y }},
		}
		for _, c := range cases {
			checkCanonical(t, c.got)
			for _, p := range pts {
				want := c.op(refA.contains(p), refB.contains(p))
				if c.got.ContainsPoint(p) != want {
					t.Fatalf("trial %d: %s mismatch at %v", trial, c.name, p)
				}
			}
		}

		// The *Into variants must agree with the value forms, including
		// destination aliasing and recycled storage.
		var dst Region
		UnionInto(&dst, a, b)
		if !dst.Equal(cases[0].got) {
			t.Fatalf("trial %d: UnionInto mismatch", trial)
		}
		IntersectInto(&dst, a, b) // recycles dst's storage
		if !dst.Equal(cases[1].got) {
			t.Fatalf("trial %d: IntersectInto mismatch", trial)
		}
		// Destination aliasing an input is allowed — but the alias must own
		// its storage (an *Into destination is recycled in place, so a
		// plain copy of a still-needed region would clobber it).
		alias := FromRects(ra)
		SubtractInto(&alias, alias, b)
		if !alias.Equal(cases[2].got) {
			t.Fatalf("trial %d: aliased SubtractInto mismatch", trial)
		}

		// IntersectBounds must equal the materialized intersection's bounds.
		wantB, wantOK := cases[1].got.Bounds(), !cases[1].got.Empty()
		gotB, gotOK := IntersectBounds(a, b)
		if gotOK != wantOK || (gotOK && gotB != wantB) {
			t.Fatalf("trial %d: IntersectBounds = %v,%v want %v,%v", trial, gotB, gotOK, wantB, wantOK)
		}

		// Overlaps / ContainsRegion agree with the materialized forms.
		if a.Overlaps(b) != wantOK {
			t.Fatalf("trial %d: Overlaps disagrees with Intersect", trial)
		}
		if a.ContainsRegion(b) != b.Subtract(a).Empty() {
			t.Fatalf("trial %d: ContainsRegion disagrees with Subtract", trial)
		}
	}
}

func TestDilateMatchesRectByRect(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		rs := randRects(rng, 1+rng.Intn(12), 150, 40)
		d := int64(rng.Intn(8))
		got := FromRects(rs).Dilate(d)
		checkCanonical(t, got)
		expanded := make([]Rect, len(rs))
		for i, r := range rs {
			expanded[i] = r.Expand(d)
		}
		if !got.Equal(refFold(expanded)) {
			t.Fatalf("trial %d: Dilate(%d) != union of expanded rects", trial, d)
		}
	}
}

func TestTransformByMatchesRectByRect(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	orients := []Orient{R0, R90, R180, R270, MX, MX90, MX180, MX270}
	for trial := 0; trial < 160; trial++ {
		rs := randRects(rng, 1+rng.Intn(12), 150, 40)
		tr := Transform{
			Orient: orients[rng.Intn(len(orients))],
			Trans:  Point{int64(rng.Intn(100) - 50), int64(rng.Intn(100) - 50)},
		}
		got := FromRects(rs).TransformBy(tr)
		checkCanonical(t, got)
		mapped := make([]Rect, len(rs))
		for i, r := range rs {
			mapped[i] = tr.ApplyRect(r)
		}
		if !got.Equal(refFold(mapped)) {
			t.Fatalf("trial %d: TransformBy(%v) mismatch", trial, tr)
		}
		// The slab-allocating store path must agree exactly.
		var st RegionStore
		if !st.TransformBy(FromRects(rs), tr).Equal(got) {
			t.Fatalf("trial %d: RegionStore.TransformBy(%v) mismatch", trial, tr)
		}
	}
}

// ---- Allocation regression guards -------------------------------------
//
// The zero-allocation discipline of the sweep core is load-bearing: these
// guards fail the build if a change silently reintroduces per-band or
// per-call allocation. Budgets are the steady-state costs (result band
// list + span arena, i.e. 2 for value-returning forms, 0 for recycled
// *Into destinations) with one unit of slack for pool refills after a GC.

func noisyRects(n int) []Rect {
	rng := rand.New(rand.NewSource(3))
	rs := make([]Rect, n)
	for i := range rs {
		x, y := int64(rng.Intn(5000)), int64(rng.Intn(5000))
		rs[i] = R(x, y, x+int64(100+rng.Intn(400)), y+int64(100+rng.Intn(400)))
	}
	return rs
}

func TestFromRectsAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guards run in the non-race CI step")
	}
	rs := noisyRects(300)
	FromRects(rs) // warm the sweeper pool
	avg := testing.AllocsPerRun(100, func() {
		_ = FromRects(rs)
	})
	if avg > 3 {
		t.Fatalf("FromRects allocates %.1f/op, want <= 3 (2 + pool slack)", avg)
	}
	var dst Region
	FromRectsInto(&dst, rs)
	avg = testing.AllocsPerRun(100, func() {
		FromRectsInto(&dst, rs)
	})
	if avg > 1 {
		t.Fatalf("FromRectsInto (warm dst) allocates %.1f/op, want <= 1", avg)
	}
}

func TestUnionAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guards run in the non-race CI step")
	}
	a := FromRects(noisyRects(150))
	b := FromRects(noisyRects(150)).Translate(Point{137, 59})
	_ = a.Union(b)
	avg := testing.AllocsPerRun(100, func() {
		_ = a.Union(b)
	})
	if avg > 3 {
		t.Fatalf("Union allocates %.1f/op, want <= 3 (2 + pool slack)", avg)
	}
	var dst Region
	UnionInto(&dst, a, b)
	avg = testing.AllocsPerRun(100, func() {
		UnionInto(&dst, a, b)
	})
	if avg > 1 {
		t.Fatalf("UnionInto (warm dst) allocates %.1f/op, want <= 1", avg)
	}
}

func TestBulkUnionAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guards run in the non-race CI step")
	}
	regs := []Region{
		FromRects(noisyRects(80)),
		FromRects(noisyRects(80)).Translate(Point{211, 97}),
		FromRects(noisyRects(80)).Translate(Point{-89, 401}),
		FromRects(noisyRects(80)).Translate(Point{53, -233}),
	}
	_ = BulkUnion(regs)
	avg := testing.AllocsPerRun(100, func() {
		_ = BulkUnion(regs)
	})
	if avg > 3 {
		t.Fatalf("BulkUnion allocates %.1f/op, want <= 3 (2 + pool slack)", avg)
	}
	var dst Region
	BulkUnionInto(&dst, regs)
	avg = testing.AllocsPerRun(100, func() {
		BulkUnionInto(&dst, regs)
	})
	if avg > 1 {
		t.Fatalf("BulkUnionInto (warm dst) allocates %.1f/op, want <= 1", avg)
	}
}

func TestDistanceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guards run in the non-race CI step")
	}
	a := FromRects(noisyRects(60))
	b := FromRects(noisyRects(60)).Translate(Point{20000, 20000})
	avg := testing.AllocsPerRun(100, func() {
		_ = RegionOrthoDist(a, b)
		_, _, _ = RegionDist(a, b)
		_, _ = IntersectBounds(a, b)
	})
	if avg > 0 {
		t.Fatalf("distance/bounds kernels allocate %.1f/op, want 0", avg)
	}
}
