// Command drcbench regenerates every experiment of the reproduction: one
// table per paper figure or quantified claim (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	drcbench [-quick] [-run E01,E09] [-workers n]
//	drcbench -json [-o DIR] [-compare BENCH_old.json]
//	drcbench -compare BENCH_old.json
//
//	-quick        smaller chip sizes (fast smoke run)
//	-run          comma-separated experiment ids (default: all)
//	-workers      DIC interaction-stage goroutines (0 = all cores, 1 = serial);
//	              E18 reports serial vs parallel regardless of this setting
//	-json         run the perfbench kernel suite instead of the experiments and
//	              write a BENCH_<date>.json snapshot (ns/op + allocs/op per
//	              named benchmark) — the repo's perf trajectory artifact
//	-compare      run the kernel suite and print per-benchmark deltas against
//	              this prior snapshot (informational: exit status ignores
//	              regressions; combine with -json to also write the new
//	              snapshot)
//	-o            directory for the JSON snapshot (default ".")
//	-cpuprofile   write a pprof CPU profile of the run
//	-memprofile   write a pprof heap profile at exit
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/eval"
	"repro/internal/perfbench"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	quick := flag.Bool("quick", false, "smaller workloads")
	run := flag.String("run", "", "comma-separated experiment ids (default all)")
	workers := flag.Int("workers", 0, "DIC interaction-stage goroutines (0 = all cores, 1 = serial)")
	jsonOut := flag.Bool("json", false, "run the kernel benchmark suite and write BENCH_<date>.json")
	compare := flag.String("compare", "", "run the kernel suite and print deltas vs this prior BENCH_*.json snapshot")
	outDir := flag.String("o", ".", "output directory for the -json snapshot")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()
	eval.Workers = *workers

	// Profiling hooks, same contract as dicheck's: hot-path investigation
	// of an experiment or benchmark kernel shouldn't need a throwaway
	// harness. Deferred here (not in main) so every return runs them.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drcbench: cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "drcbench: cpuprofile: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drcbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "drcbench: memprofile: %v\n", err)
			}
		}()
	}

	if *jsonOut || *compare != "" {
		return runBenchSuite(*outDir, *jsonOut, *compare)
	}

	type experiment struct {
		id string
		fn func() (*eval.Table, error)
	}
	q := *quick
	experiments := []experiment{
		{"E01", func() (*eval.Table, error) { return eval.E01(q) }},
		{"E02", eval.E02},
		{"E03", eval.E03},
		{"E04", eval.E04},
		{"E06", func() (*eval.Table, error) { return eval.E06(q) }},
		{"E09", func() (*eval.Table, error) { return eval.E09(q) }},
		{"E10", eval.E10},
		{"E11", eval.E11},
		{"E12", eval.E12},
		{"E13", eval.E13},
		{"E15", eval.E15},
		{"E16", func() (*eval.Table, error) { return eval.E16(q) }},
		{"E17", func() (*eval.Table, error) { return eval.E17(q) }},
		{"E18", func() (*eval.Table, error) { return eval.E18(q) }},
		{"E19", func() (*eval.Table, error) { return eval.E19(q) }},
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		start := time.Now()
		tab, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		return 1
	}
	return 0
}

// runBenchSuite runs the perfbench suite, optionally writing the dated
// JSON artifact (writeJSON) and/or printing deltas against a prior
// snapshot (comparePath). Regressions in the comparison never affect the
// exit status — wall-clock on shared CI runners is advice, not a gate.
func runBenchSuite(dir string, writeJSON bool, comparePath string) int {
	var old perfbench.Snapshot
	if comparePath != "" {
		// Read the baseline before the minute-long run so a bad file
		// fails fast. A missing baseline is not an error: fresh clones
		// and rotated snapshot names should degrade to a plain run, not
		// break CI.
		data, err := os.ReadFile(comparePath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no baseline snapshot at %s; running without comparison (generate one with drcbench -json)\n", comparePath)
			comparePath = ""
		case err != nil:
			fmt.Fprintf(os.Stderr, "drcbench: %v\n", err)
			return 1
		default:
			if old, err = perfbench.ParseSnapshot(data); err != nil {
				fmt.Fprintf(os.Stderr, "drcbench: %s: %v\n", comparePath, err)
				return 1
			}
		}
	}
	fmt.Println("running kernel benchmark suite (this takes a minute)...")
	snap := perfbench.Run(time.Now(), eval.Workers)
	for _, r := range snap.Results {
		fmt.Printf("  %-22s %14.0f ns/op %10d B/op %8d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesOp, r.AllocsOp)
	}
	if comparePath != "" {
		fmt.Println()
		fmt.Print(perfbench.RenderDeltas(old, snap))
	}
	if writeJSON {
		out, err := snap.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drcbench: %v\n", err)
			return 1
		}
		path := filepath.Join(dir, snap.Filename())
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "drcbench: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s\n", path)
	}
	return 0
}
