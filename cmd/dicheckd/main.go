// Command dicheckd is the concurrent DRC check service: a long-running
// HTTP/JSON daemon over the incremental check engine. Each named session
// owns one design and one engine; edits stream in over HTTP, rapid bursts
// are debounced into single rechecks, and reports come back
// fingerprint-identical to an offline Recheck replaying the same edits.
//
// Usage:
//
//	dicheckd [flags]
//
//	-addr HOST:PORT    listen address (default 127.0.0.1:8347; port 0
//	                   picks a free port)
//	-addr-file FILE    write the bound address to FILE once listening
//	                   (how scripts find a port-0 daemon)
//	-max-sessions N    LRU cap on live sessions (default 64)
//	-idle D            evict sessions idle longer than D (default 30m)
//	-debounce D        edit-coalescing window before a background recheck
//	                   (default 25ms)
//	-workers N         engine interaction-stage goroutines (0 = all cores)
//	-check-timeout D   deadline on request-triggered checks; expiry is a
//	                   503 + Retry-After (default 2m, 0 = none)
//	-edit-timeout D    deadline on edit batches (default 10s, 0 = none)
//	-max-inflight N    engine-run concurrency cap (default NumCPU)
//	-queue-depth N     runs allowed to wait for a slot before 429 (default 64)
//	-max-body BYTES    request-body cap; oversize is 413 (default 64 MiB)
//	-report-history N  per-session ring of recent report states the
//	                   ?since= delta path can diff against (default 8;
//	                   negative disables deltas)
//	-state-dir DIR     enable crash-safe snapshots: restore on boot,
//	                   snapshot on shutdown/eviction and every -snapshot-every
//	-snapshot-every D  periodic snapshot interval (default 30s with -state-dir)
//	-test-hooks        register POST /v1/sessions/{id}/inject (fault
//	                   injection for the load harness; never in production)
//
// Endpoints (all JSON, versioned under /v1; the unprefixed paths answer
// 308 redirects for one deprecation release):
//
//	POST   /v1/sessions               create a session {name, cif, tech|deck, ...}
//	GET    /v1/sessions               list sessions
//	POST   /v1/sessions/{id}/edits    apply an edit batch {edits: [...]}
//	GET    /v1/sessions/{id}/report   current report (flushes pending edits);
//	                                  ?since=<fingerprint> answers a delta
//	                                  {base, added, removed} instead
//	GET    /v1/sessions/{id}/stats    service + engine counters
//	DELETE /v1/sessions/{id}          drop a session
//	GET    /v1/stats                  daemon-wide gauges and counters
//	POST   /v1/snapshot               snapshot every session to -state-dir now
//	GET    /v1/healthz                liveness probe
//
// See the README's "Check service", "Report deltas", and "Operations"
// sections for the session lifecycle, the error contract, delta
// semantics, and recovery semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	maxSessions := flag.Int("max-sessions", 64, "LRU cap on live sessions")
	idle := flag.Duration("idle", 30*time.Minute, "evict sessions idle longer than this")
	debounce := flag.Duration("debounce", 25*time.Millisecond, "edit-coalescing window before a background recheck")
	workers := flag.Int("workers", 0, "engine interaction-stage goroutines (0 = all cores)")
	checkTimeout := flag.Duration("check-timeout", 2*time.Minute, "deadline on request-triggered checks (0 = none)")
	editTimeout := flag.Duration("edit-timeout", 10*time.Second, "deadline on edit batches (0 = none)")
	maxInflight := flag.Int("max-inflight", 0, "engine-run concurrency cap (0 = NumCPU)")
	queueDepth := flag.Int("queue-depth", 64, "engine runs allowed to wait for a slot before 429")
	maxBody := flag.Int64("max-body", 64<<20, "request-body byte cap; oversize is 413")
	reportHistory := flag.Int("report-history", 8, "per-session report states kept for ?since= deltas (negative disables)")
	stateDir := flag.String("state-dir", "", "session snapshot directory (enables crash-safe restore)")
	snapEvery := flag.Duration("snapshot-every", 30*time.Second, "periodic snapshot interval (needs -state-dir)")
	testHooks := flag.Bool("test-hooks", false, "register the fault-injection endpoint (never in production)")
	flag.Parse()

	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dicheckd: state-dir: %v\n", err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dicheckd: listen: %v\n", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dicheckd: addr-file: %v\n", err)
			return 1
		}
	}
	fmt.Printf("dicheckd listening on http://%s\n", bound)

	srv := server.New(server.Config{
		MaxSessions:   *maxSessions,
		IdleTTL:       *idle,
		Debounce:      *debounce,
		Workers:       *workers,
		CheckTimeout:  *checkTimeout,
		EditTimeout:   *editTimeout,
		MaxInflight:   *maxInflight,
		QueueDepth:    *queueDepth,
		MaxBodyBytes:  *maxBody,
		ReportHistory: *reportHistory,
		StateDir:      *stateDir,
		SnapshotEvery: *snapEvery,
		TestHooks:     *testHooks,
	})
	if *stateDir != "" {
		restored, errs := srv.RestoreFromDisk(context.Background())
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "dicheckd: restore: %v\n", err)
		}
		if restored > 0 {
			fmt.Printf("dicheckd: restored %d session(s) from %s\n", restored, *stateDir)
		}
	}

	// Slow-client protection: a peer that trickles headers or never reads
	// its response cannot pin a connection goroutine forever. The write
	// timeout stays off because cold checks legitimately take minutes; the
	// per-request check deadline bounds those instead.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("dicheckd: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		srv.Close()
		return 0
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "dicheckd: serve: %v\n", err)
			srv.Close()
			return 1
		}
	}
	srv.Close()
	return 0
}
