package tech

// Compiled is the frozen, checker-facing form of a Technology: the
// interaction matrix as a dense table indexed by packed layer pair, the
// search radius precomputed, per-layer "interacts-with" sets packed into
// bitset rows, and the role-tagged layers the device-dependent rules
// probe (poly, diffusion, contact cuts, isolation) resolved to ids.
//
// The authoring form (AddLayer/SetSpacing/AddDevice over maps) stays
// convenient and order-independent; Compile freezes it once so the pair
// adjudication hot path — millions of calls per chip — never touches a map
// or matches a layer name.
type Compiled struct {
	n          int
	rules      []SpacingRule // n*n dense, both orientations filled
	maxSpacing int64

	// interacts is an n×n bit matrix in row-major words: row a starts at
	// a*stride, bit b of word b/64. Bit (a,b): the pair needs adjudication.
	interacts []uint64
	stride    int

	// Role-resolved probe layers for the device-dependent rules.
	polyID  LayerID
	hasPoly bool
	isDiff  []bool // layers with the diffusion role
	anyDiff bool
	isoID   LayerID
	hasIso  bool
	cutID   LayerID
	hasCut  bool

	// Single-layer rule slots beside the dense pairwise table, and the
	// directed cross-layer margins folded into the same packed-pair
	// (a*n+b) index. Cross rules are adjudicated per definition over
	// merged own geometry, not through the pair sweep, so they
	// deliberately leave the interacts bitsets untouched.
	widthMin      []int64                // per layer; 0 = no rule
	areaMin       []int64                // per layer; 0 = no rule
	cross         [numCrossKinds][]int64 // n*n dense, a*n+b, directed; 0 = no rule
	crossList     []CompiledCross        // deterministic (kind, a, b) walk order
	hasLayerRules bool
}

// CompiledCross is one directed cross-layer rule in the frozen form, in
// the deterministic order the definition-level rule stage walks.
type CompiledCross struct {
	Kind   CrossKind
	A, B   LayerID
	Margin int64
}

// Compile returns the frozen form, building it on first use after any
// mutation. The result is immutable and safe for concurrent readers;
// concurrent Compile calls on one Technology are safe too (the cache slot
// is atomic, and a duplicate build produces an identical value).
func (t *Technology) Compile() *Compiled {
	if c := t.compiled.Load(); c != nil {
		return c
	}
	n := len(t.layers)
	c := &Compiled{
		n:      n,
		rules:  make([]SpacingRule, n*n),
		stride: (n + 63) / 64,
		isDiff: make([]bool, n),
		polyID: NoLayer, isoID: NoLayer, cutID: NoLayer,
	}
	c.interacts = make([]uint64, n*c.stride)
	mark := func(a, b LayerID) {
		c.interacts[int(a)*c.stride+int(b)/64] |= 1 << (uint(b) % 64)
		c.interacts[int(b)*c.stride+int(a)/64] |= 1 << (uint(a) % 64)
	}
	for p, r := range t.spacing {
		if int(p.A) >= n || int(p.B) >= n {
			continue
		}
		c.rules[int(p.A)*n+int(p.B)] = r
		c.rules[int(p.B)*n+int(p.A)] = r
		if r.DiffNet > c.maxSpacing {
			c.maxSpacing = r.DiffNet
		}
		if r.SameNet > c.maxSpacing {
			c.maxSpacing = r.SameNet
		}
		if r.DiffNet > 0 || r.SameNet > 0 {
			mark(p.A, p.B)
		}
	}
	for i := range t.layers {
		id := t.layers[i].ID
		switch t.layers[i].Role {
		case RolePoly:
			c.polyID, c.hasPoly = id, true
		case RoleDiffusion:
			c.isDiff[id] = true
			c.anyDiff = true
		case RoleIsolation:
			c.isoID, c.hasIso = id, true
		case RoleContact:
			c.cutID, c.hasCut = id, true
		}
	}
	c.widthMin = make([]int64, n)
	c.areaMin = make([]int64, n)
	for l, r := range t.widths {
		if int(l) < n && r.Min > 0 {
			c.widthMin[l] = r.Min
			c.hasLayerRules = true
		}
	}
	for l, r := range t.areas {
		if int(l) < n && r.Min > 0 {
			c.areaMin[l] = r.Min
			c.hasLayerRules = true
		}
	}
	for k := CrossKind(0); k < numCrossKinds; k++ {
		c.cross[k] = make([]int64, n*n)
	}
	for key, r := range t.crosses {
		if int(key.a) >= n || int(key.b) >= n || r.Margin <= 0 {
			continue
		}
		c.cross[key.kind][int(key.a)*n+int(key.b)] = r.Margin
		c.hasLayerRules = true
	}
	for k := CrossKind(0); k < numCrossKinds; k++ {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if m := c.cross[k][a*n+b]; m > 0 {
					c.crossList = append(c.crossList, CompiledCross{
						Kind: k, A: LayerID(a), B: LayerID(b), Margin: m,
					})
				}
			}
		}
	}
	// The accidental-transistor rule (Figure 8) adjudicates poly over any
	// diffusion whether or not the pair carries a spacing cell, so those
	// pairs must survive the pre-bucketing interaction filter.
	if c.hasPoly && c.anyDiff {
		for d := 0; d < n; d++ {
			if c.isDiff[d] {
				mark(c.polyID, LayerID(d))
			}
		}
	}
	t.compiled.Store(c)
	return c
}

// NumLayers returns the compiled layer count.
func (c *Compiled) NumLayers() int { return c.n }

// Rule returns the interaction-matrix cell for a layer pair without
// normalization or hashing: one multiply and one index. The returned
// pointer aliases the compiled table; callers must not mutate it.
func (c *Compiled) Rule(a, b LayerID) *SpacingRule {
	return &c.rules[int(a)*c.n+int(b)]
}

// MaxSpacing returns the precomputed interaction search radius.
func (c *Compiled) MaxSpacing() int64 { return c.maxSpacing }

// Interacts reports whether a candidate pair on the two layers can ever
// reach adjudication: a non-zero spacing cell or a device-rule pair. The
// interaction engine consults this before bucketing candidate pairs, so
// rule-free pairs never leave the sweep.
func (c *Compiled) Interacts(a, b LayerID) bool {
	return c.interacts[int(a)*c.stride+int(b)/64]&(1<<(uint(b)%64)) != 0
}

// InteractsTag is Interacts over the int tags the pair sweep carries.
func (c *Compiled) InteractsTag(a, b int) bool {
	return c.interacts[a*c.stride+b/64]&(1<<(uint(b)%64)) != 0
}

// Poly returns the poly-role layer (gate material), if any.
func (c *Compiled) Poly() (LayerID, bool) { return c.polyID, c.hasPoly }

// IsDiffusion reports whether the layer carries the diffusion role.
func (c *Compiled) IsDiffusion(l LayerID) bool { return c.isDiff[l] }

// HasDiffusion reports whether any layer carries the diffusion role.
func (c *Compiled) HasDiffusion() bool { return c.anyDiff }

// Isolation returns the isolation-role layer (base-keepout probe), if any.
func (c *Compiled) Isolation() (LayerID, bool) { return c.isoID, c.hasIso }

// Cut returns the contact-role layer (gate-keepout probe), if any.
func (c *Compiled) Cut() (LayerID, bool) { return c.cutID, c.hasCut }

// WidthMin returns the minimum region width for a layer (0 = no rule).
func (c *Compiled) WidthMin(l LayerID) int64 { return c.widthMin[l] }

// AreaMin returns the minimum island area for a layer (0 = no rule).
func (c *Compiled) AreaMin(l LayerID) int64 { return c.areaMin[l] }

// CrossMargin returns the directed cross-layer margin for (kind, a, b)
// (0 = no rule), via the same packed-pair index the spacing table uses.
func (c *Compiled) CrossMargin(kind CrossKind, a, b LayerID) int64 {
	return c.cross[kind][int(a)*c.n+int(b)]
}

// CrossRules returns every directed cross-layer rule in deterministic
// (kind, a, b) order. The returned slice aliases the compiled form;
// callers must not mutate it.
func (c *Compiled) CrossRules() []CompiledCross { return c.crossList }

// HasLayerRules reports whether any width/area/cross rule is present, so
// rule-free technologies skip the definition-level rule stage scan.
func (c *Compiled) HasLayerRules() bool { return c.hasLayerRules }
