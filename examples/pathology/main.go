// Pathology: a guided tour of the paper's figures. Every pathology case in
// the library is a tiny layout reproducing one figure; this example runs
// both checkers over each and prints what happened — the paper's argument
// in executable form.
package main

import (
	"fmt"
	"log"
	"sort"

	dic "repro"
)

func main() {
	for _, p := range dic.Pathologies() {
		fmt.Printf("== %s (%s)\n", p.Name, p.Figure)
		fmt.Printf("   %s\n", p.Notes)

		rep, err := dic.Check(p.Design, p.Tech, dic.Options{SkipConstruction: true})
		if err != nil {
			log.Fatal(err)
		}
		errs := rep.Errors()
		if len(errs) == 0 {
			fmt.Println("   DIC: clean")
		} else {
			fmt.Printf("   DIC: %d error(s)\n", len(errs))
			for _, v := range errs {
				fmt.Printf("        %v\n", v)
			}
		}

		frep, err := dic.CheckFlat(p.Design, p.Tech, dic.FlatOptions{})
		if err != nil {
			log.Fatal(err)
		}
		if len(frep.Violations) == 0 {
			verdict := "clean"
			if p.FlatMisses {
				verdict = "clean — MISSES the defect (region 1 of Figure 1)"
			}
			fmt.Printf("   baseline: %s\n", verdict)
		} else {
			suffix := ""
			if p.FlatFalse {
				suffix = " — includes FALSE errors (region 3 of Figure 1)"
			}
			fmt.Printf("   baseline: %d violation(s)%s\n", len(frep.Violations), suffix)
			counts := map[string]int{}
			for _, v := range frep.Violations {
				counts[v.Rule]++
			}
			rules := make([]string, 0, len(counts))
			for r := range counts {
				rules = append(rules, r)
			}
			sort.Strings(rules)
			for _, r := range rules {
				fmt.Printf("        %s ×%d\n", r, counts[r])
			}
		}
		fmt.Println()
	}
}
