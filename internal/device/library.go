package device

import (
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Library constructors build canonical, rule-clean primitive device symbols
// for the shipped technologies. Workload generators, tests and examples all
// draw from these, so "known good" geometry is defined in exactly one
// place. All devices are centered at the origin unless noted.

// NewEnhTransistor builds an enhancement nMOS transistor with channel
// length l (poly strip width, x extent) and channel width w (diffusion
// strip width, y extent), both in centimicrons.
func NewEnhTransistor(d *layout.Design, tc *tech.Technology, name string, l, w int64) *layout.Symbol {
	return newMOS(d, tc, name, tech.DevNMOSEnh, l, w, false)
}

// NewDepTransistor builds a depletion nMOS transistor (implanted channel).
func NewDepTransistor(d *layout.Design, tc *tech.Technology, name string, l, w int64) *layout.Symbol {
	return newMOS(d, tc, name, tech.DevNMOSDep, l, w, true)
}

func newMOS(d *layout.Design, tc *tech.Technology, name, devType string, l, w int64, implant bool) *layout.Symbol {
	spec, _ := tc.Device(devType)
	gext := spec.Params["gate-extension"]
	sdext := spec.Params["sd-extension"]
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	diff, _ := tc.LayerByName(tech.NMOSDiff)

	s := d.MustSymbol(name)
	s.DeviceType = devType
	s.AddBox(poly, geom.R(-l/2, -w/2-gext, l-l/2, w-w/2+gext), "")
	s.AddBox(diff, geom.R(-l/2-sdext, -w/2, l-l/2+sdext, w-w/2), "")
	if implant {
		io := spec.Params["implant-overlap"]
		imp, _ := tc.LayerByName(tech.NMOSImplant)
		s.AddBox(imp, geom.R(-l/2-io, -w/2-io, l-l/2+io, w-w/2+io), "")
	}
	return s
}

// NewDiffContact builds a metal-diffusion contact.
func NewDiffContact(d *layout.Design, tc *tech.Technology, name string) *layout.Symbol {
	return newContact(d, tc, name, tech.DevContactDiff, tech.NMOSDiff)
}

// NewPolyContact builds a metal-poly contact.
func NewPolyContact(d *layout.Design, tc *tech.Technology, name string) *layout.Symbol {
	return newContact(d, tc, name, tech.DevContactPoly, tech.NMOSPoly)
}

// NewContact builds a canonical contact for any declared contact-class
// device type, resolving the cut, metal, and lower-conductor layers
// through the device's role bindings — the deck's "use" lines — so one
// builder serves every process (the CMOS workload draws its n-diffusion,
// p-diffusion, and poly contacts from it).
func NewContact(d *layout.Design, tc *tech.Technology, name, devType string) *layout.Symbol {
	spec, _ := tc.Device(devType)
	cutL, _ := tc.LayerFor(spec, tech.RoleContact, tech.NMOSContact)
	metalL, _ := tc.LayerFor(spec, tech.RoleMetal, tech.NMOSMetal)
	lowerL, _ := tc.LayerFor(spec, "lower", "")
	return buildContact(d, tc, name, devType, cutL, metalL, lowerL)
}

func newContact(d *layout.Design, tc *tech.Technology, name, devType, lowerName string) *layout.Symbol {
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	lowerL, _ := tc.LayerByName(lowerName)
	return buildContact(d, tc, name, devType, cutL, metalL, lowerL)
}

// buildContact lays down the shared contact geometry: the cut at origin,
// metal and lower conductor enclosing it by the spec margins.
func buildContact(d *layout.Design, tc *tech.Technology, name, devType string, cutL, metalL, lowerL tech.LayerID) *layout.Symbol {
	spec, _ := tc.Device(devType)
	cs := spec.Params["cut-size"]
	me := spec.Params["metal-enclosure"]
	le := spec.Params["lower-enclosure"]

	s := d.MustSymbol(name)
	s.DeviceType = devType
	cut := geom.R(-cs/2, -cs/2, cs-cs/2, cs-cs/2)
	s.AddBox(cutL, cut, "")
	s.AddBox(metalL, cut.Expand(me), "")
	s.AddBox(lowerL, cut.Expand(le), "")
	return s
}

// NewButtingContact builds the legal poly-diffusion butting contact of
// Figure 7: overlapping poly and diffusion, cut over the overlap, metal
// over the cut.
func NewButtingContact(d *layout.Design, tc *tech.Technology, name string) *layout.Symbol {
	spec, _ := tc.Device(tech.DevButting)
	me := spec.Params["metal-enclosure"]
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)

	s := d.MustSymbol(name)
	s.DeviceType = tech.DevButting
	s.AddBox(diffL, geom.R(-750, -250, 250, 250), "")
	s.AddBox(polyL, geom.R(-250, -250, 750, 250), "")
	cut := geom.R(-250, -250, 250, 250) // covers the 2λ-wide overlap
	s.AddBox(cutL, cut, "")
	s.AddBox(metalL, cut.Expand(me), "")
	return s
}

// NewBuriedContact builds a poly-diffusion buried contact.
func NewBuriedContact(d *layout.Design, tc *tech.Technology, name string) *layout.Symbol {
	spec, _ := tc.Device(tech.DevBuried)
	bo := spec.Params["buried-overlap"]
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	buriedL, _ := tc.LayerByName(tech.NMOSBuried)

	s := d.MustSymbol(name)
	s.DeviceType = tech.DevBuried
	s.AddBox(polyL, geom.R(-750, -250, 250, 250), "")
	s.AddBox(diffL, geom.R(-250, -250, 750, 250), "")
	overlap := geom.R(-250, -250, 250, 250)
	s.AddBox(buriedL, overlap.Expand(bo), "")
	return s
}

// NewDiffResistor builds a diffusion resistor strip of the given length
// (x extent); width is the layer minimum.
func NewDiffResistor(d *layout.Design, tc *tech.Technology, name string, length int64) *layout.Symbol {
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	w := tc.Layer(diffL).MinWidth
	s := d.MustSymbol(name)
	s.DeviceType = tech.DevResistorD
	s.AddBox(diffL, geom.R(0, 0, length, w), "")
	return s
}

// NewPullup builds the canonical depletion pullup with buried gate tie:
// vertical diffusion, crossing gate at the origin, poly arm descending into
// a buried window. The source (tied to the gate) is the lower diffusion
// part, the drain (VDD side) the upper.
func NewPullup(d *layout.Design, tc *tech.Technology, name string) *layout.Symbol {
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	buriedL, _ := tc.LayerByName(tech.NMOSBuried)
	impL, _ := tc.LayerByName(tech.NMOSImplant)

	s := d.MustSymbol(name)
	s.DeviceType = tech.DevNMOSPullup
	s.AddBox(diffL, geom.R(-250, -1750, 250, 1250), "")
	s.AddBox(polyL, geom.R(-750, -250, 750, 250), "")   // gate
	s.AddBox(polyL, geom.R(-250, -1250, 250, -250), "") // arm to the tie
	s.AddBox(buriedL, geom.R(-500, -1500, 500, -250), "")
	s.AddBox(impL, geom.R(-625, -625, 625, 625), "")
	return s
}

// NewNPN builds the simplified bipolar transistor of Figure 6a.
func NewNPN(d *layout.Design, tc *tech.Technology, name string) *layout.Symbol {
	baseL, _ := tc.LayerByName(tech.BipBase)
	emL, _ := tc.LayerByName(tech.BipEmitter)
	s := d.MustSymbol(name)
	s.DeviceType = tech.DevNPN
	s.AddBox(baseL, geom.R(0, 0, 800, 800), "")
	s.AddBox(emL, geom.R(250, 250, 550, 550), "")
	return s
}

// NewBaseResistor builds the base-diffusion resistor of Figure 6b.
func NewBaseResistor(d *layout.Design, tc *tech.Technology, name string, length int64) *layout.Symbol {
	baseL, _ := tc.LayerByName(tech.BipBase)
	w := tc.Layer(baseL).MinWidth
	s := d.MustSymbol(name)
	s.DeviceType = tech.DevResistorBase
	s.AddBox(baseL, geom.R(0, 0, length, w), "")
	return s
}
