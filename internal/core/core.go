package core
