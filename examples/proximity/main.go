// Proximity: the paper's 2-D process model (Figures 13-14, Equation 1) in
// action. Renders an ASCII map of the printed image of two close boxes —
// showing the proximity-effect bulge between them — then prints the
// end-retreat curve behind the Figure 14 relational rule.
package main

import (
	"fmt"
	"strings"

	dic "repro"
	"repro/internal/geom"
)

func main() {
	m := dic.Model{Sigma: 100, Threshold: 0.4} // over-exposed: features grow

	// Two boxes with a narrow gap; their exposure tails add in between.
	a := geom.FromRectR(geom.R(-900, -500, -150, 500))
	b := geom.FromRectR(geom.R(150, -500, 900, 500))
	mask := a.Union(b)

	fmt.Println("printed image of two boxes, 300 apart, over-exposed (σ=100, T=0.4)")
	fmt.Println("'#' drawn mask, '+' prints beyond the drawn mask, '.' clear:")
	fmt.Println()
	const cell = 50
	for y := int64(650); y >= -650; y -= cell {
		var sb strings.Builder
		for x := int64(-1100); x <= 1100; x += cell {
			p := geom.FPoint{X: float64(x), Y: float64(y)}
			inMask := mask.ContainsPoint(geom.Pt(x, y))
			prints := m.Prints(mask, p)
			switch {
			case inMask:
				sb.WriteByte('#')
			case prints:
				sb.WriteByte('+')
			default:
				sb.WriteByte('.')
			}
		}
		fmt.Println(sb.String())
	}

	shift := m.IsolatedEdgeShift()
	fmt.Printf("\nisolated edge growth: %.1f per side\n", shift)
	fmt.Println("printed gap vs drawn gap (unary model = drawn - 2×growth):")
	fmt.Printf("%10s %10s %10s %12s\n", "drawn", "unary", "printed", "prox effect")
	for _, gap := range []int64{800, 500, 400, 300, 250, 200} {
		la := geom.FromRectR(geom.R(-2000, -1000, 0, 1000))
		rb := geom.FromRectR(geom.R(gap, -1000, gap+2000, 1000))
		printed := m.PrintedGap(la, rb)
		unary := float64(gap) - 2*shift
		fmt.Printf("%10d %10.1f %10.1f %12.2f\n", gap, unary, printed, unary-printed)
	}

	fmt.Println("\nFigure 14 — end retreat vs wire width (σ=λ=250, T=0.5):")
	rel := dic.Model{Sigma: 250, Threshold: 0.5}
	fmt.Printf("%14s %12s %18s\n", "width (λ)", "retreat", "required overlap")
	for _, wLam := range []int64{2, 3, 4, 6, 8} {
		w := wLam * 250
		fmt.Printf("%14d %12.1f %18.1f\n", wLam, rel.EndRetreat(w), rel.RequiredGateOverlap(w, 125))
	}
	fmt.Println("\nthe required gate overlap is a FUNCTION of the poly width —")
	fmt.Println("the relational rule no single design-rule number can express.")
}
