package eval

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/process"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Sizes used by the scaling experiments; Quick selects the prefix used in
// -short mode.
var e1Sizes = []struct{ rows, cols, errors int }{
	{4, 5, 10},
	{8, 12, 24},
	{16, 25, 50},
	{32, 50, 100},
}

// E01 reproduces Figure 1 and the "false:real can be 10:1 or higher"
// claim: real-flagged / unchecked / false error counts for the DIC and the
// traditional baseline over growing chips with seeded ground truth.
func E01(quick bool) (*Table, error) {
	t := &Table{
		ID:     "E01",
		Title:  "error economics: real flagged / unchecked / false",
		Figure: "Figure 1 + the 10:1 false:real claim",
		Columns: []string{
			"devices", "injected",
			"DIC real", "DIC miss", "DIC false",
			"flat real", "flat miss", "flat false", "flat false:real", "flat eff",
		},
	}
	sizes := e1Sizes
	if quick {
		sizes = sizes[:2]
	}
	for _, s := range sizes {
		res, err := RunE1(tech.NMOS(), s.rows, s.cols, s.errors, 1980)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			res.Devices, res.Injected,
			res.DIC.RealFlagged, res.DIC.Missed, res.DIC.False,
			res.Flat.RealFlagged, res.Flat.Missed, res.Flat.False,
			fmt.Sprintf("%.1f:1", res.Flat.FalseToRealRatio()),
			fmt.Sprintf("%.0f%%", 100*res.Flat.Effectiveness()),
		)
	}
	t.Note("baseline false errors are legal butting contacts flagged by the mask-level gate rule (Figure 7)")
	t.Note("baseline misses: accidental transistors, missing gate overlaps, shallow connections, P-G shorts")
	return t, nil
}

// E02 reproduces Figure 2: figure-based pathologies. Each row is one
// pathology with both checkers' verdicts.
func E02() (*Table, error) {
	t := &Table{
		ID:      "E02",
		Title:   "figure pathologies",
		Figure:  "Figure 2 (+ Figures 5-8, 15 pathology table)",
		Columns: []string{"case", "figure", "DIC verdict", "baseline verdict", "baseline failure"},
	}
	for _, p := range workload.AllPathologies() {
		res, err := RunPathology(p)
		if err != nil {
			return nil, err
		}
		dic := "clean"
		if len(res.DICRules) > 0 {
			dic = fmt.Sprintf("%d rule(s) %v", len(res.DICRules), keys(res.DICRules))
		}
		fl := "clean"
		if len(res.FlatRules) > 0 {
			fl = fmt.Sprintf("%d rule(s) %v", len(res.FlatRules), keys(res.FlatRules))
		}
		failure := "-"
		if p.FlatMisses {
			failure = "misses (region 1)"
		}
		if p.FlatFalse {
			failure = "false error (region 3)"
		}
		if !res.DICOk {
			dic += " (UNEXPECTED)"
		}
		if !res.FlatAsDoc {
			fl += " (UNEXPECTED)"
		}
		t.AddRow(p.Name, p.Figure, dic, fl, failure)
	}
	return t, nil
}

// E03 reproduces Figure 3: orthogonal vs Euclidean expand and shrink of a
// square — corner shapes via exact areas.
func E03() (*Table, error) {
	t := &Table{
		ID:      "E03",
		Title:   "orthogonal vs Euclidean expand/shrink of a 20x20λ square",
		Figure:  "Figure 3",
		Columns: []string{"d (λ)", "ortho area", "euclid area", "corner deficit", "shrink equal"},
	}
	sq := geom.R(0, 0, 5000, 5000)
	reg := geom.FromRectR(sq)
	for _, dLam := range []int64{1, 2, 4, 8} {
		d := dLam * 250
		ortho := float64(geom.OrthogonalExpandArea(reg, d))
		euc := geom.EuclideanExpandArea(reg, d)
		deficit := ortho - euc
		wantDeficit := 4 * (1 - math.Pi/4) * float64(d) * float64(d)
		shrinkEq := geom.EuclideanShrinkRect(sq, d) == sq.Expand(-d)
		t.AddRow(dLam, ortho, euc,
			fmt.Sprintf("%.0f (exact %.0f)", deficit, wantDeficit),
			shrinkEq)
	}
	t.Note("Euclidean expand rounds corners: deficit = 4(1-π/4)d² exactly; shrink agrees on squares")
	return t, nil
}

// E04 reproduces Figure 4: the width pathology of the Euclidean
// shrink-expand-compare and the spacing pathology of orthogonal
// expand-check-overlap.
func E04() (*Table, error) {
	t := &Table{
		ID:      "E04",
		Title:   "width & spacing check pathologies on legal geometry",
		Figure:  "Figure 4",
		Columns: []string{"check", "technique", "flags on legal layout", "comment"},
	}
	tc := tech.NMOS()
	diffL, _ := tc.LayerByName(tech.NMOSDiff)

	// Width: a legal square.
	d1 := newSingleBoxDesign(tc, diffL, geom.R(0, 0, 2000, 2000))
	secRep, err := flat.Check(d1, tc, flat.Options{EuclideanSECWidth: true})
	if err != nil {
		return nil, err
	}
	orthoRep, err := flat.Check(d1, tc, flat.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("width", "Euclidean shrink-expand-compare", len(secRep.Violations), "errors at every corner")
	t.AddRow("width", "orthogonal shrink-expand-compare", len(orthoRep.Violations), "exact for Manhattan")

	// Spacing: a diagonal pair with Euclidean clearance above the rule.
	d2 := newSingleBoxDesign(tc, diffL, geom.R(0, 0, 2000, 2000))
	d2.Top.AddBox(diffL, geom.R(2600, 2600, 4600, 4600), "")
	orthoSp, err := flat.Check(d2, tc, flat.Options{})
	if err != nil {
		return nil, err
	}
	eucSp, err := flat.Check(d2, tc, flat.Options{Metric: flat.Euclidean})
	if err != nil {
		return nil, err
	}
	t.AddRow("spacing", "orthogonal expand-check-overlap", len(orthoSp.Violations), "corner-to-edge false error")
	t.AddRow("spacing", "Euclidean distance", len(eucSp.Violations), "clearance 849 >= 750: legal")
	t.Note("neither fixed technique models processing; see E12 for the paper's physics-based answer")
	return t, nil
}

// E09 reproduces Figures 9-10: the hierarchical pipeline against the flat
// baseline over growing regular chips — run time and work counters.
func E09(quick bool) (*Table, error) {
	t := &Table{
		ID:     "E09",
		Title:  "hierarchical DIC vs flat baseline on regular chips",
		Figure: "Figures 9-10 (hierarchy exploits regularity)",
		Columns: []string{
			"devices", "flat elems",
			"DIC defs checked", "DIC time",
			"flat time", "DIC candidates", "DIC measured",
		},
	}
	sizes := []struct{ rows, cols int }{{4, 5}, {8, 12}, {16, 25}, {32, 50}}
	if quick {
		sizes = sizes[:2]
	}
	for _, s := range sizes {
		tc := tech.NMOS()
		chip := workload.NewChip(tc, "e9", s.rows, s.cols)
		st := chip.Design.Stats()

		start := time.Now()
		rep, err := core.Check(chip.Design, tc, core.Options{Workers: Workers})
		if err != nil {
			return nil, err
		}
		dicDur := time.Since(start)
		if !rep.Clean() {
			return nil, fmt.Errorf("E09 chip not clean: %v", rep.Errors()[0])
		}
		frep, err := flat.Check(chip.Design, tc, flat.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			st.FlatDevices, st.FlatElements,
			rep.Stats.ElementsChecked+rep.Stats.SymbolDefsChecked,
			dicDur.Round(time.Millisecond),
			frep.Duration.Round(time.Millisecond),
			rep.Stats.InteractionCandidates,
			rep.Stats.InteractionChecked,
		)
	}
	t.Note("element and device checks run once per DEFINITION: the 'defs checked' column stays constant as the chip grows")
	return t, nil
}

// E10 reproduces Figure 11: skeletal connectivity cases and the width
// invariant.
func E10() (*Table, error) {
	t := &Table{
		ID:      "E10",
		Title:   "skeletal connectivity criterion",
		Figure:  "Figure 11",
		Columns: []string{"case", "skeletally connected", "union width legal"},
	}
	w := int64(500)
	cases := []struct {
		name string
		a, b geom.Rect
	}{
		{"deep overlap (2x min width)", geom.R(0, 0, 4000, 500), geom.R(3000, 0, 7000, 500)},
		{"overlap exactly min width", geom.R(0, 0, 4000, 500), geom.R(3500, 0, 7500, 500)},
		{"shallow corner overlap", geom.R(0, 0, 4000, 500), geom.R(3875, 375, 7875, 875)},
		{"end-to-end abutment (Fig 15)", geom.R(0, 0, 4000, 500), geom.R(4000, 0, 8000, 500)},
		{"disjoint", geom.R(0, 0, 4000, 500), geom.R(5000, 0, 9000, 500)},
		{"enclosure", geom.R(0, 0, 4000, 4000), geom.R(1000, 1000, 2000, 2000)},
	}
	for _, c := range cases {
		ra, rb := geom.FromRectR(c.a), geom.FromRectR(c.b)
		conn := geom.SkeletalConnected(ra, rb, w)
		legal := geom.MinWidthOK(ra.Union(rb), w)
		t.AddRow(c.name, conn, legal)
	}
	t.Note("invariant (property-tested): legal width + skeletal connection => legal union width")
	return t, nil
}

// E11 reproduces Figure 12: the interaction matrix audit plus measured
// skip counters from a real run.
func E11() (*Table, error) {
	tc := tech.NMOS()
	t := &Table{
		ID:      "E11",
		Title:   "interaction matrix: which cells are checked",
		Figure:  "Figure 12",
		Columns: []string{"pair", "diff-net rule", "same-net rule", "related exempt", "note"},
	}
	checked, skipped := 0, 0
	for _, cell := range tc.InteractionMatrix() {
		if cell.Checked {
			checked++
		} else {
			skipped++
			if cell.Rule.Note == "" {
				continue // unremarkable empty cell
			}
		}
		diff, same := "-", "-"
		if cell.Rule.DiffNet > 0 {
			diff = fmt.Sprintf("%dλ", cell.Rule.DiffNet/tc.Lambda)
		}
		if cell.Rule.SameNet > 0 {
			same = fmt.Sprintf("%dλ", cell.Rule.SameNet/tc.Lambda)
		}
		t.AddRow(cell.Names, diff, same, cell.Rule.ExemptRelated, cell.Rule.Note)
	}
	t.Note("%d of %d upper-triangular cells carry any rule; the rest are skipped outright", checked, checked+skipped)

	chip := workload.NewChip(tc, "e11", 8, 12)
	rep, err := core.Check(chip.Design, tc, core.Options{Workers: Workers})
	if err != nil {
		return nil, err
	}
	st := rep.Stats
	t.Note("measured on a %d-device chip: %d candidate pairs -> %d measured; skips: %d no-rule, %d same-net (Fig 5a), %d related, %d connection-stage",
		chip.DeviceCount(), st.InteractionCandidates, st.InteractionChecked,
		st.SkippedNoRule, st.SkippedSameNetExempt, st.SkippedRelated, st.SkippedConnectionPairs)
	return t, nil
}

// E12 reproduces Figure 13 and Eq. 1: Euclidean vs orthogonal vs proximity
// expansion, with the closed-form/numeric agreement check.
func E12() (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "process-model expansion: printed gap between two boxes",
		Figure:  "Figure 13 + Equation 1",
		Columns: []string{"drawn gap", "unary prediction", "printed gap", "proximity effect"},
	}
	m := process.Model{Sigma: 100, Threshold: 0.4} // over-exposed process
	shift := m.IsolatedEdgeShift()
	for _, gap := range []int64{1000, 500, 375, 300, 250, 200} {
		a := geom.FromRectR(geom.R(-2000, -1000, 0, 1000))
		b := geom.FromRectR(geom.R(gap, -1000, gap+2000, 1000))
		unary := float64(gap) - 2*shift
		printed := m.PrintedGap(a, b)
		t.AddRow(gap, unary, printed, fmt.Sprintf("%.2f", unary-printed))
	}
	t.Note("isolated edge shift %.2f; the proximity effect (unary - printed) grows as the gap shrinks: bias is not unary", shift)

	// Different-layer spacing includes worst-case mask misalignment: the
	// same drawn gap passes same-layer and fails cross-layer.
	sm := process.Model{Sigma: 100, Threshold: 0.5}
	a2 := geom.FromRectR(geom.R(-2000, -500, 0, 500))
	b2 := geom.FromRectR(geom.R(700, -500, 2700, 500))
	t.Note("misalignment: 700 drawn gap, same layer (0 misalign) ok=%v; cross layer (600 misalign) ok=%v",
		sm.SpacingOK(a2, b2, 0, 100), sm.SpacingOK(a2, b2, 600, 100))

	// Closed form vs numeric convolution.
	mask := geom.FromRects([]geom.Rect{geom.R(0, 0, 400, 200), geom.R(300, 100, 600, 500)})
	p := geom.FPoint{X: 350, Y: 150}
	exact := m.ExposureAt(mask, p)
	numeric := m.ExposureAtNumeric(mask, p, 4)
	t.Note("Eq.1 closed form %.4f vs numeric convolution %.4f (|Δ| = %.4f)", exact, numeric, math.Abs(exact-numeric))
	return t, nil
}

// E13 reproduces Figure 14: end retreat vs wire width and the relational
// gate-overlap rule.
func E13() (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "relational rule: end retreat and required gate overlap vs poly width",
		Figure:  "Figure 14",
		Columns: []string{"poly width (λ)", "end retreat", "required overlap", "2λ drawn overlap ok"},
	}
	// A coarse process (σ = λ) makes the relational effect visible at
	// drawn dimensions; DefaultModel's σ = λ/2 shows the same shape.
	m := process.Model{Sigma: 250, Threshold: 0.5}
	const margin = 125 // λ/2 safety
	for _, wLam := range []int64{2, 3, 4, 6, 8} {
		w := wLam * 250
		retreat := m.EndRetreat(w)
		need := m.RequiredGateOverlap(w, margin)
		ok := m.RelationalGateCheck(w, 500, margin)
		t.AddRow(wLam, fmt.Sprintf("%.1f", retreat), fmt.Sprintf("%.1f", need), ok)
	}
	t.Note("narrow wires retreat more, so the required overlap is a function of the width — a rule no fixed number expresses")
	return t, nil
}

// E15 exercises the four non-geometric construction rules.
func E15() (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "non-geometric construction rules",
		Figure:  "the paper's rule list 1-4",
		Columns: []string{"rule", "violating case", "reported", "clean chip reports"},
	}
	tc := tech.NMOS()

	chip := workload.NewChip(tc, "e15clean", 4, 4)
	cleanRep, err := core.Check(chip.Design, tc, core.Options{Workers: Workers})
	if err != nil {
		return nil, err
	}
	cleanByRule := core.CountByRule(cleanRep.Errors())

	cases := []struct {
		rule string
		mk   func() *workload.Chip
	}{
		{"NET.FANOUT", func() *workload.Chip {
			c := workload.NewChip(tc, "e15a", 1, 2)
			diffL, _ := tc.LayerByName(tech.NMOSDiff)
			c.Design.Top.AddWire(diffL, 500, "dangling", geom.Pt(0, 6000), geom.Pt(4000, 6000))
			return c
		}},
		{"NET.PGSHORT", func() *workload.Chip {
			c := workload.NewChip(tc, "e15b", 2, 3)
			workloadInjectKind(c, workload.ErrPGShort)
			return c
		}},
		{"NET.BUSRAIL", func() *workload.Chip {
			c := workload.NewChip(tc, "e15c", 1, 2)
			metalL, _ := tc.LayerByName(tech.NMOSMetal)
			// A declared bus wire melting into the GND rail.
			c.Design.Top.AddWire(metalL, 750, "bus0",
				geom.Pt(0, workload.GndRailY), geom.Pt(4000, workload.GndRailY))
			return c
		}},
		{"NET.DEPGND", func() *workload.Chip {
			c := workload.NewChip(tc, "e15d", 1, 2)
			diffL, _ := tc.LayerByName(tech.NMOSDiff)
			// Pull the first cell's output diffusion into the ground net:
			// its pullup (source side) now touches ground.
			c.Design.Top.AddWire(diffL, 500, "GND", geom.Pt(500, 0), geom.Pt(2750, 0))
			return c
		}},
	}
	for _, cse := range cases {
		c := cse.mk()
		rep, err := core.Check(c.Design, tc, core.Options{Workers: Workers})
		if err != nil {
			return nil, err
		}
		n := core.CountByRule(rep.Errors())[cse.rule]
		t.AddRow(cse.rule, cse.rule+" scenario", n, cleanByRule[cse.rule])
	}
	t.Note("the clean chip reports zero for all four rules; each scenario triggers exactly its rule")
	return t, nil
}

// E16 reproduces the claim: "The visual checks required on a 100K device
// chip which has been checked by an 80% effective DRC are as onerous as
// those required to visually check a 20K device chip with no DRC."
func E16(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "residual visual work: devices x (1 - effectiveness)",
		Figure:  "the 100K/20K visual-check claim",
		Columns: []string{"devices", "checker", "effectiveness", "residual visual work (device-equivalents)"},
	}
	sizes := []struct{ rows, cols, errors int }{{8, 12, 24}, {16, 25, 50}}
	if quick {
		sizes = sizes[:1]
	}
	for _, s := range sizes {
		res, err := RunE1(tech.NMOS(), s.rows, s.cols, s.errors, 7)
		if err != nil {
			return nil, err
		}
		flatEff := res.Flat.Effectiveness()
		dicEff := res.DIC.Effectiveness()
		t.AddRow(res.Devices, "none", "0%", res.Devices)
		t.AddRow(res.Devices, "flat baseline", fmt.Sprintf("%.0f%%", 100*flatEff),
			fmt.Sprintf("%.0f", float64(res.Devices)*(1-flatEff)))
		t.AddRow(res.Devices, "DIC", fmt.Sprintf("%.0f%%", 100*dicEff),
			fmt.Sprintf("%.0f", float64(res.Devices)*(1-dicEff)))
	}
	t.Note("paper's arithmetic: 100K x (1-0.80) = 20K x (1-0) — an 80%% checker leaves a fifth of the chip to the eye")
	t.Note("measured flat effectiveness here reflects the error mix: device/net errors are invisible to masks")
	return t, nil
}

// E06 reproduces Figure 6 at scale: a bipolar chip where every resistor
// is legally tied to isolation while every transistor base must stay
// clear. One deliberately broken pair must produce exactly one integrity
// error and zero false errors on the legal ties.
func E06(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E06",
		Title:   "device-dependent rules at scale (bipolar base vs isolation)",
		Figure:  "Figure 6",
		Columns: []string{"pairs", "devices", "clean-chip errors", "errors after break", "of which DEV.NPN.ISO", "false flags on resistor ties"},
	}
	sizes := []int{8, 32}
	if quick {
		sizes = sizes[:1]
	}
	for _, n := range sizes {
		clean := workload.NewBipolarChip(tech.Bipolar(), "e06clean", n)
		cleanRep, err := core.Check(clean.Design, clean.Tech, core.Options{SkipConstruction: true, Workers: Workers})
		if err != nil {
			return nil, err
		}
		broken := workload.NewBipolarChip(tech.Bipolar(), "e06broken", n)
		where := broken.BreakIsolation(n / 2)
		brokenRep, err := core.Check(broken.Design, broken.Tech, core.Options{SkipConstruction: true, Workers: Workers})
		if err != nil {
			return nil, err
		}
		iso, falseTies := 0, 0
		for _, v := range brokenRep.Errors() {
			if v.Rule != "DEV.NPN.ISO" {
				continue
			}
			if v.Where.Expand(500).Touches(where) {
				iso++
			} else {
				falseTies++
			}
		}
		t.AddRow(n, 2*n, len(cleanRep.Errors()), len(brokenRep.Errors()), iso, falseTies)
	}
	t.Note("identical base-layer geometry: the transistor case is an integrity error, the resistor tie is legal")
	return t, nil
}

// E17 is the ablation study: run the DIC on a CLEAN chip with parts of
// its information deliberately discarded, and count the resulting false
// errors. This quantifies what each piece of the paper's design buys.
func E17(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "ablation: false errors on a clean chip as information is removed",
		Figure:  "the paper's argument, inverted",
		Columns: []string{"configuration", "false errors", "interactions measured", "notes"},
	}
	rows, cols := 16, 25
	if quick {
		rows, cols = 8, 12
	}
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "e17", rows, cols)

	type cfg struct {
		name string
		opts core.Options
		note string
	}
	cfgs := []cfg{
		{"full DIC (nets + devices + Euclidean)", core.Options{Workers: Workers},
			"the paper's checker"},
		{"orthogonal metric", core.Options{Metric: core.Orthogonal, Workers: Workers},
			"Figure 4 corner metric inside the DIC"},
		{"no net/device exemptions", core.Options{NoExemptions: true, Workers: Workers},
			"every pair checked as unrelated (Figures 5/12 discarded)"},
	}
	for _, c := range cfgs {
		rep, err := core.Check(chip.Design, tc, c.opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, len(rep.Errors()), rep.Stats.InteractionChecked, c.note)
	}
	frep, err := flat.Check(chip.Design, tc, flat.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("flat mask-level baseline", len(frep.Violations), "-",
		"full instantiation, no topology at all")
	t.Note("the chip is verified clean, so every reported error is false; each removed piece of information adds its own class of false errors")
	return t, nil
}

// workloadInjectKind injects one specific error kind into cell (0,0).
func workloadInjectKind(c *workload.Chip, kind workload.ErrorKind) {
	// InjectErrors cycles kinds in order; request enough to reach the kind.
	n := int(kind) + 1
	workload.InjectErrors(c, n, 7)
}

func newSingleBoxDesign(tc *tech.Technology, layer tech.LayerID, r geom.Rect) *layout.Design {
	_ = tc
	d := layout.NewDesign("single")
	top := d.MustSymbol("top")
	top.AddBox(layer, r, "")
	d.Top = top
	return d
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// interactionStage returns the wall time of the "check interactions"
// pipeline stage from a report.
func interactionStage(rep *core.Report) time.Duration {
	for _, s := range rep.Stats.Stages {
		if s.Name == "check interactions" {
			return s.Duration
		}
	}
	return 0
}

// E18 measures the parallel sharded interaction engine: interaction-stage
// wall time with the serial reference sweep (Workers:1) versus the
// x-strip-sharded worker pool (Workers:0 = all cores) on shift-register
// chips of growing size, verifying along the way that both runs report
// identically. On a single-core host the two columns coincide; the
// speedup column is the point of the experiment on real hardware.
func E18(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "parallel sharded interaction engine (serial vs all-cores)",
		Figure:  "the ROADMAP 'as fast as the hardware allows' axis",
		Columns: []string{"cells", "candidates", "serial stage", "parallel stage", "speedup", "errors"},
	}
	sizes := []struct{ rows, cols int }{{8, 8}, {8, 16}, {16, 16}, {16, 32}}
	if quick {
		sizes = sizes[:2]
	}
	for _, size := range sizes {
		tc := tech.NMOS()
		chip := workload.NewChip(tc, "e18", size.rows, size.cols)
		serial, err := core.Check(chip.Design, tc, core.Options{Workers: 1})
		if err != nil {
			return nil, err
		}
		par, err := core.Check(chip.Design, tc, core.Options{Workers: 0})
		if err != nil {
			return nil, err
		}
		if len(serial.Violations) != len(par.Violations) ||
			serial.Stats.InteractionChecked != par.Stats.InteractionChecked {
			return nil, fmt.Errorf("E18: parallel run diverged from serial on %dx%d", size.rows, size.cols)
		}
		ss, ps := interactionStage(serial), interactionStage(par)
		speedup := 0.0
		if ps > 0 {
			speedup = float64(ss) / float64(ps)
		}
		t.AddRow(size.rows*size.cols, serial.Stats.InteractionCandidates,
			ss.Round(time.Microsecond).String(), ps.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", speedup), len(serial.Errors()))
	}
	t.Note("Workers:1 is the serial oracle; Workers:0 shards the sweep into x-strips over runtime.NumCPU() goroutines and merges in strip order — reports are byte-identical")
	return t, nil
}

// E19 measures the incremental engine: cold Check versus warm Recheck
// after a single-symbol edit, per pipeline stage, on the unique-rows
// inverter-array workload ("rules are checked in the symbol definition,
// not in each instance" — so an edit should only cost what it touched).
// The warm report is verified byte-identical (modulo durations) to a cold
// check of the edited design before timings are reported.
func E19(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E19",
		Title:   "incremental recheck: cold vs warm after a one-symbol edit",
		Figure:  "the paper's edit-loop claim + the ROADMAP service axis",
		Columns: []string{"rows x cols", "stage", "cold", "warm", "speedup"},
	}
	sizes := []struct{ rows, cols int }{{16, 16}, {32, 32}}
	if quick {
		sizes = sizes[:1]
	}
	for _, size := range sizes {
		tc := tech.NMOS()
		chip := workload.NewChipUnique(tc, "e19", size.rows, size.cols)
		metalL, _ := tc.LayerByName(tech.NMOSMetal)

		eng := core.NewEngine(tc, core.Options{})
		if _, err := eng.Check(chip.Design); err != nil {
			return nil, err
		}
		// The single-symbol edit: a floating GND-declared probe box in one
		// row definition (keeps the chip error-free and the size stable).
		row, ok := chip.Design.Symbol(fmt.Sprintf("row%d", size.rows/2))
		if !ok {
			return nil, fmt.Errorf("E19: row symbol missing")
		}
		row.AddBox(metalL, geom.R(-15000, 0, -14250, 1000), "GND")

		warm, err := eng.Recheck(chip.Design)
		if err != nil {
			return nil, err
		}
		cold, err := core.NewEngine(tc, core.Options{}).Check(chip.Design)
		if err != nil {
			return nil, err
		}
		if core.Fingerprint(warm) != core.Fingerprint(cold) {
			return nil, fmt.Errorf("E19: warm recheck diverged from cold check on %dx%d", size.rows, size.cols)
		}
		var coldTotal, warmTotal time.Duration
		for si := range cold.Stats.Stages {
			cs, ws := cold.Stats.Stages[si], warm.Stats.Stages[si]
			coldTotal += cs.Duration
			warmTotal += ws.Duration
			t.AddRow(fmt.Sprintf("%dx%d", size.rows, size.cols), cs.Name,
				cs.Duration.Round(time.Microsecond).String(),
				ws.Duration.Round(time.Microsecond).String(),
				speedupString(cs.Duration, ws.Duration))
		}
		t.AddRow(fmt.Sprintf("%dx%d", size.rows, size.cols), "TOTAL",
			coldTotal.Round(time.Microsecond).String(),
			warmTotal.Round(time.Microsecond).String(),
			speedupString(coldTotal, warmTotal))
	}
	t.Note("cold = fresh engine (every definition artifact rebuilt); warm = same engine after editing ONE row definition")
	t.Note("warm and cold reports are byte-identical modulo stage durations (core.Fingerprint enforced above)")
	return t, nil
}

func speedupString(cold, warm time.Duration) string {
	if warm <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(cold)/float64(warm))
}
