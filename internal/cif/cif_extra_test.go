package cif

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func TestLowercaseCommands(t *testing.T) {
	src := `ds 1; 9 s; l ND; b 100 100 0 0; w 100 0 0 500 0; df; e`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Symbol("s")
	if len(s.Elements) != 2 {
		t.Fatalf("elements = %d", len(s.Elements))
	}
}

func TestNestedComments(t *testing.T) {
	src := `(outer (inner) still comment); DS 1; 9 s; L ND; B 10 10 0 0; DF; E`
	if _, err := Parse(src, tech.NMOS(), "x"); err != nil {
		t.Fatal(err)
	}
}

func TestEWithoutSemicolon(t *testing.T) {
	src := "DS 1; 9 s; L ND; B 10 10 0 0; DF; E"
	if _, err := Parse(src, tech.NMOS(), "x"); err != nil {
		t.Fatal(err)
	}
}

func TestCommandsAfterEIgnored(t *testing.T) {
	src := `DS 1; 9 s; L ND; B 10 10 0 0; DF; E; THIS IS GARBAGE;`
	if _, err := Parse(src, tech.NMOS(), "x"); err != nil {
		t.Fatalf("content after E must be ignored: %v", err)
	}
}

func TestBoxWithDirectionVector(t *testing.T) {
	// Direction (0,1) rotates the box 90°: extents swap.
	src := `DS 1; 9 s; L ND; B 400 100 0 0 0 1; DF; E`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Symbol("s")
	if got := s.Elements[0].Box; got != geom.R(-50, -200, 50, 200) {
		t.Fatalf("rotated box = %v", got)
	}
	// Diagonal direction is rejected.
	if _, err := Parse(`DS 1; L ND; B 400 100 0 0 1 1; DF; E`, tech.NMOS(), "x"); err == nil {
		t.Fatal("diagonal box direction must be rejected")
	}
}

func TestNetAppliesToNextElementOnly(t *testing.T) {
	src := `DS 1; 9 s; L ND;
9N sig;
B 100 100 0 0;
B 100 100 500 0;
DF; E`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Symbol("s")
	if s.Elements[0].Net != "sig" || s.Elements[1].Net != "" {
		t.Fatalf("net stickiness wrong: %q %q", s.Elements[0].Net, s.Elements[1].Net)
	}
}

func TestInstanceNameAppliesToNextCallOnly(t *testing.T) {
	src := `
DS 1; 9 leaf; L ND; B 10 10 0 0; DF;
DS 2; 9 top;
9I named;
C 1;
C 1 T 100 0;
DF; E`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	top, _ := d.Symbol("top")
	if top.Calls[0].Name != "named" {
		t.Fatalf("first call name = %q", top.Calls[0].Name)
	}
	if top.Calls[1].Name == "named" {
		t.Fatalf("instance name leaked to second call: %q", top.Calls[1].Name)
	}
}

func TestUnknownUserExtensionsIgnored(t *testing.T) {
	src := `DS 1; 9 s; 4X whatever; L ND; B 10 10 0 0; 7 123; DF; E`
	if _, err := Parse(src, tech.NMOS(), "x"); err != nil {
		t.Fatalf("other user extensions must be ignored: %v", err)
	}
}

func TestSyntaxErrorContext(t *testing.T) {
	src := `DS 1; 9 s; L ND; B 10; DF; E`
	_, err := Parse(src, tech.NMOS(), "x")
	if err == nil {
		t.Fatal("bad box accepted")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Command == 0 || !strings.Contains(se.Text, "B 10") {
		t.Fatalf("no context: %+v", se)
	}
}

func TestDuplicateSymbolName(t *testing.T) {
	src := `DS 1; 9 same; DF; DS 2; 9 same; DF; E`
	if _, err := Parse(src, tech.NMOS(), "x"); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name not rejected: %v", err)
	}
}

func TestWriteBipolarDesign(t *testing.T) {
	// The writer must handle non-nMOS layer sets.
	tc := tech.Bipolar()
	src := `DS 1; 9 q; 9D npn; L BB; B 800 800 400 400; L BE; B 300 300 400 400; DF; E`
	d, err := Parse(src, tc, "x")
	if err != nil {
		t.Fatal(err)
	}
	text, err := Write(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text, tc, "y")
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	q, ok := back.Symbol("q")
	if !ok || q.DeviceType != "npn" {
		t.Fatalf("bipolar round trip lost device: %+v", q)
	}
}
