package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: the rows/series a paper figure or
// claim is reproduced as.
type Table struct {
	ID      string // experiment id, e.g. "E01"
	Title   string
	Figure  string // the paper artifact reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends an annotation line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces an aligned ASCII table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Figure != "" {
		fmt.Fprintf(&sb, "reproduces: %s\n", t.Figure)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
