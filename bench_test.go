package dic

// One benchmark per experiment of DESIGN.md's index (E01..E16), plus
// micro-benchmarks of the computational kernels. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks measure the cost of regenerating each paper
// figure/claim; the kernel benchmarks track the geometry engine, the
// extractor, and both checkers in isolation.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cif"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flat"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/tech"
	"repro/internal/workload"
)

// ---- Experiment benchmarks -------------------------------------------

func BenchmarkE01FalseErrorEconomics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunE1(tech.NMOS(), 8, 12, 24, 1980)
		if err != nil {
			b.Fatal(err)
		}
		if res.DIC.Missed != 0 || res.DIC.False != 0 {
			b.Fatalf("DIC outcome degraded: %+v", res.DIC)
		}
	}
}

func BenchmarkE02FigurePathologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.E02(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE03ExpandShrink(b *testing.B) {
	reg := geom.FromRectR(geom.R(0, 0, 5000, 5000))
	for i := 0; i < b.N; i++ {
		for _, d := range []int64{250, 500, 1000, 2000} {
			_ = geom.OrthogonalExpandArea(reg, d)
			_ = geom.EuclideanExpandArea(reg, d)
		}
	}
}

func BenchmarkE04WidthSpacingPathologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.E04(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPathology(b *testing.B, p workload.Pathology) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunPathology(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE05ElectricalEquivalence(b *testing.B) {
	benchPathology(b, workload.Figure5ElectricalEquivalence())
}

func BenchmarkE06DeviceDependentRules(b *testing.B) {
	errCase, _ := workload.Figure6DeviceDependentRules()
	benchPathology(b, errCase)
}

func BenchmarkE07ContactOverGate(b *testing.B) {
	benchPathology(b, workload.Figure7ContactVsButting())
}

func BenchmarkE08AccidentalTransistor(b *testing.B) {
	benchPathology(b, workload.Figure8AccidentalTransistor())
}

func BenchmarkE09HierarchicalPipeline(b *testing.B) {
	for _, size := range []struct{ rows, cols int }{{4, 5}, {8, 12}, {16, 25}} {
		b.Run(fmt.Sprintf("cells=%d", size.rows*size.cols), func(b *testing.B) {
			tc := tech.NMOS()
			chip := workload.NewChip(tc, "bench", size.rows, size.cols)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := core.Check(chip.Design, tc, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Clean() {
					b.Fatal("chip not clean")
				}
			}
		})
	}
}

func BenchmarkE09FlatBaseline(b *testing.B) {
	for _, size := range []struct{ rows, cols int }{{4, 5}, {8, 12}, {16, 25}} {
		b.Run(fmt.Sprintf("cells=%d", size.rows*size.cols), func(b *testing.B) {
			tc := tech.NMOS()
			chip := workload.NewChip(tc, "bench", size.rows, size.cols)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := flat.Check(chip.Design, tc, flat.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE10SkeletalConnectivity(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	type pair struct{ a, b geom.Region }
	pairs := make([]pair, 64)
	for i := range pairs {
		x := int64(rng.Intn(2000))
		pairs[i] = pair{
			a: geom.FromRectR(geom.R(0, 0, 4000, 500)),
			b: geom.FromRectR(geom.R(x, 0, x+4000, 500)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		geom.SkeletalConnected(p.a, p.b, 500)
	}
}

func BenchmarkE11InteractionMatrix(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "bench", 8, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.Check(chip.Design, tc, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Stats.InteractionCandidates == 0 {
			b.Fatal("no interaction candidates")
		}
	}
}

func BenchmarkE12ProximityExpand(b *testing.B) {
	m := process.Model{Sigma: 100, Threshold: 0.4}
	a := geom.FromRectR(geom.R(-2000, -1000, 0, 1000))
	for i := 0; i < b.N; i++ {
		for _, gap := range []int64{1000, 500, 250, 200} {
			bb := geom.FromRectR(geom.R(gap, -1000, gap+2000, 1000))
			_ = m.PrintedGap(a, bb)
		}
	}
}

func BenchmarkE13RelationalRetreat(b *testing.B) {
	m := process.Model{Sigma: 250, Threshold: 0.5}
	for i := 0; i < b.N; i++ {
		for _, w := range []int64{500, 750, 1000, 1500, 2000} {
			_ = m.EndRetreat(w)
		}
	}
}

func BenchmarkE14SelfSufficiency(b *testing.B) {
	benchPathology(b, workload.Figure15SelfSufficiency())
}

func BenchmarkE15ConstructionRules(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "bench", 8, 12)
	nl, _, err := netlist.Extract(chip.Design, tc)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if issues := netlist.ConstructionRules(nl, tc); len(issues) != 0 {
			b.Fatalf("clean chip flagged: %v", issues[0])
		}
	}
}

func BenchmarkE16ResidualVisualWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.E16(true); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Kernel benchmarks ------------------------------------------------

func BenchmarkRegionUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	rects := make([]geom.Rect, 1000)
	for i := range rects {
		x, y := int64(rng.Intn(50000)), int64(rng.Intn(50000))
		rects[i] = geom.R(x, y, x+int64(100+rng.Intn(2000)), y+int64(100+rng.Intn(2000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = geom.FromRects(rects)
	}
}

// BenchmarkRegionBulkUnion tracks the k-way single-sweep combiner against
// the workload BenchmarkRegionUnion covers rect-by-rect: 16 overlapping
// 100-rect regions folded in one pass, into a recycled destination.
func BenchmarkRegionBulkUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	regs := make([]geom.Region, 16)
	for k := range regs {
		rects := make([]geom.Rect, 100)
		for i := range rects {
			x, y := int64(rng.Intn(20000)), int64(rng.Intn(20000))
			rects[i] = geom.R(x, y, x+int64(100+rng.Intn(1500)), y+int64(100+rng.Intn(1500)))
		}
		regs[k] = geom.FromRects(rects).Translate(geom.Point{X: int64(k) * 977, Y: int64(k) * 1493})
	}
	var dst geom.Region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.BulkUnionInto(&dst, regs)
	}
}

func BenchmarkRegionErodeDilate(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	rects := make([]geom.Rect, 200)
	for i := range rects {
		x, y := int64(rng.Intn(20000)), int64(rng.Intn(20000))
		rects[i] = geom.R(x, y, x+int64(500+rng.Intn(2000)), y+int64(500+rng.Intn(2000)))
	}
	reg := geom.FromRects(rects)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Erode(250).Dilate(250)
	}
}

func BenchmarkNetlistExtraction(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "bench", 8, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := netlist.Extract(chip.Design, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCIFRoundTrip(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "bench", 4, 5)
	text, err := cif.Write(chip.Design, tc)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cif.Parse(text, tc, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairFinder(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var pf geom.PairFinder
	for i := 0; i < 5000; i++ {
		x, y := int64(rng.Intn(200000)), int64(rng.Intn(200000))
		pf.AddRect(i, geom.R(x, y, x+1000, y+1000), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		pf.Pairs(750, nil, func(geom.Pair) { n++ })
	}
}

func BenchmarkFlattenDesign(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "bench", 16, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chip.Design.Flatten(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExposureClosedForm(b *testing.B) {
	m := process.DefaultModel()
	mask := geom.FromRects([]geom.Rect{
		geom.R(0, 0, 400, 200), geom.R(300, 100, 600, 500), geom.R(700, 0, 900, 400),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ExposureAt(mask, geom.FPoint{X: 350, Y: 150})
	}
}

// ---- Parallel interaction engine benchmarks ---------------------------

// benchShiftRegCheck runs the full DIC pipeline on a shift-register chip
// with the given interaction-stage worker count, reporting the interaction
// stage's own wall time as interact-ns/op alongside the whole-pipeline
// ns/op. Comparing workers=1 against workers=all at the same cell count
// gives the serial-vs-parallel speedup of the sharded sweep engine.
func benchShiftRegCheck(b *testing.B, rows, cols, workers int) {
	b.Helper()
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "shiftreg", rows, cols)
	b.ResetTimer()
	var stageNS int64
	for i := 0; i < b.N; i++ {
		rep, err := core.Check(chip.Design, tc, core.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
		for _, s := range rep.Stats.Stages {
			if s.Name == "check interactions" {
				stageNS += s.Duration.Nanoseconds()
			}
		}
	}
	b.ReportMetric(float64(stageNS)/float64(b.N), "interact-ns/op")
}

func BenchmarkInteractionSerialVsParallel(b *testing.B) {
	for _, size := range []struct{ rows, cols int }{{8, 8}, {16, 16}, {16, 32}} {
		cells := size.rows * size.cols
		b.Run(fmt.Sprintf("cells=%d/workers=1", cells), func(b *testing.B) {
			benchShiftRegCheck(b, size.rows, size.cols, 1)
		})
		b.Run(fmt.Sprintf("cells=%d/workers=all", cells), func(b *testing.B) {
			benchShiftRegCheck(b, size.rows, size.cols, 0)
		})
	}
}

// ---- Incremental engine benchmarks ------------------------------------

// recheckWorkload builds the unique-rows inverter-array chip used by the
// cold-vs-warm experiments, with one out-of-the-way metal probe box per
// row definition that the edit loop nudges (a single-symbol edit that
// keeps the chip clean and the design size constant).
func recheckWorkload(rows, cols int) (*tech.Technology, *workload.Chip, []*layout.Symbol) {
	tc := tech.NMOS()
	chip := workload.NewChipUnique(tc, "incr", rows, cols)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	var rowSyms []*layout.Symbol
	for r := 0; ; r++ {
		s, ok := chip.Design.Symbol(fmt.Sprintf("row%d", r))
		if !ok {
			break
		}
		// Declared GND so the floating probe trips neither NET.FANOUT
		// (rails are exempt) nor any spacing cell; the resulting NET.OPEN
		// warning does not affect Clean().
		s.AddBox(metalL, geom.R(-15000, 0, -14250, 1000), "GND")
		rowSyms = append(rowSyms, s)
	}
	return tc, chip, rowSyms
}

// nudgeRow is the single-symbol edit: shift the row's probe box.
func nudgeRow(s *layout.Symbol, step int64) {
	e := s.Elements[len(s.Elements)-1]
	e.Box.Y1 += step
	e.Box.Y2 += step
	s.Touch()
}

// BenchmarkCheckCold measures a from-scratch engine run on the 32×32
// unique-rows chip: every definition artifact and interaction cache is
// rebuilt. Compare with BenchmarkRecheckOneSymbol.
func BenchmarkCheckCold(b *testing.B) {
	tc, chip, _ := recheckWorkload(32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.NewEngine(tc, core.Options{}).Check(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
	}
}

// BenchmarkCheckColdLarge is BenchmarkCheckCold at 64×64 (4096 cells,
// 64 unique row definitions) — the scaling point of the cold-check curve.
func BenchmarkCheckColdLarge(b *testing.B) {
	tc, chip, _ := recheckWorkload(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.NewEngine(tc, core.Options{}).Check(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
	}
}

// BenchmarkRecheckOneSymbol measures the warm edit loop on the same chip:
// one row definition is edited per iteration, then rechecked. Only the
// dirty row and the chip root re-derive; every other definition replays
// from the content-addressed caches. The report is byte-identical to the
// cold run's (enforced by TestEngineRecheckByteIdentical).
func BenchmarkRecheckOneSymbol(b *testing.B) {
	tc, chip, rows := recheckWorkload(32, 32)
	eng := core.NewEngine(tc, core.Options{})
	if _, err := eng.Check(chip.Design); err != nil {
		b.Fatal(err)
	}
	step := int64(250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 1 {
			step = -step
		}
		nudgeRow(rows[i%len(rows)], step)
		rep, err := eng.Recheck(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
	}
}

// BenchmarkRecheckNoEdit measures the pure replay floor: rechecking an
// unchanged design (hashing + cache lookups + report assembly).
func BenchmarkRecheckNoEdit(b *testing.B) {
	tc, chip, _ := recheckWorkload(32, 32)
	eng := core.NewEngine(tc, core.Options{})
	if _, err := eng.Check(chip.Design); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Recheck(chip.Design); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckColdArray measures a from-scratch engine run on the
// uniform 64×64 array chip: one shared row definition instanced 64 times
// (4096 cells total). The instance-context dedup makes this far cheaper
// per instance than the unique-rows BenchmarkCheckColdLarge — all 64 row
// placements share one translation class, so the row's span embedding is
// built once and derived 63 times by pure coordinate translation.
func BenchmarkCheckColdArray(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "arr", 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.NewEngine(tc, core.Options{}).Check(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
	}
}

// BenchmarkRecheckOneBox measures the windowed recheck: the uniform 64×64
// array plus one isolated anonymous probe box at top level, moved via
// layout.ApplyEdit each iteration. The move is window-scoped (TouchElement)
// and electrically inert, so extraction patches the previous root in place
// and the interaction stage replays its recorded result — recheck cost is
// bounded by the edit, not the chip. The anonymous probe floats, so the
// expected report is exactly its one NET.FANOUT error (asserted; parity
// with the cold oracle is enforced by TestEngineWindowRecheckParity).
func BenchmarkRecheckOneBox(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "arr", 64, 64)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	top := chip.Design.Top
	top.AddBox(metalL, geom.R(-15000, 0, -14250, 1000), "")
	eng := core.NewEngine(tc, core.Options{})
	rep, err := eng.Check(chip.Design)
	if err != nil {
		b.Fatal(err)
	}
	if n := len(rep.Violations); n != 1 {
		b.Fatalf("expected exactly the probe's fanout error, got %d violations", n)
	}
	dy := int64(250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layout.ApplyEdit(chip.Design, tc, layout.Edit{
			Op: layout.OpMoveElement, Symbol: top.Name, Index: -1, DY: dy,
		}); err != nil {
			b.Fatal(err)
		}
		dy = -dy
		rep, err := eng.Recheck(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if n := len(rep.Violations); n != 1 {
			b.Fatalf("expected exactly the probe's fanout error, got %d violations", n)
		}
	}
	b.StopTimer()
	if !eng.Stats().WindowPatched {
		b.Fatal("window patch path did not engage")
	}
}

// BenchmarkPairFinderParallel tracks the sharded sweep kernel in isolation
// (no per-pair checker work), serial versus all cores.
func BenchmarkPairFinderParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var pf geom.PairFinder
	for i := 0; i < 20000; i++ {
		x, y := int64(rng.Intn(800000)), int64(rng.Intn(800000))
		pf.AddRect(i, geom.R(x, y, x+1000, y+1000), 0)
	}
	for _, workers := range []int{1, 0} {
		name := "workers=all"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				pf.PairsParallel(750, workers, nil, func(geom.Pair) { n++ })
			}
		})
	}
}
