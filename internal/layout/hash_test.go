package layout

import (
	"testing"

	"repro/internal/geom"
)

// buildHashFixture returns a three-level design: top -> mid -> leaf.
func buildHashFixture(t *testing.T) (*Design, *Symbol, *Symbol, *Symbol) {
	t.Helper()
	d := NewDesign("hashfix")
	leaf := d.MustSymbol("leaf")
	leaf.AddBox(0, geom.R(0, 0, 500, 500), "a")
	mid := d.MustSymbol("mid")
	mid.AddCall(leaf, geom.Translate(geom.Pt(1000, 0)), "l0")
	mid.AddWire(1, 250, "", geom.Pt(0, 0), geom.Pt(2000, 0))
	top := d.MustSymbol("top")
	top.AddCall(mid, geom.Identity, "m0")
	top.AddCall(mid, geom.NewTransform(geom.R90, geom.Pt(0, 5000)), "m1")
	d.Top = top
	return d, top, mid, leaf
}

func TestContentHashesStable(t *testing.T) {
	d, top, mid, leaf := buildHashFixture(t)
	h1 := d.ContentHashes()
	h2 := d.ContentHashes()
	for _, s := range []*Symbol{top, mid, leaf} {
		if h1[s] != h2[s] {
			t.Fatalf("hash of %q not stable across calls", s.Name)
		}
	}
	// An identically-built design hashes identically.
	d2, top2, _, _ := buildHashFixture(t)
	if d.ContentHashes()[top].Subtree != d2.ContentHashes()[top2].Subtree {
		t.Fatal("identical designs hash differently")
	}
}

func TestContentHashesPropagateUp(t *testing.T) {
	d, top, mid, leaf := buildHashFixture(t)
	before := d.ContentHashes()
	// Edit the leaf: every ancestor's subtree hash must change; own hashes
	// of the ancestors must not.
	leaf.AddBox(0, geom.R(600, 600, 900, 900), "")
	after := d.ContentHashes()
	if before[leaf].Own == after[leaf].Own {
		t.Fatal("leaf own hash unchanged after edit")
	}
	for _, s := range []*Symbol{mid, top} {
		if before[s].Subtree == after[s].Subtree {
			t.Fatalf("%q subtree hash unchanged after leaf edit", s.Name)
		}
		if before[s].Own != after[s].Own {
			t.Fatalf("%q own hash changed by a leaf edit", s.Name)
		}
	}
}

func TestContentHashSensitivity(t *testing.T) {
	base := func() (*Design, *Symbol) {
		d := NewDesign("s")
		s := d.MustSymbol("sym")
		s.AddBox(2, geom.R(0, 0, 100, 100), "n")
		d.Top = s
		return d, s
	}
	d0, s0 := base()
	h0 := d0.ContentHashes()[s0].Own

	edits := []func(s *Symbol){
		func(s *Symbol) { s.Elements[0].Box.X2 = 101 },          // geometry
		func(s *Symbol) { s.Elements[0].Layer = 3 },             // layer
		func(s *Symbol) { s.Elements[0].Net = "m" },             // declared net
		func(s *Symbol) { s.DeviceType = "NE" },                 // device decl
		func(s *Symbol) { s.Checked = true },                    // CHK flag
		func(s *Symbol) { s.AddBox(2, geom.R(0, 0, 1, 1), "") }, // new element
	}
	for i, edit := range edits {
		d, s := base()
		edit(s)
		if d.ContentHashes()[s].Own == h0 {
			t.Errorf("edit %d did not change the own hash", i)
		}
	}

	// Transform and call-name changes move only the subtree hash.
	d1, top1, mid1, _ := buildHashFixture(t)
	h1 := d1.ContentHashes()
	mid1.Calls[0].T = geom.Translate(geom.Pt(1001, 0))
	h2 := d1.ContentHashes()
	if h1[mid1].Subtree == h2[mid1].Subtree {
		t.Fatal("call transform edit did not change subtree hash")
	}
	if h1[mid1].Own != h2[mid1].Own {
		t.Fatal("call transform edit changed own hash")
	}
	if h1[top1].Subtree == h2[top1].Subtree {
		t.Fatal("call transform edit did not propagate to top")
	}
}

func TestCallersAndDirtyClosure(t *testing.T) {
	d, top, mid, leaf := buildHashFixture(t)
	callers := d.Callers()
	if got := callers[leaf]; len(got) != 1 || got[0] != mid {
		t.Fatalf("callers(leaf) = %v", got)
	}
	if got := callers[mid]; len(got) != 1 || got[0] != top {
		t.Fatalf("callers(mid) = %v", got)
	}
	dirty := d.DirtyClosure(leaf)
	for _, s := range []*Symbol{leaf, mid, top} {
		if !dirty[s] {
			t.Fatalf("%q missing from dirty closure", s.Name)
		}
	}
	if len(dirty) != 3 {
		t.Fatalf("dirty closure has %d symbols, want 3", len(dirty))
	}
	// A top-only edit dirties nothing below.
	dirty = d.DirtyClosure(top)
	if len(dirty) != 1 || !dirty[top] {
		t.Fatalf("dirty closure of top = %v", dirty)
	}
}

func TestDirtySymbols(t *testing.T) {
	d, top, mid, leaf := buildHashFixture(t)
	_, cur := d.DirtySymbols(nil)
	prev := make(map[string]Hash)
	for s, h := range cur {
		prev[s.Name] = h.Subtree
	}
	if dirty, _ := d.DirtySymbols(prev); len(dirty) != 0 {
		t.Fatalf("unedited design reports dirty symbols: %v", dirty)
	}
	leaf.AddBox(0, geom.R(1, 1, 2, 2), "")
	dirty, _ := d.DirtySymbols(prev)
	want := map[string]bool{leaf.Name: true, mid.Name: true, top.Name: true}
	if len(dirty) != len(want) {
		t.Fatalf("dirty = %v, want leaf+mid+top", dirty)
	}
	for _, s := range dirty {
		if !want[s.Name] {
			t.Fatalf("unexpected dirty symbol %q", s.Name)
		}
	}
	_ = top
}
