// Command drcload is the fault-injecting load harness for dicheckd. It
// drives N concurrent sessions through edit/report loops against a live
// daemon, records per-operation latency distributions and an error-class
// histogram, optionally injects chaos (random session kills, slow checks
// via the daemon's test hook, malformed edits), asserts hard SLOs, and
// writes the run as a BENCH_LOAD_<date>.json artifact.
//
// It scales from smoke runs (4 sessions) to thousands: driver starts are
// staggered across a ramp window so the daemon sees a realistic arrival
// curve instead of a thundering herd of cold checks, and -churn-every
// adds steady-state session turnover on top of the edit/report loop.
//
// Usage:
//
//	drcload -addr HOST:PORT [flags]
//
//	-addr            daemon address (required; scheme optional)
//	-sessions N      concurrent sessions, one driver goroutine each (default 4)
//	-duration D      how long to drive load (default 10s)
//	-rows/-cols      per-session CMOS chip size (default 4×4; use 1×2 for
//	                 thousand-session runs)
//	-violations N    seed each session with N deliberate width violations so
//	                 full reports have realistic weight (default 0)
//	-delta           report via the ?since= delta path (SessionReportApply),
//	                 recording full-vs-delta payload-bytes histograms
//	-churn-every D   mean interval between voluntary delete/recreate cycles
//	                 per driver (0 = no churn)
//	-ramp D          window over which driver starts are staggered
//	                 (default: 5ms per session, capped at duration/4)
//	-chaos           enable fault injection: random session kills, injected
//	                 slow checks (needs dicheckd -test-hooks), malformed edits
//	-chaos-every D   mean interval between chaos events (default 300ms)
//	-slow-ms N       injected slow-check duration for chaos (default 150)
//	-seed N          RNG seed (default 1; runs are reproducible per seed)
//	-o DIR           BENCH_LOAD_<date>.json output directory ("" = skip, default ".")
//	-slo-p99 D       fail if report p99 exceeds D (0 = skip)
//	-slo-goroutines N fail if the daemon ends with more goroutines (0 = skip)
//	-slo-delta-ratio F fail if p99 delta payload bytes exceed F × p99 full
//	                 payload bytes (0 = skip; delta mode only)
//
// Exit status is nonzero when any SLO is violated. Two SLOs are always
// on: no 5xx responses other than 503, and no panic/poisoned error
// classes — chaos included, the daemon must degrade with structured
// backpressure, never internal errors. Delta mode adds a third: every
// delta must apply cleanly to its base (a reconstruction failure counts
// like a transport error).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/cif"
	"repro/internal/layout"
	"repro/internal/perfbench"
	"repro/internal/server"
	"repro/internal/tech"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// driver owns one session slot: it creates (and, after a chaos kill or a
// churn cycle, recreates) its session and loops edit/report against it.
type driver struct {
	idx        int
	violations int
	delta      bool
	mu         sync.Mutex
	id         string // current session id ("" = needs create)
	base       *server.Report
	rng        *rand.Rand
	dy         int64
	edit       []time.Duration
	rep        []time.Duration
	crt        []time.Duration
	fullBytes  []int64
	deltaBytes []int64
}

// collector aggregates error classes and delta/churn counters across
// drivers and the chaos actor.
type collector struct {
	mu        sync.Mutex
	requests  uint64
	errClass  map[string]uint64
	transport uint64
	bad5xx    uint64 // 5xx other than 503
	resets    uint64 // deltas that degraded to the full list
	churns    uint64 // voluntary delete/recreate cycles
}

func (c *collector) note(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	if err == nil {
		return
	}
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		class := apiErr.Class
		if class == "" {
			class = fmt.Sprintf("http_%d", apiErr.Status)
		}
		c.errClass[class]++
		if apiErr.Status >= 500 && apiErr.Status != http.StatusServiceUnavailable {
			c.bad5xx++
		}
		return
	}
	c.transport++
}

func (c *collector) bump(field *uint64) {
	c.mu.Lock()
	*field++
	c.mu.Unlock()
}

func run() int {
	addr := flag.String("addr", "", "daemon address (required)")
	sessions := flag.Int("sessions", 4, "concurrent sessions")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	rows := flag.Int("rows", 4, "per-session chip rows")
	cols := flag.Int("cols", 4, "per-session chip columns")
	violations := flag.Int("violations", 0, "deliberate width violations seeded per session")
	delta := flag.Bool("delta", false, "report via the ?since= delta path")
	churnEvery := flag.Duration("churn-every", 0, "mean interval between voluntary session delete/recreate cycles (0 = off)")
	ramp := flag.Duration("ramp", 0, "driver start stagger window (0 = auto)")
	chaos := flag.Bool("chaos", false, "inject faults: session kills, slow checks, malformed edits")
	chaosEvery := flag.Duration("chaos-every", 300*time.Millisecond, "mean interval between chaos events")
	slowMS := flag.Int("slow-ms", 150, "injected slow-check duration (chaos)")
	seed := flag.Int64("seed", 1, "RNG seed")
	outDir := flag.String("o", ".", "BENCH_LOAD_<date>.json output directory (empty = skip)")
	sloP99 := flag.Duration("slo-p99", 0, "fail if report p99 exceeds this (0 = skip)")
	sloGoroutines := flag.Int("slo-goroutines", 0, "fail if daemon ends with more goroutines (0 = skip)")
	sloDeltaRatio := flag.Float64("slo-delta-ratio", 0, "fail if p99 delta bytes exceed this fraction of p99 full bytes (0 = skip)")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "drcload: -addr is required")
		return 2
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "chip", *rows, *cols)
	cifSrc, err := cif.Write(chip.Design, tc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drcload: cif: %v\n", err)
		return 2
	}

	ctx := context.Background()
	cl := server.NewClient(base)
	cl.AttemptTimeout = 2 * time.Minute
	if _, err := cl.ServerStats(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "drcload: daemon not reachable at %s: %v\n", base, err)
		return 2
	}

	col := &collector{errClass: make(map[string]uint64)}
	drivers := make([]*driver, *sessions)
	for i := range drivers {
		drivers[i] = &driver{
			idx: i, violations: *violations, delta: *delta,
			rng: rand.New(rand.NewSource(*seed + int64(i))), dy: 250,
		}
	}

	stagger := *ramp
	if stagger <= 0 {
		stagger = time.Duration(*sessions) * 5 * time.Millisecond
		if max := *duration / 4; stagger > max {
			stagger = max
		}
	}
	fmt.Printf("drcload: %d sessions for %v against %s (chaos=%v delta=%v ramp=%v)\n",
		*sessions, *duration, base, *chaos, *delta, stagger)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for i, d := range drivers {
		wg.Add(1)
		var delay time.Duration
		if *sessions > 1 {
			delay = stagger * time.Duration(i) / time.Duration(*sessions)
		}
		go func(d *driver, delay time.Duration) {
			defer wg.Done()
			time.Sleep(delay)
			d.loop(cl, cifSrc, col, *churnEvery, deadline)
		}(d, delay)
	}
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	if *chaos {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			chaosLoop(cl, drivers, col, rand.New(rand.NewSource(*seed+9001)),
				*chaosEvery, *slowMS, stopChaos)
		}()
	}
	wg.Wait()
	close(stopChaos)
	chaosWG.Wait()

	// Let in-flight daemon work settle before reading the end-of-run
	// resource gauges: the bounded-goroutine claim is about steady state,
	// not the instant the load stops.
	time.Sleep(300 * time.Millisecond)
	st, err := cl.ServerStats(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drcload: final stats: %v\n", err)
		return 1
	}

	var edits, reps, crts []time.Duration
	var fullBytes, deltaBytes []int64
	for _, d := range drivers {
		d.mu.Lock()
		edits = append(edits, d.edit...)
		reps = append(reps, d.rep...)
		crts = append(crts, d.crt...)
		fullBytes = append(fullBytes, d.fullBytes...)
		deltaBytes = append(deltaBytes, d.deltaBytes...)
		d.mu.Unlock()
	}
	col.mu.Lock()
	snap := perfbench.LoadSnapshot{
		Date:             time.Now().Format("2006-01-02"),
		GoVersion:        runtime.Version(),
		NumCPU:           runtime.NumCPU(),
		Sessions:         *sessions,
		Chaos:            *chaos,
		Delta:            *delta,
		DurationNS:       duration.Nanoseconds(),
		Requests:         col.requests,
		Reports:          perfbench.SummarizeLatencies(reps),
		Edits:            perfbench.SummarizeLatencies(edits),
		Creates:          perfbench.SummarizeLatencies(crts),
		ErrClass:         col.errClass,
		Transport:        col.transport,
		FullBytes:        perfbench.SummarizeBytes(fullBytes),
		DeltaBytes:       perfbench.SummarizeBytes(deltaBytes),
		DeltaResets:      col.resets,
		Churns:           col.churns,
		ServerGoroutines: st.Goroutines,
		ServerHeapBytes:  st.HeapAllocByte,
	}
	bad5xx := col.bad5xx
	transport := col.transport
	col.mu.Unlock()

	if bad5xx > 0 {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("%d responses were 5xx other than 503", bad5xx))
	}
	for _, class := range []string{"panic", "poisoned"} {
		if n := snap.ErrClass[class]; n > 0 {
			snap.SLOViolations = append(snap.SLOViolations,
				fmt.Sprintf("%d responses with class %q", n, class))
		}
	}
	if transport > 0 {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("%d transport-level request failures", transport))
	}
	if *sloP99 > 0 && snap.Reports.P99NS > sloP99.Nanoseconds() {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("report p99 %v exceeds SLO %v", time.Duration(snap.Reports.P99NS), *sloP99))
	}
	if *sloGoroutines > 0 && st.Goroutines > *sloGoroutines {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("daemon has %d goroutines, SLO %d", st.Goroutines, *sloGoroutines))
	}
	if *sloDeltaRatio > 0 {
		switch {
		case snap.DeltaBytes.Count == 0 || snap.FullBytes.Count == 0:
			snap.SLOViolations = append(snap.SLOViolations,
				fmt.Sprintf("delta-ratio SLO set but no samples (full=%d delta=%d)",
					snap.FullBytes.Count, snap.DeltaBytes.Count))
		case float64(snap.DeltaBytes.P99) > *sloDeltaRatio*float64(snap.FullBytes.P99):
			snap.SLOViolations = append(snap.SLOViolations,
				fmt.Sprintf("delta p99 %d bytes exceeds %.2f × full p99 %d bytes",
					snap.DeltaBytes.P99, *sloDeltaRatio, snap.FullBytes.P99))
		}
	}

	fmt.Printf("drcload: %d requests; report p50=%v p95=%v p99=%v; edit p99=%v\n",
		snap.Requests,
		time.Duration(snap.Reports.P50NS), time.Duration(snap.Reports.P95NS),
		time.Duration(snap.Reports.P99NS), time.Duration(snap.Edits.P99NS))
	if *delta {
		fmt.Printf("drcload: payload bytes: full p50=%d p99=%d, delta p50=%d p99=%d (%d resets, %d churns)\n",
			snap.FullBytes.P50, snap.FullBytes.P99,
			snap.DeltaBytes.P50, snap.DeltaBytes.P99, snap.DeltaResets, snap.Churns)
	}
	if len(snap.ErrClass) > 0 {
		fmt.Printf("drcload: errors by class: %v\n", snap.ErrClass)
	}
	fmt.Printf("drcload: daemon ends with %d goroutines, %.1f MiB heap\n",
		st.Goroutines, float64(st.HeapAllocByte)/(1<<20))

	if *outDir != "" {
		out, err := snap.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drcload: marshal: %v\n", err)
			return 1
		}
		path := filepath.Join(*outDir, snap.Filename())
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "drcload: write: %v\n", err)
			return 1
		}
		fmt.Printf("drcload: wrote %s\n", path)
	}

	if len(snap.SLOViolations) > 0 {
		for _, v := range snap.SLOViolations {
			fmt.Fprintf(os.Stderr, "drcload: SLO VIOLATION: %s\n", v)
		}
		return 1
	}
	fmt.Println("drcload: all SLOs met")
	return 0
}

// loop drives one session until the deadline: create it (with a floating
// probe box to move and the configured violation seed), then a steady
// mix of move edits and reports, with optional voluntary churn. A
// session killed by chaos surfaces as not_found/gone; the driver simply
// recreates and keeps going — exactly what a resilient client does.
func (d *driver) loop(cl *server.Client, cifSrc string, col *collector, churnEvery time.Duration, deadline time.Time) {
	ctx := context.Background()
	nextChurn := time.Time{}
	if churnEvery > 0 {
		nextChurn = time.Now().Add(jitter(d.rng, churnEvery))
	}
	for time.Now().Before(deadline) {
		if d.currentID() == "" {
			if !d.create(ctx, cl, cifSrc, col) {
				time.Sleep(100 * time.Millisecond)
				continue
			}
		}
		id := d.currentID()
		if churnEvery > 0 && time.Now().After(nextChurn) {
			// Voluntary turnover: the steady state at thousands of sessions
			// includes sessions dying and being replaced, not just editing.
			err := cl.SessionDelete(ctx, id)
			col.note(ignoreSessionLost(err))
			col.bump(&col.churns)
			d.setID("")
			nextChurn = time.Now().Add(jitter(d.rng, churnEvery))
			continue
		}
		start := time.Now()
		var err error
		if d.rng.Intn(4) == 0 {
			err = d.report(ctx, cl, id, col)
			d.record(&d.rep, time.Since(start))
		} else {
			_, err = cl.SessionEdit(ctx, id, []layout.Edit{{
				Op: layout.OpMoveElement, Symbol: "chip", Index: -1, DY: d.dy,
			}})
			d.dy = -d.dy
			d.record(&d.edit, time.Since(start))
		}
		col.note(err)
		if isSessionLost(err) {
			d.setID("")
		}
	}
}

// report performs one report operation. In delta mode it polls through
// SessionReportApply — only the changes since the cached base cross the
// wire — with a 1-in-8 full fetch so the run always has a full-payload
// distribution to compare against; otherwise it fetches the full report.
func (d *driver) report(ctx context.Context, cl *server.Client, id string, col *collector) error {
	if !d.delta || d.rng.Intn(8) == 0 {
		rep, err := cl.SessionReport(ctx, id)
		if err != nil {
			return err
		}
		d.mu.Lock()
		d.base = rep
		d.fullBytes = append(d.fullBytes, rep.WireBytes)
		d.mu.Unlock()
		return nil
	}
	d.mu.Lock()
	base := d.base
	d.mu.Unlock()
	rep, dl, err := cl.SessionReportApply(ctx, id, base)
	if err != nil {
		return err
	}
	if dl.Reset {
		col.bump(&col.resets)
	}
	d.mu.Lock()
	d.base = rep
	d.deltaBytes = append(d.deltaBytes, dl.WireBytes)
	d.mu.Unlock()
	return nil
}

func (d *driver) create(ctx context.Context, cl *server.Client, cifSrc string, col *collector) bool {
	start := time.Now()
	resp, err := cl.SessionCreate(ctx, server.CreateRequest{
		Name: fmt.Sprintf("load%d", d.idx),
		CIF:  cifSrc,
		Tech: "cmos",
	})
	d.record(&d.crt, time.Since(start))
	col.note(err)
	if err != nil {
		return false
	}
	// Seed edits: optional deliberate width violations (sub-minimum metal
	// slivers, spaced far apart so they interact with nothing), then the
	// probe the move edits target — a floating metal box well away from
	// the chip; its fanout violation is expected and harmless. The probe
	// goes last so Index -1 keeps addressing it.
	x0 := -30000 - int64(d.idx)*4000
	edits := make([]layout.Edit, 0, d.violations+1)
	for j := 0; j < d.violations; j++ {
		y := -20000 - int64(j)*5000
		edits = append(edits, layout.Edit{
			Op: layout.OpAddBox, Symbol: "chip", Layer: tech.CMOSMetal,
			Box: []int64{x0, y, x0 + 100, y + 1000},
		})
	}
	edits = append(edits, layout.Edit{
		Op: layout.OpAddBox, Symbol: "chip", Layer: tech.CMOSMetal,
		Box: []int64{x0, 0, x0 + 1000, 1000},
	})
	_, err = cl.SessionEdit(ctx, resp.ID, edits)
	col.note(err)
	if err != nil && isSessionLost(err) {
		return false
	}
	d.mu.Lock()
	d.id = resp.ID
	d.base = resp.Report
	d.mu.Unlock()
	// Delta mode: sync one full report after the seed edits so polling
	// starts from the seeded state — the cold-sync-then-poll pattern a
	// real client uses. Without it the first delta of every (re)created
	// session re-ships all the seeded violations and the churn rate leaks
	// into the delta payload tail.
	if d.delta {
		rep, err := cl.SessionReport(ctx, resp.ID)
		col.note(err)
		if err != nil {
			if isSessionLost(err) {
				d.setID("")
				return false
			}
			return true // next poll resyncs (one oversized delta, then steady state)
		}
		d.mu.Lock()
		d.base = rep
		d.fullBytes = append(d.fullBytes, rep.WireBytes)
		d.mu.Unlock()
	}
	return true
}

func (d *driver) currentID() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.id
}

func (d *driver) setID(id string) {
	d.mu.Lock()
	d.id = id
	if id == "" {
		d.base = nil
	}
	d.mu.Unlock()
}

func (d *driver) record(dst *[]time.Duration, dur time.Duration) {
	d.mu.Lock()
	*dst = append(*dst, dur)
	d.mu.Unlock()
}

// jitter spreads an interval ±50% so per-driver cycles don't phase-lock.
func jitter(rng *rand.Rand, every time.Duration) time.Duration {
	return every/2 + time.Duration(rng.Int63n(int64(every)+1))
}

// isSessionLost reports whether err means the session no longer exists
// (chaos killed it, or an eviction raced us).
func isSessionLost(err error) bool {
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Status == http.StatusNotFound || apiErr.Status == http.StatusGone
}

// chaosLoop is the fault injector: at randomized intervals it kills a
// random live session, arms a slow check on one (when the daemon exposes
// the test hook), or fires a malformed edit batch. Every fault must come
// back as a structured 4xx/503 — anything else fails the run's SLOs.
func chaosLoop(cl *server.Client, drivers []*driver, col *collector,
	rng *rand.Rand, every time.Duration, slowMS int, stop <-chan struct{}) {
	ctx := context.Background()
	for {
		wait := jitter(rng, every)
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
		d := drivers[rng.Intn(len(drivers))]
		id := d.currentID()
		if id == "" {
			continue
		}
		switch rng.Intn(3) {
		case 0: // kill: the driver sees 404/410 and recreates
			err := cl.SessionDelete(ctx, id)
			col.note(ignoreSessionLost(err))
		case 1: // slow check: drives deadline expiries / queue pressure
			err := cl.SessionInject(ctx, id, server.InjectRequest{SlowMS: slowMS, SlowCount: 2})
			// 404 when the hook is off or the session just died — not a fault.
			col.note(ignoreSessionLost(err))
		case 2: // malformed edit: must be a clean 400, never a 500
			_, err := cl.SessionEdit(ctx, id, []layout.Edit{{Op: "warp_reality", Symbol: "chip"}})
			if err == nil {
				col.note(fmt.Errorf("malformed edit was accepted"))
			} else {
				var apiErr *server.APIError
				if errors.As(err, &apiErr) && apiErr.Status == http.StatusBadRequest {
					err = nil // expected
				}
				col.note(ignoreSessionLost(err))
			}
		}
	}
}

// ignoreSessionLost drops expected lost-session errors from chaos
// actions that raced a kill.
func ignoreSessionLost(err error) error {
	if isSessionLost(err) {
		return nil
	}
	return err
}
