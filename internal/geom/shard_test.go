package geom

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomFinder(rng *rand.Rand, n int, coordRange, maxSide int) *PairFinder {
	var pf PairFinder
	for i := 0; i < n; i++ {
		x := int64(rng.Intn(coordRange))
		y := int64(rng.Intn(coordRange))
		w := int64(1 + rng.Intn(maxSide))
		h := int64(1 + rng.Intn(maxSide))
		pf.AddRect(i, Rect{x, y, x + w, y + h}, rng.Intn(3))
	}
	return &pf
}

func serialPairs(pf *PairFinder, maxGap int64) []Pair {
	var out []Pair
	pf.Pairs(maxGap, nil, func(p Pair) { out = append(out, p) })
	return out
}

func samePairStream(t *testing.T, label string, want, got []Pair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// Property: concatenating every shard's Pairs output in shard order
// reproduces the serial sweep exactly — same pairs, same order — for any
// shard count, and the pair set matches the AllPairs oracle, across a
// range of maxGap values.
func TestShardedPairsMatchSerialAndOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pf := randomFinder(rng, 2+rng.Intn(60), 120, 18)
		for _, maxGap := range []int64{0, 1, 3, 7, 25, 120} {
			serial := serialPairs(pf, maxGap)

			var oracle []string
			pf.AllPairs(func(p Pair) {
				if p.A.Box.GapX(p.B.Box) <= maxGap && p.A.Box.GapY(p.B.Box) <= maxGap {
					oracle = append(oracle, pairKey(p))
				}
			})
			got := make([]string, 0, len(serial))
			for _, p := range serial {
				got = append(got, pairKey(p))
			}
			sort.Strings(oracle)
			sort.Strings(got)
			if fmt.Sprint(oracle) != fmt.Sprint(got) {
				t.Logf("gap %d: serial %v != oracle %v", maxGap, got, oracle)
				return false
			}

			for _, n := range []int{1, 2, 3, 7, 16} {
				var merged []Pair
				for _, sh := range pf.Shards(maxGap, n) {
					sh.Pairs(nil, func(p Pair) { merged = append(merged, p) })
				}
				if len(merged) != len(serial) {
					t.Logf("gap %d, %d shards: %d pairs, want %d", maxGap, n, len(merged), len(serial))
					return false
				}
				for i := range serial {
					if merged[i] != serial[i] {
						t.Logf("gap %d, %d shards: pair %d differs", maxGap, n, i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// PairsParallel must be a drop-in replacement for Pairs: identical pair
// stream for any worker count.
func TestPairsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pf := randomFinder(rng, 500, 5000, 60)
	for _, maxGap := range []int64{0, 10, 75, 400} {
		serial := serialPairs(pf, maxGap)
		for _, workers := range []int{2, 3, 8} {
			var got []Pair
			pf.PairsParallel(maxGap, workers, nil, func(p Pair) { got = append(got, p) })
			samePairStream(t, fmt.Sprintf("gap=%d workers=%d", maxGap, workers), serial, got)
		}
	}
}

// The filter must see the same pairs under sharding as under the serial
// sweep.
func TestShardedPairsFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pf := randomFinder(rng, 200, 1000, 40)
	filter := func(a, b Item) bool { return a.Tag != b.Tag }
	var serial []Pair
	pf.Pairs(30, filter, func(p Pair) { serial = append(serial, p) })
	var par []Pair
	pf.PairsParallel(30, 4, filter, func(p Pair) { par = append(par, p) })
	samePairStream(t, "filtered", serial, par)
}

// The cached sweep order must survive repeated Pairs calls and be rebuilt
// after the item set changes.
func TestPairsCacheInvalidation(t *testing.T) {
	var pf PairFinder
	pf.AddRect(1, R(0, 0, 10, 10), 0)
	pf.AddRect(2, R(12, 0, 20, 10), 0)
	count := func() int {
		n := 0
		pf.Pairs(3, nil, func(Pair) { n++ })
		return n
	}
	if got := count(); got != 1 {
		t.Fatalf("first call: %d pairs, want 1", got)
	}
	if got := count(); got != 1 {
		t.Fatalf("repeated call: %d pairs, want 1", got)
	}
	pf.AddRect(3, R(22, 0, 30, 10), 0) // within gap 3 of item 2 only
	if got := count(); got != 2 {
		t.Fatalf("after Add: %d pairs, want 2", got)
	}
	pf.Add(Item{ID: 4, Box: R(-4, 0, -2, 10)}) // within gap 3 of item 1 only
	if got := count(); got != 3 {
		t.Fatalf("after second Add: %d pairs, want 3", got)
	}
}

// Degenerate shapes: empty finder, single item, identical boxes, zero-area
// rects, one giant box spanning every strip.
func TestShardsEdgeCases(t *testing.T) {
	var empty PairFinder
	if sh := empty.Shards(10, 4); sh != nil {
		t.Fatalf("empty finder shards = %v, want nil", sh)
	}
	empty.Pairs(10, nil, func(Pair) { t.Fatal("pair from empty finder") })

	var one PairFinder
	one.AddRect(0, R(5, 5, 10, 10), 0)
	one.PairsParallel(10, 4, nil, func(Pair) { t.Fatal("pair from single item") })

	var pf PairFinder
	for i := 0; i < 8; i++ {
		pf.AddRect(i, R(100, 100, 200, 200), 0) // all identical
	}
	pf.AddRect(100, R(0, 150, 5000, 160), 0)   // spans everything
	pf.AddRect(101, R(1000, 0, 1001, 5000), 0) // degenerate-thin
	for _, n := range []int{1, 3, 9} {
		var merged []Pair
		for _, sh := range pf.Shards(0, n) {
			sh.Pairs(nil, func(p Pair) { merged = append(merged, p) })
		}
		samePairStream(t, fmt.Sprintf("identical boxes, %d shards", n), serialPairs(&pf, 0), merged)
	}
}
