// Package tech describes fabrication technologies for the design-integrity
// checker: mask layers with their width rules, the layer-interaction
// spacing matrix of the paper's Figure 12 (upper-triangular, with same-net
// and different-net subcases), and the device types that primitive symbols
// may declare, with the parameters their internal checks need.
//
// Two technologies are shipped: a λ-based silicon-gate nMOS process in the
// Mead–Conway style (the paper's running example, Figure 12 uses its D, P,
// M, C layers) and a simplified bipolar process for the device-dependent
// rules of Figure 6 (transistor base vs. resistor base against isolation).
package tech

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// LayerID identifies a mask layer within a technology.
type LayerID uint8

// NoLayer is the invalid layer id.
const NoLayer LayerID = 0xFF

// Layer describes one mask layer.
type Layer struct {
	ID       LayerID
	Name     string // human name, e.g. "diffusion"
	CIF      string // CIF layer name, e.g. "ND"
	Role     string // semantic role for device rules (see Roles; "" = none)
	MinWidth int64  // minimum feature width (centimicrons); 0 = unchecked
	MinSpace int64  // default same-layer different-net spacing
}

// Layer roles: the semantic hooks device-dependent rules attach to. A
// technology tags each layer with at most one role; the compiled form
// resolves them once so the checker never matches layer names in hot
// paths. Roles keep the device rules technology-parameterized: the
// accidental-transistor check, for example, fires for poly crossing any
// diffusion-role layer, whatever the process calls them.
const (
	RoleDiffusion = "diffusion" // transistor source/drain material
	RolePoly      = "poly"      // transistor gate material
	RoleMetal     = "metal"     // interconnect metal
	RoleContact   = "contact"   // contact cuts (gate-keepout probe layer)
	RoleImplant   = "implant"   // depletion implant
	RoleBuried    = "buried"    // buried-contact window
	RoleWell      = "well"      // CMOS well
	RoleIsolation = "isolation" // bipolar isolation (base-keepout probe layer)
	RoleBase      = "base"      // bipolar base diffusion
	RoleEmitter   = "emitter"   // bipolar emitter diffusion
)

// Roles returns every layer role the compiler and device rules understand.
func Roles() []string {
	return []string{
		RoleDiffusion, RolePoly, RoleMetal, RoleContact, RoleImplant,
		RoleBuried, RoleWell, RoleIsolation, RoleBase, RoleEmitter,
	}
}

// UseRoles returns the roles a device "use" binding may name: every layer
// role plus the device-local pseudo-roles — "lower" for a contact's lower
// conductor and "body" for a resistor body — which bind a layer for one
// device class without tagging the layer itself.
func UseRoles() []string {
	return append(Roles(), "lower", "body")
}

// SpacingRule is one cell of the Figure 12 interaction matrix: the spacing
// required between elements of a layer pair, split into the same-net and
// different-net subcases. A zero entry means "no check required" — the
// paper's point is that most cells are zero. TransistorRelated controls the
// device subcase: when true, elements related through the same transistor
// are exempt even on different nets (gate and implant cannot be assigned to
// a net).
type SpacingRule struct {
	DiffNet       int64  // required spacing when nets differ (0 = none)
	SameNet       int64  // required spacing when nets are equal (0 = none)
	ExemptRelated bool   // skip when both elements belong to the same device
	Note          string // why the cell is or is not checked (audit output)
}

// LayerRule is one single-layer geometric rule value: a minimum region
// width in centimicrons (width class) or a minimum island area in square
// centimicrons (area class), with its audit note. Unlike Layer.MinWidth —
// a per-element check in the flat baseline — these rules judge a
// definition's merged geometry.
type LayerRule struct {
	Min  int64
	Note string
}

// CrossKind enumerates the directed cross-layer rule classes.
type CrossKind uint8

// Cross-layer rule kinds, in deck statement order.
const (
	// CrossEnclose: A must enclose B by the margin on all sides.
	CrossEnclose CrossKind = iota
	// CrossOverlap: wherever A and B overlap, the overlap must be at
	// least the margin wide.
	CrossOverlap
	// CrossExtend: A must extend at least the margin past B around their
	// crossing (the Figure 8 gate-extension rule, generalized).
	CrossExtend

	numCrossKinds
)

func (k CrossKind) String() string {
	switch k {
	case CrossEnclose:
		return "enclose"
	case CrossOverlap:
		return "overlap"
	case CrossExtend:
		return "extend"
	}
	return fmt.Sprintf("cross(%d)", uint8(k))
}

// CrossRule is one directed cross-layer rule: the (kind, A, B) key lives
// beside it in the technology's rule table.
type CrossRule struct {
	Margin int64
	Note   string
}

// crossKey identifies a directed cross-layer rule; unlike LayerPair the
// (a, b) order is significant.
type crossKey struct {
	kind CrossKind
	a, b LayerID
}

// LayerPair is a normalized (A <= B) unordered pair of layers.
type LayerPair struct {
	A, B LayerID
}

// Pair normalizes a layer pair.
func Pair(a, b LayerID) LayerPair {
	if a > b {
		a, b = b, a
	}
	return LayerPair{a, b}
}

// DeviceSpec declares a device type that primitive symbols may carry.
type DeviceSpec struct {
	Class    string           // checker registry key, e.g. "mos-transistor"
	Params   map[string]int64 // rule margins used by the class checker
	Describe string           // one-line human description

	// Layers binds the class checker's semantic roles to concrete layers
	// for this device type (e.g. a p-channel transistor binding
	// "diffusion" to the p-diffusion layer). Unbound roles fall back to
	// the technology's role-tagged layer, then to the legacy layer names.
	Layers map[string]string

	// Depletion marks the device for the depletion-to-ground construction
	// rule (the paper's rule 4). It is deck data, not code, so any process
	// can opt its device types in.
	Depletion bool
}

// LayerFor resolves a device-rule role to a layer: the device's explicit
// binding first, then the technology's role-tagged layer, then the given
// fallback layer name.
func (t *Technology) LayerFor(spec DeviceSpec, role, fallback string) (LayerID, bool) {
	if name, ok := spec.Layers[role]; ok {
		if id, ok := t.byName[name]; ok {
			return id, true
		}
		return NoLayer, false
	}
	for i := range t.layers {
		if t.layers[i].Role == role {
			return t.layers[i].ID, true
		}
	}
	if fallback != "" {
		if id, ok := t.byName[fallback]; ok {
			return id, true
		}
	}
	return NoLayer, false
}

// Technology is a complete process description.
type Technology struct {
	Name    string
	Lambda  int64 // scale unit in centimicrons (0 if not λ-based)
	layers  []Layer
	byName  map[string]LayerID
	byCIF   map[string]LayerID
	spacing map[LayerPair]SpacingRule
	widths  map[LayerID]LayerRule
	areas   map[LayerID]LayerRule
	crosses map[crossKey]CrossRule
	devices map[string]DeviceSpec

	// Rails are the net names treated as power and ground by the
	// non-geometric construction rules.
	PowerNets  []string
	GroundNets []string

	// compiled caches the frozen checker-facing form; any mutation of the
	// layer set, spacing matrix, or device table invalidates it. The slot
	// is atomic so technologies shared by concurrent Check calls are safe
	// (mutating a technology concurrently with checking never was).
	compiled atomic.Pointer[Compiled]
}

// New creates an empty technology.
func New(name string, lambda int64) *Technology {
	return &Technology{
		Name:    name,
		Lambda:  lambda,
		byName:  make(map[string]LayerID),
		byCIF:   make(map[string]LayerID),
		spacing: make(map[LayerPair]SpacingRule),
		widths:  make(map[LayerID]LayerRule),
		areas:   make(map[LayerID]LayerRule),
		crosses: make(map[crossKey]CrossRule),
		devices: make(map[string]DeviceSpec),
	}
}

// AddLayer registers a layer and returns its id.
func (t *Technology) AddLayer(l Layer) LayerID {
	id := LayerID(len(t.layers))
	l.ID = id
	t.layers = append(t.layers, l)
	t.byName[l.Name] = id
	t.byCIF[l.CIF] = id
	t.compiled.Store(nil)
	return id
}

// Layers returns all layers in id order.
func (t *Technology) Layers() []Layer { return t.layers }

// NumLayers returns the number of layers.
func (t *Technology) NumLayers() int { return len(t.layers) }

// Layer returns the layer with the given id.
func (t *Technology) Layer(id LayerID) Layer {
	return t.layers[id]
}

// LayerByName looks a layer up by human name.
func (t *Technology) LayerByName(name string) (LayerID, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// LayerByCIF looks a layer up by CIF name.
func (t *Technology) LayerByCIF(name string) (LayerID, bool) {
	id, ok := t.byCIF[name]
	return id, ok
}

// SetSpacing sets the interaction-matrix cell for a layer pair.
func (t *Technology) SetSpacing(a, b LayerID, rule SpacingRule) {
	t.spacing[Pair(a, b)] = rule
	t.compiled.Store(nil)
}

// Spacing returns the interaction-matrix cell for a layer pair; the zero
// rule (no checks) is returned for unset cells.
func (t *Technology) Spacing(a, b LayerID) SpacingRule {
	return t.spacing[Pair(a, b)]
}

// SetWidthRule sets the minimum-region-width rule for a layer.
func (t *Technology) SetWidthRule(l LayerID, r LayerRule) {
	t.widths[l] = r
	t.compiled.Store(nil)
}

// WidthRuleFor returns the region-width rule for a layer, if set.
func (t *Technology) WidthRuleFor(l LayerID) (LayerRule, bool) {
	r, ok := t.widths[l]
	return r, ok
}

// SetAreaRule sets the minimum-island-area rule for a layer.
func (t *Technology) SetAreaRule(l LayerID, r LayerRule) {
	t.areas[l] = r
	t.compiled.Store(nil)
}

// AreaRuleFor returns the island-area rule for a layer, if set.
func (t *Technology) AreaRuleFor(l LayerID) (LayerRule, bool) {
	r, ok := t.areas[l]
	return r, ok
}

// SetCrossRule sets a directed cross-layer rule; (a, b) order matters.
func (t *Technology) SetCrossRule(kind CrossKind, a, b LayerID, r CrossRule) {
	t.crosses[crossKey{kind, a, b}] = r
	t.compiled.Store(nil)
}

// CrossRuleFor returns a directed cross-layer rule, if set.
func (t *Technology) CrossRuleFor(kind CrossKind, a, b LayerID) (CrossRule, bool) {
	r, ok := t.crosses[crossKey{kind, a, b}]
	return r, ok
}

// MaxSpacing returns the largest spacing value anywhere in the matrix —
// the interaction search radius for candidate generation. The value is
// computed once at freeze time (see Compile); callers in per-check hot
// paths no longer rescan the matrix.
func (t *Technology) MaxSpacing() int64 {
	return t.Compile().MaxSpacing()
}

// AddDevice registers a device type under the given type name (the name a
// primitive symbol declares with the 9D extension).
func (t *Technology) AddDevice(name string, spec DeviceSpec) {
	t.devices[name] = spec
	t.compiled.Store(nil)
}

// Device returns the spec for a declared device type.
func (t *Technology) Device(name string) (DeviceSpec, bool) {
	s, ok := t.devices[name]
	return s, ok
}

// DeviceTypes returns the registered type names, sorted.
func (t *Technology) DeviceTypes() []string {
	out := make([]string, 0, len(t.devices))
	for n := range t.devices {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsPower reports whether the net name is a power rail.
func (t *Technology) IsPower(net string) bool { return contains(t.PowerNets, net) }

// IsGround reports whether the net name is a ground rail.
func (t *Technology) IsGround(net string) bool { return contains(t.GroundNets, net) }

// IsRail reports whether the net is power or ground.
func (t *Technology) IsRail(net string) bool { return t.IsPower(net) || t.IsGround(net) }

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// MatrixCell describes one audited cell of the interaction matrix for
// reporting (experiment E11): the paper's Figure 12 enumeration.
type MatrixCell struct {
	Pair    LayerPair
	Names   string // "P-D" style label
	Rule    SpacingRule
	Checked bool // any non-zero subcase
}

// InteractionMatrix enumerates every upper-triangular layer pair with its
// rule, including unset (skipped) cells, in deterministic order.
func (t *Technology) InteractionMatrix() []MatrixCell {
	var out []MatrixCell
	for i := 0; i < len(t.layers); i++ {
		for j := i; j < len(t.layers); j++ {
			p := Pair(LayerID(i), LayerID(j))
			rule := t.spacing[p]
			out = append(out, MatrixCell{
				Pair:    p,
				Names:   fmt.Sprintf("%s-%s", t.layers[i].CIF, t.layers[j].CIF),
				Rule:    rule,
				Checked: rule.DiffNet > 0 || rule.SameNet > 0,
			})
		}
	}
	return out
}
