// Shiftreg: the paper's evaluation scenario end to end — generate a
// regular hierarchical chip (rows of chained inverter cells, the classic
// nMOS shift-register-style structure), inject seeded ground-truth errors,
// and run BOTH checkers to reproduce the Figure 1 error economics: the
// mask-level baseline misses device/net errors and drowns the real ones in
// false reports, while the design-integrity checker reports exactly the
// injected errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	dic "repro"
)

func main() {
	rows := flag.Int("rows", 8, "rows of cells")
	cols := flag.Int("cols", 12, "columns of cells")
	errs := flag.Int("errors", 20, "injected errors")
	seed := flag.Int64("seed", 1980, "injection seed")
	flag.Parse()

	tc := dic.NMOS()
	chip := dic.NewChip(tc, "shiftreg", *rows, *cols)
	st := chip.Design.Stats()
	fmt.Printf("chip: %dx%d cells, %d devices, %d flat elements (%d symbol definitions)\n",
		*rows, *cols, st.FlatDevices, st.FlatElements, st.Symbols)

	injected := dic.InjectErrors(chip, *errs, *seed)
	fmt.Printf("injected %d ground-truth errors:\n", len(injected))
	kinds := map[string]int{}
	for _, inj := range injected {
		kinds[inj.Kind.String()]++
	}
	for k, n := range kinds {
		fmt.Printf("  %-24s %d\n", k, n)
	}

	// Design-integrity checker.
	start := time.Now()
	rep, err := dic.Check(chip.Design, tc, dic.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dicDur := time.Since(start)
	dicScore := dic.ScoreAgainstGroundTruth(injected, rep)

	fmt.Printf("\ndesign-integrity checker (%v):\n", dicDur.Round(time.Millisecond))
	fmt.Printf("  real errors flagged: %d/%d\n", dicScore.RealFlagged, dicScore.Injected)
	fmt.Printf("  unchecked (missed):  %d\n", dicScore.Missed)
	fmt.Printf("  false errors:        %d\n", dicScore.False)

	// Traditional baseline.
	frep, err := dic.CheckFlat(chip.Design, tc, dic.FlatOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraditional mask-level baseline (%v):\n", frep.Duration.Round(time.Millisecond))
	fmt.Printf("  violations reported: %d\n", len(frep.Violations))
	fmt.Println("  of which (Figure 1 regions):")
	real, missed, falseCount := scoreFlat(injected, frep)
	fmt.Printf("    region 2 (real, flagged):  %d/%d\n", real, len(injected))
	fmt.Printf("    region 1 (real, unchecked): %d\n", missed)
	fmt.Printf("    region 3 (false):           %d  (false:real = %.1f:1)\n",
		falseCount, ratio(falseCount, real))
	fmt.Println("\nthe baseline's false errors are the chip's legal butting contacts;")
	fmt.Println("its misses are the accidental transistors, missing gate overlaps,")
	fmt.Println("shallow connections and the power-ground short.")
}

func scoreFlat(injected []dic.Injected, frep *dic.FlatReport) (real, missed, falseCount int) {
	detected := make([]bool, len(injected))
	for _, v := range frep.Violations {
		matched := false
		for i := range injected {
			for _, p := range injected[i].FlatRules {
				if len(v.Rule) >= len(p) && v.Rule[:len(p)] == p &&
					v.Where.Expand(500).Touches(injected[i].Where) {
					detected[i] = true
					matched = true
				}
			}
		}
		if !matched {
			falseCount++
		}
	}
	for _, d := range detected {
		if d {
			real++
		} else {
			missed++
		}
	}
	return real, missed, falseCount
}

func ratio(a, b int) float64 {
	if b == 0 {
		return float64(a)
	}
	return float64(a) / float64(b)
}
