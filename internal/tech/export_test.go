package tech

// Legacy hand-built constructors, exported to the package's external test
// binary only: the chip-fingerprint parity tests check whole pipeline runs
// against them.
var (
	NMOSFromCode    = nmosFromCode
	BipolarFromCode = bipolarFromCode
)
