package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

// requireSameReport compares duration-free fingerprints.
func requireSameReport(t *testing.T, label string, got, want *Report) {
	t.Helper()
	g, w := Fingerprint(got), Fingerprint(want)
	if g != w {
		t.Fatalf("%s: reports differ\n--- got ---\n%s\n--- want ---\n%s", label, clip(g), clip(w))
	}
}

func clip(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n...[clipped]"
	}
	return s
}

// TestEngineMatchesCheck: a cold engine run must fingerprint-match the
// chip-level pipeline on clean, dirty, bipolar, and pathology designs.
func TestEngineMatchesCheck(t *testing.T) {
	type tcase struct {
		label  string
		design *layout.Design
		tc     *tech.Technology
	}
	var cases []tcase
	nm := tech.NMOS()
	cases = append(cases, tcase{"clean 4x5", workload.NewChip(nm, "clean", 4, 5).Design, nm})
	cases = append(cases, tcase{"unique 3x4", workload.NewChipUnique(nm, "uniq", 3, 4).Design, nm})

	dirty := workload.NewChip(nm, "dirty", 6, 7)
	workload.InjectErrors(dirty, 25, 42)
	cases = append(cases, tcase{"dirty 6x7", dirty.Design, nm})

	bip := workload.NewBipolarChip(tech.Bipolar(), "bip", 6)
	bip.BreakIsolation(2)
	cases = append(cases, tcase{"bipolar", bip.Design, tech.Bipolar()})

	for _, p := range workload.AllPathologies() {
		cases = append(cases, tcase{"pathology " + p.Name, p.Design, p.Tech})
	}

	for _, tcse := range cases {
		legacy, err := Check(tcse.design, tcse.tc, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: legacy: %v", tcse.label, err)
		}
		eng := NewEngine(tcse.tc, Options{Workers: 1})
		got, err := eng.Check(tcse.design)
		if err != nil {
			t.Fatalf("%s: engine: %v", tcse.label, err)
		}
		requireSameReport(t, tcse.label+" (cold engine vs Check)", got, legacy)

		// A second run with nothing edited must replay to the same report.
		again, err := eng.Recheck(tcse.design)
		if err != nil {
			t.Fatalf("%s: recheck: %v", tcse.label, err)
		}
		requireSameReport(t, tcse.label+" (no-edit recheck)", again, legacy)
	}
}

// mutateOneSymbol applies one random single-symbol edit and returns a
// description of it.
func mutateOneSymbol(rng *rand.Rand, d *layout.Design, tc *tech.Technology) string {
	syms := d.SortedSymbols()
	var composites []*layout.Symbol
	for _, s := range syms {
		if !s.IsPrimitive() && len(s.Elements) > 0 {
			composites = append(composites, s)
		}
	}
	s := composites[rng.Intn(len(composites))]
	layers := d.UsedLayers()
	switch rng.Intn(4) {
	case 0: // add a box somewhere near the symbol's own geometry
		b := s.Bounds()
		x := b.X1 + rng.Int63n(max64(b.X2-b.X1, 1))
		y := b.Y1 + rng.Int63n(max64(b.Y2-b.Y1, 1))
		l := layers[rng.Intn(len(layers))]
		s.AddBox(l, geom.R(x, y, x+500+rng.Int63n(1500), y+500+rng.Int63n(1500)), "")
		return fmt.Sprintf("add box to %q", s.Name)
	case 1: // nudge an existing box/wire
		e := s.Elements[rng.Intn(len(s.Elements))]
		dx := rng.Int63n(500) - 250
		switch e.Kind {
		case layout.KindBox:
			e.Box.X1 += dx
			e.Box.X2 += dx
		case layout.KindWire:
			for i := range e.Path {
				e.Path[i].X += dx
			}
		case layout.KindPolygon:
			for i := range e.Poly {
				e.Poly[i].X += dx
			}
		}
		return fmt.Sprintf("nudge element in %q by %d", s.Name, dx)
	case 2: // change a net declaration
		e := s.Elements[rng.Intn(len(s.Elements))]
		e.Net = fmt.Sprintf("mut%d", rng.Intn(3))
		return fmt.Sprintf("redeclare net in %q", s.Name)
	default: // duplicate an existing call under a shifted transform
		if len(s.Calls) == 0 {
			s.AddBox(layers[rng.Intn(len(layers))], geom.R(0, 0, 700, 700), "")
			return fmt.Sprintf("add box to call-less %q", s.Name)
		}
		c := s.Calls[rng.Intn(len(s.Calls))]
		shift := geom.Pt(c.T.Trans.X+40000+rng.Int63n(20000), c.T.Trans.Y+40000)
		s.AddCall(c.Target, geom.NewTransform(c.T.Orient, shift), "")
		return fmt.Sprintf("duplicate call %q in %q", c.Name, s.Name)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestEngineRecheckByteIdentical is the tentpole's acceptance test: after
// each random single-symbol edit, a warm Recheck must produce a report
// byte-identical (modulo durations) to both a cold engine Check and the
// chip-level pipeline on the same design state.
func TestEngineRecheckByteIdentical(t *testing.T) {
	for _, variant := range []string{"shared", "unique"} {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			nm := tech.NMOS()
			var chip *workload.Chip
			if variant == "shared" {
				chip = workload.NewChip(nm, "rand-"+variant, 4, 5)
			} else {
				chip = workload.NewChipUnique(nm, "rand-"+variant, 4, 5)
			}
			d := chip.Design
			eng := NewEngine(nm, Options{Workers: 1})
			if _, err := eng.Check(d); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1980))
			edits := 12
			if testing.Short() {
				edits = 4
			}
			for i := 0; i < edits; i++ {
				desc := mutateOneSymbol(rng, d, nm)
				warm, err := eng.Recheck(d)
				if err != nil {
					t.Fatalf("edit %d (%s): recheck: %v", i, desc, err)
				}
				cold, err := NewEngine(nm, Options{Workers: 1}).Check(d)
				if err != nil {
					t.Fatalf("edit %d (%s): cold: %v", i, desc, err)
				}
				requireSameReport(t, fmt.Sprintf("edit %d (%s) warm vs cold", i, desc), warm, cold)
				legacy, err := Check(d, nm, Options{Workers: 1})
				if err != nil {
					t.Fatalf("edit %d (%s): legacy: %v", i, desc, err)
				}
				requireSameReport(t, fmt.Sprintf("edit %d (%s) warm vs legacy", i, desc), warm, legacy)
			}
		})
	}
}

// TestEngineRecheckReusesCleanDefs pins the incrementality claim itself:
// after editing one row definition of a unique-rows chip, the engine must
// rebuild only the dirty subtrees.
func TestEngineRecheckReusesCleanDefs(t *testing.T) {
	nm := tech.NMOS()
	chip := workload.NewChipUnique(nm, "reuse", 6, 4)
	d := chip.Design
	eng := NewEngine(nm, Options{Workers: 1})
	if _, err := eng.Check(d); err != nil {
		t.Fatal(err)
	}
	cold := eng.Stats()
	if cold.InterReused != 0 && cold.InterBuilt == 0 {
		t.Fatalf("cold run built nothing: %+v", cold)
	}

	row, ok := d.Symbol("row3")
	if !ok {
		t.Fatal("row3 missing")
	}
	metalL, _ := nm.LayerByName(tech.NMOSMetal)
	row.AddBox(metalL, geom.R(-900, 900, -150, 1650), "")
	if _, err := eng.Recheck(d); err != nil {
		t.Fatal(err)
	}
	warm := eng.Stats()
	// Dirty: row3 and chip. Everything else replays from cache.
	if warm.DirtySymbols != 2 {
		t.Fatalf("dirty symbols = %d, want 2 (row3 + chip); stats %+v", warm.DirtySymbols, warm)
	}
	if warm.InterBuilt > 2 {
		t.Fatalf("rebuilt %d interaction defs, want <= 2; stats %+v", warm.InterBuilt, warm)
	}
	if warm.InterReused == 0 {
		t.Fatalf("no interaction defs reused; stats %+v", warm)
	}
}
