package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

func TestCleanChipReportsNoErrors(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "clean", 2, 3)
	rep, err := Check(chip.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Errors() {
		t.Errorf("unexpected: %v", v)
	}
	if t.Failed() {
		t.Logf("stats: %+v", rep.Stats)
	}
	// Sanity: the chip has real content.
	if rep.Netlist == nil || len(rep.Netlist.Devices) != 2*3*5+2 {
		t.Fatalf("devices = %v, want %d", rep.Netlist.Stats(), 2*3*5+2)
	}
	// Rails are single nets.
	vdd, ok := rep.Netlist.NetByName("VDD")
	if !ok {
		t.Fatal("VDD missing")
	}
	gnd, ok := rep.Netlist.NetByName("GND")
	if !ok {
		t.Fatal("GND missing")
	}
	if vdd == gnd {
		t.Fatal("rails merged")
	}
}

func TestWidthViolationReported(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("narrow")
	top := d.MustSymbol("top")
	top.AddWire(diff, 300, "", geom.Pt(0, 0), geom.Pt(3000, 0)) // min is 500
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := CountByRule(rep.Violations)["W.ND"]; n != 1 {
		t.Fatalf("W.ND = %d, want 1 (%v)", n, rep.Violations)
	}
}
