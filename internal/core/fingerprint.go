package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Fingerprint serializes everything in a Report that is a pure function of
// the design state — violations, netlist, and all statistics except
// wall-clock stage durations. Two runs over the same design state must
// produce equal fingerprints regardless of cache temperature, worker
// count, or which pipeline (Check or an Engine) produced them; the
// randomized incremental tests enforce exactly that, byte for byte.
func Fingerprint(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "design %q\n", rep.Design.Name)

	fmt.Fprintf(&b, "violations %d\n", len(rep.Violations))
	for i := range rep.Violations {
		v := &rep.Violations[i]
		fmt.Fprintf(&b, "  %s sev=%d where=%v sym=%q path=%q layer=%d nets=%v detail=%q\n",
			v.Rule, v.Severity, v.Where, v.Symbol, v.Path, v.Layer, v.Nets, v.Detail)
	}

	st := &rep.Stats
	fmt.Fprintf(&b, "stats elems=%d symdefs=%d devinst=%d cand=%d checked=%d norule=%d samenet=%d related=%d conn=%d downgrades=%d\n",
		st.ElementsChecked, st.SymbolDefsChecked, st.DeviceInstances,
		st.InteractionCandidates, st.InteractionChecked,
		st.SkippedNoRule, st.SkippedSameNetExempt, st.SkippedRelated,
		st.SkippedConnectionPairs, st.ProcessDowngrades)
	for _, s := range st.Stages {
		fmt.Fprintf(&b, "stage %q checks=%d violations=%d\n", s.Name, s.Checks, s.Violations)
	}

	if nl := rep.Netlist; nl != nil {
		fmt.Fprintf(&b, "netlist nets=%d devices=%d\n", len(nl.Nets), len(nl.Devices))
		for i := range nl.Nets {
			n := &nl.Nets[i]
			fmt.Fprintf(&b, "  net %d %q declared=%v elements=%d bounds=%v terms=%v\n",
				n.ID, n.Name, n.Declared, n.Elements, n.Bounds, n.Terminals)
		}
		for i := range nl.Devices {
			d := &nl.Devices[i]
			fmt.Fprintf(&b, "  dev %d path=%q type=%q class=%q t=%v", i, d.Path, d.Type, d.Class, d.T)
			for ti := range d.TerminalNets {
				fmt.Fprintf(&b, " %s=%d", d.TerminalNets[ti].Name, d.TerminalNets[ti].Net)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FingerprintDigest is the sha256 hex form of Fingerprint — small enough
// to embed in wire reports and logs, with the same guarantee: equal
// digests mean the duration-free report content is byte-identical. The
// check service stamps every report with it so clients can assert parity
// against an offline Recheck of the same edit script.
func FingerprintDigest(rep *Report) string {
	sum := sha256.Sum256([]byte(Fingerprint(rep)))
	return hex.EncodeToString(sum[:])
}
