package geom

import "sort"

// Item is an identified bounding box registered with a PairFinder.
type Item struct {
	ID   int
	Box  Rect
	Tag  int // caller-defined classification (e.g. layer), carried through
	Data any // optional payload
}

// Pair is an unordered candidate interaction between two items
// (A.ID < B.ID is not guaranteed; A precedes B in sweep order).
type Pair struct {
	A, B Item
}

// PairFinder finds all pairs of items whose bounding boxes approach within
// a given orthogonal gap, using a plane sweep over x with an active set
// ordered by y. This is the hierarchical checker's interaction-candidate
// generator: the expected output is near-linear for real layouts.
type PairFinder struct {
	items []Item
}

// Add registers an item.
func (pf *PairFinder) Add(it Item) { pf.items = append(pf.items, it) }

// AddRect registers a rect with the given id and tag.
func (pf *PairFinder) AddRect(id int, r Rect, tag int) {
	pf.items = append(pf.items, Item{ID: id, Box: r, Tag: tag})
}

// Len returns the number of registered items.
func (pf *PairFinder) Len() int { return len(pf.items) }

// Pairs invokes fn for every unordered pair of items whose boxes are within
// maxGap of each other in the L∞ sense (touching and overlapping pairs are
// always reported). The filter, when non-nil, prunes pairs before the
// geometric test (e.g. rejecting layer combinations with no rules).
// Iteration order is deterministic.
func (pf *PairFinder) Pairs(maxGap int64, filter func(a, b Item) bool, fn func(Pair)) {
	items := make([]Item, len(pf.items))
	copy(items, pf.items)
	sort.Slice(items, func(i, j int) bool {
		if items[i].Box.X1 != items[j].Box.X1 {
			return items[i].Box.X1 < items[j].Box.X1
		}
		return items[i].ID < items[j].ID
	})
	// active holds indices into items of boxes whose x-extent (plus maxGap)
	// still reaches the sweep line.
	var active []int
	for i := range items {
		cur := items[i]
		// Evict boxes that can no longer interact.
		keep := active[:0]
		for _, j := range active {
			if items[j].Box.X2+maxGap >= cur.Box.X1 {
				keep = append(keep, j)
			}
		}
		active = keep
		for _, j := range active {
			other := items[j]
			if other.Box.GapY(cur.Box) > maxGap {
				continue
			}
			if filter != nil && !filter(other, cur) {
				continue
			}
			fn(Pair{A: other, B: cur})
		}
		active = append(active, i)
	}
}

// AllPairs invokes fn for every unordered pair without geometric pruning;
// useful as a correctness oracle in tests.
func (pf *PairFinder) AllPairs(fn func(Pair)) {
	for i := 0; i < len(pf.items); i++ {
		for j := i + 1; j < len(pf.items); j++ {
			fn(Pair{A: pf.items[i], B: pf.items[j]})
		}
	}
}
