package core

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
	"repro/internal/workload"
)

// newRuleClasses are the rule-id prefixes of the layer-rule stage.
var newRuleClasses = []string{"WIDTH.", "AREA.", "ENC.", "OVL.", "EXT."}

// TestLayerRuleGroundTruth drives each ground-truth breaker end-to-end:
// the defect must produce exactly one violation of its target rule, at the
// recorded location, with none of the other layer-rule classes firing —
// and the flat Check, a cold engine Check, and a warm engine Recheck (the
// edit applied to an already-checked clean chip) must agree byte for byte.
func TestLayerRuleGroundTruth(t *testing.T) {
	cases := []struct {
		name string
		rule string
		brk  func(c *workload.Chip) geom.Rect
	}{
		{"width", "WIDTH.ND", func(c *workload.Chip) geom.Rect { return c.BreakRuleWidth(0) }},
		{"area", "AREA.NM", func(c *workload.Chip) geom.Rect { return c.BreakRuleArea(0) }},
		{"enclosure", "ENC.NM.NC", func(c *workload.Chip) geom.Rect { return c.BreakRuleEnclosure(0) }},
		{"overlap", "OVL.NP.ND", func(c *workload.Chip) geom.Rect { return c.BreakRuleOverlap(0) }},
		{"extension", "EXT.NP.ND", func(c *workload.Chip) geom.Rect { return c.BreakRuleExtension(0) }},
	}
	for _, tcse := range cases {
		t.Run(tcse.name, func(t *testing.T) {
			tc := tech.NMOS()

			// Flat pipeline over the broken chip.
			chip := workload.NewChip(tc, "bk-"+tcse.name, 2, 2)
			where := tcse.brk(chip)
			flat, err := Check(chip.Design, tc, Options{})
			if err != nil {
				t.Fatal(err)
			}

			counts := CountByRule(flat.Violations)
			if counts[tcse.rule] != 1 {
				t.Fatalf("%s count = %d, want exactly 1 (all: %v)", tcse.rule, counts[tcse.rule], counts)
			}
			for _, v := range flat.Violations {
				if v.Rule == tcse.rule && v.Where != where {
					t.Fatalf("%s at %v, ground truth %v", tcse.rule, v.Where, where)
				}
			}
			for _, prefix := range newRuleClasses {
				if strings.HasPrefix(tcse.rule, prefix) {
					continue
				}
				for rule, n := range counts {
					if strings.HasPrefix(rule, prefix) {
						t.Fatalf("untargeted class fired: %s x%d", rule, n)
					}
				}
			}

			// Cold engine over the same broken state.
			cold, err := NewEngine(tc, Options{}).Check(chip.Design)
			if err != nil {
				t.Fatal(err)
			}
			requireSameReport(t, tcse.name+" cold engine", cold, flat)

			// Warm engine: check clean, apply the edit, recheck.
			chip2 := workload.NewChip(tc, "bk-"+tcse.name, 2, 2)
			eng := NewEngine(tc, Options{})
			clean, err := eng.Check(chip2.Design)
			if err != nil {
				t.Fatal(err)
			}
			if !clean.Clean() {
				t.Fatalf("chip not clean before the break: %v", clean.Errors())
			}
			tcse.brk(chip2)
			warm, err := eng.Recheck(chip2.Design)
			if err != nil {
				t.Fatal(err)
			}
			requireSameReport(t, tcse.name+" warm recheck", warm, flat)
		})
	}
}

// TestRuleClassTally locks the class vocabulary of the wire report's
// per-class summary.
func TestRuleClassTally(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "classes", 2, 2)
	// Both in cell 0's lane: metal and diffusion carry no mutual rule.
	chip.BreakRuleWidth(0)
	chip.BreakRuleArea(0)
	rep, err := Check(chip.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	classes := CountByClass(rep.Errors())
	// W.ND and WIDTH.ND both land in "width"; the area island adds one.
	if classes["width"] != 2 || classes["area"] != 1 {
		t.Fatalf("class tally = %v", classes)
	}
	for _, absent := range []string{"enclosure", "overlap", "extension", "spacing"} {
		if classes[absent] != 0 {
			t.Fatalf("unexpected %s violations: %v", absent, classes)
		}
	}
	if RuleClass("S.ND.ND.diff") != "spacing" || RuleClass("X.WEIRD") != "other" {
		t.Fatal("RuleClass vocabulary drifted")
	}
}
