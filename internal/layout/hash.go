package layout

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"repro/internal/geom"
)

// Hash is a content address for a symbol definition. Two symbols with equal
// subtree hashes are semantically interchangeable for every checker stage:
// same name, same device declaration, same elements in the same order, and
// calls (in the same order, under the same transforms) to subtrees that are
// themselves content-equal.
//
// Hashing is deliberately order-sensitive where the checker's output is
// order-sensitive: element order assigns Element.Index and drives net
// numbering ("n<k>" names follow first-appearance order), and call order
// drives instance naming and net numbering, so reordering IS a semantic
// edit for byte-identical reports. Coordinates, layers, widths, declared
// nets, device types, and the Checked flag are all content.
type Hash [sha256.Size]byte

// String returns a short hex prefix for logs and cache-stat dumps.
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// SymbolHashes carries the two content addresses of one symbol.
type SymbolHashes struct {
	// Own covers the symbol's name, device declaration, and elements —
	// everything stage 1 (element width) and stage 2 (device internals)
	// can see. It ignores calls.
	Own Hash
	// Subtree additionally covers the call list and, transitively, the
	// subtree hashes of every called symbol: the key for extraction and
	// interaction artifacts of the flattened subtree.
	Subtree Hash
}

// hashWriter accumulates content into a sha256 state with primitive
// framing: every scalar is written fixed-width, every string
// length-prefixed, so distinct contents cannot collide by concatenation.
type hashWriter struct {
	sum hash.Hash
	buf [8]byte
}

func newHashWriter() *hashWriter { return &hashWriter{sum: sha256.New()} }

func (w *hashWriter) int64(v int64) {
	binary.LittleEndian.PutUint64(w.buf[:], uint64(v))
	w.sum.Write(w.buf[:])
}

func (w *hashWriter) str(s string) {
	w.int64(int64(len(s)))
	w.sum.Write([]byte(s))
}

func (w *hashWriter) point(p geom.Point) { w.int64(p.X); w.int64(p.Y) }

func (w *hashWriter) rect(r geom.Rect) {
	w.int64(r.X1)
	w.int64(r.Y1)
	w.int64(r.X2)
	w.int64(r.Y2)
}

func (w *hashWriter) final() Hash {
	var out Hash
	w.sum.Sum(out[:0])
	return out
}

// hashOwn computes the call-independent content hash of one symbol.
func hashOwn(s *Symbol) Hash {
	w := newHashWriter()
	w.str(s.Name)
	w.str(s.DeviceType)
	if s.Checked {
		w.int64(1)
	} else {
		w.int64(0)
	}
	w.int64(int64(len(s.Elements)))
	for _, e := range s.Elements {
		w.int64(int64(e.Kind))
		w.int64(int64(e.Layer))
		w.rect(e.Box)
		w.int64(int64(len(e.Path)))
		for _, p := range e.Path {
			w.point(p)
		}
		w.int64(e.Width)
		w.int64(int64(len(e.Poly)))
		for _, p := range e.Poly {
			w.point(p)
		}
		w.str(e.Net)
	}
	return w.final()
}

// hashSubtree folds the own hash with the call list and child subtree
// hashes.
func hashSubtree(s *Symbol, own Hash, child func(*Symbol) Hash) Hash {
	w := newHashWriter()
	w.sum.Write(own[:])
	w.int64(int64(len(s.Calls)))
	for _, c := range s.Calls {
		w.str(c.Name)
		w.int64(int64(c.T.Orient))
		w.point(c.T.Trans)
		ch := child(c.Target)
		w.sum.Write(ch[:])
	}
	return w.final()
}

// ContentHashes computes own and subtree content hashes for every symbol
// reachable from Top, bottom-up (callees before callers). The map is
// recomputed from scratch on every call — hashing is linear in definition
// size, which for a hierarchical design is far smaller than the flattened
// chip, so a fresh pass is cheap and immune to stale-invalidation bugs
// from in-place symbol mutation.
func (d *Design) ContentHashes() map[*Symbol]SymbolHashes {
	out := make(map[*Symbol]SymbolHashes)
	for _, s := range d.SortedSymbols() { // topological: callees first
		own := hashOwn(s)
		sub := hashSubtree(s, own, func(t *Symbol) Hash { return out[t].Subtree })
		out[s] = SymbolHashes{Own: own, Subtree: sub}
	}
	return out
}

// Callers returns the reverse call graph over symbols reachable from Top:
// for each symbol, the distinct symbols that call it, in caller walk order.
func (d *Design) Callers() map[*Symbol][]*Symbol {
	out := make(map[*Symbol][]*Symbol)
	for _, s := range d.SortedSymbols() {
		seen := make(map[*Symbol]bool)
		for _, c := range s.Calls {
			if !seen[c.Target] {
				seen[c.Target] = true
				out[c.Target] = append(out[c.Target], s)
			}
		}
	}
	return out
}

// DirtyClosure propagates edits up the call graph: given seed symbols that
// were modified, it returns the set including every (transitive) caller —
// exactly the definitions whose subtree artifacts a cache must discard.
// This is the paper's locality argument run in reverse: an edit inside a
// symbol definition can only affect checks in that definition and in
// definitions that (transitively) instantiate it; sibling subtrees keep
// their results.
func (d *Design) DirtyClosure(seeds ...*Symbol) map[*Symbol]bool {
	callers := d.Callers()
	dirty := make(map[*Symbol]bool)
	var mark func(s *Symbol)
	mark = func(s *Symbol) {
		if dirty[s] {
			return
		}
		dirty[s] = true
		for _, p := range callers[s] {
			mark(p)
		}
	}
	for _, s := range seeds {
		mark(s)
	}
	return dirty
}

// DirtySymbols compares current subtree hashes against a previous snapshot
// (keyed by symbol name) and returns the symbols whose subtree content
// changed — including, by construction of subtree hashing, every ancestor
// of an edited symbol. Symbols absent from prev count as dirty.
func (d *Design) DirtySymbols(prev map[string]Hash) (dirty []*Symbol, cur map[*Symbol]SymbolHashes) {
	cur = d.ContentHashes()
	for _, s := range d.SortedSymbols() {
		if h, ok := prev[s.Name]; !ok || h != cur[s].Subtree {
			dirty = append(dirty, s)
		}
	}
	return dirty, cur
}
