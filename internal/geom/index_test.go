package geom

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func pairKey(p Pair) string {
	a, b := p.A.ID, p.B.ID
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("%d-%d", a, b)
}

func TestPairFinderBasic(t *testing.T) {
	var pf PairFinder
	pf.AddRect(1, R(0, 0, 10, 10), 0)
	pf.AddRect(2, R(12, 0, 20, 10), 0) // gap 2
	pf.AddRect(3, R(40, 40, 50, 50), 0)
	var got []string
	pf.Pairs(3, nil, func(p Pair) { got = append(got, pairKey(p)) })
	if len(got) != 1 || got[0] != "1-2" {
		t.Fatalf("pairs = %v, want [1-2]", got)
	}
	got = nil
	pf.Pairs(1, nil, func(p Pair) { got = append(got, pairKey(p)) })
	if len(got) != 0 {
		t.Fatalf("pairs at gap 1 = %v, want none", got)
	}
}

func TestPairFinderFilter(t *testing.T) {
	var pf PairFinder
	pf.AddRect(1, R(0, 0, 10, 10), 7)
	pf.AddRect(2, R(5, 5, 15, 15), 7)
	pf.AddRect(3, R(8, 8, 12, 12), 9)
	count := 0
	pf.Pairs(0, func(a, b Item) bool { return a.Tag == b.Tag }, func(Pair) { count++ })
	if count != 1 {
		t.Fatalf("filtered pairs = %d, want 1 (same-tag only)", count)
	}
}

// Property: sweep output matches the brute-force oracle for any input.
func TestQuickPairFinderMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var pf PairFinder
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			x := int64(rng.Intn(100))
			y := int64(rng.Intn(100))
			pf.AddRect(i, Rect{x, y, x + int64(1+rng.Intn(15)), y + int64(1+rng.Intn(15))}, 0)
		}
		gap := int64(rng.Intn(8))
		var sweep, oracle []string
		pf.Pairs(gap, nil, func(p Pair) { sweep = append(sweep, pairKey(p)) })
		pf.AllPairs(func(p Pair) {
			if p.A.Box.GapX(p.B.Box) <= gap && p.A.Box.GapY(p.B.Box) <= gap {
				oracle = append(oracle, pairKey(p))
			}
		})
		sort.Strings(sweep)
		sort.Strings(oracle)
		if len(sweep) != len(oracle) {
			return false
		}
		for i := range sweep {
			if sweep[i] != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRegionDistBasics(t *testing.T) {
	a := FromRectR(R(0, 0, 10, 10))
	b := FromRectR(R(13, 14, 20, 20))
	d, pa, pb := RegionDist(a, b)
	if d != 5 {
		t.Fatalf("dist = %v, want 5", d)
	}
	if pa != Pt(10, 10) || pb != Pt(13, 14) {
		t.Fatalf("closest points = %v %v", pa, pb)
	}
	if got := RegionOrthoDist(a, b); got != 4 {
		t.Fatalf("ortho dist = %d, want 4", got)
	}
	if d, _, _ := RegionDist(a, a); d != 0 {
		t.Fatalf("self dist = %v", d)
	}
}

func TestRegionDistMultiComponent(t *testing.T) {
	// Closest approach is between the nearest components, not the bounds.
	a := FromRects([]Rect{R(0, 0, 5, 5), R(100, 100, 105, 105)})
	b := FromRects([]Rect{R(8, 0, 12, 5), R(200, 0, 205, 5)})
	d, _, _ := RegionDist(a, b)
	if d != 3 {
		t.Fatalf("dist = %v, want 3", d)
	}
}

func TestLineOfClosestApproach(t *testing.T) {
	a := FromRectR(R(0, 0, 10, 10))
	b := FromRectR(R(13, 14, 20, 20))
	dir, from, to, dist := LineOfClosestApproach(a, b)
	if dist != 5 {
		t.Fatalf("dist = %v", dist)
	}
	if from != Pt(10, 10) || to != Pt(13, 14) {
		t.Fatalf("endpoints = %v %v", from, to)
	}
	if e := (dir.X - 0.6); e > 1e-9 || e < -1e-9 {
		t.Fatalf("dir.X = %v, want 0.6", dir.X)
	}
	if e := (dir.Y - 0.8); e > 1e-9 || e < -1e-9 {
		t.Fatalf("dir.Y = %v, want 0.8", dir.Y)
	}
	// Overlapping: zero direction.
	dir, _, _, dist = LineOfClosestApproach(a, a)
	if dist != 0 || dir != (FPoint{}) {
		t.Fatalf("overlap LOCA = %v %v", dir, dist)
	}
}

// Property: RegionDist is symmetric and bounded above by orthogonal
// distance times √2, below by max-gap.
func TestQuickRegionDistBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRegion(rng, 4)
		b := randomRegion(rng, 4).Translate(Pt(40, 0))
		d1, _, _ := RegionDist(a, b)
		d2, _, _ := RegionDist(b, a)
		if d1 != d2 {
			return false
		}
		od := float64(RegionOrthoDist(a, b))
		return d1 >= od-1e-9 && d1 <= od*1.4142135624+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
