package tech

import (
	"fmt"
	"sort"

	"repro/internal/deck"
)

// FromDeck compiles a parsed rule deck into a Technology. Structural
// validation runs first (deck.Validate with the roles this package
// understands); any error-severity problem aborts the load. Device classes
// are not checked here — the deck package must not depend on the checker's
// class registry — callers wanting that pass device.Classes() to
// deck.Validate themselves (dic.LoadDeck and dicheck -validate do).
func FromDeck(d *deck.Deck) (*Technology, error) {
	probs := ValidateDeck(d, nil)
	if errs := deck.Errors(probs); len(errs) > 0 {
		return nil, fmt.Errorf("tech: deck %q invalid: %v (%d more)", d.Name, errs[0], len(errs)-1)
	}
	t := New(d.Name, d.Lambda)
	ids := make(map[string]LayerID, len(d.Layers))
	for i := range d.Layers {
		l := &d.Layers[i]
		ids[l.Name] = t.AddLayer(Layer{
			Name: l.Name, CIF: l.CIF, Role: l.Role,
			MinWidth: l.Width, MinSpace: l.Space,
		})
	}
	for i := range d.Spaces {
		s := &d.Spaces[i]
		t.SetSpacing(ids[s.A], ids[s.B], SpacingRule{
			DiffNet: s.DiffNet, SameNet: s.SameNet,
			ExemptRelated: s.ExemptRelated, Note: s.Note,
		})
	}
	for i := range d.Widths {
		w := &d.Widths[i]
		t.SetWidthRule(ids[w.Layer], LayerRule{Min: w.Min, Note: w.Note})
	}
	for i := range d.Areas {
		a := &d.Areas[i]
		t.SetAreaRule(ids[a.Layer], LayerRule{Min: a.MinArea, Note: a.Note})
	}
	for i := range d.Crosses {
		cr := &d.Crosses[i]
		t.SetCrossRule(crossKindOf(cr.Kind), ids[cr.A], ids[cr.B],
			CrossRule{Margin: cr.Margin, Note: cr.Note})
	}
	for i := range d.Devices {
		dev := &d.Devices[i]
		spec := DeviceSpec{
			Class:     dev.Class,
			Describe:  dev.Describe,
			Depletion: dev.Depletion,
		}
		if len(dev.Params) > 0 {
			spec.Params = make(map[string]int64, len(dev.Params))
			for _, p := range dev.Params {
				spec.Params[p.Key] = p.Value
			}
		}
		if len(dev.Uses) > 0 {
			spec.Layers = make(map[string]string, len(dev.Uses))
			for _, u := range dev.Uses {
				spec.Layers[u.Role] = u.Layer
			}
		}
		t.AddDevice(dev.Type, spec)
	}
	t.PowerNets = append([]string(nil), d.PowerNets...)
	t.GroundNets = append([]string(nil), d.GroundNets...)
	return t, nil
}

// ToDeck renders a Technology back into its deck form, in canonical order:
// layers by id, interaction cells upper-triangular, width/area rules by
// layer id, cross rules by (kind, A, B), devices and their params sorted
// by name. FromDeck(ToDeck(t)) reproduces t.
func ToDeck(t *Technology) *deck.Deck {
	d := &deck.Deck{Name: t.Name, Lambda: t.Lambda}
	for _, l := range t.layers {
		d.Layers = append(d.Layers, deck.Layer{
			Name: l.Name, CIF: l.CIF, Role: l.Role,
			Width: l.MinWidth, Space: l.MinSpace,
		})
	}
	pairs := make([]LayerPair, 0, len(t.spacing))
	for p := range t.spacing {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, p := range pairs {
		r := t.spacing[p]
		d.Spaces = append(d.Spaces, deck.Space{
			A: t.layers[p.A].Name, B: t.layers[p.B].Name,
			DiffNet: r.DiffNet, SameNet: r.SameNet,
			ExemptRelated: r.ExemptRelated, Note: r.Note,
		})
	}
	for _, l := range t.layers {
		if r, ok := t.widths[l.ID]; ok {
			d.Widths = append(d.Widths, deck.WidthRule{Layer: l.Name, Min: r.Min, Note: r.Note})
		}
	}
	for _, l := range t.layers {
		if r, ok := t.areas[l.ID]; ok {
			d.Areas = append(d.Areas, deck.AreaRule{Layer: l.Name, MinArea: r.Min, Note: r.Note})
		}
	}
	crossKeys := make([]crossKey, 0, len(t.crosses))
	for k := range t.crosses {
		crossKeys = append(crossKeys, k)
	}
	sort.Slice(crossKeys, func(i, j int) bool {
		a, b := crossKeys[i], crossKeys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.a != b.a {
			return a.a < b.a
		}
		return a.b < b.b
	})
	for _, k := range crossKeys {
		r := t.crosses[k]
		d.Crosses = append(d.Crosses, deck.CrossRule{
			Kind: k.kind.String(), A: t.layers[k.a].Name, B: t.layers[k.b].Name,
			Margin: r.Margin, Note: r.Note,
		})
	}
	for _, name := range t.DeviceTypes() {
		spec := t.devices[name]
		dev := deck.Device{
			Type: name, Class: spec.Class,
			Describe: spec.Describe, Depletion: spec.Depletion,
		}
		roles := make([]string, 0, len(spec.Layers))
		for r := range spec.Layers {
			roles = append(roles, r)
		}
		sort.Strings(roles)
		for _, r := range roles {
			dev.Uses = append(dev.Uses, deck.Use{Role: r, Layer: spec.Layers[r]})
		}
		keys := make([]string, 0, len(spec.Params))
		for k := range spec.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dev.Params = append(dev.Params, deck.Param{Key: k, Value: spec.Params[k]})
		}
		d.Devices = append(d.Devices, dev)
	}
	d.PowerNets = append([]string(nil), t.PowerNets...)
	d.GroundNets = append([]string(nil), t.GroundNets...)
	return d
}

// crossKindOf maps a deck cross-rule keyword to its CrossKind; the parser
// only produces the three known keywords.
func crossKindOf(kw string) CrossKind {
	switch kw {
	case deck.KindOverlap:
		return CrossOverlap
	case deck.KindExtend:
		return CrossExtend
	}
	return CrossEnclose
}

// ValidateDeck runs the deck validator with this package's role
// vocabulary plus the caller's device classes — the single option set
// every load path enforces (FromDeck calls it with nil classes; callers
// that know the checker's classes, like dic.LoadDeck and dicheck, pass
// device.Classes()).
func ValidateDeck(d *deck.Deck, knownClasses []string) []deck.Problem {
	return deck.Validate(d, deck.Options{
		KnownClasses:  knownClasses,
		KnownRoles:    Roles(),
		KnownUseRoles: UseRoles(),
	})
}

// ParseDeck parses and compiles deck text in one step.
func ParseDeck(src string) (*Technology, error) {
	d, err := deck.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromDeck(d)
}

// mustParseDeck loads an embedded deck; the shipped decks are covered by
// the parity tests, so a failure here is a build defect, not user input.
func mustParseDeck(src string) *Technology {
	t, err := ParseDeck(src)
	if err != nil {
		panic(err)
	}
	return t
}
