package cif

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Write renders a design as extended CIF text. Symbols are numbered by
// definition id in topological order (callees first) so the output never
// forward-references; the top symbol is instantiated by a single top-level
// call. The output round-trips through Parse.
func Write(d *layout.Design, tc *tech.Technology) (string, error) {
	if d.Top == nil {
		return "", fmt.Errorf("cif: design %q has no top symbol", d.Name)
	}
	if err := d.Validate(); err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "(design %s, technology %s);\n", d.Name, tc.Name)
	fmt.Fprintf(&sb, "9 %s;\n", sanitizeName(d.Name))

	order := d.SortedSymbols()
	num := make(map[*layout.Symbol]int, len(order))
	for i, s := range order {
		num[s] = i + 1
	}
	for _, s := range order {
		fmt.Fprintf(&sb, "DS %d 1 1;\n", num[s])
		fmt.Fprintf(&sb, "9 %s;\n", sanitizeName(s.Name))
		if s.DeviceType != "" {
			if s.Checked {
				fmt.Fprintf(&sb, "9D %s CHK;\n", s.DeviceType)
			} else {
				fmt.Fprintf(&sb, "9D %s;\n", s.DeviceType)
			}
		}
		if err := writeElements(&sb, s, tc); err != nil {
			return "", err
		}
		for _, c := range s.Calls {
			if c.Name != "" {
				fmt.Fprintf(&sb, "9I %s;\n", sanitizeName(c.Name))
			}
			fmt.Fprintf(&sb, "C %d%s;\n", num[c.Target], transformItems(c.T))
		}
		sb.WriteString("DF;\n")
	}
	// No top-level call: the top symbol is defined last, and Parse adopts
	// the last definition as the top, so output round-trips structurally.
	sb.WriteString("E\n")
	return sb.String(), nil
}

func writeElements(sb *strings.Builder, s *layout.Symbol, tc *tech.Technology) error {
	cur := tech.NoLayer
	for _, e := range s.Elements {
		if e.Layer != cur {
			fmt.Fprintf(sb, "L %s;\n", tc.Layer(e.Layer).CIF)
			cur = e.Layer
		}
		if e.Net != "" {
			fmt.Fprintf(sb, "9N %s;\n", sanitizeName(e.Net))
		}
		switch e.Kind {
		case layout.KindBox:
			w, h := e.Box.W(), e.Box.H()
			cx, cy := e.Box.X1+w/2, e.Box.Y1+h/2
			// Centers of odd-extent boxes are not on the lattice; CIF centers
			// are integers, so odd boxes are written as 4-point polygons.
			if (e.Box.X1+e.Box.X2)%2 != 0 || (e.Box.Y1+e.Box.Y2)%2 != 0 {
				fmt.Fprintf(sb, "P %d %d %d %d %d %d %d %d;\n",
					e.Box.X1, e.Box.Y1, e.Box.X2, e.Box.Y1,
					e.Box.X2, e.Box.Y2, e.Box.X1, e.Box.Y2)
				continue
			}
			fmt.Fprintf(sb, "B %d %d %d %d;\n", w, h, cx, cy)
		case layout.KindWire:
			fmt.Fprintf(sb, "W %d", e.Width)
			for _, p := range e.Path {
				fmt.Fprintf(sb, " %d %d", p.X, p.Y)
			}
			sb.WriteString(";\n")
		case layout.KindPolygon:
			sb.WriteString("P")
			for _, p := range e.Poly {
				fmt.Fprintf(sb, " %d %d", p.X, p.Y)
			}
			sb.WriteString(";\n")
		default:
			return fmt.Errorf("cif: cannot write element kind %v", e.Kind)
		}
	}
	return nil
}

// transformItems renders a Manhattan transform as CIF transform items
// (leading space included when non-empty).
func transformItems(t geom.Transform) string {
	var sb strings.Builder
	if t.Orient >= geom.MX {
		sb.WriteString(" M Y") // our MX base mirror negates y
	}
	switch t.Orient & 3 {
	case 1:
		sb.WriteString(" R 0 1")
	case 2:
		sb.WriteString(" R -1 0")
	case 3:
		sb.WriteString(" R 0 -1")
	}
	if t.Trans != (geom.Point{}) {
		fmt.Fprintf(&sb, " T %d %d", t.Trans.X, t.Trans.Y)
	}
	return sb.String()
}

// sanitizeName makes a name safe for the single-token extension commands.
func sanitizeName(n string) string {
	if n == "" {
		return "unnamed"
	}
	var sb strings.Builder
	for _, r := range n {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	return sb.String()
}
