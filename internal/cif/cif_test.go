package cif

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

const sampleCIF = `
(a two-level design with extensions);
9 sample;
DS 1 1 1;
9 tran;
9D nmos-enh;
L NP; B 200 1000 0 0;
L ND; B 1000 200 0 0;
DF;
DS 2 1 1;
9 cell;
9I t1;
C 1 T 1000 1000;
L ND;
9N out;
W 500 0 0 2000 0;
DF;
DS 3 1 1;
9 top;
9I c1;
C 2;
9I c2;
C 2 T 5000 0;
DF;
E
`

func TestParseSample(t *testing.T) {
	tc := tech.NMOS()
	d, err := Parse(sampleCIF, tc, "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "sample" {
		t.Fatalf("design name = %q", d.Name)
	}
	if d.Top == nil || d.Top.Name != "top" {
		t.Fatalf("top = %v", d.Top)
	}
	tran, ok := d.Symbol("tran")
	if !ok {
		t.Fatal("tran missing")
	}
	if tran.DeviceType != "nmos-enh" || tran.Checked {
		t.Fatalf("tran device = %q checked=%v", tran.DeviceType, tran.Checked)
	}
	if len(tran.Elements) != 2 {
		t.Fatalf("tran elements = %d", len(tran.Elements))
	}
	poly := tran.Elements[0]
	if poly.Kind != layout.KindBox || poly.Box != geom.R(-100, -500, 100, 500) {
		t.Fatalf("poly box = %v", poly.Box)
	}
	cell, _ := d.Symbol("cell")
	if len(cell.Calls) != 1 || cell.Calls[0].Name != "t1" {
		t.Fatalf("cell calls = %v", cell.Calls)
	}
	if cell.Calls[0].T.Trans != geom.Pt(1000, 1000) {
		t.Fatalf("call transform = %v", cell.Calls[0].T)
	}
	wire := cell.Elements[0]
	if wire.Kind != layout.KindWire || wire.Net != "out" || wire.Width != 500 {
		t.Fatalf("wire = %+v", wire)
	}
	st := d.Stats()
	if st.FlatDevices != 2 {
		t.Fatalf("flat devices = %d", st.FlatDevices)
	}
}

func TestParseCheckedDevice(t *testing.T) {
	src := `DS 1; 9 odd; 9D special-dev CHK; L ND; B 100 100 0 0; DF; E`
	tc := tech.NMOS()
	tc.AddDevice("special-dev", tech.DeviceSpec{Class: "resistor"})
	d, err := Parse(src, tc, "x")
	if err != nil {
		t.Fatal(err)
	}
	s, _ := d.Symbol("odd")
	if !s.Checked {
		t.Fatal("CHK flag lost")
	}
}

func TestParseTransforms(t *testing.T) {
	src := `
DS 1; 9 leaf; L ND; B 200 100 100 50; DF;
DS 2; 9 top;
C 1 R 0 1 T 1000 0;
C 1 M X T 0 1000;
C 1 M Y R -1 0;
DF; E`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	top, _ := d.Symbol("top")
	if len(top.Calls) != 3 {
		t.Fatalf("calls = %d", len(top.Calls))
	}
	// leaf box is R(0,0,200,100).
	// Call 0: rotate 90 then translate (1000,0): box -> R(900,0,1000,200).
	if got := top.Calls[0].T.ApplyRect(geom.R(0, 0, 200, 100)); got != geom.R(900, 0, 1000, 200) {
		t.Fatalf("call0 box = %v", got)
	}
	// Call 1: mirror X (negate x) then translate (0,1000): -> R(-200,1000,0,1100).
	if got := top.Calls[1].T.ApplyRect(geom.R(0, 0, 200, 100)); got != geom.R(-200, 1000, 0, 1100) {
		t.Fatalf("call1 box = %v", got)
	}
	// Call 2: mirror Y then rotate 180: (x,y)->(x,-y)->(-x,y): same as M X.
	if got := top.Calls[2].T.ApplyRect(geom.R(0, 0, 200, 100)); got != geom.R(-200, 0, 0, 100) {
		t.Fatalf("call2 box = %v", got)
	}
}

func TestParseForwardReference(t *testing.T) {
	src := `
DS 2; 9 top; C 1 T 10 10; DF;
DS 1; 9 leaf; L ND; B 10 10 0 0; DF;
E`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Last-defined symbol is leaf, but leaf is called by top... the top
	// heuristic picks the last DEFINED symbol; here that is "leaf".
	// Forward references must still resolve.
	topSym, _ := d.Symbol("top")
	if len(topSym.Calls) != 1 || topSym.Calls[0].Target.Name != "leaf" {
		t.Fatalf("forward call unresolved: %v", topSym.Calls)
	}
}

func TestParseTopLevelContent(t *testing.T) {
	src := `
DS 1; 9 leaf; L ND; B 10 10 5 5; DF;
C 1 T 100 0;
L NM; B 300 300 0 0;
E`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Top.Name != "(top)" {
		t.Fatalf("top = %q", d.Top.Name)
	}
	if len(d.Top.Calls) != 1 || len(d.Top.Elements) != 1 {
		t.Fatalf("top content: %d calls %d elements", len(d.Top.Calls), len(d.Top.Elements))
	}
}

func TestParseDSScale(t *testing.T) {
	src := `DS 1 2 1; 9 s; L ND; B 100 100 50 50; DF; E`
	d, err := Parse(src, tech.NMOS(), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Distances double: the 100-box centered at (50,50) becomes a 200-box
	// centered at (100,100).
	s, _ := d.Symbol("s")
	if got := s.Elements[0].Box; got != geom.R(0, 0, 200, 200) {
		t.Fatalf("scaled box = %v", got)
	}
	// Non-divisible scale must fail.
	if _, err := Parse(`DS 1 1 3; L ND; B 100 100 50 50; DF; E`, tech.NMOS(), "x"); err == nil {
		t.Fatal("non-divisible scale should error")
	}
}

func TestParseErrors(t *testing.T) {
	tc := tech.NMOS()
	cases := []struct {
		name, src, wantSub string
	}{
		{"no layer", `DS 1; B 10 10 0 0; DF; E`, "before any L"},
		{"bad layer", `DS 1; L ZZ; DF; E`, "unknown layer"},
		{"unterminated DS", `DS 1; L ND;`, "unterminated"},
		{"undefined call", `DS 1; C 9; DF; E`, "undefined symbol"},
		{"nested DS", `DS 1; DS 2; DF; DF; E`, "nested"},
		{"redefined", `DS 1; DF; DS 1; DF; E`, "redefined"},
		{"rotation", `DS 1; 9 a; L ND; B 4 4 0 0; DF; DS 2; C 1 R 1 1; DF; E`, "non-Manhattan rotation"},
		{"roundflash", `DS 1; R 100 0 0; DF; E`, "round flash"},
		{"empty", `E`, "empty design"},
		{"odd wire", `DS 1; L ND; W 10 0 0 5; DF; E`, "point pairs"},
		{"comment", `(unterminated`, "comment"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src, tc, "x"); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	tc := tech.NMOS()
	orig, err := Parse(sampleCIF, tc, "x")
	if err != nil {
		t.Fatal(err)
	}
	text, err := Write(orig, tc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text, tc, "y")
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	// Structural equivalence.
	so, sb := orig.Stats(), back.Stats()
	if so != sb {
		t.Fatalf("stats changed: %+v vs %+v", so, sb)
	}
	if back.Top.Name != orig.Top.Name {
		t.Fatalf("top changed: %q vs %q", back.Top.Name, orig.Top.Name)
	}
	// Geometric equivalence: identical flattened layer regions.
	ro, err := orig.FlatLayerRegions(tc.NumLayers())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := back.FlatLayerRegions(tc.NumLayers())
	if err != nil {
		t.Fatal(err)
	}
	for l := range ro {
		if !ro[l].Equal(rb[l]) {
			t.Fatalf("layer %d geometry changed", l)
		}
	}
	// Net and device annotations survive.
	cell, _ := back.Symbol("cell")
	if cell.Elements[0].Net != "out" {
		t.Fatalf("net lost: %+v", cell.Elements[0])
	}
	tran, _ := back.Symbol("tran")
	if tran.DeviceType != "nmos-enh" {
		t.Fatal("device type lost")
	}
}

func TestWriteOddBoxAsPolygon(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("odd")
	s := d.MustSymbol("s")
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	s.AddBox(diff, geom.R(0, 0, 7, 9), "")
	d.Top = s
	text, err := Write(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "P 0 0 7 0 7 9 0 9;") {
		t.Fatalf("odd box not written as polygon:\n%s", text)
	}
	back, err := Parse(text, tc, "x")
	if err != nil {
		t.Fatal(err)
	}
	r, _ := back.FlatLayerRegions(tc.NumLayers())
	if r[diff].Area() != 63 {
		t.Fatalf("area = %d", r[diff].Area())
	}
}

func TestRoundTripWithTransforms(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("tr")
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	leaf := d.MustSymbol("leaf")
	leaf.AddBox(diff, geom.R(0, 0, 200, 100), "")
	top := d.MustSymbol("top")
	for o := geom.Orient(0); o < 8; o++ {
		top.AddCall(leaf, geom.NewTransform(o, geom.Pt(int64(o)*1000, 500)), "")
	}
	d.Top = top
	text, err := Write(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text, tc, "x")
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	ro, _ := d.FlatLayerRegions(tc.NumLayers())
	rb, _ := back.FlatLayerRegions(tc.NumLayers())
	if !ro[diff].Equal(rb[diff]) {
		t.Fatalf("transform geometry changed:\n%s", text)
	}
}

func TestFieldsTokenizer(t *testing.T) {
	got := fields("B 20,30 -5 7")
	want := []string{"B", "20", "30", "-5", "7"}
	if len(got) != len(want) {
		t.Fatalf("fields = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("fields = %v", got)
		}
	}
}
