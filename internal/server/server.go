package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/cif"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Config tunes the daemon. The zero value gets sensible defaults.
type Config struct {
	// MaxSessions caps live sessions; creating one past the cap evicts the
	// least-recently-used session (default 64).
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long (default 30m;
	// negative disables idle eviction).
	IdleTTL time.Duration
	// Debounce is the per-session edit-coalescing window: a recheck runs
	// this long after the last edit batch, or on the next report request,
	// whichever comes first (default 25ms; negative disables the timer,
	// leaving report requests as the only flush trigger).
	Debounce time.Duration
	// Workers is the engines' interaction-stage goroutine count
	// (core.Options.Workers; 0 = all cores).
	Workers int

	// CheckTimeout bounds engine runs triggered by a request — the cold
	// check on create and the flush a report forces. On expiry the
	// request gets 503 + Retry-After (0 = no deadline).
	CheckTimeout time.Duration
	// EditTimeout bounds edit-batch requests (0 = no deadline).
	EditTimeout time.Duration
	// MaxInflight is the engine-run concurrency cap fronting cold checks
	// and flushes (default: NumCPU, minimum 2).
	MaxInflight int
	// QueueDepth is how many engine runs may wait for a slot before new
	// arrivals are rejected with 429 (default 64; negative = 0).
	QueueDepth int
	// MaxBodyBytes caps request bodies on the POST endpoints; oversize
	// requests get 413 (default 64 MiB).
	MaxBodyBytes int64

	// ReportHistory is the per-session bounded ring of recent report
	// states the delta path (GET /v1/sessions/{id}/report?since=F) can
	// diff against (default 8; negative disables deltas — every ?since=
	// request answers with a reset).
	ReportHistory int

	// StateDir, when set, enables crash-safe session snapshots: restore
	// on boot (RestoreFromDisk), snapshot on Close, periodic snapshots
	// every SnapshotEvery, and snapshot-then-close eviction.
	StateDir string
	// SnapshotEvery is the periodic snapshot interval (0 disables the
	// periodic sweep; Close still snapshots).
	SnapshotEvery time.Duration

	// TestHooks registers the fault-injection endpoint
	// (POST /v1/sessions/{id}/inject). Never enable it in production.
	TestHooks bool
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 30 * time.Minute
	}
	if c.Debounce == 0 {
		c.Debounce = 25 * time.Millisecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.NumCPU()
		if c.MaxInflight < 2 {
			c.MaxInflight = 2
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.ReportHistory == 0 {
		c.ReportHistory = 8
	}
	if c.ReportHistory < 0 {
		c.ReportHistory = 0
	}
	return c
}

// serverStats are the daemon-wide counters behind GET /v1/stats.
type serverStats struct {
	PanicsRecovered   uint64
	SessionsPoisoned  uint64
	EvictionsLRU      uint64
	EvictionsIdle     uint64
	SnapshotsSaved    uint64
	SnapshotsRestored uint64
	DeltasServed      uint64
	DeltaResets       uint64
}

// Server is the check service: a session table behind an http.Handler.
// Handler methods are safe for concurrent use; per-session work is
// serialized by the session's own mutex, so requests against distinct
// sessions proceed in parallel. Engine runs are admitted through a
// bounded queue (Config.MaxInflight/QueueDepth), and every handler and
// timer callback runs under panic recovery that quarantines only the
// offending session, never the process.
type Server struct {
	cfg Config
	mux *http.ServeMux
	adm *admission

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	stats    serverStats

	// now is the clock, injectable for eviction tests.
	now func() time.Time

	start    time.Time
	stop     chan struct{}
	stopOnce sync.Once
}

// New creates a Server. Call Close when done to stop the background
// goroutines (idle janitor, periodic snapshots); if Config.StateDir is
// set, call RestoreFromDisk before serving to resurrect saved sessions.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		adm:      newAdmission(cfg.MaxInflight, cfg.QueueDepth),
		sessions: make(map[string]*Session),
		now:      time.Now,
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/sessions/{id}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/sessions/{id}/edits", s.handleEdits)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /v1/stats", s.handleServerStats)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshotNow)
	if cfg.TestHooks {
		mux.HandleFunc("POST /v1/sessions/{id}/inject", s.handleInject)
	}
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// The unprefixed paths are deprecated for one release: thin 308
	// redirects to /v1 (308, not 301, so POST/DELETE keep their method and
	// body). See README's Operations section for the removal schedule.
	for _, p := range []string{"/sessions", "/sessions/", "/healthz", "/stats", "/snapshot"} {
		mux.HandleFunc(p, redirectV1)
	}
	s.mux = mux
	if s.cfg.IdleTTL > 0 {
		go s.janitor()
	}
	if s.cfg.StateDir != "" && s.cfg.SnapshotEvery > 0 {
		go s.snapshotLoop()
	}
	return s
}

// redirectV1 answers a deprecated unprefixed path with a 308 to the same
// path under /v1, query string included.
func redirectV1(w http.ResponseWriter, r *http.Request) {
	target := "/v1" + r.URL.EscapedPath()
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
}

// ServeHTTP implements http.Handler. The outermost recovery is the
// process's last line of defense: a panic that escapes a handler (or the
// mux itself) is answered with a 500 and the daemon keeps serving.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.notePanic()
			// Best effort: if the handler already wrote headers this is a
			// lost cause for this response, but the process survives.
			writeErrClass(w, http.StatusInternalServerError, ClassPanic,
				fmt.Errorf("internal panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Close stops the background goroutines, snapshots every session when a
// state directory is configured (the graceful-shutdown snapshot), and
// closes every session.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.cfg.StateDir != "" {
		s.SnapshotAll(s.now())
	}
	s.mu.Lock()
	victims := make([]*Session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		victims = append(victims, sess)
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	for _, sess := range victims {
		sess.close()
	}
}

// janitor periodically evicts idle sessions.
func (s *Server) janitor() {
	tick := time.NewTicker(s.cfg.IdleTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.SweepIdle(s.now())
		}
	}
}

// SweepIdle evicts every session idle since before now - IdleTTL and
// returns how many it removed. Eviction is snapshot-then-close: with a
// state directory configured the victim's state is persisted before the
// session dies, so an eviction never loses acknowledged edits.
func (s *Server) SweepIdle(now time.Time) int {
	if s.cfg.IdleTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.IdleTTL)
	s.mu.Lock()
	var victims []*Session
	for id, sess := range s.sessions {
		if sess.lastUsed.Before(cutoff) {
			victims = append(victims, sess)
			delete(s.sessions, id)
		}
	}
	s.stats.EvictionsIdle += uint64(len(victims))
	s.mu.Unlock()
	for _, sess := range victims {
		s.retire(sess)
	}
	return len(victims)
}

// retire persists a victim's state (best effort) and closes it —
// "snapshot, then close". Both steps serialize on the session mutex
// after any in-flight request; a request that raced the eviction gets a
// clean 410 from the closed session, never a torn state.
func (s *Server) retire(sess *Session) {
	if s.cfg.StateDir != "" {
		if n, err := s.snapshotSession(sess, s.now()); err == nil && n > 0 {
			s.mu.Lock()
			s.stats.SnapshotsSaved++
			s.mu.Unlock()
		}
	}
	sess.close()
}

// lookup fetches a session and bumps its LRU stamp.
func (s *Server) lookup(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if ok {
		sess.lastUsed = s.now()
	}
	return sess, ok
}

// register inserts a new session, evicting the least-recently-used one if
// the table is full.
func (s *Server) register(sess *Session) {
	s.mu.Lock()
	var victim *Session
	if len(s.sessions) >= s.cfg.MaxSessions {
		var oldest *Session
		for _, cand := range s.sessions {
			if oldest == nil || cand.lastUsed.Before(oldest.lastUsed) {
				oldest = cand
			}
		}
		if oldest != nil {
			victim = oldest
			delete(s.sessions, oldest.ID)
			s.stats.EvictionsLRU++
		}
	}
	s.sessions[sess.ID] = sess
	s.mu.Unlock()
	if victim != nil {
		s.retire(victim)
	}
}

func (s *Server) notePanic() {
	s.mu.Lock()
	s.stats.PanicsRecovered++
	s.mu.Unlock()
}

// guardSession runs a session operation under panic recovery: a panic
// poisons that session only and comes back as a 500 with class "panic";
// every other session, the admission queue, and the process itself are
// untouched.
func (s *Server) guardSession(sess *Session, fn func() *svcError) (serr *svcError) {
	defer func() {
		if rec := recover(); rec != nil {
			s.notePanic()
			s.mu.Lock()
			s.stats.SessionsPoisoned++
			s.mu.Unlock()
			sess.poisonWith(fmt.Errorf("panic: %v", rec))
			serr = errf(http.StatusInternalServerError, ClassPanic,
				"session %s: recovered panic: %v (session poisoned)", sess.ID, rec)
		}
	}()
	return fn()
}

// opCtx derives the request context with the configured deadline.
func opCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// decodeBody decodes a JSON request body under the size cap, mapping
// oversize bodies to 413 and malformed JSON to 400.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) *svcError {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, ClassTooLarge,
				"request body over %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, ClassBadRequest, "decode request: %v", err)
	}
	return nil
}

// CreateRequest creates a session from a CIF source and a technology. One
// of Tech (a registered technology name) or Deck (rule-deck source text)
// selects the process. Name labels the session (and, when DesignName is
// empty, the design) for listings and client lookup.
type CreateRequest struct {
	Name       string `json:"name,omitempty"`
	DesignName string `json:"design_name,omitempty"`
	CIF        string `json:"cif"`
	Tech       string `json:"tech,omitempty"`
	Deck       string `json:"deck,omitempty"`
	// Metric selects the spacing metric: "" or "euclid", or "ortho".
	Metric string `json:"metric,omitempty"`
	// NoConstruct skips the non-geometric construction rules.
	NoConstruct bool `json:"noconstruct,omitempty"`
}

// CreateResponse returns the new session's id and the initial (cold)
// report.
type CreateResponse struct {
	ID     string  `json:"id"`
	Report *Report `json:"report"`
}

// resolveTech loads the request's technology.
func resolveTech(req *CreateRequest) (*tech.Technology, error) {
	if req.Deck != "" {
		d, err := deck.Parse(req.Deck)
		if err != nil {
			return nil, err
		}
		probs := tech.ValidateDeck(d, device.Classes())
		if errs := deck.Errors(probs); len(errs) > 0 {
			return nil, fmt.Errorf("deck: %v (%d problems total)", errs[0], len(probs))
		}
		return tech.FromDeck(d)
	}
	name := req.Tech
	if name == "" {
		name = "nmos"
	}
	fn, ok := tech.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown technology %q", name)
	}
	return fn(), nil
}

// resolveCreate resolves a create request into the technology and check
// options — shared between the create handler and snapshot restore so a
// restored session is configured exactly like the original.
func resolveCreate(req *CreateRequest, workers int) (*tech.Technology, core.Options, error) {
	tc, err := resolveTech(req)
	if err != nil {
		return nil, core.Options{}, err
	}
	opts := core.Options{Workers: workers, SkipConstruction: req.NoConstruct}
	switch req.Metric {
	case "", "euclid":
	case "ortho":
		opts.Metric = core.Orthogonal
	default:
		return nil, core.Options{}, fmt.Errorf("unknown metric %q", req.Metric)
	}
	return tc, opts, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if serr := s.decodeBody(w, r, &req); serr != nil {
		writeSvcErr(w, serr)
		return
	}
	if req.CIF == "" {
		writeSvcErr(w, errf(http.StatusBadRequest, ClassBadRequest, "empty cif source"))
		return
	}
	tc, opts, err := resolveCreate(&req, s.cfg.Workers)
	if err != nil {
		writeSvcErr(w, errf(http.StatusBadRequest, ClassBadRequest, "%v", err))
		return
	}
	designName := req.DesignName
	if designName == "" {
		designName = req.Name
	}
	if designName == "" {
		designName = "design"
	}
	d, err := cif.Parse(req.CIF, tc, designName)
	if err != nil {
		writeSvcErr(w, errf(http.StatusBadRequest, ClassBadRequest, "parse cif: %v", err))
		return
	}

	ctx, cancel := opCtx(r, s.cfg.CheckTimeout)
	defer cancel()
	// The cold check is the most expensive thing the daemon does; it goes
	// through the admission queue like every other engine run.
	if serr := s.adm.acquire(ctx); serr != nil {
		writeSvcErr(w, serr)
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.mu.Unlock()

	origin := sessionOrigin{Tech: req.Tech, Deck: req.Deck, Metric: req.Metric, NoConstruct: req.NoConstruct}
	sess, err := newSession(ctx, id, req.Name, d, tc, opts, origin, s.adm, s.cfg.Debounce, s.cfg.ReportHistory, s.now())
	s.adm.release()
	if err != nil {
		writeSvcErr(w, classifyRunErr(fmt.Errorf("initial check: %w", err)))
		return
	}
	// Build the response before publishing the session: the moment it is
	// registered, concurrent edits may mutate rep and the engine counters
	// under the session lock, which this handler no longer holds.
	resp := CreateResponse{ID: id, Report: BuildReport(sess.rep, sess.eng)}
	s.register(sess)
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		infos = append(infos, sess.info())
	}
	// Stable order for scripts: by numeric id via the sN format.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && lessID(infos[j].ID, infos[j-1].ID); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

// lessID orders "sN" ids numerically.
func lessID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// EditRequest is one edit batch.
type EditRequest struct {
	Edits []layout.Edit `json:"edits"`
}

// EditResponse acknowledges an applied batch. Generation is the session's
// total batch count; the report endpoint always reflects every batch
// acknowledged before the request.
type EditResponse struct {
	Applied    int    `json:"applied"`
	Generation int    `json:"generation"`
	Error      string `json:"error,omitempty"`
}

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeSvcErr(w, errf(http.StatusNotFound, ClassNotFound, "no session %q", r.PathValue("id")))
		return
	}
	sess.inflight.Add(1)
	defer sess.inflight.Add(-1)
	var req EditRequest
	if serr := s.decodeBody(w, r, &req); serr != nil {
		writeSvcErr(w, serr)
		return
	}
	if len(req.Edits) == 0 {
		writeSvcErr(w, errf(http.StatusBadRequest, ClassBadRequest, "empty edit batch"))
		return
	}
	_, cancel := opCtx(r, s.cfg.EditTimeout)
	defer cancel()
	var resp EditResponse
	serr := s.guardSession(sess, func() *svcError {
		applied, gen, serr := sess.applyEdits(req.Edits)
		resp = EditResponse{Applied: applied, Generation: gen}
		return serr
	})
	if serr != nil {
		if serr.class == ClassBadRequest {
			// The successful prefix is applied and will be rechecked;
			// report partial application so the client can reconcile.
			resp.Error = serr.Error()
			writeJSON(w, http.StatusBadRequest, resp)
			return
		}
		writeSvcErr(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeSvcErr(w, errf(http.StatusNotFound, ClassNotFound, "no session %q", r.PathValue("id")))
		return
	}
	sess.inflight.Add(1)
	defer sess.inflight.Add(-1)
	ctx, cancel := opCtx(r, s.cfg.CheckTimeout)
	defer cancel()
	if r.URL.Query().Has("since") {
		// Delta mode: ?since=<fingerprint> answers with added/removed
		// against that base; ?since= (empty) is the cold-client form and
		// always resets.
		var delta *ReportDelta
		serr := s.guardSession(sess, func() *svcError {
			var serr *svcError
			delta, serr = sess.reportDelta(ctx, r.URL.Query().Get("since"))
			return serr
		})
		if serr != nil {
			writeSvcErr(w, serr)
			return
		}
		s.mu.Lock()
		s.stats.DeltasServed++
		if delta.Reset {
			s.stats.DeltaResets++
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, delta)
		return
	}
	var rep *Report
	serr := s.guardSession(sess, func() *svcError {
		var serr *svcError
		rep, serr = sess.report(ctx)
		return serr
	})
	if serr != nil {
		writeSvcErr(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeSvcErr(w, errf(http.StatusNotFound, ClassNotFound, "no session %q", r.PathValue("id")))
		return
	}
	st, serr := sess.statsSnapshot()
	if serr != nil {
		writeSvcErr(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		writeSvcErr(w, errf(http.StatusNotFound, ClassNotFound, "no session %q", id))
		return
	}
	sess.close()
	s.removeSnapshot(id)
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: id})
}

// DeleteResponse acknowledges a session deletion.
type DeleteResponse struct {
	Deleted string `json:"deleted"`
}

// InjectRequest arms the fault-injection test hook on one session (only
// routed when Config.TestHooks is set): the next SlowCount engine runs
// sleep SlowMS milliseconds (context-respecting — the way to simulate a
// recheck blowing its deadline), and the next PanicCount session
// operations panic (the way to prove quarantine).
type InjectRequest struct {
	SlowMS     int `json:"slow_ms,omitempty"`
	SlowCount  int `json:"slow_count,omitempty"`
	PanicCount int `json:"panic_count,omitempty"`
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeSvcErr(w, errf(http.StatusNotFound, ClassNotFound, "no session %q", r.PathValue("id")))
		return
	}
	var req InjectRequest
	if serr := s.decodeBody(w, r, &req); serr != nil {
		writeSvcErr(w, serr)
		return
	}
	slowN := req.SlowCount
	if slowN == 0 && req.SlowMS > 0 {
		slowN = 1
	}
	if serr := sess.setInject(time.Duration(req.SlowMS)*time.Millisecond, slowN, req.PanicCount); serr != nil {
		writeSvcErr(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"armed": true})
}

// ServerStatsResponse is the GET /stats payload: global gauges and
// counters for capacity planning and the load harness's bounded-resource
// assertions.
type ServerStatsResponse struct {
	Sessions        int   `json:"sessions"`
	SessionsDirty   int   `json:"sessions_dirty"`
	RequestInflight int32 `json:"request_inflight"` // sum of per-session gauges

	InflightChecks int    `json:"inflight_checks"` // engine runs holding a slot
	QueuedChecks   int    `json:"queued_checks"`   // engine runs waiting for a slot
	MaxInflight    int    `json:"max_inflight"`
	QueueDepth     int    `json:"queue_depth"`
	Admitted       uint64 `json:"admitted"`
	Rejected429    uint64 `json:"rejected_429"` // queue full
	Rejected503    uint64 `json:"rejected_503"` // deadline expired while queued

	PanicsRecovered   uint64 `json:"panics_recovered"`
	SessionsPoisoned  uint64 `json:"sessions_poisoned"`
	EvictionsLRU      uint64 `json:"evictions_lru"`
	EvictionsIdle     uint64 `json:"evictions_idle"`
	SnapshotsSaved    uint64 `json:"snapshots_saved"`
	SnapshotsRestored uint64 `json:"snapshots_restored"`

	// DeltasServed counts ?since= report responses; DeltaResets the subset
	// that degraded to a reset (full list) because the base fingerprint
	// was unknown or evicted.
	DeltasServed uint64 `json:"deltas_served"`
	DeltaResets  uint64 `json:"delta_resets"`

	Goroutines    int    `json:"goroutines"`
	HeapAllocByte uint64 `json:"heap_alloc_bytes"`
	UptimeNS      int64  `json:"uptime_ns"`
}

func (s *Server) handleServerStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	st := s.stats
	s.mu.Unlock()

	resp := ServerStatsResponse{
		Sessions:          len(sessions),
		MaxInflight:       s.cfg.MaxInflight,
		QueueDepth:        s.cfg.QueueDepth,
		PanicsRecovered:   st.PanicsRecovered,
		SessionsPoisoned:  st.SessionsPoisoned,
		EvictionsLRU:      st.EvictionsLRU,
		EvictionsIdle:     st.EvictionsIdle,
		SnapshotsSaved:    st.SnapshotsSaved,
		SnapshotsRestored: st.SnapshotsRestored,
		DeltasServed:      st.DeltasServed,
		DeltaResets:       st.DeltaResets,
		Goroutines:        runtime.NumGoroutine(),
		UptimeNS:          time.Since(s.start).Nanoseconds(),
	}
	for _, sess := range sessions {
		resp.RequestInflight += sess.inflight.Load()
		// TryLock: the stats endpoint must never block behind a session
		// mid-flush. A busy session is by definition processing edits, so
		// counting it dirty is accurate enough for a gauge.
		if sess.mu.TryLock() {
			if sess.dirty {
				resp.SessionsDirty++
			}
			sess.mu.Unlock()
		} else {
			resp.SessionsDirty++
		}
	}
	inflight, queued, admitted, rejFull, rejWait := s.adm.gauges()
	resp.InflightChecks, resp.QueuedChecks = inflight, queued
	resp.Admitted, resp.Rejected429, resp.Rejected503 = admitted, rejFull, rejWait
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	resp.HeapAllocByte = ms.HeapAlloc
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
