// Package perfbench defines the named kernel benchmarks behind the repo's
// performance trajectory artifact (BENCH_<date>.json, written by
// `drcbench -json`). The suite mirrors the hot paths the README's
// Performance section tracks: region algebra, netlist extraction, the
// cold engine check, and the warm recheck loop.
//
// The functions use testing.Benchmark, so any main package can produce a
// machine-readable perf snapshot without a throwaway test harness.
package perfbench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flat"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Result is one benchmark's snapshot entry.
type Result struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	N        int     `json:"iterations"`
}

// Snapshot is the BENCH_<date>.json document.
type Snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Workers   int      `json:"workers"` // engine worker setting (0 = all cores)
	Results   []Result `json:"results"`
}

// engineWorkers is the Options.Workers value the engine benchmarks run
// with; Run sets it from the caller's -workers so snapshots record the
// configuration they actually measured.
var engineWorkers int

// NamedBench is one entry of the suite.
type NamedBench struct {
	Name string
	F    func(b *testing.B)
}

// Suite returns the named benchmarks in canonical order. The names match
// the bench_test.go benchmarks they mirror, so `go test -bench` output and
// the JSON snapshots line up.
func Suite() []NamedBench {
	return []NamedBench{
		{"RegionUnion", benchRegionUnion},
		{"RegionBulkUnion", benchRegionBulkUnion},
		{"RegionErodeDilate", benchRegionErodeDilate},
		{"NetlistExtraction", benchNetlistExtraction},
		{"CheckCold", benchCheckCold},
		{"CheckColdLarge", benchCheckColdLarge},
		{"CheckColdArray", benchCheckColdArray},
		{"RecheckOneSymbol", benchRecheckOneSymbol},
		{"RecheckOneBox", benchRecheckOneBox},
		{"FlatCheck", benchFlatCheck},
	}
}

// Run executes the whole suite and assembles a snapshot. workers is the
// engine interaction/prebuild worker count (0 = all cores, 1 = serial
// oracle), recorded in the snapshot.
func Run(now time.Time, workers int) Snapshot {
	engineWorkers = workers
	snap := Snapshot{
		Date:      now.Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   workers,
	}
	for _, nb := range Suite() {
		r := testing.Benchmark(nb.F)
		snap.Results = append(snap.Results, Result{
			Name:     nb.Name,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
			N:        r.N,
		})
	}
	return snap
}

// JSON renders the snapshot.
func (s Snapshot) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Filename returns the canonical snapshot name for its date.
func (s Snapshot) Filename() string { return fmt.Sprintf("BENCH_%s.json", s.Date) }

func benchRects(n int, span, size int64) []geom.Rect {
	rng := rand.New(rand.NewSource(3))
	rs := make([]geom.Rect, n)
	for i := range rs {
		x, y := int64(rng.Intn(int(span))), int64(rng.Intn(int(span)))
		rs[i] = geom.R(x, y, x+int64(100+rng.Intn(int(size))), y+int64(100+rng.Intn(int(size))))
	}
	return rs
}

func benchRegionUnion(b *testing.B) {
	rects := benchRects(1000, 50000, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = geom.FromRects(rects)
	}
}

// benchRegionBulkUnion matches bench_test.go's BenchmarkRegionBulkUnion
// workload exactly (one seed-6 stream, 16 distinct regions) so the JSON
// snapshot and `go test -bench` numbers track the same kernel.
func benchRegionBulkUnion(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	regs := make([]geom.Region, 16)
	for k := range regs {
		rects := make([]geom.Rect, 100)
		for i := range rects {
			x, y := int64(rng.Intn(20000)), int64(rng.Intn(20000))
			rects[i] = geom.R(x, y, x+int64(100+rng.Intn(1500)), y+int64(100+rng.Intn(1500)))
		}
		regs[k] = geom.FromRects(rects).Translate(geom.Point{X: int64(k) * 977, Y: int64(k) * 1493})
	}
	var dst geom.Region
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		geom.BulkUnionInto(&dst, regs)
	}
}

func benchRegionErodeDilate(b *testing.B) {
	reg := geom.FromRects(benchRects(200, 20000, 2000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reg.Erode(250).Dilate(250)
	}
}

func benchNetlistExtraction(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "bench", 8, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := netlist.Extract(chip.Design, tc); err != nil {
			b.Fatal(err)
		}
	}
}

func coldChip(rows, cols int) (*tech.Technology, *workload.Chip) {
	tc := tech.NMOS()
	chip := workload.NewChipUnique(tc, "perf", rows, cols)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	for r := 0; ; r++ {
		s, ok := chip.Design.Symbol(fmt.Sprintf("row%d", r))
		if !ok {
			break
		}
		s.AddBox(metalL, geom.R(-15000, 0, -14250, 1000), "GND")
	}
	return tc, chip
}

func benchCheckColdSize(b *testing.B, rows, cols int) {
	tc, chip := coldChip(rows, cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.NewEngine(tc, core.Options{Workers: engineWorkers}).Check(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
	}
}

func benchCheckCold(b *testing.B)      { benchCheckColdSize(b, 32, 32) }
func benchCheckColdLarge(b *testing.B) { benchCheckColdSize(b, 64, 64) }

func benchRecheckOneSymbol(b *testing.B) {
	tc, chip := coldChip(32, 32)
	var rows []*layout.Symbol
	for r := 0; ; r++ {
		s, ok := chip.Design.Symbol(fmt.Sprintf("row%d", r))
		if !ok {
			break
		}
		rows = append(rows, s)
	}
	eng := core.NewEngine(tc, core.Options{Workers: engineWorkers})
	if _, err := eng.Check(chip.Design); err != nil {
		b.Fatal(err)
	}
	step := int64(250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 1 {
			step = -step
		}
		s := rows[i%len(rows)]
		e := s.Elements[len(s.Elements)-1]
		e.Box.Y1 += step
		e.Box.Y2 += step
		s.Touch()
		rep, err := eng.Recheck(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
	}
}

// benchCheckColdArray mirrors bench_test.go's BenchmarkCheckColdArray:
// the uniform 64×64 array (one shared row definition), where the
// instance-context dedup derives 63 of the 64 row embeddings by pure
// translation instead of rebuilding them.
func benchCheckColdArray(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "arr", 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.NewEngine(tc, core.Options{Workers: engineWorkers}).Check(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("chip not clean")
		}
	}
}

// benchRecheckOneBox mirrors bench_test.go's BenchmarkRecheckOneBox: the
// windowed recheck of one isolated probe move on the uniform 64×64 array.
// The anonymous probe floats, so the steady-state report is exactly its
// one NET.FANOUT error.
func benchRecheckOneBox(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "arr", 64, 64)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	top := chip.Design.Top
	top.AddBox(metalL, geom.R(-15000, 0, -14250, 1000), "")
	eng := core.NewEngine(tc, core.Options{Workers: engineWorkers})
	rep, err := eng.Check(chip.Design)
	if err != nil {
		b.Fatal(err)
	}
	if n := len(rep.Violations); n != 1 {
		b.Fatalf("expected exactly the probe's fanout error, got %d violations", n)
	}
	dy := int64(250)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layout.ApplyEdit(chip.Design, tc, layout.Edit{
			Op: layout.OpMoveElement, Symbol: top.Name, Index: -1, DY: dy,
		}); err != nil {
			b.Fatal(err)
		}
		dy = -dy
		rep, err := eng.Recheck(chip.Design)
		if err != nil {
			b.Fatal(err)
		}
		if n := len(rep.Violations); n != 1 {
			b.Fatalf("expected exactly the probe's fanout error, got %d violations", n)
		}
	}
	b.StopTimer()
	if !eng.Stats().WindowPatched {
		b.Fatal("window patch path did not engage")
	}
}

func benchFlatCheck(b *testing.B) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "bench", 8, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flat.Check(chip.Design, tc, flat.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
