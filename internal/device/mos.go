package device

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// analyzeMOS models silicon-gate MOS transistors (enhancement and
// depletion): the channel is the poly∩diffusion overlap; poly must extend
// past the channel (the Figure 14 gate overlap, whose absence is the
// unchecked error of Figure 8), diffusion must extend into source and
// drain, depletion devices need the implant to surround the gate, and no
// contact may land on the channel (Figure 7).
func analyzeMOS(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem) {
	poly := roleRegion(sym, tc, spec, tech.RolePoly, tech.NMOSPoly)
	diff := roleRegion(sym, tc, spec, tech.RoleDiffusion, tech.NMOSDiff)
	cut := roleRegion(sym, tc, spec, tech.RoleContact, tech.NMOSContact)
	var probs []Problem

	channel := poly.Intersect(diff)
	if channel.Empty() {
		probs = append(probs, Problem{
			Rule:   "DEV.MOS.NOCHANNEL",
			Detail: "transistor symbol has no poly-diffusion overlap",
			Where:  sym.Bounds(),
		})
		return &Info{SpacingExemptSameNet: true}, probs
	}

	gext := spec.Params["gate-extension"]
	sdext := spec.Params["sd-extension"]

	// Gate extension: the channel dilated along each axis, outside the
	// diffusion, must be covered by poly. For a straight transistor the
	// "wrong" axis contributes an empty requirement, so checking both axes
	// needs no orientation knowledge.
	if gext > 0 {
		needV := channel.DilateXY(0, gext).Subtract(diff)
		needH := channel.DilateXY(gext, 0).Subtract(diff)
		probs = requireCovered(needV, poly, "DEV.MOS.GATEEXT",
			fmt.Sprintf("poly must extend %d past the channel (gate overlap)", gext), probs)
		probs = requireCovered(needH, poly, "DEV.MOS.GATEEXT",
			fmt.Sprintf("poly must extend %d past the channel (gate overlap)", gext), probs)
	}

	// Source/drain extension: channel dilated along each axis, outside the
	// poly, must be covered by diffusion.
	if sdext > 0 {
		needV := channel.DilateXY(0, sdext).Subtract(poly)
		needH := channel.DilateXY(sdext, 0).Subtract(poly)
		probs = requireCovered(needV, diff, "DEV.MOS.SDEXT",
			fmt.Sprintf("diffusion must extend %d past the channel (source/drain)", sdext), probs)
		probs = requireCovered(needH, diff, "DEV.MOS.SDEXT",
			fmt.Sprintf("diffusion must extend %d past the channel (source/drain)", sdext), probs)
	}

	// Depletion implant: must surround the channel.
	if io := spec.Params["implant-overlap"]; io > 0 {
		implant := roleRegion(sym, tc, spec, tech.RoleImplant, tech.NMOSImplant)
		if implant.Empty() {
			probs = append(probs, Problem{
				Rule:   "DEV.MOS.IMPLANT",
				Detail: "depletion transistor has no implant",
				Where:  channel.Bounds(),
			})
		} else {
			probs = requireCovered(channel.Dilate(io), implant, "DEV.MOS.IMPLANT",
				fmt.Sprintf("implant must surround the gate by %d", io), probs)
		}
	}

	// No contact over the active gate (Figure 7) — within the symbol.
	if !cut.Empty() && cut.Overlaps(channel) {
		probs = append(probs, Problem{
			Rule:   "DEV.GATE.CONTACT",
			Detail: "contact cut over the active gate",
			Where:  cut.Intersect(channel).Bounds(),
		})
	}

	// Terminals: gate on poly, then the diffusion parts either side of the
	// channel as source/drain. A working transistor has at least two.
	info := &Info{
		Gate:                 channel,
		SpacingExemptSameNet: true,
	}
	info.Terminals = append(info.Terminals, Terminal{
		Name: "g", Layer: roleID(tc, spec, tech.RolePoly, tech.NMOSPoly), Reg: poly, Node: 0,
	})
	sd := diff.Subtract(channel).Components()
	if len(sd) < 2 {
		probs = append(probs, Problem{
			Rule:   "DEV.MOS.SD",
			Detail: fmt.Sprintf("diffusion splits into %d parts around the channel, need 2", len(sd)),
			Where:  diff.Bounds(),
		})
	}
	for i, part := range sd {
		name := "sd" + string(rune('0'+i%10))
		if i == 0 {
			name = "s"
		} else if i == 1 {
			name = "d"
		}
		info.Terminals = append(info.Terminals, Terminal{
			Name: name, Layer: roleID(tc, spec, tech.RoleDiffusion, tech.NMOSDiff), Reg: part, Node: i + 1,
		})
	}
	return info, probs
}

// analyzePullup models the classic nMOS depletion pullup with a buried
// gate-to-source tie: a vertical diffusion strip, a crossing gate, a poly
// arm running down the diffusion into a buried window that fuses gate and
// source. The channel is the poly∩diffusion overlap OUTSIDE the buried
// window — the paper's "overlap of overlap" rule family in action.
func analyzePullup(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem) {
	poly := roleRegion(sym, tc, spec, tech.RolePoly, tech.NMOSPoly)
	diff := roleRegion(sym, tc, spec, tech.RoleDiffusion, tech.NMOSDiff)
	buried := roleRegion(sym, tc, spec, tech.RoleBuried, tech.NMOSBuried)
	var probs []Problem
	info := &Info{SpacingExemptSameNet: true}

	overlap := poly.Intersect(diff)
	if overlap.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.PU.NOCHANNEL", Detail: "pullup has no poly-diffusion overlap", Where: sym.Bounds(),
		})
		return info, probs
	}
	channel := overlap.Subtract(buried)
	tie := overlap.Intersect(buried)
	if channel.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.PU.NOCHANNEL", Detail: "buried window swallows the whole channel", Where: overlap.Bounds(),
		})
		return info, probs
	}
	if tie.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.PU.NOTIE", Detail: "pullup gate is not tied (no buried window over poly∩diff)", Where: overlap.Bounds(),
		})
	}
	gext := spec.Params["gate-extension"]
	if gext > 0 {
		needV := channel.DilateXY(0, gext).Subtract(diff)
		needH := channel.DilateXY(gext, 0).Subtract(diff)
		probs = requireCovered(needV, poly, "DEV.PU.GATEEXT",
			fmt.Sprintf("poly must extend %d past the channel", gext), probs)
		probs = requireCovered(needH, poly, "DEV.PU.GATEEXT",
			fmt.Sprintf("poly must extend %d past the channel", gext), probs)
	}
	if sdext := spec.Params["sd-extension"]; sdext > 0 {
		needV := channel.DilateXY(0, sdext).Subtract(poly)
		needH := channel.DilateXY(sdext, 0).Subtract(poly)
		probs = requireCovered(needV, diff, "DEV.PU.SDEXT",
			fmt.Sprintf("diffusion must extend %d past the channel", sdext), probs)
		probs = requireCovered(needH, diff, "DEV.PU.SDEXT",
			fmt.Sprintf("diffusion must extend %d past the channel", sdext), probs)
	}
	if io := spec.Params["implant-overlap"]; io > 0 {
		implant := roleRegion(sym, tc, spec, tech.RoleImplant, tech.NMOSImplant)
		if implant.Empty() {
			probs = append(probs, Problem{
				Rule: "DEV.PU.IMPLANT", Detail: "pullup has no implant", Where: channel.Bounds(),
			})
		} else {
			probs = requireCovered(channel.Dilate(io), implant, "DEV.PU.IMPLANT",
				fmt.Sprintf("implant must surround the gate by %d", io), probs)
		}
	}
	if bo := spec.Params["buried-overlap"]; bo > 0 && !tie.Empty() {
		// The window must enclose the tie by bo along at least one axis
		// (the cross direction of the arm; the other axis runs into the
		// channel, where the window must not go).
		missH := tie.DilateXY(bo, 0).Subtract(buried)
		missV := tie.DilateXY(0, bo).Subtract(buried)
		if !missH.Empty() && !missV.Empty() {
			probs = append(probs, Problem{
				Rule:   "DEV.PU.BURIED",
				Detail: fmt.Sprintf("buried window must enclose the tie by %d across the arm", bo),
				Where:  missH.Bounds(),
			})
		}
	}
	cut := roleRegion(sym, tc, spec, tech.RoleContact, tech.NMOSContact)
	if !cut.Empty() && cut.Overlaps(channel) {
		probs = append(probs, Problem{
			Rule: "DEV.GATE.CONTACT", Detail: "contact cut over the pullup gate", Where: cut.Intersect(channel).Bounds(),
		})
	}

	info.Gate = channel
	polyL := roleID(tc, spec, tech.RolePoly, tech.NMOSPoly)
	diffL := roleID(tc, spec, tech.RoleDiffusion, tech.NMOSDiff)
	// Terminal nodes: the diffusion part fused to the gate through the
	// buried tie is the source (node 0, with the poly); the other part is
	// the drain (node 1).
	info.Terminals = append(info.Terminals, Terminal{Name: "g", Layer: polyL, Reg: poly, Node: 0})
	parts := diff.Subtract(channel).Components()
	if len(parts) < 2 {
		probs = append(probs, Problem{
			Rule:   "DEV.PU.SD",
			Detail: fmt.Sprintf("diffusion splits into %d parts around the channel, need 2", len(parts)),
			Where:  diff.Bounds(),
		})
	}
	drainNamed := false
	for _, part := range parts {
		if part.Overlaps(tie) {
			info.Terminals = append(info.Terminals, Terminal{Name: "s", Layer: diffL, Reg: part, Node: 0})
		} else if !drainNamed {
			info.Terminals = append(info.Terminals, Terminal{Name: "d", Layer: diffL, Reg: part, Node: 1})
			drainNamed = true
		}
	}
	return info, probs
}

// AccidentalTransistor reports whether poly and diffusion overlap outside
// any declared transistor symbol — the Figure 8 "accidental transistor"
// that mask-level checkers silently accept because it forms legal-looking
// geometry. The caller passes the poly and diffusion regions of the
// *interconnect* (non-device) elements under test.
func AccidentalTransistor(poly, diff geom.Region) (geom.Region, bool) {
	ov := poly.Intersect(diff)
	return ov, !ov.Empty()
}
