// Package workload generates synthetic chips and pathological layouts for
// the experiments. The paper evaluated on real Caltech/DEC designs that no
// longer exist in machine-readable form; these generators substitute
// parameterized hierarchical designs with *known ground truth*: a clean
// chip is verified clean, and every injected error is recorded, which is
// the only way to measure the real/false/unchecked error economics of the
// paper's Figure 1 at all.
//
// The standard cell is a classic nMOS inverter: enhancement pulldown,
// depletion pullup with buried gate tie, butting contact presenting the
// output on poly, contacts to metal power rails. Its coordinates are
// derived so that the full DIC pipeline reports zero violations — every
// clearance is at exactly the rule distance or better, every connection is
// skeletal — making it a sharp regression test for the checker itself.
package workload

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// CellLibrary holds the shared primitive device symbols of a design.
type CellLibrary struct {
	Tech     *tech.Technology
	Pulldown *layout.Symbol // enhancement transistor, long south gate
	Pullup   *layout.Symbol // depletion pullup with buried tie
	CGnd     *layout.Symbol // diffusion contact
	CVdd     *layout.Symbol // diffusion contact
	CPoly    *layout.Symbol // poly contact (row input heads)
	Butting  *layout.Symbol // butting contact (output diff->poly)
}

// NewCellLibrary creates the shared device symbols in the design.
func NewCellLibrary(d *layout.Design, tc *tech.Technology) *CellLibrary {
	lib := &CellLibrary{Tech: tc}
	// Pulldown: standard channel, but the gate runs 4λ south so the input
	// poly can merge with it 1λ clear of the diffusion.
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	pd := d.MustSymbol("lib.pulldown")
	pd.DeviceType = tech.DevNMOSEnh
	pd.AddBox(polyL, geom.R(-250, -1250, 250, 750), "")
	pd.AddBox(diffL, geom.R(-750, -250, 750, 250), "")
	lib.Pulldown = pd

	lib.Pullup = device.NewPullup(d, tc, "lib.pullup")
	lib.CGnd = device.NewDiffContact(d, tc, "lib.contact-gnd")
	lib.CVdd = device.NewDiffContact(d, tc, "lib.contact-vdd")
	lib.CPoly = device.NewPolyContact(d, tc, "lib.contact-in")
	lib.Butting = device.NewButtingContact(d, tc, "lib.butting")
	return lib
}

// Cell geometry constants (centimicrons, λ=250). The horizontal cell pitch
// makes adjacent cells' chain ports coincide; the vertical pitch separates
// rows with rule-clean margins.
const (
	PitchX = 7000
	PitchY = 8000

	// Chain port positions (wire path endpoints, cell coordinates).
	WestPortX = -2750
	EastPortX = 4250
	PortY     = -1500

	// Rail centerlines.
	GndRailY = -2250
	VddRailY = 3750
)

// NewInverterCell builds the standard inverter cell symbol. The cell
// contains no rails (rows own those); it exposes:
//
//	input:  poly wire ending at (WestPortX, PortY)
//	output: poly wire ending at (EastPortX, PortY) — equals the next
//	        cell's west port at PitchX spacing
//	GND:    metal strap crossing GndRailY at x=-2000
//	VDD:    contact pad under VddRailY at x=2000
func NewInverterCell(d *layout.Design, lib *CellLibrary, name string) *layout.Symbol {
	tc := lib.Tech
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)

	s := d.MustSymbol(name)
	s.AddCall(lib.Pulldown, geom.Identity, "t1")
	s.AddCall(lib.Pullup, geom.Translate(geom.Pt(2000, 2000)), "pu")
	s.AddCall(lib.CGnd, geom.Translate(geom.Pt(-2000, 0)), "cg")
	s.AddCall(lib.CVdd, geom.Translate(geom.Pt(2000, 3750)), "cv")
	s.AddCall(lib.Butting, geom.Translate(geom.Pt(3250, 0)), "bc")

	// Source to ground: diffusion from the pulldown source into the ground
	// contact pad.
	s.AddWire(diffL, 500, "GND", geom.Pt(-2000, 0), geom.Pt(-500, 0))
	// Ground strap: metal from the contact down across the row's GND rail.
	s.AddWire(metalL, 750, "GND", geom.Pt(-2000, 0), geom.Pt(-2000, GndRailY))
	// Output: pulldown drain east to the butting contact, with a tap up
	// into the pullup source.
	s.AddWire(diffL, 500, "", geom.Pt(500, 0), geom.Pt(2750, 0))
	s.AddWire(diffL, 500, "", geom.Pt(2000, 0), geom.Pt(2000, 500))
	// VDD: pullup drain up into the VDD contact pad.
	s.AddWire(diffL, 500, "VDD", geom.Pt(2000, 2500), geom.Pt(2000, 3750))
	// Input: west port, route east below the ground contact, then up and
	// into the long south gate of the pulldown, 1λ clear of the diffusion.
	s.AddWire(polyL, 500, "",
		geom.Pt(WestPortX, PortY), geom.Pt(-750, PortY),
		geom.Pt(-750, -750), geom.Pt(0, -750))
	// Output chain: from the butting contact's poly arm down and east to
	// the east port.
	s.AddWire(polyL, 500, "",
		geom.Pt(3750, 0), geom.Pt(3750, PortY), geom.Pt(EastPortX, PortY))
	return s
}

// NewRow builds a row symbol: cols inverter cells chained west-to-east,
// with a poly-contact input head, and the row's GND and VDD rails.
// rowEastEnd returns the x coordinate the chip's GND trunk runs at.
func NewRow(d *layout.Design, lib *CellLibrary, name string, cell *layout.Symbol, cols int) *layout.Symbol {
	tc := lib.Tech
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)

	row := d.MustSymbol(name)
	for c := 0; c < cols; c++ {
		row.AddCall(cell, geom.Translate(geom.Pt(int64(c)*PitchX, 0)), fmt.Sprintf("c%d", c))
	}
	// Input head: poly contact feeding the first cell's west port.
	row.AddCall(lib.CPoly, geom.Translate(geom.Pt(-4500, PortY)), "head")
	row.AddWire(polyL, 500, "", geom.Pt(-4250, PortY), geom.Pt(WestPortX, PortY))

	east := RowEastEnd(cols)
	// Rails: GND along the bottom out to the east trunk, VDD along the top
	// out to the west trunk.
	row.AddWire(metalL, 750, "GND", geom.Pt(-2750, GndRailY), geom.Pt(east, GndRailY))
	row.AddWire(metalL, 750, "VDD", geom.Pt(VddTrunkX, VddRailY), geom.Pt(int64(cols-1)*PitchX+4250, VddRailY))
	return row
}

// Trunk positions (chip coordinates).
const VddTrunkX = -6500

// RowEastEnd returns the GND trunk x position for a row of cols cells.
func RowEastEnd(cols int) int64 { return int64(cols-1)*PitchX + 6000 }

// Chip assembles rows into a chip with power trunks.
type Chip struct {
	Design *layout.Design
	Lib    *CellLibrary
	Rows   int
	Cols   int
}

// NewChip builds a rows×cols inverter-array chip. All rows share one cell
// and one row definition — the regularity the paper's hierarchical
// checking exploits.
func NewChip(tc *tech.Technology, name string, rows, cols int) *Chip {
	d := layout.NewDesign(name)
	lib := NewCellLibrary(d, tc)
	cell := NewInverterCell(d, lib, "inv")
	row := NewRow(d, lib, "row", cell, cols)

	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	top := d.MustSymbol("chip")
	for r := 0; r < rows; r++ {
		top.AddCall(row, geom.Translate(geom.Pt(0, int64(r)*PitchY)), fmt.Sprintf("r%d", r))
	}
	if rows > 1 {
		// Vertical trunks tie the per-row rails into single nets.
		top.AddWire(metalL, 750, "VDD",
			geom.Pt(VddTrunkX, VddRailY), geom.Pt(VddTrunkX, int64(rows-1)*PitchY+VddRailY))
		east := RowEastEnd(cols)
		top.AddWire(metalL, 750, "GND",
			geom.Pt(east, GndRailY), geom.Pt(east, int64(rows-1)*PitchY+GndRailY))
	}
	d.Top = top
	return &Chip{Design: d, Lib: lib, Rows: rows, Cols: cols}
}

// DeviceCount returns the number of device instances on the chip.
func (c *Chip) DeviceCount() int {
	return c.Design.Stats().FlatDevices
}

// NewChipUnique builds a rows×cols inverter-array chip in which every row
// is its own symbol definition ("row0".."row<n-1>") instead of one shared
// master. The cells inside each row still share one definition. Real
// chips sit between the two extremes — many distinct macro definitions,
// each heavily instanced — and this variant models the many-definitions
// axis: an edit to one row definition leaves the other rows' definitions
// (and their cached per-definition checking artifacts) untouched, which
// is the workload the incremental engine's single-symbol-edit experiments
// measure.
func NewChipUnique(tc *tech.Technology, name string, rows, cols int) *Chip {
	d := layout.NewDesign(name)
	lib := NewCellLibrary(d, tc)
	cell := NewInverterCell(d, lib, "inv")

	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	top := d.MustSymbol("chip")
	for r := 0; r < rows; r++ {
		row := NewRow(d, lib, fmt.Sprintf("row%d", r), cell, cols)
		top.AddCall(row, geom.Translate(geom.Pt(0, int64(r)*PitchY)), fmt.Sprintf("r%d", r))
	}
	if rows > 1 {
		top.AddWire(metalL, 750, "VDD",
			geom.Pt(VddTrunkX, VddRailY), geom.Pt(VddTrunkX, int64(rows-1)*PitchY+VddRailY))
		east := RowEastEnd(cols)
		top.AddWire(metalL, 750, "GND",
			geom.Pt(east, GndRailY), geom.Pt(east, int64(rows-1)*PitchY+GndRailY))
	}
	d.Top = top
	return &Chip{Design: d, Lib: lib, Rows: rows, Cols: cols}
}
