//go:build race

package geom

// raceEnabled reports whether the race detector is instrumenting this
// build; its allocations make AllocsPerRun guards meaningless.
const raceEnabled = true
