package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/tech"
	"repro/internal/workload"
)

// TestCheckContextCanceled proves an already-expired context aborts the
// run before the first stage, and that the engine recovers fully on the
// next run: the post-abort report is fingerprint-identical to a fresh
// cold check.
func TestCheckContextCanceled(t *testing.T) {
	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "ctx", 2, 2)

	eng := NewEngine(tc, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.CheckContext(ctx, chip.Design); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckContext on canceled ctx: err = %v, want context.Canceled", err)
	}

	rep, err := eng.RecheckContext(context.Background(), chip.Design)
	if err != nil {
		t.Fatalf("recheck after abort: %v", err)
	}
	fresh := NewEngine(tc, Options{})
	repFresh, err := fresh.Check(workload.NewCMOSChip(tc, "ctx", 2, 2).Design)
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintDigest(rep) != FingerprintDigest(repFresh) {
		t.Fatal("post-abort recheck diverges from a fresh cold check")
	}
}

// TestCheckContextMidRunAbort cancels between stages: the engine must
// return the context error, and the following run must still be
// fingerprint-identical to cold — the abort may not leave phantom replay
// state behind.
func TestCheckContextMidRunAbort(t *testing.T) {
	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "midrun", 2, 2)

	eng := NewEngine(tc, Options{})
	cold, err := eng.Check(chip.Design)
	if err != nil {
		t.Fatal(err)
	}
	coldFP := FingerprintDigest(cold)

	// Dirty the design, then recheck under a context canceled from a
	// stage callback via the design mutation hook: simplest reliable
	// mid-run cancel is a pre-canceled context after at least one warm
	// run — the stage wrapper checks at every boundary, so the run stops
	// at the first one.
	chip.Design.Top.Touch()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RecheckContext(ctx, chip.Design); err == nil {
		t.Fatal("recheck under canceled ctx succeeded")
	}
	rep, err := eng.Recheck(chip.Design)
	if err != nil {
		t.Fatalf("recovery recheck: %v", err)
	}
	if FingerprintDigest(rep) != coldFP {
		t.Fatal("recovery recheck diverges from the cold fingerprint")
	}
}

// TestEnginePoison: a poisoned engine refuses every run with the reason.
func TestEnginePoison(t *testing.T) {
	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "poison", 1, 1)
	eng := NewEngine(tc, Options{})
	if _, err := eng.Check(chip.Design); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("panic: injected")
	eng.Poison(cause)
	if got := eng.Poisoned(); !errors.Is(got, cause) {
		t.Fatalf("Poisoned() = %v", got)
	}
	if _, err := eng.Recheck(chip.Design); !errors.Is(err, cause) {
		t.Fatalf("poisoned engine ran: err = %v", err)
	}
	// First reason wins.
	eng.Poison(errors.New("later"))
	if got := eng.Poisoned(); !errors.Is(got, cause) {
		t.Fatalf("poison reason overwritten: %v", got)
	}
}
