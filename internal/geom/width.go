package geom

// Width checking via shrink-expand-compare (the technique of reference [7]
// in the paper, Lindsay & Preas). The orthogonal (square structuring
// element) variant is exact for Manhattan geometry; the Euclidean variant
// exhibits the Figure 4 corner pathology, which expand.go models
// analytically.
//
// Half-integer shrink distances are handled by doubling coordinates
// internally, so odd design-rule widths are checked exactly.

// MinWidthOK reports whether every part of the region has orthogonal width
// at least w: the region equals its opening by a square of half-width w/2.
func MinWidthOK(r Region, w int64) bool {
	return len(WidthViolations(r, w)) == 0
}

// WidthViolations returns the parts of the region that are narrower than w
// in the orthogonal (L∞) sense, one bounding rect per violating connected
// sliver. A region passes iff the result is empty.
//
// The check is shrink-expand-compare: open the region with a square of
// half-width w/2 (coordinates doubled so odd w is exact) and report what
// the opening fails to recover. Unlike the Euclidean variant, the square
// opening recovers the corners of legal Manhattan geometry exactly, so
// there are no corner false errors.
func WidthViolations(r Region, w int64) []Rect {
	if w <= 0 || r.Empty() {
		return nil
	}
	// In doubled coordinates all widths are even, so "width >= 2w" is
	// equivalent to "width >= 2w-1", which is exactly what opening with a
	// square of half-width w-1 preserves (it keeps cells whose
	// (2(w-1)+1)-wide square fits). Using w itself would annihilate
	// exactly-minimum-width shapes under half-open semantics.
	r2 := r.Scale(2)
	opened := r2.Erode(w - 1).Dilate(w - 1)
	diff := r2.Subtract(opened)
	if diff.Empty() {
		return nil
	}
	comps := diff.Components()
	out := make([]Rect, 0, len(comps))
	for _, c := range comps {
		b := c.Bounds()
		out = append(out, Rect{
			floorDiv2(b.X1), floorDiv2(b.Y1),
			ceilDiv2(b.X2), ceilDiv2(b.Y2),
		})
	}
	return out
}

// Skeleton returns the paper's element skeleton: the region shrunk by half
// the minimum width of its layer (Figure 11). The true skeleton of an
// exactly-minimum-width element is its zero-area medial line, which the
// half-open region algebra cannot hold, so the skeleton is computed on a
// 4× grid eroded by 2·minWidth−1: a quarter-unit fattening of the true
// closed skeleton. With that fattening, positive-area overlap of two
// returned skeletons is exactly equivalent to the closed true skeletons
// touching, overlapping, or enclosing one another — the paper's criterion —
// because distinct disjoint closed skeletons on the half-unit lattice are
// at least half a unit apart.
//
// The returned region is in 4× coordinates; compare skeletons only with
// SkeletonsConnected.
func Skeleton(r Region, minWidth int64) Region {
	if minWidth < 1 {
		return r.Scale(4)
	}
	return r.Scale(4).Erode(2*minWidth - 1)
}

// SkeletonsConnected implements the paper's skeletal-connectivity
// criterion on skeletons produced by Skeleton: two elements are connected
// iff their (closed, true) skeletons touch, overlap, or one encloses the
// other.
//
// Note the deliberate consequence the paper turns into a usage rule
// (Figure 15, self-sufficiency): two minimum-width wires abutting
// end-to-end are NOT skeletally connected — their medial lines are half a
// width apart — so composing connectivity by butting is reported as an
// illegal connection. Overlapping by at least the minimum width is.
func SkeletonsConnected(skelA, skelB Region) bool {
	if skelA.Empty() || skelB.Empty() {
		return false
	}
	return skelA.Overlaps(skelB)
}

// SkeletalConnected is the one-shot form: it computes both skeletons at the
// layer minimum width and applies the criterion.
func SkeletalConnected(a, b Region, minWidth int64) bool {
	return SkeletonsConnected(Skeleton(a, minWidth), Skeleton(b, minWidth))
}

// SpacingViolations returns the places where regions a and b approach
// closer than s in the orthogonal (expand-check-overlap) sense: the
// intersection of a dilated by s with b. The returned rects are the
// violating overlap areas. This is the traditional technique and exhibits
// the Figure 4 corner-to-edge pathology; Euclidean checks should use
// RegionDist.
func SpacingViolations(a, b Region, s int64) []Rect {
	if s <= 0 || a.Empty() || b.Empty() {
		return nil
	}
	// Quick reject on bounding boxes.
	if a.Bounds().Expand(s).Intersect(b.Bounds()).Empty() {
		return nil
	}
	overlap := a.Dilate(s).Intersect(b)
	if overlap.Empty() {
		return nil
	}
	comps := overlap.Components()
	out := make([]Rect, 0, len(comps))
	for _, c := range comps {
		out = append(out, c.Bounds())
	}
	return out
}

// NotchViolations returns internal spacing (notch) violations: places where
// the complement of the region forms a slot narrower than s between parts
// of the same region. Computed as width violations of the complement within
// the bounds, clipped away from the outer frame.
func NotchViolations(r Region, s int64) []Rect {
	if s <= 0 || r.Empty() {
		return nil
	}
	frame := r.Bounds().Expand(s + 1)
	comp := FromRectR(frame).Subtract(r)
	var out []Rect
	for _, v := range WidthViolations(comp, s) {
		// Ignore slivers that touch the artificial frame boundary.
		if v.X1 <= frame.X1 || v.Y1 <= frame.Y1 || v.X2 >= frame.X2 || v.Y2 >= frame.Y2 {
			continue
		}
		out = append(out, v)
	}
	return out
}

func floorDiv2(v int64) int64 {
	if v >= 0 {
		return v / 2
	}
	return -((-v + 1) / 2)
}

func ceilDiv2(v int64) int64 {
	if v >= 0 {
		return (v + 1) / 2
	}
	return -(-v / 2)
}
