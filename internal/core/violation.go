// Package core implements the Design Integrity Checker (DIC) — the paper's
// primary contribution: the hierarchical verification pipeline of
// Figure 10, extended with a per-definition layer-rule stage.
//
//	PARSE CIF → CHECK ELEMENTS → CHECK PRIMITIVE SYMBOLS
//	          → CHECK LAYER RULES → GENERATE HIERARCHICAL NET LIST
//	          → CHECK LEGAL CONNECTIONS → CHECK INTERACTIONS
//
// The decisive difference from a traditional mask-level checker: the chip
// is never fully instantiated. Element width checks and device-internal
// checks run once per symbol *definition* rather than per instance, device
// and net information is available to every stage, and the remaining
// chip-level work reduces to spacing checks driven by the Figure 12
// interaction matrix with same-net/different-net subcases.
package core

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Severity classifies a violation.
type Severity uint8

// Severity levels.
const (
	Error Severity = iota
	Warning
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Violation is one reported finding. Rules use stable dotted identifiers:
//
//	STRUCT.*  structural problems (bad geometry, undeclared devices)
//	W.*       element width (W.<layer CIF name>)
//	WIDTH.*   merged-region width (WIDTH.<layer CIF name>)
//	AREA.*    minimum island area (AREA.<layer CIF name>)
//	ENC.*     enclosure margin (ENC.<outer CIF>.<inner CIF>)
//	OVL.*     overlap width (OVL.<layerA CIF>.<layerB CIF>)
//	EXT.*     extension past a crossing (EXT.<layerA CIF>.<layerB CIF>)
//	DEV.*     device-internal and device-dependent rules
//	CONN.*    illegal connections (Figures 11 and 15)
//	NET.*     netlist consistency and construction rules
//	S.*       interaction spacing (S.<layerA>.<layerB>.<same|diff>)
type Violation struct {
	Rule     string
	Severity Severity
	Detail   string

	// Where locates the violation. For symbol-definition checks the
	// coordinates are in symbol space and Symbol is set; for chip-level
	// checks the coordinates are chip space and Path may be set.
	Where  geom.Rect
	Symbol string // defining symbol name ("" if chip-level)
	Path   string // instance path ("" if definition-level)
	Layer  tech.LayerID
	Nets   []string // nets involved, if known
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	loc := ""
	switch {
	case v.Symbol != "" && v.Path != "":
		loc = fmt.Sprintf(" [%s @ %s]", v.Symbol, v.Path)
	case v.Symbol != "":
		loc = fmt.Sprintf(" [sym %s]", v.Symbol)
	case v.Path != "":
		loc = fmt.Sprintf(" [@ %s]", v.Path)
	}
	return fmt.Sprintf("%s %s at %v%s: %s", v.Severity, v.Rule, v.Where, loc, v.Detail)
}

// sortViolations orders violations deterministically. The comparison key
// covers every field, so the order is total over distinct violations: two
// reports containing the same violation multiset sort byte-identically no
// matter what order the pipeline discovered them in. (sort.Slice is not
// stable, so a mere preorder would let equal-keyed distinct violations
// land in run-dependent order — the incremental engine's warm-vs-cold
// byte-identity guarantee depends on totality here.)
func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		return CompareViolations(&vs[i], &vs[j]) < 0
	})
}

// CompareViolations is the total order every sorted report obeys — the
// contract that makes violation sequences diffable: two reports are
// merge-comparable streams, so which findings an edit added or removed
// falls out of one linear walk (see DiffViolations).
func CompareViolations(a, b *Violation) int {
	switch {
	case a.Rule != b.Rule:
		return strings.Compare(a.Rule, b.Rule)
	case a.Symbol != b.Symbol:
		return strings.Compare(a.Symbol, b.Symbol)
	case a.Path != b.Path:
		return strings.Compare(a.Path, b.Path)
	case a.Where.X1 != b.Where.X1:
		return cmp.Compare(a.Where.X1, b.Where.X1)
	case a.Where.Y1 != b.Where.Y1:
		return cmp.Compare(a.Where.Y1, b.Where.Y1)
	case a.Detail != b.Detail:
		return strings.Compare(a.Detail, b.Detail)
	case a.Where.X2 != b.Where.X2:
		return cmp.Compare(a.Where.X2, b.Where.X2)
	case a.Where.Y2 != b.Where.Y2:
		return cmp.Compare(a.Where.Y2, b.Where.Y2)
	case a.Severity != b.Severity:
		return int(a.Severity) - int(b.Severity)
	case a.Layer != b.Layer:
		return int(a.Layer) - int(b.Layer)
	default:
		return slices.CompareFunc(a.Nets, b.Nets, strings.Compare)
	}
}

// DiffViolations computes the multiset difference between two violation
// sequences sorted by CompareViolations (the order every completed run's
// report is in): added holds the violations present in new but not old,
// removed the ones present in old but not new, both still sorted. The
// walk is a single linear merge, so diffing two reports costs O(old+new)
// regardless of how little changed — the primitive behind the check
// service's incremental report deltas. Duplicate violations are matched
// pairwise: if old holds two equal findings and new holds one, exactly
// one lands in removed.
func DiffViolations(old, new []Violation) (added, removed []Violation) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch c := CompareViolations(&old[i], &new[j]); {
		case c < 0:
			removed = append(removed, old[i])
			i++
		case c > 0:
			added = append(added, new[j])
			j++
		default:
			i++
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, new[j:]...)
	return added, removed
}

// CountByRule tallies violations by rule id.
func CountByRule(vs []Violation) map[string]int {
	out := make(map[string]int)
	for _, v := range vs {
		out[v.Rule]++
	}
	return out
}

// RuleClass maps a rule id to its coarse rule class — the vocabulary of
// the per-class summary in reports ("spacing", "width", ...).
func RuleClass(rule string) string {
	switch {
	case strings.HasPrefix(rule, "S."):
		return "spacing"
	case strings.HasPrefix(rule, "W."), strings.HasPrefix(rule, "WIDTH."):
		return "width"
	case strings.HasPrefix(rule, "AREA."):
		return "area"
	case strings.HasPrefix(rule, "ENC."):
		return "enclosure"
	case strings.HasPrefix(rule, "OVL."):
		return "overlap"
	case strings.HasPrefix(rule, "EXT."):
		return "extension"
	case strings.HasPrefix(rule, "DEV."):
		return "device"
	case strings.HasPrefix(rule, "CONN."):
		return "connection"
	case strings.HasPrefix(rule, "NET."):
		return "net"
	case strings.HasPrefix(rule, "STRUCT."):
		return "structural"
	default:
		return "other"
	}
}

// CountByClass tallies violations by rule class (see RuleClass).
func CountByClass(vs []Violation) map[string]int {
	out := make(map[string]int)
	for _, v := range vs {
		out[RuleClass(v.Rule)]++
	}
	return out
}
