// Quickstart: parse an extended-CIF design, run the design-integrity
// checker, and print the report — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	dic "repro"
)

// A tiny two-cell design in extended CIF. The 9D extension declares the
// transistor symbol's device type; the 9N extension attaches net names to
// elements. The second transistor's gate deliberately stops flush with the
// channel — the unchecked error of the paper's Figure 8 that mask-level
// checkers cannot see.
const layoutCIF = `
(quickstart: one good transistor, one with a missing gate overlap);
9 quickstart;
DS 1;
9 goodtran;
9D nmos-enh;
L NP; B 500 2000 0 0;
L ND; B 2000 500 0 0;
DF;
DS 2;
9 badtran;
9D nmos-enh;
L NP; B 500 500 0 0;
L ND; B 2000 500 0 0;
DF;
DS 3;
9 top;
9I t1;
C 1 T 0 0;
9I t2;
C 2 T 8000 0;
L ND;
9N in1;
W 500 -500 0 -3000 0;
L ND;
9N out1;
W 500 500 0 3000 0;
L NP;
9N g1;
W 500 0 750 0 3000;
DF;
E
`

func main() {
	tc := dic.NMOS()
	design, err := dic.ParseCIF(layoutCIF, tc, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	st := design.Stats()
	fmt.Printf("parsed %q: %d symbols, %d device instances\n\n",
		design.Name, st.Symbols, st.FlatDevices)

	report, err := dic.Check(design, tc, dic.Options{SkipConstruction: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations (%d):\n", len(report.Violations))
	for _, v := range report.Violations {
		fmt.Printf("  %v\n", v)
	}

	fmt.Printf("\nextracted netlist: %s\n", report.Netlist.Stats())
	for i := range report.Netlist.Nets {
		n := &report.Netlist.Nets[i]
		fmt.Printf("  net %-8s elements=%d attachments=%v\n",
			n.Name, n.Elements, report.Netlist.Signature(n.ID))
	}

	// The same design through the traditional mask-level checker: the
	// missing gate overlap is invisible to it.
	flatRep, err := dic.CheckFlat(design, tc, dic.FlatOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraditional baseline violations: %d", len(flatRep.Violations))
	fmt.Println(" (the missing gate overlap cannot be measured on masks)")
}
