package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/layout"
)

// APIError is a non-2xx daemon response decoded into a typed error: the
// HTTP status, the machine-stable error class from the wire contract, and
// the Retry-After hint (zero when absent). Check it with errors.As.
type APIError struct {
	Status     int
	Class      string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Class != "" {
		return fmt.Sprintf("%s (%d %s)", e.Message, e.Status, e.Class)
	}
	return fmt.Sprintf("%s (%d)", e.Message, e.Status)
}

// Client drives a running dicheckd over HTTP. It is the library behind
// `dicheck -serve` and the integration tests; methods map one-to-one onto
// the daemon's endpoints.
//
// Every call is bounded by AttemptTimeout and retried up to MaxRetries
// times with exponential backoff and jitter when it is safe to: GETs and
// DELETEs retry on connection errors and on 429/503; POSTs retry only on
// 429/503 carrying a Retry-After header — the daemon sets it exactly on
// the rejections that happen before any state changes, so a retried POST
// can never double-apply.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient; per-call deadlines come
	// from AttemptTimeout, not the http.Client timeout.
	HTTPClient *http.Client
	// AttemptTimeout bounds each individual attempt (default 5m — cold
	// checks of large designs are slow on small machines).
	AttemptTimeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (default 3;
	// negative disables retries).
	MaxRetries int
	// RetryBase is the first backoff step; it doubles per retry and gets
	// ±50% jitter (default 100ms).
	RetryBase time.Duration
}

// NewClient creates a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{BaseURL: base}
}

// Create opens a session and returns its id plus the initial cold report.
func (c *Client) Create(req CreateRequest) (*CreateResponse, error) {
	return c.CreateContext(context.Background(), req)
}

// CreateContext is Create bounded by ctx.
func (c *Client) CreateContext(ctx context.Context, req CreateRequest) (*CreateResponse, error) {
	var resp CreateResponse
	if err := c.do(ctx, http.MethodPost, "/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// List returns every live session.
func (c *Client) List() ([]SessionInfo, error) {
	var resp []SessionInfo
	if err := c.do(context.Background(), http.MethodGet, "/sessions", nil, &resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// FindByName returns the id of the live session with the given name
// ("" , false when absent; the lowest id wins if names collide).
func (c *Client) FindByName(name string) (string, bool, error) {
	infos, err := c.List()
	if err != nil {
		return "", false, err
	}
	for _, info := range infos {
		if info.Name == name {
			return info.ID, true, nil
		}
	}
	return "", false, nil
}

// Edit applies one edit batch to a session.
func (c *Client) Edit(id string, edits []layout.Edit) (*EditResponse, error) {
	return c.EditContext(context.Background(), id, edits)
}

// EditContext is Edit bounded by ctx.
func (c *Client) EditContext(ctx context.Context, id string, edits []layout.Edit) (*EditResponse, error) {
	var resp EditResponse
	if err := c.do(ctx, http.MethodPost, "/sessions/"+id+"/edits", EditRequest{Edits: edits}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report fetches the session's current report, forcing any pending edits
// through a recheck first.
func (c *Client) Report(id string) (*Report, error) {
	return c.ReportContext(context.Background(), id)
}

// ReportContext is Report bounded by ctx.
func (c *Client) ReportContext(ctx context.Context, id string) (*Report, error) {
	var resp Report
	if err := c.do(ctx, http.MethodGet, "/sessions/"+id+"/report", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the session's service and engine counters.
func (c *Client) Stats(id string) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(context.Background(), http.MethodGet, "/sessions/"+id+"/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ServerStats fetches the daemon-wide gauges and counters.
func (c *Client) ServerStats() (*ServerStatsResponse, error) {
	var resp ServerStatsResponse
	if err := c.do(context.Background(), http.MethodGet, "/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SnapshotNow asks the daemon to snapshot every session to its state
// directory immediately.
func (c *Client) SnapshotNow() error {
	return c.do(context.Background(), http.MethodPost, "/snapshot", struct{}{}, nil)
}

// Inject arms the fault-injection hook on a session (daemon must run with
// test hooks enabled).
func (c *Client) Inject(id string, req InjectRequest) error {
	return c.do(context.Background(), http.MethodPost, "/sessions/"+id+"/inject", req, nil)
}

// Delete removes a session.
func (c *Client) Delete(id string) error {
	return c.do(context.Background(), http.MethodDelete, "/sessions/"+id, nil, nil)
}

// do runs one JSON call with bounded retries. Non-2xx responses decode
// the daemon's error payload into an *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		payload = buf
	}
	retries := c.MaxRetries
	if retries == 0 {
		retries = 3
	}
	if retries < 0 {
		retries = 0
	}
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	idempotent := method == http.MethodGet || method == http.MethodDelete

	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.attempt(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= retries || ctx.Err() != nil {
			return lastErr
		}
		wait, retryable := retryDelay(err, idempotent, base, attempt)
		if !retryable {
			return lastErr
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// retryDelay decides whether err warrants another attempt and how long to
// back off first.
func retryDelay(err error, idempotent bool, base time.Duration, attempt int) (time.Duration, bool) {
	backoff := base << attempt
	// ±50% jitter so synchronized clients don't stampede in lockstep.
	backoff = backoff/2 + time.Duration(rand.Int63n(int64(backoff)+1))
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		// 429/503 are issued before any state changes; the Retry-After
		// header is the daemon's explicit safe-to-retry signal, so even
		// POSTs retry on it.
		if (apiErr.Status == http.StatusTooManyRequests || apiErr.Status == http.StatusServiceUnavailable) &&
			(idempotent || apiErr.RetryAfter > 0) {
			if apiErr.RetryAfter > backoff {
				backoff = apiErr.RetryAfter
			}
			return backoff, true
		}
		return 0, false
	}
	// Transport-level failure (connection refused/reset, EOF): the request
	// may or may not have reached the daemon, so only idempotent methods
	// retry automatically.
	return backoff, idempotent
}

// attempt runs a single HTTP round trip under the per-attempt timeout.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any) error {
	timeout := c.AttemptTimeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Message: resp.Status}
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			apiErr.Message = fmt.Sprintf("%s %s: %s", method, path, eb.Error)
			apiErr.Class = eb.Class
		} else {
			apiErr.Message = fmt.Sprintf("%s %s: %s", method, path, resp.Status)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
