package perfbench

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// LoadLatency is a latency distribution summary in nanoseconds, the unit
// the rest of the bench artifacts use.
type LoadLatency struct {
	Count int     `json:"count"`
	P50NS int64   `json:"p50_ns"`
	P95NS int64   `json:"p95_ns"`
	P99NS int64   `json:"p99_ns"`
	MaxNS int64   `json:"max_ns"`
	MeanN float64 `json:"mean_ns"`
}

// SummarizeLatencies computes the percentile summary of a sample set.
// Percentiles use the nearest-rank method; an empty set is all zeros.
func SummarizeLatencies(samples []time.Duration) LoadLatency {
	var s LoadLatency
	s.Count = len(samples)
	if s.Count == 0 {
		return s
	}
	ns := make([]int64, len(samples))
	var sum int64
	for i, d := range samples {
		ns[i] = d.Nanoseconds()
		sum += ns[i]
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	rank := func(p float64) int64 {
		idx := int(p*float64(len(ns))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ns) {
			idx = len(ns) - 1
		}
		return ns[idx]
	}
	s.P50NS = rank(0.50)
	s.P95NS = rank(0.95)
	s.P99NS = rank(0.99)
	s.MaxNS = ns[len(ns)-1]
	s.MeanN = float64(sum) / float64(len(ns))
	return s
}

// ByteSummary is a payload-size distribution summary in bytes — the
// report-delta evidence: full-report bytes vs delta bytes under the same
// edit loop.
type ByteSummary struct {
	Count int     `json:"count"`
	P50   int64   `json:"p50_bytes"`
	P99   int64   `json:"p99_bytes"`
	Max   int64   `json:"max_bytes"`
	Mean  float64 `json:"mean_bytes"`
}

// SummarizeBytes computes the percentile summary of a payload-size
// sample set (nearest-rank; an empty set is all zeros).
func SummarizeBytes(samples []int64) ByteSummary {
	var s ByteSummary
	s.Count = len(samples)
	if s.Count == 0 {
		return s
	}
	bs := make([]int64, len(samples))
	copy(bs, samples)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	var sum int64
	for _, b := range bs {
		sum += b
	}
	rank := func(p float64) int64 {
		idx := int(p*float64(len(bs))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bs) {
			idx = len(bs) - 1
		}
		return bs[idx]
	}
	s.P50 = rank(0.50)
	s.P99 = rank(0.99)
	s.Max = bs[len(bs)-1]
	s.Mean = float64(sum) / float64(len(bs))
	return s
}

// LoadSnapshot is the BENCH_LOAD_<date>.json document: one drcload run
// against a live daemon — throughput, latency distributions per
// operation, the error-class histogram, and the daemon's end-of-run
// resource gauges (the bounded-memory/goroutine evidence).
type LoadSnapshot struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	Sessions   int    `json:"sessions"`
	Chaos      bool   `json:"chaos"`
	Delta      bool   `json:"delta,omitempty"` // delta-mode report loop
	DurationNS int64  `json:"duration_ns"`

	Requests  uint64            `json:"requests"`
	Reports   LoadLatency       `json:"report_latency"`
	Edits     LoadLatency       `json:"edit_latency"`
	Creates   LoadLatency       `json:"create_latency"`
	ErrClass  map[string]uint64 `json:"errors_by_class"`
	Transport uint64            `json:"transport_errors"`

	// Payload-size evidence for delta mode: FullBytes samples full-report
	// payloads, DeltaBytes the ?since= delta payloads of the same loop;
	// DeltaResets counts deltas that degraded to the full list. Churns is
	// how many voluntary delete/recreate cycles the drivers performed.
	FullBytes   ByteSummary `json:"full_bytes,omitempty"`
	DeltaBytes  ByteSummary `json:"delta_bytes,omitempty"`
	DeltaResets uint64      `json:"delta_resets,omitempty"`
	Churns      uint64      `json:"churns,omitempty"`

	ServerGoroutines int    `json:"server_goroutines"`
	ServerHeapBytes  uint64 `json:"server_heap_bytes"`

	SLOViolations []string `json:"slo_violations,omitempty"`
}

// JSON renders the snapshot.
func (s LoadSnapshot) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Filename returns the canonical snapshot name for its date.
func (s LoadSnapshot) Filename() string { return fmt.Sprintf("BENCH_LOAD_%s.json", s.Date) }
