package dic_test

import (
	"fmt"

	dic "repro"
)

// ExampleCheck mirrors the package quickstart: build (or parse) a design,
// run the six-stage design-integrity pipeline, and inspect the result.
// The generated inverter-array chip is rule-clean by construction.
func ExampleCheck() {
	tc := dic.NMOS()
	chip := dic.NewChip(tc, "quickstart", 2, 3)

	report, err := dic.Check(chip.Design, tc, dic.Options{})
	if err != nil {
		fmt.Println("check failed:", err)
		return
	}
	fmt.Println("clean:", report.Clean())
	fmt.Println("netlist:", report.Netlist.Stats())
	for _, v := range report.Errors() {
		fmt.Println(v)
	}
	// Output:
	// clean: true
	// netlist: 10 nets, 32 devices
}

// ExampleEngine shows the incremental session: a cold Check populates the
// content-addressed caches, an edit dirties one definition, and Recheck
// re-derives only what changed while reporting byte-identically to a cold
// run of the edited design.
func ExampleEngine() {
	tc := dic.NMOS()
	chip := dic.NewChipUnique(tc, "session", 4, 4)

	eng := dic.NewEngine(tc, dic.Options{})
	report, err := eng.Check(chip.Design) // cold
	if err != nil {
		fmt.Println("check failed:", err)
		return
	}
	fmt.Println("cold clean:", report.Clean())

	// Edit one row definition: shrink nothing, just add a floating metal
	// probe declared on GND (a warning-free, error-free edit).
	row, _ := chip.Design.Symbol("row2")
	metal, _ := tc.LayerByName("metal")
	row.AddBox(metal, dic.R(-15000, 0, -14250, 1000), "GND")

	report, err = eng.Recheck(chip.Design) // warm: only row2 + chip re-derive
	if err != nil {
		fmt.Println("recheck failed:", err)
		return
	}
	stats := eng.Stats()
	fmt.Println("warm clean:", report.Clean())
	fmt.Printf("dirty symbols: %d of %d\n", stats.DirtySymbols, stats.Symbols)
	// Output:
	// cold clean: true
	// warm clean: true
	// dirty symbols: 2 of 12
}
