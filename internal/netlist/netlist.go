// Package netlist generates the hierarchical net list of the paper's
// Figure 10 pipeline.
//
// Connectivity follows the paper's *skeletal* criterion (Figure 11): two
// same-layer elements are connected iff their skeletons — each element
// shrunk by half its layer's minimum width — touch, overlap, or enclose
// one another. Geometric contact that is not skeletal is deliberately NOT
// a connection here: it is an illegal connection, which the checker
// reports separately. The netlist therefore describes the *intended*
// circuit.
//
// Cross-layer connectivity exists only through devices (contacts, butting
// and buried contacts), and devices exist only as primitive device symbols,
// so device recognition reduces to device-terminal lookup.
//
// Net names use the paper's dot notation: a net declared "q" inside
// instance "row3.bit7" becomes "row3.bit7.q". Power and ground names are
// global. Declared names never *create* connectivity; instead the
// extractor cross-checks declarations against extracted connectivity and
// reports NET.MERGED (two names on one extracted net) and NET.OPEN (one
// name on several extracted nets) — the paper's "check the net list
// against an input net list for consistency".
package netlist

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// NetID indexes a net within a Netlist.
type NetID int

// TermRef names one device terminal attachment.
type TermRef struct {
	Device   int    // index into Netlist.Devices
	Terminal string // terminal name within the device
}

// Net is one extracted electrical net.
type Net struct {
	ID   NetID
	Name string // canonical name: lexically smallest declared name, else "n<k>"
	// Declared lists every declared (possibly path-qualified) name merged
	// into this net, sorted.
	Declared []string
	// Terminals lists the device terminals on this net, in deterministic
	// order.
	Terminals []TermRef
	// Elements counts the interconnect elements on the net.
	Elements int
	// Bounds is the bounding box of the net's geometry.
	Bounds geom.Rect
}

// IsAnonymous reports whether the net has no declared name.
func (n *Net) IsAnonymous() bool { return len(n.Declared) == 0 }

// TerminalNet is one terminal→net assignment of a device.
type TerminalNet struct {
	Name string
	Net  NetID
}

// DeviceUse is one instantiated device.
type DeviceUse struct {
	Path   string // hierarchical instance path ("" for a top-level device)
	Symbol *layout.Symbol
	Type   string // declared device type
	Class  string // device class
	T      geom.Transform
	// TerminalNets lists terminal→net assignments, sorted by terminal
	// name. A sorted slice rather than a map: devices are the most
	// numerous re-derived objects in an incremental session, and a
	// three-entry map per device per recheck is pure allocator load.
	TerminalNets []TerminalNet
	// Info is the cached electrical analysis of the defining symbol.
	Info *device.Info
}

// TerminalNet returns the net of the named terminal.
func (d *DeviceUse) TerminalNet(name string) (NetID, bool) {
	for i := range d.TerminalNets {
		if d.TerminalNets[i].Name == name {
			return d.TerminalNets[i].Net, true
		}
	}
	return 0, false
}

// TerminalNetIDs appends the device's distinct terminal net ids to buf in
// terminal-name order.
func (d *DeviceUse) TerminalNetIDs(buf []NetID) []NetID {
	for i := range d.TerminalNets {
		g := d.TerminalNets[i].Net
		dup := false
		for _, h := range buf {
			if h == g {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, g)
		}
	}
	return buf
}

// Issue is a netlist-level finding (not necessarily fatal).
type Issue struct {
	Rule   string // NET.MERGED, NET.OPEN, NET.ELEM, DEV.*
	Detail string
	Where  geom.Rect
}

func (i Issue) String() string { return fmt.Sprintf("%s at %v: %s", i.Rule, i.Where, i.Detail) }

// Netlist is the extraction result.
type Netlist struct {
	Nets    []Net
	Devices []DeviceUse
	byName  map[string]NetID
}

// NetByName resolves a declared or canonical net name.
func (nl *Netlist) NetByName(name string) (NetID, bool) {
	id, ok := nl.byName[name]
	return id, ok
}

// NumNets returns the number of nets.
func (nl *Netlist) NumNets() int { return len(nl.Nets) }

// Stats summarizes the netlist.
func (nl *Netlist) Stats() string {
	return fmt.Sprintf("%d nets, %d devices", len(nl.Nets), len(nl.Devices))
}

// footprint is one connectable piece of geometry during extraction.
type footprint struct {
	layer  tech.LayerID
	bounds geom.Rect
	reg    geom.Region // chip coordinates
	node   int         // union-find node
	// declared net name (path-qualified), "" if none
	declared string
	elements int // number of interconnect elements represented (0 or 1)
}

// Extract builds the netlist of a validated design. The second return value
// carries consistency issues; the error is reserved for structural failures
// (unmaterializable geometry is reported as a NET.ELEM issue instead).
// Extract is a thin wrapper over ExtractFull for callers that only need the
// netlist.
func Extract(d *layout.Design, tc *tech.Technology) (*Netlist, []Issue, error) {
	ex, issues, err := ExtractFull(d, tc)
	if err != nil {
		return nil, issues, err
	}
	return ex.Netlist, issues, nil
}

// qualifyNet applies dot-notation qualification: rails are global.
func qualifyNet(net, path string, tc *tech.Technology) string {
	if tc.IsRail(net) || path == "" {
		return net
	}
	return path + "." + net
}

func joinPath(base, name string) string {
	if base == "" {
		return name
	}
	return base + "." + name
}

// classify converts the union-find over footprints into canonical class
// labels: classes are numbered by the index of their first footprint, which
// fixes the public net numbering ("n<k>" names) independently of union
// order.
func classify(uf *uf, n int) (classOf []int, numClasses int) {
	classOf = make([]int, n)
	rootToClass := make([]int32, n) // roots are foot indices; 0 means unset
	for i := 0; i < n; i++ {
		root := uf.find(i)
		if c := rootToClass[root]; c != 0 {
			classOf[i] = int(c - 1)
			continue
		}
		rootToClass[root] = int32(numClasses + 1)
		classOf[i] = numClasses
		numClasses++
	}
	return classOf, numClasses
}

// assemble converts union-find classes into the final Netlist.
func assemble(foots []footprint, devices []DeviceUse, uf *uf, tc *tech.Technology, issues []Issue) (*Netlist, []Issue, error) {
	classOf, numClasses := classify(uf, len(foots))
	// Resolve device terminal nets from provisional footprint ids.
	for di := range devices {
		dev := &devices[di]
		for ti := range dev.TerminalNets {
			dev.TerminalNets[ti].Net = NetID(classOf[int(dev.TerminalNets[ti].Net)])
		}
	}
	nl := assembleNets(numClasses, classOf, func(i int) (geom.Rect, string, int) {
		return foots[i].bounds, foots[i].declared, foots[i].elements
	}, len(foots), devices)
	return nl, nameNets(nl, &issues), nil
}

// assembleNets builds the Netlist skeleton — nets in canonical class order
// with aggregated bounds, element counts, declared names, and device
// terminal references — from any footprint representation. Device
// TerminalNets must already hold final net ids. Shared by the flat
// extractor and the incremental engine so both produce identical netlists.
func assembleNets(numClasses int, classOf []int, foot func(i int) (bounds geom.Rect, declared string, elements int), numFoots int, devices []DeviceUse) *Netlist {
	nl := &Netlist{byName: make(map[string]NetID, numClasses), Nets: make([]Net, numClasses)}
	for i := range nl.Nets {
		nl.Nets[i].ID = NetID(i)
	}
	for i := 0; i < numFoots; i++ {
		net := &nl.Nets[classOf[i]]
		bounds, declared, elements := foot(i)
		net.Elements += elements
		net.Bounds = net.Bounds.Union(bounds)
		if declared != "" {
			net.Declared = append(net.Declared, declared)
		}
	}
	// Pre-size each net's terminal list (one counting pass beats
	// per-append growth at tens of thousands of terminals).
	counts := make([]int32, numClasses)
	for di := range devices {
		for ti := range devices[di].TerminalNets {
			counts[devices[di].TerminalNets[ti].Net]++
		}
	}
	for i := range nl.Nets {
		if counts[i] > 0 {
			nl.Nets[i].Terminals = make([]TermRef, 0, counts[i])
		}
	}
	for di := range devices {
		dev := &devices[di]
		// TerminalNets is sorted by name: deterministic terminal order.
		for ti := range dev.TerminalNets {
			tn := &dev.TerminalNets[ti]
			nl.Nets[tn.Net].Terminals = append(nl.Nets[tn.Net].Terminals, TermRef{Device: di, Terminal: tn.Name})
		}
	}
	nl.Devices = devices
	return nl
}

// nameNets finalizes net names: dedupe declared names, detect merges and
// opens, synthesize anonymous names, and fill the lookup table. It appends
// NET.MERGED/NET.OPEN findings to issues and returns the final slice.
func nameNets(nl *Netlist, issues *[]Issue) []Issue {
	nameFirstNet := make(map[string]NetID, len(nl.Nets))
	if nl.byName == nil {
		nl.byName = make(map[string]NetID, len(nl.Nets))
	}
	for i := range nl.Nets {
		net := &nl.Nets[i]
		net.Declared = dedupeStrings(net.Declared)
		if len(net.Declared) > 0 {
			net.Name = net.Declared[0]
			if len(net.Declared) > 1 {
				*issues = append(*issues, Issue{
					Rule:   "NET.MERGED",
					Detail: fmt.Sprintf("declared nets %v are physically connected", net.Declared),
					Where:  net.Bounds,
				})
			}
		} else {
			net.Name = "n" + strconv.Itoa(i)
		}
		for _, dn := range net.Declared {
			if prev, seen := nameFirstNet[dn]; seen {
				*issues = append(*issues, Issue{
					Rule:   "NET.OPEN",
					Detail: fmt.Sprintf("net %q is split across unconnected pieces", dn),
					Where:  nl.Nets[prev].Bounds.Union(net.Bounds),
				})
			} else {
				nameFirstNet[dn] = net.ID
				nl.byName[dn] = net.ID
			}
		}
		if _, taken := nl.byName[net.Name]; !taken {
			nl.byName[net.Name] = net.ID
		}
	}
	return *issues
}

func dedupeStrings(ss []string) []string {
	if len(ss) <= 1 {
		return ss
	}
	sort.Strings(ss)
	out := ss[:1]
	for _, s := range ss[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// uf is a weighted quick-union structure.
type uf struct {
	parent []int
	size   []int
}

func newUF(n int) *uf {
	u := &uf{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
