// Command cifgen emits synthetic workload chips as extended CIF: the
// inverter-array designs the experiments run on, optionally with seeded
// ground-truth errors, so dicheck (or any other CIF consumer) can be
// exercised on reproducible inputs.
//
// Usage:
//
//	cifgen [flags] > chip.cif
//
//	-rows N    rows of cells (default 4)
//	-cols N    columns of cells (default 5)
//	-errors N  inject N seeded errors (default 0)
//	-seed N    injection seed (default 1980)
//	-o FILE    write to FILE instead of stdout
//	-truth     print the injected ground truth to stderr
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cif"
	"repro/internal/tech"
	"repro/internal/workload"
)

func main() {
	rows := flag.Int("rows", 4, "rows of cells")
	cols := flag.Int("cols", 5, "columns of cells")
	errs := flag.Int("errors", 0, "inject N seeded errors")
	seed := flag.Int64("seed", 1980, "injection seed")
	out := flag.String("o", "", "output file (default stdout)")
	truth := flag.Bool("truth", false, "print injected ground truth to stderr")
	flag.Parse()

	if *rows < 1 || *cols < 1 {
		fatalf("rows and cols must be positive")
	}
	tc := tech.NMOS()
	chip := workload.NewChip(tc, fmt.Sprintf("gen-%dx%d", *rows, *cols), *rows, *cols)
	if *errs > 0 {
		injected := workload.InjectErrors(chip, *errs, *seed)
		if *truth {
			for i, inj := range injected {
				fmt.Fprintf(os.Stderr, "truth %d: %v at %v %s\n", i, inj.Kind, inj.Where, inj.Symbol)
			}
		}
	}
	text, err := cif.Write(chip.Design, tc)
	if err != nil {
		fatalf("write: %v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.WriteString(text); err != nil {
		fatalf("%v", err)
	}
	st := chip.Design.Stats()
	fmt.Fprintf(os.Stderr, "cifgen: %d cells, %d devices, %d flat elements\n",
		*rows**cols, st.FlatDevices, st.FlatElements)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cifgen: "+format+"\n", args...)
	os.Exit(2)
}
