// Package cif reads and writes the extended Caltech Intermediate Form used
// by the design-integrity checker.
//
// The base dialect is the CIF 2.0 subset the paper's data format builds on:
// symbol definitions (DS/DF), symbol calls with Manhattan transforms (C
// with T/M/R items), boxes, wires, polygons, and layer selection. On top of
// it sit the paper's extensions, encoded as CIF user extension commands so
// that any plain CIF consumer still parses the files:
//
//	9  <name>;          standard symbol-name extension
//	9N <net>;           attach a net identifier to the NEXT element
//	9D <type> [CHK];    declare the enclosing symbol a primitive device
//	                    symbol of the given type; CHK marks it prechecked
//	9I <name>;          instance name for the NEXT call (dot notation)
//
// Restrictions, matching the structured-design style the checker enforces:
// rotations must be axial (Manhattan), and box directions likewise. The
// paper forbids nested calls inside primitive symbols; the parser accepts
// them so the checker can *report* the violation rather than dying.
package cif

import (
	"fmt"
	"strings"
)

// SyntaxError is a CIF parse error with command context.
type SyntaxError struct {
	Command int    // 1-based index of the offending command
	Text    string // the command text
	Msg     string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	txt := e.Text
	if len(txt) > 40 {
		txt = txt[:40] + "..."
	}
	return fmt.Sprintf("cif: command %d %q: %s", e.Command, txt, e.Msg)
}

// splitCommands splits CIF text into semicolon-terminated commands with
// comments removed. CIF comments are parenthesized and may nest.
func splitCommands(src string) ([]string, error) {
	var cmds []string
	var cur strings.Builder
	depth := 0
	for _, r := range src {
		switch {
		case r == '(':
			depth++
		case r == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("cif: unbalanced comment parenthesis")
			}
		case depth > 0:
			// inside comment: drop
		case r == ';':
			cmds = append(cmds, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("cif: unterminated comment")
	}
	if rest := strings.TrimSpace(cur.String()); rest != "" {
		// The E command may legally lack a semicolon.
		cmds = append(cmds, rest)
	}
	return cmds, nil
}

// fields tokenizes a command: CIF separates tokens by any characters that
// are not digits, letters or '-'. Letters clump into words, digits (with
// optional leading '-') into numbers.
func fields(cmd string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	isWord := func(r byte) bool {
		return r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.'
	}
	for i := 0; i < len(cmd); i++ {
		if isWord(cmd[i]) {
			cur.WriteByte(cmd[i])
		} else {
			flush()
		}
	}
	flush()
	return out
}
