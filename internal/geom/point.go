package geom

import (
	"fmt"
	"math"
)

// Point is an integer lattice point in centimicrons.
type Point struct {
	X, Y int64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y int64) Point { return Point{x, y} }

// Add returns p+q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p-q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Neg returns -p.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k int64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) int64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p×q.
func (p Point) Cross(q Point) int64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance from p to q.
func (p Point) Dist(q Point) float64 {
	dx, dy := float64(p.X-q.X), float64(p.Y-q.Y)
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared Euclidean distance from p to q as a float64
// (exactness is preserved for coordinates below 2^26).
func (p Point) Dist2(q Point) float64 {
	dx, dy := float64(p.X-q.X), float64(p.Y-q.Y)
	return dx*dx + dy*dy
}

// ManhattanDist returns |dx|+|dy|.
func (p Point) ManhattanDist(q Point) int64 {
	return absInt64(p.X-q.X) + absInt64(p.Y-q.Y)
}

// ChebyshevDist returns max(|dx|,|dy|), the L∞ distance.
func (p Point) ChebyshevDist(q Point) int64 {
	return maxInt64(absInt64(p.X-q.X), absInt64(p.Y-q.Y))
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
