package layout

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/tech"
)

func nmosLayers(t *testing.T) (*tech.Technology, tech.LayerID, tech.LayerID, tech.LayerID) {
	t.Helper()
	tc := tech.NMOS()
	d, _ := tc.LayerByName(tech.NMOSDiff)
	p, _ := tc.LayerByName(tech.NMOSPoly)
	m, _ := tc.LayerByName(tech.NMOSMetal)
	return tc, d, p, m
}

func TestElementRegions(t *testing.T) {
	_, d, _, _ := nmosLayers(t)
	box := &Element{Kind: KindBox, Layer: d, Box: geom.R(0, 0, 500, 500)}
	r, err := box.Region()
	if err != nil {
		t.Fatal(err)
	}
	if r.Area() != 250000 {
		t.Fatalf("box area = %d", r.Area())
	}
	if box.Bounds() != geom.R(0, 0, 500, 500) {
		t.Fatalf("box bounds = %v", box.Bounds())
	}
}

func TestWireRegionStraight(t *testing.T) {
	_, d, _, _ := nmosLayers(t)
	w := &Element{Kind: KindWire, Layer: d, Width: 100,
		Path: []geom.Point{geom.Pt(0, 0), geom.Pt(400, 0)}}
	r, err := w.Region()
	if err != nil {
		t.Fatal(err)
	}
	// Segment with square caps: length 400 + 2*50 = 500 long, 100 wide.
	if got := r.Bounds(); got != geom.R(-50, -50, 450, 50) {
		t.Fatalf("wire bounds = %v", got)
	}
	if got := r.Area(); got != 500*100 {
		t.Fatalf("wire area = %d", got)
	}
	if w.Bounds() != r.Bounds() {
		t.Fatalf("Bounds()=%v disagrees with region %v", w.Bounds(), r.Bounds())
	}
}

func TestWireRegionBend(t *testing.T) {
	_, d, _, _ := nmosLayers(t)
	w := &Element{Kind: KindWire, Layer: d, Width: 100,
		Path: []geom.Point{geom.Pt(0, 0), geom.Pt(300, 0), geom.Pt(300, 300)}}
	r, err := w.Region()
	if err != nil {
		t.Fatal(err)
	}
	// Two 100-wide strips overlapping in a 100×100 elbow.
	want := int64(400*100 + 400*100 - 100*100)
	if got := r.Area(); got != want {
		t.Fatalf("bend area = %d, want %d", got, want)
	}
	// The bend must be a single component with legal width.
	if len(r.Components()) != 1 {
		t.Fatal("bent wire must be one component")
	}
	if !geom.MinWidthOK(r, 100) {
		t.Fatal("bent wire must pass its own width")
	}
}

func TestWireErrors(t *testing.T) {
	_, d, _, _ := nmosLayers(t)
	diag := &Element{Kind: KindWire, Layer: d, Width: 100,
		Path: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 100)}}
	if _, err := diag.Region(); err == nil {
		t.Fatal("diagonal wire must be rejected")
	}
	empty := &Element{Kind: KindWire, Layer: d, Width: 100}
	if _, err := empty.Region(); err == nil {
		t.Fatal("empty wire must be rejected")
	}
	zero := &Element{Kind: KindWire, Layer: d, Width: 0,
		Path: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}}
	if _, err := zero.Region(); err == nil {
		t.Fatal("zero-width wire must be rejected")
	}
}

func TestOddWidthWireExact(t *testing.T) {
	_, d, _, _ := nmosLayers(t)
	w := &Element{Kind: KindWire, Layer: d, Width: 7,
		Path: []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}}
	r, err := w.Region()
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Area(); got != 107*7 {
		t.Fatalf("odd wire area = %d, want %d", got, 107*7)
	}
}

func TestDesignBuildAndValidate(t *testing.T) {
	tc, d, p, _ := nmosLayers(t)
	_ = tc
	ds := NewDesign("test")
	dev := ds.MustSymbol("tran")
	dev.DeviceType = "nmos-enh"
	dev.AddBox(p, geom.R(-100, -500, 100, 500), "")
	dev.AddBox(d, geom.R(-500, -100, 500, 100), "")

	cell := ds.MustSymbol("cell")
	cell.AddCall(dev, geom.Translate(geom.Pt(1000, 1000)), "t1")
	cell.AddWire(d, 500, "out", geom.Pt(0, 0), geom.Pt(2000, 0))

	top := ds.MustSymbol("top")
	top.AddCall(cell, geom.Identity, "c1")
	top.AddCall(cell, geom.Translate(geom.Pt(5000, 0)), "c2")
	ds.Top = top

	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	st := ds.Stats()
	if st.Symbols != 3 || st.PrimitiveSymbols != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Calls != 3 {
		t.Fatalf("calls = %d", st.Calls)
	}
	if st.FlatElements != 2*(1+2) {
		t.Fatalf("flat elements = %d, want 6", st.FlatElements)
	}
	if st.FlatDevices != 2 {
		t.Fatalf("flat devices = %d, want 2", st.FlatDevices)
	}
	if got := ds.InstanceCount(); got != 4 {
		t.Fatalf("instances = %d, want 4", got)
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	ds := NewDesign("cyclic")
	a := ds.MustSymbol("a")
	b := ds.MustSymbol("b")
	a.AddCall(b, geom.Identity, "")
	b.AddCall(a, geom.Identity, "")
	ds.Top = a
	if err := ds.Validate(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestValidateRejectsPrimitiveWithCalls(t *testing.T) {
	ds := NewDesign("badprim")
	child := ds.MustSymbol("child")
	prim := ds.MustSymbol("prim")
	prim.DeviceType = "nmos-enh"
	prim.AddCall(child, geom.Identity, "")
	ds.Top = prim
	if err := ds.Validate(); err == nil || !strings.Contains(err.Error(), "primitive") {
		t.Fatalf("expected primitive error, got %v", err)
	}
}

func TestFlattenPathsAndTransforms(t *testing.T) {
	tc, d, _, _ := nmosLayers(t)
	ds := NewDesign("flat")
	leaf := ds.MustSymbol("leaf")
	leaf.AddBox(d, geom.R(0, 0, 100, 100), "n1")

	mid := ds.MustSymbol("mid")
	mid.AddCall(leaf, geom.Translate(geom.Pt(1000, 0)), "u")

	top := ds.MustSymbol("top")
	top.AddCall(mid, geom.Translate(geom.Pt(0, 2000)), "m")
	ds.Top = top

	flat, err := ds.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 1 {
		t.Fatalf("flat count = %d", len(flat))
	}
	fe := flat[0]
	if fe.Path != "m.u" {
		t.Fatalf("path = %q, want m.u", fe.Path)
	}
	if got := fe.Bounds(); got != geom.R(1000, 2000, 1100, 2100) {
		t.Fatalf("bounds = %v", got)
	}
	if got := fe.NetName(tc); got != "m.u.n1" {
		t.Fatalf("net = %q", got)
	}
	// Rails stay global.
	leaf.Elements[0].Net = "VDD"
	if got := fe.NetName(tc); got != "VDD" {
		t.Fatalf("rail net = %q", got)
	}
}

func TestFlattenWithRotation(t *testing.T) {
	_, d, _, _ := nmosLayers(t)
	ds := NewDesign("rot")
	leaf := ds.MustSymbol("leaf")
	leaf.AddBox(d, geom.R(0, 0, 200, 100), "")
	top := ds.MustSymbol("top")
	top.AddCall(leaf, geom.NewTransform(geom.R90, geom.Pt(1000, 0)), "r")
	ds.Top = top
	flat, err := ds.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if got := flat[0].Bounds(); got != geom.R(900, 0, 1000, 200) {
		t.Fatalf("rotated bounds = %v", got)
	}
}

func TestFlatLayerRegions(t *testing.T) {
	tc, d, p, _ := nmosLayers(t)
	ds := NewDesign("regions")
	leaf := ds.MustSymbol("leaf")
	leaf.AddBox(d, geom.R(0, 0, 100, 100), "")
	leaf.AddBox(p, geom.R(50, 0, 150, 100), "")
	top := ds.MustSymbol("top")
	top.AddCall(leaf, geom.Identity, "a")
	top.AddCall(leaf, geom.Translate(geom.Pt(50, 0)), "b")
	ds.Top = top
	regs, err := ds.FlatLayerRegions(tc.NumLayers())
	if err != nil {
		t.Fatal(err)
	}
	if got := regs[d].Area(); got != 150*100 {
		t.Fatalf("diff area = %d, want 15000 (union of overlap)", got)
	}
	if got := regs[p].Area(); got != 150*100 {
		t.Fatalf("poly area = %d", got)
	}
}

func TestSymbolBoundsCaching(t *testing.T) {
	_, d, _, _ := nmosLayers(t)
	ds := NewDesign("cache")
	s := ds.MustSymbol("s")
	s.AddBox(d, geom.R(0, 0, 10, 10), "")
	if got := s.Bounds(); got != geom.R(0, 0, 10, 10) {
		t.Fatalf("bounds = %v", got)
	}
	s.AddBox(d, geom.R(50, 50, 60, 60), "")
	if got := s.Bounds(); got != geom.R(0, 0, 60, 60) {
		t.Fatalf("bounds after add = %v (cache not invalidated?)", got)
	}
}

func TestSortedSymbolsTopological(t *testing.T) {
	ds := NewDesign("topo")
	leaf := ds.MustSymbol("leaf")
	mid := ds.MustSymbol("mid")
	top := ds.MustSymbol("top")
	mid.AddCall(leaf, geom.Identity, "")
	top.AddCall(mid, geom.Identity, "")
	ds.Top = top
	order := ds.SortedSymbols()
	pos := map[string]int{}
	for i, s := range order {
		pos[s.Name] = i
	}
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Fatalf("order = %v", order)
	}
}

func TestUsedLayers(t *testing.T) {
	_, d, p, _ := nmosLayers(t)
	ds := NewDesign("layers")
	s := ds.MustSymbol("s")
	s.AddBox(d, geom.R(0, 0, 10, 10), "")
	s.AddBox(p, geom.R(0, 0, 10, 10), "")
	ds.Top = s
	got := ds.UsedLayers()
	if len(got) != 2 || got[0] != d || got[1] != p {
		t.Fatalf("used layers = %v", got)
	}
}

func TestDuplicateSymbolRejected(t *testing.T) {
	ds := NewDesign("dup")
	ds.MustSymbol("x")
	if _, err := ds.NewSymbol("x"); err == nil {
		t.Fatal("duplicate symbol name must be rejected")
	}
}

func TestRename(t *testing.T) {
	ds := NewDesign("ren")
	s := ds.MustSymbol("old")
	ds.Rename(s, "new")
	if _, ok := ds.Symbol("old"); ok {
		t.Fatal("old name should be gone")
	}
	if got, ok := ds.Symbol("new"); !ok || got != s {
		t.Fatal("new name should resolve")
	}
}

// Property: Element.Bounds always equals the materialized region's bounds
// for random Manhattan wires.
func TestQuickWireBoundsConsistency(t *testing.T) {
	tc := tech.NMOS()
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		pts := make([]geom.Point, n)
		x, y := int64(rng.Intn(50)), int64(rng.Intn(50))
		pts[0] = geom.Pt(x, y)
		for i := 1; i < n; i++ {
			d := int64(1 + rng.Intn(40))
			if rng.Intn(2) == 0 {
				x += d
			} else {
				y += d
			}
			pts[i] = geom.Pt(x, y)
		}
		w := int64(2 + 2*rng.Intn(5))
		e := &Element{Kind: KindWire, Layer: diffL, Width: w, Path: pts}
		reg, err := e.Region()
		if err != nil {
			return false
		}
		return e.Bounds() == reg.Bounds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
