// Package layout is the hierarchical design database of the
// design-integrity checker.
//
// A Design is a set of Symbols; a Symbol holds primitive Elements (boxes,
// wires, polygons on mask layers) and Calls to other symbols placed under
// Manhattan transforms. Following the paper, a symbol may be declared a
// *primitive device symbol* by carrying a device type (the extended-CIF 9D
// extension): devices exist only as such symbols, and every element may
// carry a declared net identifier (the 9N extension).
//
// The key property the checker relies on (and the reason this package
// exists instead of a polygon soup): the chip is never fully instantiated —
// "the information about what symbol the piece of geometry came from is
// never lost". A flattener is provided, but only the traditional mask-level
// baseline uses it.
package layout

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/tech"
)

// ElemKind distinguishes the CIF primitive element forms.
type ElemKind uint8

// Element kinds.
const (
	KindBox ElemKind = iota
	KindWire
	KindPolygon
)

// String implements fmt.Stringer.
func (k ElemKind) String() string {
	switch k {
	case KindBox:
		return "box"
	case KindWire:
		return "wire"
	case KindPolygon:
		return "polygon"
	}
	return fmt.Sprintf("ElemKind(%d)", uint8(k))
}

// Element is one primitive geometric element on a mask layer.
type Element struct {
	Kind  ElemKind
	Layer tech.LayerID

	// Box geometry (KindBox).
	Box geom.Rect

	// Wire geometry (KindWire): a path with total width; ends are squared
	// off flush with the endpoints (the CIF round ends are approximated
	// orthogonally, documented in DESIGN.md).
	Path  []geom.Point
	Width int64

	// Polygon geometry (KindPolygon).
	Poly geom.Polygon

	// Net is the declared net identifier from the 9N extension ("" if the
	// element is anonymous and must inherit connectivity by extraction).
	Net string

	// Index is the element's position within its symbol, assigned by
	// Symbol.AddElement; it makes violation references stable.
	Index int
}

// Region materializes the element's covered area. Wires with non-Manhattan
// segments and non-rectilinear polygons return an error — the checker
// reports these as structural violations.
func (e *Element) Region() (geom.Region, error) {
	switch e.Kind {
	case KindBox:
		if e.Box.Empty() {
			return geom.Region{}, fmt.Errorf("layout: degenerate box %v", e.Box)
		}
		return geom.FromRectR(e.Box), nil
	case KindWire:
		return wireRegion(e.Path, e.Width)
	case KindPolygon:
		return geom.FromPolygon(e.Poly)
	}
	return geom.Region{}, fmt.Errorf("layout: unknown element kind %d", e.Kind)
}

// Bounds returns the element's bounding box without materializing a region.
func (e *Element) Bounds() geom.Rect {
	switch e.Kind {
	case KindBox:
		return e.Box
	case KindWire:
		if len(e.Path) == 0 {
			return geom.Rect{}
		}
		b := geom.Rect{X1: e.Path[0].X, Y1: e.Path[0].Y, X2: e.Path[0].X, Y2: e.Path[0].Y}
		for _, p := range e.Path[1:] {
			if p.X < b.X1 {
				b.X1 = p.X
			}
			if p.X > b.X2 {
				b.X2 = p.X
			}
			if p.Y < b.Y1 {
				b.Y1 = p.Y
			}
			if p.Y > b.Y2 {
				b.Y2 = p.Y
			}
		}
		h := e.Width / 2
		return geom.Rect{X1: b.X1 - h, Y1: b.Y1 - h, X2: b.X2 + (e.Width - h), Y2: b.Y2 + (e.Width - h)}
	case KindPolygon:
		return e.Poly.Bounds()
	}
	return geom.Rect{}
}

// wireRegion converts a Manhattan wire path to a region: each segment
// becomes a rect of the given width, extended by half the width at both
// ends (square end caps), matching how CIF wires print on rectilinear
// processes.
func wireRegion(path []geom.Point, width int64) (geom.Region, error) {
	if width <= 0 {
		return geom.Region{}, fmt.Errorf("layout: wire width %d", width)
	}
	if len(path) == 0 {
		return geom.Region{}, fmt.Errorf("layout: empty wire path")
	}
	h := width / 2
	h2 := width - h // preserves odd widths exactly
	if len(path) == 1 {
		p := path[0]
		return geom.FromRectR(geom.Rect{X1: p.X - h, Y1: p.Y - h, X2: p.X + h2, Y2: p.Y + h2}), nil
	}
	rects := make([]geom.Rect, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		switch {
		case a.Y == b.Y: // horizontal
			x1, x2 := a.X, b.X
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			rects = append(rects, geom.Rect{X1: x1 - h, Y1: a.Y - h, X2: x2 + h2, Y2: a.Y + h2})
		case a.X == b.X: // vertical
			y1, y2 := a.Y, b.Y
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			rects = append(rects, geom.Rect{X1: a.X - h, Y1: y1 - h, X2: a.X + h2, Y2: y2 + h2})
		default:
			return geom.Region{}, fmt.Errorf("layout: non-Manhattan wire segment %v-%v", a, b)
		}
	}
	return geom.FromRects(rects), nil
}

// Call is an instance of another symbol under a Manhattan transform.
type Call struct {
	Target *Symbol
	T      geom.Transform
	// Name is the instance name used in hierarchical net identifiers
	// (dot notation "a.b"); assigned automatically if empty.
	Name string
}

// Symbol is a definition: elements plus calls. A symbol with a non-empty
// DeviceType is a primitive device symbol (the paper's "elemental symbol"):
// it must contain only geometry (no calls), and it is the only construct
// that may define a device.
type Symbol struct {
	Name string
	ID   int

	// DeviceType is the declared device type name ("" for composite
	// symbols). Declared via the 9D extension.
	DeviceType string

	// Checked marks a special device as already verified by its designer,
	// suppressing internal device checks — the paper's mechanism for
	// devices that intentionally break the rules.
	Checked bool

	Elements []*Element
	Calls    []*Call

	bboxValid bool
	bbox      geom.Rect

	dirty DirtyInfo
}

// DirtyInfo accumulates what a symbol's edits since the last TakeDirty
// covered: either full (structural) dirtiness, or a set of in-place
// element geometry edits together with the bounding window of everything
// they moved. Consumers that know how to recheck a window (the engine's
// windowed recheck) read it through TakeDirty; plain Touch degrades to
// Full, so every legacy edit path stays correct.
type DirtyInfo struct {
	Seen bool // any edit recorded since the last TakeDirty
	Full bool // structural or unscoped edit: the whole definition is dirty
	// Elems lists the element indices edited in place (deduplicated),
	// meaningful only when !Full.
	Elems []int
	// Window is the union of the edited elements' old and new bounds.
	Window geom.Rect
}

// AddElement appends an element, assigning its Index.
func (s *Symbol) AddElement(e *Element) *Element {
	e.Index = len(s.Elements)
	s.Elements = append(s.Elements, e)
	s.Touch()
	return e
}

// AddBox is a convenience for adding a box element.
func (s *Symbol) AddBox(layer tech.LayerID, r geom.Rect, net string) *Element {
	return s.AddElement(&Element{Kind: KindBox, Layer: layer, Box: r, Net: net})
}

// AddWire is a convenience for adding a wire element.
func (s *Symbol) AddWire(layer tech.LayerID, width int64, net string, path ...geom.Point) *Element {
	return s.AddElement(&Element{Kind: KindWire, Layer: layer, Width: width, Path: path, Net: net})
}

// AddPolygon is a convenience for adding a polygon element.
func (s *Symbol) AddPolygon(layer tech.LayerID, p geom.Polygon, net string) *Element {
	return s.AddElement(&Element{Kind: KindPolygon, Layer: layer, Poly: p, Net: net})
}

// AddCall instantiates target under transform t with the given instance
// name (auto-named "iN" when empty).
func (s *Symbol) AddCall(target *Symbol, t geom.Transform, name string) *Call {
	if name == "" {
		name = fmt.Sprintf("i%d", len(s.Calls))
	}
	c := &Call{Target: target, T: t, Name: name}
	s.Calls = append(s.Calls, c)
	s.Touch()
	return c
}

// IsPrimitive reports whether the symbol declares a device type.
func (s *Symbol) IsPrimitive() bool { return s.DeviceType != "" }

// Touch marks the symbol's derived caches (currently the bounding box)
// stale and records full dirtiness. The Add* methods do this
// automatically; call Touch after mutating element geometry in place —
// the edit idiom of a long-lived incremental checking session. An editor
// that can bound its change should call TouchElement instead, which keeps
// the dirtiness window-scoped.
func (s *Symbol) Touch() {
	s.bboxValid = false
	s.dirty.Seen = true
	s.dirty.Full = true
}

// TouchElement records an in-place geometry edit of element i whose
// bounds before the edit were oldBounds. Unlike Touch it keeps the
// dirtiness window-scoped: the accumulated window covers the element's
// old and new extents, so a windowed recheck knows every place the edit
// can have consequences. Out-of-range indices degrade to Touch.
func (s *Symbol) TouchElement(i int, oldBounds geom.Rect) {
	s.bboxValid = false
	s.dirty.Seen = true
	if s.dirty.Full {
		return
	}
	if i < 0 || i >= len(s.Elements) {
		s.dirty.Full = true
		return
	}
	found := false
	for _, k := range s.dirty.Elems {
		if k == i {
			found = true
			break
		}
	}
	if !found {
		s.dirty.Elems = append(s.dirty.Elems, i)
	}
	s.dirty.Window = s.dirty.Window.Union(oldBounds).Union(s.Elements[i].Bounds())
}

// TakeDirty returns the accumulated edit record and resets it. The engine
// consumes every symbol's record once per run; between runs the record
// accumulates across any number of edits.
func (s *Symbol) TakeDirty() DirtyInfo {
	d := s.dirty
	s.dirty = DirtyInfo{}
	return d
}

// Bounds returns the symbol's bounding box including called symbols,
// cached until the symbol is modified.
func (s *Symbol) Bounds() geom.Rect {
	if s.bboxValid {
		return s.bbox
	}
	var b geom.Rect
	for _, e := range s.Elements {
		b = b.Union(e.Bounds())
	}
	for _, c := range s.Calls {
		b = b.Union(c.T.ApplyRect(c.Target.Bounds()))
	}
	s.bbox = b
	s.bboxValid = true
	return b
}

// LayerRegion returns the union of this symbol's own elements on one layer
// (calls excluded). Elements that fail to materialize are skipped; the
// checker reports them separately.
func (s *Symbol) LayerRegion(layer tech.LayerID) geom.Region {
	var regs []geom.Region
	for _, e := range s.Elements {
		if e.Layer != layer {
			continue
		}
		reg, err := e.Region()
		if err != nil {
			continue
		}
		regs = append(regs, reg)
	}
	return geom.BulkUnion(regs)
}

// Design is a named set of symbols with a designated top.
type Design struct {
	Name    string
	symbols []*Symbol
	byName  map[string]*Symbol
	Top     *Symbol
}

// NewDesign creates an empty design.
func NewDesign(name string) *Design {
	return &Design{Name: name, byName: make(map[string]*Symbol)}
}

// NewSymbol creates and registers a symbol. Duplicate names are rejected.
func (d *Design) NewSymbol(name string) (*Symbol, error) {
	if _, dup := d.byName[name]; dup {
		return nil, fmt.Errorf("layout: duplicate symbol %q", name)
	}
	s := &Symbol{Name: name, ID: len(d.symbols)}
	d.symbols = append(d.symbols, s)
	d.byName[name] = s
	return s, nil
}

// MustSymbol is NewSymbol for construction code with static names.
func (d *Design) MustSymbol(name string) *Symbol {
	s, err := d.NewSymbol(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Symbol looks a symbol up by name.
func (d *Design) Symbol(name string) (*Symbol, bool) {
	s, ok := d.byName[name]
	return s, ok
}

// Rename changes a registered symbol's name, keeping the lookup table
// consistent. Renaming to an existing different symbol's name panics; the
// caller is expected to have checked.
func (d *Design) Rename(s *Symbol, name string) {
	if other, exists := d.byName[name]; exists && other != s {
		panic(fmt.Sprintf("layout: rename %q to existing name %q", s.Name, name))
	}
	delete(d.byName, s.Name)
	s.Name = name
	d.byName[name] = s
}

// Symbols returns all symbols in definition order.
func (d *Design) Symbols() []*Symbol { return d.symbols }

// Validate checks structural soundness: a top symbol exists, the call
// graph is acyclic, primitive device symbols contain no calls, and all
// calls target registered symbols.
func (d *Design) Validate() error {
	if d.Top == nil {
		return fmt.Errorf("layout: design %q has no top symbol", d.Name)
	}
	state := make(map[*Symbol]int) // 0 unvisited, 1 in-stack, 2 done
	var visit func(s *Symbol) error
	visit = func(s *Symbol) error {
		switch state[s] {
		case 1:
			return fmt.Errorf("layout: recursive call cycle through symbol %q", s.Name)
		case 2:
			return nil
		}
		state[s] = 1
		if s.IsPrimitive() && len(s.Calls) > 0 {
			return fmt.Errorf("layout: primitive device symbol %q contains calls", s.Name)
		}
		for _, c := range s.Calls {
			if c.Target == nil {
				return fmt.Errorf("layout: symbol %q calls nil target", s.Name)
			}
			if d.byName[c.Target.Name] != c.Target {
				return fmt.Errorf("layout: symbol %q calls unregistered symbol %q", s.Name, c.Target.Name)
			}
			if err := visit(c.Target); err != nil {
				return err
			}
		}
		state[s] = 2
		return nil
	}
	return visit(d.Top)
}

// Stats summarizes a design for reports.
type Stats struct {
	Symbols          int
	PrimitiveSymbols int
	Elements         int // total element definitions
	Calls            int // total call sites
	FlatElements     int // elements after full instantiation
	FlatDevices      int // device symbol instances after instantiation
}

// Stats computes design statistics from the top symbol.
func (d *Design) Stats() Stats {
	st := Stats{}
	seen := make(map[*Symbol]bool)
	// flatCounts memoizes (elements, devices) per symbol.
	type fc struct{ elems, devs int64 }
	memo := make(map[*Symbol]fc)
	var count func(s *Symbol) fc
	count = func(s *Symbol) fc {
		if v, ok := memo[s]; ok {
			return v
		}
		v := fc{elems: int64(len(s.Elements))}
		if s.IsPrimitive() {
			v.devs = 1
		}
		for _, c := range s.Calls {
			sub := count(c.Target)
			v.elems += sub.elems
			v.devs += sub.devs
		}
		memo[s] = v
		return v
	}
	var walk func(s *Symbol)
	walk = func(s *Symbol) {
		if seen[s] {
			return
		}
		seen[s] = true
		st.Symbols++
		if s.IsPrimitive() {
			st.PrimitiveSymbols++
		}
		st.Elements += len(s.Elements)
		st.Calls += len(s.Calls)
		for _, c := range s.Calls {
			walk(c.Target)
		}
	}
	if d.Top != nil {
		walk(d.Top)
		f := count(d.Top)
		st.FlatElements = int(f.elems)
		st.FlatDevices = int(f.devs)
	}
	return st
}

// SortedSymbols returns symbols reachable from Top in topological order
// (callees before callers), deterministically.
func (d *Design) SortedSymbols() []*Symbol {
	var order []*Symbol
	seen := make(map[*Symbol]bool)
	var visit func(s *Symbol)
	visit = func(s *Symbol) {
		if seen[s] {
			return
		}
		seen[s] = true
		// Deterministic child order: by call order.
		for _, c := range s.Calls {
			visit(c.Target)
		}
		order = append(order, s)
	}
	if d.Top != nil {
		visit(d.Top)
	}
	return order
}

// UsedLayers returns the set of layers used by reachable elements, sorted.
func (d *Design) UsedLayers() []tech.LayerID {
	set := make(map[tech.LayerID]bool)
	for _, s := range d.SortedSymbols() {
		for _, e := range s.Elements {
			set[e.Layer] = true
		}
	}
	out := make([]tech.LayerID, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
