#!/usr/bin/env bash
# Load smoke for the hardened check service: build the real binaries,
# start dicheckd with fault-injection hooks and crash-safe snapshots on,
# and drive it with drcload in chaos mode — random session kills,
# injected slow checks, malformed edit batches — under hard SLOs:
#
#   - report p99 under the threshold
#   - zero 5xx responses other than 503 (chaos must surface as
#     structured backpressure, never internal errors)
#   - zero panic/poisoned error classes
#   - zero transport-level failures
#   - the daemon's goroutine count stays bounded
#   - the daemon shuts down cleanly (SIGTERM -> exit 0) afterwards
#
# drcload exits nonzero on any SLO violation; this script adds the
# daemon-side assertions (no recovered panics, clean shutdown).
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
bin="$work/bin"
cleanup() {
  [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# jq-free JSON field extraction (top-level scalar fields of pretty-printed
# output). Usage: field FILE NAME
field() { sed -n "s/^  \"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1; }

SESSIONS="${SESSIONS:-4}"
DURATION="${DURATION:-5s}"
SLO_P99="${SLO_P99:-8s}"
SLO_GOROUTINES="${SLO_GOROUTINES:-300}"

echo "== build"
mkdir -p "$bin"
go build -o "$bin/" ./cmd/dicheckd ./cmd/drcload

echo "== start daemon (test hooks + snapshots on)"
"$bin/dicheckd" -addr 127.0.0.1:0 -addr-file "$work/addr" \
  -debounce 25ms -check-timeout 5s -edit-timeout 5s \
  -state-dir "$work/state" -snapshot-every 500ms -test-hooks &
daemon_pid=$!
for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
[ -s "$work/addr" ] || fail "daemon never wrote its address"
addr=$(cat "$work/addr")
echo "   daemon at http://$addr"
curl -sf "http://$addr/healthz" > /dev/null || fail "healthz"

echo "== chaos load: $SESSIONS sessions for $DURATION"
"$bin/drcload" -addr "$addr" -sessions "$SESSIONS" -duration "$DURATION" \
  -chaos -slo-p99 "$SLO_P99" -slo-goroutines "$SLO_GOROUTINES" -o "$work" \
  || fail "drcload reported SLO violations"

snap=$(ls "$work"/BENCH_LOAD_*.json 2>/dev/null | head -1)
[ -n "$snap" ] || fail "no BENCH_LOAD artifact written"
echo "   artifact: $(basename "$snap")"
# Keep the artifact past this script's cleanup when asked to (CI uploads it).
if [ -n "${ARTIFACT_DIR:-}" ]; then
  mkdir -p "$ARTIFACT_DIR"
  cp "$snap" "$ARTIFACT_DIR/"
fi

echo "== daemon-side assertions"
curl -sf "http://$addr/stats" > "$work/stats.json" || fail "GET /stats"
panics=$(field "$work/stats.json" panics_recovered)
[ "$panics" = 0 ] || fail "daemon recovered $panics panics under chaos load"
poisoned=$(field "$work/stats.json" sessions_poisoned)
[ "$poisoned" = 0 ] || fail "$poisoned sessions were poisoned under chaos load"

echo "== clean shutdown"
kill -TERM "$daemon_pid"
shutdown_rc=0
wait "$daemon_pid" || shutdown_rc=$?
daemon_pid=""
[ "$shutdown_rc" = 0 ] || fail "daemon exited $shutdown_rc on SIGTERM"

echo "PASS: chaos load met every SLO and the daemon shut down cleanly"
