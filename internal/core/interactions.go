package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// pairEnv answers the net/device relationship questions of the Figure 12
// subcases for one candidate pair. The chip-level checker implements it
// over global nets; the incremental engine implements it over a symbol
// definition's local net classes plus a per-instance merge signature —
// both must answer identically for the same chip state, which is what
// makes definition-level adjudication caching sound.
type pairEnv interface {
	// sameNet reports whether the items are on the same electrical net.
	sameNet(a, b *netlist.ConnItem) bool
	// related reports whether the items are related through a device.
	related(a, b *netlist.ConnItem) bool
	// keepsSameNetSpacing reports whether the item's device demands
	// spacing checks even on its own net (resistors, Figure 5b).
	keepsSameNetSpacing(dev int) bool
	// mayTouchIsolation reports whether the item's device may legally
	// connect to isolation (Figure 6b resistors).
	mayTouchIsolation(dev int) bool
}

// pairGeom supplies the geometric measurements of pair adjudication. The
// chip-level checker computes them directly; the incremental engine
// memoizes them per definition pair (they are invariant under the
// Manhattan instance transforms).
type pairGeom interface {
	// accOverlapBounds returns the bounding box of the region overlap
	// (the accidental-transistor check), and whether it is non-empty.
	accOverlapBounds(a, b *netlist.ConnItem) (geom.Rect, bool)
	// regOverlaps reports whether the regions overlap (same-layer pairs).
	regOverlaps(a, b *netlist.ConnItem) bool
	// dist returns the spacing under the configured metric.
	dist(a, b *netlist.ConnItem) float64
	// processOK asks the Eq. 1 process model whether the printed images
	// keep the margin under worst-case misalignment mis.
	processOK(a, b *netlist.ConnItem, mis, margin float64) bool
}

// interactionChecker is the read-only context shared by every interaction
// worker: the extraction, the compiled technology, the device-relation
// indexes, and the options. It is built once per run and never mutated
// afterwards, so adjudication may run from many goroutines concurrently as
// long as each call gets its own tally.
type interactionChecker struct {
	c  *checker
	ex *netlist.Extraction
	tc *tech.Technology
	ct *tech.Compiled

	// Terminal-net sets per device: an element is "related" to a device
	// when it shares a net with one of the device's terminals (the paper:
	// "the subcases depend on whether or not the elements are related").
	devNets []map[netlist.NetID]bool
	netDevs map[netlist.NetID]map[int]bool
}

// violationDraft is a violation whose net names are not yet resolved: the
// chip-level path resolves them at absorb time, the incremental engine at
// instantiation time (the same ids produce the same names either way).
type violationDraft struct {
	v          Violation
	aNet, bNet netlist.NetID
}

// interactionTally is one worker's private share of the stage-5 results.
// Tallies merge in strip order, which reproduces the serial sweep's
// violation order exactly.
type interactionTally struct {
	violations []violationDraft
	checks     int

	candidates, checked                                        int
	skippedNoRule, skippedSameNet, skippedRelated, skippedConn int
	downgrades                                                 int
}

func newInteractionChecker(c *checker, ex *netlist.Extraction) *interactionChecker {
	ic := &interactionChecker{c: c, ex: ex, tc: c.tech, ct: c.ct}

	ic.devNets = make([]map[netlist.NetID]bool, len(ex.Netlist.Devices))
	ic.netDevs = make(map[netlist.NetID]map[int]bool)
	for di := range ex.Netlist.Devices {
		tns := ex.Netlist.Devices[di].TerminalNets
		set := make(map[netlist.NetID]bool, len(tns))
		for ti := range tns {
			nid := tns[ti].Net
			set[nid] = true
			if ic.netDevs[nid] == nil {
				ic.netDevs[nid] = make(map[int]bool)
			}
			ic.netDevs[nid][di] = true
		}
		ic.devNets[di] = set
	}
	return ic
}

// sameNet implements pairEnv over global nets.
func (ic *interactionChecker) sameNet(a, b *netlist.ConnItem) bool {
	return a.Net != netlist.NoNet && a.Net == b.Net
}

// related reports whether the two items are related through a device.
func (ic *interactionChecker) related(a, b *netlist.ConnItem) bool {
	if a.Dev >= 0 && a.Dev == b.Dev {
		return true
	}
	if a.Dev >= 0 && b.Net != netlist.NoNet && ic.devNets[a.Dev][b.Net] {
		return true
	}
	if b.Dev >= 0 && a.Net != netlist.NoNet && ic.devNets[b.Dev][a.Net] {
		return true
	}
	// Two interconnect elements whose nets meet at a common device are
	// related through it — e.g. the source and drain feed wires of one
	// transistor, whose separation is the channel, not a spacing rule.
	if a.Net != netlist.NoNet && b.Net != netlist.NoNet {
		da, db := ic.netDevs[a.Net], ic.netDevs[b.Net]
		if len(da) > len(db) {
			da, db = db, da
		}
		for di := range da {
			if db[di] {
				return true
			}
		}
	}
	return false
}

// keepsSameNetSpacing implements pairEnv over the global device table.
func (ic *interactionChecker) keepsSameNetSpacing(dev int) bool {
	if dev < 0 {
		return false
	}
	info := ic.ex.Netlist.Devices[dev].Info
	return info != nil && !info.SpacingExemptSameNet
}

// mayTouchIsolation implements pairEnv over the global device table.
func (ic *interactionChecker) mayTouchIsolation(dev int) bool {
	if dev < 0 {
		return false
	}
	info := ic.ex.Netlist.Devices[dev].Info
	return info != nil && info.MayTouchIsolation
}

// accOverlapBounds implements pairGeom directly. The violation geometry
// is only ever a bounding box, so the overlap region is never built:
// IntersectBounds walks the two span structures and accumulates the tight
// bbox with zero allocation.
func (ic *interactionChecker) accOverlapBounds(a, b *netlist.ConnItem) (geom.Rect, bool) {
	return geom.IntersectBounds(a.Reg, b.Reg)
}

func (ic *interactionChecker) regOverlaps(a, b *netlist.ConnItem) bool {
	return a.Reg.Overlaps(b.Reg)
}

func (ic *interactionChecker) dist(a, b *netlist.ConnItem) float64 {
	if ic.c.opts.Metric == Orthogonal {
		return float64(geom.RegionOrthoDist(a.Reg, b.Reg))
	}
	d, _, _ := geom.RegionDist(a.Reg, b.Reg)
	return d
}

func (ic *interactionChecker) processOK(a, b *netlist.ConnItem, mis, margin float64) bool {
	return ic.c.opts.ProcessSpacing.SpacingOK(a.Reg, b.Reg, mis, margin)
}

// pair adjudicates one candidate interaction from the sweep, accumulating
// into the worker-local tally.
func (ic *interactionChecker) pair(p geom.Pair, t *interactionTally) {
	a := &ic.ex.Items[p.A.ID]
	b := &ic.ex.Items[p.B.ID]
	adjudicatePair(ic.tc, ic.ct, ic.c.opts, a, b, ic, ic, t)
}

// adjudicatePair runs the Figure 12 subcase logic for one candidate pair:
// device-dependent cross-symbol rules first (accidental transistors), then
// the same-net / different-net / related spacing subcases, with geometry
// asked only when the topology fails to excuse the pair. The relationship
// answers come from env and the measurements from g, so the same logic —
// and therefore byte-identical reports — serves both the chip-level sweep
// and the incremental engine's definition-level replay.
func adjudicatePair(tc *tech.Technology, ct *tech.Compiled, opts Options, a, b *netlist.ConnItem, env pairEnv, g pairGeom, t *interactionTally) {
	t.candidates++
	sameDevice := a.Dev >= 0 && a.Dev == b.Dev

	// Accidental transistor (Figure 8): poly over any diffusion-role layer
	// outside a single declared device. Implicit devices are not allowed.
	polyID, hasPoly := ct.Poly()
	if hasPoly && !sameDevice &&
		((a.Layer == polyID && ct.IsDiffusion(b.Layer)) || (ct.IsDiffusion(a.Layer) && b.Layer == polyID)) {
		if a.Bounds.Overlaps(b.Bounds) {
			t.checks++
			if ovb, ok := g.accOverlapBounds(a, b); ok {
				t.violations = append(t.violations, violationDraft{
					v: Violation{
						Rule:     "DEV.ACCIDENTAL",
						Severity: Error,
						Detail:   "poly crosses diffusion outside a transistor symbol (implicit devices are not allowed)",
						Where:    ovb,
						Path:     a.Path,
					},
					aNet: a.Net, bNet: b.Net,
				})
				return // the spacing cell would double-report this overlap
			}
		}
	}

	rule := ct.Rule(a.Layer, b.Layer)
	if rule.DiffNet == 0 && rule.SameNet == 0 {
		t.skippedNoRule++
		return
	}
	// Figure 5b: a resistor keeps its spacing checks even against
	// related or same-net elements — a short across the body changes
	// the circuit. Its own internal geometry (same device) is stage
	// 2's business, not an interaction.
	resException := !sameDevice &&
		(env.keepsSameNetSpacing(a.Dev) || env.keepsSameNetSpacing(b.Dev))
	isRelated := env.related(a, b)
	if !opts.NoExemptions {
		if rule.ExemptRelated && isRelated && !resException {
			t.skippedRelated++
			return
		}
	}
	if sameDevice {
		// Device-internal geometry is stage 2's business even under
		// the ablation; measuring a device against itself is
		// meaningless in any model.
		t.skippedRelated++
		return
	}

	sameNet := env.sameNet(a, b)
	need := rule.DiffNet
	if sameNet && !opts.NoExemptions {
		need = rule.SameNet
		if need == 0 && resException {
			need = rule.DiffNet
		}
		if need == 0 {
			t.skippedSameNet++
			return
		}
	}
	if need == 0 {
		t.skippedNoRule++
		return
	}

	// Figure 6b: devices that may legally touch isolation are exempt
	// from the base-isolation spacing cell.
	if isoID, hasIso := ct.Isolation(); hasIso && (a.Layer == isoID || b.Layer == isoID) {
		other := a
		if a.Layer == isoID {
			other = b
		}
		if env.mayTouchIsolation(other.Dev) {
			t.skippedRelated++
			return
		}
	}

	// Same-layer touching pairs were adjudicated by the connection
	// stage (legal skeletal connection or CONN.ILLEGAL); measuring
	// them again would double-report.
	if a.Layer == b.Layer && g.regOverlaps(a, b) {
		t.skippedConn++
		return
	}

	t.checked++
	t.checks++
	dist := g.dist(a, b)
	// A touching, related element under the resistor exception is the
	// legitimate connection into the resistor terminal, not a short.
	if resException && isRelated && dist == 0 {
		t.skippedRelated++
		return
	}
	if dist < float64(need) {
		severity := Error
		extra := ""
		if m := opts.ProcessSpacing; m != nil && dist > 0 {
			// Second opinion from the Eq. 1 process model: translate
			// by worst-case misalignment when the layers differ, then
			// require the printed images to keep the margin.
			mis := 0.0
			if a.Layer != b.Layer {
				mis = opts.Misalign
				if mis == 0 && tc.Lambda > 0 {
					mis = float64(tc.Lambda) / 2
				}
			}
			if g.processOK(a, b, mis, opts.ProcessMargin) {
				severity = Warning
				extra = " (process model predicts a safe printed gap; downgraded)"
				t.downgrades++
			}
		}
		sub := "diff"
		if sameNet {
			sub = "same"
		}
		la, lb := tc.Layer(a.Layer).CIF, tc.Layer(b.Layer).CIF
		if la > lb {
			la, lb = lb, la
		}
		t.violations = append(t.violations, violationDraft{
			v: Violation{
				Rule:     fmt.Sprintf("S.%s.%s.%s", la, lb, sub),
				Severity: severity,
				Detail: fmt.Sprintf("spacing %.0f < %d between %s and %s (%s net)%s",
					dist, need, tc.Layer(a.Layer).Name, tc.Layer(b.Layer).Name, sub, extra),
				Where: a.Bounds.Union(b.Bounds).Intersect(a.Bounds.Expand(need).Union(b.Bounds.Expand(need))),
				Path:  a.Path,
				Layer: a.Layer,
			},
			aNet: a.Net, bNet: b.Net,
		})
	}
}

// absorb folds one tally into the report, in merge order, resolving net
// names against the global netlist.
func (c *checker) absorb(ex *netlist.Extraction, t *interactionTally) {
	st := &c.rep.Stats
	st.InteractionCandidates += t.candidates
	st.InteractionChecked += t.checked
	st.SkippedNoRule += t.skippedNoRule
	st.SkippedSameNetExempt += t.skippedSameNet
	st.SkippedRelated += t.skippedRelated
	st.SkippedConnectionPairs += t.skippedConn
	st.ProcessDowngrades += t.downgrades
	if c.curStage != nil {
		c.curStage.Checks += t.checks
	}
	for _, d := range t.violations {
		v := d.v
		v.Nets = c.netNames(ex, d.aNet, d.bNet)
		c.rep.Violations = append(c.rep.Violations, v)
	}
}

// checkInteractions is pipeline stage 5: everything that remains after
// element, symbol, and connection checking is spacing between elements
// and/or primitive symbols, enumerated by the upper-triangular interaction
// matrix of Figure 12 with its same-net / different-net / device-related
// subcases — plus the device-dependent cross-symbol rules: accidental
// transistors (Figure 8), contacts over gates (Figure 7), and bipolar base
// versus isolation (Figure 6).
//
// Pairs are adjudicated in canonical orientation (lower item index first —
// i.e. chip walk order), so the violation fields that depend on which item
// is "a" are independent of sweep discovery order.
//
// With Options.Workers != 1 the item set is sharded into overlapping
// x-strips (strip width at least tech.MaxSpacing, so no cross-strip pair
// is missed) and the plane sweep runs per strip on a worker pool; each
// worker accumulates into its own tally and the tallies merge in strip
// order, making the parallel report identical to the serial one.
func (c *checker) checkInteractions(ex *netlist.Extraction) {
	maxGap := c.ct.MaxSpacing()

	var pf geom.PairFinder
	for i := range ex.Items {
		pf.AddRect(i, ex.Items[i].Bounds, int(ex.Items[i].Layer))
	}

	ic := newInteractionChecker(c, ex)
	// The compiled interacts-with sets gate the sweep: a pair whose layers
	// carry no spacing cell and no device rule can never produce a check
	// or a violation, so it is dropped before bucketing instead of walking
	// the whole adjudication preamble per pair. The engine's per-definition
	// enumeration applies the identical predicate, keeping reports and
	// candidate counters byte-identical between the two pipelines.
	filter := func(a, b geom.Item) bool { return c.ct.InteractsTag(a.Tag, b.Tag) }
	canon := func(p geom.Pair) geom.Pair {
		if p.B.ID < p.A.ID {
			p.A, p.B = p.B, p.A
		}
		return p
	}
	if workers := c.opts.workerCount(); workers == 1 || pf.Len() < 2 {
		var t interactionTally
		pf.Pairs(maxGap, filter, func(p geom.Pair) { ic.pair(canon(p), &t) })
		c.absorb(ex, &t)
	} else {
		shards := pf.Shards(maxGap, workers*geom.StripsPerWorker)
		tallies := make([]interactionTally, len(shards))
		geom.RunShards(len(shards), workers, func(k int) {
			shards[k].Pairs(filter, func(p geom.Pair) { ic.pair(canon(p), &tallies[k]) })
		})
		for k := range tallies {
			c.absorb(ex, &tallies[k])
		}
	}

	// Contact cuts over gates, cross-symbol (Figure 7): a cut from any
	// OTHER device or interconnect must not land on a transistor channel.
	c.checkGateKeepouts(ex)
	// Bipolar base vs isolation, cross-symbol (Figure 6a).
	c.checkBaseKeepouts(ex)
}

// checkGateKeepouts flags contact cuts overlapping MOS channels of other
// devices.
func (c *checker) checkGateKeepouts(ex *netlist.Extraction) {
	if len(ex.Gates) == 0 {
		return
	}
	cutID, ok := c.ct.Cut()
	if !ok {
		return
	}
	var pf geom.PairFinder
	for i := range ex.Items {
		if ex.Items[i].Layer == cutID {
			pf.AddRect(i, ex.Items[i].Bounds, 0)
		}
	}
	n := pf.Len()
	for gi := range ex.Gates {
		pf.AddRect(len(ex.Items)+gi, ex.Gates[gi].Bounds, 1)
	}
	if n == 0 {
		return
	}
	pf.Pairs(0, func(a, b geom.Item) bool { return a.Tag != b.Tag }, func(p geom.Pair) {
		cutItem, gateItem := p.A, p.B
		if cutItem.Tag == 1 {
			cutItem, gateItem = gateItem, cutItem
		}
		item := &ex.Items[cutItem.ID]
		gate := &ex.Gates[gateItem.ID-len(ex.Items)]
		if item.Dev == gate.Dev {
			return // in-symbol case handled by stage 2
		}
		c.countCheck()
		if ovb, ok := geom.IntersectBounds(item.Reg, gate.Reg); ok {
			c.add(Violation{
				Rule:     "DEV.GATE.CONTACT",
				Severity: Error,
				Detail:   "contact cut over the active gate of a transistor (Figure 7)",
				Where:    ovb,
				Path:     item.Path,
			})
		}
	})
}

// checkBaseKeepouts flags isolation geometry approaching a bipolar
// transistor base (Figure 6a), from any other symbol or interconnect. The
// candidates come from the plane sweep with the largest keepout clearance
// as the gap, not an O(keepouts × items) scan.
func (c *checker) checkBaseKeepouts(ex *netlist.Extraction) {
	if len(ex.BaseKeepouts) == 0 {
		return
	}
	isoID, ok := c.ct.Isolation()
	if !ok {
		return
	}
	var pf geom.PairFinder
	for i := range ex.Items {
		if ex.Items[i].Layer == isoID {
			pf.AddRect(i, ex.Items[i].Bounds, 0)
		}
	}
	if pf.Len() == 0 {
		return
	}
	var maxClear int64
	for ki := range ex.BaseKeepouts {
		if cl := ex.BaseKeepouts[ki].Clearance; cl > maxClear {
			maxClear = cl
		}
		pf.AddRect(len(ex.Items)+ki, ex.BaseKeepouts[ki].Bounds, 1)
	}
	pf.Pairs(maxClear, func(a, b geom.Item) bool { return a.Tag != b.Tag }, func(p geom.Pair) {
		isoItem, koItem := p.A, p.B
		if isoItem.Tag == 1 {
			isoItem, koItem = koItem, isoItem
		}
		item := &ex.Items[isoItem.ID]
		ko := &ex.BaseKeepouts[koItem.ID-len(ex.Items)]
		if item.Dev == ko.Dev {
			return
		}
		search := ko.Bounds.Expand(ko.Clearance)
		if !item.Bounds.Touches(search) {
			return // the sweep gap is the max clearance; this keepout's is smaller
		}
		c.countCheck()
		d, _, _ := geom.RegionDist(item.Reg, ko.Reg)
		if d < float64(ko.Clearance) || (ko.Clearance == 0 && item.Reg.Overlaps(ko.Reg)) {
			c.add(Violation{
				Rule:     "DEV.NPN.ISO",
				Severity: Error,
				Detail:   "isolation touches or approaches a transistor base (Figure 6a)",
				Where:    item.Bounds.Intersect(search),
				Path:     ex.Netlist.Devices[ko.Dev].Path,
			})
		}
	})
}
