package layout

import (
	"encoding/json"
	"testing"

	"repro/internal/geom"
	"repro/internal/tech"
)

func editDesign(t *testing.T) (*Design, *tech.Technology) {
	t.Helper()
	tc := tech.NMOS()
	d := NewDesign("edit-test")
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	leaf := d.MustSymbol("leaf")
	leaf.AddBox(diff, geom.R(0, 0, 200, 200), "")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(1000, 0, 1400, 400), "a")
	top.AddWire(diff, 200, "", geom.Pt(2000, 0), geom.Pt(2000, 800))
	top.AddCall(leaf, geom.Translate(geom.Pt(5000, 0)), "l0")
	d.Top = top
	return d, tc
}

func TestApplyEditOps(t *testing.T) {
	d, tc := editDesign(t)
	top := d.Top

	if err := ApplyEdit(d, tc, Edit{Op: OpAddBox, Symbol: "top", Layer: tech.NMOSMetal, Box: []int64{0, 0, 300, 900}, Net: "VDD"}); err != nil {
		t.Fatal(err)
	}
	if got := len(top.Elements); got != 3 {
		t.Fatalf("elements after add_box = %d", got)
	}
	if top.Elements[2].Net != "VDD" || top.Elements[2].Index != 2 {
		t.Fatalf("added box wrong: %+v", top.Elements[2])
	}

	if err := ApplyEdit(d, tc, Edit{Op: OpAddWire, Symbol: "top", Layer: tech.NMOSPoly, Width: 200, Path: []int64{0, 0, 0, 600, 400, 600}}); err != nil {
		t.Fatal(err)
	}
	if got := top.Elements[3]; got.Kind != KindWire || len(got.Path) != 3 {
		t.Fatalf("added wire wrong: %+v", got)
	}

	// Negative index addresses from the end.
	if err := ApplyEdit(d, tc, Edit{Op: OpDeleteElement, Symbol: "top", Index: -1}); err != nil {
		t.Fatal(err)
	}
	if got := len(top.Elements); got != 3 {
		t.Fatalf("elements after delete = %d", got)
	}

	// Deleting from the middle renumbers the tail.
	if err := ApplyEdit(d, tc, Edit{Op: OpDeleteElement, Symbol: "top", Index: 0}); err != nil {
		t.Fatal(err)
	}
	for i, e := range top.Elements {
		if e.Index != i {
			t.Fatalf("element %d has Index %d after delete", i, e.Index)
		}
	}

	if err := ApplyEdit(d, tc, Edit{Op: OpMoveElement, Symbol: "top", Index: 0, DX: 50, DY: -25}); err != nil {
		t.Fatal(err)
	}
	if top.Elements[0].Path[0] != geom.Pt(2050, -25) {
		t.Fatalf("wire not moved: %+v", top.Elements[0].Path)
	}

	if err := ApplyEdit(d, tc, Edit{Op: OpAddCall, Symbol: "top", Target: "leaf", Name: "l1", Orient: "MX", DX: 7000, DY: 300}); err != nil {
		t.Fatal(err)
	}
	c := top.Calls[len(top.Calls)-1]
	if c.Name != "l1" || c.T.Orient != geom.MX || c.T.Trans != geom.Pt(7000, 300) {
		t.Fatalf("added call wrong: %+v %+v", c, c.T)
	}

	if err := ApplyEdit(d, tc, Edit{Op: OpMoveCall, Symbol: "top", Index: 0, DX: -500}); err != nil {
		t.Fatal(err)
	}
	if top.Calls[0].T.Trans != geom.Pt(4500, 0) {
		t.Fatalf("call not moved: %+v", top.Calls[0].T)
	}

	if err := ApplyEdit(d, tc, Edit{Op: OpDeleteCall, Symbol: "top", Index: -1}); err != nil {
		t.Fatal(err)
	}
	if len(top.Calls) != 1 {
		t.Fatalf("calls after delete = %d", len(top.Calls))
	}
}

func TestApplyEditErrors(t *testing.T) {
	d, tc := editDesign(t)
	cases := []struct {
		name string
		e    Edit
	}{
		{"unknown op", Edit{Op: "explode", Symbol: "top"}},
		{"unknown symbol", Edit{Op: OpAddBox, Symbol: "nope", Layer: tech.NMOSDiff, Box: []int64{0, 0, 1, 1}}},
		{"unknown layer", Edit{Op: OpAddBox, Symbol: "top", Layer: "unobtanium", Box: []int64{0, 0, 1, 1}}},
		{"short box", Edit{Op: OpAddBox, Symbol: "top", Layer: tech.NMOSDiff, Box: []int64{0, 0, 1}}},
		{"odd path", Edit{Op: OpAddWire, Symbol: "top", Layer: tech.NMOSDiff, Width: 100, Path: []int64{0, 0, 5}}},
		{"zero width", Edit{Op: OpAddWire, Symbol: "top", Layer: tech.NMOSDiff, Path: []int64{0, 0, 5, 0}}},
		{"element index", Edit{Op: OpDeleteElement, Symbol: "top", Index: 99}},
		{"element index negative", Edit{Op: OpMoveElement, Symbol: "top", Index: -9}},
		{"call index", Edit{Op: OpMoveCall, Symbol: "top", Index: 4}},
		{"call target", Edit{Op: OpAddCall, Symbol: "top", Target: "nope"}},
		{"bad orient", Edit{Op: OpAddCall, Symbol: "top", Target: "leaf", Orient: "R45"}},
		{"self call", Edit{Op: OpAddCall, Symbol: "top", Target: "top"}},
		{"call cycle", Edit{Op: OpAddCall, Symbol: "leaf", Target: "top"}},
	}
	before := d.ContentHashes()[d.Top]
	for _, c := range cases {
		if err := ApplyEdit(d, tc, c.e); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if d.ContentHashes()[d.Top] != before {
		t.Fatal("failed edits mutated the design")
	}
}

// TestEditDirtyPropagation locks the property the incremental engine rides
// on: applying an edit changes the edited symbol's content hash and, via
// subtree hashing, every ancestor's — and reverting restores both.
func TestEditDirtyPropagation(t *testing.T) {
	d, tc := editDesign(t)
	top, leaf := d.Top, d.Symbols()[0]
	h0 := d.ContentHashes()

	if err := ApplyEdit(d, tc, Edit{Op: OpAddBox, Symbol: "leaf", Layer: tech.NMOSDiff, Box: []int64{500, 0, 700, 200}}); err != nil {
		t.Fatal(err)
	}
	h1 := d.ContentHashes()
	if h1[leaf].Own == h0[leaf].Own || h1[top].Subtree == h0[top].Subtree {
		t.Fatal("edit did not propagate to hashes")
	}
	if h1[top].Own != h0[top].Own {
		t.Fatal("leaf edit changed top's own hash")
	}

	if err := ApplyEdit(d, tc, Edit{Op: OpDeleteElement, Symbol: "leaf", Index: -1}); err != nil {
		t.Fatal(err)
	}
	h2 := d.ContentHashes()
	if h2[leaf] != h0[leaf] || h2[top] != h0[top] {
		t.Fatal("revert did not restore hashes")
	}
}

// TestEditJSONRoundTrip locks the wire format scripts are written in.
func TestEditJSONRoundTrip(t *testing.T) {
	src := `[{"op":"add_wire","symbol":"chip","layer":"poly","width":200,"path":[3200,-400,3200,400]},
	         {"op":"delete_element","symbol":"chip","index":-1}]`
	var edits []Edit
	if err := json.Unmarshal([]byte(src), &edits); err != nil {
		t.Fatal(err)
	}
	if len(edits) != 2 || edits[0].Op != OpAddWire || edits[0].Width != 200 || edits[1].Index != -1 {
		t.Fatalf("decoded %+v", edits)
	}
	out, err := json.Marshal(edits)
	if err != nil {
		t.Fatal(err)
	}
	var back []Edit
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i].Op != edits[i].Op || back[i].Symbol != edits[i].Symbol || back[i].Index != edits[i].Index {
			t.Fatalf("round trip changed edit %d: %+v vs %+v", i, back[i], edits[i])
		}
	}
}
