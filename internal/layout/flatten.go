package layout

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// FlatElement is a fully instantiated element: the element definition, the
// composed transform placing it in chip coordinates, and the hierarchical
// instance path (dot notation, e.g. "row3.bit7") it came from. The
// traditional baseline checker discards everything but layer and geometry —
// exactly the information loss the paper blames for false and unchecked
// errors — but the flattener preserves path and symbol so experiments can
// compare fairly.
type FlatElement struct {
	Elem   *Element
	T      geom.Transform
	Path   string  // "" for top-level elements
	Symbol *Symbol // defining symbol
}

// Bounds returns the instantiated bounding box.
func (f FlatElement) Bounds() geom.Rect {
	return f.T.ApplyRect(f.Elem.Bounds())
}

// Region materializes the instantiated geometry.
func (f FlatElement) Region() (geom.Region, error) {
	r, err := f.Elem.Region()
	if err != nil {
		return geom.Region{}, err
	}
	return r.TransformBy(f.T), nil
}

// NetName returns the hierarchical net identifier of the element's declared
// net: path-qualified for nets local to an instance ("a.b.net"), bare for
// top-level declarations. Rail nets (VDD/GND style) are global by
// convention and never path-qualified; the tech decides which names are
// rails.
func (f FlatElement) NetName(t *tech.Technology) string {
	if f.Elem.Net == "" {
		return ""
	}
	if t != nil && t.IsRail(f.Elem.Net) {
		return f.Elem.Net
	}
	if f.Path == "" {
		return f.Elem.Net
	}
	return f.Path + "." + f.Elem.Net
}

// Flatten fully instantiates the design from the top symbol. This is the
// operation the paper's checker avoids; it exists for the traditional
// baseline and for experiment ground truth. The element order is
// deterministic (pre-order traversal).
func (d *Design) Flatten() ([]FlatElement, error) {
	if d.Top == nil {
		return nil, fmt.Errorf("layout: design %q has no top symbol", d.Name)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var out []FlatElement
	var walk func(s *Symbol, t geom.Transform, path string)
	walk = func(s *Symbol, t geom.Transform, path string) {
		for _, e := range s.Elements {
			out = append(out, FlatElement{Elem: e, T: t, Path: path, Symbol: s})
		}
		for _, c := range s.Calls {
			sub := path
			if sub == "" {
				sub = c.Name
			} else {
				sub = sub + "." + c.Name
			}
			walk(c.Target, c.T.Compose(t), sub)
		}
	}
	walk(d.Top, geom.Identity, "")
	return out, nil
}

// FlatLayerRegions unions the fully instantiated geometry per layer — the
// "mask geometry, in its fully instantiated form" that traditional
// checkers operate on.
func (d *Design) FlatLayerRegions(numLayers int) ([]geom.Region, error) {
	flat, err := d.Flatten()
	if err != nil {
		return nil, err
	}
	rects := make([][]geom.Rect, numLayers)
	regions := make([]geom.Region, numLayers)
	for _, fe := range flat {
		if int(fe.Elem.Layer) >= numLayers {
			return nil, fmt.Errorf("layout: element layer %d out of range", fe.Elem.Layer)
		}
		switch fe.Elem.Kind {
		case KindBox:
			rects[fe.Elem.Layer] = append(rects[fe.Elem.Layer], fe.T.ApplyRect(fe.Elem.Box))
		default:
			// Polygons decompose into canonical rects and join the same
			// per-layer batch: one sweep per layer unions everything.
			r, err := fe.Region()
			if err != nil {
				return nil, fmt.Errorf("layout: element %d of %q: %w", fe.Elem.Index, fe.Symbol.Name, err)
			}
			rects[fe.Elem.Layer] = append(rects[fe.Elem.Layer], r.Rects()...)
		}
	}
	for l := range regions {
		regions[l] = geom.FromRects(rects[l])
	}
	return regions, nil
}

// InstanceCount returns the number of fully instantiated calls below the
// top (each nested call multiplies).
func (d *Design) InstanceCount() int {
	memo := make(map[*Symbol]int)
	var count func(s *Symbol) int
	count = func(s *Symbol) int {
		if v, ok := memo[s]; ok {
			return v
		}
		n := 0
		for _, c := range s.Calls {
			n += 1 + count(c.Target)
		}
		memo[s] = n
		return n
	}
	if d.Top == nil {
		return 0
	}
	return count(d.Top)
}
