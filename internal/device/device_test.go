package device

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func hasProblem(probs []Problem, rule string) bool {
	for _, p := range probs {
		if p.Rule == rule {
			return true
		}
	}
	return false
}

func TestEnhTransistorClean(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewEnhTransistor(d, tc, "m1", 500, 500)
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("clean transistor has problems: %v", probs)
	}
	if info.Class != "mos-transistor" || info.Type != tech.DevNMOSEnh {
		t.Fatalf("info = %+v", info)
	}
	if info.Gate.Empty() {
		t.Fatal("gate region missing")
	}
	if got := info.Gate.Bounds(); got != geom.R(-250, -250, 250, 250) {
		t.Fatalf("gate = %v", got)
	}
	if len(info.Terminals) != 3 {
		t.Fatalf("terminals = %d, want 3 (g,s,d)", len(info.Terminals))
	}
	// Source and drain must be separate nodes; gate its own.
	nodes := map[int]bool{}
	for _, term := range info.Terminals {
		nodes[term.Node] = true
	}
	if len(nodes) != 3 {
		t.Fatalf("transistor must have 3 distinct nodes, got %v", nodes)
	}
	if !info.SpacingExemptSameNet {
		t.Fatal("transistors are same-net spacing exempt")
	}
}

func TestTransistorMissingGateOverlap(t *testing.T) {
	// Figure 8 bottom: the gate overlap "does not exist"; most checkers
	// miss it. Build a transistor whose poly stops flush with the channel.
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	sym := d.MustSymbol("bad")
	sym.DeviceType = tech.DevNMOSEnh
	sym.AddBox(poly, geom.R(-250, -250, 250, 250), "") // no extension at all
	sym.AddBox(diff, geom.R(-750, -250, 750, 250), "")
	_, probs := Analyze(sym, tc)
	if !hasProblem(probs, "DEV.MOS.GATEEXT") {
		t.Fatalf("missing gate overlap not flagged: %v", probs)
	}
}

func TestTransistorShortGateOverlap(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	sym := d.MustSymbol("short")
	sym.DeviceType = tech.DevNMOSEnh
	sym.AddBox(poly, geom.R(-250, -500, 250, 500), "") // only 1λ extension
	sym.AddBox(diff, geom.R(-750, -250, 750, 250), "")
	_, probs := Analyze(sym, tc)
	if !hasProblem(probs, "DEV.MOS.GATEEXT") {
		t.Fatalf("short gate overlap not flagged: %v", probs)
	}
}

func TestTransistorNoChannel(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	sym := d.MustSymbol("noch")
	sym.DeviceType = tech.DevNMOSEnh
	sym.AddBox(poly, geom.R(0, 0, 500, 500), "")
	sym.AddBox(diff, geom.R(2000, 0, 2500, 500), "")
	_, probs := Analyze(sym, tc)
	if !hasProblem(probs, "DEV.MOS.NOCHANNEL") {
		t.Fatalf("missing channel not flagged: %v", probs)
	}
}

func TestContactOverGateInsideSymbol(t *testing.T) {
	// Figure 7 left: contact over the active gate is an error.
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewEnhTransistor(d, tc, "m1", 500, 500)
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	sym.AddBox(cutL, geom.R(-250, -250, 250, 250), "")
	_, probs := Analyze(sym, tc)
	if !hasProblem(probs, "DEV.GATE.CONTACT") {
		t.Fatalf("contact over gate not flagged: %v", probs)
	}
}

func TestDepletionImplant(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewDepTransistor(d, tc, "dep", 500, 500)
	if _, probs := Analyze(sym, tc); len(probs) != 0 {
		t.Fatalf("clean depletion transistor has problems: %v", probs)
	}
	// Remove the implant: must flag.
	d2 := layout.NewDesign("t2")
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	bad := d2.MustSymbol("dep2")
	bad.DeviceType = tech.DevNMOSDep
	bad.AddBox(poly, geom.R(-250, -750, 250, 750), "")
	bad.AddBox(diff, geom.R(-750, -250, 750, 250), "")
	_, probs := Analyze(bad, tc)
	if !hasProblem(probs, "DEV.MOS.IMPLANT") {
		t.Fatalf("missing implant not flagged: %v", probs)
	}
}

func TestPullupClean(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewPullup(d, tc, "pu")
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("clean pullup has problems: %v", probs)
	}
	// Channel is the gate crossing only — the arm under the buried window
	// is a tie, not a channel.
	if got := info.Gate.Bounds(); got != geom.R(-250, -250, 250, 250) {
		t.Fatalf("pullup channel = %v", got)
	}
	// Gate and source fused (node 0), drain separate.
	nodes := map[string]int{}
	for _, term := range info.Terminals {
		nodes[term.Name] = term.Node
	}
	if nodes["g"] != nodes["s"] {
		t.Fatalf("gate not tied to source: %v", nodes)
	}
	if nodes["d"] == nodes["s"] {
		t.Fatalf("drain fused with source: %v", nodes)
	}
}

func TestPullupMissingTie(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	impL, _ := tc.LayerByName(tech.NMOSImplant)
	s := d.MustSymbol("bad")
	s.DeviceType = tech.DevNMOSPullup
	s.AddBox(diffL, geom.R(-250, -1750, 250, 1250), "")
	s.AddBox(polyL, geom.R(-750, -250, 750, 250), "")
	s.AddBox(impL, geom.R(-625, -625, 625, 625), "")
	_, probs := Analyze(s, tc)
	if !hasProblem(probs, "DEV.PU.NOTIE") {
		t.Fatalf("missing tie not flagged: %v", probs)
	}
}

func TestContactClean(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewDiffContact(d, tc, "c1")
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("clean contact has problems: %v", probs)
	}
	if len(info.Terminals) != 2 {
		t.Fatalf("contact terminals = %d", len(info.Terminals))
	}
	// All terminals fused into one node.
	for _, term := range info.Terminals {
		if term.Node != 0 {
			t.Fatalf("contact terminal %q on node %d", term.Name, term.Node)
		}
	}
}

func TestContactEnclosureViolation(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	sym := d.MustSymbol("badc")
	sym.DeviceType = tech.DevContactDiff
	sym.AddBox(cutL, geom.R(-250, -250, 250, 250), "")
	sym.AddBox(metalL, geom.R(-250, -250, 250, 250), "") // no enclosure margin
	sym.AddBox(diffL, geom.R(-500, -500, 500, 500), "")
	_, probs := Analyze(sym, tc)
	if !hasProblem(probs, "DEV.CUT.METAL") {
		t.Fatalf("metal enclosure not flagged: %v", probs)
	}
}

func TestCheckedDeviceSuppressesProblems(t *testing.T) {
	// The paper's "flag specific devices as checked" mechanism.
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	sym := d.MustSymbol("special")
	sym.DeviceType = tech.DevNMOSEnh
	sym.Checked = true
	sym.AddBox(poly, geom.R(-250, -250, 250, 250), "") // rule-breaking
	sym.AddBox(diff, geom.R(-750, -250, 750, 250), "")
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("checked device still reports: %v", probs)
	}
	if info == nil || info.Gate.Empty() {
		t.Fatal("checked device must still yield its electrical model")
	}
}

func TestButtingContactClean(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewButtingContact(d, tc, "b1")
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("clean butting contact has problems: %v", probs)
	}
	// Butting contact has poly∩diff overlap but NO gate keepout — that is
	// the Figure 7 distinction.
	if !info.Gate.Empty() {
		t.Fatal("butting contact must not export a gate keepout")
	}
	for _, term := range info.Terminals {
		if term.Node != 0 {
			t.Fatal("butting contact fuses all terminals")
		}
	}
}

func TestBuriedContactRules(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewBuriedContact(d, tc, "bc")
	if _, probs := Analyze(sym, tc); len(probs) != 0 {
		t.Fatalf("clean buried contact has problems: %v", probs)
	}
	// Shrink the buried window below the overlap-of-overlap margin.
	d2 := layout.NewDesign("t2")
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	buriedL, _ := tc.LayerByName(tech.NMOSBuried)
	bad := d2.MustSymbol("bc2")
	bad.DeviceType = tech.DevBuried
	bad.AddBox(polyL, geom.R(-750, -250, 250, 250), "")
	bad.AddBox(diffL, geom.R(-250, -250, 750, 250), "")
	bad.AddBox(buriedL, geom.R(-250, -250, 250, 250), "") // no margin
	_, probs := Analyze(bad, tc)
	if !hasProblem(probs, "DEV.BURIED.WINDOW") {
		t.Fatalf("buried window margin not flagged: %v", probs)
	}
}

func TestResistorTerminalsAndExemption(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	sym := NewDiffResistor(d, tc, "r1", 2000)
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("clean resistor has problems: %v", probs)
	}
	if info.SpacingExemptSameNet {
		t.Fatal("resistors must NOT be same-net spacing exempt (Figure 5b)")
	}
	if len(info.Terminals) != 2 || info.Terminals[0].Node == info.Terminals[1].Node {
		t.Fatalf("resistor terminals = %+v", info.Terminals)
	}
	if !info.MayTouchIsolation {
		t.Fatal("resistor may touch isolation (Figure 6b)")
	}
	// Too-short resistor flags.
	d2 := layout.NewDesign("t2")
	short := NewDiffResistor(d2, tc, "r2", 500)
	if _, probs := Analyze(short, tc); !hasProblem(probs, "DEV.RES.LENGTH") {
		t.Fatalf("short resistor not flagged: %v", probs)
	}
}

func TestNPNRules(t *testing.T) {
	tc := tech.Bipolar()
	d := layout.NewDesign("t")
	sym := NewNPN(d, tc, "q1")
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("clean npn has problems: %v", probs)
	}
	if info.BaseKeepout.Empty() || info.BaseClearance <= 0 {
		t.Fatal("npn must export base keepout for Figure 6a")
	}
	if info.MayTouchIsolation {
		t.Fatal("npn base must not touch isolation")
	}
	// Emitter sticking out of the base flags.
	d2 := layout.NewDesign("t2")
	baseL, _ := tc.LayerByName(tech.BipBase)
	emL, _ := tc.LayerByName(tech.BipEmitter)
	bad := d2.MustSymbol("q2")
	bad.DeviceType = tech.DevNPN
	bad.AddBox(baseL, geom.R(0, 0, 800, 800), "")
	bad.AddBox(emL, geom.R(600, 600, 900, 900), "")
	if _, probs := Analyze(bad, tc); !hasProblem(probs, "DEV.NPN.ENCLOSE") {
		t.Fatalf("emitter enclosure not flagged: %v", probs)
	}
	// Isolation inside the symbol near the base flags.
	d3 := layout.NewDesign("t3")
	isoL, _ := tc.LayerByName(tech.BipIso)
	shorted := d3.MustSymbol("q3")
	shorted.DeviceType = tech.DevNPN
	shorted.AddBox(baseL, geom.R(0, 0, 800, 800), "")
	shorted.AddBox(emL, geom.R(250, 250, 550, 550), "")
	shorted.AddBox(isoL, geom.R(800, 0, 1200, 800), "") // touching the base
	if _, probs := Analyze(shorted, tc); !hasProblem(probs, "DEV.NPN.ISO") {
		t.Fatalf("base-isolation short not flagged: %v", probs)
	}
}

func TestBaseResistorMayTouchIsolation(t *testing.T) {
	tc := tech.Bipolar()
	d := layout.NewDesign("t")
	sym := NewBaseResistor(d, tc, "r1", 1000)
	info, probs := Analyze(sym, tc)
	if len(probs) != 0 {
		t.Fatalf("clean base resistor has problems: %v", probs)
	}
	if !info.MayTouchIsolation {
		t.Fatal("Figure 6b: base resistor may legally tie to isolation")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	notdev := d.MustSymbol("plain")
	if _, probs := Analyze(notdev, tc); !hasProblem(probs, "DEV.NOTDEVICE") {
		t.Fatalf("non-device symbol: %v", probs)
	}
	unk := d.MustSymbol("unknown")
	unk.DeviceType = "flux-capacitor"
	if _, probs := Analyze(unk, tc); !hasProblem(probs, "DEV.UNKNOWN") {
		t.Fatalf("unknown device type: %v", probs)
	}
}

func TestAccidentalTransistorDetector(t *testing.T) {
	poly := geom.FromRectR(geom.R(0, 0, 500, 2000))
	diffAway := geom.FromRectR(geom.R(1000, 0, 2000, 500))
	if _, bad := AccidentalTransistor(poly, diffAway); bad {
		t.Fatal("disjoint poly/diff flagged")
	}
	diffCross := geom.FromRectR(geom.R(-500, 500, 1000, 1000))
	ov, bad := AccidentalTransistor(poly, diffCross)
	if !bad {
		t.Fatal("crossing poly/diff not flagged")
	}
	if got := ov.Bounds(); got != geom.R(0, 500, 500, 1000) {
		t.Fatalf("overlap = %v", got)
	}
}

func TestClassesRegistered(t *testing.T) {
	got := strings.Join(Classes(), ",")
	for _, want := range []string{"mos-transistor", "contact", "butting-contact", "buried-contact", "resistor", "npn-transistor"} {
		if !strings.Contains(got, want) {
			t.Fatalf("class %q missing from %q", want, got)
		}
	}
}

func TestPullupBuriedOverlapMargin(t *testing.T) {
	// A buried window flush with the tie (no cross-arm margin) must flag.
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	buriedL, _ := tc.LayerByName(tech.NMOSBuried)
	impL, _ := tc.LayerByName(tech.NMOSImplant)
	s := d.MustSymbol("pu")
	s.DeviceType = tech.DevNMOSPullup
	s.AddBox(diffL, geom.R(-250, -1750, 250, 1250), "")
	s.AddBox(polyL, geom.R(-750, -250, 750, 250), "")
	s.AddBox(polyL, geom.R(-250, -1250, 250, -250), "")
	s.AddBox(buriedL, geom.R(-250, -1500, 250, -250), "") // no x margin
	s.AddBox(impL, geom.R(-625, -625, 625, 625), "")
	_, probs := Analyze(s, tc)
	if !hasProblem(probs, "DEV.PU.BURIED") {
		t.Fatalf("flush buried window not flagged: %v", probs)
	}
}

func TestPullupMissingImplant(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	buriedL, _ := tc.LayerByName(tech.NMOSBuried)
	s := d.MustSymbol("pu")
	s.DeviceType = tech.DevNMOSPullup
	s.AddBox(diffL, geom.R(-250, -1750, 250, 1250), "")
	s.AddBox(polyL, geom.R(-750, -250, 750, 250), "")
	s.AddBox(polyL, geom.R(-250, -1250, 250, -250), "")
	s.AddBox(buriedL, geom.R(-500, -1500, 500, -250), "")
	_, probs := Analyze(s, tc)
	if !hasProblem(probs, "DEV.PU.IMPLANT") {
		t.Fatalf("missing implant not flagged: %v", probs)
	}
}

func TestButtingContactNarrowOverlap(t *testing.T) {
	// Poly-diffusion overlap below the rule width must flag.
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	s := d.MustSymbol("bc")
	s.DeviceType = tech.DevButting
	s.AddBox(diffL, geom.R(-750, -250, 100, 250), "") // only 100 overlap
	s.AddBox(polyL, geom.R(0, -250, 750, 250), "")
	s.AddBox(cutL, geom.R(-250, -250, 250, 250), "")
	s.AddBox(metalL, geom.R(-500, -500, 500, 500), "")
	_, probs := Analyze(s, tc)
	if !hasProblem(probs, "DEV.BUTT.OVERLAP") {
		t.Fatalf("narrow butting overlap not flagged: %v", probs)
	}
}

func TestContactCutTooSmall(t *testing.T) {
	tc := tech.NMOS()
	d := layout.NewDesign("t")
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	s := d.MustSymbol("c")
	s.DeviceType = tech.DevContactDiff
	s.AddBox(cutL, geom.R(-150, -250, 150, 250), "") // 300 < 500
	s.AddBox(metalL, geom.R(-500, -500, 500, 500), "")
	s.AddBox(diffL, geom.R(-500, -500, 500, 500), "")
	_, probs := Analyze(s, tc)
	if !hasProblem(probs, "DEV.CUT.SIZE") {
		t.Fatalf("small cut not flagged: %v", probs)
	}
}
