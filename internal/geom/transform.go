package geom

import "fmt"

// Orient is one of the eight Manhattan orientations: rotations by multiples
// of 90 degrees, optionally composed with a mirror about the X axis.
// CIF restricts symbol calls to these when the rotation vector is axial,
// which is all the structured-design style of the paper uses.
type Orient uint8

// The eight Manhattan orientations. RN is counterclockwise rotation by N
// degrees; MX* is a mirror about the X axis (negating Y) applied first.
const (
	R0 Orient = iota
	R90
	R180
	R270
	MX    // (x,y) -> (x,-y)
	MX90  // mirror then rotate 90
	MX180 // mirror then rotate 180 == MY
	MX270 // mirror then rotate 270
)

// String implements fmt.Stringer.
func (o Orient) String() string {
	switch o {
	case R0:
		return "R0"
	case R90:
		return "R90"
	case R180:
		return "R180"
	case R270:
		return "R270"
	case MX:
		return "MX"
	case MX90:
		return "MX90"
	case MX180:
		return "MX180"
	case MX270:
		return "MX270"
	}
	return fmt.Sprintf("Orient(%d)", uint8(o))
}

// apply maps p through the orientation (about the origin).
func (o Orient) apply(p Point) Point {
	x, y := p.X, p.Y
	if o >= MX {
		y = -y
	}
	switch o & 3 {
	case 0:
		return Point{x, y}
	case 1: // 90 CCW
		return Point{-y, x}
	case 2:
		return Point{-x, -y}
	default: // 270
		return Point{y, -x}
	}
}

// compose returns the orientation equivalent to applying o first, then q.
func (o Orient) compose(q Orient) Orient {
	// Track mirror parity and net rotation. Applying q after o: if q has a
	// mirror, the rotation of o is negated by the mirror conjugation.
	oRot, oMir := int(o&3), o >= MX
	qRot, qMir := int(q&3), q >= MX
	var rot int
	if qMir {
		rot = (qRot - oRot + 8) % 4
	} else {
		rot = (qRot + oRot) % 4
	}
	mir := oMir != qMir
	out := Orient(rot)
	if mir {
		out += MX
	}
	return out
}

// inverse returns the orientation that undoes o. Pure rotations invert to
// the complementary rotation; the four mirrored orientations are
// reflections and therefore involutions.
func (o Orient) inverse() Orient {
	if o >= MX {
		return o
	}
	return Orient((4 - int(o&3)) % 4)
}

// Transform is a Manhattan rigid transform: an orientation followed by a
// translation. It is the transform class of CIF symbol calls restricted to
// axial rotation vectors.
type Transform struct {
	Orient Orient
	Trans  Point
}

// Identity is the do-nothing transform.
var Identity = Transform{}

// Translate returns a pure translation by d.
func Translate(d Point) Transform { return Transform{R0, d} }

// NewTransform returns the transform that applies orient about the origin
// then translates by trans.
func NewTransform(orient Orient, trans Point) Transform {
	return Transform{orient, trans}
}

// Apply maps a point through t.
func (t Transform) Apply(p Point) Point {
	return t.Orient.apply(p).Add(t.Trans)
}

// ApplyRect maps a rect through t (re-normalizing corner order).
func (t Transform) ApplyRect(r Rect) Rect {
	a := t.Apply(Point{r.X1, r.Y1})
	b := t.Apply(Point{r.X2, r.Y2})
	return R(a.X, a.Y, b.X, b.Y)
}

// Compose returns the transform equivalent to applying t first, then u.
func (t Transform) Compose(u Transform) Transform {
	return Transform{
		Orient: t.Orient.compose(u.Orient),
		Trans:  u.Apply(t.Trans),
	}
}

// Inverse returns the transform that undoes t.
func (t Transform) Inverse() Transform {
	io := t.Orient.inverse()
	return Transform{io, io.apply(t.Trans).Neg()}
}

// IsMirrored reports whether t includes a reflection.
func (t Transform) IsMirrored() bool { return t.Orient >= MX }

// String implements fmt.Stringer.
func (t Transform) String() string {
	return fmt.Sprintf("%s+%s", t.Orient, t.Trans)
}
