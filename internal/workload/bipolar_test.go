package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tech"
)

func TestBipolarChipClean(t *testing.T) {
	chip := NewBipolarChip(tech.Bipolar(), "bip", 6)
	rep, err := core.Check(chip.Design, chip.Tech, core.Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Errors() {
		t.Errorf("clean bipolar chip flagged: %v", v)
	}
	// 6 transistors + 6 resistors.
	if got := len(rep.Netlist.Devices); got != 12 {
		t.Fatalf("devices = %d, want 12", got)
	}
}

func TestBipolarChipBreakIsolation(t *testing.T) {
	chip := NewBipolarChip(tech.Bipolar(), "bip", 6)
	where := chip.BreakIsolation(3)
	rep, err := core.Check(chip.Design, chip.Tech, core.Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, v := range rep.Errors() {
		if v.Rule == "DEV.NPN.ISO" {
			hits++
			if !v.Where.Expand(500).Touches(where) {
				t.Errorf("DEV.NPN.ISO at %v, expected near %v", v.Where, where)
			}
		}
	}
	if hits == 0 {
		t.Fatalf("broken isolation not flagged: %v", rep.Errors())
	}
	// The legal resistor ties must stay quiet: only transistor 3 flags.
	for _, v := range rep.Errors() {
		if v.Rule == "DEV.NPN.ISO" && !v.Where.Expand(500).Touches(where) {
			t.Errorf("false isolation flag: %v", v)
		}
	}
}
