package tech

// Simplified bipolar process for the device-dependent rules of Figure 6:
// a base-diffusion region belonging to a transistor must never touch the
// isolation diffusion around it (that destroys the device), while the very
// same base diffusion used as a resistor may legally connect to isolation
// (the common way to tie one end of a resistor to ground).
//
// Mask-level checkers cannot express this distinction — the two cases are
// identical geometry on identical layers — which is precisely the paper's
// argument for device-aware checking.
//
// The process is defined by decks/bipolar.deck; Bipolar is a thin loader
// over the embedded text, and bipolarFromCode is the retained reference
// constructor for the deck-parity tests.

// Bipolar layer name constants.
const (
	BipIso     = "isolation"
	BipBase    = "base"
	BipEmitter = "emitter"
	BipContact = "contact"
	BipMetal   = "metal"
)

// Bipolar device type names.
const (
	DevNPN          = "npn"           // bipolar transistor
	DevResistorBase = "resistor-base" // base-diffusion resistor
	DevBipContact   = "contact-bip"   // metal contact
)

func init() { Register("bipolar", Bipolar) }

// Bipolar builds the simplified bipolar technology of Figure 6 from its
// embedded rule deck (decks/bipolar.deck). Dimensions use a 100
// centimicron (1 µm) unit.
func Bipolar() *Technology { return mustParseDeck(bipolarDeck) }

// bipolarFromCode is the legacy hand-built constructor.
func bipolarFromCode() *Technology {
	const u = 100
	t := New("bipolar-demo", 0)

	iso := t.AddLayer(Layer{Name: BipIso, CIF: "BI", Role: RoleIsolation, MinWidth: 4 * u, MinSpace: 6 * u})
	base := t.AddLayer(Layer{Name: BipBase, CIF: "BB", Role: RoleBase, MinWidth: 4 * u, MinSpace: 6 * u})
	em := t.AddLayer(Layer{Name: BipEmitter, CIF: "BE", Role: RoleEmitter, MinWidth: 3 * u, MinSpace: 4 * u})
	c := t.AddLayer(Layer{Name: BipContact, CIF: "BC", Role: RoleContact, MinWidth: 2 * u, MinSpace: 2 * u})
	m := t.AddLayer(Layer{Name: BipMetal, CIF: "BM", Role: RoleMetal, MinWidth: 3 * u, MinSpace: 3 * u})

	t.SetSpacing(base, base, SpacingRule{
		DiffNet: 6 * u, SameNet: 0, ExemptRelated: true,
		Note: "base diffusion spacing",
	})
	// The Figure 6 rule: base (of a transistor) to isolation. The checker
	// overrides this per-device: transistor base must keep the spacing even
	// when shorted (error if touching), resistor base may touch legally.
	t.SetSpacing(base, iso, SpacingRule{
		DiffNet: 2 * u, SameNet: 2 * u,
		Note: "base to isolation; device-dependent (Fig 6)",
	})
	t.SetSpacing(iso, iso, SpacingRule{Note: "isolation merges freely"})
	t.SetSpacing(em, em, SpacingRule{DiffNet: 4 * u, Note: "emitter spacing"})
	t.SetSpacing(em, base, SpacingRule{ExemptRelated: true, Note: "emitter sits in base (checked in symbol)"})
	t.SetSpacing(em, iso, SpacingRule{DiffNet: 4 * u, Note: "emitter to isolation"})
	t.SetSpacing(m, m, SpacingRule{DiffNet: 3 * u, Note: "metal spacing"})
	t.SetSpacing(c, c, SpacingRule{DiffNet: 2 * u, Note: "contact spacing"})
	t.SetSpacing(base, m, SpacingRule{Note: "no rule"})
	t.SetSpacing(iso, m, SpacingRule{Note: "no rule"})

	// Geometric rule classes beyond pairwise spacing, in raw centimicrons.
	t.SetWidthRule(iso, LayerRule{Min: 4 * u, Note: "isolation web region width"})
	t.SetCrossRule(CrossEnclose, base, em, CrossRule{Margin: 1 * u, Note: "base past emitter, judged over merged geometry"})

	t.AddDevice(DevNPN, DeviceSpec{
		Class:    "npn-transistor",
		Describe: "npn transistor: emitter within base; base must not touch isolation",
		Params: map[string]int64{
			"emitter-enclosure": 1 * u, // base beyond emitter
			"iso-clearance":     2 * u, // base to isolation clearance
		},
	})
	t.AddDevice(DevResistorBase, DeviceSpec{
		Class:    "resistor",
		Describe: "base-diffusion resistor; may legally tie to isolation (Fig 6b)",
		Params: map[string]int64{
			"min-length": 6 * u,
		},
	})
	t.AddDevice(DevBipContact, DeviceSpec{
		Class:    "contact",
		Describe: "metal contact",
		Params: map[string]int64{
			"cut-size":        2 * u,
			"metal-enclosure": 1 * u,
			"lower-enclosure": 1 * u,
		},
	})

	t.PowerNets = []string{"VCC", "vcc"}
	t.GroundNets = []string{"GND", "gnd"}
	return t
}
