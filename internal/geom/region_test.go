package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomRegion builds a region from up to n random small rects; used by the
// property tests below.
func randomRegion(r *rand.Rand, n int) Region {
	k := 1 + r.Intn(n)
	rects := make([]Rect, 0, k)
	for i := 0; i < k; i++ {
		x := int64(r.Intn(60) - 30)
		y := int64(r.Intn(60) - 30)
		w := int64(1 + r.Intn(12))
		h := int64(1 + r.Intn(12))
		rects = append(rects, Rect{x, y, x + w, y + h})
	}
	return FromRects(rects)
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Values:   nil,
	}
}

func TestFromRectBasics(t *testing.T) {
	r := FromRectR(R(0, 0, 10, 5))
	if got := r.Area(); got != 50 {
		t.Fatalf("Area = %d, want 50", got)
	}
	if got := r.Bounds(); got != R(0, 0, 10, 5) {
		t.Fatalf("Bounds = %v", got)
	}
	if r.Empty() {
		t.Fatal("region should not be empty")
	}
	if !FromRectR(Rect{3, 3, 3, 9}).Empty() {
		t.Fatal("degenerate rect should give empty region")
	}
}

func TestUnionMergesTouchingRects(t *testing.T) {
	// Two rects sharing a full vertical edge must canonicalize into one.
	r := FromRects([]Rect{R(0, 0, 5, 10), R(5, 0, 9, 10)})
	if got := r.NumRects(); got != 1 {
		t.Fatalf("NumRects = %d, want 1 (edge-adjacent rects merge)", got)
	}
	if got := r.Area(); got != 90 {
		t.Fatalf("Area = %d, want 90", got)
	}
}

func TestUnionOverlapArea(t *testing.T) {
	a := FromRectR(R(0, 0, 10, 10))
	b := FromRectR(R(5, 5, 15, 15))
	u := a.Union(b)
	if got := u.Area(); got != 175 {
		t.Fatalf("union area = %d, want 175", got)
	}
	i := a.Intersect(b)
	if got := i.Area(); got != 25 {
		t.Fatalf("intersection area = %d, want 25", got)
	}
	d := a.Subtract(b)
	if got := d.Area(); got != 75 {
		t.Fatalf("difference area = %d, want 75", got)
	}
	x := a.Xor(b)
	if got := x.Area(); got != 150 {
		t.Fatalf("xor area = %d, want 150", got)
	}
}

func TestSubtractSplitsBands(t *testing.T) {
	a := FromRectR(R(0, 0, 10, 10))
	hole := FromRectR(R(4, 4, 6, 6))
	d := a.Subtract(hole)
	if got := d.Area(); got != 96 {
		t.Fatalf("area = %d, want 96", got)
	}
	if d.ContainsPoint(Pt(5, 5)) {
		t.Fatal("hole center should not be contained")
	}
	if !d.ContainsPoint(Pt(1, 1)) {
		t.Fatal("corner should be contained")
	}
	// The donut must still be a single connected component.
	if got := len(d.Components()); got != 1 {
		t.Fatalf("components = %d, want 1", got)
	}
}

func TestContainsPointHalfOpen(t *testing.T) {
	r := FromRectR(R(0, 0, 4, 4))
	if !r.ContainsPoint(Pt(0, 0)) {
		t.Fatal("lower-left corner should be inside (half-open)")
	}
	if r.ContainsPoint(Pt(4, 4)) {
		t.Fatal("upper-right corner should be outside (half-open)")
	}
	if r.ContainsPoint(Pt(4, 0)) || r.ContainsPoint(Pt(0, 4)) {
		t.Fatal("upper/right edges should be outside (half-open)")
	}
}

func TestComponentsCornerAdjacency(t *testing.T) {
	// Corner-touching rects must remain separate components; edge-sharing
	// rects must fuse.
	corner := FromRects([]Rect{R(0, 0, 5, 5), R(5, 5, 10, 10)})
	if got := len(corner.Components()); got != 2 {
		t.Fatalf("corner-touching components = %d, want 2", got)
	}
	edge := FromRects([]Rect{R(0, 0, 5, 5), R(5, 0, 10, 5)})
	if got := len(edge.Components()); got != 1 {
		t.Fatalf("edge-sharing components = %d, want 1", got)
	}
	partial := FromRects([]Rect{R(0, 0, 5, 5), R(3, 5, 10, 10)})
	if got := len(partial.Components()); got != 1 {
		t.Fatalf("partial edge overlap components = %d, want 1", got)
	}
}

func TestDilateErodeBasics(t *testing.T) {
	r := FromRectR(R(10, 10, 20, 20))
	d := r.Dilate(3)
	if got := d.Bounds(); got != R(7, 7, 23, 23) {
		t.Fatalf("dilate bounds = %v", got)
	}
	if got := d.Area(); got != 16*16 {
		t.Fatalf("dilate area = %d, want 256", got)
	}
	e := r.Erode(3)
	if got := e.Bounds(); got != R(13, 13, 17, 17) {
		t.Fatalf("erode bounds = %v", got)
	}
	if !r.Erode(5).Empty() {
		t.Fatal("eroding a 10-wide rect by 5 must be empty")
	}
}

func TestErodeLShapeKeepsArms(t *testing.T) {
	l := FromRects([]Rect{R(0, 0, 30, 10), R(0, 0, 10, 30)})
	e := l.Erode(2)
	want := FromRects([]Rect{R(2, 2, 28, 8), R(2, 2, 8, 28)})
	if !e.Equal(want) {
		t.Fatalf("L erode:\n got  %v\n want %v", e, want)
	}
}

func TestOpeningIsExactForLegalManhattan(t *testing.T) {
	// Square opening (erode+dilate) must reproduce a legal-width L exactly —
	// the orthogonal check has no Figure 4 corner pathology.
	l := FromRects([]Rect{R(0, 0, 30, 10), R(0, 0, 10, 30)})
	opened := l.Erode(4).Dilate(4)
	if !opened.Equal(l) {
		t.Fatalf("opening changed a legal L:\n got  %v\n want %v", opened, l)
	}
}

func TestTranslateScaleTransform(t *testing.T) {
	r := FromRects([]Rect{R(0, 0, 4, 2), R(0, 2, 2, 4)})
	tr := r.Translate(Pt(10, 20))
	if got := tr.Bounds(); got != R(10, 20, 14, 24) {
		t.Fatalf("translate bounds = %v", got)
	}
	sc := r.Scale(3)
	if got := sc.Area(); got != r.Area()*9 {
		t.Fatalf("scale area = %d, want %d", got, r.Area()*9)
	}
	rot := r.TransformBy(NewTransform(R90, Pt(0, 0)))
	if got := rot.Area(); got != r.Area() {
		t.Fatalf("rotate area = %d, want %d", got, r.Area())
	}
	if got := rot.Bounds(); got != R(-2, 0, 0, 4).Union(R(-4, 0, -2, 2)) {
		t.Fatalf("rotate bounds = %v", got)
	}
}

func TestOverlapsAgreesWithIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		a := randomRegion(rng, 6)
		b := randomRegion(rng, 6)
		want := !a.Intersect(b).Empty()
		if got := a.Overlaps(b); got != want {
			t.Fatalf("Overlaps=%v but Intersect empty=%v\na=%v\nb=%v", got, !want, a, b)
		}
	}
}

// Property: area is a valuation — |A∪B| + |A∩B| == |A| + |B|.
func TestQuickAreaValuation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRegion(r, 8)
		b := randomRegion(r, 8)
		return a.Union(b).Area()+a.Intersect(b).Area() == a.Area()+b.Area()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan within a frame — F\(A∪B) == (F\A)∩(F\B).
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRegion(r, 8)
		b := randomRegion(r, 8)
		frame := FromRectR(a.Bounds().Union(b.Bounds()).Expand(5))
		lhs := frame.Subtract(a.Union(b))
		rhs := frame.Subtract(a).Intersect(frame.Subtract(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: dilation distributes over union.
func TestQuickDilateDistributesOverUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRegion(r, 6)
		b := randomRegion(r, 6)
		d := int64(1 + r.Intn(4))
		lhs := a.Union(b).Dilate(d)
		rhs := a.Dilate(d).Union(b.Dilate(d))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: erosion then dilation (opening) is contained in the original;
// dilation then erosion (closing) contains the original.
func TestQuickOpeningClosingOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRegion(r, 8)
		d := int64(1 + r.Intn(4))
		opening := a.Erode(d).Dilate(d)
		closing := a.Dilate(d).Erode(d)
		return a.ContainsRegion(opening) && closing.ContainsRegion(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: erode/dilate adjunction — erode(dilate(A,d),d) ⊇ A and
// dilate(erode(A,d),d) ⊆ A, plus exact inversion for single rects.
func TestQuickErodeDilateRectExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := int64(2 + r.Intn(20))
		h := int64(2 + r.Intn(20))
		d := int64(1 + r.Intn(5))
		a := FromRectR(R(0, 0, w, h))
		return a.Dilate(d).Erode(d).Equal(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: Components partition the region — union of components equals
// the region, components are pairwise non-overlapping.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRegion(r, 10)
		comps := a.Components()
		u := EmptyRegion()
		for _, c := range comps {
			if u.Overlaps(c) {
				return false
			}
			u = u.Union(c)
		}
		return u.Equal(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: Rects() is an exact decomposition.
func TestQuickRectsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomRegion(r, 10)
		return FromRects(a.Rects()).Equal(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
