package tech

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/deck"
)

// techEqual compares the semantic content of two technologies, reporting
// the first difference found.
func techEqual(t *testing.T, label string, a, b *Technology) {
	t.Helper()
	if a.Name != b.Name || a.Lambda != b.Lambda {
		t.Fatalf("%s: name/lambda %q/%d vs %q/%d", label, a.Name, a.Lambda, b.Name, b.Lambda)
	}
	if !reflect.DeepEqual(a.layers, b.layers) {
		t.Fatalf("%s: layers\n%+v\nvs\n%+v", label, a.layers, b.layers)
	}
	if !reflect.DeepEqual(a.spacing, b.spacing) {
		for p, r := range a.spacing {
			if other, ok := b.spacing[p]; !ok || !reflect.DeepEqual(r, other) {
				t.Fatalf("%s: spacing cell %v: %+v vs %+v (present=%v)", label, p, r, other, ok)
			}
		}
		t.Fatalf("%s: spacing maps differ in size: %d vs %d", label, len(a.spacing), len(b.spacing))
	}
	if !reflect.DeepEqual(a.widths, b.widths) {
		t.Fatalf("%s: width rules\n%+v\nvs\n%+v", label, a.widths, b.widths)
	}
	if !reflect.DeepEqual(a.areas, b.areas) {
		t.Fatalf("%s: area rules\n%+v\nvs\n%+v", label, a.areas, b.areas)
	}
	if !reflect.DeepEqual(a.crosses, b.crosses) {
		t.Fatalf("%s: cross rules\n%+v\nvs\n%+v", label, a.crosses, b.crosses)
	}
	if !reflect.DeepEqual(a.devices, b.devices) {
		for n, s := range a.devices {
			if other, ok := b.devices[n]; !ok || !reflect.DeepEqual(s, other) {
				t.Fatalf("%s: device %q: %+v vs %+v (present=%v)", label, n, s, other, ok)
			}
		}
		t.Fatalf("%s: device tables differ in size: %d vs %d", label, len(a.devices), len(b.devices))
	}
	if !reflect.DeepEqual(a.PowerNets, b.PowerNets) || !reflect.DeepEqual(a.GroundNets, b.GroundNets) {
		t.Fatalf("%s: rails %v/%v vs %v/%v", label, a.PowerNets, a.GroundNets, b.PowerNets, b.GroundNets)
	}
}

// TestDeckParityNMOS locks the refactor's central invariant: the embedded
// nmos.deck compiles to exactly the technology the legacy Go constructor
// built.
func TestDeckParityNMOS(t *testing.T) {
	techEqual(t, "nmos", nmosFromCode(), NMOS())
}

func TestDeckParityBipolar(t *testing.T) {
	techEqual(t, "bipolar", bipolarFromCode(), Bipolar())
}

// TestToDeckRoundTrip: code → deck → code reproduces the technology, and
// writing the generated deck re-parses to the same technology.
func TestToDeckRoundTrip(t *testing.T) {
	for _, fn := range []func() *Technology{NMOS, Bipolar, CMOS} {
		orig := fn()
		d := ToDeck(orig)
		back, err := FromDeck(d)
		if err != nil {
			t.Fatalf("%s: FromDeck(ToDeck): %v", orig.Name, err)
		}
		techEqual(t, orig.Name+" FromDeck∘ToDeck", orig, back)
		reparsed, err := ParseDeck(deck.Write(d))
		if err != nil {
			t.Fatalf("%s: reparse of written deck: %v", orig.Name, err)
		}
		techEqual(t, orig.Name+" Parse∘Write", orig, reparsed)
	}
}

func TestRegistry(t *testing.T) {
	want := []string{"bipolar", "cmos", "nmos"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	fn, ok := ByName("cmos")
	if !ok {
		t.Fatal("cmos not registered")
	}
	if tc := fn(); tc.Name != "cmos-1um" || tc.Lambda != 100 {
		t.Fatalf("cmos tech = %q λ=%d", tc.Name, tc.Lambda)
	}
	if _, ok := ByName("sos"); ok {
		t.Fatal("unknown technology resolved")
	}
}

func TestCompiledMatchesMaps(t *testing.T) {
	for _, fn := range []func() *Technology{NMOS, Bipolar, CMOS} {
		tc := fn()
		c := tc.Compile()
		if c != tc.Compile() {
			t.Fatalf("%s: Compile not cached", tc.Name)
		}
		var wantMax int64
		n := tc.NumLayers()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b := LayerID(i), LayerID(j)
				fromMap := tc.spacing[Pair(a, b)]
				if got := *c.Rule(a, b); got != fromMap {
					t.Fatalf("%s: Rule(%d,%d) = %+v, map has %+v", tc.Name, i, j, got, fromMap)
				}
				if fromMap.DiffNet > wantMax {
					wantMax = fromMap.DiffNet
				}
				if fromMap.SameNet > wantMax {
					wantMax = fromMap.SameNet
				}
				// Every pair with a non-zero rule must survive the filter.
				if (fromMap.DiffNet > 0 || fromMap.SameNet > 0) && !c.Interacts(a, b) {
					t.Fatalf("%s: ruleful pair (%d,%d) filtered", tc.Name, i, j)
				}
			}
		}
		if c.MaxSpacing() != wantMax {
			t.Fatalf("%s: MaxSpacing = %d, want %d", tc.Name, c.MaxSpacing(), wantMax)
		}
		// Poly over any diffusion must survive the filter (Figure 8) and
		// mutation must invalidate the cache.
		if poly, ok := c.Poly(); ok {
			for i := 0; i < n; i++ {
				if c.IsDiffusion(LayerID(i)) && !c.Interacts(poly, LayerID(i)) {
					t.Fatalf("%s: poly-diffusion pair (%d) filtered", tc.Name, i)
				}
			}
		}
		// The new rule slots must mirror the authoring maps, and the cross
		// list must be deterministic (kind, a, b) order with the margins
		// reachable through the packed-pair index.
		for i := 0; i < n; i++ {
			wr, _ := tc.WidthRuleFor(LayerID(i))
			if c.WidthMin(LayerID(i)) != wr.Min {
				t.Fatalf("%s: WidthMin(%d) = %d, map has %d", tc.Name, i, c.WidthMin(LayerID(i)), wr.Min)
			}
			ar, _ := tc.AreaRuleFor(LayerID(i))
			if c.AreaMin(LayerID(i)) != ar.Min {
				t.Fatalf("%s: AreaMin(%d) = %d, map has %d", tc.Name, i, c.AreaMin(LayerID(i)), ar.Min)
			}
		}
		list := c.CrossRules()
		for i, cr := range list {
			if mapped, ok := tc.CrossRuleFor(cr.Kind, cr.A, cr.B); !ok || mapped.Margin != cr.Margin {
				t.Fatalf("%s: cross list entry %+v not in map (%+v, %v)", tc.Name, cr, mapped, ok)
			}
			if c.CrossMargin(cr.Kind, cr.A, cr.B) != cr.Margin {
				t.Fatalf("%s: CrossMargin(%v,%d,%d) = %d, want %d",
					tc.Name, cr.Kind, cr.A, cr.B, c.CrossMargin(cr.Kind, cr.A, cr.B), cr.Margin)
			}
			if i > 0 {
				p := list[i-1]
				if p.Kind > cr.Kind || (p.Kind == cr.Kind && (p.A > cr.A || (p.A == cr.A && p.B >= cr.B))) {
					t.Fatalf("%s: cross list not in (kind, a, b) order: %+v before %+v", tc.Name, p, cr)
				}
			}
			// Cross rules are definition-level; they must not widen the
			// pair-sweep interaction filter on their own.
		}
		for key := range tc.crosses {
			if _, ok := tc.spacing[Pair(key.a, key.b)]; !ok && c.Interacts(key.a, key.b) &&
				!(c.hasPoly && key.a == c.polyID && c.isDiff[key.b]) {
				t.Fatalf("%s: cross rule %v marked the interacts bitset", tc.Name, key)
			}
		}

		tc.SetSpacing(0, 0, SpacingRule{DiffNet: 9 * wantMax})
		if tc.MaxSpacing() != 9*wantMax {
			t.Fatalf("%s: compiled form not invalidated on mutation", tc.Name)
		}
		tc.SetWidthRule(0, LayerRule{Min: 123})
		if tc.Compile().WidthMin(0) != 123 {
			t.Fatalf("%s: compiled form not invalidated on width-rule mutation", tc.Name)
		}
	}
}

// TestCompileManyLayers: the compiled form must handle technologies wider
// than one bitset word (Go-built technologies have no deck-level layer
// cap), without panicking and with correct filtering at high layer ids.
func TestCompileManyLayers(t *testing.T) {
	tc := New("wide", 0)
	for i := 0; i < 70; i++ {
		tc.AddLayer(Layer{Name: fmt.Sprintf("l%d", i), CIF: fmt.Sprintf("X%d", i)})
	}
	tc.SetSpacing(2, 69, SpacingRule{DiffNet: 100})
	tc.SetSpacing(68, 69, SpacingRule{SameNet: 50})
	c := tc.Compile()
	if tc.MaxSpacing() != 100 {
		t.Fatalf("MaxSpacing = %d", tc.MaxSpacing())
	}
	for _, want := range []struct {
		a, b LayerID
		ok   bool
	}{{2, 69, true}, {69, 2, true}, {68, 69, true}, {2, 68, false}, {0, 69, false}} {
		if got := c.Interacts(want.a, want.b); got != want.ok {
			t.Fatalf("Interacts(%d,%d) = %v, want %v", want.a, want.b, got, want.ok)
		}
	}
	if r := c.Rule(69, 2); r.DiffNet != 100 {
		t.Fatalf("Rule(69,2) = %+v", r)
	}
}

func TestCMOSDeckOnly(t *testing.T) {
	tc := CMOS()
	if tc.NumLayers() != 6 {
		t.Fatalf("layers = %d", tc.NumLayers())
	}
	c := tc.Compile()
	nd, _ := tc.LayerByName(CMOSNDiff)
	pd, _ := tc.LayerByName(CMOSPDiff)
	po, _ := tc.LayerByName(CMOSPoly)
	if !c.IsDiffusion(nd) || !c.IsDiffusion(pd) {
		t.Fatal("both diffusion polarities must carry the diffusion role")
	}
	if poly, ok := c.Poly(); !ok || poly != po {
		t.Fatal("poly role not resolved")
	}
	spec, ok := tc.Device(DevCMOSPMOS)
	if !ok || spec.Layers["diffusion"] != CMOSPDiff {
		t.Fatalf("pmos spec = %+v", spec)
	}
	if id, ok := tc.LayerFor(spec, RoleDiffusion, ""); !ok || id != pd {
		t.Fatalf("LayerFor(pmos, diffusion) = %d, %v", id, ok)
	}
	// The unbound nmos side resolves through the explicit use line too.
	nspec, _ := tc.Device(DevCMOSNMOS)
	if id, ok := tc.LayerFor(nspec, RoleDiffusion, ""); !ok || id != nd {
		t.Fatalf("LayerFor(nmos, diffusion) = %d, %v", id, ok)
	}
}
