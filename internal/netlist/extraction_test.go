package netlist

import (
	"testing"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func TestExtractFullArtifacts(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	d := layout.NewDesign("artifacts")
	tran := device.NewEnhTransistor(d, tc, "m", 500, 500)
	top := d.MustSymbol("top")
	top.AddCall(tran, geom.Identity, "m1")
	top.AddWire(diff, 500, "src", geom.Pt(-2000, 0), geom.Pt(-500, 0))
	top.AddWire(poly, 500, "gat", geom.Pt(0, 250), geom.Pt(0, 2500))
	d.Top = top

	ex, _, err := ExtractFull(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	// Items: 2 interconnect + 3 terminals (g, s, d) + the diff-layer
	// channel remainder exported as netless support geometry.
	if len(ex.Items) != 6 {
		t.Fatalf("items = %d, want 6", len(ex.Items))
	}
	// The transistor exports one gate keepout.
	if len(ex.Gates) != 1 {
		t.Fatalf("gates = %d", len(ex.Gates))
	}
	if got := ex.Gates[0].Reg.Bounds(); got != geom.R(-250, -250, 250, 250) {
		t.Fatalf("gate keepout = %v", got)
	}
	if len(ex.BaseKeepouts) != 0 {
		t.Fatal("nMOS device should not export base keepouts")
	}
	// Exactly one item is netless: the channel's diff-layer footprint
	// ("the gate ... cannot be assigned to a net").
	noNet := 0
	for _, it := range ex.Items {
		if it.Net == NoNet {
			noNet++
			if got := it.Bounds; got != geom.R(-250, -250, 250, 250) {
				t.Fatalf("netless item = %v, want the channel", got)
			}
		}
	}
	if noNet != 1 {
		t.Fatalf("netless items = %d, want 1", noNet)
	}
}

func TestExtractFullSupportGeometry(t *testing.T) {
	// A contact's cut layer becomes a NoNet support item; a resistor's
	// body middle does too.
	tc := tech.NMOS()
	d := layout.NewDesign("support")
	ct := device.NewDiffContact(d, tc, "c")
	res := device.NewDiffResistor(d, tc, "r", 2000)
	top := d.MustSymbol("top")
	top.AddCall(ct, geom.Identity, "c1")
	top.AddCall(res, geom.Translate(geom.Pt(10000, 0)), "r1")
	d.Top = top

	ex, _, err := ExtractFull(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	foundCut, foundMiddle := false, false
	for _, it := range ex.Items {
		if it.Net != NoNet {
			continue
		}
		if it.Layer == cutL {
			foundCut = true
		}
		if it.Layer == diffL && it.Bounds.X1 >= 10000 {
			foundMiddle = true
			// The middle excludes the two terminal caps.
			if it.Bounds.W() >= 2000 {
				t.Fatalf("body middle too wide: %v", it.Bounds)
			}
		}
	}
	if !foundCut {
		t.Fatal("contact cut not exported as support geometry")
	}
	if !foundMiddle {
		t.Fatal("resistor body middle not exported")
	}
}

func TestExtractFullIllegalPairs(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("illegal")
	top := d.MustSymbol("top")
	// Shallow overlap: recorded as an illegal pair.
	top.AddBox(diff, geom.R(0, 0, 2000, 500), "")
	top.AddBox(diff, geom.R(1875, 0, 3875, 500), "")
	// Deep overlap elsewhere: NOT an illegal pair.
	top.AddBox(diff, geom.R(0, 5000, 2000, 5500), "")
	top.AddBox(diff, geom.R(1000, 5000, 3000, 5500), "")
	d.Top = top
	ex, _, err := ExtractFull(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.IllegalPairs) != 1 {
		t.Fatalf("illegal pairs = %d, want 1", len(ex.IllegalPairs))
	}
	a := ex.Items[ex.IllegalPairs[0][0]]
	b := ex.Items[ex.IllegalPairs[0][1]]
	if a.Net == b.Net {
		t.Fatal("illegal pair must be on different nets")
	}
	// The deep pair merged into one net.
	if ex.Netlist.NumNets() != 3 {
		t.Fatalf("nets = %d, want 3 (two shallow + one merged deep)", ex.Netlist.NumNets())
	}
}

func TestIllegalPairSuppressedWhenConnectedElsewhere(t *testing.T) {
	// A shallow overlap between elements that are deeply connected through
	// a third element is cosmetic, not illegal.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("cosmetic")
	top := d.MustSymbol("top")
	a := geom.R(0, 0, 2000, 500)
	b := geom.R(1875, 0, 3875, 500) // shallow onto a
	top.AddBox(diff, a, "")
	top.AddBox(diff, b, "")
	// A bridge connecting both deeply (full-width overlaps).
	top.AddBox(diff, geom.R(500, 0, 3000, 500), "")
	d.Top = top
	ex, _, err := ExtractFull(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.IllegalPairs) != 0 {
		t.Fatalf("cosmetic overlap flagged: %v", ex.IllegalPairs)
	}
	if ex.Netlist.NumNets() != 1 {
		t.Fatalf("nets = %d, want 1", ex.Netlist.NumNets())
	}
}
