package tech

// Silicon-gate nMOS process in the Mead–Conway style used throughout the
// paper (Figures 7, 8, 11, 12, 14). λ = 250 centimicrons (2.5 µm process).
//
// The process is defined by decks/nmos.deck; NMOS is a thin loader over
// the embedded deck text. nmosFromCode below is the original hand-built
// constructor, retained verbatim as the reference the deck-parity tests
// compare against: the deck-loaded technology must be deep-equal to it,
// and a checked chip's fingerprint must be byte-identical either way.

// nMOS layer name constants (human names).
const (
	NMOSDiff    = "diffusion"
	NMOSPoly    = "poly"
	NMOSMetal   = "metal"
	NMOSContact = "contact"
	NMOSImplant = "implant"
	NMOSBuried  = "buried"
)

// nMOS device type names (declared by primitive symbols via 9D).
const (
	DevNMOSEnh     = "nmos-enh"     // enhancement transistor
	DevNMOSDep     = "nmos-dep"     // depletion transistor (implant over gate)
	DevContactDiff = "contact-diff" // metal-diffusion contact
	DevContactPoly = "contact-poly" // metal-poly contact
	DevButting     = "butting-contact"
	DevBuried      = "buried-contact"
	DevResistorD   = "resistor-diff" // diffusion resistor (Figure 5b)
	// DevNMOSPullup is the classic depletion pullup with a buried-contact
	// gate-to-source tie — a compound primitive symbol, exactly the kind of
	// "elemental symbol" the paper expects cell libraries to declare.
	DevNMOSPullup = "nmos-pullup"
)

func init() { Register("nmos", NMOS) }

// NMOS builds the silicon-gate nMOS technology from its embedded rule
// deck (decks/nmos.deck).
func NMOS() *Technology { return mustParseDeck(nmosDeck) }

// nmosFromCode is the legacy hand-built constructor. All dimensions are
// multiples of λ/2 so every rule is exact on the centimicron grid.
func nmosFromCode() *Technology {
	const lam = 250
	t := New("nmos-2.5um", lam)

	d := t.AddLayer(Layer{Name: NMOSDiff, CIF: "ND", Role: RoleDiffusion, MinWidth: 2 * lam, MinSpace: 3 * lam})
	p := t.AddLayer(Layer{Name: NMOSPoly, CIF: "NP", Role: RolePoly, MinWidth: 2 * lam, MinSpace: 2 * lam})
	m := t.AddLayer(Layer{Name: NMOSMetal, CIF: "NM", Role: RoleMetal, MinWidth: 3 * lam, MinSpace: 3 * lam})
	c := t.AddLayer(Layer{Name: NMOSContact, CIF: "NC", Role: RoleContact, MinWidth: 2 * lam, MinSpace: 2 * lam})
	i := t.AddLayer(Layer{Name: NMOSImplant, CIF: "NI", Role: RoleImplant, MinWidth: 2 * lam, MinSpace: 0})
	b := t.AddLayer(Layer{Name: NMOSBuried, CIF: "NB", Role: RoleBuried, MinWidth: 2 * lam, MinSpace: 0})

	// Figure 12: the upper-triangular interaction matrix with same-net and
	// different-net subcases. Cells left unset are the paper's "not
	// necessary" cases; notes record why, for the E11 audit.
	t.SetSpacing(d, d, SpacingRule{
		DiffNet: 3 * lam, SameNet: 0, ExemptRelated: true,
		Note: "diffusion spacing; same net exempt (Fig 5a) unless resistor",
	})
	t.SetSpacing(p, p, SpacingRule{
		DiffNet: 2 * lam, SameNet: 0, ExemptRelated: true,
		Note: "poly spacing; same net exempt",
	})
	t.SetSpacing(m, m, SpacingRule{
		DiffNet: 3 * lam, SameNet: 0,
		Note: "metal spacing; same net exempt",
	})
	t.SetSpacing(d, p, SpacingRule{
		DiffNet: 1 * lam, SameNet: 1 * lam, ExemptRelated: true,
		Note: "poly to unrelated diffusion; transistor-related exempt",
	})
	t.SetSpacing(c, c, SpacingRule{
		DiffNet: 2 * lam, SameNet: 2 * lam,
		Note: "contact cut spacing between separate symbols",
	})
	// Unset cells with audit notes (explicit zero rules for the E11 table).
	t.SetSpacing(d, m, SpacingRule{Note: "no rule between metal and diffusion (paper)"})
	t.SetSpacing(p, m, SpacingRule{Note: "no rule between metal and poly"})
	t.SetSpacing(d, c, SpacingRule{Note: "contact rules live in primitive symbols"})
	t.SetSpacing(p, c, SpacingRule{Note: "contact rules live in primitive symbols"})
	t.SetSpacing(m, c, SpacingRule{Note: "contact enclosure checked in symbols"})
	t.SetSpacing(d, i, SpacingRule{Note: "implant rules live in primitive symbols", ExemptRelated: true})
	t.SetSpacing(p, i, SpacingRule{Note: "implant rules live in primitive symbols", ExemptRelated: true})
	t.SetSpacing(i, i, SpacingRule{Note: "implant merging is harmless"})
	t.SetSpacing(d, b, SpacingRule{Note: "buried rules live in primitive symbols", ExemptRelated: true})
	t.SetSpacing(p, b, SpacingRule{Note: "buried rules live in primitive symbols", ExemptRelated: true})
	t.SetSpacing(b, b, SpacingRule{DiffNet: 2 * lam, Note: "buried window spacing"})

	// Geometric rule classes beyond pairwise spacing (Mead–Conway λ rules):
	// region width over a definition's merged geometry, minimum metal
	// island area, and the directed contact/gate margins.
	t.SetWidthRule(d, LayerRule{Min: 2 * lam, Note: "region width over merged diffusion"})
	t.SetWidthRule(p, LayerRule{Min: 2 * lam, Note: "region width over merged poly"})
	t.SetWidthRule(m, LayerRule{Min: 3 * lam, Note: "region width over merged metal"})
	t.SetAreaRule(m, LayerRule{Min: 10 * lam * lam, Note: "minimum metal island area"})
	t.SetCrossRule(CrossEnclose, m, c, CrossRule{Margin: 1 * lam, Note: "metal pad over contact cut"})
	t.SetCrossRule(CrossOverlap, p, d, CrossRule{Margin: 2 * lam, Note: "gate channel overlap"})
	t.SetCrossRule(CrossExtend, p, d, CrossRule{Margin: 2 * lam, Note: "gate poly past channel (Fig 8)"})

	// Device types. Params are the margins the class checkers consume.
	t.AddDevice(DevNMOSEnh, DeviceSpec{
		Class:    "mos-transistor",
		Describe: "enhancement nMOS transistor (poly gate over diffusion)",
		Params: map[string]int64{
			"gate-extension": 2 * lam, // poly past channel (Figs 8, 14)
			"sd-extension":   2 * lam, // diffusion past channel each side
		},
	})
	t.AddDevice(DevNMOSDep, DeviceSpec{
		Class:     "mos-transistor",
		Describe:  "depletion nMOS transistor (implanted channel)",
		Depletion: true,
		Params: map[string]int64{
			"gate-extension":  2 * lam,
			"sd-extension":    2 * lam,
			"implant-overlap": 3 * lam / 2, // implant beyond gate, 1.5λ
		},
	})
	t.AddDevice(DevContactDiff, DeviceSpec{
		Class:    "contact",
		Describe: "metal to diffusion contact",
		Params: map[string]int64{
			"cut-size":        2 * lam,
			"metal-enclosure": 1 * lam,
			"lower-enclosure": 1 * lam,
		},
	})
	t.AddDevice(DevContactPoly, DeviceSpec{
		Class:    "contact",
		Describe: "metal to poly contact",
		Params: map[string]int64{
			"cut-size":        2 * lam,
			"metal-enclosure": 1 * lam,
			"lower-enclosure": 1 * lam,
		},
	})
	t.AddDevice(DevButting, DeviceSpec{
		Class:    "butting-contact",
		Describe: "poly-diffusion butting contact (Figure 7, legal)",
		Params: map[string]int64{
			"cut-size":        2 * lam,
			"metal-enclosure": 1 * lam,
			"overlap":         1 * lam, // poly/diffusion mutual overlap under cut
		},
	})
	t.AddDevice(DevBuried, DeviceSpec{
		Class:    "buried-contact",
		Describe: "poly-diffusion buried contact (overlap-of-overlap rules)",
		Params: map[string]int64{
			"buried-overlap": 1 * lam, // buried window beyond poly∩diff
		},
	})
	t.AddDevice(DevResistorD, DeviceSpec{
		Class:    "resistor",
		Describe: "diffusion resistor; spacing NOT exempt on same net (Fig 5b)",
		Params: map[string]int64{
			"min-length": 4 * lam,
		},
	})
	t.AddDevice(DevNMOSPullup, DeviceSpec{
		Class:     "pullup",
		Describe:  "depletion pullup with buried gate-to-source tie",
		Depletion: true,
		Params: map[string]int64{
			"gate-extension":  2 * lam,
			"sd-extension":    2 * lam,
			"implant-overlap": 3 * lam / 2,
			"buried-overlap":  1 * lam,
		},
	})

	t.PowerNets = []string{"VDD", "vdd"}
	t.GroundNets = []string{"GND", "gnd", "VSS", "vss"}
	return t
}
