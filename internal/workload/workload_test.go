package workload

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/tech"
)

func TestChipStructure(t *testing.T) {
	tc := tech.NMOS()
	chip := NewChip(tc, "t", 3, 4)
	if err := chip.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	st := chip.Design.Stats()
	// One cell definition, one row definition, shared across instances.
	if st.Symbols != 1 /*chip*/ +1 /*row*/ +1 /*inv*/ +6 /*library*/ {
		t.Fatalf("symbols = %d", st.Symbols)
	}
	// 5 devices per cell plus one input head per row.
	wantDevs := 3*4*5 + 3
	if st.FlatDevices != wantDevs {
		t.Fatalf("flat devices = %d, want %d", st.FlatDevices, wantDevs)
	}
	if chip.DeviceCount() != wantDevs {
		t.Fatalf("DeviceCount = %d", chip.DeviceCount())
	}
}

func TestChipNetlistElectricallyComplete(t *testing.T) {
	tc := tech.NMOS()
	chip := NewChip(tc, "t", 2, 3)
	nl, issues, err := netlist.Extract(chip.Design, tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, is := range issues {
		t.Errorf("netlist issue on clean chip: %v", is)
	}
	// Single global rails.
	vdd, ok := nl.NetByName("VDD")
	if !ok {
		t.Fatal("VDD missing")
	}
	gnd, ok := nl.NetByName("GND")
	if !ok {
		t.Fatal("GND missing")
	}
	if vdd == gnd {
		t.Fatal("rails shorted in clean chip")
	}
	// Construction rules must be quiet: every net has >= 2 terminals.
	cr := netlist.ConstructionRules(nl, tc)
	for _, is := range cr {
		t.Errorf("construction issue on clean chip: %v", is)
	}
	// Each cell contributes one output net carrying pulldown drain, pullup
	// source(+gate), butting contact, and the next pulldown's gate.
	if nl.NumNets() < 2*3 {
		t.Fatalf("nets = %d, too few", nl.NumNets())
	}
}

func TestInjectErrorsGroundTruth(t *testing.T) {
	tc := tech.NMOS()
	chip := NewChip(tc, "t", 3, 3)
	inj := InjectErrors(chip, 9, 1)
	if len(inj) != 9 {
		t.Fatalf("injected = %d", len(inj))
	}
	kinds := map[ErrorKind]int{}
	for _, i := range inj {
		kinds[i.Kind]++
		if i.Kind != ErrGateExt && i.Where.Empty() {
			t.Errorf("injection %v has no location", i.Kind)
		}
		if len(i.DICRules) == 0 {
			t.Errorf("injection %v has no DIC rules", i.Kind)
		}
	}
	// All seven kinds appear when n >= 7.
	if len(kinds) != int(numErrorKinds) {
		t.Fatalf("kinds = %v", kinds)
	}
	// Deterministic under the same seed.
	chip2 := NewChip(tc, "t2", 3, 3)
	inj2 := InjectErrors(chip2, 9, 1)
	for i := range inj {
		if inj[i].Kind != inj2[i].Kind || inj[i].Where != inj2[i].Where {
			t.Fatalf("injection not deterministic at %d", i)
		}
	}
}

func TestInjectErrorsCappedAtCells(t *testing.T) {
	tc := tech.NMOS()
	chip := NewChip(tc, "t", 1, 2)
	inj := InjectErrors(chip, 50, 3)
	if len(inj) != 2 {
		t.Fatalf("injected = %d, want 2 (one per cell)", len(inj))
	}
}

func TestPathologiesBuild(t *testing.T) {
	ps := AllPathologies()
	if len(ps) != 9 {
		t.Fatalf("pathologies = %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if err := p.Design.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate pathology name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Figure == "" || p.Notes == "" {
			t.Errorf("%s: missing documentation", p.Name)
		}
	}
}
