package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// ErrorKind enumerates the injectable error classes. Each exercises a
// different region of the paper's Figure 1: some are caught by both
// checkers, some only by the device/net-aware DIC.
type ErrorKind uint8

// Injectable error kinds.
const (
	// ErrWidth: a sub-minimum-width wire. Caught by both checkers.
	ErrWidth ErrorKind = iota
	// ErrSpacing: a diffusion box too close to cell diffusion. Both.
	ErrSpacing
	// ErrAccidental: a poly wire crossing a diffusion wire outside any
	// transistor symbol (Figure 8). DIC only — the mask-level baseline
	// assumes the crossing is an intentional transistor.
	ErrAccidental
	// ErrGateExt: a transistor definition whose poly stops flush with the
	// channel (Figure 8 bottom / Figure 14). DIC only.
	ErrGateExt
	// ErrShallow: two legal boxes overlapping a quarter width — an illegal
	// (non-skeletal) connection (Figures 11/15). DIC only.
	ErrShallow
	// ErrPGShort: a metal strap shorting the VDD and GND rails. DIC only
	// (needs the netlist).
	ErrPGShort
	// ErrContactOnGate: a contact cut on a transistor channel (Figure 7).
	// Both checkers catch it — but the baseline's version of the rule also
	// false-flags every butting contact.
	ErrContactOnGate

	numErrorKinds
)

// String implements fmt.Stringer.
func (k ErrorKind) String() string {
	switch k {
	case ErrWidth:
		return "width"
	case ErrSpacing:
		return "spacing"
	case ErrAccidental:
		return "accidental-transistor"
	case ErrGateExt:
		return "gate-extension"
	case ErrShallow:
		return "shallow-connection"
	case ErrPGShort:
		return "pg-short"
	case ErrContactOnGate:
		return "contact-on-gate"
	}
	return fmt.Sprintf("ErrorKind(%d)", uint8(k))
}

// Injected records one injected error: its ground-truth location, the DIC
// rule prefixes that legitimately report it, the baseline rule prefixes
// (empty when the baseline cannot see it at all), and the symbol name for
// definition-level errors.
type Injected struct {
	Kind      ErrorKind
	Where     geom.Rect // chip coordinates (zero for definition-level)
	Symbol    string    // defining symbol for definition-level errors
	DICRules  []string  // acceptable DIC rule prefixes
	FlatRules []string  // acceptable baseline rule prefixes ([] = undetectable)
}

// InjectErrors plants n seeded errors into the chip, at most one per cell,
// cycling through the kinds. It returns the ground truth. The chip's
// design is modified in place (top-level elements and, for ErrGateExt, one
// extra device definition per injection).
func InjectErrors(c *Chip, n int, seed int64) []Injected {
	rng := rand.New(rand.NewSource(seed))
	tc := c.Lib.Tech
	top := c.Design.Top

	// Choose distinct cells.
	total := c.Rows * c.Cols
	if n > total {
		n = total
	}
	perm := rng.Perm(total)
	out := make([]Injected, 0, n)
	for i := 0; i < n; i++ {
		cellIdx := perm[i]
		r, col := cellIdx/c.Cols, cellIdx%c.Cols
		base := geom.Pt(int64(col)*PitchX, int64(r)*PitchY)
		kind := ErrorKind(i % int(numErrorKinds))
		out = append(out, injectOne(c.Design, top, tc, kind, base, i))
	}
	return out
}

// injectOne plants one error relative to a cell origin.
func injectOne(d *layout.Design, top *layout.Symbol, tc *tech.Technology, kind ErrorKind, base geom.Point, idx int) Injected {
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	metalL, _ := tc.LayerByName(tech.NMOSMetal)
	cutL, _ := tc.LayerByName(tech.NMOSContact)
	at := func(x, y int64) geom.Point { return base.Add(geom.Pt(x, y)) }

	switch kind {
	case ErrWidth:
		// A 300-wide diffusion wire in the empty lane east of the pullup.
		top.AddWire(diffL, 300, "", at(5000, 1500), at(5000, 2500))
		return Injected{
			Kind:      ErrWidth,
			Where:     geom.R(base.X+4850, base.Y+1350, base.X+5150, base.Y+2650),
			DICRules:  []string{"W.ND", "WIDTH.ND", "NET.FANOUT"},
			FlatRules: []string{"FLAT.W.ND"},
		}
	case ErrSpacing:
		// A diffusion box 2λ above the source wire (rule is 3λ).
		top.AddBox(diffL, geom.R(base.X-2250, base.Y+750, base.X-1000, base.Y+1250), "")
		return Injected{
			Kind:      ErrSpacing,
			Where:     geom.R(base.X-2600, base.Y-300, base.X-650, base.Y+1300),
			DICRules:  []string{"S.ND.ND", "NET.FANOUT"},
			FlatRules: []string{"FLAT.S.ND"},
		}
	case ErrAccidental:
		// A poly wire crossing the output diffusion.
		top.AddWire(polyL, 500, "", at(1000, -1000), at(1000, 1000))
		return Injected{
			Kind:      ErrAccidental,
			Where:     geom.R(base.X+750, base.Y-1250, base.X+1250, base.Y+1250),
			DICRules:  []string{"DEV.ACCIDENTAL", "S.ND.NP", "NET.FANOUT"},
			FlatRules: nil, // the baseline assumes a legal transistor
		}
	case ErrGateExt:
		// A transistor definition with no gate overlap, placed in the
		// empty band above the cell.
		name := fmt.Sprintf("bad-tran-%d", idx)
		sym := d.MustSymbol(name)
		sym.DeviceType = tech.DevNMOSEnh
		sym.AddBox(polyL, geom.R(-250, -250, 250, 250), "")
		sym.AddBox(diffL, geom.R(-750, -250, 750, 250), "")
		top.AddCall(sym, geom.Translate(at(5000, 4850)), name)
		return Injected{
			Kind:      ErrGateExt,
			Symbol:    name,
			Where:     geom.R(base.X+4250, base.Y+4600, base.X+5750, base.Y+5100),
			DICRules:  []string{"DEV.MOS.GATEEXT", "DEV.MOS.SDEXT", "NET.FANOUT"},
			FlatRules: nil, // a missing overlap cannot be measured on masks
		}
	case ErrShallow:
		// Two legal-width boxes overlapping a quarter width (Figure 15).
		top.AddBox(diffL, geom.R(base.X+0, base.Y+5100, base.X+2000, base.Y+5600), "")
		top.AddBox(diffL, geom.R(base.X+1875, base.Y+5100, base.X+3875, base.Y+5600), "")
		return Injected{
			Kind:      ErrShallow,
			Where:     geom.R(base.X-100, base.Y+5000, base.X+3975, base.Y+5700),
			DICRules:  []string{"CONN.ILLEGAL", "NET.FANOUT"},
			FlatRules: nil, // the union looks perfectly legal
		}
	case ErrPGShort:
		// A metal strap from the GND rail to the VDD rail.
		top.AddWire(metalL, 750, "", at(0, GndRailY), at(0, VddRailY))
		return Injected{
			Kind:  ErrPGShort,
			Where: geom.R(base.X-375, base.Y+GndRailY-375, base.X+375, base.Y+VddRailY+375),
			// A rail short cascades: every pullup's drain is now on a
			// ground-declared net, so rule 4 fires chip-wide too.
			DICRules:  []string{"NET.PGSHORT", "NET.DEPGND"},
			FlatRules: nil, // no netlist, no short
		}
	default: // ErrContactOnGate
		// A contact cut on the pulldown channel.
		top.AddBox(cutL, geom.R(base.X-250, base.Y-250, base.X+250, base.Y+250), "")
		return Injected{
			Kind:      ErrContactOnGate,
			Where:     geom.R(base.X-350, base.Y-350, base.X+350, base.Y+350),
			DICRules:  []string{"DEV.GATE.CONTACT", "ENC.NM.NC", "NET.FANOUT"},
			FlatRules: []string{"FLAT.GATECONTACT"},
		}
	}
}
