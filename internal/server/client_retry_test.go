package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesOverloadWithRetryAfter asserts a POST is retried on a
// 429 that carries Retry-After (the daemon's safe-to-retry signal) and
// succeeds on the second attempt.
func TestClientRetriesOverloadWithRetryAfter(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "queue full", Class: ClassOverload})
			return
		}
		writeJSON(w, http.StatusCreated, CreateResponse{ID: "s1", Report: &Report{ReportBody: ReportBody{Clean: true}}})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBase = time.Millisecond
	resp, err := c.SessionCreate(context.Background(), CreateRequest{CIF: "x"})
	if err != nil {
		t.Fatalf("create did not retry through the 429: %v", err)
	}
	if resp.ID != "s1" || hits.Load() != 2 {
		t.Fatalf("id=%s hits=%d, want s1 after exactly 2 attempts", resp.ID, hits.Load())
	}
}

// TestClientDoesNotRetryUnsafePOST asserts a POST answered with a plain
// 500 (no Retry-After, not a backpressure status) is NOT retried — the
// request may have partially applied, so an automatic replay could
// double-apply edits.
func TestClientDoesNotRetryUnsafePOST(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "boom", Class: ClassPanic})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBase = time.Millisecond
	_, err := c.SessionCreate(context.Background(), CreateRequest{CIF: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("expected the 500 surfaced, got %v", err)
	}
	if apiErr.Class != ClassPanic {
		t.Fatalf("class = %q, want %q", apiErr.Class, ClassPanic)
	}
	if hits.Load() != 1 {
		t.Fatalf("unsafe POST was attempted %d times, want 1", hits.Load())
	}
}

// TestClientRetriesIdempotentOnTransportError asserts a GET survives a
// connection-level failure: the first attempt hits a dead listener, the
// client backs off and the (stubbed) recovery succeeds. Here the "dead"
// phase is a handler that hijacks and drops the connection.
func TestClientRetriesIdempotentOnTransportError(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // mid-request connection reset
			return
		}
		writeJSON(w, http.StatusOK, []SessionInfo{{ID: "s1"}})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBase = time.Millisecond
	infos, err := c.SessionList(context.Background())
	if err != nil {
		t.Fatalf("GET did not retry through the connection reset: %v", err)
	}
	if len(infos) != 1 || hits.Load() != 2 {
		t.Fatalf("infos=%v hits=%d, want 1 session after 2 attempts", infos, hits.Load())
	}
}

// TestClientHonorsCallerContext asserts the per-call context bounds the
// whole retry loop, not just one attempt.
func TestClientHonorsCallerContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "busy", Class: ClassTimeout})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBase = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SessionReport(ctx, "s1")
	if err == nil {
		t.Fatal("expected failure")
	}
	// With MaxRetries=3 and Retry-After=1s the uncancelled loop would take
	// ~3s; the context must cut it short.
	if took := time.Since(start); took > time.Second {
		t.Fatalf("retry loop ignored the caller context (took %v)", took)
	}
}
