package layout

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
)

// Edit is one named-symbol mutation of a design — the wire format of the
// check service's edit endpoint and of dicheck's -edits scripts. Every op
// addresses a symbol definition by name; geometry is given as flat
// coordinate lists so scripts stay hand-writable:
//
//	{"op":"add_box","symbol":"cell","layer":"metal","box":[0,0,300,900]}
//	{"op":"add_wire","symbol":"chip","layer":"poly","width":200,"path":[3200,-400,3200,400]}
//	{"op":"delete_element","symbol":"chip","index":-1}
//	{"op":"move_element","symbol":"row0","index":3,"dx":250}
//	{"op":"add_call","symbol":"chip","target":"row","name":"r9","orient":"MX","dx":0,"dy":36000}
//	{"op":"delete_call","symbol":"chip","index":-1}
//	{"op":"move_call","symbol":"chip","index":2,"dy":-400}
//
// Element and call indices follow definition order (Element.Index); a
// negative index addresses from the end (-1 = last), so a just-appended
// element can be reverted without counting.
type Edit struct {
	Op     string  `json:"op"`
	Symbol string  `json:"symbol"`
	Layer  string  `json:"layer,omitempty"`  // layer name (add_box, add_wire)
	Box    []int64 `json:"box,omitempty"`    // x1 y1 x2 y2 (add_box)
	Path   []int64 `json:"path,omitempty"`   // x1 y1 x2 y2 ... (add_wire)
	Width  int64   `json:"width,omitempty"`  // wire width (add_wire)
	Net    string  `json:"net,omitempty"`    // declared net for added geometry
	Index  int     `json:"index,omitempty"`  // element/call index; negative = from end
	DX     int64   `json:"dx,omitempty"`     // move delta or call placement x
	DY     int64   `json:"dy,omitempty"`     // move delta or call placement y
	Target string  `json:"target,omitempty"` // called symbol name (add_call)
	Orient string  `json:"orient,omitempty"` // call orientation (add_call; default R0)
	Name   string  `json:"name,omitempty"`   // call instance name (add_call)
}

// Edit op names.
const (
	OpAddBox        = "add_box"
	OpAddWire       = "add_wire"
	OpDeleteElement = "delete_element"
	OpMoveElement   = "move_element"
	OpAddCall       = "add_call"
	OpDeleteCall    = "delete_call"
	OpMoveCall      = "move_call"
)

// ParseOrient resolves an orientation name ("R0".."R270", "MX".."MX270");
// the empty string is R0.
func ParseOrient(name string) (geom.Orient, error) {
	if name == "" {
		return geom.R0, nil
	}
	for o := geom.R0; o <= geom.MX270; o++ {
		if o.String() == name {
			return o, nil
		}
	}
	return geom.R0, fmt.Errorf("layout: unknown orientation %q", name)
}

// ApplyEdit applies one edit to the design, marking the touched symbol's
// derived caches stale (Symbol.Touch) so a following incremental Recheck
// sees the change through dirty propagation. The mutation is validated
// before any state changes: an error leaves the design exactly as it was.
func ApplyEdit(d *Design, tc *tech.Technology, e Edit) error {
	s, ok := d.Symbol(e.Symbol)
	if !ok {
		return fmt.Errorf("layout: edit %s: no symbol %q", e.Op, e.Symbol)
	}
	switch e.Op {
	case OpAddBox:
		layer, err := editLayer(tc, e)
		if err != nil {
			return err
		}
		if len(e.Box) != 4 {
			return fmt.Errorf("layout: edit add_box on %q: box needs [x1 y1 x2 y2], got %d values", e.Symbol, len(e.Box))
		}
		s.AddBox(layer, geom.R(e.Box[0], e.Box[1], e.Box[2], e.Box[3]), e.Net)
	case OpAddWire:
		layer, err := editLayer(tc, e)
		if err != nil {
			return err
		}
		if len(e.Path) == 0 || len(e.Path)%2 != 0 {
			return fmt.Errorf("layout: edit add_wire on %q: path needs x,y pairs, got %d values", e.Symbol, len(e.Path))
		}
		if e.Width <= 0 {
			return fmt.Errorf("layout: edit add_wire on %q: width %d", e.Symbol, e.Width)
		}
		pts := make([]geom.Point, len(e.Path)/2)
		for i := range pts {
			pts[i] = geom.Pt(e.Path[2*i], e.Path[2*i+1])
		}
		s.AddWire(layer, e.Width, e.Net, pts...)
	case OpDeleteElement:
		i, err := editIndex(e, len(s.Elements), "element")
		if err != nil {
			return err
		}
		s.Elements = append(s.Elements[:i], s.Elements[i+1:]...)
		// Element.Index is positional (violation references and net
		// numbering depend on it); renumber the tail to keep it so.
		for k := i; k < len(s.Elements); k++ {
			s.Elements[k].Index = k
		}
		s.Touch()
	case OpMoveElement:
		i, err := editIndex(e, len(s.Elements), "element")
		if err != nil {
			return err
		}
		old := s.Elements[i].Bounds()
		moveElement(s.Elements[i], e.DX, e.DY)
		// Window-scoped dirtiness: a move is the one edit whose effect is
		// bounded by the element's old and new extents, which lets the
		// engine recheck a window instead of the whole definition.
		s.TouchElement(i, old)
	case OpAddCall:
		target, ok := d.Symbol(e.Target)
		if !ok {
			return fmt.Errorf("layout: edit add_call on %q: no target symbol %q", e.Symbol, e.Target)
		}
		o, err := ParseOrient(e.Orient)
		if err != nil {
			return err
		}
		if s.IsPrimitive() {
			return fmt.Errorf("layout: edit add_call: %q is a primitive device symbol", e.Symbol)
		}
		if reaches(target, s) {
			// An acknowledged cycle would wedge every later check (Validate
			// fails), so reject it here where the edit is still atomic.
			return fmt.Errorf("layout: edit add_call: %q -> %q would create a call cycle", e.Symbol, e.Target)
		}
		s.AddCall(target, geom.NewTransform(o, geom.Pt(e.DX, e.DY)), e.Name)
	case OpDeleteCall:
		i, err := editIndex(e, len(s.Calls), "call")
		if err != nil {
			return err
		}
		s.Calls = append(s.Calls[:i], s.Calls[i+1:]...)
		s.Touch()
	case OpMoveCall:
		i, err := editIndex(e, len(s.Calls), "call")
		if err != nil {
			return err
		}
		c := s.Calls[i]
		c.T.Trans.X += e.DX
		c.T.Trans.Y += e.DY
		s.Touch()
	default:
		return fmt.Errorf("layout: unknown edit op %q", e.Op)
	}
	return nil
}

// ApplyEdits applies edits in order, stopping at the first failure. It
// returns the number applied; on error the design holds the successful
// prefix (each individual edit is atomic).
func ApplyEdits(d *Design, tc *tech.Technology, edits []Edit) (int, error) {
	for i, e := range edits {
		if err := ApplyEdit(d, tc, e); err != nil {
			return i, fmt.Errorf("edit %d: %w", i, err)
		}
	}
	return len(edits), nil
}

func editLayer(tc *tech.Technology, e Edit) (tech.LayerID, error) {
	id, ok := tc.LayerByName(e.Layer)
	if !ok {
		return 0, fmt.Errorf("layout: edit %s on %q: unknown layer %q", e.Op, e.Symbol, e.Layer)
	}
	return id, nil
}

func editIndex(e Edit, n int, kind string) (int, error) {
	i := e.Index
	if i < 0 {
		i += n
	}
	if i < 0 || i >= n {
		return 0, fmt.Errorf("layout: edit %s on %q: %s index %d out of range (have %d)", e.Op, e.Symbol, kind, e.Index, n)
	}
	return i, nil
}

// reaches reports whether to is reachable from from through calls
// (including from == to).
func reaches(from, to *Symbol) bool {
	if from == to {
		return true
	}
	for _, c := range from.Calls {
		if c.Target != nil && reaches(c.Target, to) {
			return true
		}
	}
	return false
}

func moveElement(el *Element, dx, dy int64) {
	el.Box.X1 += dx
	el.Box.X2 += dx
	el.Box.Y1 += dy
	el.Box.Y2 += dy
	for i := range el.Path {
		el.Path[i].X += dx
		el.Path[i].Y += dy
	}
	for i := range el.Poly {
		el.Poly[i].X += dx
		el.Poly[i].Y += dy
	}
}
