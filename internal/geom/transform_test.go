package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrientApply(t *testing.T) {
	p := Pt(3, 1)
	cases := []struct {
		o    Orient
		want Point
	}{
		{R0, Pt(3, 1)},
		{R90, Pt(-1, 3)},
		{R180, Pt(-3, -1)},
		{R270, Pt(1, -3)},
		{MX, Pt(3, -1)},
		{MX90, Pt(1, 3)},
		{MX180, Pt(-3, 1)},
		{MX270, Pt(-1, -3)},
	}
	for _, c := range cases {
		if got := c.o.apply(p); got != c.want {
			t.Errorf("%v.apply(%v) = %v, want %v", c.o, p, got, c.want)
		}
	}
}

// Property: compose agrees with function composition of apply.
func TestQuickOrientCompose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		o := Orient(rng.Intn(8))
		q := Orient(rng.Intn(8))
		p := Pt(int64(rng.Intn(41)-20), int64(rng.Intn(41)-20))
		return o.compose(q).apply(p) == q.apply(o.apply(p))
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: every orientation composed with its inverse is the identity.
func TestOrientInverse(t *testing.T) {
	for o := Orient(0); o < 8; o++ {
		if got := o.compose(o.inverse()); got != R0 {
			t.Errorf("%v.compose(inverse) = %v", o, got)
		}
		if got := o.inverse().compose(o); got != R0 {
			t.Errorf("inverse.compose(%v) = %v", o, got)
		}
	}
}

func TestTransformApplyRect(t *testing.T) {
	tr := NewTransform(R90, Pt(100, 0))
	r := R(0, 0, 10, 4)
	got := tr.ApplyRect(r)
	if got != R(96, 0, 100, 10) {
		t.Fatalf("ApplyRect = %v", got)
	}
}

// Property: Transform Compose/Apply coherence and Inverse round trip.
func TestQuickTransformComposeInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := NewTransform(Orient(rng.Intn(8)), Pt(int64(rng.Intn(21)-10), int64(rng.Intn(21)-10)))
		t2 := NewTransform(Orient(rng.Intn(8)), Pt(int64(rng.Intn(21)-10), int64(rng.Intn(21)-10)))
		p := Pt(int64(rng.Intn(41)-20), int64(rng.Intn(41)-20))
		if t1.Compose(t2).Apply(p) != t2.Apply(t1.Apply(p)) {
			return false
		}
		inv := t1.Inverse()
		return inv.Apply(t1.Apply(p)) == p && t1.Apply(inv.Apply(p)) == p
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestTransformIsMirrored(t *testing.T) {
	if NewTransform(R90, Pt(0, 0)).IsMirrored() {
		t.Fatal("pure rotation is not mirrored")
	}
	if !NewTransform(MX180, Pt(0, 0)).IsMirrored() {
		t.Fatal("MX180 is mirrored")
	}
}

func TestPointOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(1, -2)
	if p.Add(q) != Pt(4, 2) || p.Sub(q) != Pt(2, 6) || p.Neg() != Pt(-3, -4) {
		t.Fatal("basic point arithmetic failed")
	}
	if p.Dot(q) != -5 || p.Cross(q) != -10 {
		t.Fatal("dot/cross failed")
	}
	if p.Scale(2) != Pt(6, 8) {
		t.Fatal("scale failed")
	}
	if got := Pt(0, 0).Dist(Pt(3, 4)); got != 5 {
		t.Fatalf("dist = %v", got)
	}
	if got := Pt(0, 0).ManhattanDist(Pt(3, -4)); got != 7 {
		t.Fatalf("manhattan = %v", got)
	}
	if got := Pt(0, 0).ChebyshevDist(Pt(3, -4)); got != 4 {
		t.Fatalf("chebyshev = %v", got)
	}
}
