package main

import (
	"encoding/json"
	"os"

	"repro/internal/core"
	"repro/internal/geom"
)

// The -json schema: a stable machine-readable projection of core.Report
// so the checker can sit behind scripts and services. Field names are
// part of the output contract; extend, don't rename.

type jsonReport struct {
	Design     string          `json:"design"`
	Clean      bool            `json:"clean"`
	Errors     int             `json:"errors"`
	Warnings   int             `json:"warnings"`
	Violations []jsonViolation `json:"violations"`
	Stages     []jsonStage     `json:"stages"`
	Stats      jsonStats       `json:"stats"`
	Netlist    *jsonNetlist    `json:"netlist,omitempty"`
	Engine     *jsonEngine     `json:"engine,omitempty"`
}

type jsonViolation struct {
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	Detail   string   `json:"detail"`
	Where    jsonRect `json:"where"`
	Symbol   string   `json:"symbol,omitempty"`
	Path     string   `json:"path,omitempty"`
	Layer    int      `json:"layer"`
	Nets     []string `json:"nets,omitempty"`
}

type jsonRect struct {
	X1 int64 `json:"x1"`
	Y1 int64 `json:"y1"`
	X2 int64 `json:"x2"`
	Y2 int64 `json:"y2"`
}

type jsonStage struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Checks     int    `json:"checks"`
	Violations int    `json:"violations"`
}

type jsonStats struct {
	ElementsChecked        int `json:"elements_checked"`
	SymbolDefsChecked      int `json:"symbol_defs_checked"`
	DeviceInstances        int `json:"device_instances"`
	InteractionCandidates  int `json:"interaction_candidates"`
	InteractionChecked     int `json:"interaction_checked"`
	SkippedNoRule          int `json:"skipped_no_rule"`
	SkippedSameNetExempt   int `json:"skipped_same_net_exempt"`
	SkippedRelated         int `json:"skipped_related"`
	SkippedConnectionPairs int `json:"skipped_connection_pairs"`
	ProcessDowngrades      int `json:"process_downgrades"`
}

type jsonNetlist struct {
	Nets    int `json:"nets"`
	Devices int `json:"devices"`
}

type jsonEngine struct {
	Runs         int `json:"runs"`
	Symbols      int `json:"symbols"`
	DirtySymbols int `json:"dirty_symbols"`
	ArtifactDefs int `json:"artifact_defs"`
	InterBuilt   int `json:"inter_built"`
	InterReused  int `json:"inter_reused"`
	SigMisses    int `json:"sig_misses"`
	SigHits      int `json:"sig_hits"`
}

func rectJSON(r geom.Rect) jsonRect { return jsonRect{r.X1, r.Y1, r.X2, r.Y2} }

func reportJSON(rep *core.Report, eng *core.Engine) *jsonReport {
	errs := rep.Errors()
	out := &jsonReport{
		Design:     rep.Design.Name,
		Clean:      rep.Clean(),
		Errors:     len(errs),
		Warnings:   len(rep.Violations) - len(errs),
		Violations: make([]jsonViolation, 0, len(rep.Violations)),
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, jsonViolation{
			Rule:     v.Rule,
			Severity: v.Severity.String(),
			Detail:   v.Detail,
			Where:    rectJSON(v.Where),
			Symbol:   v.Symbol,
			Path:     v.Path,
			Layer:    int(v.Layer),
			Nets:     v.Nets,
		})
	}
	for _, s := range rep.Stats.Stages {
		out.Stages = append(out.Stages, jsonStage{
			Name:       s.Name,
			DurationNS: s.Duration.Nanoseconds(),
			Checks:     s.Checks,
			Violations: s.Violations,
		})
	}
	st := rep.Stats
	out.Stats = jsonStats{
		ElementsChecked:        st.ElementsChecked,
		SymbolDefsChecked:      st.SymbolDefsChecked,
		DeviceInstances:        st.DeviceInstances,
		InteractionCandidates:  st.InteractionCandidates,
		InteractionChecked:     st.InteractionChecked,
		SkippedNoRule:          st.SkippedNoRule,
		SkippedSameNetExempt:   st.SkippedSameNetExempt,
		SkippedRelated:         st.SkippedRelated,
		SkippedConnectionPairs: st.SkippedConnectionPairs,
		ProcessDowngrades:      st.ProcessDowngrades,
	}
	if rep.Netlist != nil {
		out.Netlist = &jsonNetlist{Nets: rep.Netlist.NumNets(), Devices: len(rep.Netlist.Devices)}
	}
	if eng != nil {
		es := eng.Stats()
		out.Engine = &jsonEngine{
			Runs: es.Runs, Symbols: es.Symbols, DirtySymbols: es.DirtySymbols,
			ArtifactDefs: es.ArtifactDefs, InterBuilt: es.InterBuilt,
			InterReused: es.InterReused, SigMisses: es.SigMisses, SigHits: es.SigHits,
		}
	}
	return out
}

func printJSON(rep *core.Report, eng *core.Engine) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(reportJSON(rep, eng))
}
