package process

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestExposureBasics(t *testing.T) {
	m := Model{Sigma: 100, Threshold: 0.5}
	big := geom.FromRectR(geom.R(-10000, -10000, 10000, 10000))
	// Deep inside a large opening: exposure -> 1.
	if got := m.ExposureAt(big, geom.FPoint{X: 0, Y: 0}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("center exposure = %v, want 1", got)
	}
	// On a long straight edge: exactly 0.5.
	if got := m.ExposureAt(big, geom.FPoint{X: 10000, Y: 0}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("edge exposure = %v, want 0.5", got)
	}
	// At a convex corner: exactly 0.25 (two half-plane factors).
	if got := m.ExposureAt(big, geom.FPoint{X: 10000, Y: 10000}); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("corner exposure = %v, want 0.25", got)
	}
	// Far outside: ~0.
	if got := m.ExposureAt(big, geom.FPoint{X: 12000, Y: 0}); got > 1e-6 {
		t.Fatalf("outside exposure = %v", got)
	}
}

func TestExposureMatchesNumericConvolution(t *testing.T) {
	m := Model{Sigma: 80, Threshold: 0.5}
	mask := geom.FromRects([]geom.Rect{
		geom.R(0, 0, 400, 200),
		geom.R(300, 100, 600, 500),
	})
	pts := []geom.FPoint{
		{X: 200, Y: 100}, {X: 0, Y: 0}, {X: 450, Y: 300},
		{X: -100, Y: 50}, {X: 650, Y: 480}, {X: 300, Y: 150},
	}
	for _, p := range pts {
		exact := m.ExposureAt(mask, p)
		numeric := m.ExposureAtNumeric(mask, p, 4)
		if math.Abs(exact-numeric) > 0.02 {
			t.Errorf("at %v: closed form %.4f vs numeric %.4f", p, exact, numeric)
		}
	}
}

// Property: exposure is additive over disjoint masks and monotone in mask
// area.
func TestQuickExposureAdditive(t *testing.T) {
	m := Model{Sigma: 60, Threshold: 0.5}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := geom.FromRectR(geom.R(0, 0, int64(100+rng.Intn(300)), int64(100+rng.Intn(300))))
		b := geom.FromRectR(geom.R(500, 0, 500+int64(100+rng.Intn(300)), int64(100+rng.Intn(300))))
		p := geom.FPoint{X: float64(rng.Intn(700)), Y: float64(rng.Intn(400))}
		ea := m.ExposureAt(a, p)
		eb := m.ExposureAt(b, p)
		eu := m.ExposureAt(a.Union(b), p)
		return math.Abs(ea+eb-eu) < 1e-9 && eu <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedEdgeShift(t *testing.T) {
	// Threshold 0.5: edges print where drawn.
	m := Model{Sigma: 100, Threshold: 0.5}
	if got := m.IsolatedEdgeShift(); math.Abs(got) > 1e-9 {
		t.Fatalf("shift at T=0.5 = %v, want 0", got)
	}
	// Over-exposure (T<0.5) grows features.
	over := Model{Sigma: 100, Threshold: 0.3}
	if got := over.IsolatedEdgeShift(); got <= 0 {
		t.Fatalf("over-exposed shift = %v, want > 0", got)
	}
	// Under-exposure shrinks.
	under := Model{Sigma: 100, Threshold: 0.7}
	if got := under.IsolatedEdgeShift(); got >= 0 {
		t.Fatalf("under-exposed shift = %v, want < 0", got)
	}
}

func TestProximityEffectOnGap(t *testing.T) {
	// Figure 13: bias effects are not unary. The printed gap between two
	// boxes shrinks MORE than twice the isolated edge shift when the boxes
	// are close, because each box's exposure tail adds to the other's.
	m := Model{Sigma: 100, Threshold: 0.4} // over-exposed: features grow
	shift := m.IsolatedEdgeShift()
	if shift <= 0 {
		t.Fatal("test needs a growing process")
	}
	mk := func(gap int64) (geom.Region, geom.Region) {
		a := geom.FromRectR(geom.R(-2000, -1000, 0, 1000))
		b := geom.FromRectR(geom.R(gap, -1000, gap+2000, 1000))
		return a, b
	}
	// Far apart: printed gap ≈ drawn gap - 2·shift (unary prediction).
	aFar, bFar := mk(2000)
	farGap := m.PrintedGap(aFar, bFar)
	unary := 2000 - 2*shift
	if math.Abs(farGap-unary) > 2 {
		t.Fatalf("far gap %v, unary prediction %v", farGap, unary)
	}
	// Close together (within ~2.5σ): the printed gap is smaller than the
	// unary model predicts — each box's Gaussian tail adds exposure at the
	// other's edge. This is the proximity effect.
	aNear, bNear := mk(250)
	nearGap := m.PrintedGap(aNear, bNear)
	unaryNear := 250 - 2*shift
	if nearGap >= unaryNear-1 {
		t.Fatalf("near gap %v not below unary prediction %v (no proximity effect?)", nearGap, unaryNear)
	}
	if nearGap <= 0 {
		t.Fatalf("near gap bridged entirely: %v", nearGap)
	}
}

func TestPrintedGapBridging(t *testing.T) {
	m := Model{Sigma: 150, Threshold: 0.35}
	a := geom.FromRectR(geom.R(-2000, -1000, 0, 1000))
	b := geom.FromRectR(geom.R(120, -1000, 2120, 1000))
	if gap := m.PrintedGap(a, b); gap > 0 {
		t.Fatalf("120 drawn gap at σ=150 over-exposed should bridge, got %v", gap)
	}
}

func TestSpacingOKMisalignment(t *testing.T) {
	m := Model{Sigma: 100, Threshold: 0.5}
	a := geom.FromRectR(geom.R(-2000, -500, 0, 500))
	b := geom.FromRectR(geom.R(700, -500, 2700, 500))
	// Same layer (no misalignment): 700 gap prints fine.
	if !m.SpacingOK(a, b, 0, 100) {
		t.Fatal("same-layer 700 gap should pass")
	}
	// Different layer with 600 worst-case misalignment: the translated
	// element nearly touches; must fail.
	if m.SpacingOK(a, b, 600, 100) {
		t.Fatal("600 misalignment over 700 gap should fail")
	}
}

func TestEndRetreatRelational(t *testing.T) {
	// Figure 14: narrower wires retreat more. At T=0.5 a very wide wire
	// retreats ~0.
	m := Model{Sigma: 125, Threshold: 0.5}
	wide := m.EndRetreat(4000)
	if math.Abs(wide) > 1 {
		t.Fatalf("wide wire retreat = %v, want ~0", wide)
	}
	r2 := m.EndRetreat(500) // 2λ
	r3 := m.EndRetreat(750)
	r4 := m.EndRetreat(1000)
	if !(r2 > r3 && r3 > r4 && r4 > wide) {
		t.Fatalf("retreat not monotone: w500=%v w750=%v w1000=%v wide=%v", r2, r3, r4, wide)
	}
	if r2 <= 0 {
		t.Fatalf("2λ wire should retreat, got %v", r2)
	}
}

func TestRelationalGateCheck(t *testing.T) {
	m := Model{Sigma: 125, Threshold: 0.5}
	// A 2λ poly with 2λ drawn overlap: must clear the retreat plus a λ/2
	// margin (the rule the fixed-number checkers approximate).
	need := m.RequiredGateOverlap(500, 125)
	if need <= 125 {
		t.Fatalf("required overlap = %v, should exceed the margin", need)
	}
	if !m.RelationalGateCheck(500, 500, 125) {
		t.Fatalf("2λ overlap should satisfy the relational rule (need %v)", need)
	}
	if m.RelationalGateCheck(500, int64(need)-130, 125) {
		t.Fatal("overlap below requirement should fail")
	}
	// Wider poly needs less overlap.
	needWide := m.RequiredGateOverlap(1000, 125)
	if needWide >= need {
		t.Fatalf("wider poly should need less overlap: %v vs %v", needWide, need)
	}
}

func TestEdgePositionStraightEdge(t *testing.T) {
	m := Model{Sigma: 100, Threshold: 0.5}
	mask := geom.FromRectR(geom.R(0, -5000, 10000, 5000))
	// Walk from outside (x=-1000) toward the edge at x=0.
	tpos := m.EdgePosition(mask, geom.FPoint{X: -1000, Y: 0}, geom.FPoint{X: 1, Y: 0}, 3000)
	if math.IsNaN(tpos) || math.Abs(tpos-1000) > 1 {
		t.Fatalf("edge found at %v from -1000, want 1000 (drawn edge)", tpos)
	}
}
