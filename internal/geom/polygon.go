package geom

import (
	"errors"
	"fmt"
	"slices"
)

// Polygon is a simple closed polygon given by its vertices in order; the
// closing edge from the last vertex back to the first is implicit.
// The design-integrity checker works on rectilinear (Manhattan) polygons;
// the parser accepts arbitrary ones and the checker reports non-Manhattan
// polygons as structural violations rather than silently mishandling them.
type Polygon []Point

// Edge is a directed segment between two lattice points.
type Edge struct {
	A, B Point
}

// Horizontal reports whether the edge is horizontal.
func (e Edge) Horizontal() bool { return e.A.Y == e.B.Y }

// Vertical reports whether the edge is vertical.
func (e Edge) Vertical() bool { return e.A.X == e.B.X }

// Len returns the Euclidean length of the edge.
func (e Edge) Len() float64 { return e.A.Dist(e.B) }

// Poly builds a Polygon from a flat coordinate list x0,y0,x1,y1,...
// It panics if an odd number of values is supplied; it is intended for
// literals in tests and workload construction.
func Poly(coords ...int64) Polygon {
	if len(coords)%2 != 0 {
		panic("geom.Poly: odd coordinate count")
	}
	p := make(Polygon, len(coords)/2)
	for i := range p {
		p[i] = Point{coords[2*i], coords[2*i+1]}
	}
	return p
}

// Edges returns the polygon's edges including the closing edge.
func (p Polygon) Edges() []Edge {
	if len(p) < 2 {
		return nil
	}
	out := make([]Edge, len(p))
	for i := range p {
		out[i] = Edge{p[i], p[(i+1)%len(p)]}
	}
	return out
}

// SignedArea2 returns twice the signed area (positive when counterclockwise).
func (p Polygon) SignedArea2() int64 {
	var s int64
	for i := range p {
		j := (i + 1) % len(p)
		s += p[i].Cross(p[j])
	}
	return s
}

// Area returns the absolute area of the polygon.
func (p Polygon) Area() int64 {
	s := p.SignedArea2()
	if s < 0 {
		s = -s
	}
	return s / 2
}

// IsCCW reports whether the vertices wind counterclockwise.
func (p Polygon) IsCCW() bool { return p.SignedArea2() > 0 }

// Bounds returns the bounding box of the polygon.
func (p Polygon) Bounds() Rect {
	if len(p) == 0 {
		return Rect{}
	}
	b := Rect{p[0].X, p[0].Y, p[0].X, p[0].Y}
	for _, q := range p[1:] {
		b.X1 = minInt64(b.X1, q.X)
		b.Y1 = minInt64(b.Y1, q.Y)
		b.X2 = maxInt64(b.X2, q.X)
		b.Y2 = maxInt64(b.Y2, q.Y)
	}
	return b
}

// IsRectilinear reports whether every edge is axis-aligned.
func (p Polygon) IsRectilinear() bool {
	for _, e := range p.Edges() {
		if !e.Horizontal() && !e.Vertical() {
			return false
		}
	}
	return true
}

// Translate returns the polygon moved by d.
func (p Polygon) Translate(d Point) Polygon {
	out := make(Polygon, len(p))
	for i, q := range p {
		out[i] = q.Add(d)
	}
	return out
}

// TransformBy returns the polygon mapped through t.
func (p Polygon) TransformBy(t Transform) Polygon {
	out := make(Polygon, len(p))
	for i, q := range p {
		out[i] = t.Apply(q)
	}
	return out
}

// errNotRectilinear is returned by operations that require Manhattan input.
var errNotRectilinear = errors.New("geom: polygon is not rectilinear")

// Validate checks structural soundness: at least three vertices, no
// zero-length edges, and no immediately repeated vertices.
func (p Polygon) Validate() error {
	if len(p) < 3 {
		return fmt.Errorf("geom: polygon has %d vertices, need >= 3", len(p))
	}
	for i := range p {
		j := (i + 1) % len(p)
		if p[i] == p[j] {
			return fmt.Errorf("geom: zero-length edge at vertex %d %v", i, p[i])
		}
	}
	if p.SignedArea2() == 0 {
		return errors.New("geom: polygon has zero area")
	}
	return nil
}

// ToRects decomposes a simple rectilinear polygon into non-overlapping
// rects using horizontal slab decomposition with even-odd filling. It
// returns errNotRectilinear for non-Manhattan polygons.
func (p Polygon) ToRects() ([]Rect, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsRectilinear() {
		return nil, errNotRectilinear
	}
	type vedge struct {
		x, y1, y2 int64
	}
	var vs []vedge
	ys := make([]int64, 0, len(p))
	for _, e := range p.Edges() {
		ys = append(ys, e.A.Y)
		if e.Vertical() {
			y1, y2 := e.A.Y, e.B.Y
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			vs = append(vs, vedge{e.A.X, y1, y2})
		}
	}
	ys = dedupSortedInt64(ys)
	var out []Rect
	for i := 0; i+1 < len(ys); i++ {
		yLo, yHi := ys[i], ys[i+1]
		var xs []int64
		for _, v := range vs {
			if v.y1 <= yLo && yHi <= v.y2 {
				xs = append(xs, v.x)
			}
		}
		slices.Sort(xs)
		if len(xs)%2 != 0 {
			return nil, fmt.Errorf("geom: polygon slab at y=%d has odd crossing count (self-intersecting?)", yLo)
		}
		for k := 0; k+1 < len(xs); k += 2 {
			if xs[k] < xs[k+1] {
				out = append(out, Rect{xs[k], yLo, xs[k+1], yHi})
			}
		}
	}
	return out, nil
}

// ContainsPoint reports whether q is strictly inside the polygon using
// even-odd ray casting. Points exactly on the boundary may report either
// value; callers needing boundary semantics should use Region.
func (p Polygon) ContainsPoint(q Point) bool {
	in := false
	for i := range p {
		a, b := p[i], p[(i+1)%len(p)]
		if (a.Y > q.Y) != (b.Y > q.Y) {
			// x coordinate of the crossing, compared without division.
			// crossX = a.X + (q.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			num := (q.Y-a.Y)*(b.X-a.X) + a.X*(b.Y-a.Y)
			den := b.Y - a.Y
			if den < 0 {
				num, den = -num, -den
			}
			if q.X*den < num {
				in = !in
			}
		}
	}
	return in
}

// PerimeterRectilinear returns the total edge length of a rectilinear
// polygon as an exact integer.
func (p Polygon) PerimeterRectilinear() int64 {
	var s int64
	for _, e := range p.Edges() {
		s += absInt64(e.B.X-e.A.X) + absInt64(e.B.Y-e.A.Y)
	}
	return s
}

// FromRect returns the four-vertex CCW polygon of r.
func FromRect(r Rect) Polygon {
	c := r.Corners()
	return Polygon{c[0], c[1], c[2], c[3]}
}

func dedupSortedInt64(xs []int64) []int64 {
	if len(xs) == 0 {
		return xs
	}
	slices.Sort(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
