package perfbench

import (
	"strings"
	"testing"
)

func TestParseSnapshotAndCompare(t *testing.T) {
	oldJSON := []byte(`{"date":"2026-07-01","go_version":"go1.24.0","goarch":"amd64","num_cpu":4,"workers":0,
		"results":[
			{"name":"CheckCold","ns_per_op":30000000,"allocs_per_op":50000,"bytes_per_op":1,"iterations":10},
			{"name":"Retired","ns_per_op":1000,"allocs_per_op":1,"bytes_per_op":1,"iterations":10}]}`)
	newJSON := []byte(`{"date":"2026-07-26","go_version":"go1.24.0","goarch":"amd64","num_cpu":4,"workers":0,
		"results":[
			{"name":"CheckCold","ns_per_op":27000000,"allocs_per_op":49000,"bytes_per_op":1,"iterations":10},
			{"name":"Fresh","ns_per_op":500,"allocs_per_op":2,"bytes_per_op":1,"iterations":10}]}`)

	old, err := ParseSnapshot(oldJSON)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := ParseSnapshot(newJSON)
	if err != nil {
		t.Fatal(err)
	}
	ds := Compare(old, cur)
	if len(ds) != 3 {
		t.Fatalf("deltas = %d: %+v", len(ds), ds)
	}
	if !ds[0].InBoth || ds[0].Name != "CheckCold" {
		t.Fatalf("first delta: %+v", ds[0])
	}
	if ds[0].PctNs > -9.9 || ds[0].PctNs < -10.1 {
		t.Fatalf("CheckCold pct = %v, want -10%%", ds[0].PctNs)
	}
	if !ds[1].OnlyInNew || ds[1].Name != "Fresh" {
		t.Fatalf("second delta: %+v", ds[1])
	}
	if !ds[2].OnlyInOld || ds[2].Name != "Retired" {
		t.Fatalf("third delta: %+v", ds[2])
	}

	table := RenderDeltas(old, cur)
	for _, want := range []string{"CheckCold", "-10.0%", "allocs 50000 -> 49000", "new benchmark", "benchmark removed"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestParseSnapshotErrors(t *testing.T) {
	if _, err := ParseSnapshot([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ParseSnapshot([]byte(`{"date":"x","results":[]}`)); err == nil {
		t.Fatal("empty results accepted")
	}
}

// TestSnapshotRoundTrip locks the artifact format: Run's JSON output must
// parse back with ParseSnapshot (the -compare path reads files written by
// earlier builds).
func TestSnapshotRoundTrip(t *testing.T) {
	snap := Snapshot{
		Date: "2026-07-26", GoVersion: "go1.24.0", GOARCH: "amd64", NumCPU: 2,
		Results: []Result{{Name: "X", NsPerOp: 1.5, AllocsOp: 3, BytesOp: 4, N: 5}},
	}
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Date != snap.Date || len(back.Results) != 1 || back.Results[0] != snap.Results[0] {
		t.Fatalf("round trip changed snapshot: %+v", back)
	}
}
