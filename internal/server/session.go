package server

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Session is one named check session: a design, the technology it is
// checked under, and a long-lived incremental engine. All engine and
// design access is serialized by mu; distinct sessions share nothing, so
// the daemon checks them concurrently across goroutines.
//
// Edits are applied to the design immediately (mutation is cheap — it is
// the recheck that costs), but the recheck itself is debounced: a burst of
// N edit batches marks the session dirty N times and pays for one Recheck,
// run either by the debounce timer after the burst goes quiet or by the
// next /report request, whichever comes first. A client asking for the
// report therefore always gets the post-batch result.
type Session struct {
	ID   string
	Name string

	mu     sync.Mutex
	design *layout.Design
	tc     *tech.Technology
	eng    *core.Engine
	rep    *core.Report // last completed run's report
	dirty  bool         // edits applied since rep was produced
	closed bool

	debounce time.Duration
	timer    *time.Timer
	timerGen int // invalidates fired-but-not-yet-run timer callbacks

	stats SessionStats
	// pendingBatches/pendingEdits accumulate the burst since the last
	// flush; flushLocked moves them into the LastFlush* stats.
	pendingBatches int
	pendingEdits   int

	// lastUsed is read/written under the owning Server's mutex (not the
	// session's), where LRU and idle eviction decisions are made.
	lastUsed time.Time
	created  time.Time
}

// SessionStats counts a session's service-level activity. Rechecks is the
// total number of engine runs including the initial cold check, so
// (Rechecks - 1) per-burst deltas make debouncing observable via /stats.
// The duration and flush-size fields make the windowed-recheck speedup
// observable from outside: a sub-millisecond LastRecheckNS on an edit
// session means the patch path is engaging.
type SessionStats struct {
	EditsApplied    int `json:"edits_applied"`
	EditBatches     int `json:"edit_batches"`
	Rechecks        int `json:"rechecks"`
	DebounceFlushes int `json:"debounce_flushes"` // rechecks run by the timer
	ReportFlushes   int `json:"report_flushes"`   // rechecks run by a report request

	LastRecheckNS  int64 `json:"last_recheck_ns"`  // duration of the most recent engine run
	TotalRecheckNS int64 `json:"total_recheck_ns"` // cumulative engine-run time, cold check included
	// LastFlushBatches/LastFlushEdits are the size of the burst the most
	// recent recheck coalesced — how much work one debounce window absorbed.
	LastFlushBatches int `json:"last_flush_batches"`
	LastFlushEdits   int `json:"last_flush_edits"`
}

// newSession parses nothing — the server constructs it with a validated
// design and technology — and runs the initial cold check.
func newSession(id, name string, d *layout.Design, tc *tech.Technology, opts core.Options, debounce time.Duration, now time.Time) (*Session, error) {
	s := &Session{
		ID:       id,
		Name:     name,
		design:   d,
		tc:       tc,
		eng:      core.NewEngine(tc, opts),
		debounce: debounce,
		lastUsed: now,
		created:  now,
	}
	start := time.Now()
	rep, err := s.eng.Check(d)
	if err != nil {
		return nil, err
	}
	s.rep = rep
	s.stats.Rechecks = 1
	s.stats.LastRecheckNS = time.Since(start).Nanoseconds()
	s.stats.TotalRecheckNS = s.stats.LastRecheckNS
	return s, nil
}

// applyEdits applies one edit batch under the session lock and arms the
// debounce timer. It returns the number applied and the total batch count
// (the edit generation).
func (s *Session) applyEdits(edits []layout.Edit) (applied, generation int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("session %s is closed", s.ID)
	}
	n, err := layout.ApplyEdits(s.design, s.tc, edits)
	s.stats.EditsApplied += n
	s.pendingEdits += n
	if n > 0 || err == nil {
		s.stats.EditBatches++
		s.pendingBatches++
		s.dirty = true
		s.armTimerLocked()
	}
	return n, s.stats.EditBatches, err
}

// armTimerLocked (re)starts the debounce timer; each new batch pushes the
// flush out by the full window, so a rapid burst coalesces into one run.
// The generation stamp invalidates a timer whose callback already fired
// and is waiting on the lock — Stop can't cancel those, and without the
// stamp such a callback would flush immediately instead of being pushed
// out.
func (s *Session) armTimerLocked() {
	if s.debounce <= 0 {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timerGen++
	gen := s.timerGen
	s.timer = time.AfterFunc(s.debounce, func() { s.timerFlush(gen) })
}

// timerFlush is the debounce timer callback: recheck if still dirty and
// not superseded. A stale timer — one that lost the race with a report
// flush (dirty false) or with a newer edit batch (generation mismatch) —
// does nothing.
func (s *Session) timerFlush(gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.dirty || gen != s.timerGen {
		return
	}
	if err := s.flushLocked(); err == nil {
		s.stats.DebounceFlushes++
	}
}

// flushLocked runs the incremental Recheck over the accumulated edits.
// On failure the session stays dirty and keeps the previous report; the
// error surfaces on the report request that forced the flush.
func (s *Session) flushLocked() error {
	start := time.Now()
	rep, err := s.eng.Recheck(s.design)
	if err != nil {
		return err
	}
	s.rep = rep
	s.dirty = false
	s.stats.Rechecks++
	s.stats.LastRecheckNS = time.Since(start).Nanoseconds()
	s.stats.TotalRecheckNS += s.stats.LastRecheckNS
	s.stats.LastFlushBatches, s.pendingBatches = s.pendingBatches, 0
	s.stats.LastFlushEdits, s.pendingEdits = s.pendingEdits, 0
	return nil
}

// report returns the wire report for the current design state, flushing
// pending edits first so the caller always observes the post-batch result.
func (s *Session) report() (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session %s is closed", s.ID)
	}
	if s.dirty {
		if err := s.flushLocked(); err != nil {
			return nil, err
		}
		s.stats.ReportFlushes++
	}
	return BuildReport(s.rep, s.eng), nil
}

// StatsResponse is the /stats payload: service counters plus the engine's
// cache-effectiveness counters for the session's most recent run.
type StatsResponse struct {
	ID         string       `json:"id"`
	Name       string       `json:"name"`
	Design     string       `json:"design"`
	Tech       string       `json:"tech"`
	Dirty      bool         `json:"dirty"` // edits pending a recheck
	DebounceNS int64        `json:"debounce_ns"`
	Session    SessionStats `json:"session"`
	Engine     EngineStats  `json:"engine"`
}

// statsSnapshot assembles the /stats payload.
func (s *Session) statsSnapshot() (*StatsResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("session %s is closed", s.ID)
	}
	return &StatsResponse{
		ID:         s.ID,
		Name:       s.Name,
		Design:     s.design.Name,
		Tech:       s.tc.Name,
		Dirty:      s.dirty,
		DebounceNS: s.debounce.Nanoseconds(),
		Session:    s.stats,
		Engine:     *engineWire(s.eng.Stats()),
	}, nil
}

// close marks the session dead and stops its timer. Called with the
// session lock NOT held.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// info summarizes the session for listings.
func (s *Session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		ID:       s.ID,
		Name:     s.Name,
		Design:   s.design.Name,
		Tech:     s.tc.Name,
		Clean:    s.rep != nil && s.rep.Clean() && !s.dirty,
		Dirty:    s.dirty,
		Edits:    s.stats.EditsApplied,
		Rechecks: s.stats.Rechecks,
	}
}

// SessionInfo is one row of the session listing.
type SessionInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Design   string `json:"design"`
	Tech     string `json:"tech"`
	Clean    bool   `json:"clean"` // last report clean and no pending edits
	Dirty    bool   `json:"dirty"`
	Edits    int    `json:"edits"`
	Rechecks int    `json:"rechecks"`
}
