package geom

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
)

// Span is a half-open horizontal interval [X1, X2).
type Span struct {
	X1, X2 int64
}

// band is a horizontal slab [Y1, Y2) carrying a canonical span list:
// spans are sorted, pairwise disjoint, and non-adjacent (touching spans are
// merged), and every span is non-degenerate.
type band struct {
	y1, y2 int64
	spans  []Span
}

// Region is a finite union of axis-aligned rectangles held in canonical
// slab form: bands are sorted by y, non-overlapping, maximal (vertically
// adjacent bands with identical span lists are merged). All set semantics
// are half-open ([x1,x2)×[y1,y2)), matching area semantics: shapes that
// share only an edge or corner have disjoint interiors but an edge-sharing
// pair still fuses into a single connected component (corner-sharing does
// not), which is the physical connectivity of fabricated geometry.
//
// Regions are immutable values: every operation returns a new region (or
// writes one through an explicit *Into variant) and never mutates its
// inputs, so regions may be shared and copied freely.
//
// The zero value is the empty region and is ready to use.
type Region struct {
	// bands is the slab list. Regions built by the sweep core back every
	// band's span list with ONE shared array (the arena), and the first
	// band's slice is left with the arena's full capacity so the *Into
	// variants can recover and recycle the whole backing store — a
	// steady-state accumulation loop allocates nothing, and the Region
	// header stays one slice wide (it is embedded by value in hot checker
	// structs, where a second slice header would cost ~20% array growth).
	bands []band
}

// EmptyRegion returns an empty region.
func EmptyRegion() Region { return Region{} }

// FromRectR returns the region covering a single rect.
func FromRectR(r Rect) Region {
	if r.Empty() {
		return Region{}
	}
	return Region{bands: []band{{r.Y1, r.Y2, []Span{{r.X1, r.X2}}}}}
}

// FromRects returns the union of the given rects. Degenerate rects are
// ignored. The construction is a single y-sweep over sorted event slices
// with an incrementally maintained, x-ordered active list — no maps, no
// per-band rescans — and the result is materialized in exactly two
// allocations (the band list and one shared span arena).
func FromRects(rs []Rect) Region {
	var out Region
	FromRectsInto(&out, rs)
	return out
}

// UnionRects is FromRects under its algebraic name: the k-way union of a
// rect batch in one sweep, the bulk form callers should prefer over folding
// pairwise Union calls (which is O(n²) in total span traffic).
func UnionRects(rs []Rect) Region { return FromRects(rs) }

// FromRectsInto computes the union of rs into dst, recycling dst's band
// and span storage when capacities allow. dst must not be shared with a
// region the caller still needs (regions returned by value operations may
// alias each other; regions used as *Into destinations must be exclusively
// owned).
func FromRectsInto(dst *Region, rs []Rect) {
	sw := getSweeper()
	sw.fromRects(rs)
	sw.materialize(dst)
	putSweeper(sw)
}

// FromPolygon converts a simple rectilinear polygon to a region.
func FromPolygon(p Polygon) (Region, error) {
	rects, err := p.ToRects()
	if err != nil {
		return Region{}, err
	}
	return FromRects(rects), nil
}

// BulkUnion returns the union of all the given regions in a single k-way
// sweep: one pass over the combined band structure instead of k-1 pairwise
// sweeps over ever-growing intermediates.
func BulkUnion(regs []Region) Region {
	// A single non-empty input needs no sweep; regions are immutable, so
	// sharing its storage is safe.
	if r, n := soleNonEmpty(regs); n <= 1 {
		return r
	}
	var out Region
	bulkUnionInto(&out, regs)
	return out
}

// BulkUnionInto is BulkUnion recycling dst's storage (see FromRectsInto
// for the ownership contract).
func BulkUnionInto(dst *Region, regs []Region) {
	if r, n := soleNonEmpty(regs); n <= 1 {
		copyRegionInto(dst, r)
		return
	}
	bulkUnionInto(dst, regs)
}

func soleNonEmpty(regs []Region) (Region, int) {
	var sole Region
	n := 0
	for i := range regs {
		if !regs[i].Empty() {
			sole = regs[i]
			n++
		}
	}
	return sole, n
}

func bulkUnionInto(dst *Region, regs []Region) {
	sw := getSweeper()
	sw.bulkUnion(regs)
	sw.materialize(dst)
	putSweeper(sw)
}

// recycledArena recovers a region's span backing store for reuse: sweep-
// built regions leave the arena's full capacity on their first band's
// slice. Regions assembled any other way simply yield no capacity and a
// fresh array is allocated.
func (r *Region) recycledArena() []Span {
	if len(r.bands) == 0 {
		return nil
	}
	return r.bands[0].spans[:0]
}

// keepArenaRecoverable re-slices the first band to the arena's full
// capacity (the first band's spans always sit at the arena's start), so a
// later *Into call on this region can recycle the whole backing array.
func keepArenaRecoverable(bands []band, arena []Span) {
	if len(bands) > 0 && len(arena) > 0 && &bands[0].spans[0] == &arena[0] {
		bands[0].spans = arena[:len(bands[0].spans)]
	}
}

// copyRegionInto deep-copies src into dst, recycling dst's storage.
func copyRegionInto(dst *Region, src Region) {
	ns := src.NumRects()
	arena := dst.recycledArena()
	if cap(arena) < ns {
		arena = make([]Span, 0, ns)
	}
	bands := dst.bands
	if cap(bands) < len(src.bands) {
		bands = make([]band, len(src.bands))
	}
	bands = bands[:len(src.bands)]
	for i, b := range src.bands {
		lo := len(arena)
		arena = append(arena, b.spans...)
		bands[i] = band{b.y1, b.y2, arena[lo:len(arena):len(arena)]}
	}
	keepArenaRecoverable(bands, arena)
	dst.bands = bands
}

// ---- The sweep core ---------------------------------------------------

// Truth-table opcodes for the boolean span combiners: bit (inA<<1 | inB)
// holds the membership of the output set.
const (
	opUnion     uint8 = 0b1110
	opIntersect uint8 = 0b1000
	opSubtract  uint8 = 0b0100
	opXor       uint8 = 0b0110
)

// sweepEvent is one rect start or end edge in the FromRects y-sweep.
type sweepEvent struct {
	y   int64
	idx int32
	end bool
}

// bandMeta is one output band under construction: its spans live at
// arena[lo:hi] so the arena can grow (and reallocate) freely until
// materialize fixes the final slices.
type bandMeta struct {
	y1, y2 int64
	lo, hi int32
}

// sweeper holds every scratch buffer of the region construction sweeps.
// Instances are pooled: steady-state region algebra performs no scratch
// allocation at all, and a result region costs exactly two allocations
// (its band list and its span arena) — zero when written through an *Into
// variant whose destination has capacity.
type sweeper struct {
	events  []sweepEvent
	active  []int32
	meta    []bandMeta
	arena   []Span
	ys      []int64
	lists   [][]Span
	cursors []int
	gather  []Span
	rects   []Rect
}

var sweeperPool = sync.Pool{New: func() any { return new(sweeper) }}

func getSweeper() *sweeper {
	sw := sweeperPool.Get().(*sweeper)
	sw.meta = sw.meta[:0]
	sw.arena = sw.arena[:0]
	return sw
}

func putSweeper(sw *sweeper) {
	// Drop references into caller-owned span lists; everything else is
	// plain value scratch and safe to retain.
	for i := range sw.lists {
		sw.lists[i] = nil
	}
	sw.lists = sw.lists[:0]
	sweeperPool.Put(sw)
}

// emitBand closes the band [y1,y2) whose spans were appended at arena[lo:],
// merging it into the previous band when vertically adjacent with equal
// spans (the canonical-form maximality rule).
func (sw *sweeper) emitBand(y1, y2 int64, lo int32) {
	hi := int32(len(sw.arena))
	if y1 >= y2 || hi == lo {
		sw.arena = sw.arena[:lo]
		return
	}
	if n := len(sw.meta); n > 0 {
		prev := &sw.meta[n-1]
		if prev.y2 == y1 && spansEqual(sw.arena[prev.lo:prev.hi], sw.arena[lo:hi]) {
			prev.y2 = y2
			sw.arena = sw.arena[:lo]
			return
		}
	}
	sw.meta = append(sw.meta, bandMeta{y1, y2, lo, hi})
}

// materialize copies the staged bands into dst with exactly two
// allocations, or none when dst's recycled storage suffices.
func (sw *sweeper) materialize(dst *Region) {
	if len(sw.meta) == 0 {
		dst.bands = dst.bands[:0]
		return
	}
	arena := dst.recycledArena()
	if cap(arena) < len(sw.arena) {
		arena = make([]Span, len(sw.arena))
	} else {
		arena = arena[:len(sw.arena)]
	}
	copy(arena, sw.arena)
	bands := dst.bands
	if cap(bands) < len(sw.meta) {
		bands = make([]band, len(sw.meta))
	}
	bands = bands[:len(sw.meta)]
	for i, m := range sw.meta {
		bands[i] = band{m.y1, m.y2, arena[m.lo:m.hi:m.hi]}
	}
	keepArenaRecoverable(bands, arena)
	dst.bands = bands
}

// fromRects stages the union of rs: rect edges become a sorted event
// slice, the active set is an x-ordered list maintained incrementally by
// binary insertion/removal, and each elementary band folds the active list
// into merged spans in one linear pass (the list is already x-sorted).
func (sw *sweeper) fromRects(rs []Rect) {
	ev := sw.events[:0]
	for i := range rs {
		if !rs[i].Empty() {
			ev = append(ev,
				sweepEvent{rs[i].Y1, int32(i), false},
				sweepEvent{rs[i].Y2, int32(i), true})
		}
	}
	sw.events = ev
	if len(ev) == 0 {
		return
	}
	slices.SortFunc(ev, func(a, b sweepEvent) int {
		switch {
		case a.y < b.y:
			return -1
		case a.y > b.y:
			return 1
		}
		return 0
	})
	active := sw.active[:0]
	for i := 0; i < len(ev); {
		y := ev[i].y
		for i < len(ev) && ev[i].y == y {
			if ev[i].end {
				active = activeRemove(active, rs, ev[i].idx)
			} else {
				active = activeInsert(active, rs, ev[i].idx)
			}
			i++
		}
		if i >= len(ev) || len(active) == 0 {
			continue
		}
		lo := int32(len(sw.arena))
		for _, id := range active {
			r := &rs[id]
			if n := len(sw.arena); int32(n) > lo && r.X1 <= sw.arena[n-1].X2 {
				if r.X2 > sw.arena[n-1].X2 {
					sw.arena[n-1].X2 = r.X2
				}
			} else {
				sw.arena = append(sw.arena, Span{r.X1, r.X2})
			}
		}
		sw.emitBand(y, ev[i].y, lo)
	}
	sw.active = active
}

// activeInsert adds rect idx to the active list, keeping it ordered by
// (X1, idx).
func activeInsert(active []int32, rs []Rect, idx int32) []int32 {
	x1 := rs[idx].X1
	lo, hi := 0, len(active)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if ax := rs[active[m]].X1; ax < x1 || (ax == x1 && active[m] < idx) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	active = append(active, 0)
	copy(active[lo+1:], active[lo:])
	active[lo] = idx
	return active
}

// activeRemove deletes rect idx from the active list.
func activeRemove(active []int32, rs []Rect, idx int32) []int32 {
	x1 := rs[idx].X1
	lo, hi := 0, len(active)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if ax := rs[active[m]].X1; ax < x1 || (ax == x1 && active[m] < idx) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	copy(active[lo:], active[lo+1:])
	return active[:len(active)-1]
}

// bulkUnion stages the k-way union: one pass over the merged y-edge list,
// with a band cursor per region. Slabs covered by a single region copy its
// canonical spans verbatim; two regions merge span lists directly; more
// fall back to gather-sort-merge.
func (sw *sweeper) bulkUnion(regs []Region) {
	ys := sw.ys[:0]
	for ri := range regs {
		for bi := range regs[ri].bands {
			ys = append(ys, regs[ri].bands[bi].y1, regs[ri].bands[bi].y2)
		}
	}
	sw.ys = ys
	if len(ys) == 0 {
		return
	}
	ys = dedupSortedInt64(ys)

	if cap(sw.cursors) < len(regs) {
		sw.cursors = make([]int, len(regs))
	}
	cursors := sw.cursors[:len(regs)]
	for i := range cursors {
		cursors[i] = 0
	}
	lists := sw.lists[:0]
	for k := 0; k+1 < len(ys); k++ {
		yLo, yHi := ys[k], ys[k+1]
		lists = lists[:0]
		for ri := range regs {
			bands := regs[ri].bands
			c := cursors[ri]
			for c < len(bands) && bands[c].y2 <= yLo {
				c++
			}
			cursors[ri] = c
			if c < len(bands) && bands[c].y1 <= yLo {
				lists = append(lists, bands[c].spans)
			}
		}
		lo := int32(len(sw.arena))
		switch len(lists) {
		case 0:
			continue
		case 1:
			sw.arena = append(sw.arena, lists[0]...)
		case 2:
			sw.arena = combineSpansInto(sw.arena, lists[0], lists[1], opUnion)
		default:
			gather := sw.gather[:0]
			for _, l := range lists {
				gather = append(gather, l...)
			}
			slices.SortFunc(gather, func(a, b Span) int {
				switch {
				case a.X1 < b.X1:
					return -1
				case a.X1 > b.X1:
					return 1
				}
				return 0
			})
			for _, s := range gather {
				if n := len(sw.arena); int32(n) > lo && s.X1 <= sw.arena[n-1].X2 {
					if s.X2 > sw.arena[n-1].X2 {
						sw.arena[n-1].X2 = s.X2
					}
				} else {
					sw.arena = append(sw.arena, s)
				}
			}
			sw.gather = gather
		}
		sw.emitBand(yLo, yHi, lo)
	}
	sw.lists = lists
}

// boolOp stages the pointwise boolean combination of a and b, walking the
// two band lists directly (no materialized y-edge list).
func (sw *sweeper) boolOp(a, b Region, op uint8) {
	ai, bi := 0, 0
	y := int64(math.MinInt64)
	for {
		for ai < len(a.bands) && a.bands[ai].y2 <= y {
			ai++
		}
		for bi < len(b.bands) && b.bands[bi].y2 <= y {
			bi++
		}
		aOK, bOK := ai < len(a.bands), bi < len(b.bands)
		if !aOK && !bOK {
			return
		}
		yLo := int64(math.MaxInt64)
		if aOK {
			yLo = maxInt64(y, a.bands[ai].y1)
		}
		if bOK {
			if s := maxInt64(y, b.bands[bi].y1); s < yLo {
				yLo = s
			}
		}
		yHi := int64(math.MaxInt64)
		if aOK {
			if a.bands[ai].y1 > yLo {
				yHi = a.bands[ai].y1
			} else {
				yHi = a.bands[ai].y2
			}
		}
		if bOK {
			var e int64
			if b.bands[bi].y1 > yLo {
				e = b.bands[bi].y1
			} else {
				e = b.bands[bi].y2
			}
			if e < yHi {
				yHi = e
			}
		}
		var sa, sb []Span
		if aOK && a.bands[ai].y1 <= yLo {
			sa = a.bands[ai].spans
		}
		if bOK && b.bands[bi].y1 <= yLo {
			sb = b.bands[bi].spans
		}
		lo := int32(len(sw.arena))
		sw.arena = combineSpansInto(sw.arena, sa, sb, op)
		sw.emitBand(yLo, yHi, lo)
		y = yHi
	}
}

// combineSpansInto appends op(sa, sb) to dst, walking the elementary
// x-intervals of the two canonical span lists with two cursors. Output
// spans are merged on the fly, so the appended run is canonical.
func combineSpansInto(dst []Span, sa, sb []Span, op uint8) []Span {
	ia, ib := 0, 0
	x := int64(math.MinInt64)
	n0 := len(dst)
	for {
		for ia < len(sa) && sa[ia].X2 <= x {
			ia++
		}
		for ib < len(sb) && sb[ib].X2 <= x {
			ib++
		}
		aOK, bOK := ia < len(sa), ib < len(sb)
		if !aOK && !bOK {
			return dst
		}
		xLo := int64(math.MaxInt64)
		if aOK {
			xLo = maxInt64(x, sa[ia].X1)
		}
		if bOK {
			if s := maxInt64(x, sb[ib].X1); s < xLo {
				xLo = s
			}
		}
		xHi := int64(math.MaxInt64)
		if aOK {
			if sa[ia].X1 > xLo {
				xHi = sa[ia].X1
			} else {
				xHi = sa[ia].X2
			}
		}
		if bOK {
			var e int64
			if sb[ib].X1 > xLo {
				e = sb[ib].X1
			} else {
				e = sb[ib].X2
			}
			if e < xHi {
				xHi = e
			}
		}
		var bit uint8
		if aOK && sa[ia].X1 <= xLo {
			bit = 2
		}
		if bOK && sb[ib].X1 <= xLo {
			bit |= 1
		}
		if op>>bit&1 == 1 {
			if n := len(dst); n > n0 && dst[n-1].X2 == xLo {
				dst[n-1].X2 = xHi
			} else {
				dst = append(dst, Span{xLo, xHi})
			}
		}
		x = xHi
	}
}

// boolOpInto computes op(a, b) into dst through the pooled scratch. dst
// may alias a or b: the sweep reads its inputs completely before the
// result is materialized.
func boolOpInto(dst *Region, a, b Region, op uint8) {
	sw := getSweeper()
	sw.boolOp(a, b, op)
	sw.materialize(dst)
	putSweeper(sw)
}

// boolOpAny reports whether op(a, b) is non-empty, sweeping with early
// exit and no materialization.
func boolOpAny(a, b Region, op uint8) bool {
	ai, bi := 0, 0
	y := int64(math.MinInt64)
	for {
		for ai < len(a.bands) && a.bands[ai].y2 <= y {
			ai++
		}
		for bi < len(b.bands) && b.bands[bi].y2 <= y {
			bi++
		}
		aOK, bOK := ai < len(a.bands), bi < len(b.bands)
		if !aOK && !bOK {
			return false
		}
		yLo := int64(math.MaxInt64)
		if aOK {
			yLo = maxInt64(y, a.bands[ai].y1)
		}
		if bOK {
			if s := maxInt64(y, b.bands[bi].y1); s < yLo {
				yLo = s
			}
		}
		yHi := int64(math.MaxInt64)
		if aOK {
			if a.bands[ai].y1 > yLo {
				yHi = a.bands[ai].y1
			} else {
				yHi = a.bands[ai].y2
			}
		}
		if bOK {
			var e int64
			if b.bands[bi].y1 > yLo {
				e = b.bands[bi].y1
			} else {
				e = b.bands[bi].y2
			}
			if e < yHi {
				yHi = e
			}
		}
		var sa, sb []Span
		if aOK && a.bands[ai].y1 <= yLo {
			sa = a.bands[ai].spans
		}
		if bOK && b.bands[bi].y1 <= yLo {
			sb = b.bands[bi].spans
		}
		if combineSpansAny(sa, sb, op) {
			return true
		}
		y = yHi
	}
}

// combineSpansAny reports whether op(sa, sb) is non-empty, returning at
// the first covered elementary interval. It deliberately repeats
// combineSpansInto's cursor walk (as boolOpAny repeats boolOp's band
// walk): the duplication keeps each loop closure-free and inlineable,
// which the zero-allocation discipline depends on — a change to the
// interval-boundary logic must be mirrored across all four walkers.
func combineSpansAny(sa, sb []Span, op uint8) bool {
	ia, ib := 0, 0
	x := int64(math.MinInt64)
	for {
		for ia < len(sa) && sa[ia].X2 <= x {
			ia++
		}
		for ib < len(sb) && sb[ib].X2 <= x {
			ib++
		}
		aOK, bOK := ia < len(sa), ib < len(sb)
		if !aOK && !bOK {
			return false
		}
		xLo := int64(math.MaxInt64)
		if aOK {
			xLo = maxInt64(x, sa[ia].X1)
		}
		if bOK {
			if s := maxInt64(x, sb[ib].X1); s < xLo {
				xLo = s
			}
		}
		xHi := int64(math.MaxInt64)
		if aOK {
			if sa[ia].X1 > xLo {
				xHi = sa[ia].X1
			} else {
				xHi = sa[ia].X2
			}
		}
		if bOK {
			var e int64
			if sb[ib].X1 > xLo {
				e = sb[ib].X1
			} else {
				e = sb[ib].X2
			}
			if e < xHi {
				xHi = e
			}
		}
		var bit uint8
		if aOK && sa[ia].X1 <= xLo {
			bit = 2
		}
		if bOK && sb[ib].X1 <= xLo {
			bit |= 1
		}
		if op>>bit&1 == 1 {
			return true
		}
		x = xHi
	}
}

// ---- Queries ----------------------------------------------------------

func spansEqual(a, b []Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the region covers zero area.
func (r Region) Empty() bool { return len(r.bands) == 0 }

// Area returns the covered area.
func (r Region) Area() int64 {
	var a int64
	for _, b := range r.bands {
		h := b.y2 - b.y1
		for _, s := range b.spans {
			a += (s.X2 - s.X1) * h
		}
	}
	return a
}

// Bounds returns the bounding box of the region.
func (r Region) Bounds() Rect {
	if r.Empty() {
		return Rect{}
	}
	out := Rect{Y1: r.bands[0].y1, Y2: r.bands[len(r.bands)-1].y2}
	first := true
	for _, b := range r.bands {
		x1 := b.spans[0].X1
		x2 := b.spans[len(b.spans)-1].X2
		if first {
			out.X1, out.X2 = x1, x2
			first = false
			continue
		}
		out.X1 = minInt64(out.X1, x1)
		out.X2 = maxInt64(out.X2, x2)
	}
	return out
}

// Rects returns the band decomposition of the region as non-overlapping
// rects (one per band×span). The list is in canonical order.
func (r Region) Rects() []Rect {
	n := r.NumRects()
	if n == 0 {
		return nil
	}
	out := make([]Rect, 0, n)
	for _, b := range r.bands {
		for _, s := range b.spans {
			out = append(out, Rect{s.X1, b.y1, s.X2, b.y2})
		}
	}
	return out
}

// NumRects returns the number of rects in the canonical decomposition.
func (r Region) NumRects() int {
	n := 0
	for _, b := range r.bands {
		n += len(b.spans)
	}
	return n
}

// ContainsPoint reports whether p lies in the half-open covered set.
func (r Region) ContainsPoint(p Point) bool {
	lo, hi := 0, len(r.bands)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if r.bands[m].y2 > p.Y {
			hi = m
		} else {
			lo = m + 1
		}
	}
	if lo >= len(r.bands) || r.bands[lo].y1 > p.Y {
		return false
	}
	spans := r.bands[lo].spans
	lo, hi = 0, len(spans)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if spans[m].X2 > p.X {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo < len(spans) && spans[lo].X1 <= p.X
}

// Union returns r ∪ s.
func (r Region) Union(s Region) Region {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	var out Region
	boolOpInto(&out, r, s, opUnion)
	return out
}

// Intersect returns r ∩ s.
func (r Region) Intersect(s Region) Region {
	if r.Empty() || s.Empty() || !r.Bounds().Overlaps(s.Bounds()) {
		return Region{}
	}
	var out Region
	boolOpInto(&out, r, s, opIntersect)
	return out
}

// Subtract returns r \ s.
func (r Region) Subtract(s Region) Region {
	if r.Empty() {
		return Region{}
	}
	if s.Empty() {
		return r
	}
	var out Region
	boolOpInto(&out, r, s, opSubtract)
	return out
}

// Xor returns the symmetric difference of r and s.
func (r Region) Xor(s Region) Region {
	var out Region
	boolOpInto(&out, r, s, opXor)
	return out
}

// UnionInto computes a ∪ b into dst, recycling dst's storage. dst may
// alias a or b, but — as with every *Into variant — dst's storage must be
// exclusively owned by the caller: value operations may return regions
// that share their input's backing arrays (e.g. Union with an empty
// operand), and recycling such a region in place would corrupt the other
// alias. When unsure, use the value form.
func UnionInto(dst *Region, a, b Region) { boolOpInto(dst, a, b, opUnion) }

// IntersectInto computes a ∩ b into dst, recycling dst's storage; see
// UnionInto for the dst ownership contract.
func IntersectInto(dst *Region, a, b Region) { boolOpInto(dst, a, b, opIntersect) }

// SubtractInto computes a \ b into dst, recycling dst's storage; see
// UnionInto for the dst ownership contract.
func SubtractInto(dst *Region, a, b Region) { boolOpInto(dst, a, b, opSubtract) }

// Equal reports whether r and s cover exactly the same set.
func (r Region) Equal(s Region) bool {
	if len(r.bands) != len(s.bands) {
		return false
	}
	for i := range r.bands {
		if r.bands[i].y1 != s.bands[i].y1 || r.bands[i].y2 != s.bands[i].y2 {
			return false
		}
		if !spansEqual(r.bands[i].spans, s.bands[i].spans) {
			return false
		}
	}
	return true
}

// Overlaps reports whether r and s share any interior area, without
// materializing the intersection.
func (r Region) Overlaps(s Region) bool {
	ri, si := 0, 0
	for ri < len(r.bands) && si < len(s.bands) {
		rb, sb := r.bands[ri], s.bands[si]
		if rb.y2 <= sb.y1 {
			ri++
			continue
		}
		if sb.y2 <= rb.y1 {
			si++
			continue
		}
		if spansOverlap(rb.spans, sb.spans) {
			return true
		}
		if rb.y2 <= sb.y2 {
			ri++
		} else {
			si++
		}
	}
	return false
}

func spansOverlap(sa, sb []Span) bool {
	ia, ib := 0, 0
	for ia < len(sa) && ib < len(sb) {
		a, b := sa[ia], sb[ib]
		if a.X2 <= b.X1 {
			ia++
			continue
		}
		if b.X2 <= a.X1 {
			ib++
			continue
		}
		return true
	}
	return false
}

// IntersectBounds returns the bounding box of r ∩ s and whether the
// intersection is non-empty, without materializing the intersection
// region. It equals r.Intersect(s).Bounds() exactly.
func IntersectBounds(r, s Region) (Rect, bool) {
	var out Rect
	found := false
	ri, si := 0, 0
	for ri < len(r.bands) && si < len(s.bands) {
		rb, sb := &r.bands[ri], &s.bands[si]
		if rb.y2 <= sb.y1 {
			ri++
			continue
		}
		if sb.y2 <= rb.y1 {
			si++
			continue
		}
		yLo := maxInt64(rb.y1, sb.y1)
		yHi := minInt64(rb.y2, sb.y2)
		ia, ib := 0, 0
		for ia < len(rb.spans) && ib < len(sb.spans) {
			a, b := rb.spans[ia], sb.spans[ib]
			if a.X2 <= b.X1 {
				ia++
				continue
			}
			if b.X2 <= a.X1 {
				ib++
				continue
			}
			xLo := maxInt64(a.X1, b.X1)
			xHi := minInt64(a.X2, b.X2)
			if !found {
				out = Rect{xLo, yLo, xHi, yHi}
				found = true
			} else {
				out.X1 = minInt64(out.X1, xLo)
				out.X2 = maxInt64(out.X2, xHi)
				out.Y1 = minInt64(out.Y1, yLo)
				out.Y2 = maxInt64(out.Y2, yHi)
			}
			if a.X2 <= b.X2 {
				ia++
			} else {
				ib++
			}
		}
		if rb.y2 <= sb.y2 {
			ri++
		} else {
			si++
		}
	}
	return out, found
}

// OverlapsRect reports whether r shares interior area with rect q.
func (r Region) OverlapsRect(q Rect) bool {
	if q.Empty() {
		return false
	}
	return r.Overlaps(FromRectR(q))
}

// ContainsRegion reports whether s ⊆ r.
func (r Region) ContainsRegion(s Region) bool {
	return !boolOpAny(s, r, opSubtract)
}

// Clip returns r ∩ rect.
func (r Region) Clip(q Rect) Region { return r.Intersect(FromRectR(q)) }

// ---- Transforms -------------------------------------------------------

// Translate returns the region moved by d.
func (r Region) Translate(d Point) Region {
	if r.Empty() {
		return r
	}
	bands := make([]band, len(r.bands))
	arena := make([]Span, r.NumRects())
	copyAxisTransformed(bands, arena, r, false, false, d)
	keepArenaRecoverable(bands, arena)
	return Region{bands: bands}
}

// Scale returns the region with all coordinates multiplied by k (k > 0).
func (r Region) Scale(k int64) Region {
	if k <= 0 {
		panic("geom: Region.Scale requires k > 0")
	}
	if r.Empty() {
		return r
	}
	bands, arena := r.cloneStorage()
	for i := range arena {
		arena[i].X1 *= k
		arena[i].X2 *= k
	}
	for i := range bands {
		bands[i].y1 *= k
		bands[i].y2 *= k
	}
	return Region{bands: bands}
}

// cloneStorage copies the band structure into a fresh band list backed by
// a single span arena (two allocations, independent of band count).
func (r Region) cloneStorage() ([]band, []Span) {
	arena := make([]Span, 0, r.NumRects())
	bands := make([]band, len(r.bands))
	for i, b := range r.bands {
		lo := len(arena)
		arena = append(arena, b.spans...)
		bands[i] = band{b.y1, b.y2, arena[lo:len(arena):len(arena)]}
	}
	keepArenaRecoverable(bands, arena)
	return bands, arena
}

// TransformBy returns the region mapped through a Manhattan transform.
// Axis-preserving orientations (R0, R180 and the two mirrors) keep the
// band structure and rewrite coordinates in place; the four 90°-rotating
// orientations re-sweep the transformed rects.
func (r Region) TransformBy(t Transform) Region {
	if t == Identity || r.Empty() {
		return r
	}
	if negX, negY, ok := axisPreserving(t.Orient); ok {
		return r.flip(negX, negY, t.Trans)
	}
	sw := getSweeper()
	rects := sw.rects[:0]
	for _, b := range r.bands {
		for _, s := range b.spans {
			rects = append(rects, t.ApplyRect(Rect{s.X1, b.y1, s.X2, b.y2}))
		}
	}
	var out Region
	fromRectsSub(&out, rects)
	sw.rects = rects
	putSweeper(sw)
	return out
}

// fromRectsSub runs a FromRects sweep for a caller whose own pooled
// sweeper holds the input rect scratch; the sweep borrows a second one.
func fromRectsSub(dst *Region, rects []Rect) {
	inner := getSweeper()
	inner.fromRects(rects)
	inner.materialize(dst)
	putSweeper(inner)
}

// flip mirrors the region about the y axis (negX) and/or the x axis
// (negY), then translates by d. Both mirrors preserve the slab structure:
// negY reverses the band order, negX reverses each span list.
func (r Region) flip(negX, negY bool, d Point) Region {
	bands := make([]band, len(r.bands))
	arena := make([]Span, r.NumRects())
	copyAxisTransformed(bands, arena, r, negX, negY, d)
	keepArenaRecoverable(bands, arena)
	return Region{bands: bands}
}

// copyAxisTransformed writes r mapped through an axis-preserving
// transform (optional x/y negations, then a translation) into the given
// storage. bands must have length len(r.bands) and arena length
// r.NumRects(); each band's span list is carved from arena in output
// order.
func copyAxisTransformed(bands []band, arena []Span, r Region, negX, negY bool, d Point) {
	k := 0
	for i := range r.bands {
		src := &r.bands[i]
		di, y1, y2 := i, src.y1+d.Y, src.y2+d.Y
		if negY {
			di = len(bands) - 1 - i
			y1, y2 = -src.y2+d.Y, -src.y1+d.Y
		}
		n := len(src.spans)
		dst := arena[k : k+n : k+n]
		if negX {
			for j, s := range src.spans {
				dst[n-1-j] = Span{-s.X2 + d.X, -s.X1 + d.X}
			}
		} else {
			for j, s := range src.spans {
				dst[j] = Span{s.X1 + d.X, s.X2 + d.X}
			}
		}
		bands[di] = band{y1, y2, dst}
		k += n
	}
}

// axisPreserving reports whether the orientation maps bands to bands
// (no 90° rotation), and returns the corresponding coordinate negations.
func axisPreserving(o Orient) (negX, negY, ok bool) {
	switch o {
	case R0:
		return false, false, true
	case MX: // (x,y) -> (x,-y)
		return false, true, true
	case MX180: // (x,y) -> (-x,y)
		return true, false, true
	case R180: // (x,y) -> (-x,-y)
		return true, true, true
	}
	return false, false, false
}

// regionStoreChunk is the slab granularity of RegionStore.
const regionStoreChunk = 4096

// RegionStore packs the storage of many transformed regions into shared
// slab allocations: a cache that holds thousands of small regions (the
// incremental extractor's span embeddings) pays two allocations per slab
// instead of two per region. Regions built through a store are immutable
// like any other region; their span capacity is clipped so they can never
// grow into a neighbour's storage.
type RegionStore struct {
	bands []band
	spans []Span
}

func (st *RegionStore) takeBands(n int) []band {
	if cap(st.bands)-len(st.bands) < n {
		st.bands = make([]band, 0, max(n, regionStoreChunk))
	}
	out := st.bands[len(st.bands) : len(st.bands)+n : len(st.bands)+n]
	st.bands = st.bands[:len(st.bands)+n]
	return out
}

func (st *RegionStore) takeSpans(n int) []Span {
	if cap(st.spans)-len(st.spans) < n {
		st.spans = make([]Span, 0, max(n, regionStoreChunk))
	}
	out := st.spans[len(st.spans) : len(st.spans)+n : len(st.spans)+n]
	st.spans = st.spans[:len(st.spans)+n]
	return out
}

// TransformBy returns r mapped through t with the result's storage drawn
// from the store when the orientation preserves the band structure;
// rotating orientations fall back to a standalone sweep.
func (st *RegionStore) TransformBy(r Region, t Transform) Region {
	if t == Identity || r.Empty() {
		return r
	}
	negX, negY, ok := axisPreserving(t.Orient)
	if !ok {
		return r.TransformBy(t)
	}
	bands := st.takeBands(len(r.bands))
	arena := st.takeSpans(r.NumRects())
	copyAxisTransformed(bands, arena, r, negX, negY, t.Trans)
	return Region{bands: bands}
}

// Translate returns r moved by d with the result's storage drawn from the
// store — TransformBy specialized to the pure-translation case, with no
// orientation dispatch on the per-span copy loop.
func (st *RegionStore) Translate(r Region, d Point) Region {
	if (d == Point{}) || r.Empty() {
		return r
	}
	bands := st.takeBands(len(r.bands))
	arena := st.takeSpans(r.NumRects())
	copyAxisTransformed(bands, arena, r, false, false, d)
	return Region{bands: bands}
}

// ---- Morphology -------------------------------------------------------

// Dilate returns the Minkowski sum of r with the square [-d,d]² (the
// paper's orthogonal expand). Dilation distributes over union, so the
// result is the sweep of the dilated canonical rects. d must be >= 0.
func (r Region) Dilate(d int64) Region {
	return r.DilateXY(d, d)
}

// DilateXY dilates by dx horizontally and dy vertically.
func (r Region) DilateXY(dx, dy int64) Region {
	if dx < 0 || dy < 0 {
		panic("geom: DilateXY requires dx,dy >= 0")
	}
	if (dx == 0 && dy == 0) || r.Empty() {
		return r
	}
	sw := getSweeper()
	rects := sw.rects[:0]
	for _, b := range r.bands {
		for _, s := range b.spans {
			rects = append(rects, Rect{s.X1 - dx, b.y1 - dy, s.X2 + dx, b.y2 + dy})
		}
	}
	var out Region
	fromRectsSub(&out, rects)
	sw.rects = rects
	putSweeper(sw)
	return out
}

// Erode returns the orthogonal shrink of r by d: the set of points whose
// surrounding [-d,d]² square lies entirely inside r. Implemented by the
// complement-dilate-complement duality within an enlarged frame.
func (r Region) Erode(d int64) Region {
	return r.ErodeXY(d, d)
}

// ErodeXY erodes by dx horizontally and dy vertically.
func (r Region) ErodeXY(dx, dy int64) Region {
	if dx < 0 || dy < 0 {
		panic("geom: ErodeXY requires dx,dy >= 0")
	}
	if (dx == 0 && dy == 0) || r.Empty() {
		return r
	}
	frame := r.Bounds().ExpandXY(2*dx+2, 2*dy+2)
	var comp Region
	SubtractInto(&comp, FromRectR(frame), r)
	comp = comp.DilateXY(dx, dy)
	var out Region
	SubtractInto(&out, r, comp)
	return out
}

// ---- Components -------------------------------------------------------

// Components splits the region into edge-connected components (corner
// adjacency does not connect, matching physical continuity of fabricated
// geometry). Components are returned in deterministic order (by their
// first canonical rect).
func (r Region) Components() []Region {
	n := r.NumRects()
	if n == 0 {
		return nil
	}
	uf := newUnionFind(n)
	// Within the canonical form, rects in the same band never touch, so it
	// suffices to link rects of vertically adjacent bands whose x intervals
	// overlap with positive length — a two-pointer walk per band seam.
	base := 0
	for bi := 0; bi+1 < len(r.bands); bi++ {
		b, nb := &r.bands[bi], &r.bands[bi+1]
		nextBase := base + len(b.spans)
		if b.y2 == nb.y1 {
			i, j := 0, 0
			for i < len(b.spans) && j < len(nb.spans) {
				sa, sb := b.spans[i], nb.spans[j]
				if sa.X2 <= sb.X1 {
					i++
					continue
				}
				if sb.X2 <= sa.X1 {
					j++
					continue
				}
				uf.union(base+i, nextBase+j)
				if sa.X2 <= sb.X2 {
					i++
				} else {
					j++
				}
			}
		}
		base = nextBase
	}
	// Label components in first-rect order, then bucket the rects with a
	// counting sort — no maps.
	comp := make([]int, n)
	rootComp := make([]int32, n)
	for i := range rootComp {
		rootComp[i] = -1
	}
	numComp := 0
	idx := 0
	for _, b := range r.bands {
		for range b.spans {
			root := uf.find(idx)
			if rootComp[root] < 0 {
				rootComp[root] = int32(numComp)
				numComp++
			}
			comp[idx] = int(rootComp[root])
			idx++
		}
	}
	if numComp == 1 {
		return []Region{r}
	}
	counts := make([]int, numComp+1)
	for _, c := range comp {
		counts[c+1]++
	}
	for c := 1; c <= numComp; c++ {
		counts[c] += counts[c-1]
	}
	rects := make([]Rect, n)
	fill := make([]int, numComp)
	idx = 0
	for _, b := range r.bands {
		for _, s := range b.spans {
			c := comp[idx]
			rects[counts[c]+fill[c]] = Rect{s.X1, b.y1, s.X2, b.y2}
			fill[c]++
			idx++
		}
	}
	out := make([]Region, numComp)
	for c := 0; c < numComp; c++ {
		FromRectsInto(&out[c], rects[counts[c]:counts[c+1]])
	}
	return out
}

// String renders a compact description for debugging.
func (r Region) String() string {
	if r.Empty() {
		return "Region{}"
	}
	var sb strings.Builder
	sb.WriteString("Region{")
	for i, b := range r.bands {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "y[%d,%d):", b.y1, b.y2)
		for _, s := range b.spans {
			fmt.Fprintf(&sb, "[%d,%d)", s.X1, s.X2)
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// unionFind is a tiny weighted union-find used for component labelling.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
