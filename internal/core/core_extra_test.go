package core

import (
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/tech"
	"repro/internal/workload"
)

func ruleCount(t *testing.T, rep *Report, rule string) int {
	t.Helper()
	return CountByRule(rep.Violations)[rule]
}

func TestMetricOptionChangesSpacingVerdict(t *testing.T) {
	// Diagonal pair: L∞ 600 < 750, Euclidean 849 >= 750.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("m")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(0, 0, 2000, 2000), "")
	top.AddBox(diff, geom.R(2600, 2600, 4600, 4600), "")
	d.Top = top

	euc, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := ruleCount(t, euc, "S.ND.ND.diff"); n != 0 {
		t.Fatalf("euclidean DIC flagged the diagonal pair: %v", euc.Violations)
	}
	ortho, err := Check(d, tc, Options{SkipConstruction: true, Metric: Orthogonal})
	if err != nil {
		t.Fatal(err)
	}
	if n := ruleCount(t, ortho, "S.ND.ND.diff"); n != 1 {
		t.Fatalf("orthogonal DIC should exhibit the Figure 4 pathology: %v", ortho.Violations)
	}
}

func TestReferenceNetlistOption(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	d := layout.NewDesign("ref")
	tran := device.NewEnhTransistor(d, tc, "m", 500, 500)
	top := d.MustSymbol("top")
	top.AddCall(tran, geom.Identity, "m1")
	top.AddWire(diff, 500, "src", geom.Pt(-2000, 0), geom.Pt(-500, 0))
	top.AddWire(diff, 500, "drn", geom.Pt(300, 0), geom.Pt(2000, 0))
	top.AddWire(poly, 500, "gat", geom.Pt(0, 250), geom.Pt(0, 2500))
	d.Top = top

	good := netlist.Reference{
		"src": {"nmos-enh:s"}, "drn": {"nmos-enh:d"}, "gat": {"nmos-enh:g"},
	}
	rep, err := Check(d, tc, Options{SkipConstruction: true, Reference: good})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Errors() {
		if strings.HasPrefix(v.Rule, "NET.MIS") {
			t.Fatalf("good reference mismatched: %v", v)
		}
	}
	bad := netlist.Reference{"src": {"nmos-enh:g"}, "none": {"nmos-enh:d"}}
	rep2, err := Check(d, tc, Options{SkipConstruction: true, Reference: bad})
	if err != nil {
		t.Fatal(err)
	}
	if ruleCount(t, rep2, "NET.MISMATCH") != 1 || ruleCount(t, rep2, "NET.MISSING") != 1 {
		t.Fatalf("bad reference not reported: %v", rep2.Violations)
	}
}

func TestSkipInteractionsOption(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("skip")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(0, 0, 2000, 500), "")
	top.AddBox(diff, geom.R(0, 1000, 2000, 1500), "") // 500 < 750 apart
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true, SkipInteractions: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := ruleCount(t, rep, "S.ND.ND.diff"); n != 0 {
		t.Fatalf("interactions ran despite SkipInteractions: %v", rep.Violations)
	}
	full, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := ruleCount(t, full, "S.ND.ND.diff"); n != 1 {
		t.Fatalf("full check should flag: %v", full.Violations)
	}
}

func TestNoExemptionsAblation(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "abl", 2, 2)
	clean, err := Check(chip.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Clean() {
		t.Fatalf("chip not clean: %v", clean.Errors()[0])
	}
	ablated, err := Check(chip.Design, tc, Options{NoExemptions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ablated.Errors()) == 0 {
		t.Fatal("ablation produced no false errors; exemptions are not doing anything")
	}
	if ablated.Stats.InteractionChecked <= clean.Stats.InteractionChecked {
		t.Fatalf("ablation should measure more pairs: %d vs %d",
			ablated.Stats.InteractionChecked, clean.Stats.InteractionChecked)
	}
}

func TestGateKeepoutAcrossSymbols(t *testing.T) {
	// A contact DEVICE (not just a loose cut) placed over a transistor's
	// channel in another symbol (Figure 7 across the hierarchy).
	tc := tech.NMOS()
	d := layout.NewDesign("xsym")
	tran := device.NewEnhTransistor(d, tc, "m", 500, 500)
	ct := device.NewDiffContact(d, tc, "c")
	top := d.MustSymbol("top")
	top.AddCall(tran, geom.Identity, "m1")
	top.AddCall(ct, geom.Identity, "c1") // dead on the channel
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if ruleCount(t, rep, "DEV.GATE.CONTACT") == 0 {
		t.Fatalf("cross-symbol contact over gate not flagged: %v", rep.Violations)
	}
}

func TestBipolarKeepoutThroughPipeline(t *testing.T) {
	tc := tech.Bipolar()
	isoL, _ := tc.LayerByName(tech.BipIso)
	d := layout.NewDesign("bip")
	q := device.NewNPN(d, tc, "q")
	top := d.MustSymbol("top")
	top.AddCall(q, geom.Identity, "q1")
	top.AddWire(isoL, 400, "", geom.Pt(850, 400), geom.Pt(3000, 400)) // 50 from base
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if ruleCount(t, rep, "DEV.NPN.ISO") == 0 {
		t.Fatalf("isolation near base not flagged: %v", rep.Violations)
	}
}

func TestStageStatsPopulated(t *testing.T) {
	tc := tech.NMOS()
	chip := workload.NewChip(tc, "stats", 2, 2)
	rep, err := Check(chip.Design, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(rep.Stats.Stages))
	for _, s := range rep.Stats.Stages {
		names = append(names, s.Name)
		if s.Duration <= 0 {
			t.Errorf("stage %q has no duration", s.Name)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"check elements", "check primitive symbols",
		"generate hierarchical net list", "check legal connections",
		"check interactions", "check construction rules"} {
		if !strings.Contains(joined, want) {
			t.Errorf("stage %q missing from %v", want, names)
		}
	}
	if rep.Stats.ElementsChecked == 0 || rep.Stats.SymbolDefsChecked == 0 {
		t.Fatalf("definition-level counters empty: %+v", rep.Stats)
	}
	if rep.Stats.DeviceInstances != 2*2*5+2 {
		t.Fatalf("device instances = %d", rep.Stats.DeviceInstances)
	}
}

func TestViolationStringAndSorting(t *testing.T) {
	vs := []Violation{
		{Rule: "W.ND", Where: geom.R(5, 0, 6, 1), Symbol: "b"},
		{Rule: "S.X", Where: geom.R(0, 0, 1, 1), Path: "a.b"},
		{Rule: "W.ND", Where: geom.R(1, 0, 2, 1), Symbol: "a"},
	}
	sortViolations(vs)
	if vs[0].Rule != "S.X" || vs[1].Symbol != "a" || vs[2].Symbol != "b" {
		t.Fatalf("sort order wrong: %v", vs)
	}
	s := vs[0].String()
	if !strings.Contains(s, "S.X") || !strings.Contains(s, "a.b") {
		t.Fatalf("String() = %q", s)
	}
	w := Violation{Rule: "X", Severity: Warning}
	if !strings.Contains(w.String(), "warning") {
		t.Fatalf("warning severity not rendered: %q", w.String())
	}
}

func TestConnectionStageFlagsButtingAcrossInstances(t *testing.T) {
	// Figure 15 across the hierarchy: two instances of a legal cell
	// abutting so that their diffusion elements butt edge-to-edge.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("butt")
	cell := d.MustSymbol("cell")
	cell.AddBox(diff, geom.R(0, 0, 2000, 500), "")
	top := d.MustSymbol("top")
	top.AddCall(cell, geom.Identity, "a")
	// Shallow overlap: an eighth of the width.
	top.AddCall(cell, geom.Translate(geom.Pt(1940, 0)), "b")
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if ruleCount(t, rep, "CONN.ILLEGAL") != 1 {
		t.Fatalf("cross-instance shallow overlap not flagged: %v", rep.Violations)
	}
}

func TestNetlistWarningsSurface(t *testing.T) {
	// A split declared net (NET.OPEN) surfaces as a warning, not an error.
	tc := tech.NMOS()
	metal, _ := tc.LayerByName(tech.NMOSMetal)
	d := layout.NewDesign("open")
	top := d.MustSymbol("top")
	top.AddWire(metal, 750, "VDD", geom.Pt(0, 0), geom.Pt(2000, 0))
	top.AddWire(metal, 750, "VDD", geom.Pt(10000, 0), geom.Pt(12000, 0))
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Rule == "NET.OPEN" {
			found = true
			if v.Severity != Warning {
				t.Fatalf("NET.OPEN should be a warning: %v", v)
			}
		}
	}
	if !found {
		t.Fatalf("NET.OPEN not surfaced: %v", rep.Violations)
	}
	if !rep.Clean() {
		t.Fatal("warnings must not make the report unclean")
	}
}

func TestCheckRejectsInvalidDesign(t *testing.T) {
	d := layout.NewDesign("bad")
	if _, err := Check(d, tech.NMOS(), Options{}); err == nil {
		t.Fatal("design without top must be rejected")
	}
}

func TestNonManhattanPolygonReported(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("tri")
	top := d.MustSymbol("top")
	top.AddPolygon(diff, geom.Poly(0, 0, 1000, 0, 500, 800), "")
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if ruleCount(t, rep, "STRUCT.ELEM") == 0 {
		t.Fatalf("non-Manhattan polygon not reported: %v", rep.Violations)
	}
}

func TestDefinitionLevelWidthViolationReportedOnce(t *testing.T) {
	// A narrow wire inside a cell instantiated 8 times must be reported
	// once (per definition), not 8 times — the hierarchy economics.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("defonce")
	cell := d.MustSymbol("cell")
	cell.AddWire(diff, 300, "", geom.Pt(0, 0), geom.Pt(2000, 0))
	top := d.MustSymbol("top")
	for i := 0; i < 8; i++ {
		top.AddCall(cell, geom.Translate(geom.Pt(int64(i)*10000, 0)), "")
	}
	d.Top = top
	rep, err := Check(d, tc, Options{SkipConstruction: true, SkipInteractions: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := ruleCount(t, rep, "W.ND"); n != 1 {
		t.Fatalf("definition-level width reported %d times, want 1", n)
	}
}

func TestProcessSpacingSecondOpinion(t *testing.T) {
	// A same-layer pair 100 under the 750 rule: the fixed rule flags it;
	// the process model (σ=λ/2, T=0.5: edges print where drawn) predicts a
	// healthy 650 printed gap and downgrades to a warning.
	tc := tech.NMOS()
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("proc")
	top := d.MustSymbol("top")
	top.AddBox(diffL, geom.R(0, 0, 2000, 2000), "")
	top.AddBox(diffL, geom.R(2650, 0, 4650, 2000), "") // 650 < 750
	d.Top = top

	strict, err := Check(d, tc, Options{SkipConstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Errors()) != 1 {
		t.Fatalf("fixed rule should flag: %v", strict.Violations)
	}

	m := process.DefaultModel()
	soft, err := Check(d, tc, Options{
		SkipConstruction: true,
		ProcessSpacing:   &m,
		ProcessMargin:    200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(soft.Errors()) != 0 {
		t.Fatalf("process model should downgrade: %v", soft.Errors())
	}
	if soft.Stats.ProcessDowngrades != 1 {
		t.Fatalf("downgrades = %d", soft.Stats.ProcessDowngrades)
	}
	// The violation is still visible as a warning.
	if len(soft.Violations) != 1 || soft.Violations[0].Severity != Warning {
		t.Fatalf("downgraded violation missing: %v", soft.Violations)
	}

	// A genuinely marginal pair (nearly touching) stays an error even
	// under the process model.
	d2 := layout.NewDesign("proc2")
	top2 := d2.MustSymbol("top")
	top2.AddBox(diffL, geom.R(0, 0, 2000, 2000), "")
	top2.AddBox(diffL, geom.R(2100, 0, 4100, 2000), "") // 100 gap
	d2.Top = top2
	hard, err := Check(d2, tc, Options{
		SkipConstruction: true,
		ProcessSpacing:   &m,
		ProcessMargin:    200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hard.Errors()) != 1 {
		t.Fatalf("marginal pair must stay an error: %v", hard.Violations)
	}
}

func TestProcessSpacingMisalignmentCrossLayer(t *testing.T) {
	// Cross-layer pairs get worst-case misalignment: a gap the same-layer
	// check would clear fails once the mask can shift λ/2 closer.
	tc := tech.NMOS()
	diffL, _ := tc.LayerByName(tech.NMOSDiff)
	polyL, _ := tc.LayerByName(tech.NMOSPoly)
	d := layout.NewDesign("mis")
	top := d.MustSymbol("top")
	top.AddBox(diffL, geom.R(0, 0, 2000, 2000), "")
	top.AddBox(polyL, geom.R(2200, 0, 4200, 2000), "") // 200 < 250 rule
	d.Top = top
	m := process.DefaultModel()
	rep, err := Check(d, tc, Options{
		SkipConstruction: true,
		ProcessSpacing:   &m,
		ProcessMargin:    100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 gap - 125 misalignment = 75 printed < 100 margin: stays error.
	if len(rep.Errors()) != 1 {
		t.Fatalf("misaligned cross-layer pair must stay an error: %v", rep.Violations)
	}
}
