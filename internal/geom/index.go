package geom

import (
	"slices"
	"sort"
)

// Item is an identified bounding box registered with a PairFinder.
type Item struct {
	ID  int
	Box Rect
	Tag int // caller-defined classification (e.g. layer), carried through
}

// Pair is an unordered candidate interaction between two items
// (A.ID < B.ID is not guaranteed; A precedes B in sweep order).
type Pair struct {
	A, B Item
}

// PairFinder finds all pairs of items whose bounding boxes approach within
// a given orthogonal gap, using a plane sweep over x with an active set
// kept ordered by y: a sorted slice maintained by binary-search insertion
// (an O(active) memmove worst case, but cache-friendly and cheap at real
// active-set sizes), with a min-heap on x2 for eviction. Each event
// queries only the binary-searched y-window around it instead of scanning
// the whole active set. This is the hierarchical checker's
// interaction-candidate generator: the expected output is near-linear for
// real layouts. The sweep-ordered copy of the item set is cached across
// Pairs/Shards calls and invalidated by Add/AddRect.
//
// A PairFinder is not safe for concurrent mutation; concurrent Pairs calls
// on Shards of an already-sorted finder are safe (see Shards).
type PairFinder struct {
	items []Item

	sorted []Item // items in sweep order (X1, then ID); nil or stale when dirty
	maxH   int64  // max box height over items, for the y-window lower bound
	dirty  bool
}

// Add registers an item.
func (pf *PairFinder) Add(it Item) {
	pf.items = append(pf.items, it)
	pf.dirty = true
}

// AddRect registers a rect with the given id and tag.
func (pf *PairFinder) AddRect(id int, r Rect, tag int) {
	pf.items = append(pf.items, Item{ID: id, Box: r, Tag: tag})
	pf.dirty = true
}

// Len returns the number of registered items.
func (pf *PairFinder) Len() int { return len(pf.items) }

// ensureSorted (re)builds the cached sweep-order slice when the item set
// has changed since the last build.
func (pf *PairFinder) ensureSorted() {
	if !pf.dirty && len(pf.sorted) == len(pf.items) {
		return
	}
	pf.sorted = make([]Item, len(pf.items))
	copy(pf.sorted, pf.items)
	slices.SortFunc(pf.sorted, func(a, b Item) int {
		switch {
		case a.Box.X1 < b.Box.X1:
			return -1
		case a.Box.X1 > b.Box.X1:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	pf.maxH = 0
	for i := range pf.sorted {
		if h := pf.sorted[i].Box.H(); h > pf.maxH {
			pf.maxH = h
		}
	}
	pf.dirty = false
}

// activeEntry is one live box in the sweep's active structure. idx indexes
// the finder's sweep-ordered slice, which makes ordering ties deterministic
// and identical between the serial sweep and any sharded sweep.
type activeEntry struct {
	y1, y2 int64 // box y-extent
	x2     int64 // box right edge, for eviction
	idx    int   // index into the sweep-ordered items
}

// activeSet holds the boxes whose x-extent (plus maxGap) still reaches the
// sweep line: a slice ordered by (y1, idx) for windowed y-queries, and a
// min-heap on x2 so expired boxes are evicted in O(log n) each.
type activeSet struct {
	byY  []activeEntry // sorted by (y1, idx)
	byX2 []activeEntry // min-heap keyed on x2
}

// yPos returns the position of (y1, idx) in the y-ordered slice.
func (as *activeSet) yPos(y1 int64, idx int) int {
	return sort.Search(len(as.byY), func(i int) bool {
		e := &as.byY[i]
		return e.y1 > y1 || (e.y1 == y1 && e.idx >= idx)
	})
}

// insert adds e to both structures.
func (as *activeSet) insert(e activeEntry) {
	pos := as.yPos(e.y1, e.idx)
	as.byY = append(as.byY, activeEntry{})
	copy(as.byY[pos+1:], as.byY[pos:])
	as.byY[pos] = e

	as.byX2 = append(as.byX2, e)
	for i := len(as.byX2) - 1; i > 0; {
		p := (i - 1) / 2
		if as.byX2[p].x2 <= as.byX2[i].x2 {
			break
		}
		as.byX2[p], as.byX2[i] = as.byX2[i], as.byX2[p]
		i = p
	}
}

// evictBefore removes every entry whose x2 is < xmin.
func (as *activeSet) evictBefore(xmin int64) {
	for len(as.byX2) > 0 && as.byX2[0].x2 < xmin {
		e := as.byX2[0]
		last := len(as.byX2) - 1
		as.byX2[0] = as.byX2[last]
		as.byX2 = as.byX2[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && as.byX2[l].x2 < as.byX2[small].x2 {
				small = l
			}
			if r < last && as.byX2[r].x2 < as.byX2[small].x2 {
				small = r
			}
			if small == i {
				break
			}
			as.byX2[i], as.byX2[small] = as.byX2[small], as.byX2[i]
			i = small
		}

		pos := as.yPos(e.y1, e.idx)
		copy(as.byY[pos:], as.byY[pos+1:])
		as.byY = as.byY[:len(as.byY)-1]
	}
}

// visit calls emit for every live entry within maxGap of cur in y, in
// (y1, idx) order. maxH bounds the height of any active box, giving the
// lower end of the binary-searched window.
func (as *activeSet) visit(cur Rect, maxGap, maxH int64, emit func(idx int)) {
	yLo := cur.Y1 - maxGap - maxH
	yHi := cur.Y2 + maxGap
	start := sort.Search(len(as.byY), func(i int) bool { return as.byY[i].y1 >= yLo })
	for i := start; i < len(as.byY) && as.byY[i].y1 <= yHi; i++ {
		if as.byY[i].y2 >= cur.Y1-maxGap {
			emit(as.byY[i].idx)
		}
	}
}

// Pairs invokes fn for every unordered pair of items whose boxes are within
// maxGap of each other in the L∞ sense (touching and overlapping pairs are
// always reported). The filter, when non-nil, prunes pairs before fn (e.g.
// rejecting layer combinations with no rules). Iteration order is
// deterministic: events in sweep order, partners in y order.
func (pf *PairFinder) Pairs(maxGap int64, filter func(a, b Item) bool, fn func(Pair)) {
	pf.ensureSorted()
	sweepRange(pf.sorted, 0, len(pf.sorted), nil, maxGap, pf.maxH, filter, fn)
}

// sweepRange runs the plane sweep over items[start:end), preloading the
// given straddler indices into the active set. Shared by the serial Pairs
// and the per-strip sharded sweep so the two emit identical pair streams.
func sweepRange(items []Item, start, end int, straddlers []int, maxGap, maxH int64, filter func(a, b Item) bool, fn func(Pair)) {
	var act activeSet
	for _, j := range straddlers {
		b := items[j].Box
		act.insert(activeEntry{y1: b.Y1, y2: b.Y2, x2: b.X2, idx: j})
	}
	for i := start; i < end; i++ {
		cur := &items[i]
		act.evictBefore(cur.Box.X1 - maxGap)
		act.visit(cur.Box, maxGap, maxH, func(j int) {
			other := items[j]
			if filter != nil && !filter(other, *cur) {
				return
			}
			fn(Pair{A: other, B: *cur})
		})
		act.insert(activeEntry{y1: cur.Box.Y1, y2: cur.Box.Y2, x2: cur.Box.X2, idx: i})
	}
}

// AllPairs invokes fn for every unordered pair without geometric pruning;
// useful as a correctness oracle in tests.
func (pf *PairFinder) AllPairs(fn func(Pair)) {
	for i := 0; i < len(pf.items); i++ {
		for j := i + 1; j < len(pf.items); j++ {
			fn(Pair{A: pf.items[i], B: pf.items[j]})
		}
	}
}
