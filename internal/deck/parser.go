package deck

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads deck text into its structured form. Syntax errors carry line
// numbers; the first error aborts the parse. Parse checks syntax and local
// well-formedness only — cross-statement consistency (duplicate layers,
// conflicting cells, unknown classes) is Validate's job, so a tool can show
// every problem at once rather than the first.
func Parse(src string) (*Deck, error) {
	d := &Deck{}
	var curDev *Device
	sawTech := false
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		toks, err := tokenize(raw)
		if err != nil {
			return nil, fmt.Errorf("deck: line %d: %v", line, err)
		}
		if len(toks) == 0 {
			continue
		}
		kw, args := toks[0].text, toks[1:]
		if kw != "param" && kw != "use" {
			curDev = nil
		}
		if !sawTech && kw != "tech" {
			// Everything depends on the tech line — λ-expressions read its
			// lambda — so enforce the order for every statement kind.
			return nil, fmt.Errorf("deck: line %d: tech statement must come first", line)
		}
		switch kw {
		case "tech":
			if sawTech {
				return nil, fmt.Errorf("deck: line %d: duplicate tech statement", line)
			}
			sawTech = true
			if len(args) == 0 || isAttr(args[0]) {
				return nil, fmt.Errorf("deck: line %d: tech needs a name", line)
			}
			d.Name = args[0].text
			for _, a := range args[1:] {
				k, v, err := splitAttr(a)
				if err != nil {
					return nil, fmt.Errorf("deck: line %d: %v", line, err)
				}
				switch k {
				case "lambda":
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil || n < 0 || n > MaxDim {
						return nil, fmt.Errorf("deck: line %d: bad lambda %q", line, v)
					}
					d.Lambda = n
				default:
					return nil, fmt.Errorf("deck: line %d: unknown tech attribute %q", line, k)
				}
			}
		case "layer":
			if len(args) == 0 || isAttr(args[0]) {
				return nil, fmt.Errorf("deck: line %d: layer needs a name", line)
			}
			l := Layer{Name: args[0].text, Line: line}
			for _, a := range args[1:] {
				k, v, err := splitAttr(a)
				if err != nil {
					return nil, fmt.Errorf("deck: line %d: %v", line, err)
				}
				switch k {
				case "cif":
					l.CIF = v
				case "role":
					l.Role = v
				case "width":
					l.Width, err = d.parseDim(v)
				case "space":
					l.Space, err = d.parseDim(v)
				default:
					err = fmt.Errorf("unknown layer attribute %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("deck: line %d: %v", line, err)
				}
			}
			if l.CIF == "" {
				return nil, fmt.Errorf("deck: line %d: layer %q needs cif=", line, l.Name)
			}
			d.Layers = append(d.Layers, l)
		case "space":
			if len(args) < 2 || isAttr(args[0]) || isAttr(args[1]) {
				return nil, fmt.Errorf("deck: line %d: space needs two layer names", line)
			}
			s := Space{A: args[0].text, B: args[1].text, Line: line}
			for _, a := range args[2:] {
				if !a.quoted && a.text == "exempt-related" {
					s.ExemptRelated = true
					continue
				}
				k, v, err := splitAttr(a)
				if err != nil {
					return nil, fmt.Errorf("deck: line %d: %v", line, err)
				}
				switch k {
				case "diff":
					s.DiffNet, err = d.parseDim(v)
				case "same":
					s.SameNet, err = d.parseDim(v)
				case "note":
					s.Note = v
				default:
					err = fmt.Errorf("unknown space attribute %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("deck: line %d: %v", line, err)
				}
			}
			d.Spaces = append(d.Spaces, s)
		case "width":
			if len(args) < 2 || isAttr(args[0]) || isAttr(args[1]) {
				return nil, fmt.Errorf("deck: line %d: width needs a layer name and a dimension", line)
			}
			w := WidthRule{Layer: args[0].text, Line: line}
			var err error
			if w.Min, err = d.parseDim(args[1].text); err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			if w.Note, err = ruleNote(kw, args[2:]); err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			d.Widths = append(d.Widths, w)
		case "area":
			if len(args) < 2 || isAttr(args[0]) || isAttr(args[1]) {
				return nil, fmt.Errorf("deck: line %d: area needs a layer name and an area dimension", line)
			}
			ar := AreaRule{Layer: args[0].text, Line: line}
			var err error
			if ar.MinArea, err = d.parseAreaDim(args[1].text); err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			if ar.Note, err = ruleNote(kw, args[2:]); err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			d.Areas = append(d.Areas, ar)
		case KindEnclose, KindOverlap, KindExtend:
			if len(args) < 3 || isAttr(args[0]) || isAttr(args[1]) || isAttr(args[2]) {
				return nil, fmt.Errorf("deck: line %d: %s needs two layer names and a margin", line, kw)
			}
			cr := CrossRule{Kind: kw, A: args[0].text, B: args[1].text, Line: line}
			var err error
			if cr.Margin, err = d.parseDim(args[2].text); err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			if cr.Note, err = ruleNote(kw, args[3:]); err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			d.Crosses = append(d.Crosses, cr)
		case "device":
			if len(args) == 0 || isAttr(args[0]) {
				return nil, fmt.Errorf("deck: line %d: device needs a type name", line)
			}
			dev := Device{Type: args[0].text, Line: line}
			for _, a := range args[1:] {
				if !a.quoted && a.text == "depletion" {
					dev.Depletion = true
					continue
				}
				k, v, err := splitAttr(a)
				if err != nil {
					return nil, fmt.Errorf("deck: line %d: %v", line, err)
				}
				switch k {
				case "class":
					dev.Class = v
				case "describe":
					dev.Describe = v
				default:
					return nil, fmt.Errorf("deck: line %d: unknown device attribute %q", line, k)
				}
			}
			if dev.Class == "" {
				return nil, fmt.Errorf("deck: line %d: device %q needs class=", line, dev.Type)
			}
			d.Devices = append(d.Devices, dev)
			curDev = &d.Devices[len(d.Devices)-1]
		case "param":
			if curDev == nil {
				return nil, fmt.Errorf("deck: line %d: param outside a device statement", line)
			}
			if len(args) != 1 {
				return nil, fmt.Errorf("deck: line %d: param needs exactly one key=value", line)
			}
			k, v, err := splitAttr(args[0])
			if err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			n, err := d.parseDim(v)
			if err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			curDev.Params = append(curDev.Params, Param{Key: k, Value: n})
		case "use":
			if curDev == nil {
				return nil, fmt.Errorf("deck: line %d: use outside a device statement", line)
			}
			if len(args) != 1 {
				return nil, fmt.Errorf("deck: line %d: use needs exactly one role=layer", line)
			}
			k, v, err := splitAttr(args[0])
			if err != nil {
				return nil, fmt.Errorf("deck: line %d: %v", line, err)
			}
			curDev.Uses = append(curDev.Uses, Use{Role: k, Layer: v})
		case "rail":
			if len(args) < 2 {
				return nil, fmt.Errorf("deck: line %d: rail needs a kind and at least one net name", line)
			}
			switch args[0].text {
			case "power":
				d.PowerNets = append(d.PowerNets, tokenTexts(args[1:])...)
			case "ground":
				d.GroundNets = append(d.GroundNets, tokenTexts(args[1:])...)
			default:
				return nil, fmt.Errorf("deck: line %d: rail kind must be power or ground, got %q", line, args[0].text)
			}
		default:
			return nil, fmt.Errorf("deck: line %d: unknown statement %q", line, kw)
		}
	}
	if !sawTech {
		return nil, fmt.Errorf("deck: missing tech statement")
	}
	return d, nil
}

// MaxDim bounds every dimension a deck may express (raw or λ-scaled):
// 2^40 centimicrons is over a hundred kilometers, far beyond any mask,
// and the cap keeps λ multiplication overflow-free.
const MaxDim = int64(1) << 40

// parseDim evaluates one dimension token: a plain centimicron integer or a
// λ-expression (an integer or half-integer multiple of lambda, like "3L" or
// "1.5L").
func (d *Deck) parseDim(tok string) (int64, error) {
	if tok == "" {
		return 0, fmt.Errorf("empty dimension")
	}
	if strings.HasSuffix(tok, "L") {
		if d.Lambda <= 0 {
			return 0, fmt.Errorf("λ-expression %q in a deck with no lambda", tok)
		}
		num := tok[:len(tok)-1]
		whole, frac, hasFrac := strings.Cut(num, ".")
		n, err := strconv.ParseInt(whole, 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad λ-expression %q", tok)
		}
		if n > MaxDim/d.Lambda {
			return 0, fmt.Errorf("λ-expression %q exceeds the %d centimicron limit", tok, MaxDim)
		}
		v := n * d.Lambda
		if hasFrac {
			if frac != "5" {
				return 0, fmt.Errorf("λ-expression %q: only half-λ fractions are supported", tok)
			}
			if d.Lambda%2 != 0 {
				return 0, fmt.Errorf("λ-expression %q: lambda %d is odd, half-λ is not on the grid", tok, d.Lambda)
			}
			v += d.Lambda / 2
		}
		return v, nil
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad dimension %q", tok)
	}
	if n > MaxDim {
		return 0, fmt.Errorf("dimension %q exceeds the %d centimicron limit", tok, MaxDim)
	}
	return n, nil
}

// parseAreaDim evaluates one area dimension token: a plain
// square-centimicron integer or a λ²-expression like "10L", meaning 10·λ²
// square centimicrons. Only whole λ² multiples are allowed — half
// fractions have no use at area granularity.
func (d *Deck) parseAreaDim(tok string) (int64, error) {
	if tok == "" {
		return 0, fmt.Errorf("empty area dimension")
	}
	if strings.HasSuffix(tok, "L") {
		if d.Lambda <= 0 {
			return 0, fmt.Errorf("λ²-expression %q in a deck with no lambda", tok)
		}
		n, err := strconv.ParseInt(tok[:len(tok)-1], 10, 64)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad λ²-expression %q", tok)
		}
		if n == 0 {
			return 0, nil
		}
		if d.Lambda > MaxDim/d.Lambda || n > MaxDim/(d.Lambda*d.Lambda) {
			return 0, fmt.Errorf("λ²-expression %q exceeds the %d square centimicron limit", tok, MaxDim)
		}
		return n * d.Lambda * d.Lambda, nil
	}
	n, err := strconv.ParseInt(tok, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad area dimension %q", tok)
	}
	if n > MaxDim {
		return 0, fmt.Errorf("area dimension %q exceeds the %d square centimicron limit", tok, MaxDim)
	}
	return n, nil
}

// ruleNote parses the trailing attributes of a rule statement, which admit
// only note="...".
func ruleNote(kw string, args []token) (string, error) {
	note := ""
	for _, a := range args {
		k, v, err := splitAttr(a)
		if err != nil {
			return "", err
		}
		if k != "note" {
			return "", fmt.Errorf("unknown %s attribute %q", kw, k)
		}
		note = v
	}
	return note, nil
}

// token is one lexed word. A token that began with a double quote is never
// interpreted as key=value, so quoted names may contain any character.
type token struct {
	text   string
	quoted bool
}

// tokenTexts projects tokens back to their text.
func tokenTexts(toks []token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.text
	}
	return out
}

// isAttr reports whether a token is key=value rather than a bare name.
func isAttr(tok token) bool { return !tok.quoted && strings.ContainsRune(tok.text, '=') }

// splitAttr splits key=value, with the value unquoted by the tokenizer.
// Keys must be writable bare — a key containing separators (reachable only
// by splicing quotes into the middle of a token, e.g. `a" "b=x`) could
// never round-trip through the canonical writer, so it is rejected here.
func splitAttr(tok token) (key, val string, err error) {
	if tok.quoted {
		return "", "", fmt.Errorf("expected key=value, got %q", tok.text)
	}
	k, v, ok := strings.Cut(tok.text, "=")
	if !ok || k == "" {
		return "", "", fmt.Errorf("expected key=value, got %q", tok.text)
	}
	if strings.ContainsAny(k, " \t\r#") {
		return "", "", fmt.Errorf("attribute key %q must not contain spaces or '#'", k)
	}
	return k, v, nil
}

// tokenize splits one line into tokens: whitespace-separated words, with
// double-quoted spans kept intact and unquoted, and '#' starting a comment
// outside quotes.
func tokenize(line string) ([]token, error) {
	var toks []token
	var cur strings.Builder
	inQuote := false
	started := false
	ledQuote := false
	flush := func() {
		if started {
			toks = append(toks, token{text: cur.String(), quoted: ledQuote})
			cur.Reset()
			started = false
			ledQuote = false
		}
	}
	for _, r := range line {
		switch {
		case inQuote:
			if r == '"' {
				inQuote = false
			} else {
				cur.WriteRune(r)
			}
		case r == '"':
			inQuote = true
			if !started {
				ledQuote = true
			}
			started = true
		case r == '#':
			flush()
			return toks, nil
		case r == ' ' || r == '\t' || r == '\r':
			flush()
		default:
			cur.WriteRune(r)
			started = true
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	flush()
	return toks, nil
}
