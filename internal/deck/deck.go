// Package deck defines the loadable rule-deck format: a line-oriented text
// description of a fabrication technology — layers, the Figure 12
// interaction matrix, device types, and supply rails — that can be parsed,
// validated, written back canonically, and compiled into a checking
// technology (see internal/tech.FromDeck).
//
// The paper's central claim is that the checker is technology-parameterized:
// the interaction matrix and the device rules are data, not code. A deck is
// that data as an artifact users can author, audit, diff, and swap. The
// package is deliberately free of repository imports: it describes syntax
// and structure only, so the technology compiler can layer semantics on top
// without an import cycle.
//
// # Format
//
// A deck is a sequence of statements, one per line. '#' starts a comment
// running to end of line; blank lines are ignored. Dimension values are
// integers in centimicrons, or λ-expressions like "3L" or "1.5L" which
// scale by the deck's lambda (λ-expressions require lambda > 0 and must
// resolve to whole centimicrons).
//
//	tech <name> [lambda=<int>]
//	layer <name> cif=<code> [role=<role>] [width=<dim>] [space=<dim>]
//	space <layerA> <layerB> [diff=<dim>] [same=<dim>] [exempt-related] [note="..."]
//	width <layer> <dim> [note="..."]
//	area <layer> <areadim> [note="..."]
//	enclose <outer> <inner> <dim> [note="..."]
//	overlap <layerA> <layerB> <dim> [note="..."]
//	extend <layerA> <layerB> <dim> [note="..."]
//	device <type> class=<class> [depletion] [describe="..."]
//	  param <key>=<dim>
//	  use <role>=<layer>
//	rail power <net>...
//	rail ground <net>...
//
// "param" and "use" lines bind to the most recent "device" statement.
// Every "space" cell names an unordered layer pair; cells with no spacing
// in either subcase document *why* no check is required via note="..." —
// the audit trail behind the paper's claim that most cells are empty.
//
// The five rule-class statements generalize the matrix beyond spacing.
// "width" and "area" are single-layer rules on a definition's merged
// geometry (a region-width minimum and a per-island area minimum; "area"
// takes an area dimension, where a λ-expression like "10L" means 10·λ²).
// "enclose", "overlap", and "extend" are directed cross-layer margins:
// the first layer must enclose the second by, overlap it by, or extend
// past it by the given margin. Layer order is significant, unlike "space".
package deck

import "fmt"

// Deck is the parsed form of one rule deck.
type Deck struct {
	// Name is the technology name, e.g. "nmos-2.5um".
	Name string
	// Lambda is the λ scale unit in centimicrons (0 if the deck is not
	// λ-based; λ-expressions are then illegal).
	Lambda int64

	Layers  []Layer
	Spaces  []Space
	Widths  []WidthRule
	Areas   []AreaRule
	Crosses []CrossRule
	Devices []Device

	PowerNets  []string
	GroundNets []string
}

// Layer is one "layer" statement.
type Layer struct {
	Name  string // human name, unique within the deck
	CIF   string // CIF layer code, unique within the deck
	Role  string // semantic role consumed by device rules ("" = none)
	Width int64  // minimum feature width (0 = unchecked)
	Space int64  // default same-layer spacing for the flat baseline
	Line  int    // source line, for diagnostics
}

// Space is one "space" statement: a cell of the interaction matrix.
type Space struct {
	A, B          string // layer names (unordered pair)
	DiffNet       int64  // required spacing when nets differ (0 = none)
	SameNet       int64  // required spacing when nets are equal (0 = none)
	ExemptRelated bool   // skip when the elements are related through a device
	Note          string // audit note: why the cell is or is not checked
	Line          int
}

// WidthRule is one "width" statement: a minimum region width applied to a
// definition's merged geometry on one layer. Unlike a layer's width=
// attribute (a per-element check in the flat baseline), this rule judges
// the union, catching interior narrowings no single element exhibits.
type WidthRule struct {
	Layer string // layer name
	Min   int64  // minimum region width in centimicrons
	Note  string // audit note
	Line  int
}

// AreaRule is one "area" statement: a minimum area for each connected
// island of a definition's merged geometry on one layer. The dimension is
// an area — a λ-expression like "10L" means 10·λ² square centimicrons.
type AreaRule struct {
	Layer   string // layer name
	MinArea int64  // minimum island area in square centimicrons
	Note    string // audit note
	Line    int
}

// Cross-rule kinds — the Kind field of CrossRule.
const (
	// KindEnclose: layer A must enclose layer B by Margin on all sides.
	KindEnclose = "enclose"
	// KindOverlap: wherever A and B overlap, the overlap must be at least
	// Margin wide.
	KindOverlap = "overlap"
	// KindExtend: A must extend at least Margin past B around their
	// crossing (the Figure 8 gate-extension rule, generalized).
	KindExtend = "extend"
)

// CrossRule is one "enclose", "overlap", or "extend" statement: a directed
// cross-layer margin. The (A, B) pair is ordered — enclose metal contact
// and enclose contact metal are different rules.
type CrossRule struct {
	Kind   string // KindEnclose, KindOverlap, or KindExtend
	A, B   string // layer names, ordered
	Margin int64  // margin in centimicrons
	Note   string // audit note
	Line   int
}

// Device is one "device" statement with its bound param/use lines.
type Device struct {
	Type      string // declared type name (the 9D key)
	Class     string // checker class, e.g. "mos-transistor"
	Describe  string // one-line human description
	Depletion bool   // participates in the depletion-to-ground rule
	Params    []Param
	Uses      []Use
	Line      int
}

// Param is one rule margin of a device.
type Param struct {
	Key   string
	Value int64
}

// Use binds a semantic layer role to a concrete layer for one device, e.g.
// a p-channel transistor declaring use diffusion=p-diffusion.
type Use struct {
	Role  string
	Layer string
}

// Severity grades a validation problem.
type Severity uint8

// Severities.
const (
	// Error problems make the deck unloadable.
	Error Severity = iota
	// Warning problems load but deserve attention (e.g. a silent cell
	// with no audit note).
	Warning
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Problem is one validation finding.
type Problem struct {
	Severity Severity
	Line     int
	Detail   string
}

func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("%s: line %d: %s", p.Severity, p.Line, p.Detail)
	}
	return fmt.Sprintf("%s: %s", p.Severity, p.Detail)
}

// Errors filters problems down to the unloadable ones.
func Errors(probs []Problem) []Problem {
	var out []Problem
	for _, p := range probs {
		if p.Severity == Error {
			out = append(out, p)
		}
	}
	return out
}

// LayerByName finds a layer statement by name.
func (d *Deck) LayerByName(name string) (*Layer, bool) {
	for i := range d.Layers {
		if d.Layers[i].Name == name {
			return &d.Layers[i], true
		}
	}
	return nil, false
}
