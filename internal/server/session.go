package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/tech"
)

// sessionOrigin records how a session's technology and options were
// specified at creation, so a snapshot can restore an identical engine.
type sessionOrigin struct {
	Tech        string // registered technology name ("" when deck-created)
	Deck        string // rule-deck source text ("" when registry-created)
	Metric      string // "", "euclid", or "ortho"
	NoConstruct bool
}

// injectState is the fault-injection test hook (enabled by Config
// .TestHooks): slow consumes SlowN engine runs with an artificial
// context-respecting sleep, panicN makes the next N session operations
// panic. Production daemons never register the endpoint that sets it.
type injectState struct {
	slow   time.Duration
	slowN  int
	panicN int
}

// Session is one named check session: a design, the technology it is
// checked under, and a long-lived incremental engine. All engine and
// design access is serialized by mu; distinct sessions share nothing, so
// the daemon checks them concurrently across goroutines.
//
// Edits are applied to the design immediately (mutation is cheap — it is
// the recheck that costs), but the recheck itself is debounced: a burst of
// N edit batches marks the session dirty N times and pays for one Recheck,
// run either by the debounce timer after the burst goes quiet or by the
// next /report request, whichever comes first. A client asking for the
// report therefore always gets the post-batch result.
//
// A session can be poisoned: a panic recovered while operating on it
// quarantines this session only — every subsequent request gets a 500
// with class "poisoned", the engine refuses further runs, and every
// other session keeps serving.
type Session struct {
	ID   string
	Name string

	mu     sync.Mutex
	design *layout.Design
	tc     *tech.Technology
	eng    *core.Engine
	rep    *core.Report // last completed run's report
	dirty  bool         // edits applied since rep was produced
	closed bool
	poison error // non-nil: quarantined after a recovered panic

	origin   sessionOrigin
	restored bool // rebuilt from an on-disk snapshot at boot

	debounce time.Duration
	timer    *time.Timer
	timerGen int // invalidates fired-but-not-yet-run timer callbacks

	// adm is the owning server's admission queue; engine runs (the cold
	// check aside, which the create handler admits itself) go through it.
	adm *admission

	inject injectState

	stats SessionStats
	// pendingBatches/pendingEdits accumulate the burst since the last
	// flush; flushLocked moves them into the LastFlush* stats.
	pendingBatches int
	pendingEdits   int

	// history is the bounded ring of recent completed states (newest
	// last, current state always present) that the report-delta path
	// diffs against: a client presenting any fingerprint still in the
	// ring gets added/removed instead of the full list. Entries retain
	// the completed reports' violation slices — the engine never mutates
	// a published report, so no copies are made. Snapshot-persisted, so
	// deltas survive a daemon restart.
	history []reportState
	histCap int

	// snapGen/snapClean record the edit generation and dirtiness the last
	// written snapshot captured, so periodic snapshotting skips sessions
	// that have not changed since.
	snapGen  int
	snapDone bool

	// inflight counts requests currently inside this session's handlers
	// (waiting on the mutex included) — the per-session gauge on /stats.
	inflight atomic.Int32

	// lastUsed is read/written under the owning Server's mutex (not the
	// session's), where LRU and idle eviction decisions are made.
	lastUsed time.Time
	created  time.Time
}

// SessionStats counts a session's service-level activity. Rechecks is the
// total number of engine runs including the initial cold check, so
// (Rechecks - 1) per-burst deltas make debouncing observable via /stats.
// The duration and flush-size fields make the windowed-recheck speedup
// observable from outside: a sub-millisecond LastRecheckNS on an edit
// session means the patch path is engaging.
type SessionStats struct {
	EditsApplied    int `json:"edits_applied"`
	EditBatches     int `json:"edit_batches"`
	Rechecks        int `json:"rechecks"`
	DebounceFlushes int `json:"debounce_flushes"` // rechecks run by the timer
	ReportFlushes   int `json:"report_flushes"`   // rechecks run by a report request

	LastRecheckNS  int64 `json:"last_recheck_ns"`  // duration of the most recent engine run
	TotalRecheckNS int64 `json:"total_recheck_ns"` // cumulative engine-run time, cold check included
	// LastFlushBatches/LastFlushEdits are the size of the burst the most
	// recent recheck coalesced — how much work one debounce window absorbed.
	LastFlushBatches int `json:"last_flush_batches"`
	LastFlushEdits   int `json:"last_flush_edits"`

	// DeltaReports counts ?since= report requests; DeltaResets the subset
	// that fell back to a reset (fingerprint unknown or evicted from the
	// history ring). A reset ratio near 1 means the ring is too small for
	// the client's polling cadence.
	DeltaReports int `json:"delta_reports"`
	DeltaResets  int `json:"delta_resets"`
}

// reportState is one history-ring entry: a completed run's fingerprint
// and its sorted violation sequence — everything a merge-diff needs.
type reportState struct {
	fp string
	vs []core.Violation
}

// newSession parses nothing — the server constructs it with a validated
// design and technology — and runs the initial cold check under ctx.
func newSession(ctx context.Context, id, name string, d *layout.Design, tc *tech.Technology, opts core.Options, origin sessionOrigin, adm *admission, debounce time.Duration, histCap int, now time.Time) (*Session, error) {
	s := &Session{
		ID:       id,
		Name:     name,
		design:   d,
		tc:       tc,
		eng:      core.NewEngine(tc, opts),
		origin:   origin,
		adm:      adm,
		debounce: debounce,
		histCap:  histCap,
		lastUsed: now,
		created:  now,
	}
	start := time.Now()
	rep, err := s.eng.CheckContext(ctx, d)
	if err != nil {
		return nil, err
	}
	s.rep = rep
	s.stats.Rechecks = 1
	s.stats.LastRecheckNS = time.Since(start).Nanoseconds()
	s.stats.TotalRecheckNS = s.stats.LastRecheckNS
	s.pushHistoryLocked()
	return s, nil
}

// pushHistoryLocked records the current report in the bounded history
// ring. A run that reproduced the previous state exactly (same
// fingerprint) is not re-pushed — it would only waste a slot on a state
// the ring already covers.
func (s *Session) pushHistoryLocked() {
	if s.histCap <= 0 || s.rep == nil {
		return
	}
	fp := core.FingerprintDigest(s.rep)
	if n := len(s.history); n > 0 && s.history[n-1].fp == fp {
		return
	}
	s.history = append(s.history, reportState{fp: fp, vs: s.rep.Violations})
	if len(s.history) > s.histCap {
		// Shift rather than reslice so the evicted head's backing report
		// becomes collectible.
		copy(s.history, s.history[1:])
		s.history[len(s.history)-1] = reportState{}
		s.history = s.history[:len(s.history)-1]
	}
}

// lookupHistoryLocked finds a fingerprint in the ring, newest first (a
// polling client's `since` is almost always the newest entry).
func (s *Session) lookupHistoryLocked(fp string) ([]core.Violation, bool) {
	for i := len(s.history) - 1; i >= 0; i-- {
		if s.history[i].fp == fp {
			return s.history[i].vs, true
		}
	}
	return nil, false
}

// gateLocked is the state check every operation starts with: a closed
// session answers 410 (it was evicted or deleted while the request raced
// it), a poisoned one 500 with the quarantine class.
func (s *Session) gateLocked() *svcError {
	if s.closed {
		return errf(http.StatusGone, ClassGone, "session %s is gone (evicted or deleted)", s.ID)
	}
	if s.poison != nil {
		return errf(http.StatusInternalServerError, ClassPoisoned,
			"session %s poisoned: %v", s.ID, s.poison)
	}
	return nil
}

// faultPointLocked fires the injected faults: a pending panic panics (the
// handler's recovery poisons the session), nothing else. The injected
// slowness fires inside flushLocked where a genuinely slow recheck would.
func (s *Session) faultPointLocked() {
	if s.inject.panicN > 0 {
		s.inject.panicN--
		panic(fmt.Sprintf("injected fault (test hook) in session %s", s.ID))
	}
}

// setInject arms the fault-injection state (test hook endpoint).
func (s *Session) setInject(slow time.Duration, slowN, panicN int) *svcError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateLocked(); err != nil {
		return err
	}
	s.inject = injectState{slow: slow, slowN: slowN, panicN: panicN}
	return nil
}

// poisonWith quarantines the session after a recovered panic: the engine
// refuses further runs, the debounce timer is disarmed, and every
// subsequent request is answered with the poisoned error class. It takes
// the lock itself — the panic already unwound through the deferred
// unlock of whatever operation was in flight.
func (s *Session) poisonWith(reason error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poison != nil {
		return
	}
	s.poison = reason
	s.eng.Poison(reason)
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// applyEdits applies one edit batch under the session lock and arms the
// debounce timer. It returns the number applied and the total batch count
// (the edit generation).
func (s *Session) applyEdits(edits []layout.Edit) (applied, generation int, serr *svcError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateLocked(); err != nil {
		return 0, 0, err
	}
	s.faultPointLocked()
	n, err := layout.ApplyEdits(s.design, s.tc, edits)
	s.stats.EditsApplied += n
	s.pendingEdits += n
	if n > 0 || err == nil {
		s.stats.EditBatches++
		s.pendingBatches++
		s.dirty = true
		s.armTimerLocked()
	}
	if err != nil {
		// The successful prefix is applied and will be rechecked; the
		// caller reports partial application so the client can reconcile.
		return n, s.stats.EditBatches, errf(http.StatusBadRequest, ClassBadRequest, "%v", err)
	}
	return n, s.stats.EditBatches, nil
}

// armTimerLocked (re)starts the debounce timer; each new batch pushes the
// flush out by the full window, so a rapid burst coalesces into one run.
// The generation stamp invalidates a timer whose callback already fired
// and is waiting on the lock — Stop can't cancel those, and without the
// stamp such a callback would flush immediately instead of being pushed
// out.
func (s *Session) armTimerLocked() {
	if s.debounce <= 0 {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	s.timerGen++
	gen := s.timerGen
	s.timer = time.AfterFunc(s.debounce, func() { s.timerFlush(gen) })
}

// timerFlush is the debounce timer callback: recheck if still dirty and
// not superseded. A stale timer — one that lost the race with a report
// flush (dirty false) or with a newer edit batch (generation mismatch) —
// does nothing. The flush goes through the admission queue without
// waiting: if no slot is free the timer simply re-arms, so background
// work never contributes to a queue pileup. A panic in the background
// flush poisons the session exactly like a handler panic would.
func (s *Session) timerFlush(gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() {
		if r := recover(); r != nil {
			reason := fmt.Errorf("panic in debounce flush: %v", r)
			// The lock is held here (this defer runs before the unlock);
			// poison inline rather than via poisonWith.
			if s.poison == nil {
				s.poison = reason
				s.eng.Poison(reason)
				if s.timer != nil {
					s.timer.Stop()
					s.timer = nil
				}
			}
		}
	}()
	if s.closed || s.poison != nil || !s.dirty || gen != s.timerGen {
		return
	}
	if s.adm != nil && !s.adm.tryAcquire() {
		// No free slot: push the flush out by another window instead of
		// queuing — the next report request or timer firing will get it.
		s.armTimerLocked()
		return
	}
	if s.adm != nil {
		defer s.adm.release()
	}
	s.faultPointLocked()
	if err := s.flushLocked(context.Background()); err == nil {
		s.stats.DebounceFlushes++
	}
}

// flushLocked runs the incremental Recheck over the accumulated edits.
// On failure the session stays dirty and keeps the previous report; the
// error surfaces on the report request that forced the flush. The
// injected slow-check hook sleeps here, context-respecting, simulating a
// recheck that outlives its deadline.
func (s *Session) flushLocked(ctx context.Context) error {
	if s.inject.slowN > 0 && s.inject.slow > 0 {
		s.inject.slowN--
		t := time.NewTimer(s.inject.slow)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	start := time.Now()
	rep, err := s.eng.RecheckContext(ctx, s.design)
	if err != nil {
		return err
	}
	s.rep = rep
	s.dirty = false
	s.stats.Rechecks++
	s.stats.LastRecheckNS = time.Since(start).Nanoseconds()
	s.stats.TotalRecheckNS += s.stats.LastRecheckNS
	s.stats.LastFlushBatches, s.pendingBatches = s.pendingBatches, 0
	s.stats.LastFlushEdits, s.pendingEdits = s.pendingEdits, 0
	s.pushHistoryLocked()
	return nil
}

// classifyRunErr maps an engine-run failure onto the wire contract:
// deadline/cancellation → 503 timeout (retry later), anything else → 422
// (the design itself cannot be checked).
func classifyRunErr(err error) *svcError {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return errf(http.StatusServiceUnavailable, ClassTimeout, "check deadline expired: %v", err)
	}
	return errf(http.StatusUnprocessableEntity, ClassFailed, "%v", err)
}

// report returns the wire report for the current design state, flushing
// pending edits first so the caller always observes the post-batch
// result. The flush is engine work, so it is admitted through the
// bounded queue under the request's context.
func (s *Session) report(ctx context.Context) (*Report, *svcError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateLocked(); err != nil {
		return nil, err
	}
	s.faultPointLocked()
	if s.dirty {
		if s.adm != nil {
			if serr := s.adm.acquire(ctx); serr != nil {
				return nil, serr
			}
			defer s.adm.release()
		}
		if err := s.flushLocked(ctx); err != nil {
			return nil, classifyRunErr(err)
		}
		s.stats.ReportFlushes++
	}
	return BuildReport(s.rep, s.eng), nil
}

// reportDelta answers GET .../report?since=<fp>: the current state as a
// delta against the client's base fingerprint. Like report it flushes
// pending edits first, so the delta always reflects every acknowledged
// batch. An unknown or evicted base (or the empty fingerprint a cold
// client sends) degrades to a reset delta carrying the full list.
func (s *Session) reportDelta(ctx context.Context, since string) (*ReportDelta, *svcError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateLocked(); err != nil {
		return nil, err
	}
	s.faultPointLocked()
	if s.dirty {
		if s.adm != nil {
			if serr := s.adm.acquire(ctx); serr != nil {
				return nil, serr
			}
			defer s.adm.release()
		}
		if err := s.flushLocked(ctx); err != nil {
			return nil, classifyRunErr(err)
		}
		s.stats.ReportFlushes++
	}
	s.stats.DeltaReports++
	if prev, ok := s.lookupHistoryLocked(since); ok && since != "" {
		return BuildDelta(since, prev, s.rep, s.eng), nil
	}
	s.stats.DeltaResets++
	return BuildResetDelta(s.rep, s.eng), nil
}

// StatsResponse is the /stats payload: service counters plus the engine's
// cache-effectiveness counters for the session's most recent run.
type StatsResponse struct {
	ID         string       `json:"id"`
	Name       string       `json:"name"`
	Design     string       `json:"design"`
	Tech       string       `json:"tech"`
	Dirty      bool         `json:"dirty"` // edits pending a recheck
	Poisoned   bool         `json:"poisoned"`
	Restored   bool         `json:"restored"` // rebuilt from a snapshot at boot
	Inflight   int32        `json:"inflight"` // requests currently inside this session
	DebounceNS int64        `json:"debounce_ns"`
	Session    SessionStats `json:"session"`
	Engine     EngineStats  `json:"engine"`
}

// statsSnapshot assembles the /stats payload. Unlike the other
// operations it answers for poisoned sessions too — observability is how
// a quarantine gets noticed.
func (s *Session) statsSnapshot() (*StatsResponse, *svcError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errf(http.StatusGone, ClassGone, "session %s is gone (evicted or deleted)", s.ID)
	}
	return &StatsResponse{
		ID:         s.ID,
		Name:       s.Name,
		Design:     s.design.Name,
		Tech:       s.tc.Name,
		Dirty:      s.dirty,
		Poisoned:   s.poison != nil,
		Restored:   s.restored,
		Inflight:   s.inflight.Load(),
		DebounceNS: s.debounce.Nanoseconds(),
		Session:    s.stats,
		Engine:     *engineWire(s.eng.Stats()),
	}, nil
}

// close marks the session dead and stops its timer. Called with the
// session lock NOT held; it serializes after any in-flight operation, so
// a request that raced the eviction observes a clean 410, never a torn
// state.
func (s *Session) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}

// info summarizes the session for listings.
func (s *Session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		ID:       s.ID,
		Name:     s.Name,
		Design:   s.design.Name,
		Tech:     s.tc.Name,
		Clean:    s.rep != nil && s.rep.Clean() && !s.dirty,
		Dirty:    s.dirty,
		Poisoned: s.poison != nil,
		Edits:    s.stats.EditsApplied,
		Rechecks: s.stats.Rechecks,
	}
}

// SessionInfo is one row of the session listing.
type SessionInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Design   string `json:"design"`
	Tech     string `json:"tech"`
	Clean    bool   `json:"clean"` // last report clean and no pending edits
	Dirty    bool   `json:"dirty"`
	Poisoned bool   `json:"poisoned,omitempty"`
	Edits    int    `json:"edits"`
	Rechecks int    `json:"rechecks"`
}
