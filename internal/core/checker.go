package core

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/tech"
)

// Metric selects the spacing geometry model for the interaction stage.
type Metric uint8

// Spacing metrics.
const (
	// Euclidean measures true Euclidean clearance — no Figure 4
	// corner-to-corner false errors. The DIC default.
	Euclidean Metric = iota
	// Orthogonal is the traditional expand-check-overlap L∞ metric,
	// provided for the Figure 4 pathology experiments.
	Orthogonal
)

// Options configures a check run.
type Options struct {
	// Metric is the spacing metric (default Euclidean).
	Metric Metric
	// Reference, when non-nil, is compared against the extracted netlist
	// (the paper's input-netlist consistency check).
	Reference netlist.Reference
	// SkipConstruction disables the non-geometric construction rules.
	SkipConstruction bool
	// SkipInteractions disables the chip-level interaction stage (used by
	// ablation benches).
	SkipInteractions bool
	// NoExemptions is an ablation switch: ignore the same-net and
	// related-through-device subcases and check every interaction as if
	// the elements were unrelated — i.e. throw away exactly the
	// topological information the paper argues for. On a clean chip the
	// resulting violations are all false errors, measuring what the net
	// and device knowledge buys (Figures 5 and 12).
	NoExemptions bool

	// ProcessSpacing, when non-nil, gives every spacing violation a second
	// opinion from the paper's 2-D process model (Figure 13, Eq. 1): the
	// pair is re-evaluated along the line of closest approach, with
	// worst-case mask misalignment for cross-layer pairs, and a violation
	// whose printed images still keep at least ProcessMargin of clearance
	// is downgraded to a warning. This is the paper's "more correct"
	// physics-based check layered over the fixed-number rules.
	ProcessSpacing *process.Model
	// ProcessMargin is the minimum printed gap the process model must
	// predict for a downgrade (centimicrons; 0 = any positive gap).
	ProcessMargin float64
	// Misalign is the worst-case cross-layer mask misalignment for the
	// process model (default: half the technology λ when zero).
	Misalign float64

	// Workers is the number of goroutines for the chip-level interaction
	// stage: 0 uses runtime.NumCPU(), 1 forces the serial reference sweep
	// (the oracle path). Any worker count produces an identical Report —
	// the sharded sweeps merge back in strip order, so violation lists and
	// Stats counters are byte-for-byte the same as the serial run.
	Workers int
}

// workerCount resolves Workers to a concrete goroutine count.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// StageStats times one pipeline stage.
type StageStats struct {
	Name       string
	Duration   time.Duration
	Checks     int // geometric predicates evaluated
	Violations int
}

// Stats aggregates checker metrics. The Skipped* counters audit the
// Figure 12 claim that most interaction subcases require no check.
type Stats struct {
	Stages []StageStats

	ElementsChecked   int // element definitions width-checked (once per def)
	SymbolDefsChecked int // primitive symbol definitions checked
	DeviceInstances   int // device instances on the chip (for comparison)

	InteractionCandidates  int // candidate pairs from the sweep
	InteractionChecked     int // pairs geometrically measured
	SkippedNoRule          int // layer pair has no rule at all
	SkippedSameNetExempt   int // same net, no same-net rule (Figure 5a)
	SkippedRelated         int // same device, related exemption
	SkippedConnectionPairs int // handled by the connection stage
	ProcessDowngrades      int // rule violations the process model cleared
}

// Report is the result of a DIC run.
type Report struct {
	Design     *layout.Design
	Tech       *tech.Technology
	Violations []Violation
	Netlist    *netlist.Netlist
	Stats      Stats
}

// Errors returns only the error-severity violations.
func (r *Report) Errors() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Severity == Error {
			out = append(out, v)
		}
	}
	return out
}

// Clean reports whether no error-severity violations were found.
func (r *Report) Clean() bool { return len(r.Errors()) == 0 }

// Check runs the full DIC pipeline on a design.
func Check(d *layout.Design, tc *tech.Technology, opts Options) (*Report, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	rep := &Report{Design: d, Tech: tc}
	c := &checker{design: d, tech: tc, ct: tc.Compile(), opts: opts, rep: rep}

	c.stage("check elements", c.checkElements)
	c.stage("check primitive symbols", c.checkPrimitiveSymbols)
	c.stage("check layer rules", c.checkLayerRules)
	// Stages 4-6 share the extraction artifacts.
	var ex *netlist.Extraction
	c.stage("generate hierarchical net list", func() {
		var issues []netlist.Issue
		var err error
		ex, issues, err = netlist.ExtractFull(d, tc)
		if err != nil {
			c.add(Violation{Rule: "STRUCT.EXTRACT", Severity: Error, Detail: err.Error()})
			return
		}
		rep.Netlist = ex.Netlist
		for _, is := range issues {
			c.add(Violation{Rule: is.Rule, Severity: Warning, Detail: is.Detail, Where: is.Where})
		}
	})
	if ex != nil {
		c.stage("check legal connections", func() { c.checkConnections(ex) })
		if !opts.SkipInteractions {
			c.stage("check interactions", func() { c.checkInteractions(ex) })
		}
		if !opts.SkipConstruction {
			c.stage("check construction rules", func() {
				for _, is := range netlist.ConstructionRules(ex.Netlist, tc) {
					c.add(Violation{Rule: is.Rule, Severity: Error, Detail: is.Detail, Where: is.Where})
				}
			})
		}
		if opts.Reference != nil {
			c.stage("check netlist reference", func() {
				for _, is := range netlist.Compare(ex.Netlist, opts.Reference) {
					c.add(Violation{Rule: is.Rule, Severity: Error, Detail: is.Detail, Where: is.Where})
				}
			})
		}
	}
	sortViolations(rep.Violations)
	return rep, nil
}

type checker struct {
	design *layout.Design
	tech   *tech.Technology
	ct     *tech.Compiled // frozen rule table; hot paths never touch the maps
	opts   Options
	rep    *Report

	curStage *StageStats
}

// stage runs one pipeline stage with timing and violation accounting.
func (c *checker) stage(name string, fn func()) {
	st := StageStats{Name: name}
	c.rep.Stats.Stages = append(c.rep.Stats.Stages, st)
	c.curStage = &c.rep.Stats.Stages[len(c.rep.Stats.Stages)-1]
	before := len(c.rep.Violations)
	start := time.Now()
	fn()
	c.curStage.Duration = time.Since(start)
	c.curStage.Violations = len(c.rep.Violations) - before
	c.curStage = nil
}

func (c *checker) add(v Violation) {
	c.rep.Violations = append(c.rep.Violations, v)
}

func (c *checker) countCheck() {
	if c.curStage != nil {
		c.curStage.Checks++
	}
}

// elementChecks runs stage-1 width checking for one composite symbol
// definition, returning the violations (in symbol coordinates), the number
// of geometric predicates evaluated, and the number of elements examined.
// Factored out of the pipeline loop so the incremental engine can cache
// the result per definition content hash.
func elementChecks(s *layout.Symbol, tc *tech.Technology) (vs []Violation, checks, elements int) {
	for _, e := range s.Elements {
		elements++
		reg, err := e.Region()
		if err != nil {
			vs = append(vs, Violation{
				Rule: "STRUCT.ELEM", Severity: Error,
				Detail: err.Error(), Where: e.Bounds(),
				Symbol: s.Name, Layer: e.Layer,
			})
			continue
		}
		layer := tc.Layer(e.Layer)
		if layer.MinWidth <= 0 {
			continue
		}
		checks++
		for _, w := range geom.WidthViolations(reg, layer.MinWidth) {
			vs = append(vs, Violation{
				Rule:     "W." + layer.CIF,
				Severity: Error,
				Detail: fmt.Sprintf("%s %s narrower than %d (self-sufficiency: every element must be legal alone)",
					layer.Name, e.Kind, layer.MinWidth),
				Where: w, Symbol: s.Name, Layer: e.Layer,
			})
		}
	}
	return vs, checks, elements
}

// deviceProblemViolations converts stage-2 device analysis problems into
// violations attributed to the defining symbol.
func deviceProblemViolations(s *layout.Symbol, probs []device.Problem) []Violation {
	var vs []Violation
	for _, p := range probs {
		vs = append(vs, Violation{
			Rule: p.Rule, Severity: Error, Detail: p.Detail,
			Where: p.Where, Symbol: s.Name,
		})
	}
	return vs
}

// checkElements is pipeline stage 1: interconnect width, checked in the
// symbol definition, not in each instance — "this is done in the symbol
// definition, not in each instance of a symbol".
func (c *checker) checkElements() {
	for _, s := range c.design.SortedSymbols() {
		if s.IsPrimitive() {
			continue // device geometry is stage 2's business
		}
		vs, checks, elements := elementChecks(s, c.tech)
		c.rep.Stats.ElementsChecked += elements
		if c.curStage != nil {
			c.curStage.Checks += checks
		}
		for _, v := range vs {
			c.add(v)
		}
	}
}

// checkPrimitiveSymbols is stage 2: device-internal rules, once per
// definition. Devices marked CHK are exempt (their Analyze already
// suppresses problems).
func (c *checker) checkPrimitiveSymbols() {
	for _, s := range c.design.SortedSymbols() {
		if !s.IsPrimitive() {
			continue
		}
		c.rep.Stats.SymbolDefsChecked++
		c.countCheck()
		_, probs := device.Analyze(s, c.tech)
		for _, v := range deviceProblemViolations(s, probs) {
			c.add(v)
		}
	}
}

// checkConnections is stage 3: same-layer element pairs that touch without
// being skeletally connected are illegal connections (Figures 11/15); the
// extractor has already enumerated them.
func (c *checker) checkConnections(ex *netlist.Extraction) {
	c.rep.Stats.DeviceInstances = len(ex.Netlist.Devices)
	for _, pair := range ex.IllegalPairs {
		a, b := ex.Items[pair[0]], ex.Items[pair[1]]
		c.countCheck()
		layer := c.tech.Layer(a.Layer)
		c.add(Violation{
			Rule:     "CONN.ILLEGAL",
			Severity: Error,
			Detail: fmt.Sprintf("%s elements touch without skeletal connection (butting or shallow overlap; overlap by at least the minimum width instead)",
				layer.Name),
			Where: a.Bounds.Intersect(b.Bounds),
			Path:  a.Path,
			Layer: a.Layer,
			Nets:  c.netNames(ex, a.Net, b.Net),
		})
	}
}

func (c *checker) netNames(ex *netlist.Extraction, ids ...netlist.NetID) []string {
	var out []string
	for _, id := range ids {
		if id >= 0 && int(id) < len(ex.Netlist.Nets) {
			out = append(out, ex.Netlist.Nets[id].Name)
		}
	}
	return out
}
