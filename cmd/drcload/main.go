// Command drcload is the fault-injecting load harness for dicheckd. It
// drives N concurrent sessions through edit/report loops against a live
// daemon, records per-operation latency distributions and an error-class
// histogram, optionally injects chaos (random session kills, slow checks
// via the daemon's test hook, malformed edits), asserts hard SLOs, and
// writes the run as a BENCH_LOAD_<date>.json artifact.
//
// Usage:
//
//	drcload -addr HOST:PORT [flags]
//
//	-addr            daemon address (required; scheme optional)
//	-sessions N      concurrent sessions, one driver goroutine each (default 4)
//	-duration D      how long to drive load (default 10s)
//	-rows/-cols      per-session CMOS chip size (default 4×4)
//	-chaos           enable fault injection: random session kills, injected
//	                 slow checks (needs dicheckd -test-hooks), malformed edits
//	-chaos-every D   mean interval between chaos events (default 300ms)
//	-slow-ms N       injected slow-check duration for chaos (default 150)
//	-seed N          RNG seed (default 1; runs are reproducible per seed)
//	-o DIR           BENCH_LOAD_<date>.json output directory ("" = skip, default ".")
//	-slo-p99 D       fail if report p99 exceeds D (0 = skip)
//	-slo-goroutines N fail if the daemon ends with more goroutines (0 = skip)
//
// Exit status is nonzero when any SLO is violated. Two SLOs are always
// on: no 5xx responses other than 503, and no panic/poisoned error
// classes — chaos included, the daemon must degrade with structured
// backpressure, never internal errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/cif"
	"repro/internal/layout"
	"repro/internal/perfbench"
	"repro/internal/server"
	"repro/internal/tech"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

// driver owns one session slot: it creates (and, after a chaos kill,
// recreates) its session and loops edit/report against it.
type driver struct {
	idx  int
	id   string // current session id ("" = needs create)
	gen  int
	mu   sync.Mutex
	rng  *rand.Rand
	dy   int64
	edit []time.Duration
	rep  []time.Duration
	crt  []time.Duration
}

// collector aggregates error classes across drivers and the chaos actor.
type collector struct {
	mu        sync.Mutex
	requests  uint64
	errClass  map[string]uint64
	transport uint64
	bad5xx    uint64 // 5xx other than 503
}

func (c *collector) note(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	if err == nil {
		return
	}
	var apiErr *server.APIError
	if errors.As(err, &apiErr) {
		class := apiErr.Class
		if class == "" {
			class = fmt.Sprintf("http_%d", apiErr.Status)
		}
		c.errClass[class]++
		if apiErr.Status >= 500 && apiErr.Status != http.StatusServiceUnavailable {
			c.bad5xx++
		}
		return
	}
	c.transport++
}

func run() int {
	addr := flag.String("addr", "", "daemon address (required)")
	sessions := flag.Int("sessions", 4, "concurrent sessions")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	rows := flag.Int("rows", 4, "per-session chip rows")
	cols := flag.Int("cols", 4, "per-session chip columns")
	chaos := flag.Bool("chaos", false, "inject faults: session kills, slow checks, malformed edits")
	chaosEvery := flag.Duration("chaos-every", 300*time.Millisecond, "mean interval between chaos events")
	slowMS := flag.Int("slow-ms", 150, "injected slow-check duration (chaos)")
	seed := flag.Int64("seed", 1, "RNG seed")
	outDir := flag.String("o", ".", "BENCH_LOAD_<date>.json output directory (empty = skip)")
	sloP99 := flag.Duration("slo-p99", 0, "fail if report p99 exceeds this (0 = skip)")
	sloGoroutines := flag.Int("slo-goroutines", 0, "fail if daemon ends with more goroutines (0 = skip)")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "drcload: -addr is required")
		return 2
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "chip", *rows, *cols)
	cifSrc, err := cif.Write(chip.Design, tc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drcload: cif: %v\n", err)
		return 2
	}

	cl := server.NewClient(base)
	cl.AttemptTimeout = 2 * time.Minute
	if _, err := cl.ServerStats(); err != nil {
		fmt.Fprintf(os.Stderr, "drcload: daemon not reachable at %s: %v\n", base, err)
		return 2
	}

	col := &collector{errClass: make(map[string]uint64)}
	drivers := make([]*driver, *sessions)
	for i := range drivers {
		drivers[i] = &driver{idx: i, rng: rand.New(rand.NewSource(*seed + int64(i))), dy: 250}
	}

	fmt.Printf("drcload: %d sessions for %v against %s (chaos=%v)\n",
		*sessions, *duration, base, *chaos)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for _, d := range drivers {
		wg.Add(1)
		go func(d *driver) {
			defer wg.Done()
			d.loop(cl, cifSrc, col, deadline)
		}(d)
	}
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	if *chaos {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			chaosLoop(cl, drivers, col, rand.New(rand.NewSource(*seed+9001)),
				*chaosEvery, *slowMS, stopChaos)
		}()
	}
	wg.Wait()
	close(stopChaos)
	chaosWG.Wait()

	// Let in-flight daemon work settle before reading the end-of-run
	// resource gauges: the bounded-goroutine claim is about steady state,
	// not the instant the load stops.
	time.Sleep(300 * time.Millisecond)
	st, err := cl.ServerStats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "drcload: final stats: %v\n", err)
		return 1
	}

	var edits, reps, crts []time.Duration
	for _, d := range drivers {
		d.mu.Lock()
		edits = append(edits, d.edit...)
		reps = append(reps, d.rep...)
		crts = append(crts, d.crt...)
		d.mu.Unlock()
	}
	col.mu.Lock()
	snap := perfbench.LoadSnapshot{
		Date:             time.Now().Format("2006-01-02"),
		GoVersion:        runtime.Version(),
		NumCPU:           runtime.NumCPU(),
		Sessions:         *sessions,
		Chaos:            *chaos,
		DurationNS:       duration.Nanoseconds(),
		Requests:         col.requests,
		Reports:          perfbench.SummarizeLatencies(reps),
		Edits:            perfbench.SummarizeLatencies(edits),
		Creates:          perfbench.SummarizeLatencies(crts),
		ErrClass:         col.errClass,
		Transport:        col.transport,
		ServerGoroutines: st.Goroutines,
		ServerHeapBytes:  st.HeapAllocByte,
	}
	bad5xx := col.bad5xx
	transport := col.transport
	col.mu.Unlock()

	if bad5xx > 0 {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("%d responses were 5xx other than 503", bad5xx))
	}
	for _, class := range []string{"panic", "poisoned"} {
		if n := snap.ErrClass[class]; n > 0 {
			snap.SLOViolations = append(snap.SLOViolations,
				fmt.Sprintf("%d responses with class %q", n, class))
		}
	}
	if transport > 0 {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("%d transport-level request failures", transport))
	}
	if *sloP99 > 0 && snap.Reports.P99NS > sloP99.Nanoseconds() {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("report p99 %v exceeds SLO %v", time.Duration(snap.Reports.P99NS), *sloP99))
	}
	if *sloGoroutines > 0 && st.Goroutines > *sloGoroutines {
		snap.SLOViolations = append(snap.SLOViolations,
			fmt.Sprintf("daemon has %d goroutines, SLO %d", st.Goroutines, *sloGoroutines))
	}

	fmt.Printf("drcload: %d requests; report p50=%v p95=%v p99=%v; edit p99=%v\n",
		snap.Requests,
		time.Duration(snap.Reports.P50NS), time.Duration(snap.Reports.P95NS),
		time.Duration(snap.Reports.P99NS), time.Duration(snap.Edits.P99NS))
	if len(snap.ErrClass) > 0 {
		fmt.Printf("drcload: errors by class: %v\n", snap.ErrClass)
	}
	fmt.Printf("drcload: daemon ends with %d goroutines, %.1f MiB heap\n",
		st.Goroutines, float64(st.HeapAllocByte)/(1<<20))

	if *outDir != "" {
		out, err := snap.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drcload: marshal: %v\n", err)
			return 1
		}
		path := filepath.Join(*outDir, snap.Filename())
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "drcload: write: %v\n", err)
			return 1
		}
		fmt.Printf("drcload: wrote %s\n", path)
	}

	if len(snap.SLOViolations) > 0 {
		for _, v := range snap.SLOViolations {
			fmt.Fprintf(os.Stderr, "drcload: SLO VIOLATION: %s\n", v)
		}
		return 1
	}
	fmt.Println("drcload: all SLOs met")
	return 0
}

// loop drives one session until the deadline: create it (with a floating
// probe box to move), then a steady mix of move edits and reports. A
// session killed by chaos surfaces as not_found/gone; the driver simply
// recreates and keeps going — exactly what a resilient client does.
func (d *driver) loop(cl *server.Client, cifSrc string, col *collector, deadline time.Time) {
	for time.Now().Before(deadline) {
		if d.currentID() == "" {
			if !d.create(cl, cifSrc, col) {
				time.Sleep(100 * time.Millisecond)
				continue
			}
		}
		id := d.currentID()
		start := time.Now()
		var err error
		if d.rng.Intn(4) == 0 {
			_, err = cl.Report(id)
			d.record(&d.rep, time.Since(start))
		} else {
			_, err = cl.Edit(id, []layout.Edit{{
				Op: layout.OpMoveElement, Symbol: "chip", Index: -1, DY: d.dy,
			}})
			d.dy = -d.dy
			d.record(&d.edit, time.Since(start))
		}
		col.note(err)
		if isSessionLost(err) {
			d.setID("")
		}
	}
}

func (d *driver) create(cl *server.Client, cifSrc string, col *collector) bool {
	start := time.Now()
	resp, err := cl.Create(server.CreateRequest{
		Name: fmt.Sprintf("load%d", d.idx),
		CIF:  cifSrc,
		Tech: "cmos",
	})
	d.record(&d.crt, time.Since(start))
	col.note(err)
	if err != nil {
		return false
	}
	// The probe the move edits target: a floating metal box well away
	// from the chip; its fanout violation is expected and harmless.
	_, err = cl.Edit(resp.ID, []layout.Edit{{
		Op: layout.OpAddBox, Symbol: "chip", Layer: tech.CMOSMetal,
		Box: []int64{-30000 - int64(d.idx)*4000, 0, -29000 - int64(d.idx)*4000, 1000},
	}})
	col.note(err)
	if err != nil && isSessionLost(err) {
		return false
	}
	d.setID(resp.ID)
	return true
}

func (d *driver) currentID() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.id
}

func (d *driver) setID(id string) {
	d.mu.Lock()
	d.id = id
	d.mu.Unlock()
}

func (d *driver) record(dst *[]time.Duration, dur time.Duration) {
	d.mu.Lock()
	*dst = append(*dst, dur)
	d.mu.Unlock()
}

// isSessionLost reports whether err means the session no longer exists
// (chaos killed it, or an eviction raced us).
func isSessionLost(err error) bool {
	var apiErr *server.APIError
	if !errors.As(err, &apiErr) {
		return false
	}
	return apiErr.Status == http.StatusNotFound || apiErr.Status == http.StatusGone
}

// chaosLoop is the fault injector: at randomized intervals it kills a
// random live session, arms a slow check on one (when the daemon exposes
// the test hook), or fires a malformed edit batch. Every fault must come
// back as a structured 4xx/503 — anything else fails the run's SLOs.
func chaosLoop(cl *server.Client, drivers []*driver, col *collector,
	rng *rand.Rand, every time.Duration, slowMS int, stop <-chan struct{}) {
	for {
		wait := every/2 + time.Duration(rng.Int63n(int64(every)+1))
		select {
		case <-stop:
			return
		case <-time.After(wait):
		}
		d := drivers[rng.Intn(len(drivers))]
		id := d.currentID()
		if id == "" {
			continue
		}
		switch rng.Intn(3) {
		case 0: // kill: the driver sees 404/410 and recreates
			err := cl.Delete(id)
			col.note(ignoreSessionLost(err))
		case 1: // slow check: drives deadline expiries / queue pressure
			err := cl.Inject(id, server.InjectRequest{SlowMS: slowMS, SlowCount: 2})
			// 404 when the hook is off or the session just died — not a fault.
			col.note(ignoreSessionLost(err))
		case 2: // malformed edit: must be a clean 400, never a 500
			_, err := cl.Edit(id, []layout.Edit{{Op: "warp_reality", Symbol: "chip"}})
			if err == nil {
				col.note(fmt.Errorf("malformed edit was accepted"))
			} else {
				var apiErr *server.APIError
				if errors.As(err, &apiErr) && apiErr.Status == http.StatusBadRequest {
					err = nil // expected
				}
				col.note(ignoreSessionLost(err))
			}
		}
	}
}

// ignoreSessionLost drops expected lost-session errors from chaos
// actions that raced a kill.
func ignoreSessionLost(err error) error {
	if isSessionLost(err) {
		return nil
	}
	return err
}
