package geom

import "math"

// FPoint is a float64 point, used only where the paper's geometry is
// genuinely analog: Euclidean offset contours and the exposure model.
type FPoint struct {
	X, Y float64
}

// FPolygon is a closed polygon with float64 vertices (closing edge
// implicit), produced by Euclidean offsetting.
type FPolygon []FPoint

// SignedArea returns the signed area of the polygon (positive when CCW).
func (p FPolygon) SignedArea() float64 {
	var s float64
	for i := range p {
		j := (i + 1) % len(p)
		s += p[i].X*p[j].Y - p[j].X*p[i].Y
	}
	return s / 2
}

// Area returns the absolute area.
func (p FPolygon) Area() float64 { return math.Abs(p.SignedArea()) }

// OrthogonalExpandRect is the paper's orthogonal expand applied to a rect:
// square corners are preserved (Figure 3, left).
func OrthogonalExpandRect(r Rect, d int64) Rect { return r.Expand(d) }

// OrthogonalExpandArea returns the exact area of the orthogonal expansion
// of a region by d, computed with the region algebra.
func OrthogonalExpandArea(r Region, d int64) int64 { return r.Dilate(d).Area() }

// CornerCounts returns the number of convex (90° interior) and concave
// (270° interior) corners over all contours of a rectilinear region.
// For a simply connected rectilinear region, convex - concave == 4.
func CornerCounts(r Region) (convex, concave int) {
	for _, loop := range r.Contours() {
		n := len(loop)
		for i := 0; i < n; i++ {
			a := loop[i]
			b := loop[(i+1)%n]
			c := loop[(i+2)%n]
			cross := b.Sub(a).Cross(c.Sub(b))
			// Contours orient outer loops CCW and holes CW with interior on
			// the left, so a left turn (positive cross) is a convex corner.
			if cross > 0 {
				convex++
			} else if cross < 0 {
				concave++
			}
		}
	}
	return convex, concave
}

// Perimeter returns the total boundary length of a rectilinear region.
func Perimeter(r Region) int64 {
	var total int64
	for _, loop := range r.Contours() {
		total += loop.PerimeterRectilinear()
	}
	return total
}

// EuclideanExpandArea returns the exact area of the Euclidean (disk)
// expansion of a rectilinear region by radius d, valid when d is smaller
// than half the minimum feature, notch and gap size of the region (so that
// offset boundaries from distinct edges do not interact). The formula sums
// edge strips, quarter-disk wedges at convex corners, and square overlap
// corrections at concave corners:
//
//	A' = A + P·d + Nconvex·(π/4)·d² − Nconcave·(1−... )  — see below.
//
// At a concave corner the two adjacent edge strips overlap in a d×d square,
// which must be subtracted once.
func EuclideanExpandArea(r Region, d int64) float64 {
	a := float64(r.Area())
	p := float64(Perimeter(r))
	convex, concave := CornerCounts(r)
	dd := float64(d)
	return a + p*dd + float64(convex)*(math.Pi/4)*dd*dd - float64(concave)*dd*dd
}

// EuclideanExpandRectPolygon returns the Euclidean expansion contour of a
// rect by radius d, with each rounded corner approximated by segsPerQuarter
// chords (Figure 3, right: "the Euclidean expand rounds the corners").
func EuclideanExpandRectPolygon(r Rect, d int64, segsPerQuarter int) FPolygon {
	if segsPerQuarter < 1 {
		segsPerQuarter = 1
	}
	corners := [4]FPoint{ // CCW from lower-left, arc centers
		{float64(r.X2), float64(r.Y1)},
		{float64(r.X2), float64(r.Y2)},
		{float64(r.X1), float64(r.Y2)},
		{float64(r.X1), float64(r.Y1)},
	}
	startAngle := [4]float64{-math.Pi / 2, 0, math.Pi / 2, math.Pi}
	var out FPolygon
	dd := float64(d)
	for c := 0; c < 4; c++ {
		for s := 0; s <= segsPerQuarter; s++ {
			th := startAngle[c] + (math.Pi/2)*float64(s)/float64(segsPerQuarter)
			out = append(out, FPoint{
				corners[c].X + dd*math.Cos(th),
				corners[c].Y + dd*math.Sin(th),
			})
		}
	}
	return out
}

// EuclideanShrinkRect returns the Euclidean (disk) erosion of a rect by d.
// For convex rectilinear shapes disk erosion coincides with orthogonal
// erosion (Figure 3: "both Euclidean and Orthogonal shrink yield square
// corners when applied to simple squares").
func EuclideanShrinkRect(r Rect, d int64) Rect {
	out := r.Expand(-d)
	if out.X1 > out.X2 || out.Y1 > out.Y2 {
		return Rect{out.X1, out.Y1, out.X1, out.Y1} // collapsed to empty
	}
	return out
}

// EuclideanSECCornerLoss returns the area falsely flagged at each convex
// corner by the Euclidean shrink-expand-compare width check of Figure 4:
// shrinking by h and Euclidean-expanding by h rounds every convex corner,
// losing (1 − π/4)·h² per corner even on perfectly legal geometry.
func EuclideanSECCornerLoss(h int64) float64 {
	hh := float64(h)
	return (1 - math.Pi/4) * hh * hh
}

// EuclideanSECFalseCorners performs the Euclidean shrink-expand-compare
// width check on a rect of legal width and returns the per-corner regions
// that the check would flag (one square of side h at each convex corner of
// which only the rounded part is actually covered). It returns the corner
// rects and the exact falsely-flagged area.
func EuclideanSECFalseCorners(r Rect, h int64) ([]Rect, float64) {
	if r.MinSide() < 2*h {
		return nil, 0 // genuinely too narrow: SEC flags the whole shape
	}
	corners := []Rect{
		{r.X1, r.Y1, r.X1 + h, r.Y1 + h},
		{r.X2 - h, r.Y1, r.X2, r.Y1 + h},
		{r.X2 - h, r.Y2 - h, r.X2, r.Y2},
		{r.X1, r.Y2 - h, r.X1 + h, r.Y2},
	}
	return corners, 4 * EuclideanSECCornerLoss(h)
}
