package cif

import (
	"testing"

	"repro/internal/tech"
	"repro/internal/workload"
)

// TestWriteParseFixedPointCMOS locks the Write ∘ Parse fixed point on the
// deck-defined CMOS workload, alongside the bipolar coverage in
// TestWriteBipolarDesign: rendering the generated chip, reparsing it, and
// rendering again must reproduce the first text byte for byte, and the
// reparsed design must be structurally and geometrically identical.
func TestWriteParseFixedPointCMOS(t *testing.T) {
	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "cmos-rt", 2, 3)

	text1, err := Write(chip.Design, tc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text1, tc, "cmos-rt")
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text1)
	}
	text2, err := Write(back, tc)
	if err != nil {
		t.Fatal(err)
	}
	if text1 != text2 {
		t.Fatalf("Write∘Parse is not a fixed point:\nfirst:\n%s\nsecond:\n%s", text1, text2)
	}

	// Structural equivalence.
	so, sb := chip.Design.Stats(), back.Stats()
	if so != sb {
		t.Fatalf("stats changed: %+v vs %+v", so, sb)
	}
	// Device declarations survive.
	for _, name := range []string{"lib.cmos-nmos", "lib.cmos-pmos"} {
		s, ok := back.Symbol(name)
		if !ok || s.DeviceType == "" {
			t.Fatalf("device symbol %q lost (%+v)", name, s)
		}
	}
	// Geometric equivalence: identical flattened layer regions.
	ro, err := chip.Design.FlatLayerRegions(tc.NumLayers())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := back.FlatLayerRegions(tc.NumLayers())
	if err != nil {
		t.Fatal(err)
	}
	for l := range ro {
		if !ro[l].Equal(rb[l]) {
			t.Fatalf("layer %d geometry changed", l)
		}
	}
}
