package device

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// analyzeResistor models a diffused resistor (Figure 5b and Figure 6b).
// The body is a single strip on one diffusion layer; its two end caps are
// the terminals, deliberately on DIFFERENT nodes: a resistor between two
// nets is not a short, and a resistor's own halves must still satisfy
// spacing against each other even on the same net — the paper's Figure 5
// distinction, captured by SpacingExemptSameNet=false.
//
// For the bipolar technology, MayTouchIsolation is set: tying a resistor
// end to the isolation diffusion is the legal ground tie of Figure 6b.
func analyzeResistor(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem) {
	var probs []Problem
	// The body lives on whichever resistive layer the symbol draws on: an
	// explicit "body" role binding, else the first diffusion- or base-role
	// layer (legacy names as a last resort) with geometry in the symbol.
	bodyID := tech.NoLayer
	if _, bound := spec.Layers["body"]; bound {
		bodyID = roleID(tc, spec, "body", "")
	} else {
		for _, role := range []struct{ role, fallback string }{
			{tech.RoleDiffusion, tech.NMOSDiff}, {tech.RoleBase, tech.BipBase},
		} {
			if id, ok := tc.LayerFor(spec, role.role, role.fallback); ok && !sym.LayerRegion(id).Empty() {
				bodyID = id
				break
			}
		}
	}
	info := &Info{
		SpacingExemptSameNet: false, // Figure 5b: resistors keep same-net spacing checks
		MayTouchIsolation:    true,  // Figure 6b: legal isolation tie
	}
	if bodyID == tech.NoLayer {
		probs = append(probs, Problem{
			Rule: "DEV.RES.BODY", Detail: "resistor symbol has no body geometry", Where: sym.Bounds(),
		})
		return info, probs
	}
	body := sym.LayerRegion(bodyID)
	if comps := body.Components(); len(comps) != 1 {
		probs = append(probs, Problem{
			Rule:   "DEV.RES.BODY",
			Detail: fmt.Sprintf("resistor body has %d components, need 1", len(comps)),
			Where:  body.Bounds(),
		})
	}
	b := body.Bounds()
	if ml := spec.Params["min-length"]; ml > 0 {
		if length := maxInt64(b.W(), b.H()); length < ml {
			probs = append(probs, Problem{
				Rule:   "DEV.RES.LENGTH",
				Detail: fmt.Sprintf("resistor length %d below minimum %d", length, ml),
				Where:  b,
			})
		}
	}

	// Terminals: end caps along the major axis, one minimum-width deep.
	capDepth := tc.Layer(bodyID).MinWidth
	if capDepth <= 0 {
		capDepth = 1
	}
	var capA, capB geom.Rect
	if b.W() >= b.H() {
		capA = geom.Rect{X1: b.X1, Y1: b.Y1, X2: minInt64(b.X1+capDepth, b.X2), Y2: b.Y2}
		capB = geom.Rect{X1: maxInt64(b.X2-capDepth, b.X1), Y1: b.Y1, X2: b.X2, Y2: b.Y2}
	} else {
		capA = geom.Rect{X1: b.X1, Y1: b.Y1, X2: b.X2, Y2: minInt64(b.Y1+capDepth, b.Y2)}
		capB = geom.Rect{X1: b.X1, Y1: maxInt64(b.Y2-capDepth, b.Y1), X2: b.X2, Y2: b.Y2}
	}
	info.Terminals = append(info.Terminals,
		Terminal{Name: "a", Layer: bodyID, Reg: body.Clip(capA), Node: 0},
		Terminal{Name: "b", Layer: bodyID, Reg: body.Clip(capB), Node: 1},
	)
	return info, probs
}

// analyzeNPN models the simplified bipolar transistor of Figure 6a: the
// emitter must sit inside the base with the specified enclosure, and the
// base region must keep clear of the isolation diffusion — connecting them
// "destroys the integrity of the device". The base keepout is exported so
// the interaction stage can check it against isolation geometry anywhere in
// the chip, not just inside the symbol.
func analyzeNPN(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem) {
	var probs []Problem
	base := roleRegion(sym, tc, spec, tech.RoleBase, tech.BipBase)
	emitter := roleRegion(sym, tc, spec, tech.RoleEmitter, tech.BipEmitter)
	iso := roleRegion(sym, tc, spec, tech.RoleIsolation, tech.BipIso)
	info := &Info{SpacingExemptSameNet: true}

	if base.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.NPN.BASE", Detail: "npn symbol has no base", Where: sym.Bounds(),
		})
		return info, probs
	}
	if emitter.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.NPN.EMITTER", Detail: "npn symbol has no emitter", Where: base.Bounds(),
		})
	} else if ee := spec.Params["emitter-enclosure"]; ee > 0 {
		probs = requireCovered(emitter.Dilate(ee), base, "DEV.NPN.ENCLOSE",
			fmt.Sprintf("base must enclose the emitter by %d", ee), probs)
	}

	clear := spec.Params["iso-clearance"]
	info.BaseKeepout = base
	info.BaseClearance = clear
	// Isolation inside the symbol itself is checked here; isolation
	// elsewhere in the chip is the interaction stage's job.
	if !iso.Empty() && clear > 0 {
		if vs := geom.SpacingViolations(base, iso, clear); len(vs) > 0 {
			for _, v := range vs {
				probs = append(probs, Problem{
					Rule:   "DEV.NPN.ISO",
					Detail: "transistor base touches or approaches isolation (Figure 6a)",
					Where:  v,
				})
			}
		}
	}

	info.Terminals = append(info.Terminals,
		Terminal{Name: "b", Layer: roleID(tc, spec, tech.RoleBase, tech.BipBase), Reg: base, Node: 0},
	)
	if !emitter.Empty() {
		info.Terminals = append(info.Terminals,
			Terminal{Name: "e", Layer: roleID(tc, spec, tech.RoleEmitter, tech.BipEmitter), Reg: emitter, Node: 1},
		)
	}
	return info, probs
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
