package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEvictRaceHammer is the eviction-race regression test: concurrent
// editors and reporters hammer sessions while an evictor sweeps them out
// from underneath (snapshot-then-close, state directory configured) and
// creators resurrect them. The contract under this race: every response
// is a success, a 404 (fully evicted), or a 410 (evicted mid-request) —
// never a 5xx, never a torn state, and with -race, no data race.
func TestEvictRaceHammer(t *testing.T) {
	text, _ := cmosCIF(t, 2, 2)
	srv, c := newTestServer(t, Config{
		Debounce: time.Millisecond, // keep the timer path in the race too
		IdleTTL:  time.Minute,
		StateDir: t.TempDir(),
	})
	noRetry(c)

	const nSessions = 4
	var ids [nSessions]atomic.Value // string: current id for slot i ("" = dead)
	for i := 0; i < nSessions; i++ {
		created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "hammer", CIF: text, Tech: "cmos"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i].Store(created.ID)
	}

	okClass := func(err error) bool {
		if err == nil {
			return true
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			return false
		}
		switch apiErr.Status {
		case http.StatusNotFound, http.StatusGone:
			return true
		}
		return false
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 64)

	// Editors and reporters, one pair per slot.
	for i := 0; i < nSessions; i++ {
		slot := i
		wg.Add(2)
		go func() {
			defer wg.Done()
			flip := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, _ := ids[slot].Load().(string)
				if id == "" {
					continue
				}
				var err error
				if flip {
					_, err = c.SessionEdit(context.Background(), id, breakEdits())
				} else {
					_, err = c.SessionEdit(context.Background(), id, revertEdits())
				}
				flip = !flip
				if !okClass(err) {
					select {
					case fail <- err:
					default:
					}
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, _ := ids[slot].Load().(string)
				if id == "" {
					continue
				}
				if _, err := c.SessionReport(context.Background(), id); !okClass(err) {
					select {
					case fail <- err:
					default:
					}
				}
			}
		}()
	}

	// The evictor: every few milliseconds, sweep everything idle (the
	// cutoff is in the future, so every session qualifies) — exactly the
	// retire path a production idle sweep takes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				srv.SweepIdle(time.Now().Add(2 * time.Minute))
			}
		}
	}()

	// The creators: resurrect any slot whose session got swept.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			for slot := 0; slot < nSessions; slot++ {
				id, _ := ids[slot].Load().(string)
				if id == "" {
					continue
				}
				if _, err := c.SessionStats(context.Background(), id); err != nil {
					created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "hammer", CIF: text, Tech: "cmos"})
					if err == nil {
						ids[slot].Store(created.ID)
					}
				}
			}
		}
	}()

	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatalf("hammer saw a non-contract response: %v", err)
	default:
	}

	// The daemon must still be fully healthy after the storm.
	created, err := c.SessionCreate(context.Background(), CreateRequest{Name: "after", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionReport(context.Background(), created.ID); err != nil {
		t.Fatal(err)
	}
	gst, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gst.PanicsRecovered != 0 || gst.SessionsPoisoned != 0 {
		t.Fatalf("the race recovered panics: %+v", gst)
	}
}
