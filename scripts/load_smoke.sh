#!/usr/bin/env bash
# Load smoke for the hardened check service: build the real binaries,
# start dicheckd with fault-injection hooks and crash-safe snapshots on,
# and drive it with drcload in chaos mode — random session kills,
# injected slow checks, malformed edit batches — under hard SLOs:
#
#   - report p99 under the threshold
#   - zero 5xx responses other than 503 (chaos must surface as
#     structured backpressure, never internal errors)
#   - zero panic/poisoned error classes
#   - zero transport-level failures
#   - the daemon's goroutine count stays bounded
#   - the daemon shuts down cleanly (SIGTERM -> exit 0) afterwards
#
# Then a second, delta-mode run against a fresh daemon: sessions seeded
# with deliberate violations (so full reports are heavy) polling via
# ?since= on an inert-edit loop, with session churn mixed in. The extra
# SLO is the whole point of the delta path: p99 delta payload bytes must
# be a small fraction of p99 full-report bytes.
#
# drcload exits nonzero on any SLO violation; this script adds the
# daemon-side assertions (no recovered panics, deltas actually served,
# clean shutdown).
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
bin="$work/bin"
cleanup() {
  [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# jq-free JSON field extraction (top-level scalar fields of pretty-printed
# output). Usage: field FILE NAME
field() { sed -n "s/^  \"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1; }

SESSIONS="${SESSIONS:-4}"
DURATION="${DURATION:-5s}"
SLO_P99="${SLO_P99:-8s}"
SLO_GOROUTINES="${SLO_GOROUTINES:-300}"
DELTA_SESSIONS="${DELTA_SESSIONS:-16}"
DELTA_DURATION="${DELTA_DURATION:-5s}"
DELTA_VIOLATIONS="${DELTA_VIOLATIONS:-40}"
SLO_DELTA_RATIO="${SLO_DELTA_RATIO:-0.25}"

echo "== build"
mkdir -p "$bin"
go build -o "$bin/" ./cmd/dicheckd ./cmd/drcload

start_daemon() { # start_daemon EXTRA_ARGS...
  rm -f "$work/addr"
  "$bin/dicheckd" -addr 127.0.0.1:0 -addr-file "$work/addr" "$@" &
  daemon_pid=$!
  for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
  [ -s "$work/addr" ] || fail "daemon never wrote its address"
  addr=$(cat "$work/addr")
  curl -sf "http://$addr/v1/healthz" > /dev/null || fail "healthz"
}

stop_daemon() { # stop_daemon LABEL
  kill -TERM "$daemon_pid"
  local rc=0
  wait "$daemon_pid" || rc=$?
  daemon_pid=""
  [ "$rc" = 0 ] || fail "daemon exited $rc on SIGTERM after the $1 run"
}

echo "== start daemon (test hooks + snapshots on)"
start_daemon -debounce 25ms -check-timeout 5s -edit-timeout 5s \
  -state-dir "$work/state" -snapshot-every 500ms -test-hooks
echo "   daemon at http://$addr"

echo "== chaos load: $SESSIONS sessions for $DURATION"
mkdir -p "$work/out-chaos"
"$bin/drcload" -addr "$addr" -sessions "$SESSIONS" -duration "$DURATION" \
  -chaos -slo-p99 "$SLO_P99" -slo-goroutines "$SLO_GOROUTINES" -o "$work/out-chaos" \
  || fail "drcload reported SLO violations"

snap=$(ls "$work"/out-chaos/BENCH_LOAD_*.json 2>/dev/null | head -1)
[ -n "$snap" ] || fail "no BENCH_LOAD artifact written"
echo "   artifact: $(basename "$snap")"

echo "== daemon-side assertions (chaos)"
curl -sf "http://$addr/v1/stats" > "$work/stats.json" || fail "GET /v1/stats"
panics=$(field "$work/stats.json" panics_recovered)
[ "$panics" = 0 ] || fail "daemon recovered $panics panics under chaos load"
poisoned=$(field "$work/stats.json" sessions_poisoned)
[ "$poisoned" = 0 ] || fail "$poisoned sessions were poisoned under chaos load"

echo "== clean shutdown (chaos)"
stop_daemon chaos

echo "== delta load: $DELTA_SESSIONS sessions for $DELTA_DURATION (p99 delta bytes <= $SLO_DELTA_RATIO x full)"
start_daemon -debounce 5ms -check-timeout 30s -edit-timeout 10s \
  -max-sessions "$((DELTA_SESSIONS + 8))"
echo "   daemon at http://$addr"
mkdir -p "$work/out-delta"
"$bin/drcload" -addr "$addr" -sessions "$DELTA_SESSIONS" -duration "$DELTA_DURATION" \
  -rows 1 -cols 2 -violations "$DELTA_VIOLATIONS" -delta -churn-every 2s \
  -slo-p99 "$SLO_P99" -slo-goroutines "$SLO_GOROUTINES" \
  -slo-delta-ratio "$SLO_DELTA_RATIO" -o "$work/out-delta" \
  || fail "drcload delta run reported SLO violations"
dsnap=$(ls "$work"/out-delta/BENCH_LOAD_*.json 2>/dev/null | head -1)
[ -n "$dsnap" ] || fail "no delta-mode BENCH_LOAD artifact written"
echo "   artifact: $(basename "$dsnap") (delta mode)"

echo "== daemon-side assertions (delta)"
curl -sf "http://$addr/v1/stats" > "$work/stats-delta.json" || fail "GET /v1/stats"
served=$(field "$work/stats-delta.json" deltas_served)
[ -n "$served" ] && [ "$served" -gt 0 ] || fail "daemon served no deltas in delta mode"
panics=$(field "$work/stats-delta.json" panics_recovered)
[ "$panics" = 0 ] || fail "daemon recovered $panics panics under delta load"

echo "== clean shutdown (delta)"
stop_daemon delta

# Keep the artifacts past this script's cleanup when asked to (CI uploads
# them). The delta run's snapshot is renamed so the two do not collide.
if [ -n "${ARTIFACT_DIR:-}" ]; then
  mkdir -p "$ARTIFACT_DIR"
  cp "$snap" "$ARTIFACT_DIR/"
  cp "$dsnap" "$ARTIFACT_DIR/$(basename "$dsnap" .json).delta.json"
fi

echo "PASS: chaos and delta loads met every SLO and the daemon shut down cleanly"
