#!/usr/bin/env bash
# Kill-and-restore drill for crash-safe sessions: start dicheckd with a
# state directory, drive a session into a known violating state, force a
# snapshot, keep editing (a burst the snapshot does NOT cover), then
# kill -9 the daemon mid-burst. A fresh daemon on the same state
# directory must restore the session and serve a report whose fingerprint
# is identical to an offline engine replaying the snapshotted edit script
# — acknowledged-and-snapshotted state survives SIGKILL bit-for-bit;
# post-snapshot edits are the documented loss window.
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
bin="$work/bin"
cleanup() {
  [ -n "${daemon_pid:-}" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }
field() { sed -n "s/^  \"$2\": \"\{0,1\}\([^\",]*\)\"\{0,1\},\{0,1\}\$/\1/p" "$1" | head -1; }

echo "== build"
mkdir -p "$bin"
go build -o "$bin/" ./cmd/dicheckd ./cmd/dicheck ./cmd/cifgen

echo "== generate workload"
"$bin/cifgen" -tech cmos -rows 4 -cols 4 -o "$work/chip.cif"
cat > "$work/break.json" <<'EOF'
[{"op":"add_wire","symbol":"chip","layer":"poly","width":200,"path":[3200,-400,3200,400]}]
EOF

start_daemon() {
  "$bin/dicheckd" -addr 127.0.0.1:0 -addr-file "$work/addr" \
    -debounce 25ms -state-dir "$work/state" > "$work/daemon.log" &
  daemon_pid=$!
  for _ in $(seq 100); do [ -s "$work/addr" ] && break; sleep 0.1; done
  [ -s "$work/addr" ] || fail "daemon never wrote its address"
  base="http://$(cat "$work/addr")"
  curl -sf "$base/v1/healthz" > /dev/null || fail "healthz"
}

echo "== start daemon (first life)"
start_daemon
echo "   daemon at $base"

echo "== session + violating edit + snapshot"
"$bin/dicheck" -tech cmos -serve "$base" -session drill -json "$work/chip.cif" > /dev/null \
  || fail "session create exited $?"
set +e
"$bin/dicheck" -serve "$base" -session drill -edits "$work/break.json" -json > "$work/pre-kill.json"
rc=$?
set -e
[ "$rc" = 1 ] || fail "broken check exited $rc, want 1"
fp_prekill=$(field "$work/pre-kill.json" fingerprint)
[ -n "$fp_prekill" ] || fail "no pre-kill fingerprint"
curl -sf -X POST "$base/v1/snapshot" > "$work/snap.json" || fail "POST /snapshot"
grep -q '"saved": 1' "$work/snap.json" || fail "snapshot sweep saved nothing: $(cat "$work/snap.json")"

echo "== post-snapshot burst, then kill -9 mid-burst"
for i in 1 2 3; do
  curl -s -X POST "$base/v1/sessions/s1/edits" -d \
    '{"edits":[{"op":"add_box","symbol":"chip","layer":"metal","box":[-50000,0,-49000,1000]}]}' \
    > /dev/null &
done
kill -9 "$daemon_pid"
wait 2>/dev/null || true
daemon_pid=""

echo "== restart on the same state directory"
rm -f "$work/addr"
start_daemon
echo "   daemon at $base"
grep -q "restored 1 session" "$work/daemon.log" || fail "daemon did not report restoring the session"

echo "== restored report vs offline replay"
curl -sf "$base/v1/sessions/s1/report" > "$work/post-restore.json" || fail "restored report"
fp_restored=$(field "$work/post-restore.json" fingerprint)
[ "$fp_restored" = "$fp_prekill" ] \
  || fail "restored fingerprint $fp_restored != pre-kill $fp_prekill"
set +e
"$bin/dicheck" -tech cmos -edits "$work/break.json" -json "$work/chip.cif" > "$work/offline.json"
rc=$?
set -e
[ "$rc" = 1 ] || fail "offline replay exited $rc, want 1"
fp_offline=$(field "$work/offline.json" fingerprint)
[ "$fp_restored" = "$fp_offline" ] \
  || fail "restored fingerprint $fp_restored != offline replay $fp_offline"

# The delta index survives the crash too: a client that last saw the
# pre-kill fingerprint gets an empty non-reset delta from the restored
# daemon, not a full-report reset.
echo "== delta continuity across the crash"
curl -sf "$base/v1/sessions/s1/report?since=$fp_prekill" > "$work/post-restore-delta.json" \
  || fail "post-restore delta fetch"
grep -q '"reset": true' "$work/post-restore-delta.json" \
  && fail "restored daemon forgot the pre-kill fingerprint (reset delta)"
grep -q '"added": \[\]' "$work/post-restore-delta.json" || fail "post-restore delta added something"
grep -q '"removed": \[\]' "$work/post-restore-delta.json" || fail "post-restore delta removed something"
[ "$(field "$work/post-restore-delta.json" fingerprint)" = "$fp_prekill" ] \
  || fail "post-restore delta fingerprint drifted"

echo "== restored session keeps working"
curl -sf "$base/v1/sessions/s1/stats" > "$work/stats.json" || fail "restored stats"
grep -q '"restored": true' "$work/stats.json" || fail "session not flagged restored"
set +e
"$bin/dicheck" -serve "$base" -session drill -edits "$work/break.json" -json > /dev/null
rc=$?
set -e
[ "$rc" = 1 ] || fail "post-restore edit exited $rc, want 1"

echo "PASS: SIGKILL mid-burst, restored fingerprint identical to offline replay"
