// Package dic is the public API of the Design Integrity and Immunity
// Checker — a Go reproduction of McGrath & Whitney, "Design Integrity and
// Immunity Checking: A New Look at Layout Verification and Design Rule
// Checking" (DAC 1980).
//
// The package re-exports the stable surface of the internal packages:
//
//	Technologies:  NMOS, Bipolar, CMOS — plus LoadDeck for user processes
//	Input/output:  ParseCIF, WriteCIF (extended CIF with 9N/9D/9I)
//	The checker:   Check (the paper's hierarchical pipeline, six stages)
//	The baseline:  CheckFlat (traditional mask-level DRC)
//	Extraction:    ExtractNetlist (hierarchical net list, dot notation)
//	Process model: ProcessModel (Gaussian exposure, Eq. 1)
//	Workloads:     NewChip, NewCMOSChip, InjectErrors, Pathologies
//
// Three technologies ship with the checker: the paper's λ-based
// silicon-gate nMOS process, the simplified bipolar process of Figure 6,
// and a λ=100 Mead–Conway-style p-well CMOS process. Every process is
// defined by a rule deck — a loadable text file holding the layers, the
// Figure 12 interaction matrix, and the device types (the CMOS process
// exists only as its deck) — so checking a new process means writing a
// deck, not code: see LoadDeck and the README's "Rule decks" section.
//
// Quickstart:
//
//	tc := dic.NMOS()
//	design, err := dic.ParseCIF(cifText, tc, "mychip")
//	if err != nil { ... }
//	report, err := dic.Check(design, tc, dic.Options{})
//	for _, v := range report.Errors() { fmt.Println(v) }
//
// The chip-level interaction stage runs on a sharded parallel plane sweep;
// Options.Workers selects the goroutine count (0 = all cores, 1 = the
// serial reference sweep). The report is identical for any worker count.
//
// For the iterate-edit-recheck loop, NewEngine opens an incremental
// session: every stage's results are cached per symbol definition under
// content hashes, so a Recheck after an edit re-derives only the dirty
// subtrees and still returns a Report byte-identical (modulo stage
// durations) to a cold Check. See the "Incremental checking" section of
// the README.
package dic

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/cif"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/device"
	"repro/internal/eval"
	"repro/internal/flat"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/process"
	"repro/internal/tech"
	"repro/internal/workload"
)

// Re-exported types. These aliases are the supported public names; the
// internal packages may reorganize behind them.
type (
	// Technology describes a fabrication process: layers, width rules, the
	// Figure 12 interaction matrix, and device types.
	Technology = tech.Technology
	// Design is a hierarchical layout database.
	Design = layout.Design
	// Symbol is a layout symbol definition (possibly a device).
	Symbol = layout.Symbol
	// Element is a primitive geometric element.
	Element = layout.Element
	// Options configures the design-integrity checker.
	Options = core.Options
	// Report is the checker's result.
	Report = core.Report
	// Violation is one reported finding.
	Violation = core.Violation
	// Netlist is the extracted hierarchical net list.
	Netlist = netlist.Netlist
	// NetlistIssue is a netlist-level consistency finding.
	NetlistIssue = netlist.Issue
	// Reference is an expected netlist for consistency checking.
	Reference = netlist.Reference
	// FlatOptions configures the traditional baseline checker.
	FlatOptions = flat.Options
	// FlatReport is the baseline checker's result.
	FlatReport = flat.Report
	// Model is the Gaussian-exposure process model of Eq. 1.
	Model = process.Model
	// Chip is a generated workload.
	Chip = workload.Chip
	// CMOSChip is a generated CMOS inverter-array workload.
	CMOSChip = workload.CMOSChip
	// Deck is the parsed form of a rule deck (see LoadDeck).
	Deck = deck.Deck
	// Injected is one ground-truth injected error.
	Injected = workload.Injected
	// Pathology is one paper-figure pathology case.
	Pathology = workload.Pathology
	// Outcome classifies checker output against ground truth.
	Outcome = eval.Outcome
	// Engine is an incremental check session with content-addressed
	// symbol-definition caches (see NewEngine).
	Engine = core.Engine
	// EngineStats reports cache effectiveness for an Engine's last run.
	EngineStats = core.EngineStats
	// Rect is an axis-aligned rectangle in centimicrons.
	Rect = geom.Rect
	// Point is a lattice point in centimicrons.
	Point = geom.Point
)

// R constructs a rect from two corners (any order).
func R(x1, y1, x2, y2 int64) Rect { return geom.R(x1, y1, x2, y2) }

// Pt constructs a point.
func Pt(x, y int64) Point { return geom.Pt(x, y) }

// Severity levels for violations.
const (
	Error   = core.Error
	Warning = core.Warning
)

// Spacing metrics for Options.Metric.
const (
	Euclidean  = core.Euclidean
	Orthogonal = core.Orthogonal
)

// NMOS returns the λ=250 silicon-gate nMOS technology (Mead–Conway style).
func NMOS() *Technology { return tech.NMOS() }

// Bipolar returns the simplified bipolar technology of Figure 6.
func Bipolar() *Technology { return tech.Bipolar() }

// CMOS returns the λ=100 Mead–Conway-style p-well CMOS technology. The
// process is defined entirely by its embedded rule deck — there is no Go
// constructor behind it.
func CMOS() *Technology { return tech.CMOS() }

// Technologies returns the names of the registered technologies.
func Technologies() []string { return tech.Names() }

// LoadDeck reads, validates, and compiles a rule-deck file into a
// Technology ready for checking. Validation covers the deck's semantics
// against this build's device classes here; FromDeck checks the structure
// (duplicate layers, asymmetric interaction cells, dangling references,
// roles). The first error aborts the load. See the README for the deck
// format.
func LoadDeck(path string) (*Technology, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d, err := deck.Parse(string(src))
	if err != nil {
		return nil, err
	}
	probs := tech.ValidateDeck(d, device.Classes())
	if errs := deck.Errors(probs); len(errs) > 0 {
		return nil, fmt.Errorf("dic: deck %s: %v (%d problems total)", path, errs[0], len(probs))
	}
	return tech.FromDeck(d)
}

// ResolveTechnology resolves a tool's technology selection the way the
// shipped commands do: a non-empty deckPath loads that rule deck via
// LoadDeck; otherwise name must be registered, and the error for an
// unknown name lists the valid ones.
func ResolveTechnology(name, deckPath string) (*Technology, error) {
	if deckPath != "" {
		return LoadDeck(deckPath)
	}
	fn, ok := tech.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown technology %q (valid: %s)", name, strings.Join(tech.Names(), ", "))
	}
	return fn(), nil
}

// ParseCIF reads extended CIF text into a design.
func ParseCIF(src string, tc *Technology, name string) (*Design, error) {
	return cif.Parse(src, tc, name)
}

// WriteCIF renders a design as extended CIF text.
func WriteCIF(d *Design, tc *Technology) (string, error) {
	return cif.Write(d, tc)
}

// NewDesign creates an empty design for programmatic construction.
func NewDesign(name string) *Design { return layout.NewDesign(name) }

// Check runs the six-stage design-integrity pipeline.
func Check(d *Design, tc *Technology, opts Options) (*Report, error) {
	return core.Check(d, tc, opts)
}

// NewEngine creates an incremental check session: content-addressed caches
// at the symbol-definition level make Recheck after an edit cost only what
// actually changed, while producing a Report byte-identical (modulo stage
// durations) to a cold Check of the same design state.
//
//	eng := dic.NewEngine(tc, dic.Options{})
//	rep, _ := eng.Check(design)     // cold: populates the caches
//	...edit some symbols...
//	rep, _ = eng.Recheck(design)    // warm: re-derives only dirty subtrees
//
// Options are fixed at construction. An Engine is not safe for concurrent
// use; treat returned Reports as immutable.
func NewEngine(tc *Technology, opts Options) *Engine {
	return core.NewEngine(tc, opts)
}

// Fingerprint serializes the duration-free content of a report — the part
// guaranteed identical between warm and cold runs of the same design.
func Fingerprint(rep *Report) string { return core.Fingerprint(rep) }

// CheckFlat runs the traditional mask-level baseline checker.
func CheckFlat(d *Design, tc *Technology, opts FlatOptions) (*FlatReport, error) {
	return flat.Check(d, tc, opts)
}

// ExtractNetlist generates the hierarchical net list with consistency
// issues.
func ExtractNetlist(d *Design, tc *Technology) (*Netlist, []NetlistIssue, error) {
	return netlist.Extract(d, tc)
}

// ProcessModel returns the default Gaussian exposure model (σ = λ/2,
// print-at-drawn-edge threshold).
func ProcessModel() Model { return process.DefaultModel() }

// NewChip generates a rows×cols inverter-array workload chip.
func NewChip(tc *Technology, name string, rows, cols int) *Chip {
	return workload.NewChip(tc, name, rows, cols)
}

// NewCMOSChip generates a rows×cols CMOS inverter-array workload chip for
// the deck-defined CMOS technology.
func NewCMOSChip(tc *Technology, name string, rows, cols int) *CMOSChip {
	return workload.NewCMOSChip(tc, name, rows, cols)
}

// NewChipUnique generates the inverter-array chip with one distinct row
// definition per row — the many-definitions workload the incremental
// engine's single-symbol-edit experiments measure.
func NewChipUnique(tc *Technology, name string, rows, cols int) *Chip {
	return workload.NewChipUnique(tc, name, rows, cols)
}

// InjectErrors plants n seeded ground-truth errors into a chip.
func InjectErrors(c *Chip, n int, seed int64) []Injected {
	return workload.InjectErrors(c, n, seed)
}

// Pathologies returns the paper-figure pathology library.
func Pathologies() []Pathology { return workload.AllPathologies() }

// ScoreAgainstGroundTruth classifies a DIC report against injected errors.
func ScoreAgainstGroundTruth(injected []Injected, rep *Report) Outcome {
	return eval.ScoreDIC(injected, rep)
}
