package workload

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// CMOS inverter-array workload for the deck-defined p-well CMOS process
// (λ = 100 centimicrons). Like the nMOS standard cell, every coordinate is
// derived so the full DIC pipeline reports zero violations: each clearance
// is at exactly the rule distance or better and every connection is
// skeletal, making the chip a sharp regression test for checking a
// technology that exists only as a rule deck.
//
// Cell topology (y up; the n-channel half sits in the grounded p-well at
// the bottom, the p-channel half in the substrate at the top):
//
//	input:  poly wire joining both gates, west port at (CMOSWestPortX, 800)
//	output: metal joining the two drain contacts, dropped back to poly
//	        through a poly contact for the east port at (CMOSEastPortX, 800)
//	GND:    n-source contact strapped down across the row's GND rail
//	VDD:    p-source contact strapped up across the row's VDD rail
//	well:   one row-wide p-well wire on the "VSS" substrate-tie net
//
// Cell geometry constants (centimicrons, λ=100).
const (
	CMOSPitchX = 2800
	CMOSPitchY = 4000

	// Chain port positions: a cell's east port is the next cell's west
	// port at CMOSPitchX spacing.
	CMOSWestPortX = -1200
	CMOSEastPortX = 1600
	cmosPortY     = 800

	// Rail centerlines and the vertical separation of the two halves.
	cmosGndRailY = -700
	cmosVddRailY = 2300
	cmosPMOSY    = 1600

	// Trunk positions (chip coordinates).
	CMOSVddTrunkX = -3000
)

// CMOSChip is a generated CMOS inverter-array workload.
type CMOSChip struct {
	Design *layout.Design
	Tech   *tech.Technology
	Rows   int
	Cols   int
}

// CMOSCellLibrary holds the shared primitive device symbols.
type CMOSCellLibrary struct {
	Tech  *tech.Technology
	NMOS  *layout.Symbol // n-channel pulldown, gate extended north
	PMOS  *layout.Symbol // p-channel pullup, gate extended south
	CND   *layout.Symbol // metal to n-diffusion contact
	CPD   *layout.Symbol // metal to p-diffusion contact
	CPoly *layout.Symbol // metal to poly contact
}

// NewCMOSCellLibrary creates the shared device symbols in the design.
func NewCMOSCellLibrary(d *layout.Design, tc *tech.Technology) *CMOSCellLibrary {
	lib := &CMOSCellLibrary{Tech: tc}

	ndL, _ := tc.LayerByName(tech.CMOSNDiff)
	pdL, _ := tc.LayerByName(tech.CMOSPDiff)
	polyL, _ := tc.LayerByName(tech.CMOSPoly)

	// Pulldown: 2λ×2λ channel; the gate runs 5λ north of the channel
	// center so the input poly can join it 2λ clear of the n-diffusion.
	n := d.MustSymbol("lib.cmos-nmos")
	n.DeviceType = tech.DevCMOSNMOS
	n.AddBox(ndL, geom.R(-300, -100, 300, 100), "")
	n.AddBox(polyL, geom.R(-100, -300, 100, 600), "")
	lib.NMOS = n

	// Pullup: the mirror image, gate running south toward the pulldown.
	p := d.MustSymbol("lib.cmos-pmos")
	p.DeviceType = tech.DevCMOSPMOS
	p.AddBox(pdL, geom.R(-300, -100, 300, 100), "")
	p.AddBox(polyL, geom.R(-100, -600, 100, 300), "")
	lib.PMOS = p

	lib.CND = device.NewContact(d, tc, "lib.contact-nd", tech.DevContactNDiff)
	lib.CPD = device.NewContact(d, tc, "lib.contact-pd", tech.DevContactPDiff)
	lib.CPoly = device.NewContact(d, tc, "lib.contact-po", tech.DevContactCPoly)
	return lib
}

// NewCMOSInverterCell builds the standard CMOS inverter cell symbol. The
// cell contains no rails or well (rows own those).
func NewCMOSInverterCell(d *layout.Design, lib *CMOSCellLibrary, name string) *layout.Symbol {
	tc := lib.Tech
	ndL, _ := tc.LayerByName(tech.CMOSNDiff)
	pdL, _ := tc.LayerByName(tech.CMOSPDiff)
	polyL, _ := tc.LayerByName(tech.CMOSPoly)
	metalL, _ := tc.LayerByName(tech.CMOSMetal)

	s := d.MustSymbol(name)
	s.AddCall(lib.NMOS, geom.Identity, "tn")
	s.AddCall(lib.PMOS, geom.Translate(geom.Pt(0, cmosPMOSY)), "tp")
	s.AddCall(lib.CND, geom.Translate(geom.Pt(-600, 0)), "cs")
	s.AddCall(lib.CND, geom.Translate(geom.Pt(600, 0)), "cd")
	s.AddCall(lib.CPD, geom.Translate(geom.Pt(-600, cmosPMOSY)), "ps")
	s.AddCall(lib.CPD, geom.Translate(geom.Pt(600, cmosPMOSY)), "pd")
	s.AddCall(lib.CPoly, geom.Translate(geom.Pt(1200, cmosPortY)), "po")

	// Sources into their contacts, 1λ inside the transistor diffusion.
	s.AddWire(ndL, 200, "GND", geom.Pt(-600, 0), geom.Pt(-200, 0))
	s.AddWire(pdL, 200, "VDD", geom.Pt(-600, cmosPMOSY), geom.Pt(-200, cmosPMOSY))
	// Drains east into the output contacts.
	s.AddWire(ndL, 200, "", geom.Pt(200, 0), geom.Pt(600, 0))
	s.AddWire(pdL, 200, "", geom.Pt(200, cmosPMOSY), geom.Pt(600, cmosPMOSY))
	// Input: the vertical poly joining the two gates, 2λ into each, and
	// the west port feeding it.
	s.AddWire(polyL, 200, "", geom.Pt(0, 400), geom.Pt(0, 1200))
	s.AddWire(polyL, 200, "", geom.Pt(CMOSWestPortX, cmosPortY), geom.Pt(0, cmosPortY))
	// Output: metal joining the drain contacts, with a branch into the
	// poly contact that presents the output on poly for the next cell.
	s.AddWire(metalL, 300, "", geom.Pt(600, 0), geom.Pt(600, cmosPMOSY))
	s.AddWire(metalL, 300, "", geom.Pt(600, cmosPortY), geom.Pt(1200, cmosPortY))
	s.AddWire(polyL, 200, "", geom.Pt(1200, cmosPortY), geom.Pt(CMOSEastPortX, cmosPortY))
	// Straps down across the GND rail and up across the VDD rail.
	s.AddWire(metalL, 300, "GND", geom.Pt(-600, 0), geom.Pt(-600, cmosGndRailY))
	s.AddWire(metalL, 300, "VDD", geom.Pt(-600, cmosPMOSY), geom.Pt(-600, cmosVddRailY))
	return s
}

// NewCMOSRow builds a row symbol: cols inverter cells chained west to
// east, an input-head poly contact, the row's GND and VDD rails, and the
// row-wide p-well under the n-channel half, tied to the "VSS" substrate
// net (a ground rail name, so the construction rules treat it as supply).
func NewCMOSRow(d *layout.Design, lib *CMOSCellLibrary, name string, cell *layout.Symbol, cols int) *layout.Symbol {
	tc := lib.Tech
	polyL, _ := tc.LayerByName(tech.CMOSPoly)
	metalL, _ := tc.LayerByName(tech.CMOSMetal)
	wellL, _ := tc.LayerByName(tech.CMOSWell)

	row := d.MustSymbol(name)
	for c := 0; c < cols; c++ {
		row.AddCall(cell, geom.Translate(geom.Pt(int64(c)*CMOSPitchX, 0)), fmt.Sprintf("c%d", c))
	}
	// Input head: poly contact feeding the first cell's west port.
	row.AddCall(lib.CPoly, geom.Translate(geom.Pt(-2100, cmosPortY)), "head")
	row.AddWire(polyL, 200, "", geom.Pt(-2100, cmosPortY), geom.Pt(CMOSWestPortX, cmosPortY))

	east := CMOSRowEastEnd(cols)
	row.AddWire(metalL, 300, "GND", geom.Pt(-2300, cmosGndRailY), geom.Pt(east, cmosGndRailY))
	row.AddWire(metalL, 300, "VDD",
		geom.Pt(CMOSVddTrunkX, cmosVddRailY), geom.Pt(int64(cols-1)*CMOSPitchX+400, cmosVddRailY))
	row.AddWire(wellL, 1200, "VSS", geom.Pt(-2400, 0), geom.Pt(int64(cols-1)*CMOSPitchX+1600, 0))
	return row
}

// CMOSRowEastEnd returns the GND trunk x position for a row of cols cells.
func CMOSRowEastEnd(cols int) int64 { return int64(cols-1)*CMOSPitchX + 2200 }

// NewCMOSChip builds a rows×cols CMOS inverter-array chip with per-row
// rails tied into chip-wide VDD and GND trunks.
func NewCMOSChip(tc *tech.Technology, name string, rows, cols int) *CMOSChip {
	d := layout.NewDesign(name)
	lib := NewCMOSCellLibrary(d, tc)
	cell := NewCMOSInverterCell(d, lib, "cmos-inv")
	row := NewCMOSRow(d, lib, "cmos-row", cell, cols)

	metalL, _ := tc.LayerByName(tech.CMOSMetal)
	top := d.MustSymbol("chip")
	for r := 0; r < rows; r++ {
		top.AddCall(row, geom.Translate(geom.Pt(0, int64(r)*CMOSPitchY)), fmt.Sprintf("r%d", r))
	}
	if rows > 1 {
		top.AddWire(metalL, 300, "VDD",
			geom.Pt(CMOSVddTrunkX, cmosVddRailY), geom.Pt(CMOSVddTrunkX, int64(rows-1)*CMOSPitchY+cmosVddRailY))
		east := CMOSRowEastEnd(cols)
		top.AddWire(metalL, 300, "GND",
			geom.Pt(east, cmosGndRailY), geom.Pt(east, int64(rows-1)*CMOSPitchY+cmosGndRailY))
		// Well trunk: one vertical p-well strap ties the rows' wells into a
		// single VSS substrate net. x=1400 runs between a cell's output
		// poly contact and the next cell's source, 4λ clear of p-diffusion
		// on both sides (the well-to-p+ cell is 2λ).
		wellL, _ := tc.LayerByName(tech.CMOSWell)
		top.AddWire(wellL, 400, "VSS",
			geom.Pt(1400, 0), geom.Pt(1400, int64(rows-1)*CMOSPitchY))
	}
	d.Top = top
	return &CMOSChip{Design: d, Tech: tc, Rows: rows, Cols: cols}
}

// DeviceCount returns the number of device instances on the chip.
func (c *CMOSChip) DeviceCount() int {
	return c.Design.Stats().FlatDevices
}

// BreakAccidentalTransistor draws an interconnect poly wire straight across
// the i-th column's n-diffusion output wire in row 0 — the Figure 8
// accidental transistor, in the deck-defined process — and returns its
// ground-truth location. Mask-level checkers accept the geometry silently;
// the DIC must flag DEV.ACCIDENTAL.
func (c *CMOSChip) BreakAccidentalTransistor(i int) geom.Rect {
	polyL, _ := c.Tech.LayerByName(tech.CMOSPoly)
	x := int64(i) * CMOSPitchX
	c.Design.Top.AddWire(polyL, 200, "",
		geom.Pt(x+400, -400), geom.Pt(x+400, 400))
	return geom.R(x+300, -100, x+500, 100)
}
