package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/layout"
	"repro/internal/server"
	"repro/internal/tech"
)

// servedRun is one `dicheck -serve` invocation: check a layout through a
// running dicheckd instead of in-process. Without -session it is a
// one-shot (create session, fetch report, delete); with -session the
// named session persists across invocations, so an edit script can be
// applied to live state created by an earlier run.
type servedRun struct {
	url, session, editsFile, cifPath string
	tech, deckFile, metric           string
	noConstruct, jsonOut, verbose    bool
}

func runServed(r servedRun) int {
	c := server.NewClient(r.url)
	ctx := context.Background()

	id := ""
	if r.session != "" {
		found, ok, err := c.SessionFind(ctx, r.session)
		if err != nil {
			fatalf("serve: %v", err)
		}
		if ok {
			id = found
		}
	}

	if id == "" {
		if r.cifPath == "" {
			fatalf("serve: no existing session %q and no layout.cif to create one from", r.session)
		}
		src, err := os.ReadFile(r.cifPath)
		if err != nil {
			fatalf("%v", err)
		}
		req := server.CreateRequest{
			Name:        r.session,
			DesignName:  r.cifPath,
			CIF:         string(src),
			Tech:        r.tech,
			Metric:      r.metric,
			NoConstruct: r.noConstruct,
		}
		if r.deckFile != "" {
			deckSrc, err := os.ReadFile(r.deckFile)
			if err != nil {
				fatalf("%v", err)
			}
			req.Deck = string(deckSrc)
			req.Tech = ""
		}
		resp, err := c.SessionCreate(ctx, req)
		if err != nil {
			fatalf("serve: %v", err)
		}
		id = resp.ID
	}
	if r.session == "" {
		defer func() {
			if err := c.SessionDelete(ctx, id); err != nil {
				fmt.Fprintf(os.Stderr, "dicheck: serve: delete session: %v\n", err)
			}
		}()
	}

	if r.editsFile != "" {
		edits, err := loadEdits(r.editsFile)
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := c.SessionEdit(ctx, id, edits); err != nil {
			fatalf("serve: %v", err)
		}
	}

	rep, err := c.SessionReport(ctx, id)
	if err != nil {
		fatalf("serve: %v", err)
	}
	if r.jsonOut {
		if err := printWireJSON(rep); err != nil {
			fatalf("json: %v", err)
		}
	} else {
		printServedReport(rep, r.verbose)
	}
	if !rep.Clean {
		return 1
	}
	return 0
}

// printServedReport mirrors printDICReport over the wire form.
func printServedReport(rep *server.Report, verbose bool) {
	fmt.Printf("design-integrity check (served): %d errors, %d warnings\n", rep.Errors, rep.Warnings)
	if verbose {
		for _, v := range rep.Violations {
			fmt.Printf("  [%s] %s %s path=%s (%d,%d)-(%d,%d)\n",
				v.Severity, v.Rule, v.Detail, v.Path,
				v.Where.X1, v.Where.Y1, v.Where.X2, v.Where.Y2)
		}
	} else {
		printRuleCounts(server.CountRules(rep.Violations))
	}
	fmt.Printf("fingerprint: %s\n", rep.Fingerprint)
}

// loadEdits reads a JSON edit script: either a bare array of edits or an
// {"edits": [...]} object (the service's request form).
func loadEdits(path string) ([]layout.Edit, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var edits []layout.Edit
	if err := json.Unmarshal(src, &edits); err == nil {
		return edits, nil
	}
	var req server.EditRequest
	if err := json.Unmarshal(src, &req); err != nil || len(req.Edits) == 0 {
		return nil, fmt.Errorf("edits %s: want a JSON array of edits or {\"edits\": [...]}", path)
	}
	return req.Edits, nil
}

// applyEditScript applies a JSON edit script to a parsed design (the
// offline side of fingerprint parity with a served session).
func applyEditScript(d *layout.Design, tc *tech.Technology, path string) error {
	edits, err := loadEdits(path)
	if err != nil {
		return err
	}
	if _, err := layout.ApplyEdits(d, tc, edits); err != nil {
		return fmt.Errorf("edits %s: %w", path, err)
	}
	return nil
}
