package geom

import (
	"math"
	"testing"
)

func TestOrthogonalExpandPreservesCorners(t *testing.T) {
	// Figure 3: orthogonal expand of a square keeps square corners, so the
	// expanded area is exactly (w+2d)(h+2d).
	r := R(0, 0, 20, 20)
	d := int64(5)
	got := OrthogonalExpandArea(FromRectR(r), d)
	want := (r.W() + 2*d) * (r.H() + 2*d)
	if got != want {
		t.Fatalf("orthogonal expand area = %d, want %d", got, want)
	}
}

func TestEuclideanExpandAreaSquare(t *testing.T) {
	// Figure 3: Euclidean expand rounds corners — area is A + P·d + π·d².
	r := FromRectR(R(0, 0, 20, 20))
	d := int64(5)
	got := EuclideanExpandArea(r, d)
	want := 400 + 80*5 + math.Pi*25
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("euclidean expand area = %v, want %v", got, want)
	}
	// Strictly smaller than the orthogonal expansion: the corner rounding.
	ortho := float64(OrthogonalExpandArea(r, d))
	if got >= ortho {
		t.Fatalf("euclidean (%v) must be smaller than orthogonal (%v)", got, ortho)
	}
	if diff := ortho - got; math.Abs(diff-4*(1-math.Pi/4)*25) > 1e-9 {
		t.Fatalf("corner rounding deficit = %v", diff)
	}
}

func TestEuclideanExpandAreaLShape(t *testing.T) {
	// L-shape: 5 convex corners (quarter disks), 1 concave (square overlap).
	l := FromRects([]Rect{R(0, 0, 30, 10), R(0, 0, 10, 30)})
	d := int64(2)
	got := EuclideanExpandArea(l, d)
	a := float64(l.Area())     // 500
	p := float64(Perimeter(l)) // 120
	want := a + p*2 + 5*(math.Pi/4)*4 - 1*4
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("L euclidean expand area = %v, want %v", got, want)
	}
}

func TestEuclideanExpandPolygonAreaConverges(t *testing.T) {
	// The chordal approximation must converge to the analytic area from
	// below as segments increase.
	r := R(0, 0, 20, 20)
	d := int64(5)
	exact := EuclideanExpandArea(FromRectR(r), d)
	prev := 0.0
	for _, segs := range []int{1, 4, 16, 64} {
		poly := EuclideanExpandRectPolygon(r, d, segs)
		area := poly.Area()
		if area <= prev {
			t.Fatalf("area must increase with segment count: %v after %v", area, prev)
		}
		if area > exact+1e-9 {
			t.Fatalf("chordal area %v exceeds exact %v", area, exact)
		}
		prev = area
	}
	if exact-prev > 0.2 {
		t.Fatalf("64-segment approximation too far from exact: %v vs %v", prev, exact)
	}
}

func TestEuclideanShrinkRect(t *testing.T) {
	// Figure 3: both shrinks yield square corners on squares.
	r := R(0, 0, 20, 20)
	if got := EuclideanShrinkRect(r, 5); got != R(5, 5, 15, 15) {
		t.Fatalf("shrink = %v", got)
	}
	if got := EuclideanShrinkRect(r, 10); !got.Empty() {
		t.Fatalf("over-shrink should be empty, got %v", got)
	}
}

func TestEuclideanSECFalseCorners(t *testing.T) {
	// Figure 4: Euclidean shrink-expand-compare on a perfectly legal square
	// flags all four corners with total area 4(1-π/4)h².
	r := R(0, 0, 40, 40)
	corners, area := EuclideanSECFalseCorners(r, 10)
	if len(corners) != 4 {
		t.Fatalf("corner flags = %d, want 4", len(corners))
	}
	want := 4 * (1 - math.Pi/4) * 100
	if math.Abs(area-want) > 1e-9 {
		t.Fatalf("false area = %v, want %v", area, want)
	}
	// A genuinely narrow shape is not reported corner-wise.
	if cs, _ := EuclideanSECFalseCorners(R(0, 0, 40, 15), 10); cs != nil {
		t.Fatal("sub-2h shape should not produce corner flags")
	}
	// The orthogonal variant on the same square reports nothing at all.
	if !MinWidthOK(FromRectR(r), 20) {
		t.Fatal("orthogonal check must pass the legal square")
	}
}

func TestCornerCountsDonut(t *testing.T) {
	donut := FromRectR(R(0, 0, 20, 20)).Subtract(FromRectR(R(5, 5, 15, 15)))
	convex, concave := CornerCounts(donut)
	// Outer loop: 4 convex. Hole loop: 4 corners that are concave for the
	// region (interior angle 270°).
	if convex != 4 || concave != 4 {
		t.Fatalf("donut corners = %d/%d, want 4/4", convex, concave)
	}
}

func TestFPolygonArea(t *testing.T) {
	sq := FPolygon{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	if got := sq.Area(); got != 4 {
		t.Fatalf("area = %v", got)
	}
	if got := sq.SignedArea(); got != 4 {
		t.Fatalf("signed area = %v", got)
	}
}
