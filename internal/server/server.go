package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cif"
	"repro/internal/core"
	"repro/internal/deck"
	"repro/internal/device"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Config tunes the daemon. The zero value gets sensible defaults.
type Config struct {
	// MaxSessions caps live sessions; creating one past the cap evicts the
	// least-recently-used session (default 64).
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long (default 30m;
	// negative disables idle eviction).
	IdleTTL time.Duration
	// Debounce is the per-session edit-coalescing window: a recheck runs
	// this long after the last edit batch, or on the next report request,
	// whichever comes first (default 25ms; negative disables the timer,
	// leaving report requests as the only flush trigger).
	Debounce time.Duration
	// Workers is the engines' interaction-stage goroutine count
	// (core.Options.Workers; 0 = all cores).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.IdleTTL == 0 {
		c.IdleTTL = 30 * time.Minute
	}
	if c.Debounce == 0 {
		c.Debounce = 25 * time.Millisecond
	}
	return c
}

// Server is the check service: a session table behind an http.Handler.
// Handler methods are safe for concurrent use; per-session work is
// serialized by the session's own mutex, so requests against distinct
// sessions proceed in parallel.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int

	// now is the clock, injectable for eviction tests.
	now func() time.Time

	stopJanitor chan struct{}
	janitorOnce sync.Once
}

// New creates a Server. Call Close when done to stop the idle-eviction
// janitor.
func New(cfg Config) *Server {
	s := &Server{
		cfg:         cfg.withDefaults(),
		sessions:    make(map[string]*Session),
		now:         time.Now,
		stopJanitor: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", s.handleCreate)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("GET /sessions/{id}/report", s.handleReport)
	mux.HandleFunc("GET /sessions/{id}/stats", s.handleStats)
	mux.HandleFunc("POST /sessions/{id}/edits", s.handleEdits)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux = mux
	if s.cfg.IdleTTL > 0 {
		go s.janitor()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the idle janitor and closes every session.
func (s *Server) Close() {
	s.janitorOnce.Do(func() { close(s.stopJanitor) })
	s.mu.Lock()
	victims := make([]*Session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		victims = append(victims, sess)
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	for _, sess := range victims {
		sess.close()
	}
}

// janitor periodically evicts idle sessions.
func (s *Server) janitor() {
	tick := time.NewTicker(s.cfg.IdleTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-s.stopJanitor:
			return
		case <-tick.C:
			s.SweepIdle(s.now())
		}
	}
}

// SweepIdle evicts every session idle since before now - IdleTTL and
// returns how many it removed.
func (s *Server) SweepIdle(now time.Time) int {
	if s.cfg.IdleTTL <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.IdleTTL)
	s.mu.Lock()
	var victims []*Session
	for id, sess := range s.sessions {
		if sess.lastUsed.Before(cutoff) {
			victims = append(victims, sess)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	for _, sess := range victims {
		sess.close()
	}
	return len(victims)
}

// lookup fetches a session and bumps its LRU stamp.
func (s *Server) lookup(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if ok {
		sess.lastUsed = s.now()
	}
	return sess, ok
}

// register inserts a new session, evicting the least-recently-used one if
// the table is full.
func (s *Server) register(sess *Session) {
	s.mu.Lock()
	var victim *Session
	if len(s.sessions) >= s.cfg.MaxSessions {
		var oldest *Session
		for _, cand := range s.sessions {
			if oldest == nil || cand.lastUsed.Before(oldest.lastUsed) {
				oldest = cand
			}
		}
		if oldest != nil {
			victim = oldest
			delete(s.sessions, oldest.ID)
		}
	}
	s.sessions[sess.ID] = sess
	s.mu.Unlock()
	if victim != nil {
		victim.close()
	}
}

// CreateRequest creates a session from a CIF source and a technology. One
// of Tech (a registered technology name) or Deck (rule-deck source text)
// selects the process. Name labels the session (and, when DesignName is
// empty, the design) for listings and client lookup.
type CreateRequest struct {
	Name       string `json:"name,omitempty"`
	DesignName string `json:"design_name,omitempty"`
	CIF        string `json:"cif"`
	Tech       string `json:"tech,omitempty"`
	Deck       string `json:"deck,omitempty"`
	// Metric selects the spacing metric: "" or "euclid", or "ortho".
	Metric string `json:"metric,omitempty"`
	// NoConstruct skips the non-geometric construction rules.
	NoConstruct bool `json:"noconstruct,omitempty"`
}

// CreateResponse returns the new session's id and the initial (cold)
// report.
type CreateResponse struct {
	ID     string  `json:"id"`
	Report *Report `json:"report"`
}

// resolveTech loads the request's technology.
func resolveTech(req *CreateRequest) (*tech.Technology, error) {
	if req.Deck != "" {
		d, err := deck.Parse(req.Deck)
		if err != nil {
			return nil, err
		}
		probs := tech.ValidateDeck(d, device.Classes())
		if errs := deck.Errors(probs); len(errs) > 0 {
			return nil, fmt.Errorf("deck: %v (%d problems total)", errs[0], len(probs))
		}
		return tech.FromDeck(d)
	}
	name := req.Tech
	if name == "" {
		name = "nmos"
	}
	fn, ok := tech.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown technology %q", name)
	}
	return fn(), nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.CIF == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty cif source"))
		return
	}
	tc, err := resolveTech(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	designName := req.DesignName
	if designName == "" {
		designName = req.Name
	}
	if designName == "" {
		designName = "design"
	}
	d, err := cif.Parse(req.CIF, tc, designName)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parse cif: %w", err))
		return
	}
	opts := core.Options{Workers: s.cfg.Workers, SkipConstruction: req.NoConstruct}
	switch req.Metric {
	case "", "euclid":
	case "ortho":
		opts.Metric = core.Orthogonal
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown metric %q", req.Metric))
		return
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s%d", s.nextID)
	s.mu.Unlock()

	sess, err := newSession(id, req.Name, d, tc, opts, s.cfg.Debounce, s.now())
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, fmt.Errorf("initial check: %w", err))
		return
	}
	// Build the response before publishing the session: the moment it is
	// registered, concurrent edits may mutate rep and the engine counters
	// under the session lock, which this handler no longer holds.
	resp := CreateResponse{ID: id, Report: BuildReport(sess.rep, sess.eng)}
	s.register(sess)
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		infos = append(infos, sess.info())
	}
	// Stable order for scripts: by numeric id via the sN format.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && lessID(infos[j].ID, infos[j-1].ID); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

// lessID orders "sN" ids numerically.
func lessID(a, b string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	return a < b
}

// EditRequest is one edit batch.
type EditRequest struct {
	Edits []layout.Edit `json:"edits"`
}

// EditResponse acknowledges an applied batch. Generation is the session's
// total batch count; the report endpoint always reflects every batch
// acknowledged before the request.
type EditResponse struct {
	Applied    int    `json:"applied"`
	Generation int    `json:"generation"`
	Error      string `json:"error,omitempty"`
}

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
		return
	}
	var req EditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Edits) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("empty edit batch"))
		return
	}
	applied, gen, err := sess.applyEdits(req.Edits)
	resp := EditResponse{Applied: applied, Generation: gen}
	if err != nil {
		// The successful prefix is applied and will be rechecked; report
		// partial application so the client can reconcile.
		resp.Error = err.Error()
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
		return
	}
	rep, err := sess.report()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
		return
	}
	st, err := sess.statsSnapshot()
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return
	}
	sess.close()
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
