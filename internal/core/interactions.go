package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// checkInteractions is pipeline stage 5: everything that remains after
// element, symbol, and connection checking is spacing between elements
// and/or primitive symbols, enumerated by the upper-triangular interaction
// matrix of Figure 12 with its same-net / different-net / device-related
// subcases — plus the device-dependent cross-symbol rules: accidental
// transistors (Figure 8), contacts over gates (Figure 7), and bipolar base
// versus isolation (Figure 6).
func (c *checker) checkInteractions(ex *netlist.Extraction) {
	tc := c.tech
	maxGap := tc.MaxSpacing()

	var pf geom.PairFinder
	for i := range ex.Items {
		pf.AddRect(i, ex.Items[i].Bounds, int(ex.Items[i].Layer))
	}

	polyID, hasPoly := tc.LayerByName(tech.NMOSPoly)
	diffID, hasDiff := tc.LayerByName(tech.NMOSDiff)
	isoID, hasIso := tc.LayerByName(tech.BipIso)

	// Terminal-net sets per device: an element is "related" to a device
	// when it shares a net with one of the device's terminals (the paper:
	// "the subcases depend on whether or not the elements are related").
	devNets := make([]map[netlist.NetID]bool, len(ex.Netlist.Devices))
	netDevs := make(map[netlist.NetID]map[int]bool)
	for di := range ex.Netlist.Devices {
		set := make(map[netlist.NetID]bool, len(ex.Netlist.Devices[di].TerminalNets))
		for _, nid := range ex.Netlist.Devices[di].TerminalNets {
			set[nid] = true
			if netDevs[nid] == nil {
				netDevs[nid] = make(map[int]bool)
			}
			netDevs[nid][di] = true
		}
		devNets[di] = set
	}
	related := func(a, b *netlist.ConnItem) bool {
		if a.Dev >= 0 && a.Dev == b.Dev {
			return true
		}
		if a.Dev >= 0 && b.Net != netlist.NoNet && devNets[a.Dev][b.Net] {
			return true
		}
		if b.Dev >= 0 && a.Net != netlist.NoNet && devNets[b.Dev][a.Net] {
			return true
		}
		// Two interconnect elements whose nets meet at a common device are
		// related through it — e.g. the source and drain feed wires of one
		// transistor, whose separation is the channel, not a spacing rule.
		if a.Net != netlist.NoNet && b.Net != netlist.NoNet {
			da, db := netDevs[a.Net], netDevs[b.Net]
			if len(da) > len(db) {
				da, db = db, da
			}
			for di := range da {
				if db[di] {
					return true
				}
			}
		}
		return false
	}

	st := &c.rep.Stats
	pf.Pairs(maxGap, nil, func(p geom.Pair) {
		st.InteractionCandidates++
		a := &ex.Items[p.A.ID]
		b := &ex.Items[p.B.ID]
		sameDevice := a.Dev >= 0 && a.Dev == b.Dev

		// Accidental transistor (Figure 8): poly over diffusion outside a
		// single declared device. Implicit devices are not allowed.
		if hasPoly && hasDiff && !sameDevice &&
			((a.Layer == polyID && b.Layer == diffID) || (a.Layer == diffID && b.Layer == polyID)) {
			if a.Bounds.Overlaps(b.Bounds) {
				c.countCheck()
				if ov := a.Reg.Intersect(b.Reg); !ov.Empty() {
					c.add(Violation{
						Rule:     "DEV.ACCIDENTAL",
						Severity: Error,
						Detail:   "poly crosses diffusion outside a transistor symbol (implicit devices are not allowed)",
						Where:    ov.Bounds(),
						Path:     a.Path,
						Nets:     c.netNames(ex, a.Net, b.Net),
					})
					return // the spacing cell would double-report this overlap
				}
			}
		}

		rule := tc.Spacing(a.Layer, b.Layer)
		if rule.DiffNet == 0 && rule.SameNet == 0 {
			st.SkippedNoRule++
			return
		}
		// Figure 5b: a resistor keeps its spacing checks even against
		// related or same-net elements — a short across the body changes
		// the circuit. Its own internal geometry (same device) is stage
		// 2's business, not an interaction.
		resException := !sameDevice &&
			(c.devKeepsSameNetSpacing(ex, a.Dev) || c.devKeepsSameNetSpacing(ex, b.Dev))
		isRelated := related(a, b)
		if !c.opts.NoExemptions {
			if rule.ExemptRelated && isRelated && !resException {
				st.SkippedRelated++
				return
			}
		}
		if sameDevice {
			// Device-internal geometry is stage 2's business even under
			// the ablation; measuring a device against itself is
			// meaningless in any model.
			st.SkippedRelated++
			return
		}

		sameNet := a.Net != netlist.NoNet && a.Net == b.Net
		need := rule.DiffNet
		if sameNet && !c.opts.NoExemptions {
			need = rule.SameNet
			if need == 0 && resException {
				need = rule.DiffNet
			}
			if need == 0 {
				st.SkippedSameNetExempt++
				return
			}
		}
		if need == 0 {
			st.SkippedNoRule++
			return
		}

		// Figure 6b: devices that may legally touch isolation are exempt
		// from the base-isolation spacing cell.
		if hasIso && (a.Layer == isoID || b.Layer == isoID) {
			other := a
			if a.Layer == isoID {
				other = b
			}
			if c.devMayTouchIsolation(ex, other.Dev) {
				st.SkippedRelated++
				return
			}
		}

		// Same-layer touching pairs were adjudicated by the connection
		// stage (legal skeletal connection or CONN.ILLEGAL); measuring
		// them again would double-report.
		if a.Layer == b.Layer && a.Reg.Overlaps(b.Reg) {
			st.SkippedConnectionPairs++
			return
		}

		st.InteractionChecked++
		c.countCheck()
		var dist float64
		if c.opts.Metric == Orthogonal {
			dist = float64(geom.RegionOrthoDist(a.Reg, b.Reg))
		} else {
			d, _, _ := geom.RegionDist(a.Reg, b.Reg)
			dist = d
		}
		// A touching, related element under the resistor exception is the
		// legitimate connection into the resistor terminal, not a short.
		if resException && isRelated && dist == 0 {
			st.SkippedRelated++
			return
		}
		if dist < float64(need) {
			severity := Error
			extra := ""
			if m := c.opts.ProcessSpacing; m != nil && dist > 0 {
				// Second opinion from the Eq. 1 process model: translate
				// by worst-case misalignment when the layers differ, then
				// require the printed images to keep the margin.
				mis := 0.0
				if a.Layer != b.Layer {
					mis = c.opts.Misalign
					if mis == 0 && tc.Lambda > 0 {
						mis = float64(tc.Lambda) / 2
					}
				}
				if m.SpacingOK(a.Reg, b.Reg, mis, c.opts.ProcessMargin) {
					severity = Warning
					extra = " (process model predicts a safe printed gap; downgraded)"
					st.ProcessDowngrades++
				}
			}
			sub := "diff"
			if sameNet {
				sub = "same"
			}
			la, lb := tc.Layer(a.Layer).CIF, tc.Layer(b.Layer).CIF
			if la > lb {
				la, lb = lb, la
			}
			c.add(Violation{
				Rule:     fmt.Sprintf("S.%s.%s.%s", la, lb, sub),
				Severity: severity,
				Detail: fmt.Sprintf("spacing %.0f < %d between %s and %s (%s net)%s",
					dist, need, tc.Layer(a.Layer).Name, tc.Layer(b.Layer).Name, sub, extra),
				Where: a.Bounds.Union(b.Bounds).Intersect(a.Bounds.Expand(need).Union(b.Bounds.Expand(need))),
				Path:  a.Path,
				Layer: a.Layer,
				Nets:  c.netNames(ex, a.Net, b.Net),
			})
		}
	})

	// Contact cuts over gates, cross-symbol (Figure 7): a cut from any
	// OTHER device or interconnect must not land on a transistor channel.
	c.checkGateKeepouts(ex)
	// Bipolar base vs isolation, cross-symbol (Figure 6a).
	c.checkBaseKeepouts(ex)
}

// devKeepsSameNetSpacing reports whether the item's device demands spacing
// checks even on its own net (resistors, Figure 5b).
func (c *checker) devKeepsSameNetSpacing(ex *netlist.Extraction, dev int) bool {
	if dev < 0 {
		return false
	}
	info := ex.Netlist.Devices[dev].Info
	return info != nil && !info.SpacingExemptSameNet
}

// devMayTouchIsolation reports whether the item's device may legally
// connect to isolation (Figure 6b resistors).
func (c *checker) devMayTouchIsolation(ex *netlist.Extraction, dev int) bool {
	if dev < 0 {
		return false
	}
	info := ex.Netlist.Devices[dev].Info
	return info != nil && info.MayTouchIsolation
}

// checkGateKeepouts flags contact cuts overlapping MOS channels of other
// devices.
func (c *checker) checkGateKeepouts(ex *netlist.Extraction) {
	if len(ex.Gates) == 0 {
		return
	}
	cutID, ok := c.tech.LayerByName(tech.NMOSContact)
	if !ok {
		return
	}
	var pf geom.PairFinder
	for i := range ex.Items {
		if ex.Items[i].Layer == cutID {
			pf.AddRect(i, ex.Items[i].Bounds, 0)
		}
	}
	n := pf.Len()
	for gi := range ex.Gates {
		pf.AddRect(len(ex.Items)+gi, ex.Gates[gi].Bounds, 1)
	}
	if n == 0 {
		return
	}
	pf.Pairs(0, func(a, b geom.Item) bool { return a.Tag != b.Tag }, func(p geom.Pair) {
		cutItem, gateItem := p.A, p.B
		if cutItem.Tag == 1 {
			cutItem, gateItem = gateItem, cutItem
		}
		item := &ex.Items[cutItem.ID]
		gate := &ex.Gates[gateItem.ID-len(ex.Items)]
		if item.Dev == gate.Dev {
			return // in-symbol case handled by stage 2
		}
		c.countCheck()
		if ov := item.Reg.Intersect(gate.Reg); !ov.Empty() {
			c.add(Violation{
				Rule:     "DEV.GATE.CONTACT",
				Severity: Error,
				Detail:   "contact cut over the active gate of a transistor (Figure 7)",
				Where:    ov.Bounds(),
				Path:     item.Path,
			})
		}
	})
}

// checkBaseKeepouts flags isolation geometry approaching a bipolar
// transistor base (Figure 6a), from any other symbol or interconnect.
func (c *checker) checkBaseKeepouts(ex *netlist.Extraction) {
	if len(ex.BaseKeepouts) == 0 {
		return
	}
	isoID, ok := c.tech.LayerByName(tech.BipIso)
	if !ok {
		return
	}
	for ki := range ex.BaseKeepouts {
		ko := &ex.BaseKeepouts[ki]
		search := ko.Bounds.Expand(ko.Clearance)
		for i := range ex.Items {
			item := &ex.Items[i]
			if item.Layer != isoID || item.Dev == ko.Dev {
				continue
			}
			if !item.Bounds.Touches(search) {
				continue
			}
			c.countCheck()
			d, _, _ := geom.RegionDist(item.Reg, ko.Reg)
			if d < float64(ko.Clearance) || (ko.Clearance == 0 && item.Reg.Overlaps(ko.Reg)) {
				c.add(Violation{
					Rule:     "DEV.NPN.ISO",
					Severity: Error,
					Detail:   "isolation touches or approaches a transistor base (Figure 6a)",
					Where:    item.Bounds.Intersect(search),
					Path:     ex.Netlist.Devices[ko.Dev].Path,
				})
			}
		}
	}
}
