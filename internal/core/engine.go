package core

import (
	"context"
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/tech"
)

// Engine is the incremental check session: the six-stage pipeline of
// Check rebuilt around content-addressed caches at the symbol-definition
// level. A long-lived Engine turns the iterate-edit-recheck loop into
// paying only for what changed:
//
//	eng := core.NewEngine(tc, opts)
//	rep, err := eng.Check(design)      // cold: populates the caches
//	...edit some symbols...
//	rep, err = eng.Recheck(design)     // warm: re-derives only dirty subtrees
//
// Cache keying follows layout.ContentHashes: stage-1 element results by a
// symbol's own content hash, stage-2 device analyses likewise, extraction
// artifacts and interaction adjudications by the subtree hash. Dirtiness
// needs no explicit invalidation — an edited definition simply hashes to a
// new key, and every ancestor's subtree hash changes with it (the
// dirty-propagation walk up the call graph), so stale entries are never
// reachable and age out of the caches.
//
// A warm Recheck returns a Report byte-identical to what a cold Check of
// the same design state returns, except for wall-clock stage Durations;
// Fingerprint captures exactly the duration-free content that is
// guaranteed identical.
//
// The interaction stage replays one adjudicated tally per (definition,
// net-environment signature): per-pair geometry is measured once per
// definition — spacing distances are invariant under the Manhattan
// instance transforms — and the Figure 12 subcase logic is re-run only
// when an instance's surrounding connectivity actually differs (see
// signature below). Options are fixed at engine construction; Workers is
// ignored (the decomposed stage does definition-level work exactly once,
// so there is nothing left worth sharding on this path).
//
// An Engine is not safe for concurrent use. Reports share structure with
// the engine's caches; treat them as immutable.
type Engine struct {
	tc   *tech.Technology
	ct   *tech.Compiled
	opts Options

	cache *netlist.Cache
	elems map[layout.Hash]*elemEntry
	rules map[layout.Hash]*ruleEntry
	inter map[layout.Hash]*defInter

	elemGen  map[layout.Hash]int
	ruleGen  map[layout.Hash]int
	interGen map[layout.Hash]int

	prev map[string]layout.Hash // previous run's subtree hashes, by symbol name
	runs int
	last EngineStats

	// replay holds everything needed to reproduce the interaction stage
	// of the previous run when extraction reports a root patch (see
	// tryReplayInteractions): the per-run net facts, the root instance's
	// live tally, and the aggregated child-instance results.
	replay replayState

	// Construction-stage cache for the same patched-root replay: the
	// issues of the previous run stay valid except for the patched nets'
	// bounds, which are rewritten in place.
	consNL     *netlist.Netlist
	consIssues []netlist.Issue
	consValid  bool

	// poisoned, once set, refuses every further run: a panic that escaped
	// mid-run may have left the caches half-written, and a half-written
	// cache can silently corrupt reports. The owner (e.g. a dicheckd
	// session recovering a handler panic) quarantines the engine with
	// Poison instead of guessing which entries survived.
	poisoned error
}

// replayState is the recorded interaction stage of the previous run,
// replayable when extraction patched the root instead of rebuilding it.
// Everything instance-structural (net facts, child tallies, counters) is
// unchanged by such a patch; only the root definition's own pairs can
// differ, and those are patched through patchRootInter.
type replayState struct {
	valid bool
	nl    *netlist.Netlist         // pointer identity of the extraction replayed
	root  *netlist.SymbolArtifacts // pointer identity of the root artifact
	inst  int                      // instance count (defensive)

	hasDev []bool          // per global net: carries a device terminal
	shared map[uint64]bool // net-pair (lo<<32|hi): nets share a device

	rootTally   *interactionTally // instance 0's live tally (nil: no pairs)
	childViol   []Violation       // instances 1.. violations, fully resolved
	child       interCounters     // instances 1.. counter deltas
	childHashes []layout.Hash     // distinct child definition hashes (cache refresh)
}

// interCounters is the interaction stage's additive counter set.
type interCounters struct {
	candidates, checked            int
	noRule, sameNet, related, conn int
	downgrades, checks             int
}

func captureCounters(c *checker) interCounters {
	st := &c.rep.Stats
	ic := interCounters{
		candidates: st.InteractionCandidates,
		checked:    st.InteractionChecked,
		noRule:     st.SkippedNoRule,
		sameNet:    st.SkippedSameNetExempt,
		related:    st.SkippedRelated,
		conn:       st.SkippedConnectionPairs,
		downgrades: st.ProcessDowngrades,
	}
	if c.curStage != nil {
		ic.checks = c.curStage.Checks
	}
	return ic
}

func (a interCounters) sub(b interCounters) interCounters {
	return interCounters{
		candidates: a.candidates - b.candidates,
		checked:    a.checked - b.checked,
		noRule:     a.noRule - b.noRule,
		sameNet:    a.sameNet - b.sameNet,
		related:    a.related - b.related,
		conn:       a.conn - b.conn,
		downgrades: a.downgrades - b.downgrades,
		checks:     a.checks - b.checks,
	}
}

func (a interCounters) addTo(c *checker) {
	st := &c.rep.Stats
	st.InteractionCandidates += a.candidates
	st.InteractionChecked += a.checked
	st.SkippedNoRule += a.noRule
	st.SkippedSameNetExempt += a.sameNet
	st.SkippedRelated += a.related
	st.SkippedConnectionPairs += a.conn
	st.ProcessDowngrades += a.downgrades
	if c.curStage != nil {
		c.curStage.Checks += a.checks
	}
}

// elemEntry caches one definition's stage-1 result.
type elemEntry struct {
	vs       []Violation
	checks   int
	elements int
}

// ruleEntry caches one definition's layer-rule stage result. Keyed by the
// definition's own content hash: layer rules read only the definition's
// own merged geometry, never its children.
type ruleEntry struct {
	vs     []Violation
	checks int
}

// EngineStats reports cache effectiveness for the most recent run.
type EngineStats struct {
	Runs         int
	Symbols      int // symbols reachable from Top in the last run
	DirtySymbols int // symbols whose subtree hash changed since the prior run
	ArtifactDefs int // definition artifacts live in the extraction cache
	InterBuilt   int // interaction definition caches built this run
	InterReused  int // interaction definition caches replayed this run
	SigMisses    int // instance signatures that had to adjudicate
	SigHits      int // instance signatures replayed from a cached tally

	// Array-regularity context cache (extraction span derivation):
	// cumulative over the engine's lifetime, not per run.
	CtxHits   int // span contexts derived by translating a same-class representative
	CtxMisses int // span contexts built from scratch (one per distinct class)

	// WindowPatched reports that the last run took the windowed-recheck
	// fast path: extraction patched the previous root in place and the
	// interaction stage replayed its recorded result.
	WindowPatched bool
}

// NewEngine creates an incremental check session for one technology and
// option set. Options are captured by value; construct a new engine to
// check under different options.
func NewEngine(tc *tech.Technology, opts Options) *Engine {
	return &Engine{
		tc:       tc,
		ct:       tc.Compile(),
		opts:     opts,
		cache:    netlist.NewCache(),
		elems:    make(map[layout.Hash]*elemEntry),
		rules:    make(map[layout.Hash]*ruleEntry),
		inter:    make(map[layout.Hash]*defInter),
		elemGen:  make(map[layout.Hash]int),
		ruleGen:  make(map[layout.Hash]int),
		interGen: make(map[layout.Hash]int),
	}
}

// Stats returns cache-effectiveness counters for the most recent run.
func (e *Engine) Stats() EngineStats { return e.last }

// Poison marks the engine permanently unusable; every subsequent run
// fails with the reason. Call it after recovering a panic that unwound
// through a run — the caches may be half-written, and refusing is the
// only answer that preserves the fingerprint-parity contract.
func (e *Engine) Poison(reason error) {
	if e.poisoned == nil {
		e.poisoned = reason
	}
}

// Poisoned returns the poison reason, nil while the engine is healthy.
func (e *Engine) Poisoned() error { return e.poisoned }

// Check runs the full pipeline, reusing every cache entry whose content
// hash still matches. On a fresh engine this is the cold run that
// populates the caches.
func (e *Engine) Check(d *layout.Design) (*Report, error) {
	return e.run(context.Background(), d)
}

// CheckContext is Check under a context: the engine observes ctx at
// every pipeline-stage boundary and aborts with ctx.Err(). Cancellation
// is cooperative at stage granularity — a stage in flight runs to
// completion so the content-addressed caches are never torn; everything
// those completed stages cached stays valid for the next run.
func (e *Engine) CheckContext(ctx context.Context, d *layout.Design) (*Report, error) {
	return e.run(ctx, d)
}

// Recheck is Check for the edit loop: identical semantics, provided so
// call sites read as intent. The returned report is byte-identical
// (modulo stage durations) to what a cold Check of the same design state
// would return.
func (e *Engine) Recheck(d *layout.Design) (*Report, error) {
	return e.run(context.Background(), d)
}

// RecheckContext is Recheck under a context; see CheckContext for the
// cancellation contract.
func (e *Engine) RecheckContext(ctx context.Context, d *layout.Design) (*Report, error) {
	return e.run(ctx, d)
}

func (e *Engine) run(ctx context.Context, d *layout.Design) (*Report, error) {
	if e.poisoned != nil {
		return nil, fmt.Errorf("core: engine poisoned: %w", e.poisoned)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	e.runs++
	stats := EngineStats{Runs: e.runs}

	dirty, hashes := d.DirtySymbols(e.prev)
	stats.Symbols = len(hashes)
	stats.DirtySymbols = len(dirty)
	cur := make(map[string]layout.Hash, len(hashes))
	for s, h := range hashes {
		cur[s.Name] = h.Subtree
	}
	e.prev = cur

	// Consume the accumulated edit records. When the only dirty symbol is
	// the top and its edits were all window-scoped in-place moves, hand
	// the window to extraction, which may patch the previous root instead
	// of re-deriving it (the windowed recheck).
	var win *netlist.EditWindow
	for _, s := range d.SortedSymbols() {
		info := s.TakeDirty()
		if s == d.Top && info.Seen && !info.Full && len(info.Elems) > 0 {
			win = &netlist.EditWindow{Elems: info.Elems, Window: info.Window}
		}
	}
	if len(dirty) != 1 || dirty[0] != d.Top {
		win = nil
	}

	rep := &Report{Design: d, Tech: e.tc}
	c := &checker{design: d, tech: e.tc, ct: e.ct, opts: e.opts, rep: rep}

	// stage runs one pipeline stage unless the context has expired; the
	// first expiry observed suppresses every following stage so the run
	// aborts at the next boundary.
	var ctxErr error
	stage := func(name string, fn func()) {
		if ctxErr != nil {
			return
		}
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return
		}
		c.stage(name, fn)
	}

	stage("check elements", func() { e.checkElements(c, d, hashes) })
	stage("check primitive symbols", func() { e.checkPrimitiveSymbols(c, d, hashes) })
	stage("check layer rules", func() { e.checkLayerRules(c, d, hashes) })

	var inc *netlist.IncExtraction
	stage("generate hierarchical net list", func() {
		var issues []netlist.Issue
		var err error
		inc, issues, err = netlist.ExtractVirtualWindow(d, e.tc, e.cache, hashes, win)
		if err != nil {
			c.add(Violation{Rule: "STRUCT.EXTRACT", Severity: Error, Detail: err.Error()})
			return
		}
		rep.Netlist = inc.Netlist
		for _, is := range issues {
			c.add(Violation{Rule: is.Rule, Severity: Warning, Detail: is.Detail, Where: is.Where})
		}
	})
	if inc != nil {
		stage("check legal connections", func() { e.checkConnections(c, inc) })
		if !e.opts.SkipInteractions {
			stage("check interactions", func() { e.checkInteractions(c, inc, &stats) })
		}
		if !e.opts.SkipConstruction {
			stage("check construction rules", func() { e.checkConstruction(c, inc) })
		}
		if e.opts.Reference != nil {
			stage("check netlist reference", func() {
				for _, is := range netlist.Compare(inc.Netlist, e.opts.Reference) {
					c.add(Violation{Rule: is.Rule, Severity: Error, Detail: is.Detail, Where: is.Where})
				}
			})
		}
	}
	if ctxErr != nil {
		// Aborted between stages. The content-addressed caches filled by
		// the completed stages stay valid (stale keys are simply never
		// reachable), but the run-scoped replay records — the interaction
		// replay and the construction issue cache — may describe a run
		// that never finished; drop them so the next run rebuilds from
		// the durable caches instead of replaying a phantom.
		e.replay = replayState{}
		e.consValid = false
		return nil, ctxErr
	}
	sortViolations(rep.Violations)

	stats.ArtifactDefs = e.cache.Len()
	stats.CtxHits, stats.CtxMisses = e.cache.ContextStats()
	stats.WindowPatched = inc != nil && inc.Patch != nil
	e.evict()
	e.last = stats
	return rep, nil
}

// checkElements is stage 1 with per-definition caching by own hash.
func (e *Engine) checkElements(c *checker, d *layout.Design, hashes map[*layout.Symbol]layout.SymbolHashes) {
	for _, s := range d.SortedSymbols() {
		if s.IsPrimitive() {
			continue
		}
		key := hashes[s].Own
		ent, ok := e.elems[key]
		if !ok {
			vs, checks, elements := elementChecks(s, e.tc)
			ent = &elemEntry{vs: vs, checks: checks, elements: elements}
			e.elems[key] = ent
		}
		e.elemGen[key] = e.runs
		c.rep.Stats.ElementsChecked += ent.elements
		if c.curStage != nil {
			c.curStage.Checks += ent.checks
		}
		c.rep.Violations = append(c.rep.Violations, ent.vs...)
	}
}

// checkPrimitiveSymbols is stage 2 with device analyses memoized by own
// hash (shared with extraction's device recognition).
func (e *Engine) checkPrimitiveSymbols(c *checker, d *layout.Design, hashes map[*layout.Symbol]layout.SymbolHashes) {
	for _, s := range d.SortedSymbols() {
		if !s.IsPrimitive() {
			continue
		}
		c.rep.Stats.SymbolDefsChecked++
		c.countCheck()
		_, probs := e.cache.Analyze(s, hashes[s].Own, e.tc)
		for _, v := range deviceProblemViolations(s, probs) {
			c.add(v)
		}
	}
}

// checkLayerRules is the layer-rule stage with per-definition caching by
// own hash: the rule kernels see only a definition's own merged geometry,
// so an entry stays valid however the subtree beneath changes.
func (e *Engine) checkLayerRules(c *checker, d *layout.Design, hashes map[*layout.Symbol]layout.SymbolHashes) {
	for _, s := range d.SortedSymbols() {
		if s.IsPrimitive() {
			continue
		}
		key := hashes[s].Own
		ent, ok := e.rules[key]
		if !ok {
			vs, checks := layerRuleChecks(s, e.tc, e.ct)
			ent = &ruleEntry{vs: vs, checks: checks}
			e.rules[key] = ent
		}
		e.ruleGen[key] = e.runs
		if c.curStage != nil {
			c.curStage.Checks += ent.checks
		}
		c.rep.Violations = append(c.rep.Violations, ent.vs...)
	}
}

// checkConnections is stage 4 over a virtual extraction: the illegal
// pairs were gathered from per-definition candidates; the items resolve
// through the artifact accessors (Extraction.Items is not materialized).
func (e *Engine) checkConnections(c *checker, inc *netlist.IncExtraction) {
	c.rep.Stats.DeviceInstances = len(inc.Netlist.Devices)
	for _, pair := range inc.IllegalPairs {
		a := inc.Root.ResolveItem(pair[0])
		b := inc.Root.ResolveItem(pair[1])
		c.countCheck()
		layer := c.tech.Layer(a.Layer)
		c.add(Violation{
			Rule:     "CONN.ILLEGAL",
			Severity: Error,
			Detail: fmt.Sprintf("%s elements touch without skeletal connection (butting or shallow overlap; overlap by at least the minimum width instead)",
				layer.Name),
			Where: a.Bounds.Intersect(b.Bounds),
			Path:  a.Path,
			Layer: a.Layer,
			Nets:  c.netNames(inc.Extraction, a.Net, b.Net),
		})
	}
}

// evict ages out cache entries unused for several runs, bounding memory
// for long-lived sessions that churn through design states.
func (e *Engine) evict() {
	const keep = 8
	for h, g := range e.elemGen {
		if e.runs-g >= keep {
			delete(e.elemGen, h)
			delete(e.elems, h)
		}
	}
	for h, g := range e.ruleGen {
		if e.runs-g >= keep {
			delete(e.ruleGen, h)
			delete(e.rules, h)
		}
	}
	for h, g := range e.interGen {
		if e.runs-g >= keep {
			delete(e.interGen, h)
			delete(e.inter, h)
		}
	}
}

// ---- Incremental interaction stage ------------------------------------

// defPair is one candidate pair at a definition's level, with lazily
// memoized geometry. All geometric measurements are invariant under the
// Manhattan transforms instances are placed with, so they are computed at
// most once per definition, not once per instance or per run.
type defPair struct {
	a, b int // local item indices, a < b

	flags     uint8
	accBounds geom.Rect
	accOK     bool
	overlaps  bool
	distVal   float64
	procVal   bool
}

const (
	gAcc uint8 = 1 << iota
	gOverlap
	gDist
	gProc
)

// defInter is the per-definition interaction cache: the candidate pairs
// whose LCA is this definition, the local net classes their adjudication
// can depend on, and one adjudicated tally per observed net-environment
// signature.
type defInter struct {
	art *netlist.SymbolArtifacts

	pairs []defPair

	// candClasses is the signature domain: every local class appearing in
	// a pair, plus the terminal classes of every device appearing in a
	// pair (the related-through-device subcase reads those).
	candClasses []int
	classPos    map[int]int

	// classPairs are the distinct unordered class pairs for which the
	// shares-a-device relation is part of the signature.
	classPairs   [][2]int
	classPairPos map[[2]int]int

	termClasses map[int][]int // local device -> sorted distinct terminal classes

	// items holds frame-resolved copies of pair-endpoint items when the
	// artifact is virtual (its embedded items live in child frames); pair
	// indices then refer to this slice instead of art.Items.
	items []netlist.ConnItem

	// itemIdx maps global item index -> position in items (-1: not yet a
	// pair endpoint). Retained on virtual artifacts so a root patch can
	// resolve the moved items' new pairs without a rebuild.
	itemIdx []int32

	// netFree marks definitions whose every candidate pair is internal to
	// one device: adjudication never consults the net environment (the
	// same-device subcase decides first), so one tally replays for every
	// instance without computing a signature. True for all primitive
	// definitions — the common case by instance count.
	netFree   bool
	freeTally *interactionTally

	// fresh marks an entry produced by the parallel prebuild phase that no
	// instance has consumed yet (the first consumer reports the build in
	// the run stats, keeping them identical to the serial path's).
	fresh bool

	sigs map[string]*interactionTally

	// Keepout checks (contact-over-gate, isolation-vs-base) have no net
	// dependence at all, so one tally per definition replays for every
	// instance and every signature.
	keepBuilt    bool
	gateT, baseT keepTally
}

// keepTally is the replayable result of a definition's keepout checks.
type keepTally struct {
	checks int
	vs     []violationDraft // Nets unused (drafts carry NoNet)
}

// defInterFor builds (or fetches) the interaction cache of one definition.
// An entry is valid only for the exact artifact value it was built from
// (pointer identity): the extraction cache recycles a retired root's
// arrays in place, so a content hash seen again after intervening edits
// may name a new artifact, and the stale entry's item indices must not be
// replayed against it.
func (e *Engine) defInterFor(art *netlist.SymbolArtifacts, maxGap int64, stats *EngineStats) *defInter {
	if di, ok := e.inter[art.Hash]; ok && di.art == art {
		e.interGen[art.Hash] = e.runs
		if di.fresh {
			// Prebuilt in this run's parallel phase: the first instance to
			// reach it reports the build, exactly as the serial path would.
			di.fresh = false
			stats.InterBuilt++
		} else {
			stats.InterReused++
		}
		return di
	}
	di := e.buildDefInter(art, maxGap)
	e.inter[art.Hash] = di
	e.interGen[art.Hash] = e.runs
	stats.InterBuilt++
	return di
}

// buildDefInter computes a definition's interaction cache without touching
// the engine's cache maps or stats. It reads only immutable artifact and
// technology state, so distinct definitions may build concurrently.
func (e *Engine) buildDefInter(art *netlist.SymbolArtifacts, maxGap int64) *defInter {
	di := &defInter{
		art:          art,
		classPos:     make(map[int]int),
		classPairPos: make(map[[2]int]int),
		termClasses:  make(map[int][]int),
		sigs:         make(map[string]*interactionTally),
	}
	di.netFree = true
	var itemIdx []int32
	var layers []tech.LayerID
	resolve := func(gi int) int {
		if k := itemIdx[gi]; k >= 0 {
			return int(k)
		}
		k := len(di.items)
		di.items = append(di.items, art.ResolveItem(gi))
		itemIdx[gi] = int32(k)
		return k
	}
	layerOf := func(gi int) tech.LayerID {
		if layers != nil {
			return layers[gi]
		}
		return art.Items[gi].Layer
	}
	if art.Virtual {
		// Flat per-item tables replace per-candidate map lookups and span
		// binary searches: the callback below runs once per sweep
		// candidate, the hottest loop of a definition (re)build.
		n := art.NumItems()
		itemIdx = make([]int32, n)
		for i := range itemIdx {
			itemIdx[i] = -1
		}
		layers = make([]tech.LayerID, n)
		for i := 0; i < art.OwnItemEnd(); i++ {
			layers[i] = art.Items[i].Layer
		}
		for si := range art.Children {
			sp := &art.Children[si]
			items := sp.SpanItems()
			for k := range items {
				layers[sp.ItemStart+k] = items[k].Layer
			}
		}
	}
	art.CrossItemPairs(maxGap, func(i, j int) {
		if i > j {
			i, j = j, i
		}
		// Same pre-bucketing gate as the chip-level sweep's pair filter:
		// layers that can never interact are dropped before the pair is
		// recorded, so candidate counters stay identical across pipelines.
		if !e.ct.Interacts(layerOf(i), layerOf(j)) {
			return
		}
		pa, pb := i, j
		if art.Virtual {
			pa, pb = resolve(i), resolve(j)
		}
		di.pairs = append(di.pairs, defPair{a: pa, b: pb})
		di.registerPairMeta(pa, pb)
	})
	if art.Virtual {
		di.itemIdx = itemIdx
	}
	return di
}

// addClass records one local net class in the signature domain.
func (di *defInter) addClass(cl int) {
	if cl < 0 {
		return
	}
	if _, ok := di.classPos[cl]; !ok {
		di.classPos[cl] = len(di.candClasses)
		di.candClasses = append(di.candClasses, cl)
	}
}

// addDev records one local device's terminal classes.
func (di *defInter) addDev(dev int) {
	if dev < 0 {
		return
	}
	if _, ok := di.termClasses[dev]; ok {
		return
	}
	tns := di.art.Devices[dev].TerminalNets
	tcs := make([]int, 0, len(tns))
	for ti := range tns {
		cl := int(tns[ti].Net)
		dup := false
		for _, have := range tcs {
			if have == cl {
				dup = true
				break
			}
		}
		if !dup {
			tcs = append(tcs, cl)
		}
	}
	// Deterministic order for signature-independent iteration.
	for i := 1; i < len(tcs); i++ {
		for j := i; j > 0 && tcs[j-1] > tcs[j]; j-- {
			tcs[j-1], tcs[j] = tcs[j], tcs[j-1]
		}
	}
	di.termClasses[dev] = tcs
	for _, cl := range tcs {
		di.addClass(cl)
	}
}

// registerPairMeta folds one pair's endpoints into the signature-domain
// bookkeeping (classes, devices, class pairs, the netFree flag). Shared
// between the initial build and root-patch pair additions.
func (di *defInter) registerPairMeta(pa, pb int) {
	a, b := di.itemAt(pa), di.itemAt(pb)
	if a.Dev < 0 || a.Dev != b.Dev {
		di.netFree = false
	}
	di.addClass(int(a.Net))
	di.addClass(int(b.Net))
	di.addDev(a.Dev)
	di.addDev(b.Dev)
	if a.Net != netlist.NoNet && b.Net != netlist.NoNet {
		cp := [2]int{int(a.Net), int(b.Net)}
		if cp[0] > cp[1] {
			cp[0], cp[1] = cp[1], cp[0]
		}
		if _, ok := di.classPairPos[cp]; !ok {
			di.classPairPos[cp] = len(di.classPairs)
			di.classPairs = append(di.classPairs, cp)
		}
	}
}

// resolveLocal resolves a global item index into the pair-endpoint item
// table, appending on first use. Valid only when itemIdx was retained.
func (di *defInter) resolveLocal(gi int) int {
	if k := di.itemIdx[gi]; k >= 0 {
		return int(k)
	}
	k := len(di.items)
	di.items = append(di.items, di.art.ResolveItem(gi))
	di.itemIdx[gi] = int32(k)
	return k
}

// itemAt resolves a pair-endpoint index to its frame-correct item.
func (di *defInter) itemAt(k int) *netlist.ConnItem {
	if di.items != nil {
		return &di.items[k]
	}
	return &di.art.Items[k]
}

// netEnvSignature captures everything one instance's global net
// environment can contribute to pair adjudication at this definition:
//
//   - which candidate classes are merged with which (by external wiring),
//     as canonical partition labels;
//   - whether each candidate class's global net carries any device; and
//   - for each class pair under candidate pairs, whether the two global
//     nets share a device.
//
// Two instances with equal signatures adjudicate every pair identically —
// same branches, same counters, same violations (up to the instance
// transform and path) — so one cached tally serves them all.
func (e *Engine) netEnvSignature(di *defInter, inc *netlist.IncExtraction, ii int,
	hasDev []bool, shared map[uint64]bool, scratch *sigScratch) []byte {

	scratch.global = scratch.global[:0]
	scratch.labels = scratch.labels[:0]
	scratch.sig = scratch.sig[:0]
	scratch.epoch++
	next := 0
	for _, cl := range di.candClasses {
		g := inc.GlobalNet(ii, cl)
		scratch.global = append(scratch.global, g)
		var lbl int
		if scratch.labelSeen[g] == scratch.epoch {
			lbl = scratch.labelOf[g]
		} else {
			lbl = next
			next++
			scratch.labelSeen[g] = scratch.epoch
			scratch.labelOf[g] = lbl
		}
		scratch.labels = append(scratch.labels, lbl)
		// Labels are bounded by the definition's candidate class count;
		// four bytes keeps the encoding collision-free at any size a
		// design could reach in memory.
		scratch.sig = append(scratch.sig, byte(lbl), byte(lbl>>8), byte(lbl>>16), byte(lbl>>24))
		if hasDev[g] {
			scratch.sig = append(scratch.sig, 1)
		} else {
			scratch.sig = append(scratch.sig, 0)
		}
	}
	for _, cp := range di.classPairs {
		ga := scratch.global[di.classPos[cp[0]]]
		gb := scratch.global[di.classPos[cp[1]]]
		bit := byte(0)
		if ga == gb {
			if hasDev[ga] {
				bit = 1
			}
		} else {
			lo, hi := ga, gb
			if lo > hi {
				lo, hi = hi, lo
			}
			if shared[uint64(lo)<<32|uint64(uint32(hi))] {
				bit = 1
			}
		}
		scratch.sig = append(scratch.sig, bit)
	}
	return scratch.sig
}

// sigScratch holds signature-evaluation buffers reused across instances.
// Per-net label state is epoch-stamped (indexed by global net id) so
// resetting between instances is one counter increment, not a map clear.
type sigScratch struct {
	global    []netlist.NetID
	labels    []int
	sig       []byte
	labelOf   []int
	labelSeen []uint32
	epoch     uint32
}

// sigEnv implements pairEnv over a definition's local classes plus one
// instance's net-environment signature.
type sigEnv struct {
	di     *defInter
	labels []int
	hasDev []byte // per candClasses position
	share  []byte // per classPairs position
}

func (s *sigEnv) label(cl netlist.NetID) int {
	return s.labels[s.di.classPos[int(cl)]]
}

func (s *sigEnv) sameNet(a, b *netlist.ConnItem) bool {
	if a.Net == netlist.NoNet || b.Net == netlist.NoNet {
		return false
	}
	return s.label(a.Net) == s.label(b.Net)
}

func (s *sigEnv) devOnNet(dev int, net netlist.NetID) bool {
	want := s.label(net)
	for _, tcl := range s.di.termClasses[dev] {
		if s.labels[s.di.classPos[tcl]] == want {
			return true
		}
	}
	return false
}

func (s *sigEnv) related(a, b *netlist.ConnItem) bool {
	if a.Dev >= 0 && a.Dev == b.Dev {
		return true
	}
	if a.Dev >= 0 && b.Net != netlist.NoNet && s.devOnNet(a.Dev, b.Net) {
		return true
	}
	if b.Dev >= 0 && a.Net != netlist.NoNet && s.devOnNet(b.Dev, a.Net) {
		return true
	}
	if a.Net != netlist.NoNet && b.Net != netlist.NoNet {
		cp := [2]int{int(a.Net), int(b.Net)}
		if cp[0] > cp[1] {
			cp[0], cp[1] = cp[1], cp[0]
		}
		return s.share[s.di.classPairPos[cp]] != 0
	}
	return false
}

func (s *sigEnv) keepsSameNetSpacing(dev int) bool {
	if dev < 0 {
		return false
	}
	info := s.di.art.Devices[dev].Info
	return info != nil && !info.SpacingExemptSameNet
}

func (s *sigEnv) mayTouchIsolation(dev int) bool {
	if dev < 0 {
		return false
	}
	info := s.di.art.Devices[dev].Info
	return info != nil && info.MayTouchIsolation
}

// defPairGeom implements pairGeom with per-definition memoization.
type defPairGeom struct {
	p    *defPair
	opts *Options
}

func (g *defPairGeom) accOverlapBounds(a, b *netlist.ConnItem) (geom.Rect, bool) {
	if g.p.flags&gAcc == 0 {
		g.p.accBounds, g.p.accOK = geom.IntersectBounds(a.Reg, b.Reg)
		g.p.flags |= gAcc
	}
	return g.p.accBounds, g.p.accOK
}

func (g *defPairGeom) regOverlaps(a, b *netlist.ConnItem) bool {
	if g.p.flags&gOverlap == 0 {
		g.p.overlaps = a.Reg.Overlaps(b.Reg)
		g.p.flags |= gOverlap
	}
	return g.p.overlaps
}

func (g *defPairGeom) dist(a, b *netlist.ConnItem) float64 {
	if g.p.flags&gDist == 0 {
		if g.opts.Metric == Orthogonal {
			g.p.distVal = float64(geom.RegionOrthoDist(a.Reg, b.Reg))
		} else {
			d, _, _ := geom.RegionDist(a.Reg, b.Reg)
			g.p.distVal = d
		}
		g.p.flags |= gDist
	}
	return g.p.distVal
}

func (g *defPairGeom) processOK(a, b *netlist.ConnItem, mis, margin float64) bool {
	if g.p.flags&gProc == 0 {
		g.p.procVal = g.opts.ProcessSpacing.SpacingOK(a.Reg, b.Reg, mis, margin)
		g.p.flags |= gProc
	}
	return g.p.procVal
}

// buildKeepouts fills a definition's keepout tallies: every cross-owner
// (cut item, MOS gate) and (isolation item, base keepout) candidate whose
// LCA is this definition, adjudicated in local coordinates. The global
// sweeps of the chip-level checker enumerate exactly these pairs summed
// over instances (a pair of distinct devices separates into different
// owners at its LCA), so replaying the tallies reproduces the same check
// counts and violations without any per-run chip-wide sweep.
func (e *Engine) buildKeepouts(di *defInter, lay keepLayers) {
	di.keepBuilt = true
	art := di.art
	if len(art.Children) == 0 {
		// A primitive definition holds a single device; its own cuts vs
		// its own gate are the same device, which the keepout rules skip.
		return
	}
	spanOfDev := func(dev int) int {
		for si := range art.Children {
			if dev >= art.Children[si].DevStart && dev < art.Children[si].DevEnd {
				return si
			}
		}
		return -1
	}
	// Per-owner item lists for the two probe layers: own items first,
	// then each span straight out of the shared embedding (works whether
	// or not the artifact materialized its flattened arrays).
	var ownCuts, ownIsos []int
	spanCuts := make([][]int, len(art.Children))
	spanIsos := make([][]int, len(art.Children))
	classify := func(it *netlist.ConnItem, gi, si int) {
		if lay.hasCut && it.Layer == lay.cutID {
			if si < 0 {
				ownCuts = append(ownCuts, gi)
			} else {
				spanCuts[si] = append(spanCuts[si], gi)
			}
		}
		if lay.hasIso && it.Layer == lay.isoID {
			if si < 0 {
				ownIsos = append(ownIsos, gi)
			} else {
				spanIsos[si] = append(spanIsos[si], gi)
			}
		}
	}
	for i := 0; i < art.OwnItemEnd(); i++ {
		classify(&art.Items[i], i, -1)
	}
	for si := range art.Children {
		sp := &art.Children[si]
		if !sp.Art.MayHaveLayer(lay.cutID, lay.hasCut) && !sp.Art.MayHaveLayer(lay.isoID, lay.hasIso) {
			continue
		}
		items := sp.SpanItems()
		for k := range items {
			classify(&items[k], sp.ItemStart+k, si)
		}
	}
	// Span adjacency under the widest probe (conservative: refined by the
	// exact per-pair predicates below). Gates deep inside one child can
	// never meet another child's cuts unless the children's bounds come
	// within the probe gap of each other.
	var maxClear int64
	for ki := range art.BaseKeepouts {
		if cl := art.BaseKeepouts[ki].Clearance; cl > maxClear {
			maxClear = cl
		}
	}
	adj := make([][]int, len(art.Children))
	for si := range art.Children {
		for sj := range art.Children {
			if si != sj && art.Children[si].Bounds.Expand(maxClear).Touches(art.Children[sj].Bounds) {
				adj[si] = append(adj[si], sj)
			}
		}
	}

	if lay.hasCut && len(art.Gates) > 0 {
		probe := func(gi int, items []int) {
			g := &art.Gates[gi]
			for _, i := range items {
				it := art.ItemView(i)
				if !it.Bounds.Touches(g.Bounds) {
					continue
				}
				di.gateT.checks++
				if ovb, ok := geom.IntersectBounds(it.Reg, g.Reg); ok {
					di.gateT.vs = append(di.gateT.vs, violationDraft{
						v: Violation{
							Rule:     "DEV.GATE.CONTACT",
							Severity: Error,
							Detail:   "contact cut over the active gate of a transistor (Figure 7)",
							Where:    ovb,
							Path:     art.ResolveItem(i).Path,
						},
						aNet: netlist.NoNet, bNet: netlist.NoNet,
					})
				}
			}
		}
		for gi := range art.Gates {
			owner := spanOfDev(art.Gates[gi].Dev)
			probe(gi, ownCuts)
			if owner >= 0 {
				for _, sj := range adj[owner] {
					probe(gi, spanCuts[sj])
				}
			}
		}
	}

	if lay.hasIso && len(art.BaseKeepouts) > 0 {
		probe := func(ki int, items []int) {
			ko := &art.BaseKeepouts[ki]
			search := ko.Bounds.Expand(ko.Clearance)
			for _, i := range items {
				it := art.ItemView(i)
				if !it.Bounds.Touches(search) {
					continue
				}
				di.baseT.checks++
				d, _, _ := geom.RegionDist(it.Reg, ko.Reg)
				if d < float64(ko.Clearance) || (ko.Clearance == 0 && it.Reg.Overlaps(ko.Reg)) {
					di.baseT.vs = append(di.baseT.vs, violationDraft{
						v: Violation{
							Rule:     "DEV.NPN.ISO",
							Severity: Error,
							Detail:   "isolation touches or approaches a transistor base (Figure 6a)",
							Where:    it.Bounds.Intersect(search),
							Path:     art.Devices[ko.Dev].Path,
						},
						aNet: netlist.NoNet, bNet: netlist.NoNet,
					})
				}
			}
		}
		for ki := range art.BaseKeepouts {
			owner := spanOfDev(art.BaseKeepouts[ki].Dev)
			probe(ki, ownIsos)
			if owner >= 0 {
				for _, sj := range adj[owner] {
					probe(ki, spanIsos[sj])
				}
			}
		}
	}
}

// keepLayers carries the keepout probe layers.
type keepLayers struct {
	cutID, isoID   tech.LayerID
	hasCut, hasIso bool
}

// absorbKeepouts replays a definition's keepout tallies for one instance.
func (e *Engine) absorbKeepouts(c *checker, inc *netlist.IncExtraction, ii int, di *defInter) {
	for _, t := range []*keepTally{&di.gateT, &di.baseT} {
		if t.checks == 0 {
			continue
		}
		if c.curStage != nil {
			c.curStage.Checks += t.checks
		}
		inst := &inc.Instances[ii]
		for _, d := range t.vs {
			v := d.v
			v.Where = inst.T.ApplyRect(v.Where)
			v.Path = pathJoin(inc.InstPath(ii), v.Path)
			c.rep.Violations = append(c.rep.Violations, v)
		}
	}
}

// checkInteractions is the incremental stage 5: for every instance, look
// up (or adjudicate once) the definition-level tally for the instance's
// net-environment signature and fold it into the report; then run the
// global keepout sweeps exactly as the chip-level checker does.
func (e *Engine) checkInteractions(c *checker, inc *netlist.IncExtraction, stats *EngineStats) {
	if inc.Patch != nil && e.tryReplayInteractions(c, inc, stats) {
		return
	}
	e.replay = replayState{}
	ex := inc.Extraction
	maxGap := e.ct.MaxSpacing()

	// Global net facts feeding the signatures.
	hasDev := make([]bool, len(ex.Netlist.Nets))
	for i := range ex.Netlist.Nets {
		hasDev[i] = len(ex.Netlist.Nets[i].Terminals) > 0
	}
	shared := make(map[uint64]bool, 256)
	var netBuf []netlist.NetID
	for di := range ex.Netlist.Devices {
		netBuf = ex.Netlist.Devices[di].TerminalNetIDs(netBuf[:0])
		for i := 0; i < len(netBuf); i++ {
			for j := i + 1; j < len(netBuf); j++ {
				lo, hi := netBuf[i], netBuf[j]
				if lo > hi {
					lo, hi = hi, lo
				}
				shared[uint64(lo)<<32|uint64(uint32(hi))] = true
			}
		}
	}

	var keep keepLayers
	keep.cutID, keep.hasCut = e.ct.Cut()
	keep.isoID, keep.hasIso = e.ct.Isolation()
	// The chip-level gate sweep bails out when no cut geometry exists at
	// all; checks and violations stay identical either way (a definition
	// tally only ever counts real pairs), so the conservative layer mask
	// is a pure work gate.
	keep.hasCut = keep.hasCut && inc.Root.MayHaveLayer(keep.cutID, true) && len(ex.Gates) > 0
	keep.hasIso = keep.hasIso && len(ex.BaseKeepouts) > 0

	// Parallel prebuild: the per-definition candidate sweeps (CrossItemPairs
	// plus the keepout probes) are the stage's dominant cost on a cold or
	// heavily edited run, and they are independent across definitions —
	// they read only immutable artifacts and the compiled technology. Build
	// every missing entry on the worker pool first; the serial replay loop
	// below then finds them cached. Tallies, signatures, and report
	// assembly stay serial, so the report is byte-identical to the
	// single-worker oracle (enforced by the engine parity tests).
	if workers := e.opts.workerCount(); workers > 1 {
		var order []*netlist.SymbolArtifacts
		seen := make(map[*netlist.SymbolArtifacts]bool, 64)
		for ii := range inc.Instances {
			art := inc.Instances[ii].Art
			if seen[art] {
				continue
			}
			seen[art] = true
			if di, ok := e.inter[art.Hash]; ok && di.art == art {
				continue
			}
			order = append(order, art)
		}
		if len(order) > 1 {
			dis := make([]*defInter, len(order))
			geom.RunShards(len(order), workers, func(k int) {
				dis[k] = e.buildDefInter(order[k], maxGap)
				e.buildKeepouts(dis[k], keep)
			})
			for k, art := range order {
				dis[k].fresh = true
				e.inter[art.Hash] = dis[k]
				e.interGen[art.Hash] = e.runs
			}
		}
	}

	scratch := &sigScratch{
		labelOf:   make([]int, len(ex.Netlist.Nets)),
		labelSeen: make([]uint32, len(ex.Netlist.Nets)),
	}
	var rootTally *interactionTally
	processInstance := func(ii int) {
		inst := &inc.Instances[ii]
		di := e.defInterFor(inst.Art, maxGap, stats)
		if !di.keepBuilt {
			e.buildKeepouts(di, keep)
		}
		e.absorbKeepouts(c, inc, ii, di)
		if len(di.pairs) == 0 {
			return
		}
		if di.netFree {
			// Every pair is device-internal: adjudication cannot touch
			// the net environment, so the one tally serves all instances.
			if di.freeTally == nil {
				di.freeTally = e.adjudicateDef(di, nil, nil)
				stats.SigMisses++
			} else {
				stats.SigHits++
			}
			if ii == 0 {
				rootTally = di.freeTally
			}
			e.absorbInstance(c, inc, ii, di.freeTally)
			return
		}
		sig := e.netEnvSignature(di, inc, ii, hasDev, shared, scratch)
		tally, ok := di.sigs[string(sig)]
		if !ok {
			tally = e.adjudicateDef(di, scratch.labels, sig)
			di.sigs[string(sig)] = tally
			stats.SigMisses++
		} else {
			stats.SigHits++
		}
		if ii == 0 {
			rootTally = tally
		}
		e.absorbInstance(c, inc, ii, tally)
	}
	processInstance(0)
	violMark := len(c.rep.Violations)
	mark := captureCounters(c)
	for ii := 1; ii < len(inc.Instances); ii++ {
		processInstance(ii)
	}

	// Record the stage for the windowed-recheck replay: the root
	// instance's tally stays live (patchRootInter edits it in place), the
	// child instances' results are frozen as resolved violations plus
	// counter deltas. Violations are copied — sortViolations reorders the
	// report's backing array after every run.
	hseen := make(map[layout.Hash]bool, 32)
	var childHashes []layout.Hash
	for ii := 1; ii < len(inc.Instances); ii++ {
		h := inc.Instances[ii].Art.Hash
		if !hseen[h] {
			hseen[h] = true
			childHashes = append(childHashes, h)
		}
	}
	e.replay = replayState{
		valid:       true,
		nl:          ex.Netlist,
		root:        inc.Root,
		inst:        len(inc.Instances),
		hasDev:      hasDev,
		shared:      shared,
		rootTally:   rootTally,
		childViol:   append([]Violation(nil), c.rep.Violations[violMark:]...),
		child:       captureCounters(c).sub(mark),
		childHashes: childHashes,
	}
}

// tryReplayInteractions reproduces the previous run's interaction stage
// when extraction patched the root in place: the child instances replay
// from the recorded aggregate, and the root definition's pair set is
// patched for the moved items (old pairs' contributions subtracted, new
// pairs adjudicated directly against the global net facts). Returns false
// — with the recorded state invalidated — when any precondition fails;
// the caller then runs the full stage, which re-records.
func (e *Engine) tryReplayInteractions(c *checker, inc *netlist.IncExtraction, stats *EngineStats) bool {
	r := &e.replay
	p := inc.Patch
	if !r.valid || r.nl != inc.Extraction.Netlist || r.root != inc.Root || r.inst != len(inc.Instances) {
		return false
	}
	di, ok := e.inter[p.PrevHash]
	if !ok || di.art != inc.Root {
		return false
	}
	if len(p.Items) > 0 && !e.patchRootInter(di, inc, p.Items) {
		// The cache entry may be half-patched; drop it so the full stage
		// rebuilds it from the (already patched) artifact.
		delete(e.inter, p.PrevHash)
		delete(e.interGen, p.PrevHash)
		r.valid = false
		return false
	}
	if inc.Root.Hash != p.PrevHash {
		delete(e.inter, p.PrevHash)
		delete(e.interGen, p.PrevHash)
		e.inter[inc.Root.Hash] = di
	}
	e.interGen[inc.Root.Hash] = e.runs
	for _, h := range r.childHashes {
		if _, ok := e.interGen[h]; ok {
			e.interGen[h] = e.runs
		}
	}
	stats.InterReused++
	stats.SigHits += r.inst

	e.absorbKeepouts(c, inc, 0, di)
	if r.rootTally != nil {
		e.absorbInstance(c, inc, 0, r.rootTally)
	}
	r.child.addTo(c)
	c.rep.Violations = append(c.rep.Violations, r.childViol...)
	return true
}

// patchRootInter rewrites the root definition's interaction cache for a
// set of moved own items: pairs with a moved endpoint are removed (their
// contributions subtracted from the live root tally), the items' geometry
// is refreshed, and the moved items' new candidate pairs are enumerated
// and adjudicated into the tally. The per-signature tally cache is
// cleared — pair membership changed, so any cached adjudication is stale.
func (e *Engine) patchRootInter(di *defInter, inc *netlist.IncExtraction, moved []int) bool {
	art := inc.Root
	if di.itemIdx == nil {
		return false
	}
	// Keepout tallies (contact-over-gate, isolation-vs-base) depend on
	// cut/isolation geometry; a moved item on those layers would
	// invalidate them. The netlist patch only moves foot-backed
	// interconnect, so in practice this never trips.
	if cutID, ok := e.ct.Cut(); ok {
		for _, gi := range moved {
			if art.ItemView(gi).Layer == cutID {
				return false
			}
		}
	}
	if isoID, ok := e.ct.Isolation(); ok {
		for _, gi := range moved {
			if art.ItemView(gi).Layer == isoID {
				return false
			}
		}
	}
	maxGap := e.ct.MaxSpacing()
	env := &directEnv{di: di, hasDev: e.replay.hasDev, shared: e.replay.shared}

	movedL := make(map[int]bool, len(moved)) // local item-table indices
	movedG := make(map[int]bool, len(moved)) // global item indices
	for _, gi := range moved {
		movedG[gi] = true
		if k := di.itemIdx[gi]; k >= 0 {
			movedL[int(k)] = true
		}
	}

	t := e.replay.rootTally
	// Subtract the removed pairs' contributions while di.items still
	// holds the old geometry (the memoized pair geometry plus the live
	// net environment reproduce the original adjudication exactly), then
	// compact them out.
	var oldT interactionTally
	n := 0
	for i := range di.pairs {
		pr := di.pairs[i]
		if movedL[pr.a] || movedL[pr.b] {
			g := defPairGeom{p: &pr, opts: &e.opts}
			adjudicatePair(e.tc, e.ct, e.opts, di.itemAt(pr.a), di.itemAt(pr.b), env, &g, &oldT)
			continue
		}
		di.pairs[n] = pr
		n++
	}
	di.pairs = di.pairs[:n]
	if t == nil {
		if oldT.candidates > 0 {
			return false
		}
	} else if !t.subtract(&oldT) {
		return false
	}

	// Refresh the moved items' geometry, then adjudicate their new pairs
	// straight into the live tally.
	for _, gi := range moved {
		if k := di.itemIdx[gi]; k >= 0 {
			di.items[k] = art.ResolveItem(gi)
		}
	}
	ownEnd := art.OwnItemEnd()
	for _, gi := range moved {
		la := art.ItemView(gi).Layer
		probe := art.ItemView(gi).Bounds.Expand(maxGap)
		addPair := func(gj int) {
			if !e.ct.Interacts(la, art.ItemView(gj).Layer) {
				return
			}
			i, j := gi, gj
			if i > j {
				i, j = j, i
			}
			pa, pb := di.resolveLocal(i), di.resolveLocal(j)
			di.registerPairMeta(pa, pb)
			if t == nil {
				t = &interactionTally{}
				e.replay.rootTally = t
			}
			pr := defPair{a: pa, b: pb}
			g := defPairGeom{p: &pr, opts: &e.opts}
			adjudicatePair(e.tc, e.ct, e.opts, di.itemAt(pa), di.itemAt(pb), env, &g, t)
			di.pairs = append(di.pairs, pr)
		}
		for j := 0; j < ownEnd; j++ {
			// Moved-moved pairs are emitted once, by the lower index.
			if j == gi || (movedG[j] && j < gi) {
				continue
			}
			if probe.Touches(art.Items[j].Bounds) {
				addPair(j)
			}
		}
		for si := range art.Children {
			sp := &art.Children[si]
			if !probe.Touches(sp.Bounds) {
				continue
			}
			items := sp.SpanItems()
			for k := range items {
				if probe.Touches(items[k].Bounds) {
					addPair(sp.ItemStart + k)
				}
			}
		}
	}
	// Pair membership changed: every cached per-signature adjudication of
	// this definition is stale.
	di.sigs = make(map[string]*interactionTally)
	di.freeTally = nil
	return true
}

// subtract removes another tally's contributions: counters subtract
// directly; each violation draft must find (and remove) one equal draft.
// Returns false when a draft has no match — the caller must then fall
// back to a full recompute.
func (t *interactionTally) subtract(o *interactionTally) bool {
	for _, d := range o.violations {
		found := -1
		for i := range t.violations {
			if draftEq(&t.violations[i], &d) {
				found = i
				break
			}
		}
		if found < 0 {
			return false
		}
		t.violations = append(t.violations[:found], t.violations[found+1:]...)
	}
	t.checks -= o.checks
	t.candidates -= o.candidates
	t.checked -= o.checked
	t.skippedNoRule -= o.skippedNoRule
	t.skippedSameNet -= o.skippedSameNet
	t.skippedRelated -= o.skippedRelated
	t.skippedConn -= o.skippedConn
	t.downgrades -= o.downgrades
	return true
}

// draftEq compares drafts field by field (Violation holds a Nets slice,
// which drafts never populate, so the comparison is over everything set).
func draftEq(a, b *violationDraft) bool {
	return a.aNet == b.aNet && a.bNet == b.bNet &&
		a.v.Rule == b.v.Rule && a.v.Severity == b.v.Severity &&
		a.v.Detail == b.v.Detail && a.v.Where == b.v.Where &&
		a.v.Symbol == b.v.Symbol && a.v.Path == b.v.Path && a.v.Layer == b.v.Layer
}

// directEnv implements pairEnv for the root frame against the global net
// facts directly — the root's local classes ARE the global net ids, so no
// signature indirection is needed. Branch for branch it decides exactly
// as sigEnv does under the root instance's signature (and as the
// chip-level checker does), which the parity tests lock in.
type directEnv struct {
	di     *defInter
	hasDev []bool
	shared map[uint64]bool
}

func (s *directEnv) sameNet(a, b *netlist.ConnItem) bool {
	return a.Net != netlist.NoNet && a.Net == b.Net
}

func (s *directEnv) devOnNet(dev int, net netlist.NetID) bool {
	for _, tcl := range s.di.termClasses[dev] {
		if netlist.NetID(tcl) == net {
			return true
		}
	}
	return false
}

func (s *directEnv) related(a, b *netlist.ConnItem) bool {
	if a.Dev >= 0 && a.Dev == b.Dev {
		return true
	}
	if a.Dev >= 0 && b.Net != netlist.NoNet && s.devOnNet(a.Dev, b.Net) {
		return true
	}
	if b.Dev >= 0 && a.Net != netlist.NoNet && s.devOnNet(b.Dev, a.Net) {
		return true
	}
	if a.Net != netlist.NoNet && b.Net != netlist.NoNet {
		if a.Net == b.Net {
			return s.hasDev[a.Net]
		}
		lo, hi := a.Net, b.Net
		if lo > hi {
			lo, hi = hi, lo
		}
		return s.shared[uint64(lo)<<32|uint64(uint32(hi))]
	}
	return false
}

func (s *directEnv) keepsSameNetSpacing(dev int) bool {
	if dev < 0 {
		return false
	}
	info := s.di.art.Devices[dev].Info
	return info != nil && !info.SpacingExemptSameNet
}

func (s *directEnv) mayTouchIsolation(dev int) bool {
	if dev < 0 {
		return false
	}
	info := s.di.art.Devices[dev].Info
	return info != nil && info.MayTouchIsolation
}

// checkConstruction is stage 6 with the same patched-root replay: the
// rule set reads only nets and devices, and a root patch changes nothing
// but the patched nets' bounds, so the previous issues are rewritten in
// place instead of recomputed.
func (e *Engine) checkConstruction(c *checker, inc *netlist.IncExtraction) {
	var issues []netlist.Issue
	done := false
	if inc.Patch != nil && e.consValid && e.consNL == inc.Netlist {
		issues, done = e.patchConstruction(inc, inc.Patch.Items)
	}
	if !done {
		issues = netlist.ConstructionRules(inc.Netlist, e.tc)
	}
	e.consNL, e.consIssues, e.consValid = inc.Netlist, issues, true
	for _, is := range issues {
		c.add(Violation{Rule: is.Rule, Severity: Error, Detail: is.Detail, Where: is.Where})
	}
}

// patchConstruction rewrites the previous run's construction issues for a
// root patch. Each patched item is the sole member of an anonymous net
// with no terminals (the netlist patch preconditions), so its one issue
// is the NET.FANOUT finding, keyed stably by (rule, detail) — only the
// Where moves. Issue order is preserved (sortIssues keys on rule and
// detail, both unchanged).
func (e *Engine) patchConstruction(inc *netlist.IncExtraction, moved []int) ([]netlist.Issue, bool) {
	if len(moved) == 0 {
		return e.consIssues, true
	}
	out := append([]netlist.Issue(nil), e.consIssues...)
	for _, gi := range moved {
		f := inc.Root.ItemFootAt(gi)
		if f < 0 {
			return nil, false
		}
		cl := inc.Root.ClassOf[f]
		net := &inc.Netlist.Nets[cl]
		detail := fmt.Sprintf("net %q has %d device terminal(s), need at least 2",
			net.Name, len(net.Terminals))
		found := false
		for k := range out {
			if out[k].Rule == "NET.FANOUT" && out[k].Detail == detail {
				out[k].Where = net.Bounds
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// adjudicateDef runs the shared subcase logic over every candidate pair of
// one definition under one net-environment signature, producing the
// replayable tally.
func (e *Engine) adjudicateDef(di *defInter, labels []int, sig []byte) *interactionTally {
	env := &sigEnv{di: di, labels: labels}
	if sig != nil {
		// Unpack the per-position bits back out of the signature bytes
		// (five bytes per class: 4-byte label + hasDevice bit).
		n := len(di.candClasses)
		env.hasDev = make([]byte, n)
		for i := 0; i < n; i++ {
			env.hasDev[i] = sig[5*i+4]
		}
		env.share = sig[5*n:]
	}
	// With a nil sig (netFree definitions) every pair is same-device and
	// the env's net methods are provably never reached.

	t := &interactionTally{}
	g := defPairGeom{opts: &e.opts}
	for i := range di.pairs {
		p := &di.pairs[i]
		g.p = p
		adjudicatePair(e.tc, e.ct, e.opts, di.itemAt(p.a), di.itemAt(p.b), env, &g, t)
	}
	return t
}

// absorbInstance folds one instance's tally into the report: counters add
// up directly; violations are carried from definition space into chip
// space (transform the location, prefix the instance path, resolve the
// local net classes against the global netlist).
func (e *Engine) absorbInstance(c *checker, inc *netlist.IncExtraction, ii int, t *interactionTally) {
	st := &c.rep.Stats
	st.InteractionCandidates += t.candidates
	st.InteractionChecked += t.checked
	st.SkippedNoRule += t.skippedNoRule
	st.SkippedSameNetExempt += t.skippedSameNet
	st.SkippedRelated += t.skippedRelated
	st.SkippedConnectionPairs += t.skippedConn
	st.ProcessDowngrades += t.downgrades
	if c.curStage != nil {
		c.curStage.Checks += t.checks
	}
	if len(t.violations) == 0 {
		return
	}
	inst := &inc.Instances[ii]
	path := inc.InstPath(ii)
	for _, d := range t.violations {
		v := d.v
		v.Where = inst.T.ApplyRect(v.Where)
		v.Path = pathJoin(path, v.Path)
		ga, gb := netlist.NoNet, netlist.NoNet
		if d.aNet != netlist.NoNet {
			ga = inc.GlobalNet(ii, int(d.aNet))
		}
		if d.bNet != netlist.NoNet {
			gb = inc.GlobalNet(ii, int(d.bNet))
		}
		v.Nets = c.netNames(inc.Extraction, ga, gb)
		c.rep.Violations = append(c.rep.Violations, v)
	}
}

func pathJoin(prefix, rel string) string {
	switch {
	case prefix == "":
		return rel
	case rel == "":
		return prefix
	default:
		return prefix + "." + rel
	}
}

// String renders cache stats compactly for -repeat style loops.
func (s EngineStats) String() string {
	out := fmt.Sprintf("run %d: %d/%d symbols dirty, %d artifact defs, interactions %d built/%d reused, signatures %d miss/%d hit, contexts %d derived/%d built",
		s.Runs, s.DirtySymbols, s.Symbols, s.ArtifactDefs, s.InterBuilt, s.InterReused, s.SigMisses, s.SigHits, s.CtxHits, s.CtxMisses)
	if s.WindowPatched {
		out += ", window-patched"
	}
	return out
}
