package dic

// Shape assertions over the full experiment suite: the reproduction does
// not chase the paper's absolute numbers (it had none beyond the 10:1
// anecdote), but the SHAPE of every claim must hold — who wins, in which
// direction, and where the qualitative crossovers fall.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/tech"
)

func TestPublicAPIQuickstart(t *testing.T) {
	tc := NMOS()
	chip := NewChip(tc, "api", 2, 2)
	text, err := WriteCIF(chip.Design, tc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseCIF(text, tc, "api")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(back, tc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("round-tripped clean chip has errors: %v", rep.Errors()[0])
	}
	nl, _, err := ExtractNetlist(back, tc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nl.NetByName("VDD"); !ok {
		t.Fatal("VDD missing after round trip")
	}
	if _, err := CheckFlat(back, tc, FlatOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestShapeE01 asserts the Figure 1 economics: the DIC dominates the
// baseline on both effectiveness and false errors, and the baseline's
// false:real ratio reaches the paper's 10:1 at scale.
func TestShapeE01(t *testing.T) {
	size := struct{ rows, cols, errors int }{16, 25, 50}
	if testing.Short() {
		size = struct{ rows, cols, errors int }{8, 12, 24}
	}
	res, err := eval.RunE1(tech.NMOS(), size.rows, size.cols, size.errors, 1980)
	if err != nil {
		t.Fatal(err)
	}
	if res.DIC.Missed != 0 || res.DIC.False != 0 {
		t.Errorf("DIC must be exact on ground truth: %+v", res.DIC)
	}
	if res.Flat.Effectiveness() >= 0.9 {
		t.Errorf("baseline effectiveness implausibly high: %+v", res.Flat)
	}
	ratio := res.Flat.FalseToRealRatio()
	if !testing.Short() && ratio < 10 {
		t.Errorf("false:real = %.1f, paper claims 10:1 or higher at scale", ratio)
	}
	if ratio < 2 {
		t.Errorf("false:real = %.1f, expected clearly pathological", ratio)
	}
}

// TestShapeE09 asserts the hierarchy claim: definition-level work is
// constant while the chip grows, and the DIC outruns the flat baseline.
func TestShapeE09(t *testing.T) {
	tab, err := eval.E09(testing.Short())
	if err != nil {
		t.Fatal(err)
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	if first[2] != last[2] {
		t.Errorf("definition-level work grew: %s -> %s", first[2], last[2])
	}
	devFirst, _ := strconv.Atoi(first[0])
	devLast, _ := strconv.Atoi(last[0])
	if devLast <= devFirst {
		t.Fatalf("sizes not increasing: %d %d", devFirst, devLast)
	}
}

// TestShapeE12 asserts the proximity-effect direction: the deviation from
// the unary model grows monotonically as the gap shrinks.
func TestShapeE12(t *testing.T) {
	tab, err := eval.E12()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, row := range tab.Rows {
		eff, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad effect cell %q", row[3])
		}
		if eff < prev-1e-9 {
			t.Fatalf("proximity effect not monotone: %v", tab.Rows)
		}
		prev = eff
	}
	if prev < 1 {
		t.Fatalf("proximity effect never became material: %v", prev)
	}
}

// TestShapeE13 asserts the relational-rule direction: required overlap
// decreases with poly width and exceeds the margin for minimum-width poly.
func TestShapeE13(t *testing.T) {
	tab, err := eval.E13()
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 1e18
	for _, row := range tab.Rows {
		need, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[2])
		}
		if need > prev+1e-9 {
			t.Fatalf("required overlap not decreasing: %v", tab.Rows)
		}
		prev = need
	}
	firstNeed, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	if firstNeed <= 125 {
		t.Fatalf("minimum-width poly should need more than the bare margin: %v", firstNeed)
	}
}

// TestShapeE02AllPathologiesBehave re-asserts the full pathology table has
// no deviations (belt and braces over the eval tests).
func TestShapeE02AllPathologiesBehave(t *testing.T) {
	tab, err := eval.E02()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		joined := strings.Join(row, " | ")
		if strings.Contains(joined, "UNEXPECTED") {
			t.Errorf("pathology deviated: %s", joined)
		}
	}
}

// TestShapeE16 asserts the residual-work arithmetic: the DIC's residual is
// strictly below the baseline's, which is strictly below unchecked.
func TestShapeE16(t *testing.T) {
	tab, err := eval.E16(true)
	if err != nil {
		t.Fatal(err)
	}
	var none, flatRes, dicRes float64
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[3], 64)
		switch row[1] {
		case "none":
			none = v
		case "flat baseline":
			flatRes = v
		case "DIC":
			dicRes = v
		}
	}
	if !(dicRes < flatRes && flatRes < none) {
		t.Fatalf("residual ordering broken: DIC=%v flat=%v none=%v", dicRes, flatRes, none)
	}
}
