package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectNormalization(t *testing.T) {
	r := R(10, 20, 3, 4)
	if r != (Rect{3, 4, 10, 20}) {
		t.Fatalf("R did not normalize: %v", r)
	}
}

func TestRectAccessors(t *testing.T) {
	r := R(1, 2, 11, 7)
	if r.W() != 10 || r.H() != 5 {
		t.Fatalf("W/H = %d/%d", r.W(), r.H())
	}
	if r.Area() != 50 {
		t.Fatalf("Area = %d", r.Area())
	}
	if r.MinSide() != 5 {
		t.Fatalf("MinSide = %d", r.MinSide())
	}
	if r.Center() != Pt(6, 4) {
		t.Fatalf("Center = %v", r.Center())
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(5, 5, 15, 15)
	if got := a.Intersect(b); got != R(5, 5, 10, 10) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Union(b); got != R(0, 0, 15, 15) {
		t.Fatalf("Union = %v", got)
	}
	c := R(20, 20, 30, 30)
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint rects should intersect to empty")
	}
	var empty Rect
	if got := empty.Union(a); got != a {
		t.Fatalf("empty Union identity = %v", got)
	}
}

func TestRectOverlapTouch(t *testing.T) {
	a := R(0, 0, 10, 10)
	if !a.Overlaps(R(9, 9, 20, 20)) {
		t.Fatal("overlapping corner should overlap")
	}
	if a.Overlaps(R(10, 0, 20, 10)) {
		t.Fatal("edge-sharing rects do not overlap (open interiors)")
	}
	if !a.Touches(R(10, 0, 20, 10)) {
		t.Fatal("edge-sharing rects touch")
	}
	if !a.Touches(R(10, 10, 20, 20)) {
		t.Fatal("corner-sharing rects touch")
	}
	if a.Touches(R(11, 11, 20, 20)) {
		t.Fatal("separated rects must not touch")
	}
}

func TestRectDistances(t *testing.T) {
	a := R(0, 0, 10, 10)
	// Pure horizontal gap.
	if got := a.EuclideanDist(R(13, 0, 20, 10)); got != 3 {
		t.Fatalf("horizontal dist = %v", got)
	}
	// Diagonal gap 3,4 -> 5.
	if got := a.EuclideanDist(R(13, 14, 20, 20)); got != 5 {
		t.Fatalf("diagonal dist = %v, want 5", got)
	}
	// Orthogonal (L∞) distance for the same pair is max(3,4)=4: the
	// Figure 4 pathology — expand-check-overlap with s=5 would flag this
	// pair even though the true clearance is 5.
	if got := a.OrthogonalDist(R(13, 14, 20, 20)); got != 4 {
		t.Fatalf("orthogonal dist = %d, want 4", got)
	}
	if got := a.EuclideanDist(R(5, 5, 8, 8)); got != 0 {
		t.Fatalf("contained dist = %v", got)
	}
}

func TestClosestPoints(t *testing.T) {
	a := R(0, 0, 10, 10)
	b := R(13, 14, 20, 20)
	pa, pb := a.ClosestPoints(b)
	if pa != Pt(10, 10) || pb != Pt(13, 14) {
		t.Fatalf("closest points = %v %v", pa, pb)
	}
	if got := pa.Dist(pb); got != 5 {
		t.Fatalf("dist between closest points = %v", got)
	}
}

func TestDistToPoint(t *testing.T) {
	r := R(0, 0, 10, 10)
	if got := r.DistToPoint(Pt(5, 5)); got != 0 {
		t.Fatalf("inside dist = %v", got)
	}
	if got := r.DistToPoint(Pt(13, 14)); got != 5 {
		t.Fatalf("corner dist = %v", got)
	}
	if got := r.DistToPoint(Pt(-3, 5)); got != 3 {
		t.Fatalf("edge dist = %v", got)
	}
}

// Property: EuclideanDist equals the brute-force min over corner/edge
// projections, validated against dense point sampling on small rects.
func TestQuickRectDistMatchesSampling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := R(int64(rng.Intn(10)), int64(rng.Intn(10)),
			int64(10+rng.Intn(10)), int64(10+rng.Intn(10)))
		b := R(int64(20+rng.Intn(10)), int64(rng.Intn(30)),
			int64(31+rng.Intn(10)), int64(31+rng.Intn(10)))
		got := a.EuclideanDist(b)
		best := math.Inf(1)
		for x := a.X1; x <= a.X2; x++ {
			for y := a.Y1; y <= a.Y2; y++ {
				if d := b.DistToPoint(Pt(x, y)); d < best {
					best = d
				}
			}
		}
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ClosestPoints realize EuclideanDist.
func TestQuickClosestPointsRealizeDist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := R(int64(rng.Intn(20)), int64(rng.Intn(20)),
			int64(rng.Intn(40)), int64(rng.Intn(40)))
		b := R(int64(rng.Intn(60)), int64(rng.Intn(60)),
			int64(rng.Intn(80)), int64(rng.Intn(80)))
		if a.Empty() || b.Empty() {
			return true
		}
		pa, pb := a.ClosestPoints(b)
		if !a.Contains(pa) || !b.Contains(pb) {
			return false
		}
		return math.Abs(pa.Dist(pb)-a.EuclideanDist(b)) < 1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestGapXY(t *testing.T) {
	a := R(0, 0, 10, 10)
	if g := a.GapX(R(15, 0, 20, 5)); g != 5 {
		t.Fatalf("GapX = %d", g)
	}
	if g := a.GapX(R(5, 20, 8, 25)); g != 0 {
		t.Fatalf("overlapping GapX = %d", g)
	}
	if g := a.GapY(R(0, -7, 5, -3)); g != 3 {
		t.Fatalf("GapY = %d", g)
	}
}

func TestRectCenteredAt(t *testing.T) {
	r := RectCenteredAt(Pt(10, 10), 4, 6)
	if r != R(8, 7, 12, 13) {
		t.Fatalf("RectCenteredAt = %v", r)
	}
	if r.Center() != Pt(10, 10) {
		t.Fatalf("center = %v", r.Center())
	}
}
