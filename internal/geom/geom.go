// Package geom is the integer-coordinate geometry kernel underlying the
// design-integrity checker.
//
// All coordinates are int64 centimicrons, following the CIF convention used
// by the paper (McGrath & Whitney, DAC 1980). The kernel provides:
//
//   - Point, Rect and rectilinear Polygon primitives with Manhattan
//     transforms (90-degree rotations, mirrors, translation).
//   - Region, a canonical slab decomposition of a rectilinear set, with the
//     full boolean algebra (union, intersection, difference, symmetric
//     difference), morphology (orthogonal dilate/erode, i.e. the paper's
//     "orthogonal expand and shrink"), connected components, and contour
//     extraction.
//   - Euclidean expansion (Figure 3 of the paper): exact areas and polygonal
//     contours with rounded convex corners, for contrasting orthogonal and
//     Euclidean expand pathologies (Figure 4).
//   - Distance engines: Euclidean and orthogonal separations between rects,
//     regions and components, including the "line of closest approach" used
//     by the 2-D process model.
//   - Width checking via shrink-expand-compare in both orthogonal and
//     Euclidean flavours, with violation localization.
//   - A sweepline pair finder for interaction candidate generation.
//
// Everything is deterministic and allocation-conscious; no floating point is
// used except where the paper itself is analog (Euclidean metrics and the
// exposure model's erf integrals).
package geom
