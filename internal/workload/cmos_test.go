package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tech"
)

// TestCMOSChipClean is the end-to-end acceptance check for the deck-only
// process: the full six-stage pipeline, construction rules included, must
// report zero errors on the generated CMOS chip.
func TestCMOSChipClean(t *testing.T) {
	tc := tech.CMOS()
	chip := NewCMOSChip(tc, "cmos", 3, 4)
	rep, err := core.Check(chip.Design, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("clean CMOS chip flagged: %v", v)
	}
	// 2 transistors + 5 contacts per cell, plus one head contact per row.
	wantDevs := 3*4*7 + 3
	if got := chip.DeviceCount(); got != wantDevs {
		t.Fatalf("devices = %d, want %d", got, wantDevs)
	}
	vdd, ok := rep.Netlist.NetByName("VDD")
	if !ok {
		t.Fatal("VDD missing")
	}
	gnd, ok := rep.Netlist.NetByName("GND")
	if !ok {
		t.Fatal("GND missing")
	}
	if vdd == gnd {
		t.Fatal("rails shorted")
	}
	if _, ok := rep.Netlist.NetByName("VSS"); !ok {
		t.Fatal("well substrate-tie net missing")
	}
}

func TestCMOSChipAccidentalTransistor(t *testing.T) {
	tc := tech.CMOS()
	chip := NewCMOSChip(tc, "cmos", 2, 3)
	where := chip.BreakAccidentalTransistor(1)
	rep, err := core.Check(chip.Design, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, v := range rep.Errors() {
		if v.Rule == "DEV.ACCIDENTAL" {
			hits++
			if !v.Where.Expand(200).Touches(where) {
				t.Errorf("DEV.ACCIDENTAL at %v, expected near %v", v.Where, where)
			}
		}
	}
	if hits == 0 {
		t.Fatalf("accidental transistor not flagged: %v", rep.Errors())
	}
}

// TestCMOSEngineParity: the incremental engine must produce byte-identical
// reports for the deck-defined process too.
func TestCMOSEngineParity(t *testing.T) {
	tc := tech.CMOS()
	chip := NewCMOSChip(tc, "cmos", 2, 3)
	cold, err := core.Check(chip.Design, tc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngine(tc, core.Options{})
	warm, err := eng.Check(chip.Design)
	if err != nil {
		t.Fatal(err)
	}
	if core.Fingerprint(cold) != core.Fingerprint(warm) {
		t.Fatal("engine report diverges from Check on the CMOS chip")
	}
	again, err := eng.Recheck(chip.Design)
	if err != nil {
		t.Fatal(err)
	}
	if core.Fingerprint(cold) != core.Fingerprint(again) {
		t.Fatal("warm Recheck diverges on the CMOS chip")
	}
}
