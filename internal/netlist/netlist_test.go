package netlist

import (
	"testing"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

func mustExtract(t *testing.T, d *layout.Design, tc *tech.Technology) (*Netlist, []Issue) {
	t.Helper()
	nl, issues, err := Extract(d, tc)
	if err != nil {
		t.Fatal(err)
	}
	return nl, issues
}

func hasIssue(issues []Issue, rule string) bool {
	for _, i := range issues {
		if i.Rule == rule {
			return true
		}
	}
	return false
}

func TestWireChainConnectivity(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("chain")
	top := d.MustSymbol("top")
	// Three overlapping diffusion wires: one net. A fourth, separate wire:
	// its own net.
	top.AddWire(diff, 500, "sig", geom.Pt(0, 0), geom.Pt(2000, 0))
	top.AddWire(diff, 500, "", geom.Pt(1500, 0), geom.Pt(3500, 0))
	top.AddWire(diff, 500, "", geom.Pt(3000, 0), geom.Pt(5000, 0))
	top.AddWire(diff, 500, "other", geom.Pt(0, 5000), geom.Pt(2000, 5000))
	d.Top = top

	nl, issues := mustExtract(t, d, tc)
	if len(issues) != 0 {
		t.Fatalf("issues: %v", issues)
	}
	if nl.NumNets() != 2 {
		t.Fatalf("nets = %d, want 2", nl.NumNets())
	}
	sig, ok := nl.NetByName("sig")
	if !ok {
		t.Fatal("net sig missing")
	}
	if nl.Nets[sig].Elements != 3 {
		t.Fatalf("sig elements = %d, want 3", nl.Nets[sig].Elements)
	}
	if _, ok := nl.NetByName("other"); !ok {
		t.Fatal("net other missing")
	}
}

func TestAbuttingWiresDoNotConnect(t *testing.T) {
	// The paper's self-sufficiency consequence: abutting wires are not
	// skeletally connected and therefore extract as separate nets.
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("abut")
	top := d.MustSymbol("top")
	top.AddBox(diff, geom.R(0, 0, 2000, 500), "a")
	top.AddBox(diff, geom.R(2000, 0, 4000, 500), "b")
	d.Top = top
	nl, _ := mustExtract(t, d, tc)
	if nl.NumNets() != 2 {
		t.Fatalf("nets = %d, want 2 (abutment must not connect)", nl.NumNets())
	}
}

func TestTransistorTerminalNets(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	d := layout.NewDesign("tr")
	tran := device.NewEnhTransistor(d, tc, "m", 500, 500)
	top := d.MustSymbol("top")
	top.AddCall(tran, geom.Identity, "m1")
	top.AddWire(diff, 500, "src", geom.Pt(-2000, 0), geom.Pt(-300, 0))
	top.AddWire(diff, 500, "drn", geom.Pt(300, 0), geom.Pt(2000, 0))
	top.AddWire(poly, 500, "gat", geom.Pt(0, 250), geom.Pt(0, 2500))
	d.Top = top

	nl, issues := mustExtract(t, d, tc)
	if hasIssue(issues, "NET.MERGED") || hasIssue(issues, "NET.OPEN") {
		t.Fatalf("unexpected issues: %v", issues)
	}
	if len(nl.Devices) != 1 {
		t.Fatalf("devices = %d", len(nl.Devices))
	}
	dev := nl.Devices[0]
	if dev.Path != "m1" || dev.Type != tech.DevNMOSEnh {
		t.Fatalf("device = %+v", dev)
	}
	for term, wantNet := range map[string]string{"g": "gat", "s": "src", "d": "drn"} {
		nid, ok := dev.TerminalNet(term)
		if !ok {
			t.Fatalf("terminal %q missing (%v)", term, dev.TerminalNets)
		}
		if got := nl.Nets[nid].Name; got != wantNet {
			t.Errorf("terminal %q on net %q, want %q", term, got, wantNet)
		}
	}
	// Source and drain must be distinct nets (no transistor short).
	srcNet, _ := dev.TerminalNet("s")
	drnNet, _ := dev.TerminalNet("d")
	if srcNet == drnNet {
		t.Fatal("source and drain merged through the transistor")
	}
}

func TestContactFusesLayers(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	metal, _ := tc.LayerByName(tech.NMOSMetal)
	d := layout.NewDesign("ct")
	ct := device.NewDiffContact(d, tc, "c")
	top := d.MustSymbol("top")
	top.AddCall(ct, geom.Identity, "c1")
	// Metal wire covering the contact pad entirely; diffusion wire under.
	top.AddWire(metal, 750, "mnet", geom.Pt(-3000, 0), geom.Pt(500, 0))
	top.AddWire(diff, 500, "dnet", geom.Pt(0, 0), geom.Pt(3000, 0))
	d.Top = top

	nl, issues := mustExtract(t, d, tc)
	// The contact fuses metal and diffusion: mnet and dnet become one net,
	// which the consistency check reports as a merge of declared names.
	if !hasIssue(issues, "NET.MERGED") {
		t.Fatalf("expected NET.MERGED for fused mnet/dnet, got %v", issues)
	}
	mid, ok1 := nl.NetByName("mnet")
	did, ok2 := nl.NetByName("dnet")
	if !ok1 || !ok2 || mid != did {
		t.Fatalf("contact did not fuse nets: mnet=%v(%v) dnet=%v(%v)", mid, ok1, did, ok2)
	}
}

func TestDotNotationAndRails(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	metal, _ := tc.LayerByName(tech.NMOSMetal)
	d := layout.NewDesign("dots")
	cell := d.MustSymbol("cell")
	cell.AddWire(diff, 500, "q", geom.Pt(0, 0), geom.Pt(2000, 0))
	cell.AddWire(metal, 750, "VDD", geom.Pt(0, 2000), geom.Pt(4000, 2000))
	top := d.MustSymbol("top")
	top.AddCall(cell, geom.Identity, "a")
	top.AddCall(cell, geom.Translate(geom.Pt(3500, 0)), "b")
	d.Top = top

	nl, issues := mustExtract(t, d, tc)
	// Local nets are instance-qualified.
	if _, ok := nl.NetByName("a.q"); !ok {
		t.Fatalf("a.q missing; nets: %v", netNames(nl))
	}
	if _, ok := nl.NetByName("b.q"); !ok {
		t.Fatal("b.q missing")
	}
	// The VDD rails overlap (3500 < 4000) and carry a global name: one net,
	// no issues.
	vdd, ok := nl.NetByName("VDD")
	if !ok {
		t.Fatal("VDD missing")
	}
	if nl.Nets[vdd].Elements != 2 {
		t.Fatalf("VDD elements = %d, want 2", nl.Nets[vdd].Elements)
	}
	if hasIssue(issues, "NET.OPEN") || hasIssue(issues, "NET.MERGED") {
		t.Fatalf("unexpected issues: %v", issues)
	}
}

func TestOpenRailReported(t *testing.T) {
	tc := tech.NMOS()
	metal, _ := tc.LayerByName(tech.NMOSMetal)
	d := layout.NewDesign("open")
	top := d.MustSymbol("top")
	top.AddWire(metal, 750, "VDD", geom.Pt(0, 0), geom.Pt(2000, 0))
	top.AddWire(metal, 750, "VDD", geom.Pt(10000, 0), geom.Pt(12000, 0))
	d.Top = top
	_, issues := mustExtract(t, d, tc)
	if !hasIssue(issues, "NET.OPEN") {
		t.Fatalf("split VDD not reported: %v", issues)
	}
}

func TestConstructionRulePGShort(t *testing.T) {
	tc := tech.NMOS()
	metal, _ := tc.LayerByName(tech.NMOSMetal)
	d := layout.NewDesign("pg")
	top := d.MustSymbol("top")
	top.AddWire(metal, 750, "VDD", geom.Pt(0, 0), geom.Pt(3000, 0))
	top.AddWire(metal, 750, "GND", geom.Pt(2000, 0), geom.Pt(6000, 0))
	d.Top = top
	nl, _ := mustExtract(t, d, tc)
	issues := ConstructionRules(nl, tc)
	if !hasIssue(issues, "NET.PGSHORT") {
		t.Fatalf("power-ground short not reported: %v", issues)
	}
}

func TestConstructionRuleResistorBetweenRailsIsLegal(t *testing.T) {
	// A resistor between VDD and GND must NOT be a short: its two ends are
	// distinct nodes (Figure 5b modelling).
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("res")
	res := device.NewDiffResistor(d, tc, "r", 3000) // body y in [0,500]
	top := d.MustSymbol("top")
	top.AddCall(res, geom.Identity, "r1")
	top.AddWire(diff, 500, "VDD", geom.Pt(-2000, 250), geom.Pt(400, 250))
	top.AddWire(diff, 500, "GND", geom.Pt(2600, 250), geom.Pt(5000, 250))
	d.Top = top
	nl, _ := mustExtract(t, d, tc)
	issues := ConstructionRules(nl, tc)
	if hasIssue(issues, "NET.PGSHORT") {
		t.Fatalf("resistor between rails wrongly reported as short: %v", issues)
	}
	vdd, _ := nl.NetByName("VDD")
	gnd, _ := nl.NetByName("GND")
	if vdd == gnd {
		t.Fatal("rails merged through resistor body")
	}
}

func TestConstructionRuleFanout(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("fan")
	top := d.MustSymbol("top")
	top.AddWire(diff, 500, "floating", geom.Pt(0, 0), geom.Pt(2000, 0))
	d.Top = top
	nl, _ := mustExtract(t, d, tc)
	issues := ConstructionRules(nl, tc)
	if !hasIssue(issues, "NET.FANOUT") {
		t.Fatalf("floating net not reported: %v", issues)
	}
}

func TestConstructionRuleBusRail(t *testing.T) {
	tc := tech.NMOS()
	metal, _ := tc.LayerByName(tech.NMOSMetal)
	d := layout.NewDesign("bus")
	top := d.MustSymbol("top")
	top.AddWire(metal, 750, "bus0", geom.Pt(0, 0), geom.Pt(3000, 0))
	top.AddWire(metal, 750, "GND", geom.Pt(2000, 0), geom.Pt(6000, 0))
	d.Top = top
	nl, _ := mustExtract(t, d, tc)
	issues := ConstructionRules(nl, tc)
	if !hasIssue(issues, "NET.BUSRAIL") {
		t.Fatalf("bus-to-rail not reported: %v", issues)
	}
}

func TestConstructionRuleDepletionToGround(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	d := layout.NewDesign("dep")
	dep := device.NewDepTransistor(d, tc, "dep", 500, 500)
	top := d.MustSymbol("top")
	top.AddCall(dep, geom.Identity, "d1")
	top.AddWire(diff, 500, "GND", geom.Pt(-2500, 0), geom.Pt(-300, 0))
	top.AddWire(diff, 500, "out", geom.Pt(300, 0), geom.Pt(2500, 0))
	d.Top = top
	nl, _ := mustExtract(t, d, tc)
	issues := ConstructionRules(nl, tc)
	if !hasIssue(issues, "NET.DEPGND") {
		t.Fatalf("depletion-to-ground not reported: %v", issues)
	}
}

func TestCompareReference(t *testing.T) {
	tc := tech.NMOS()
	diff, _ := tc.LayerByName(tech.NMOSDiff)
	poly, _ := tc.LayerByName(tech.NMOSPoly)
	d := layout.NewDesign("cmp")
	tran := device.NewEnhTransistor(d, tc, "m", 500, 500)
	top := d.MustSymbol("top")
	top.AddCall(tran, geom.Identity, "m1")
	top.AddWire(diff, 500, "src", geom.Pt(-2000, 0), geom.Pt(-300, 0))
	top.AddWire(diff, 500, "drn", geom.Pt(300, 0), geom.Pt(2000, 0))
	top.AddWire(poly, 500, "gat", geom.Pt(0, 250), geom.Pt(0, 2500))
	d.Top = top
	nl, _ := mustExtract(t, d, tc)

	good := Reference{
		"src": {"nmos-enh:s"},
		"drn": {"nmos-enh:d"},
		"gat": {"nmos-enh:g"},
	}
	if issues := Compare(nl, good); len(issues) != 0 {
		t.Fatalf("good reference mismatched: %v", issues)
	}
	bad := Reference{
		"src": {"nmos-enh:s", "nmos-enh:g"}, // wrong attachment
		"zzz": {"nmos-enh:d"},               // missing net
	}
	issues := Compare(nl, bad)
	if !hasIssue(issues, "NET.MISMATCH") || !hasIssue(issues, "NET.MISSING") {
		t.Fatalf("bad reference not caught: %v", issues)
	}
}

func netNames(nl *Netlist) []string {
	out := make([]string, 0, len(nl.Nets))
	for i := range nl.Nets {
		out = append(out, nl.Nets[i].Name)
	}
	return out
}
