package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cif"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/tech"
	"repro/internal/workload"
)

// randomEdits generates a valid random edit script against the cmosCIF
// chip: boxes added in a dedicated probe area west of the chip, moved
// around, and occasionally deleted. Every op is legal, so the script
// exercises real state evolution rather than error paths.
func randomEdits(rng *rand.Rand, n int) []layout.Edit {
	var edits []layout.Edit
	boxes := 0
	for i := 0; i < n; i++ {
		switch k := rng.Intn(4); {
		case k <= 1 || boxes == 0: // add a probe box on its own column
			x := int64(-40000 - boxes*3000)
			y := int64(rng.Intn(8)) * 1500
			edits = append(edits, layout.Edit{
				Op: layout.OpAddBox, Symbol: "chip", Layer: tech.CMOSMetal,
				Box: []int64{x, y, x + 1000, y + 1000},
			})
			boxes++
		case k == 2: // nudge the most recent element
			edits = append(edits, layout.Edit{
				Op: layout.OpMoveElement, Symbol: "chip", Index: -1,
				DY: int64(rng.Intn(5)-2) * 250,
			})
		default: // drop it again
			edits = append(edits, layout.Edit{
				Op: layout.OpDeleteElement, Symbol: "chip", Index: -1,
			})
			boxes--
		}
	}
	return edits
}

// TestSnapshotRoundTripProperty is the property test of the snapshot
// format: for random edit scripts, snapshot → restore must reproduce the
// exact report fingerprint the live session had — which RestoreSession
// itself asserts — and the restored session must keep working (a further
// edit rechecks identically to the live session's).
func TestSnapshotRoundTripProperty(t *testing.T) {
	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "chip", 2, 2)
	text, err := cif.Write(chip.Design, tc)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		d, err := cif.Parse(text, tc, "chip")
		if err != nil {
			t.Fatal(err)
		}
		origin := sessionOrigin{Tech: "cmos"}
		sess, err := newSession(context.Background(), fmt.Sprintf("s%d", trial+1), "prop", d, tc,
			core.Options{}, origin, nil, -1, 8, time.Now())
		if err != nil {
			t.Fatal(err)
		}
		script := randomEdits(rng, 3+rng.Intn(8))
		if _, _, serr := sess.applyEdits(script); serr != nil {
			t.Fatalf("trial %d: apply: %v", trial, serr)
		}
		snap, err := sess.Snapshot(time.Now())
		if err != nil {
			t.Fatalf("trial %d: snapshot: %v", trial, err)
		}
		if snap == nil {
			t.Fatalf("trial %d: snapshot skipped a changed session", trial)
		}
		liveFP := core.FingerprintDigest(sess.rep)
		if snap.Fingerprint != liveFP {
			t.Fatalf("trial %d: snapshot fingerprint %s != live %s", trial, snap.Fingerprint, liveFP)
		}

		restored, err := RestoreSession(context.Background(), snap, nil, -1, 8, 0, time.Now())
		if err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		if !restored.restored {
			t.Fatalf("trial %d: restored flag not set", trial)
		}

		// The restored session must evolve identically: one more edit on
		// both sides, same fingerprint.
		more := []layout.Edit{{
			Op: layout.OpAddBox, Symbol: "chip", Layer: tech.CMOSMetal,
			Box: []int64{-90000, 0, -89000, 1000},
		}}
		for _, s := range []*Session{sess, restored} {
			if _, _, serr := s.applyEdits(more); serr != nil {
				t.Fatalf("trial %d: post-restore edit: %v", trial, serr)
			}
			if _, serr := s.report(context.Background()); serr != nil {
				t.Fatalf("trial %d: post-restore report: %v", trial, serr)
			}
		}
		if a, b := core.FingerprintDigest(sess.rep), core.FingerprintDigest(restored.rep); a != b {
			t.Fatalf("trial %d: post-restore divergence: live %s restored %s", trial, a, b)
		}
	}
}

// TestSnapshotFileAtomicity exercises the on-disk layer: write, read
// back, version gate, and the skip-unchanged fast path.
func TestSnapshotFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	tc := tech.CMOS()
	chip := workload.NewCMOSChip(tc, "chip", 2, 2)
	text, err := cif.Write(chip.Design, tc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := cif.Parse(text, tc, "chip")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := newSession(context.Background(), "s1", "disk", d, tc,
		core.Options{}, sessionOrigin{Tech: "cmos"}, nil, -1, 8, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Snapshot(time.Now())
	if err != nil || snap == nil {
		t.Fatalf("snapshot: %v %v", snap, err)
	}
	path, err := WriteSnapshotFile(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != snap.Fingerprint || got.CIF != snap.CIF || got.ID != "s1" {
		t.Fatal("snapshot did not round-trip through disk")
	}

	// Unknown versions are refused, not misread.
	bad := *snap
	bad.Version = SnapshotVersion + 1
	badPath, err := WriteSnapshotFile(dir, &bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(badPath); err == nil {
		t.Fatal("future-version snapshot was accepted")
	}

	// Unchanged state: the next Snapshot call is a no-op.
	sess.noteSnapshotted(snap.Generation)
	again, err := sess.Snapshot(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if again != nil {
		t.Fatal("unchanged session was re-snapshotted")
	}
	// No stray temp files behind the atomic write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != snapshotExt {
			t.Fatalf("leftover non-snapshot file %s", ent.Name())
		}
	}
}

// TestBootRestore is the crash drill in miniature: sessions served, state
// snapshotted, process "killed" (server discarded without Close), a new
// server boots on the same state directory and must serve the same
// sessions with identical fingerprints.
func TestBootRestore(t *testing.T) {
	dir := t.TempDir()
	text, _ := cmosCIF(t, 2, 2)
	cfg := Config{Debounce: time.Hour, StateDir: dir}

	srv1 := New(cfg)
	ts1 := httptest.NewServer(srv1)
	c1 := NewClient(ts1.URL)

	a, err := c1.SessionCreate(context.Background(), CreateRequest{Name: "alpha", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c1.SessionCreate(context.Background(), CreateRequest{Name: "beta", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SessionEdit(context.Background(), a.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	repA, err := c1.SessionReport(context.Background(), a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SnapshotAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	// kill -9: no Close, no shutdown snapshot — what's on disk is all
	// that survives.
	ts1.Close()

	srv2 := New(cfg)
	ts2 := httptest.NewServer(srv2)
	defer func() { ts2.Close(); srv2.Close() }()
	c2 := NewClient(ts2.URL)
	restored, errs := srv2.RestoreFromDisk(context.Background())
	if len(errs) > 0 {
		t.Fatalf("restore errors: %v", errs)
	}
	if restored != 2 {
		t.Fatalf("restored %d sessions, want 2", restored)
	}

	gotA, err := c2.SessionReport(context.Background(), a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotA.Fingerprint != repA.Fingerprint {
		t.Fatalf("restored fingerprint %s != pre-kill %s", gotA.Fingerprint, repA.Fingerprint)
	}
	st, err := c2.SessionStats(context.Background(), a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Restored {
		t.Fatal("restored session not flagged as restored")
	}
	if _, err := c2.SessionReport(context.Background(), b.ID); err != nil {
		t.Fatal(err)
	}

	// New sessions must not collide with restored ids.
	cNew, err := c2.SessionCreate(context.Background(), CreateRequest{Name: "gamma", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if cNew.ID == a.ID || cNew.ID == b.ID {
		t.Fatalf("id collision after restore: %s", cNew.ID)
	}
	gst, err := c2.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gst.SnapshotsRestored != 2 {
		t.Fatalf("SnapshotsRestored = %d, want 2", gst.SnapshotsRestored)
	}
}

// TestEvictionSnapshotsThenCloses asserts the LRU eviction persists the
// victim before closing it: the evicted session's snapshot lands on disk
// and a later boot restores it.
func TestEvictionSnapshotsThenCloses(t *testing.T) {
	dir := t.TempDir()
	text, _ := cmosCIF(t, 2, 2)
	srv, c := newTestServer(t, Config{Debounce: time.Hour, MaxSessions: 1, StateDir: dir})

	a, err := c.SessionCreate(context.Background(), CreateRequest{Name: "old", CIF: text, Tech: "cmos"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionEdit(context.Background(), a.ID, breakEdits()); err != nil {
		t.Fatal(err)
	}
	repA, err := c.SessionReport(context.Background(), a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionCreate(context.Background(), CreateRequest{Name: "new", CIF: text, Tech: "cmos"}); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, a.ID+snapshotExt)); err != nil {
		t.Fatalf("evicted session left no snapshot: %v", err)
	}
	gst, err := c.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gst.EvictionsLRU != 1 {
		t.Fatalf("EvictionsLRU = %d, want 1", gst.EvictionsLRU)
	}

	snap, err := ReadSnapshotFile(filepath.Join(dir, a.ID+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Fingerprint != repA.Fingerprint {
		t.Fatalf("evicted snapshot fingerprint %s != last served %s", snap.Fingerprint, repA.Fingerprint)
	}

	// DELETE removes the snapshot too — the user asked for it to not exist.
	infos, err := c.SessionList(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		if err := c.SessionDelete(context.Background(), info.ID); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat(filepath.Join(dir, info.ID+snapshotExt)); !os.IsNotExist(err) {
			t.Fatalf("deleted session %s left its snapshot behind", info.ID)
		}
	}
	_ = srv
}
