package deck

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/golden-min.deck")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "golden-min" || d.Lambda != 200 {
		t.Fatalf("tech = %q λ=%d", d.Name, d.Lambda)
	}
	if len(d.Layers) != 2 || d.Layers[0].Name != "alpha" || d.Layers[0].Role != "metal" {
		t.Fatalf("layers = %+v", d.Layers)
	}
	if d.Layers[0].Width != 400 || d.Layers[0].Space != 600 {
		t.Fatalf("λ-dims: %+v", d.Layers[0])
	}
	if d.Layers[1].Width != 350 {
		t.Fatalf("raw dim: %+v", d.Layers[1])
	}
	if len(d.Spaces) != 3 {
		t.Fatalf("spaces = %+v", d.Spaces)
	}
	ab := d.Spaces[1]
	if ab.DiffNet != 300 || ab.SameNet != 200 || !ab.ExemptRelated || ab.Note != "alpha to beta" {
		t.Fatalf("a-b cell = %+v", ab)
	}
	if len(d.Devices) != 1 {
		t.Fatalf("devices = %+v", d.Devices)
	}
	dev := d.Devices[0]
	if dev.Class != "contact" || dev.Describe != "a widget" {
		t.Fatalf("device = %+v", dev)
	}
	if !reflect.DeepEqual(dev.Uses, []Use{{Role: "lower", Layer: "beta"}}) {
		t.Fatalf("uses = %+v", dev.Uses)
	}
	if !reflect.DeepEqual(dev.Params, []Param{{Key: "cut-size", Value: 400}, {Key: "metal-enclosure", Value: 200}}) {
		t.Fatalf("params = %+v", dev.Params)
	}
	if !reflect.DeepEqual(d.PowerNets, []string{"VDD"}) || !reflect.DeepEqual(d.GroundNets, []string{"GND", "vss"}) {
		t.Fatalf("rails = %v / %v", d.PowerNets, d.GroundNets)
	}
	if probs := Validate(d, Options{}); len(Errors(probs)) != 0 {
		t.Fatalf("golden deck should validate: %v", probs)
	}
}

// TestWriteParseIdempotent: canonicalizing any valid testdata deck is a
// fixed point — parse→write→parse yields the same Deck and the same text.
func TestWriteParseIdempotent(t *testing.T) {
	files, err := filepath.Glob("testdata/*.deck")
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		text1 := Write(d)
		d2, err := Parse(text1)
		if err != nil {
			t.Fatalf("%s: reparse of written deck: %v\n%s", f, err, text1)
		}
		stripLines(d)
		stripLines(d2)
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("%s: deck not stable under write/parse:\n%+v\nvs\n%+v", f, d, d2)
		}
		if text2 := Write(d2); text1 != text2 {
			t.Fatalf("%s: writer not idempotent:\n%s\nvs\n%s", f, text1, text2)
		}
	}
}

// stripLines zeroes source-line fields so decks from different texts
// compare by content.
func stripLines(d *Deck) {
	for i := range d.Layers {
		d.Layers[i].Line = 0
	}
	for i := range d.Spaces {
		d.Spaces[i].Line = 0
	}
	for i := range d.Devices {
		d.Devices[i].Line = 0
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no tech", "layer a cif=XA\n", "tech statement must come first"},
		{"missing tech", "# empty\n", "missing tech"},
		{"dup tech", "tech a\ntech b\n", "duplicate tech"},
		{"unknown stmt", "tech a\nfrobnicate x\n", "unknown statement"},
		{"bad lambda", "tech a lambda=abc\n", "bad lambda"},
		{"lambda-less λ", "tech a\nlayer l cif=XL width=2L\n", "no lambda"},
		{"bad fraction", "tech a lambda=100\nlayer l cif=XL width=2.7L\n", "half-λ"},
		{"odd lambda half", "tech a lambda=101\nlayer l cif=XL width=1.5L\n", "odd"},
		{"negative dim", "tech a\nlayer l cif=XL width=-3\n", "bad dimension"},
		{"huge lambda", "tech a lambda=9223372036854775807\n", "bad lambda"},
		{"λ overflow", "tech a lambda=1099511627776\nlayer l cif=XL width=2L\n", "exceeds"},
		{"raw dim overflow", "tech a\nlayer l cif=XL width=1099511627777\n", "exceeds"},
		{"layer no cif", "tech a\nlayer l\n", "needs cif"},
		{"space arity", "tech a\nlayer l cif=XL\nspace l\n", "two layer names"},
		{"orphan param", "tech a\nparam k=1\n", "outside a device"},
		{"orphan use", "tech a\nuse r=l\n", "outside a device"},
		{"param binds to device only", "tech a\ndevice d class=c\nlayer l cif=XL\nparam k=1\n", "outside a device"},
		{"device no class", "tech a\ndevice d\n", "needs class"},
		{"rail kind", "tech a\nrail sideways X\n", "power or ground"},
		{"unterminated quote", "tech a\nlayer l cif=XL role=\"oops\n", "unterminated quote"},
		{"spliced key space", "tech a\ndevice d class=c\n  use a\" \"b=x\n", "must not contain spaces"},
		{"spliced key hash", "tech a\ndevice d class=c\n  param a\"#\"=1\n", "must not contain spaces"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestValidateFindings(t *testing.T) {
	read := func(f string) *Deck {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Parse(string(src))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	asym := Validate(read("testdata/bad-asymmetric.deck"), Options{})
	if errs := Errors(asym); len(errs) != 1 || !strings.Contains(errs[0].Detail, "asymmetric") {
		t.Fatalf("asymmetric deck: %v", asym)
	}
	dup := Validate(read("testdata/bad-duplicate-layer.deck"), Options{})
	var wantDupLayer, wantDupCIF bool
	for _, p := range Errors(dup) {
		if strings.Contains(p.Detail, `duplicate layer "a"`) {
			wantDupLayer = true
		}
		if strings.Contains(p.Detail, `duplicate CIF code "XA"`) {
			wantDupCIF = true
		}
	}
	if !wantDupLayer || !wantDupCIF {
		t.Fatalf("duplicate-layer deck: %v", dup)
	}

	d, err := Parse("tech t\nlayer l cif=XL role=warp\nspace l l\nspace l ghost diff=3\ndevice d class=nope\n  use lower=ghost\n")
	if err != nil {
		t.Fatal(err)
	}
	probs := Validate(d, Options{KnownClasses: []string{"contact"}, KnownRoles: []string{"metal"}})
	wants := map[string]Severity{
		"unknown role \"warp\"":    Warning,
		"no audit note":            Warning,
		"unknown layer \"ghost\"":  Error,
		"unknown class \"nope\"":   Error,
		"unknown role \"lower\"":   Warning,
		"binds role \"lower\" to ": Error,
	}
	for want, sev := range wants {
		found := false
		for _, p := range probs {
			if strings.Contains(p.Detail, want) && p.Severity == sev {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %v finding containing %q in %v", sev, want, probs)
		}
	}
}

func TestValidateRepeats(t *testing.T) {
	d, err := Parse("tech t\nlayer l cif=XL\ndevice d class=c\n  param k=1\n  param k=2\n  use r=l\n  use r=l\ndevice d class=c\nrail power V V\n")
	if err != nil {
		t.Fatal(err)
	}
	probs := Validate(d, Options{})
	for _, want := range []string{"repeats param", "repeats use role", "duplicate device type", `rail net "V"`} {
		found := false
		for _, p := range Errors(probs) {
			if strings.Contains(p.Detail, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing error containing %q in %v", want, probs)
		}
	}
}

func TestDimCanonicalization(t *testing.T) {
	d := &Deck{Lambda: 250}
	for v, want := range map[int64]string{
		750: "3L", 375: "1.5L", 250: "1L", 125: "0.5L", 300: "300", 0: "0",
	} {
		if got := d.dim(v); got != want {
			t.Errorf("dim(%d) = %q, want %q", v, got, want)
		}
	}
	noLam := &Deck{}
	if got := noLam.dim(750); got != "750" {
		t.Errorf("λ-less dim = %q", got)
	}
}
