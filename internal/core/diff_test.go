package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomViolationSet builds a sorted violation multiset with deliberate
// duplicates and near-duplicates, the worst case for a merge diff.
func randomViolationSet(rng *rand.Rand, n int) []Violation {
	vs := make([]Violation, 0, n)
	for i := 0; i < n; i++ {
		v := Violation{
			Rule:     fmt.Sprintf("S.%d.%d.diff", rng.Intn(3), rng.Intn(3)),
			Severity: Severity(rng.Intn(2)),
			Detail:   fmt.Sprintf("d%d", rng.Intn(4)),
			Where:    geom.Rect{X1: int64(rng.Intn(5)) * 100, Y1: int64(rng.Intn(5)) * 100, X2: 600, Y2: 600},
			Symbol:   []string{"", "inv", "chip"}[rng.Intn(3)],
		}
		vs = append(vs, v)
		if rng.Intn(4) == 0 { // exact duplicate: multiset semantics matter
			vs = append(vs, v)
		}
	}
	sortViolations(vs)
	return vs
}

// applyDiff reconstructs new from old plus a (added, removed) diff — the
// reference patch operation the check service's delta clients perform.
func applyDiff(t *testing.T, old, added, removed []Violation) []Violation {
	t.Helper()
	out := make([]Violation, 0, len(old)+len(added))
	ri := 0
	for i := range old {
		if ri < len(removed) && CompareViolations(&old[i], &removed[ri]) == 0 {
			ri++
			continue
		}
		out = append(out, old[i])
	}
	if ri != len(removed) {
		t.Fatalf("removed entries not found in old: %d left", len(removed)-ri)
	}
	out = append(out, added...)
	sortViolations(out)
	return out
}

// TestDiffViolationsProperty: for random sorted multisets A and B,
// applying DiffViolations(A, B) to A reproduces B exactly, and the diff
// of a set against itself is empty.
func TestDiffViolationsProperty(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		old := randomViolationSet(rng, rng.Intn(12))
		new := randomViolationSet(rng, rng.Intn(12))

		added, removed := DiffViolations(old, new)
		got := applyDiff(t, old, added, removed)
		if len(got) != len(new) {
			t.Fatalf("trial %d: patched length %d, want %d", trial, len(got), len(new))
		}
		for i := range got {
			if CompareViolations(&got[i], &new[i]) != 0 {
				t.Fatalf("trial %d: patched[%d] = %+v, want %+v", trial, i, got[i], new[i])
			}
		}

		// Self-diff is empty, and every added/removed entry stays sorted.
		if a, r := DiffViolations(new, new); len(a) != 0 || len(r) != 0 {
			t.Fatalf("trial %d: self-diff produced %d added %d removed", trial, len(a), len(r))
		}
		for i := 1; i < len(added); i++ {
			if CompareViolations(&added[i-1], &added[i]) > 0 {
				t.Fatalf("trial %d: added not sorted", trial)
			}
		}
		for i := 1; i < len(removed); i++ {
			if CompareViolations(&removed[i-1], &removed[i]) > 0 {
				t.Fatalf("trial %d: removed not sorted", trial)
			}
		}
	}
}

// TestDiffViolationsDuplicates pins the pairwise-match rule: two equal
// findings against one leaves exactly one removed.
func TestDiffViolationsDuplicates(t *testing.T) {
	v := Violation{Rule: "W.ND", Detail: "too narrow", Where: geom.Rect{X1: 1, Y1: 2, X2: 3, Y2: 4}}
	old := []Violation{v, v}
	new := []Violation{v}
	added, removed := DiffViolations(old, new)
	if len(added) != 0 || len(removed) != 1 {
		t.Fatalf("added=%d removed=%d, want 0/1", len(added), len(removed))
	}
	added, removed = DiffViolations(new, old)
	if len(added) != 1 || len(removed) != 0 {
		t.Fatalf("added=%d removed=%d, want 1/0", len(added), len(removed))
	}
}
