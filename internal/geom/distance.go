package geom

import "math"

// RegionDist returns the minimum Euclidean distance between two regions
// (0 if they touch or overlap) along with a realizing pair of points — the
// paper's "line of closest approach", along which the 2-D process model
// translates one element and evaluates the exposure function.
//
// The walk iterates the canonical band decompositions directly (no rect
// materialization, no allocation) and prunes whole band pairs by their
// vertical separation, which already lower-bounds the Euclidean distance.
func RegionDist(a, b Region) (float64, Point, Point) {
	best := math.Inf(1)
	var pa, pb Point
	for ai := range a.bands {
		ba := &a.bands[ai]
		for bi := range b.bands {
			bb := &b.bands[bi]
			if dy := bandGap(ba, bb); float64(dy) >= best {
				if bb.y1 >= ba.y2 {
					break // later b bands are even further down-sweep
				}
				continue
			}
			for _, sa := range ba.spans {
				qa := Rect{sa.X1, ba.y1, sa.X2, ba.y2}
				for _, sb := range bb.spans {
					qb := Rect{sb.X1, bb.y1, sb.X2, bb.y2}
					// Cheap lower bound before the exact computation.
					if lb := float64(qa.OrthogonalDist(qb)); lb >= best {
						continue
					}
					d := qa.EuclideanDist(qb)
					if d < best {
						best = d
						pa, pb = qa.ClosestPoints(qb)
						if best == 0 {
							return 0, pa, pb
						}
					}
				}
			}
		}
	}
	return best, pa, pb
}

// bandGap returns the vertical separation of two bands (0 when their y
// ranges overlap).
func bandGap(a, b *band) int64 {
	if a.y2 <= b.y1 {
		return b.y1 - a.y2
	}
	if b.y2 <= a.y1 {
		return a.y1 - b.y2
	}
	return 0
}

// RegionOrthoDist returns the minimum orthogonal (L∞) separation between
// two regions: the smallest s such that dilating a by s overlaps b. This is
// the distance measured by traditional expand-check-overlap spacing.
func RegionOrthoDist(a, b Region) int64 {
	var best int64 = math.MaxInt64
	for ai := range a.bands {
		ba := &a.bands[ai]
		for bi := range b.bands {
			bb := &b.bands[bi]
			if dy := bandGap(ba, bb); dy >= best {
				if bb.y1 >= ba.y2 {
					break
				}
				continue
			}
			for _, sa := range ba.spans {
				qa := Rect{sa.X1, ba.y1, sa.X2, ba.y2}
				for _, sb := range bb.spans {
					qb := Rect{sb.X1, bb.y1, sb.X2, bb.y2}
					if d := qa.OrthogonalDist(qb); d < best {
						best = d
						if best == 0 {
							return 0
						}
					}
				}
			}
		}
	}
	return best
}

// LineOfClosestApproach returns the unit direction from a toward b along
// the closest-approach segment, the two endpoints, and the distance. For
// overlapping regions the direction is zero.
func LineOfClosestApproach(a, b Region) (dir FPoint, from, to Point, dist float64) {
	dist, from, to = RegionDist(a, b)
	if dist == 0 {
		return FPoint{}, from, to, 0
	}
	dx := float64(to.X - from.X)
	dy := float64(to.Y - from.Y)
	n := math.Hypot(dx, dy)
	return FPoint{dx / n, dy / n}, from, to, dist
}
