package geom

import (
	"math/rand"
	"testing"
)

// ---- Naive cell-set reference for the rule kernels --------------------
//
// The reference works on explicit unit-cell sets with definitional
// morphology: erosion is an all-cells-present window test, directed
// dilation a row/column sweep, opening a brute-force fully-inscribed
// window scan. Each optimized kernel is checked against it over seeded
// fuzz inputs with coverage + witness assertions (the kernels return
// component bounding rects, not exact violation geometry, so the checks
// are: every reference violating cell lies in some returned rect, and
// every returned rect contains at least one reference violating cell).

type cellSet map[Point]bool

func rasterize(rs []Rect) cellSet {
	cs := make(cellSet)
	for _, r := range rs {
		for x := r.X1; x < r.X2; x++ {
			for y := r.Y1; y < r.Y2; y++ {
				cs[Point{x, y}] = true
			}
		}
	}
	return cs
}

func (cs cellSet) erode(m int64) cellSet {
	out := make(cellSet)
	for p := range cs {
		ok := true
		for dx := -m; ok && dx <= m; dx++ {
			for dy := -m; dy <= m; dy++ {
				if !cs[Point{p.X + dx, p.Y + dy}] {
					ok = false
					break
				}
			}
		}
		if ok {
			out[p] = true
		}
	}
	return out
}

func (cs cellSet) dilateAxis(dx, dy int64) cellSet {
	out := make(cellSet)
	for p := range cs {
		for v := -dx; v <= dx; v++ {
			out[Point{p.X + v, p.Y}] = true
		}
		for v := -dy; v <= dy; v++ {
			out[Point{p.X, p.Y + v}] = true
		}
	}
	return out
}

func (cs cellSet) minus(o cellSet) cellSet {
	out := make(cellSet)
	for p := range cs {
		if !o[p] {
			out[p] = true
		}
	}
	return out
}

func (cs cellSet) intersect(o cellSet) cellSet {
	out := make(cellSet)
	for p := range cs {
		if o[p] {
			out[p] = true
		}
	}
	return out
}

// openCovered returns the cells covered by some fully-present w×w window
// — the opening of the set by a w-square, evaluated definitionally.
func (cs cellSet) openCovered(w int64) cellSet {
	out := make(cellSet)
	if len(cs) == 0 || w <= 0 {
		return out
	}
	var minX, minY, maxX, maxY int64
	first := true
	for p := range cs {
		if first {
			minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
			first = false
			continue
		}
		minX, maxX = min(minX, p.X), max(maxX, p.X)
		minY, maxY = min(minY, p.Y), max(maxY, p.Y)
	}
	for x0 := minX; x0 <= maxX-w+1; x0++ {
	window:
		for y0 := minY; y0 <= maxY-w+1; y0++ {
			for dx := int64(0); dx < w; dx++ {
				for dy := int64(0); dy < w; dy++ {
					if !cs[Point{x0 + dx, y0 + dy}] {
						continue window
					}
				}
			}
			for dx := int64(0); dx < w; dx++ {
				for dy := int64(0); dy < w; dy++ {
					out[Point{x0 + dx, y0 + dy}] = true
				}
			}
		}
	}
	return out
}

// components splits the set into 4-connected (shared-edge) components.
func (cs cellSet) components() []cellSet {
	seen := make(cellSet)
	var out []cellSet
	for p := range cs {
		if seen[p] {
			continue
		}
		comp := make(cellSet)
		stack := []Point{p}
		seen[p] = true
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp[q] = true
			for _, n := range []Point{{q.X + 1, q.Y}, {q.X - 1, q.Y}, {q.X, q.Y + 1}, {q.X, q.Y - 1}} {
				if cs[n] && !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// checkCoverageWitness asserts the coverage + witness relation between a
// kernel's component rects and the reference violating cell set.
func checkCoverageWitness(t *testing.T, trial int, name string, got []Rect, want cellSet) {
	t.Helper()
	if (len(got) == 0) != (len(want) == 0) {
		t.Fatalf("trial %d: %s: kernel returned %d rects, reference has %d violating cells",
			trial, name, len(got), len(want))
	}
	for p := range want {
		covered := false
		for _, r := range got {
			if p.X >= r.X1 && p.X < r.X2 && p.Y >= r.Y1 && p.Y < r.Y2 {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("trial %d: %s: reference violating cell %v not covered by any returned rect %v",
				trial, name, p, got)
		}
	}
	for _, r := range got {
		witness := false
		for p := range want {
			if p.X >= r.X1 && p.X < r.X2 && p.Y >= r.Y1 && p.Y < r.Y2 {
				witness = true
				break
			}
		}
		if !witness {
			t.Fatalf("trial %d: %s: returned rect %v contains no reference violating cell", trial, name, r)
		}
	}
}

func TestEncloseViolationsMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 120; trial++ {
		ro := randRects(rng, 1+rng.Intn(8), 40, 12)
		ri := randRects(rng, 1+rng.Intn(6), 40, 10)
		m := int64(rng.Intn(5))
		got := EncloseViolations(FromRects(ri), FromRects(ro), m)
		inner, outer := rasterize(ri), rasterize(ro)
		var keep cellSet
		if m <= 0 {
			keep = outer
		} else {
			keep = outer.erode(m)
		}
		checkCoverageWitness(t, trial, "enclose", got, inner.minus(keep))
	}
}

func TestEncloseViolationsExactMargin(t *testing.T) {
	inner := FromRectR(R(0, 0, 500, 500))
	outer := FromRectR(R(-250, -250, 750, 750))
	if vs := EncloseViolations(inner, outer, 250); len(vs) != 0 {
		t.Fatalf("exact 250 margin must pass, got %v", vs)
	}
	// Shave the east margin to 125: exactly one deficiency sliver.
	outer = FromRectR(R(-250, -250, 625, 750))
	vs := EncloseViolations(inner, outer, 250)
	if len(vs) != 1 || vs[0] != R(375, 0, 500, 500) {
		t.Fatalf("one-sided deficiency: got %v, want [(375,0)-(500,500)]", vs)
	}
}

func TestComponentAreaViolationsMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 120; trial++ {
		rs := randRects(rng, 1+rng.Intn(10), 60, 10)
		minArea := int64(1 + rng.Intn(80))
		got := ComponentAreaViolations(FromRects(rs), minArea)
		want := make(cellSet)
		for _, comp := range rasterize(rs).components() {
			if int64(len(comp)) < minArea {
				for p := range comp {
					want[p] = true
				}
			}
		}
		checkCoverageWitness(t, trial, "area", got, want)
	}
}

func TestOverlapViolationsMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		ra := randRects(rng, 1+rng.Intn(8), 40, 12)
		rb := randRects(rng, 1+rng.Intn(8), 40, 12)
		m := int64(1 + rng.Intn(6))
		got := OverlapViolations(FromRects(ra), FromRects(rb), m)
		ovl := rasterize(ra).intersect(rasterize(rb))
		checkCoverageWitness(t, trial, "overlap", got, ovl.minus(ovl.openCovered(m)))
	}
}

func TestExtendViolationsMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 120; trial++ {
		ra := randRects(rng, 1+rng.Intn(8), 40, 12)
		rb := randRects(rng, 1+rng.Intn(8), 40, 12)
		d := int64(1 + rng.Intn(5))
		got := ExtendViolations(FromRects(ra), FromRects(rb), d)
		a, b := rasterize(ra), rasterize(rb)
		c := a.intersect(b)
		want := c.dilateAxis(d, d).minus(b).minus(a)
		checkCoverageWitness(t, trial, "extend", got, want)
	}
}

// TestExtendViolationsGate locks the Figure 8 gate scenario: a poly wire
// fully crossing a diffusion wire passes, a flush-ended gate fires.
func TestExtendViolationsGate(t *testing.T) {
	diff := FromRectR(R(-750, -250, 750, 250))
	poly := FromRectR(R(-250, -750, 250, 750)) // extends 500 past both edges
	if vs := ExtendViolations(poly, diff, 500); len(vs) != 0 {
		t.Fatalf("full crossing must pass, got %v", vs)
	}
	flush := FromRectR(R(-250, -750, 250, 250)) // stops flush with the north edge
	vs := ExtendViolations(flush, diff, 500)
	if len(vs) != 1 || vs[0] != R(-250, 250, 250, 750) {
		t.Fatalf("flush gate: got %v, want [(-250,250)-(250,750)]", vs)
	}
}

// ---- Allocation regression guards -------------------------------------
//
// The rule kernels sit on the definition-level hot path of both
// pipelines; like the boolean-op guards above, these fail the build if a
// change reintroduces per-band allocation. The budgets are small
// constants (scratch regions + the result slice), independent of input
// size.

func TestRuleKernelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; guards run in the non-race CI step")
	}
	a := FromRects(noisyRects(200))
	outer := a.Dilate(50)
	blob := a.Dilate(500) // fused into one component
	eroded := a.Erode(20)

	cases := []struct {
		name   string
		budget float64
		run    func()
	}{
		{"EncloseViolations(pass)", 12, func() { _ = EncloseViolations(a, outer, 50) }},
		{"ComponentAreaViolations(pass)", 12, func() { _ = ComponentAreaViolations(blob, 1) }},
		{"OverlapViolations(pass)", 16, func() { _ = OverlapViolations(a, a, 10) }},
		{"ExtendViolations(pass)", 16, func() { _ = ExtendViolations(a, eroded, 10) }},
	}
	for _, c := range cases {
		c.run() // warm the sweeper pool
		if avg := testing.AllocsPerRun(50, c.run); avg > c.budget {
			t.Fatalf("%s allocates %.1f/op, want <= %.0f", c.name, avg, c.budget)
		}
	}
}
