package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolygonAreaAndWinding(t *testing.T) {
	sq := Poly(0, 0, 10, 0, 10, 10, 0, 10)
	if got := sq.Area(); got != 100 {
		t.Fatalf("area = %d", got)
	}
	if !sq.IsCCW() {
		t.Fatal("square given CCW should report CCW")
	}
	rev := Poly(0, 10, 10, 10, 10, 0, 0, 0)
	if rev.IsCCW() {
		t.Fatal("reversed square should be CW")
	}
	if got := rev.Area(); got != 100 {
		t.Fatalf("area of CW square = %d", got)
	}
}

func TestPolygonBoundsEdges(t *testing.T) {
	l := Poly(0, 0, 30, 0, 30, 10, 10, 10, 10, 30, 0, 30)
	if got := l.Bounds(); got != R(0, 0, 30, 30) {
		t.Fatalf("bounds = %v", got)
	}
	if got := len(l.Edges()); got != 6 {
		t.Fatalf("edges = %d", got)
	}
	if !l.IsRectilinear() {
		t.Fatal("L should be rectilinear")
	}
	tri := Poly(0, 0, 10, 0, 5, 8)
	if tri.IsRectilinear() {
		t.Fatal("triangle should not be rectilinear")
	}
}

func TestPolygonToRectsL(t *testing.T) {
	l := Poly(0, 0, 30, 0, 30, 10, 10, 10, 10, 30, 0, 30)
	rects, err := l.ToRects()
	if err != nil {
		t.Fatal(err)
	}
	var area int64
	for _, r := range rects {
		area += r.Area()
	}
	if area != l.Area() {
		t.Fatalf("decomposed area %d != polygon area %d", area, l.Area())
	}
	reg := FromRects(rects)
	if reg.Area() != l.Area() {
		t.Fatalf("region area %d != polygon area %d (overlapping rects?)", reg.Area(), l.Area())
	}
}

func TestPolygonToRectsErrors(t *testing.T) {
	if _, err := Poly(0, 0, 10, 0, 5, 8).ToRects(); err == nil {
		t.Fatal("triangle must be rejected")
	}
	short := Polygon{Pt(0, 0), Pt(1, 0)}
	if _, err := short.ToRects(); err == nil {
		t.Fatal("2-vertex polygon must be rejected")
	}
	if _, err := Poly(0, 0, 10, 0, 10, 0, 10, 10, 0, 10).ToRects(); err == nil {
		t.Fatal("zero-length edge must be rejected")
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	l := Poly(0, 0, 30, 0, 30, 10, 10, 10, 10, 30, 0, 30)
	if !l.ContainsPoint(Pt(5, 5)) {
		t.Fatal("(5,5) should be inside the L")
	}
	if !l.ContainsPoint(Pt(25, 5)) {
		t.Fatal("(25,5) should be inside the L arm")
	}
	if l.ContainsPoint(Pt(20, 20)) {
		t.Fatal("(20,20) is in the L notch, outside")
	}
	if l.ContainsPoint(Pt(-5, 5)) {
		t.Fatal("(-5,5) is outside")
	}
}

func TestPolygonTransform(t *testing.T) {
	sq := Poly(0, 0, 10, 0, 10, 10, 0, 10)
	moved := sq.Translate(Pt(5, 5))
	if got := moved.Bounds(); got != R(5, 5, 15, 15) {
		t.Fatalf("translate bounds = %v", got)
	}
	rot := sq.TransformBy(NewTransform(R90, Pt(0, 0)))
	if got := rot.Area(); got != 100 {
		t.Fatalf("rotated area = %d", got)
	}
}

func TestFromRectPolygon(t *testing.T) {
	p := FromRect(R(1, 2, 5, 9))
	if got := p.Area(); got != 28 {
		t.Fatalf("area = %d", got)
	}
	if !p.IsCCW() {
		t.Fatal("FromRect should be CCW")
	}
}

// Property: ToRects round-trips through Region with exact area, for random
// rectilinear polygons built as unions converted back via contours.
func TestQuickPolygonRegionAreaAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := randomRegion(rng, 5)
		loops := reg.Contours()
		// Sum of signed loop areas must equal region area (holes negative).
		var signed int64
		for _, lp := range loops {
			signed += lp.SignedArea2()
		}
		return signed == 2*reg.Area()
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPerimeterRectilinear(t *testing.T) {
	sq := Poly(0, 0, 10, 0, 10, 10, 0, 10)
	if got := sq.PerimeterRectilinear(); got != 40 {
		t.Fatalf("perimeter = %d", got)
	}
}

func TestPolyPanicsOnOddCoords(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poly with odd coords must panic")
		}
	}()
	Poly(1, 2, 3)
}
