package perfbench

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSummarizeLatencies(t *testing.T) {
	if got := SummarizeLatencies(nil); got.Count != 0 || got.P99NS != 0 {
		t.Fatalf("empty summary not zero: %+v", got)
	}

	// 1ms..100ms: nearest-rank percentiles land on exact samples.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	// Order must not matter.
	samples[0], samples[99] = samples[99], samples[0]
	s := SummarizeLatencies(samples)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50NS != (50 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p50 = %v", time.Duration(s.P50NS))
	}
	if s.P95NS != (95 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p95 = %v", time.Duration(s.P95NS))
	}
	if s.P99NS != (99 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p99 = %v", time.Duration(s.P99NS))
	}
	if s.MaxNS != (100 * time.Millisecond).Nanoseconds() {
		t.Fatalf("max = %v", time.Duration(s.MaxNS))
	}
	if want := float64((50500 * time.Microsecond).Nanoseconds()); s.MeanN != want {
		t.Fatalf("mean = %v, want %v", s.MeanN, want)
	}

	one := SummarizeLatencies([]time.Duration{7 * time.Millisecond})
	if one.P50NS != one.P99NS || one.P99NS != one.MaxNS {
		t.Fatalf("single-sample percentiles disagree: %+v", one)
	}
}

func TestLoadSnapshotArtifact(t *testing.T) {
	snap := LoadSnapshot{Date: "2026-08-08", Sessions: 4, Chaos: true,
		ErrClass: map[string]uint64{"overload": 3}}
	if snap.Filename() != "BENCH_LOAD_2026-08-08.json" {
		t.Fatalf("filename = %s", snap.Filename())
	}
	out, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back LoadSnapshot
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.ErrClass["overload"] != 3 || !back.Chaos {
		t.Fatalf("artifact did not round-trip: %+v", back)
	}
}
