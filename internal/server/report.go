// Package server is the concurrent DRC check service: a long-running
// HTTP/JSON daemon (cmd/dicheckd) that manages named check sessions, each
// owning one incremental core.Engine and one design, plus the client
// library the shipped tools and the integration tests drive it with.
//
// The wire report below is the same machine-readable projection of
// core.Report that `dicheck -json` prints, extended with the fingerprint
// digest: field names are part of the output contract; extend, don't
// rename.
package server

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// Report is the wire form of a check report.
type Report struct {
	Design   string `json:"design"`
	Clean    bool   `json:"clean"`
	Errors   int    `json:"errors"`
	Warnings int    `json:"warnings"`
	// Fingerprint is core.FingerprintDigest of the report: equal digests
	// mean the duration-free report content is byte-identical, the parity
	// contract between a served session and an offline Recheck replaying
	// the same edit script.
	Fingerprint string `json:"fingerprint"`
	// Classes tallies violations by coarse rule class (core.RuleClass):
	// {"spacing": 3, "width": 1, ...}. Only non-zero classes appear.
	Classes    map[string]int `json:"classes,omitempty"`
	Violations []Violation    `json:"violations"`
	Stages     []Stage        `json:"stages"`
	Stats      Stats          `json:"stats"`
	Netlist    *Netlist       `json:"netlist,omitempty"`
	Engine     *EngineStats   `json:"engine,omitempty"`
}

// Violation is the wire form of one finding.
type Violation struct {
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	Detail   string   `json:"detail"`
	Where    Rect     `json:"where"`
	Symbol   string   `json:"symbol,omitempty"`
	Path     string   `json:"path,omitempty"`
	Layer    int      `json:"layer"`
	Nets     []string `json:"nets,omitempty"`
}

// Rect is the wire form of a geom.Rect.
type Rect struct {
	X1 int64 `json:"x1"`
	Y1 int64 `json:"y1"`
	X2 int64 `json:"x2"`
	Y2 int64 `json:"y2"`
}

// Stage is one pipeline stage's timing and counters.
type Stage struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Checks     int    `json:"checks"`
	Violations int    `json:"violations"`
}

// Stats is the wire form of core.Stats.
type Stats struct {
	ElementsChecked        int `json:"elements_checked"`
	SymbolDefsChecked      int `json:"symbol_defs_checked"`
	DeviceInstances        int `json:"device_instances"`
	InteractionCandidates  int `json:"interaction_candidates"`
	InteractionChecked     int `json:"interaction_checked"`
	SkippedNoRule          int `json:"skipped_no_rule"`
	SkippedSameNetExempt   int `json:"skipped_same_net_exempt"`
	SkippedRelated         int `json:"skipped_related"`
	SkippedConnectionPairs int `json:"skipped_connection_pairs"`
	ProcessDowngrades      int `json:"process_downgrades"`
}

// Netlist summarizes the extracted netlist.
type Netlist struct {
	Nets    int `json:"nets"`
	Devices int `json:"devices"`
}

// EngineStats is the wire form of core.EngineStats. CtxHits/CtxMisses are
// the netlist cache's span-context counters (derived-by-translation vs
// built-from-scratch); WindowPatched reports whether the last run took the
// windowed root-patch fast path.
type EngineStats struct {
	Runs          int  `json:"runs"`
	Symbols       int  `json:"symbols"`
	DirtySymbols  int  `json:"dirty_symbols"`
	ArtifactDefs  int  `json:"artifact_defs"`
	InterBuilt    int  `json:"inter_built"`
	InterReused   int  `json:"inter_reused"`
	SigMisses     int  `json:"sig_misses"`
	SigHits       int  `json:"sig_hits"`
	CtxHits       int  `json:"ctx_hits"`
	CtxMisses     int  `json:"ctx_misses"`
	WindowPatched bool `json:"window_patched"`
}

func rectWire(r geom.Rect) Rect { return Rect{r.X1, r.Y1, r.X2, r.Y2} }

func engineWire(es core.EngineStats) *EngineStats {
	return &EngineStats{
		Runs: es.Runs, Symbols: es.Symbols, DirtySymbols: es.DirtySymbols,
		ArtifactDefs: es.ArtifactDefs, InterBuilt: es.InterBuilt,
		InterReused: es.InterReused, SigMisses: es.SigMisses, SigHits: es.SigHits,
		CtxHits: es.CtxHits, CtxMisses: es.CtxMisses, WindowPatched: es.WindowPatched,
	}
}

// BuildReport projects a core.Report (and, when non-nil, the engine that
// produced it) into the wire form.
func BuildReport(rep *core.Report, eng *core.Engine) *Report {
	errs := rep.Errors()
	out := &Report{
		Design:      rep.Design.Name,
		Clean:       rep.Clean(),
		Errors:      len(errs),
		Warnings:    len(rep.Violations) - len(errs),
		Fingerprint: core.FingerprintDigest(rep),
		Violations:  make([]Violation, 0, len(rep.Violations)),
	}
	if len(rep.Violations) > 0 {
		out.Classes = core.CountByClass(rep.Violations)
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, Violation{
			Rule:     v.Rule,
			Severity: v.Severity.String(),
			Detail:   v.Detail,
			Where:    rectWire(v.Where),
			Symbol:   v.Symbol,
			Path:     v.Path,
			Layer:    int(v.Layer),
			Nets:     v.Nets,
		})
	}
	for _, s := range rep.Stats.Stages {
		out.Stages = append(out.Stages, Stage{
			Name:       s.Name,
			DurationNS: s.Duration.Nanoseconds(),
			Checks:     s.Checks,
			Violations: s.Violations,
		})
	}
	st := rep.Stats
	out.Stats = Stats{
		ElementsChecked:        st.ElementsChecked,
		SymbolDefsChecked:      st.SymbolDefsChecked,
		DeviceInstances:        st.DeviceInstances,
		InteractionCandidates:  st.InteractionCandidates,
		InteractionChecked:     st.InteractionChecked,
		SkippedNoRule:          st.SkippedNoRule,
		SkippedSameNetExempt:   st.SkippedSameNetExempt,
		SkippedRelated:         st.SkippedRelated,
		SkippedConnectionPairs: st.SkippedConnectionPairs,
		ProcessDowngrades:      st.ProcessDowngrades,
	}
	if rep.Netlist != nil {
		out.Netlist = &Netlist{Nets: rep.Netlist.NumNets(), Devices: len(rep.Netlist.Devices)}
	}
	if eng != nil {
		out.Engine = engineWire(eng.Stats())
	}
	return out
}

// CountRules tallies wire violations by rule name (the summary the CLI
// prints when not verbose).
func CountRules(vs []Violation) map[string]int {
	out := map[string]int{}
	for _, v := range vs {
		out[v.Rule]++
	}
	return out
}
