package geom

import (
	"fmt"
	"sort"
	"strings"
)

// Span is a half-open horizontal interval [X1, X2).
type Span struct {
	X1, X2 int64
}

// band is a horizontal slab [Y1, Y2) carrying a canonical span list:
// spans are sorted, pairwise disjoint, and non-adjacent (touching spans are
// merged), and every span is non-degenerate.
type band struct {
	y1, y2 int64
	spans  []Span
}

// Region is a finite union of axis-aligned rectangles held in canonical
// slab form: bands are sorted by y, non-overlapping, maximal (vertically
// adjacent bands with identical span lists are merged). All set semantics
// are half-open ([x1,x2)×[y1,y2)), matching area semantics: shapes that
// share only an edge or corner have disjoint interiors but an edge-sharing
// pair still fuses into a single connected component (corner-sharing does
// not), which is the physical connectivity of fabricated geometry.
//
// The zero value is the empty region and is ready to use.
type Region struct {
	bands []band
}

// EmptyRegion returns an empty region.
func EmptyRegion() Region { return Region{} }

// FromRectR returns the region covering a single rect.
func FromRectR(r Rect) Region {
	if r.Empty() {
		return Region{}
	}
	return Region{bands: []band{{r.Y1, r.Y2, []Span{{r.X1, r.X2}}}}}
}

// FromRects returns the union of the given rects. Degenerate rects are
// ignored. The construction is a single y-sweep with per-band 1-D union,
// O((n + bands) log n).
func FromRects(rs []Rect) Region {
	live := rs[:0:0]
	for _, r := range rs {
		if !r.Empty() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return Region{}
	}
	ys := make([]int64, 0, 2*len(live))
	for _, r := range live {
		ys = append(ys, r.Y1, r.Y2)
	}
	ys = dedupSortedInt64(ys)

	// Event lists: rects starting and ending at each elementary band edge.
	starts := make(map[int64][]int)
	ends := make(map[int64][]int)
	for i, r := range live {
		starts[r.Y1] = append(starts[r.Y1], i)
		ends[r.Y2] = append(ends[r.Y2], i)
	}
	active := make(map[int]bool)
	var out Region
	for i := 0; i+1 < len(ys); i++ {
		yLo, yHi := ys[i], ys[i+1]
		for _, id := range starts[yLo] {
			active[id] = true
		}
		for _, id := range ends[yLo] {
			delete(active, id)
		}
		if len(active) == 0 {
			continue
		}
		spans := make([]Span, 0, len(active))
		for id := range active {
			spans = append(spans, Span{live[id].X1, live[id].X2})
		}
		spans = unionSpans(spans)
		out.appendBand(yLo, yHi, spans)
	}
	return out
}

// FromPolygon converts a simple rectilinear polygon to a region.
func FromPolygon(p Polygon) (Region, error) {
	rects, err := p.ToRects()
	if err != nil {
		return Region{}, err
	}
	return FromRects(rects), nil
}

// appendBand adds a band to the region under construction, merging it with
// the previous band when they are vertically adjacent with equal spans.
func (r *Region) appendBand(y1, y2 int64, spans []Span) {
	if y1 >= y2 || len(spans) == 0 {
		return
	}
	if n := len(r.bands); n > 0 {
		prev := &r.bands[n-1]
		if prev.y2 == y1 && spansEqual(prev.spans, spans) {
			prev.y2 = y2
			return
		}
	}
	r.bands = append(r.bands, band{y1, y2, spans})
}

// unionSpans canonicalizes an arbitrary span list: sort, merge overlapping
// and touching intervals, drop degenerates.
func unionSpans(spans []Span) []Span {
	live := spans[:0]
	for _, s := range spans {
		if s.X1 < s.X2 {
			live = append(live, s)
		}
	}
	if len(live) <= 1 {
		return live
	}
	sort.Slice(live, func(a, b int) bool { return live[a].X1 < live[b].X1 })
	out := live[:1]
	for _, s := range live[1:] {
		last := &out[len(out)-1]
		if s.X1 <= last.X2 {
			if s.X2 > last.X2 {
				last.X2 = s.X2
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

func spansEqual(a, b []Span) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Empty reports whether the region covers zero area.
func (r Region) Empty() bool { return len(r.bands) == 0 }

// Area returns the covered area.
func (r Region) Area() int64 {
	var a int64
	for _, b := range r.bands {
		h := b.y2 - b.y1
		for _, s := range b.spans {
			a += (s.X2 - s.X1) * h
		}
	}
	return a
}

// Bounds returns the bounding box of the region.
func (r Region) Bounds() Rect {
	if r.Empty() {
		return Rect{}
	}
	out := Rect{Y1: r.bands[0].y1, Y2: r.bands[len(r.bands)-1].y2}
	first := true
	for _, b := range r.bands {
		x1 := b.spans[0].X1
		x2 := b.spans[len(b.spans)-1].X2
		if first {
			out.X1, out.X2 = x1, x2
			first = false
			continue
		}
		out.X1 = minInt64(out.X1, x1)
		out.X2 = maxInt64(out.X2, x2)
	}
	return out
}

// Rects returns the band decomposition of the region as non-overlapping
// rects (one per band×span). The list is in canonical order.
func (r Region) Rects() []Rect {
	var out []Rect
	for _, b := range r.bands {
		for _, s := range b.spans {
			out = append(out, Rect{s.X1, b.y1, s.X2, b.y2})
		}
	}
	return out
}

// NumRects returns the number of rects in the canonical decomposition.
func (r Region) NumRects() int {
	n := 0
	for _, b := range r.bands {
		n += len(b.spans)
	}
	return n
}

// ContainsPoint reports whether p lies in the half-open covered set.
func (r Region) ContainsPoint(p Point) bool {
	i := sort.Search(len(r.bands), func(i int) bool { return r.bands[i].y2 > p.Y })
	if i >= len(r.bands) || r.bands[i].y1 > p.Y {
		return false
	}
	b := r.bands[i]
	j := sort.Search(len(b.spans), func(j int) bool { return b.spans[j].X2 > p.X })
	return j < len(b.spans) && b.spans[j].X1 <= p.X
}

// binaryOp computes the pointwise boolean combination of a and b.
func binaryOp(a, b Region, op func(inA, inB bool) bool) Region {
	if a.Empty() && b.Empty() {
		return Region{}
	}
	ys := make([]int64, 0, 2*(len(a.bands)+len(b.bands)))
	for _, bd := range a.bands {
		ys = append(ys, bd.y1, bd.y2)
	}
	for _, bd := range b.bands {
		ys = append(ys, bd.y1, bd.y2)
	}
	ys = dedupSortedInt64(ys)

	var out Region
	ai, bi := 0, 0
	for i := 0; i+1 < len(ys); i++ {
		yLo, yHi := ys[i], ys[i+1]
		for ai < len(a.bands) && a.bands[ai].y2 <= yLo {
			ai++
		}
		for bi < len(b.bands) && b.bands[bi].y2 <= yLo {
			bi++
		}
		var sa, sb []Span
		if ai < len(a.bands) && a.bands[ai].y1 <= yLo && yHi <= a.bands[ai].y2 {
			sa = a.bands[ai].spans
		}
		if bi < len(b.bands) && b.bands[bi].y1 <= yLo && yHi <= b.bands[bi].y2 {
			sb = b.bands[bi].spans
		}
		spans := combineSpans(sa, sb, op)
		out.appendBand(yLo, yHi, spans)
	}
	return out
}

// combineSpans evaluates op over the elementary x-intervals induced by the
// two canonical span lists and merges the resulting intervals.
func combineSpans(sa, sb []Span, op func(bool, bool) bool) []Span {
	if len(sa) == 0 && len(sb) == 0 {
		if op(false, false) {
			panic("geom: unbounded span combination")
		}
		return nil
	}
	xs := make([]int64, 0, 2*(len(sa)+len(sb)))
	for _, s := range sa {
		xs = append(xs, s.X1, s.X2)
	}
	for _, s := range sb {
		xs = append(xs, s.X1, s.X2)
	}
	xs = dedupSortedInt64(xs)
	var out []Span
	ia, ib := 0, 0
	for i := 0; i+1 < len(xs); i++ {
		xLo, xHi := xs[i], xs[i+1]
		for ia < len(sa) && sa[ia].X2 <= xLo {
			ia++
		}
		for ib < len(sb) && sb[ib].X2 <= xLo {
			ib++
		}
		inA := ia < len(sa) && sa[ia].X1 <= xLo
		inB := ib < len(sb) && sb[ib].X1 <= xLo
		if !op(inA, inB) {
			continue
		}
		if n := len(out); n > 0 && out[n-1].X2 == xLo {
			out[n-1].X2 = xHi
		} else {
			out = append(out, Span{xLo, xHi})
		}
	}
	return out
}

// Union returns r ∪ s.
func (r Region) Union(s Region) Region {
	return binaryOp(r, s, func(a, b bool) bool { return a || b })
}

// Intersect returns r ∩ s.
func (r Region) Intersect(s Region) Region {
	return binaryOp(r, s, func(a, b bool) bool { return a && b })
}

// Subtract returns r \ s.
func (r Region) Subtract(s Region) Region {
	return binaryOp(r, s, func(a, b bool) bool { return a && !b })
}

// Xor returns the symmetric difference of r and s.
func (r Region) Xor(s Region) Region {
	return binaryOp(r, s, func(a, b bool) bool { return a != b })
}

// Equal reports whether r and s cover exactly the same set.
func (r Region) Equal(s Region) bool {
	if len(r.bands) != len(s.bands) {
		return false
	}
	for i := range r.bands {
		if r.bands[i].y1 != s.bands[i].y1 || r.bands[i].y2 != s.bands[i].y2 {
			return false
		}
		if !spansEqual(r.bands[i].spans, s.bands[i].spans) {
			return false
		}
	}
	return true
}

// Overlaps reports whether r and s share any interior area, without
// materializing the intersection.
func (r Region) Overlaps(s Region) bool {
	ri, si := 0, 0
	for ri < len(r.bands) && si < len(s.bands) {
		rb, sb := r.bands[ri], s.bands[si]
		if rb.y2 <= sb.y1 {
			ri++
			continue
		}
		if sb.y2 <= rb.y1 {
			si++
			continue
		}
		if spansOverlap(rb.spans, sb.spans) {
			return true
		}
		if rb.y2 <= sb.y2 {
			ri++
		} else {
			si++
		}
	}
	return false
}

func spansOverlap(sa, sb []Span) bool {
	ia, ib := 0, 0
	for ia < len(sa) && ib < len(sb) {
		a, b := sa[ia], sb[ib]
		if a.X2 <= b.X1 {
			ia++
			continue
		}
		if b.X2 <= a.X1 {
			ib++
			continue
		}
		return true
	}
	return false
}

// OverlapsRect reports whether r shares interior area with rect q.
func (r Region) OverlapsRect(q Rect) bool {
	if q.Empty() {
		return false
	}
	return r.Overlaps(FromRectR(q))
}

// ContainsRegion reports whether s ⊆ r.
func (r Region) ContainsRegion(s Region) bool {
	return s.Subtract(r).Empty()
}

// Clip returns r ∩ rect.
func (r Region) Clip(q Rect) Region { return r.Intersect(FromRectR(q)) }

// Translate returns the region moved by d.
func (r Region) Translate(d Point) Region {
	out := Region{bands: make([]band, len(r.bands))}
	for i, b := range r.bands {
		nb := band{b.y1 + d.Y, b.y2 + d.Y, make([]Span, len(b.spans))}
		for j, s := range b.spans {
			nb.spans[j] = Span{s.X1 + d.X, s.X2 + d.X}
		}
		out.bands[i] = nb
	}
	return out
}

// Scale returns the region with all coordinates multiplied by k (k > 0).
func (r Region) Scale(k int64) Region {
	if k <= 0 {
		panic("geom: Region.Scale requires k > 0")
	}
	out := Region{bands: make([]band, len(r.bands))}
	for i, b := range r.bands {
		nb := band{b.y1 * k, b.y2 * k, make([]Span, len(b.spans))}
		for j, s := range b.spans {
			nb.spans[j] = Span{s.X1 * k, s.X2 * k}
		}
		out.bands[i] = nb
	}
	return out
}

// TransformBy returns the region mapped through a Manhattan transform.
func (r Region) TransformBy(t Transform) Region {
	if t == Identity {
		return r
	}
	if t.Orient == R0 {
		return r.Translate(t.Trans)
	}
	rects := r.Rects()
	for i := range rects {
		rects[i] = t.ApplyRect(rects[i])
	}
	return FromRects(rects)
}

// Dilate returns the Minkowski sum of r with the square [-d,d]² (the
// paper's orthogonal expand). Dilation distributes over union, so the
// result is the union of the dilated canonical rects. d must be >= 0.
func (r Region) Dilate(d int64) Region {
	if d < 0 {
		panic("geom: Dilate requires d >= 0; use Erode")
	}
	if d == 0 || r.Empty() {
		return r
	}
	rects := r.Rects()
	for i := range rects {
		rects[i] = rects[i].Expand(d)
	}
	return FromRects(rects)
}

// DilateXY dilates by dx horizontally and dy vertically.
func (r Region) DilateXY(dx, dy int64) Region {
	if dx < 0 || dy < 0 {
		panic("geom: DilateXY requires dx,dy >= 0")
	}
	if (dx == 0 && dy == 0) || r.Empty() {
		return r
	}
	rects := r.Rects()
	for i := range rects {
		rects[i] = rects[i].ExpandXY(dx, dy)
	}
	return FromRects(rects)
}

// Erode returns the orthogonal shrink of r by d: the set of points whose
// surrounding [-d,d]² square lies entirely inside r. Implemented by the
// complement-dilate-complement duality within an enlarged frame.
func (r Region) Erode(d int64) Region {
	if d < 0 {
		panic("geom: Erode requires d >= 0; use Dilate")
	}
	if d == 0 || r.Empty() {
		return r
	}
	frame := r.Bounds().Expand(2*d + 2)
	comp := FromRectR(frame).Subtract(r)
	return r.Subtract(comp.Dilate(d))
}

// ErodeXY erodes by dx horizontally and dy vertically.
func (r Region) ErodeXY(dx, dy int64) Region {
	if dx < 0 || dy < 0 {
		panic("geom: ErodeXY requires dx,dy >= 0")
	}
	if (dx == 0 && dy == 0) || r.Empty() {
		return r
	}
	frame := r.Bounds().ExpandXY(2*dx+2, 2*dy+2)
	comp := FromRectR(frame).Subtract(r)
	return r.Subtract(comp.DilateXY(dx, dy))
}

// Components splits the region into edge-connected components (corner
// adjacency does not connect, matching physical continuity of fabricated
// geometry). Components are returned in deterministic order (by their
// first canonical rect).
func (r Region) Components() []Region {
	rects := r.Rects()
	if len(rects) == 0 {
		return nil
	}
	uf := newUnionFind(len(rects))
	// Within the canonical form, rects in the same band never touch, so it
	// suffices to link rects of vertically adjacent bands whose x intervals
	// overlap with positive length.
	type idxRect struct {
		idx int
		r   Rect
	}
	byBand := make(map[int64][]idxRect) // key: y1 of band
	for i, q := range rects {
		byBand[q.Y1] = append(byBand[q.Y1], idxRect{i, q})
	}
	for i, q := range rects {
		for _, other := range byBand[q.Y2] {
			o := other.r
			if q.X1 < o.X2 && o.X1 < q.X2 {
				uf.union(i, other.idx)
			}
		}
	}
	groups := make(map[int][]Rect)
	order := make([]int, 0)
	for i, q := range rects {
		root := uf.find(i)
		if _, seen := groups[root]; !seen {
			order = append(order, root)
		}
		groups[root] = append(groups[root], q)
	}
	out := make([]Region, 0, len(order))
	for _, root := range order {
		out = append(out, FromRects(groups[root]))
	}
	return out
}

// String renders a compact description for debugging.
func (r Region) String() string {
	if r.Empty() {
		return "Region{}"
	}
	var sb strings.Builder
	sb.WriteString("Region{")
	for i, b := range r.bands {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "y[%d,%d):", b.y1, b.y2)
		for _, s := range b.spans {
			fmt.Fprintf(&sb, "[%d,%d)", s.X1, s.X2)
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// unionFind is a tiny weighted union-find used for component labelling.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
