package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: X/Y-separable dilation equals square dilation when dx==dy, and
// ErodeXY is its adjoint.
func TestQuickDilateXYConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRegion(rng, 6)
		d := int64(1 + rng.Intn(4))
		if !a.Dilate(d).Equal(a.DilateXY(d, d)) {
			return false
		}
		if !a.Erode(d).Equal(a.ErodeXY(d, d)) {
			return false
		}
		// Asymmetric round trip on a solid rect is exact.
		r := FromRectR(R(0, 0, 20+int64(rng.Intn(20)), 20+int64(rng.Intn(20))))
		dx, dy := int64(1+rng.Intn(4)), int64(1+rng.Intn(4))
		return r.DilateXY(dx, dy).ErodeXY(dx, dy).Equal(r)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: Manhattan transforms preserve area and compose correctly on
// regions.
func TestQuickRegionTransformArea(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRegion(rng, 6)
		o := Orient(rng.Intn(8))
		tr := NewTransform(o, Pt(int64(rng.Intn(100)-50), int64(rng.Intn(100)-50)))
		b := a.TransformBy(tr)
		if b.Area() != a.Area() {
			return false
		}
		// Applying the inverse restores the original.
		return b.TransformBy(tr.Inverse()).Equal(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: Xor is union minus intersection.
func TestQuickXorIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRegion(rng, 6)
		b := randomRegion(rng, 6)
		lhs := a.Xor(b)
		rhs := a.Union(b).Subtract(a.Intersect(b))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: ContainsRegion is reflexive, antisymmetric on distinct sets,
// and consistent with Subtract.
func TestQuickContainsRegion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRegion(rng, 6)
		b := a.Intersect(randomRegion(rng, 6))
		if !a.ContainsRegion(a) || !a.ContainsRegion(b) {
			return false
		}
		if !b.Empty() && !b.Equal(a) && b.ContainsRegion(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestClip(t *testing.T) {
	a := FromRects([]Rect{R(0, 0, 10, 10), R(20, 0, 30, 10)})
	c := a.Clip(R(5, 0, 25, 10))
	if c.Area() != 5*10+5*10 {
		t.Fatalf("clip area = %d", c.Area())
	}
	if !a.Clip(R(100, 100, 110, 110)).Empty() {
		t.Fatal("out-of-range clip should be empty")
	}
}

// Property: width violations are monotone in the rule: if a region passes
// w, it passes every smaller w.
func TestQuickWidthMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRegion(rng, 5)
		w := int64(2 + rng.Intn(10))
		if MinWidthOK(a, w) {
			return MinWidthOK(a, w-1)
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: spacing violations vanish when the regions are translated
// apart by at least the rule distance.
func TestQuickSpacingTranslation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := FromRectR(R(0, 0, int64(5+rng.Intn(20)), int64(5+rng.Intn(20))))
		s := int64(2 + rng.Intn(6))
		b := a.Translate(Pt(a.Bounds().W()+s, 0))
		return len(SpacingViolations(a, b, s)) == 0 &&
			len(SpacingViolations(a, b, s+1)) == 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// Property: Skeleton is monotone in the region — a larger region has a
// larger skeleton.
func TestQuickSkeletonMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRegion(rng, 4)
		b := a.Union(randomRegion(rng, 4))
		w := int64(2 + rng.Intn(5))
		sa, sb := Skeleton(a, w), Skeleton(b, w)
		return sb.ContainsRegion(sa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestOrthoDistZeroOnTouch(t *testing.T) {
	a := FromRectR(R(0, 0, 10, 10))
	b := FromRectR(R(10, 0, 20, 10))
	if d := RegionOrthoDist(a, b); d != 0 {
		t.Fatalf("touching ortho dist = %d", d)
	}
	d, _, _ := RegionDist(a, b)
	if d != 0 {
		t.Fatalf("touching euclid dist = %v", d)
	}
}

func TestNotchVsSpacingDistinction(t *testing.T) {
	// Two separate components at 4 gap: spacing domain, not notch.
	sep := FromRects([]Rect{R(0, 0, 10, 10), R(14, 0, 24, 10)})
	if got := NotchViolations(sep, 6); len(got) != 1 {
		// The complement sliver between them is interior to the frame, so
		// the notch check reports it — document the behaviour.
		t.Fatalf("gap sliver reports = %d", len(got))
	}
	// A genuinely notched single component.
	u := FromRects([]Rect{R(0, 0, 30, 10), R(0, 10, 12, 30), R(16, 10, 30, 30)})
	if got := NotchViolations(u, 6); len(got) != 1 {
		t.Fatalf("notch reports = %d", len(got))
	}
}
