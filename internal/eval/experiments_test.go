package eval

import (
	"strings"
	"testing"
)

func TestE01Economics(t *testing.T) {
	tab, err := E01(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// DIC: all flagged, none missed, none false.
		if row[3] != "0" || row[4] != "0" {
			t.Errorf("DIC not clean: %v", row)
		}
		// Baseline: must miss some and flag false ones.
		if row[6] == "0" || row[7] == "0" {
			t.Errorf("baseline unexpectedly perfect: %v", row)
		}
	}
	// At the larger size the false:real ratio reaches the paper's 10:1.
	last := tab.Rows[len(tab.Rows)-1]
	if !strings.Contains(last[8], ":1") {
		t.Fatalf("ratio cell malformed: %v", last)
	}
}

func TestE02PathologyTable(t *testing.T) {
	tab, err := E02()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row {
			if strings.Contains(cell, "UNEXPECTED") {
				t.Errorf("pathology deviated: %v", row)
			}
		}
	}
}

func TestE03E04Geometry(t *testing.T) {
	t3, err := E03()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 4 {
		t.Fatalf("E03 rows = %d", len(t3.Rows))
	}
	t4, err := E04()
	if err != nil {
		t.Fatal(err)
	}
	// Euclidean SEC flags 4 corners, orthogonal none; orthogonal spacing
	// flags the diagonal, Euclidean none.
	if t4.Rows[0][2] != "4" || t4.Rows[1][2] != "0" {
		t.Fatalf("E04 width rows wrong: %v", t4.Rows)
	}
	if t4.Rows[2][2] != "1" || t4.Rows[3][2] != "0" {
		t.Fatalf("E04 spacing rows wrong: %v", t4.Rows)
	}
}

func TestE09Hierarchy(t *testing.T) {
	tab, err := E09(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Definition-level work is constant across sizes.
	if tab.Rows[0][2] != tab.Rows[1][2] {
		t.Fatalf("defs checked should not grow: %v vs %v", tab.Rows[0], tab.Rows[1])
	}
}

func TestE10Skeletal(t *testing.T) {
	tab, err := E10()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]string{
		"deep overlap (2x min width)": {"true", "true"},
		"overlap exactly min width":   {"true", "true"},
		// The shallow union is still legal-width geometry — which is why
		// only the connection rule can catch the construction.
		"shallow corner overlap":       {"false", "true"},
		"end-to-end abutment (Fig 15)": {"false", "true"},
		"disjoint":                     {"false", "true"},
		"enclosure":                    {"true", "true"},
	}
	for _, row := range tab.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected case %q", row[0])
			continue
		}
		if row[1] != w[0] || row[2] != w[1] {
			t.Errorf("%s: got (%s,%s), want %v", row[0], row[1], row[2], w)
		}
	}
}

func TestE11MatrixAudit(t *testing.T) {
	tab, err := E11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 || len(tab.Notes) < 2 {
		t.Fatalf("audit incomplete: %d rows %d notes", len(tab.Rows), len(tab.Notes))
	}
}

func TestE12E13Process(t *testing.T) {
	t12, err := E12()
	if err != nil {
		t.Fatal(err)
	}
	if len(t12.Rows) != 6 {
		t.Fatalf("E12 rows = %d", len(t12.Rows))
	}
	t13, err := E13()
	if err != nil {
		t.Fatal(err)
	}
	if len(t13.Rows) != 5 {
		t.Fatalf("E13 rows = %d", len(t13.Rows))
	}
	// Retreat decreases with width (column 1, numeric strings).
	if !(t13.Rows[0][1] > t13.Rows[4][1]) {
		t.Fatalf("retreat not decreasing: %v ... %v", t13.Rows[0], t13.Rows[4])
	}
}

func TestE15Construction(t *testing.T) {
	tab, err := E15()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[2] == "0" {
			t.Errorf("rule %s not triggered: %v", row[0], row)
		}
		if row[3] != "0" {
			t.Errorf("rule %s fires on clean chip: %v", row[0], row)
		}
	}
}

func TestE16ResidualWork(t *testing.T) {
	tab, err := E16(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "EXX", Title: "t", Columns: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.Note("n %d", 5)
	out := tab.Render()
	for _, want := range []string{"EXX", "a", "bb", "1", "x", "note: n 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestE06DeviceDependentAtScale(t *testing.T) {
	tab, err := E06(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[2] != "0" {
			t.Errorf("clean bipolar chip flagged: %v", row)
		}
		if row[4] != "1" {
			t.Errorf("broken pair should yield exactly one DEV.NPN.ISO: %v", row)
		}
		if row[5] != "0" {
			t.Errorf("legal resistor ties falsely flagged: %v", row)
		}
	}
}

func TestE17Ablation(t *testing.T) {
	tab, err := E17(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Full DIC: zero false errors; ablated: many.
	if tab.Rows[0][1] != "0" {
		t.Errorf("full DIC not clean: %v", tab.Rows[0])
	}
	if tab.Rows[2][1] == "0" {
		t.Errorf("exemption ablation produced no false errors: %v", tab.Rows[2])
	}
}

func TestE19IncrementalRecheck(t *testing.T) {
	tab, err := E19(true)
	if err != nil {
		t.Fatal(err)
	}
	// 8 pipeline-stage rows (7 stages + TOTAL) for the quick size.
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8: %v", len(tab.Rows), tab.Rows)
	}
	if tab.Rows[len(tab.Rows)-1][1] != "TOTAL" {
		t.Fatalf("last row not TOTAL: %v", tab.Rows[len(tab.Rows)-1])
	}
	// E19 itself fails when the warm recheck diverges from the cold check,
	// so reaching here already proves byte-identity on this workload.
}

func TestE18ParallelEngine(t *testing.T) {
	tab, err := E18(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The workload chips are clean; E18 itself fails when the parallel
	// report diverges from the serial oracle.
	for _, row := range tab.Rows {
		if row[5] != "0" {
			t.Errorf("clean chip reported errors: %v", row)
		}
	}
}
