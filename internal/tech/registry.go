package tech

import "sort"

// registry maps technology names to constructors. The shipped processes
// register themselves at init; tools resolve -tech flags through ByName so
// the valid set is data, not a switch statement scattered per command.
var registry = map[string]func() *Technology{}

// Register adds a named technology constructor. Later registrations under
// the same name win, letting tests shadow a shipped process.
func Register(name string, fn func() *Technology) {
	registry[name] = fn
}

// ByName resolves a registered technology name.
func ByName(name string) (func() *Technology, bool) {
	fn, ok := registry[name]
	return fn, ok
}

// Names returns the registered technology names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
