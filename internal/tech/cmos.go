package tech

// Mead–Conway style p-well CMOS process, λ = 100 centimicrons (1 µm).
//
// Unlike nMOS and bipolar there is no Go constructor to fall back on:
// decks/cmos.deck is the only definition of the process. The constants
// below are names for workload generators and tests — the rules themselves
// live entirely in the deck.

// CMOS layer name constants (human names).
const (
	CMOSWell    = "p-well"
	CMOSNDiff   = "n-diffusion"
	CMOSPDiff   = "p-diffusion"
	CMOSPoly    = "poly"
	CMOSContact = "contact"
	CMOSMetal   = "metal"
)

// CMOS device type names (declared by primitive symbols via 9D).
const (
	DevCMOSNMOS     = "cmos-nmos"     // n-channel transistor (in the p-well)
	DevCMOSPMOS     = "cmos-pmos"     // p-channel transistor (in the substrate)
	DevContactNDiff = "contact-ndiff" // metal to n-diffusion contact
	DevContactPDiff = "contact-pdiff" // metal to p-diffusion contact
	DevContactCPoly = "contact-poly"  // metal to poly contact
)

func init() { Register("cmos", CMOS) }

// CMOS builds the p-well CMOS technology from its embedded rule deck
// (decks/cmos.deck) — the process that exists only as data.
func CMOS() *Technology { return mustParseDeck(cmosDeck) }
