package deck

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseGolden(t *testing.T) {
	src, err := os.ReadFile("testdata/golden-min.deck")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "golden-min" || d.Lambda != 200 {
		t.Fatalf("tech = %q λ=%d", d.Name, d.Lambda)
	}
	if len(d.Layers) != 3 || d.Layers[0].Name != "alpha" || d.Layers[0].Role != "metal" {
		t.Fatalf("layers = %+v", d.Layers)
	}
	if d.Layers[0].Width != 400 || d.Layers[0].Space != 600 {
		t.Fatalf("λ-dims: %+v", d.Layers[0])
	}
	if d.Layers[1].Width != 350 {
		t.Fatalf("raw dim: %+v", d.Layers[1])
	}
	if len(d.Spaces) != 3 {
		t.Fatalf("spaces = %+v", d.Spaces)
	}
	ab := d.Spaces[1]
	if ab.DiffNet != 300 || ab.SameNet != 200 || !ab.ExemptRelated || ab.Note != "alpha to beta" {
		t.Fatalf("a-b cell = %+v", ab)
	}
	if len(d.Widths) != 1 || d.Widths[0].Layer != "alpha" || d.Widths[0].Min != 400 ||
		d.Widths[0].Note != "region width over merged alpha" {
		t.Fatalf("widths = %+v", d.Widths)
	}
	// Area dims are λ²: 10L at λ=200 is 10·200² square centimicrons.
	if len(d.Areas) != 1 || d.Areas[0].Layer != "alpha" || d.Areas[0].MinArea != 400000 {
		t.Fatalf("areas = %+v", d.Areas)
	}
	if len(d.Crosses) != 3 {
		t.Fatalf("crosses = %+v", d.Crosses)
	}
	for i, want := range []CrossRule{
		{Kind: KindEnclose, A: "alpha", B: "gamma", Margin: 200, Note: "alpha pad over gamma cut"},
		{Kind: KindOverlap, A: "alpha", B: "gamma", Margin: 200},
		{Kind: KindExtend, A: "alpha", B: "gamma", Margin: 100},
	} {
		got := d.Crosses[i]
		got.Line = 0
		if got != want {
			t.Fatalf("cross[%d] = %+v, want %+v", i, d.Crosses[i], want)
		}
	}
	if len(d.Devices) != 1 {
		t.Fatalf("devices = %+v", d.Devices)
	}
	dev := d.Devices[0]
	if dev.Class != "contact" || dev.Describe != "a widget" {
		t.Fatalf("device = %+v", dev)
	}
	if !reflect.DeepEqual(dev.Uses, []Use{{Role: "lower", Layer: "beta"}}) {
		t.Fatalf("uses = %+v", dev.Uses)
	}
	if !reflect.DeepEqual(dev.Params, []Param{{Key: "cut-size", Value: 400}, {Key: "metal-enclosure", Value: 200}}) {
		t.Fatalf("params = %+v", dev.Params)
	}
	if !reflect.DeepEqual(d.PowerNets, []string{"VDD"}) || !reflect.DeepEqual(d.GroundNets, []string{"GND", "vss"}) {
		t.Fatalf("rails = %v / %v", d.PowerNets, d.GroundNets)
	}
	if probs := Validate(d, Options{}); len(Errors(probs)) != 0 {
		t.Fatalf("golden deck should validate: %v", probs)
	}
}

// TestWriteParseIdempotent: canonicalizing any valid testdata deck is a
// fixed point — parse→write→parse yields the same Deck and the same text.
func TestWriteParseIdempotent(t *testing.T) {
	files, err := filepath.Glob("testdata/*.deck")
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		text1 := Write(d)
		d2, err := Parse(text1)
		if err != nil {
			t.Fatalf("%s: reparse of written deck: %v\n%s", f, err, text1)
		}
		stripLines(d)
		stripLines(d2)
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("%s: deck not stable under write/parse:\n%+v\nvs\n%+v", f, d, d2)
		}
		if text2 := Write(d2); text1 != text2 {
			t.Fatalf("%s: writer not idempotent:\n%s\nvs\n%s", f, text1, text2)
		}
	}
}

// stripLines zeroes source-line fields so decks from different texts
// compare by content.
func stripLines(d *Deck) {
	for i := range d.Layers {
		d.Layers[i].Line = 0
	}
	for i := range d.Spaces {
		d.Spaces[i].Line = 0
	}
	for i := range d.Widths {
		d.Widths[i].Line = 0
	}
	for i := range d.Areas {
		d.Areas[i].Line = 0
	}
	for i := range d.Crosses {
		d.Crosses[i].Line = 0
	}
	for i := range d.Devices {
		d.Devices[i].Line = 0
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no tech", "layer a cif=XA\n", "tech statement must come first"},
		{"missing tech", "# empty\n", "missing tech"},
		{"dup tech", "tech a\ntech b\n", "duplicate tech"},
		{"unknown stmt", "tech a\nfrobnicate x\n", "unknown statement"},
		{"bad lambda", "tech a lambda=abc\n", "bad lambda"},
		{"lambda-less λ", "tech a\nlayer l cif=XL width=2L\n", "no lambda"},
		{"bad fraction", "tech a lambda=100\nlayer l cif=XL width=2.7L\n", "half-λ"},
		{"odd lambda half", "tech a lambda=101\nlayer l cif=XL width=1.5L\n", "odd"},
		{"negative dim", "tech a\nlayer l cif=XL width=-3\n", "bad dimension"},
		{"huge lambda", "tech a lambda=9223372036854775807\n", "bad lambda"},
		{"λ overflow", "tech a lambda=1099511627776\nlayer l cif=XL width=2L\n", "exceeds"},
		{"raw dim overflow", "tech a\nlayer l cif=XL width=1099511627777\n", "exceeds"},
		{"layer no cif", "tech a\nlayer l\n", "needs cif"},
		{"space arity", "tech a\nlayer l cif=XL\nspace l\n", "two layer names"},
		{"orphan param", "tech a\nparam k=1\n", "outside a device"},
		{"orphan use", "tech a\nuse r=l\n", "outside a device"},
		{"param binds to device only", "tech a\ndevice d class=c\nlayer l cif=XL\nparam k=1\n", "outside a device"},
		{"device no class", "tech a\ndevice d\n", "needs class"},
		{"rail kind", "tech a\nrail sideways X\n", "power or ground"},
		{"width arity", "tech a\nlayer l cif=XL\nwidth l\n", "needs a layer name and a dimension"},
		{"width bad attr", "tech a\nwidth l 3 bogus=1\n", "unknown width attribute"},
		{"area λ²-less lambda", "tech a\narea l 10L\n", "no lambda"},
		{"area λ² fraction", "tech a lambda=100\narea l 1.5L\n", "bad λ²-expression"},
		{"area λ² overflow", "tech a lambda=1048576\narea l 2L\n", "exceeds"},
		{"cross arity", "tech a\nenclose x y\n", "needs two layer names and a margin"},
		{"extend bad attr", "tech a\nextend x y 3 same=1\n", "unknown extend attribute"},
		{"unterminated quote", "tech a\nlayer l cif=XL role=\"oops\n", "unterminated quote"},
		{"spliced key space", "tech a\ndevice d class=c\n  use a\" \"b=x\n", "must not contain spaces"},
		{"spliced key hash", "tech a\ndevice d class=c\n  param a\"#\"=1\n", "must not contain spaces"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestValidateFindings(t *testing.T) {
	read := func(f string) *Deck {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Parse(string(src))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	asym := Validate(read("testdata/bad-asymmetric.deck"), Options{})
	if errs := Errors(asym); len(errs) != 1 || !strings.Contains(errs[0].Detail, "asymmetric") {
		t.Fatalf("asymmetric deck: %v", asym)
	}
	dup := Validate(read("testdata/bad-duplicate-layer.deck"), Options{})
	var wantDupLayer, wantDupCIF bool
	for _, p := range Errors(dup) {
		if strings.Contains(p.Detail, `duplicate layer "a"`) {
			wantDupLayer = true
		}
		if strings.Contains(p.Detail, `duplicate CIF code "XA"`) {
			wantDupCIF = true
		}
	}
	if !wantDupLayer || !wantDupCIF {
		t.Fatalf("duplicate-layer deck: %v", dup)
	}

	d, err := Parse("tech t\nlayer l cif=XL role=warp\nspace l l\nspace l ghost diff=3\ndevice d class=nope\n  use lower=ghost\n")
	if err != nil {
		t.Fatal(err)
	}
	probs := Validate(d, Options{KnownClasses: []string{"contact"}, KnownRoles: []string{"metal"}})
	wants := map[string]Severity{
		"unknown role \"warp\"":    Warning,
		"no audit note":            Warning,
		"unknown layer \"ghost\"":  Error,
		"unknown class \"nope\"":   Error,
		"unknown role \"lower\"":   Warning,
		"binds role \"lower\" to ": Error,
	}
	for want, sev := range wants {
		found := false
		for _, p := range probs {
			if strings.Contains(p.Detail, want) && p.Severity == sev {
				found = true
			}
		}
		if !found {
			t.Errorf("missing %v finding containing %q in %v", sev, want, probs)
		}
	}
}

func TestValidateRepeats(t *testing.T) {
	d, err := Parse("tech t\nlayer l cif=XL\ndevice d class=c\n  param k=1\n  param k=2\n  use r=l\n  use r=l\ndevice d class=c\nrail power V V\n")
	if err != nil {
		t.Fatal(err)
	}
	probs := Validate(d, Options{})
	for _, want := range []string{"repeats param", "repeats use role", "duplicate device type", `rail net "V"`} {
		found := false
		for _, p := range Errors(probs) {
			if strings.Contains(p.Detail, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing error containing %q in %v", want, probs)
		}
	}
}

func TestValidateRuleStatements(t *testing.T) {
	src := "tech t lambda=100\n" +
		"layer m cif=XM role=metal width=2L\n" +
		"layer q cif=XQ\n" +
		"layer z cif=XZ role=contact\n" +
		"width ghost 2L\n" +
		"width q 2L\n" +
		"width m 2L\n" +
		"width m 3L\n" +
		"enclose m m 1L\n" +
		"enclose m z 1L\n" +
		"enclose m z 2L\n"
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	probs := Validate(d, Options{})
	for _, want := range []string{
		`width rule references unknown layer "ghost"`,
		`width rule on layer "q", which has no geometry-bearing role`,
		`duplicate width rule for layer "m"`,
		`enclose rule names layer "m" twice`,
		`duplicate enclose rule m-z`,
	} {
		found := false
		for _, p := range Errors(probs) {
			if strings.Contains(p.Detail, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing error containing %q in %v", want, probs)
		}
	}
	// q has a (rejected) width statement naming it, so the zero-rule
	// warning belongs to a layer no statement touches at all.
	d2, err := Parse("tech t\nlayer live cif=XL width=300\nlayer dead cif=XD\n")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range Validate(d2, Options{}) {
		if p.Severity == Warning && strings.Contains(p.Detail, `layer "dead" has zero rules of any class`) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing zero-rules warning for dead layer")
	}
}

func TestDimCanonicalization(t *testing.T) {
	d := &Deck{Lambda: 250}
	for v, want := range map[int64]string{
		750: "3L", 375: "1.5L", 250: "1L", 125: "0.5L", 300: "300", 0: "0",
	} {
		if got := d.dim(v); got != want {
			t.Errorf("dim(%d) = %q, want %q", v, got, want)
		}
	}
	noLam := &Deck{}
	if got := noLam.dim(750); got != "750" {
		t.Errorf("λ-less dim = %q", got)
	}
	for v, want := range map[int64]string{
		625000: "10L", 62500: "1L", 625001: "625001", 0: "0",
	} {
		if got := d.dimArea(v); got != want {
			t.Errorf("dimArea(%d) = %q, want %q", v, got, want)
		}
	}
	if got := noLam.dimArea(625000); got != "625000" {
		t.Errorf("λ-less dimArea = %q", got)
	}
}
