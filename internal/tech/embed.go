package tech

import _ "embed"

// The shipped technologies are defined by rule decks embedded at build
// time; the Go constructors are thin loaders over these texts. Editing a
// deck changes the process — no code change required — which is the
// paper's technology-parameterization made literal.

//go:embed decks/nmos.deck
var nmosDeck string

//go:embed decks/bipolar.deck
var bipolarDeck string

//go:embed decks/cmos.deck
var cmosDeck string
