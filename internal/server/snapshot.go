package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cif"
	"repro/internal/core"
)

// SnapshotVersion is the on-disk session snapshot format version. A
// reader refuses versions it does not know; bump it on any breaking
// field change.
const SnapshotVersion = 1

// snapshotExt is the snapshot filename suffix; one file per session,
// named <id>.snap, in the configured state directory.
const snapshotExt = ".snap"

// SessionSnapshot is the versioned on-disk form of one session (schema
// snapshot/v1 in the shared Envelope): enough to rebuild the design (as
// CIF — the upload format, so the restore path is the create path), the
// technology (by registry name or by the original deck source), the
// check options, and the envelope of the last completed report. Restore
// runs a cold check and refuses the snapshot unless the recheck's
// fingerprint matches — a restored session is bit-for-bit the session
// that was saved, or it is nothing.
//
// History carries the session's delta ring (see Session.history), so a
// client polling ?since= across a daemon restart still gets a delta, not
// a reset.
type SessionSnapshot struct {
	Version int `json:"version"`
	Envelope
	ID          string         `json:"id"`
	Name        string         `json:"name,omitempty"`
	DesignName  string         `json:"design_name"`
	Tech        string         `json:"tech,omitempty"`
	Deck        string         `json:"deck,omitempty"`
	Metric      string         `json:"metric,omitempty"`
	NoConstruct bool           `json:"noconstruct,omitempty"`
	Generation  int            `json:"generation"` // edit batches absorbed into this state
	SavedUnixNS int64          `json:"saved_unix_ns"`
	CIF         string         `json:"cif"`
	History     []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry is one persisted delta-ring state, oldest first; the
// newest entry is always the snapshot's own state.
type HistoryEntry struct {
	Fingerprint string      `json:"fingerprint"`
	Violations  []Violation `json:"violations"`
}

// Snapshot serializes the session's current state. Pending edits are
// flushed first so the stored fingerprint describes exactly the stored
// CIF. It returns (nil, nil) when the state is unchanged since the last
// successful snapshot — periodic snapshotting skips idle sessions for
// free. Closed or poisoned sessions return an error (a quarantined
// design state must not be resurrected as if it were healthy).
func (s *Session) Snapshot(now time.Time) (*SessionSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.gateLocked(); err != nil {
		return nil, err
	}
	if s.dirty {
		if err := s.flushLocked(context.Background()); err != nil {
			return nil, fmt.Errorf("flush before snapshot: %w", err)
		}
	}
	if s.snapDone && s.snapGen == s.stats.EditBatches {
		return nil, nil
	}
	text, err := cif.Write(s.design, s.tc)
	if err != nil {
		return nil, fmt.Errorf("serialize design: %w", err)
	}
	hist := make([]HistoryEntry, 0, len(s.history))
	for _, h := range s.history {
		hist = append(hist, HistoryEntry{Fingerprint: h.fp, Violations: violationsWire(h.vs)})
	}
	return &SessionSnapshot{
		Version:     SnapshotVersion,
		Envelope:    buildEnvelope(SchemaSnapshot, s.rep),
		ID:          s.ID,
		Name:        s.Name,
		DesignName:  s.design.Name,
		Tech:        s.origin.Tech,
		Deck:        s.origin.Deck,
		Metric:      s.origin.Metric,
		NoConstruct: s.origin.NoConstruct,
		Generation:  s.stats.EditBatches,
		SavedUnixNS: now.UnixNano(),
		CIF:         text,
		History:     hist,
	}, nil
}

// noteSnapshotted records that a snapshot at the given generation is
// durable on disk.
func (s *Session) noteSnapshotted(gen int) {
	s.mu.Lock()
	s.snapDone, s.snapGen = true, gen
	s.mu.Unlock()
}

// WriteSnapshotFile persists one snapshot atomically: write to a temp
// file in the same directory, fsync the file, rename over the final
// name, fsync the directory. A crash at any point leaves either the old
// snapshot or the new one, never a torn file.
func WriteSnapshotFile(dir string, snap *SessionSnapshot) (string, error) {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, snap.ID+snapshotExt)
	tmp, err := os.CreateTemp(dir, snap.ID+".tmp-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return final, nil
}

// ReadSnapshotFile loads and validates one snapshot file.
func ReadSnapshotFile(path string) (*SessionSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap SessionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("%s: snapshot version %d (supported: %d)", path, snap.Version, SnapshotVersion)
	}
	if snap.Schema != "" && snap.Schema != SchemaSnapshot {
		return nil, fmt.Errorf("%s: snapshot schema %q (supported: %q)", path, snap.Schema, SchemaSnapshot)
	}
	if snap.ID == "" || snap.CIF == "" || snap.Fingerprint == "" {
		return nil, fmt.Errorf("%s: snapshot missing id/cif/fingerprint", path)
	}
	return &snap, nil
}

// RestoreSession rebuilds a live session from a snapshot: resolve the
// technology the way the original create did, parse the stored CIF, run
// a cold check, and assert the fingerprint matches the one saved before
// the crash. A mismatch refuses the session — serving a state that
// diverges from what the client last saw would break the parity
// contract silently.
func RestoreSession(ctx context.Context, snap *SessionSnapshot, adm *admission, debounce time.Duration, histCap, workers int, now time.Time) (*Session, error) {
	req := CreateRequest{
		Name:        snap.Name,
		DesignName:  snap.DesignName,
		CIF:         snap.CIF,
		Tech:        snap.Tech,
		Deck:        snap.Deck,
		Metric:      snap.Metric,
		NoConstruct: snap.NoConstruct,
	}
	tc, opts, err := resolveCreate(&req, workers)
	if err != nil {
		return nil, fmt.Errorf("restore %s: %w", snap.ID, err)
	}
	d, err := cif.Parse(snap.CIF, tc, snap.DesignName)
	if err != nil {
		return nil, fmt.Errorf("restore %s: parse cif: %w", snap.ID, err)
	}
	origin := sessionOrigin{Tech: snap.Tech, Deck: snap.Deck, Metric: snap.Metric, NoConstruct: snap.NoConstruct}
	sess, err := newSession(ctx, snap.ID, snap.Name, d, tc, opts, origin, adm, debounce, histCap, now)
	if err != nil {
		return nil, fmt.Errorf("restore %s: recheck: %w", snap.ID, err)
	}
	if got := core.FingerprintDigest(sess.rep); got != snap.Fingerprint {
		return nil, fmt.Errorf("restore %s: fingerprint mismatch: recheck %s, snapshot %s",
			snap.ID, got, snap.Fingerprint)
	}
	// Rebuild the delta ring: the persisted entries older than the current
	// state slot in ahead of the entry the cold check just pushed, so a
	// client's pre-crash `since` fingerprint still resolves to a delta.
	if sess.histCap > 0 {
		var older []reportState
		for _, h := range snap.History {
			if h.Fingerprint == snap.Fingerprint {
				continue
			}
			older = append(older, reportState{fp: h.Fingerprint, vs: violationsCore(h.Violations)})
		}
		sess.history = append(older, sess.history...)
		if n := len(sess.history); n > sess.histCap {
			sess.history = append([]reportState(nil), sess.history[n-sess.histCap:]...)
		}
	}
	sess.restored = true
	sess.snapDone, sess.snapGen = true, 0
	return sess, nil
}

// SnapshotAll writes a snapshot for every live session whose state
// changed since its last snapshot. Failures are per-session: one
// unserializable session does not stop the sweep. Returns how many were
// written and the per-session errors.
func (s *Server) SnapshotAll(now time.Time) (saved int, errs []error) {
	if s.cfg.StateDir == "" {
		return 0, []error{fmt.Errorf("no state directory configured")}
	}
	s.mu.Lock()
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		n, err := s.snapshotSession(sess, now)
		if err != nil {
			errs = append(errs, fmt.Errorf("session %s: %w", sess.ID, err))
			continue
		}
		saved += n
	}
	s.mu.Lock()
	s.stats.SnapshotsSaved += uint64(saved)
	s.mu.Unlock()
	return saved, errs
}

// snapshotSession snapshots one session to the state directory; returns
// 1 if a file was written, 0 if the session was unchanged.
func (s *Server) snapshotSession(sess *Session, now time.Time) (int, error) {
	snap, err := sess.Snapshot(now)
	if err != nil {
		return 0, err
	}
	if snap == nil {
		return 0, nil
	}
	if _, err := WriteSnapshotFile(s.cfg.StateDir, snap); err != nil {
		return 0, err
	}
	sess.noteSnapshotted(snap.Generation)
	return 1, nil
}

// removeSnapshot deletes a session's snapshot file (explicit DELETE —
// the user asked for the session to not exist, on disk included).
func (s *Server) removeSnapshot(id string) {
	if s.cfg.StateDir == "" {
		return
	}
	_ = os.Remove(filepath.Join(s.cfg.StateDir, id+snapshotExt))
}

// RestoreFromDisk rebuilds sessions from every snapshot in the state
// directory, oldest id first, up to the session cap. Each restored
// session's post-restore recheck is asserted fingerprint-identical to
// its snapshot (see RestoreSession); mismatching or unreadable snapshots
// are skipped and reported. The id counter resumes above the highest
// restored id, so new sessions never collide with restored ones.
func (s *Server) RestoreFromDisk(ctx context.Context) (restored int, errs []error) {
	if s.cfg.StateDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, []error{err}
	}
	var paths []string
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), snapshotExt) {
			continue
		}
		paths = append(paths, filepath.Join(s.cfg.StateDir, ent.Name()))
	}
	sort.Slice(paths, func(i, j int) bool { return lessID(snapID(paths[i]), snapID(paths[j])) })

	maxID := 0
	for _, path := range paths {
		snap, err := ReadSnapshotFile(path)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if n := idNum(snap.ID); n > maxID {
			maxID = n
		}
		s.mu.Lock()
		full := len(s.sessions) >= s.cfg.MaxSessions
		_, dup := s.sessions[snap.ID]
		s.mu.Unlock()
		if full {
			errs = append(errs, fmt.Errorf("%s: session cap reached, not restored", snap.ID))
			continue
		}
		if dup {
			errs = append(errs, fmt.Errorf("%s: already live, not restored", snap.ID))
			continue
		}
		sess, err := RestoreSession(ctx, snap, s.adm, s.cfg.Debounce, s.cfg.ReportHistory, s.cfg.Workers, s.now())
		if err != nil {
			errs = append(errs, err)
			continue
		}
		s.register(sess)
		restored++
	}
	s.mu.Lock()
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.stats.SnapshotsRestored += uint64(restored)
	s.mu.Unlock()
	return restored, errs
}

// snapID extracts the session id from a snapshot path.
func snapID(path string) string {
	return strings.TrimSuffix(filepath.Base(path), snapshotExt)
}

// idNum parses the numeric part of an "sN" session id (0 if malformed).
func idNum(id string) int {
	if !strings.HasPrefix(id, "s") {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0
	}
	return n
}

// snapshotLoop is the periodic snapshot goroutine, started when both a
// state directory and an interval are configured.
func (s *Server) snapshotLoop() {
	tick := time.NewTicker(s.cfg.SnapshotEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			s.SnapshotAll(s.now())
		}
	}
}

// SnapshotSweepResponse reports what a forced snapshot sweep wrote.
type SnapshotSweepResponse struct {
	Saved  int      `json:"saved"`
	Errors []string `json:"errors,omitempty"`
}

// handleSnapshotNow is POST /v1/snapshot: force a snapshot sweep now and
// report what was written — how scripted drills make "the state on disk"
// a known quantity before pulling the plug.
func (s *Server) handleSnapshotNow(w http.ResponseWriter, r *http.Request) {
	if s.cfg.StateDir == "" {
		writeSvcErr(w, errf(http.StatusBadRequest, ClassBadRequest, "no -state-dir configured"))
		return
	}
	saved, errs := s.SnapshotAll(s.now())
	resp := SnapshotSweepResponse{Saved: saved}
	for _, err := range errs {
		resp.Errors = append(resp.Errors, err.Error())
	}
	writeJSON(w, http.StatusOK, resp)
}
