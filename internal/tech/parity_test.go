package tech_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tech"
	"repro/internal/workload"
)

// TestChipFingerprintParity is the acceptance lock for the deck refactor:
// a checked chip's duration-free report fingerprint must be byte-identical
// whether the technology came from the legacy Go constructor or from the
// embedded rule deck — violations, netlist, every counter.
func TestChipFingerprintParity(t *testing.T) {
	fp := func(tc *tech.Technology) string {
		chip := workload.NewChip(tc, "parity", 3, 4)
		workload.InjectErrors(chip, 5, 42)
		rep, err := core.Check(chip.Design, tc, core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return core.Fingerprint(rep)
	}
	legacy := fp(tech.NMOSFromCode())
	deckLoaded := fp(tech.NMOS())
	if legacy != deckLoaded {
		t.Fatalf("nMOS fingerprints diverge between legacy constructor and deck:\n--- legacy ---\n%s\n--- deck ---\n%s",
			legacy, deckLoaded)
	}
}

func TestBipolarFingerprintParity(t *testing.T) {
	fp := func(tc *tech.Technology) string {
		chip := workload.NewBipolarChip(tc, "parity-bip", 5)
		rep, err := core.Check(chip.Design, tc, core.Options{Workers: 1, SkipConstruction: true})
		if err != nil {
			t.Fatal(err)
		}
		return core.Fingerprint(rep)
	}
	if legacy, deckLoaded := fp(tech.BipolarFromCode()), fp(tech.Bipolar()); legacy != deckLoaded {
		t.Fatalf("bipolar fingerprints diverge:\n--- legacy ---\n%s\n--- deck ---\n%s", legacy, deckLoaded)
	}
}
