package core

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// Stage "check layer rules": the deck's geometric rule classes beyond
// pairwise spacing — region width, island area, and the directed
// enclosure/overlap/extension margins — adjudicated once per composite
// symbol definition over its own merged geometry (calls excluded), the
// same once-per-definition economics as stages 1 and 2. Cross-layer rules
// therefore judge co-located geometry within one definition; interactions
// between different symbols remain the interaction stage's business.

// layerRuleChecks runs every compiled layer rule over one composite
// definition, returning the violations (in symbol coordinates) and the
// number of rule kernels evaluated. Factored out of the pipeline loop so
// the incremental engine can cache the result per definition content hash.
func layerRuleChecks(s *layout.Symbol, tc *tech.Technology, ct *tech.Compiled) (vs []Violation, checks int) {
	if !ct.HasLayerRules() {
		return nil, 0
	}
	// Layer regions are shared across rules; materialize each at most once.
	n := ct.NumLayers()
	regs := make([]geom.Region, n)
	got := make([]bool, n)
	region := func(l tech.LayerID) geom.Region {
		if !got[l] {
			regs[l] = s.LayerRegion(l)
			got[l] = true
		}
		return regs[l]
	}
	for i := 0; i < n; i++ {
		l := tech.LayerID(i)
		w, a := ct.WidthMin(l), ct.AreaMin(l)
		if w <= 0 && a <= 0 {
			continue
		}
		reg := region(l)
		if reg.Empty() {
			continue
		}
		layer := tc.Layer(l)
		if w > 0 {
			checks++
			for _, r := range geom.WidthViolations(reg, w) {
				vs = append(vs, Violation{
					Rule:     "WIDTH." + layer.CIF,
					Severity: Error,
					Detail:   fmt.Sprintf("merged %s region narrower than %d", layer.Name, w),
					Where:    r, Symbol: s.Name, Layer: l,
				})
			}
		}
		if a > 0 {
			checks++
			for _, r := range geom.ComponentAreaViolations(reg, a) {
				vs = append(vs, Violation{
					Rule:     "AREA." + layer.CIF,
					Severity: Error,
					Detail:   fmt.Sprintf("%s island smaller than %d square centimicrons", layer.Name, a),
					Where:    r, Symbol: s.Name, Layer: l,
				})
			}
		}
	}
	for _, cr := range ct.CrossRules() {
		la, lb := tc.Layer(cr.A), tc.Layer(cr.B)
		switch cr.Kind {
		case tech.CrossEnclose:
			inner := region(cr.B)
			if inner.Empty() {
				continue
			}
			checks++
			for _, r := range geom.EncloseViolations(inner, region(cr.A), cr.Margin) {
				vs = append(vs, Violation{
					Rule:     "ENC." + la.CIF + "." + lb.CIF,
					Severity: Error,
					Detail:   fmt.Sprintf("%s not enclosed by %s by %d", lb.Name, la.Name, cr.Margin),
					Where:    r, Symbol: s.Name, Layer: cr.B,
				})
			}
		case tech.CrossOverlap:
			a, b := region(cr.A), region(cr.B)
			if a.Empty() || b.Empty() {
				continue
			}
			checks++
			for _, r := range geom.OverlapViolations(a, b, cr.Margin) {
				vs = append(vs, Violation{
					Rule:     "OVL." + la.CIF + "." + lb.CIF,
					Severity: Error,
					Detail:   fmt.Sprintf("%s-%s overlap narrower than %d", la.Name, lb.Name, cr.Margin),
					Where:    r, Symbol: s.Name, Layer: cr.A,
				})
			}
		case tech.CrossExtend:
			a, b := region(cr.A), region(cr.B)
			if a.Empty() || b.Empty() {
				continue
			}
			checks++
			for _, r := range geom.ExtendViolations(a, b, cr.Margin) {
				vs = append(vs, Violation{
					Rule:     "EXT." + la.CIF + "." + lb.CIF,
					Severity: Error,
					Detail:   fmt.Sprintf("%s extends less than %d past %s", la.Name, cr.Margin, lb.Name),
					Where:    r, Symbol: s.Name, Layer: cr.A,
				})
			}
		}
	}
	return vs, checks
}

// checkLayerRules walks every composite definition through the compiled
// layer rules.
func (c *checker) checkLayerRules() {
	for _, s := range c.design.SortedSymbols() {
		if s.IsPrimitive() {
			continue // device geometry is stage 2's business
		}
		vs, checks := layerRuleChecks(s, c.tech, c.ct)
		if c.curStage != nil {
			c.curStage.Checks += checks
		}
		for _, v := range vs {
			c.add(v)
		}
	}
}
