package deck

import "fmt"

// Options parameterizes validation with knowledge the deck package itself
// must not depend on: the checker's device-class registry and the layer
// roles the technology compiler understands. Nil sets skip those checks.
type Options struct {
	// KnownClasses are the device classes the checker can analyze
	// (device.Classes()); unknown classes are errors when set.
	KnownClasses []string
	// KnownRoles are the layer roles the technology compiler consumes
	// (tech.Roles()); unknown roles are warnings when set.
	KnownRoles []string
	// KnownUseRoles are the roles device "use" bindings may name
	// (tech.UseRoles()); defaults to KnownRoles when nil.
	KnownUseRoles []string
}

// MaxLayers is the largest layer count a deck may declare — a format
// sanity cap well under the technology's uint8 layer-id space.
const MaxLayers = 64

// Validate checks cross-statement consistency: duplicate or conflicting
// declarations, dangling layer references, unknown classes and roles, and
// the audit-note discipline (a cell that checks nothing must say why).
// All problems are reported, errors first only by construction of severity
// — the slice preserves statement order.
func Validate(d *Deck, opts Options) []Problem {
	var probs []Problem
	errf := func(line int, format string, args ...any) {
		probs = append(probs, Problem{Severity: Error, Line: line, Detail: fmt.Sprintf(format, args...)})
	}
	warnf := func(line int, format string, args ...any) {
		probs = append(probs, Problem{Severity: Warning, Line: line, Detail: fmt.Sprintf(format, args...)})
	}

	if d.Name == "" {
		errf(0, "deck has no technology name")
	}
	if len(d.Layers) == 0 {
		errf(0, "deck declares no layers")
	}
	if len(d.Layers) > MaxLayers {
		errf(0, "deck declares %d layers; at most %d are supported", len(d.Layers), MaxLayers)
	}

	roles := map[string]bool{}
	for _, r := range opts.KnownRoles {
		roles[r] = true
	}
	layerNames := map[string]int{}
	cifNames := map[string]int{}
	for i := range d.Layers {
		l := &d.Layers[i]
		if prev, dup := layerNames[l.Name]; dup {
			errf(l.Line, "duplicate layer %q (first declared on line %d)", l.Name, prev)
		} else {
			layerNames[l.Name] = l.Line
		}
		if prev, dup := cifNames[l.CIF]; dup {
			errf(l.Line, "duplicate CIF code %q (first declared on line %d)", l.CIF, prev)
		} else {
			cifNames[l.CIF] = l.Line
		}
		if l.Role != "" && len(roles) > 0 && !roles[l.Role] {
			warnf(l.Line, "layer %q has unknown role %q (known: %v)", l.Name, l.Role, opts.KnownRoles)
		}
		// Device-dependent rules attach to roles, not names: a layer named
		// like a role but left untagged silently opts out of them (no
		// accidental-transistor or keepout checks), which is almost never
		// what the deck author meant.
		if l.Role == "" && roles[l.Name] {
			warnf(l.Line, "layer %q carries no role; device-dependent rules bind to roles, not names — did you mean role=%s?",
				l.Name, l.Name)
		}
	}

	// Interaction cells: every unordered pair at most once, and a silent
	// cell must carry its audit note. Declaring "space A B" and "space B A"
	// is the asymmetric-cell mistake: the matrix is unordered, so the second
	// statement would silently clobber the first.
	cells := map[[2]string]int{}
	for i := range d.Spaces {
		s := &d.Spaces[i]
		for _, name := range []string{s.A, s.B} {
			if _, ok := layerNames[name]; !ok {
				errf(s.Line, "space cell references unknown layer %q", name)
			}
		}
		key := [2]string{s.A, s.B}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if prev, dup := cells[key]; dup {
			errf(s.Line, "asymmetric or duplicate cell %s-%s (the pair is unordered; first declared on line %d)",
				s.A, s.B, prev)
		} else {
			cells[key] = s.Line
		}
		if s.DiffNet == 0 && s.SameNet == 0 && s.Note == "" {
			warnf(s.Line, "cell %s-%s checks nothing and has no audit note explaining why", s.A, s.B)
		}
	}

	// Geometric rule statements: referenced layers must exist and carry a
	// role. A role-less layer bears no geometry semantics the compiler
	// understands, so a width/area/enclose/overlap/extend rule on one is
	// almost certainly a typo'd layer name — reject it outright.
	ruleLayer := func(line int, stmt, name string) {
		l, ok := d.LayerByName(name)
		if !ok {
			errf(line, "%s rule references unknown layer %q", stmt, name)
			return
		}
		if l.Role == "" {
			errf(line, "%s rule on layer %q, which has no geometry-bearing role", stmt, name)
		}
	}
	widthSeen := map[string]int{}
	for i := range d.Widths {
		w := &d.Widths[i]
		ruleLayer(w.Line, "width", w.Layer)
		if prev, dup := widthSeen[w.Layer]; dup {
			errf(w.Line, "duplicate width rule for layer %q (first declared on line %d)", w.Layer, prev)
		} else {
			widthSeen[w.Layer] = w.Line
		}
	}
	areaSeen := map[string]int{}
	for i := range d.Areas {
		a := &d.Areas[i]
		ruleLayer(a.Line, "area", a.Layer)
		if prev, dup := areaSeen[a.Layer]; dup {
			errf(a.Line, "duplicate area rule for layer %q (first declared on line %d)", a.Layer, prev)
		} else {
			areaSeen[a.Layer] = a.Line
		}
	}
	crossSeen := map[[3]string]int{}
	for i := range d.Crosses {
		cr := &d.Crosses[i]
		ruleLayer(cr.Line, cr.Kind, cr.A)
		ruleLayer(cr.Line, cr.Kind, cr.B)
		if cr.A == cr.B {
			errf(cr.Line, "%s rule names layer %q twice; cross-layer rules relate two distinct layers", cr.Kind, cr.A)
		}
		key := [3]string{cr.Kind, cr.A, cr.B}
		if prev, dup := crossSeen[key]; dup {
			errf(cr.Line, "duplicate %s rule %s-%s (first declared on line %d)", cr.Kind, cr.A, cr.B, prev)
		} else {
			crossSeen[key] = cr.Line
		}
	}

	useRoles := roles
	if len(opts.KnownUseRoles) > 0 {
		useRoles = map[string]bool{}
		for _, r := range opts.KnownUseRoles {
			useRoles[r] = true
		}
	}
	classes := map[string]bool{}
	for _, c := range opts.KnownClasses {
		classes[c] = true
	}
	devTypes := map[string]int{}
	for i := range d.Devices {
		dev := &d.Devices[i]
		if prev, dup := devTypes[dev.Type]; dup {
			errf(dev.Line, "duplicate device type %q (first declared on line %d)", dev.Type, prev)
		} else {
			devTypes[dev.Type] = dev.Line
		}
		if len(classes) > 0 && !classes[dev.Class] {
			errf(dev.Line, "device %q has unknown class %q (known: %v)", dev.Type, dev.Class, opts.KnownClasses)
		}
		seenParam := map[string]bool{}
		for _, p := range dev.Params {
			if seenParam[p.Key] {
				errf(dev.Line, "device %q repeats param %q", dev.Type, p.Key)
			}
			seenParam[p.Key] = true
		}
		seenUse := map[string]bool{}
		for _, u := range dev.Uses {
			if seenUse[u.Role] {
				errf(dev.Line, "device %q repeats use role %q", dev.Type, u.Role)
			}
			seenUse[u.Role] = true
			if _, ok := layerNames[u.Layer]; !ok {
				errf(dev.Line, "device %q binds role %q to unknown layer %q", dev.Type, u.Role, u.Layer)
			}
			if len(useRoles) > 0 && !useRoles[u.Role] {
				warnf(dev.Line, "device %q uses unknown role %q", dev.Type, u.Role)
			}
		}
	}

	// Audit-note discipline, extended to whole layers: a layer that ends up
	// with zero rules of any class — no per-element width/space attribute,
	// no interaction cell that checks anything, no geometric rule, and no
	// device binding — is dead weight in the deck and deserves a look.
	ruled := map[string]bool{}
	for i := range d.Layers {
		if l := &d.Layers[i]; l.Width > 0 || l.Space > 0 {
			ruled[l.Name] = true
		}
	}
	for i := range d.Spaces {
		if s := &d.Spaces[i]; s.DiffNet > 0 || s.SameNet > 0 {
			ruled[s.A], ruled[s.B] = true, true
		}
	}
	for i := range d.Widths {
		ruled[d.Widths[i].Layer] = true
	}
	for i := range d.Areas {
		ruled[d.Areas[i].Layer] = true
	}
	for i := range d.Crosses {
		ruled[d.Crosses[i].A], ruled[d.Crosses[i].B] = true, true
	}
	for i := range d.Devices {
		for _, u := range d.Devices[i].Uses {
			ruled[u.Layer] = true
		}
	}
	for i := range d.Layers {
		if l := &d.Layers[i]; !ruled[l.Name] {
			warnf(l.Line, "layer %q has zero rules of any class; give it a rule or document why it is unchecked", l.Name)
		}
	}

	seenRail := map[string]bool{}
	for _, kind := range []struct {
		nets []string
		what string
	}{{d.PowerNets, "power"}, {d.GroundNets, "ground"}} {
		for _, n := range kind.nets {
			if seenRail[n] {
				errf(0, "rail net %q declared more than once", n)
			}
			seenRail[n] = true
		}
	}
	return probs
}
