package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle with X1 <= X2 and Y1 <= Y2.
// The rectangle is the closed region [X1,X2]×[Y1,Y2]; a rect with X1==X2 or
// Y1==Y2 is degenerate (zero area) and is treated as empty by the region
// algebra but may still be used for geometric queries.
type Rect struct {
	X1, Y1, X2, Y2 int64
}

// R constructs a normalized Rect from two corner coordinates in any order.
func R(x1, y1, x2, y2 int64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

// RectCenteredAt returns the w×h rect centered at p. Odd extents are rounded
// toward the lower-left so the result stays on the integer lattice.
func RectCenteredAt(p Point, w, h int64) Rect {
	return Rect{p.X - w/2, p.Y - h/2, p.X - w/2 + w, p.Y - h/2 + h}
}

// Empty reports whether r encloses zero area.
func (r Rect) Empty() bool { return r.X1 >= r.X2 || r.Y1 >= r.Y2 }

// W returns the width (X extent) of r.
func (r Rect) W() int64 { return r.X2 - r.X1 }

// H returns the height (Y extent) of r.
func (r Rect) H() int64 { return r.Y2 - r.Y1 }

// Area returns the area of r, 0 if degenerate.
func (r Rect) Area() int64 {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// MinSide returns min(W,H) — the orthogonal "width" of the rectangle in the
// design-rule sense.
func (r Rect) MinSide() int64 { return minInt64(r.W(), r.H()) }

// Center returns the center point of r (rounded toward the lower-left).
func (r Rect) Center() Point { return Point{(r.X1 + r.X2) / 2, (r.Y1 + r.Y2) / 2} }

// Canon returns r normalized so X1<=X2 and Y1<=Y2.
func (r Rect) Canon() Rect { return R(r.X1, r.Y1, r.X2, r.Y2) }

// Translate returns r moved by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.X1 + d.X, r.Y1 + d.Y, r.X2 + d.X, r.Y2 + d.Y}
}

// Expand returns r grown by d on every side (shrunk if d<0). The result may
// be empty after shrinking.
func (r Rect) Expand(d int64) Rect {
	return Rect{r.X1 - d, r.Y1 - d, r.X2 + d, r.Y2 + d}
}

// ExpandXY returns r grown by dx horizontally and dy vertically.
func (r Rect) ExpandXY(dx, dy int64) Rect {
	return Rect{r.X1 - dx, r.Y1 - dy, r.X2 + dx, r.Y2 + dy}
}

// Intersect returns the intersection of r and s; the result is normalized
// and may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		maxInt64(r.X1, s.X1), maxInt64(r.Y1, s.Y1),
		minInt64(r.X2, s.X2), minInt64(r.Y2, s.Y2),
	}
	if out.X1 > out.X2 {
		out.X2 = out.X1
	}
	if out.Y1 > out.Y2 {
		out.Y2 = out.Y1
	}
	return out
}

// Union returns the bounding box of r and s. An empty rect is the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		minInt64(r.X1, s.X1), minInt64(r.Y1, s.Y1),
		maxInt64(r.X2, s.X2), maxInt64(r.Y2, s.Y2),
	}
}

// Overlaps reports whether r and s share interior area.
func (r Rect) Overlaps(s Rect) bool {
	return r.X1 < s.X2 && s.X1 < r.X2 && r.Y1 < s.Y2 && s.Y1 < r.Y2
}

// Touches reports whether the closed rects r and s intersect (shared area,
// edge, or corner).
func (r Rect) Touches(s Rect) bool {
	return r.X1 <= s.X2 && s.X1 <= r.X2 && r.Y1 <= s.Y2 && s.Y1 <= r.Y2
}

// Contains reports whether p lies in the closed rect r.
func (r Rect) Contains(p Point) bool {
	return r.X1 <= p.X && p.X <= r.X2 && r.Y1 <= p.Y && p.Y <= r.Y2
}

// ContainsRect reports whether s lies entirely within the closed rect r.
func (r Rect) ContainsRect(s Rect) bool {
	return r.X1 <= s.X1 && s.X2 <= r.X2 && r.Y1 <= s.Y1 && s.Y2 <= r.Y2
}

// GapX returns the horizontal clearance between r and s (0 if the X
// projections overlap or touch).
func (r Rect) GapX(s Rect) int64 {
	if g := s.X1 - r.X2; g > 0 {
		return g
	}
	if g := r.X1 - s.X2; g > 0 {
		return g
	}
	return 0
}

// GapY returns the vertical clearance between r and s (0 if the Y
// projections overlap or touch).
func (r Rect) GapY(s Rect) int64 {
	if g := s.Y1 - r.Y2; g > 0 {
		return g
	}
	if g := r.Y1 - s.Y2; g > 0 {
		return g
	}
	return 0
}

// EuclideanDist returns the minimum Euclidean distance between the closed
// rects r and s (0 if they touch or overlap).
func (r Rect) EuclideanDist(s Rect) float64 {
	dx, dy := float64(r.GapX(s)), float64(r.GapY(s))
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return math.Hypot(dx, dy)
}

// OrthogonalDist returns the L∞ separation max(gapX, gapY) between r and s.
// This is the metric implied by orthogonal expand-check-overlap: two rects
// violate an orthogonal spacing rule of s when OrthogonalDist < s even if
// their Euclidean separation is larger (the Figure 4 corner pathology).
func (r Rect) OrthogonalDist(s Rect) int64 {
	return maxInt64(r.GapX(s), r.GapY(s))
}

// ClosestPoints returns a pair of points, one on each rect boundary (or
// interior if overlapping), achieving the minimum Euclidean distance. This is
// the "line of closest approach" of the paper's 2-D process model. When the
// rects' projections overlap on an axis, the points sit at the middle of
// the shared interval — for facing parallel edges that is where the
// exposure function along the line is maximal.
func (r Rect) ClosestPoints(s Rect) (Point, Point) {
	var ax, bx int64
	switch {
	case r.X2 < s.X1:
		ax, bx = r.X2, s.X1
	case s.X2 < r.X1:
		ax, bx = r.X1, s.X2
	default:
		m := (maxInt64(r.X1, s.X1) + minInt64(r.X2, s.X2)) / 2
		ax, bx = m, m
	}
	var ay, by int64
	switch {
	case r.Y2 < s.Y1:
		ay, by = r.Y2, s.Y1
	case s.Y2 < r.Y1:
		ay, by = r.Y1, s.Y2
	default:
		m := (maxInt64(r.Y1, s.Y1) + minInt64(r.Y2, s.Y2)) / 2
		ay, by = m, m
	}
	return Point{ax, ay}, Point{bx, by}
}

// DistToPoint returns the Euclidean distance from p to the closed rect r
// (0 if p is inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := maxInt64(maxInt64(r.X1-p.X, p.X-r.X2), 0)
	dy := maxInt64(maxInt64(r.Y1-p.Y, p.Y-r.Y2), 0)
	if dx == 0 {
		return float64(dy)
	}
	if dy == 0 {
		return float64(dx)
	}
	return math.Hypot(float64(dx), float64(dy))
}

// Corners returns the four corners of r counterclockwise from the
// lower-left.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.X1, r.Y1}, {r.X2, r.Y1}, {r.X2, r.Y2}, {r.X1, r.Y2},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", r.X1, r.Y1, r.X2, r.Y2)
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
