package tech

import "testing"

func TestNMOSLayers(t *testing.T) {
	tc := NMOS()
	if tc.NumLayers() != 6 {
		t.Fatalf("layers = %d", tc.NumLayers())
	}
	d, ok := tc.LayerByName(NMOSDiff)
	if !ok {
		t.Fatal("diffusion missing")
	}
	if got := tc.Layer(d); got.CIF != "ND" || got.MinWidth != 500 {
		t.Fatalf("diffusion = %+v", got)
	}
	if id, ok := tc.LayerByCIF("NM"); !ok || tc.Layer(id).Name != NMOSMetal {
		t.Fatal("CIF lookup failed")
	}
	if _, ok := tc.LayerByCIF("XX"); ok {
		t.Fatal("unknown CIF layer resolved")
	}
}

func TestSpacingMatrixSymmetry(t *testing.T) {
	tc := NMOS()
	d, _ := tc.LayerByName(NMOSDiff)
	p, _ := tc.LayerByName(NMOSPoly)
	if tc.Spacing(d, p) != tc.Spacing(p, d) {
		t.Fatal("spacing must be order-independent")
	}
	if got := tc.Spacing(d, p).DiffNet; got != 250 {
		t.Fatalf("D-P diff-net = %d, want 1λ", got)
	}
	// Unset cells return the zero rule.
	m, _ := tc.LayerByName(NMOSMetal)
	if r := tc.Spacing(d, m); r.DiffNet != 0 || r.SameNet != 0 {
		t.Fatalf("D-M should have no rule: %+v", r)
	}
}

func TestMaxSpacing(t *testing.T) {
	tc := NMOS()
	if got := tc.MaxSpacing(); got != 750 {
		t.Fatalf("max spacing = %d, want 3λ", got)
	}
}

func TestInteractionMatrixAudit(t *testing.T) {
	// The paper's Figure 12 point: most cells require no check.
	tc := NMOS()
	cells := tc.InteractionMatrix()
	want := 6 * 7 / 2
	if len(cells) != want {
		t.Fatalf("matrix cells = %d, want %d", len(cells), want)
	}
	checked := 0
	for _, c := range cells {
		if c.Checked {
			checked++
		}
	}
	if checked >= len(cells)/2 {
		t.Fatalf("checked cells = %d of %d; the majority should be skips", checked, len(cells))
	}
	// Same-net subcases are rarer still.
	sameNet := 0
	for _, c := range cells {
		if c.Rule.SameNet > 0 {
			sameNet++
		}
	}
	if sameNet >= checked {
		t.Fatalf("same-net cells = %d, checked = %d", sameNet, checked)
	}
}

func TestDeviceRegistry(t *testing.T) {
	tc := NMOS()
	spec, ok := tc.Device(DevNMOSEnh)
	if !ok || spec.Class != "mos-transistor" {
		t.Fatalf("enh spec = %+v %v", spec, ok)
	}
	if spec.Params["gate-extension"] != 500 {
		t.Fatalf("gate extension = %d", spec.Params["gate-extension"])
	}
	if _, ok := tc.Device("nope"); ok {
		t.Fatal("unknown device resolved")
	}
	types := tc.DeviceTypes()
	if len(types) < 7 {
		t.Fatalf("device types = %v", types)
	}
	for i := 1; i < len(types); i++ {
		if types[i-1] >= types[i] {
			t.Fatal("device types not sorted")
		}
	}
}

func TestRails(t *testing.T) {
	tc := NMOS()
	if !tc.IsPower("VDD") || !tc.IsPower("vdd") {
		t.Fatal("VDD not power")
	}
	if !tc.IsGround("GND") || !tc.IsGround("vss") {
		t.Fatal("GND not ground")
	}
	if tc.IsRail("out") {
		t.Fatal("out is not a rail")
	}
}

func TestBipolarTech(t *testing.T) {
	tc := Bipolar()
	base, ok := tc.LayerByName(BipBase)
	if !ok {
		t.Fatal("base missing")
	}
	iso, _ := tc.LayerByName(BipIso)
	r := tc.Spacing(base, iso)
	if r.DiffNet != 200 || r.SameNet != 200 {
		t.Fatalf("base-iso rule = %+v", r)
	}
	if spec, ok := tc.Device(DevNPN); !ok || spec.Class != "npn-transistor" {
		t.Fatalf("npn spec = %+v %v", spec, ok)
	}
	if spec, ok := tc.Device(DevResistorBase); !ok || spec.Class != "resistor" {
		t.Fatalf("base resistor spec = %+v %v", spec, ok)
	}
}

func TestPairNormalization(t *testing.T) {
	if Pair(3, 1) != Pair(1, 3) {
		t.Fatal("Pair must normalize order")
	}
	if p := Pair(2, 2); p.A != 2 || p.B != 2 {
		t.Fatal("self pair")
	}
}
