package geom

// Rule kernels for the deck's single-layer and cross-layer rule classes
// (width, area, enclosure, overlap, extension), built on the zero-alloc
// region engine. Each kernel returns violation geometry — one bounding
// rect per violating connected sliver — not just a boolean, so the
// checker can report where a rule failed, in the same shape
// WidthViolations does.
//
// All kernels are exact for Manhattan geometry on the integer grid. The
// margin forms (enclosure, extension) need no coordinate doubling: with
// half-open rects, "outer extends at least m beyond inner" is exactly
// "inner ⊆ Erode(outer, m)" for integer m.

// EncloseViolations returns the parts of inner that outer fails to
// enclose by margin m on all sides: the components of
// inner − Erode(outer, m). With m ≤ 0 the rule degenerates to plain
// containment (inner − outer). A layout passes iff the result is empty.
func EncloseViolations(inner, outer Region, m int64) []Rect {
	if inner.Empty() {
		return nil
	}
	var def Region
	if m <= 0 {
		SubtractInto(&def, inner, outer)
	} else {
		SubtractInto(&def, inner, outer.Erode(m))
	}
	return componentBounds(def)
}

// ComponentAreaViolations returns the connected components of the region
// whose area is below minArea, one bounding rect per offending
// component. Area rules apply per island: a wide plate and a tiny
// isolated stub are judged separately even on the same layer.
func ComponentAreaViolations(r Region, minArea int64) []Rect {
	if minArea <= 0 || r.Empty() {
		return nil
	}
	var out []Rect
	for _, c := range r.Components() {
		if c.Area() < minArea {
			out = append(out, c.Bounds())
		}
	}
	return out
}

// OverlapViolations returns the places where regions a and b overlap by
// less than m in the orthogonal sense: the width violations of a ∩ b at
// width m. Disjoint regions trivially pass — the rule constrains the
// shape of an overlap, not its existence.
func OverlapViolations(a, b Region, m int64) []Rect {
	if m <= 0 || a.Empty() || b.Empty() {
		return nil
	}
	var c Region
	IntersectInto(&c, a, b)
	if c.Empty() {
		return nil
	}
	return WidthViolations(c, m)
}

// ExtendViolations returns the places where a fails to extend at least d
// past b around their crossing, in either axis direction — the
// gate-extension check of Figure 8, generalized. With C = a ∩ b, the
// required extension is the directed dilation of C by d along each axis,
// minus b itself (where b continues there is nothing to extend past);
// any part of that requirement not covered by a is a violation.
func ExtendViolations(a, b Region, d int64) []Rect {
	if d <= 0 || a.Empty() || b.Empty() {
		return nil
	}
	var c Region
	IntersectInto(&c, a, b)
	if c.Empty() {
		return nil
	}
	var need Region
	UnionInto(&need, c.DilateXY(d, 0), c.DilateXY(0, d))
	SubtractInto(&need, need, b)
	if need.Empty() {
		return nil
	}
	SubtractInto(&need, need, a)
	return componentBounds(need)
}

// componentBounds returns one bounding rect per connected component of
// the region, or nil for an empty region.
func componentBounds(r Region) []Rect {
	if r.Empty() {
		return nil
	}
	comps := r.Components()
	out := make([]Rect, 0, len(comps))
	for _, c := range comps {
		out = append(out, c.Bounds())
	}
	return out
}
