package deck

import (
	"fmt"
	"strings"
)

// Write renders a deck in canonical text form: statements in section order
// (tech, layers, spaces, widths, areas, cross rules, devices, rails),
// dimensions as λ-expressions
// whenever they are whole or half multiples of lambda, and notes quoted.
// Write∘Parse is idempotent: parsing the output reproduces the same Deck,
// and writing it again reproduces the same text — the round-trip property
// the deck tests and fuzzer lock.
func Write(d *Deck) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tech %s", name(d.Name))
	if d.Lambda > 0 {
		fmt.Fprintf(&b, " lambda=%d", d.Lambda)
	}
	b.WriteByte('\n')

	if len(d.Layers) > 0 {
		b.WriteByte('\n')
	}
	for i := range d.Layers {
		l := &d.Layers[i]
		fmt.Fprintf(&b, "layer %s cif=%s", name(l.Name), val(l.CIF))
		if l.Role != "" {
			fmt.Fprintf(&b, " role=%s", val(l.Role))
		}
		if l.Width > 0 {
			fmt.Fprintf(&b, " width=%s", d.dim(l.Width))
		}
		if l.Space > 0 {
			fmt.Fprintf(&b, " space=%s", d.dim(l.Space))
		}
		b.WriteByte('\n')
	}

	if len(d.Spaces) > 0 {
		b.WriteByte('\n')
	}
	for i := range d.Spaces {
		s := &d.Spaces[i]
		fmt.Fprintf(&b, "space %s %s", name(s.A), name(s.B))
		if s.DiffNet > 0 {
			fmt.Fprintf(&b, " diff=%s", d.dim(s.DiffNet))
		}
		if s.SameNet > 0 {
			fmt.Fprintf(&b, " same=%s", d.dim(s.SameNet))
		}
		if s.ExemptRelated {
			b.WriteString(" exempt-related")
		}
		if s.Note != "" {
			fmt.Fprintf(&b, " note=%s", quote(s.Note))
		}
		b.WriteByte('\n')
	}

	if len(d.Widths) > 0 {
		b.WriteByte('\n')
	}
	for i := range d.Widths {
		w := &d.Widths[i]
		fmt.Fprintf(&b, "width %s %s", name(w.Layer), d.dim(w.Min))
		if w.Note != "" {
			fmt.Fprintf(&b, " note=%s", quote(w.Note))
		}
		b.WriteByte('\n')
	}

	if len(d.Areas) > 0 {
		b.WriteByte('\n')
	}
	for i := range d.Areas {
		ar := &d.Areas[i]
		fmt.Fprintf(&b, "area %s %s", name(ar.Layer), d.dimArea(ar.MinArea))
		if ar.Note != "" {
			fmt.Fprintf(&b, " note=%s", quote(ar.Note))
		}
		b.WriteByte('\n')
	}

	if len(d.Crosses) > 0 {
		b.WriteByte('\n')
	}
	for i := range d.Crosses {
		cr := &d.Crosses[i]
		fmt.Fprintf(&b, "%s %s %s %s", cr.Kind, name(cr.A), name(cr.B), d.dim(cr.Margin))
		if cr.Note != "" {
			fmt.Fprintf(&b, " note=%s", quote(cr.Note))
		}
		b.WriteByte('\n')
	}

	for i := range d.Devices {
		dev := &d.Devices[i]
		b.WriteByte('\n')
		fmt.Fprintf(&b, "device %s class=%s", name(dev.Type), val(dev.Class))
		if dev.Depletion {
			b.WriteString(" depletion")
		}
		if dev.Describe != "" {
			fmt.Fprintf(&b, " describe=%s", quote(dev.Describe))
		}
		b.WriteByte('\n')
		for _, u := range dev.Uses {
			fmt.Fprintf(&b, "  use %s=%s\n", u.Role, val(u.Layer))
		}
		for _, p := range dev.Params {
			fmt.Fprintf(&b, "  param %s=%s\n", p.Key, d.dim(p.Value))
		}
	}

	if len(d.PowerNets) > 0 || len(d.GroundNets) > 0 {
		b.WriteByte('\n')
	}
	if len(d.PowerNets) > 0 {
		fmt.Fprintf(&b, "rail power %s\n", names(d.PowerNets))
	}
	if len(d.GroundNets) > 0 {
		fmt.Fprintf(&b, "rail ground %s\n", names(d.GroundNets))
	}
	return b.String()
}

// dim renders a dimension canonically: "<n>L" or "<n>.5L" when it is a
// whole or half multiple of lambda, the raw centimicron integer otherwise.
func (d *Deck) dim(v int64) string {
	if d.Lambda > 0 && v > 0 {
		if v%d.Lambda == 0 {
			return fmt.Sprintf("%dL", v/d.Lambda)
		}
		if d.Lambda%2 == 0 && v%(d.Lambda/2) == 0 {
			return fmt.Sprintf("%d.5L", v/d.Lambda)
		}
	}
	return fmt.Sprintf("%d", v)
}

// dimArea renders an area dimension canonically: "<n>L" when it is a
// whole multiple of λ² (and λ² itself is representable), the raw
// square-centimicron integer otherwise.
func (d *Deck) dimArea(v int64) string {
	if d.Lambda > 0 && v > 0 && d.Lambda <= MaxDim/d.Lambda {
		if sq := d.Lambda * d.Lambda; v%sq == 0 {
			return fmt.Sprintf("%dL", v/sq)
		}
	}
	return fmt.Sprintf("%d", v)
}

// sanitize drops the characters the format cannot represent in any
// position: the quote delimiter itself, newlines (a statement runs to end
// of line), and carriage returns (whitespace outside quotes). Strings
// produced by the parser never contain '"' or '\n'; strings arriving from
// Go code (tech.ToDeck of an API-built technology) are clipped so the
// written deck always reparses. Sanitizing happens before the quoting
// decision, keeping the writer idempotent.
func sanitize(s string) string {
	if !strings.ContainsAny(s, "\"\n\r") {
		return s
	}
	return strings.Map(func(r rune) rune {
		if r == '"' || r == '\n' || r == '\r' {
			return -1
		}
		return r
	}, s)
}

// quote wraps a string in raw double quotes (the format has no escape
// sequences — a quoted span simply runs to the next '"').
func quote(s string) string { return `"` + sanitize(s) + `"` }

// name renders a bare-position token (a layer or device name), quoting it
// when the bare form would not re-tokenize to the same text.
func name(s string) string {
	if t := sanitize(s); t == "" || strings.ContainsAny(t, " \t#=") {
		return quote(t)
	} else {
		return t
	}
}

// val renders an attribute value, quoting when it contains separators.
// ('=' needs no quote: key=value splits at the first '=' only.)
func val(s string) string {
	if t := sanitize(s); strings.ContainsAny(t, " \t#") {
		return quote(t)
	} else {
		return t
	}
}

// names renders a rail net list.
func names(ns []string) string {
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = name(n)
	}
	return strings.Join(out, " ")
}
