package main

import (
	"encoding/json"
	"os"

	"repro/internal/core"
	"repro/internal/server"
)

// The -json schema is the check service's wire report (internal/server):
// one stable machine-readable projection of core.Report shared by the CLI
// and the daemon, so fingerprints and fields line up between an offline
// run and a served session. Field names are part of the output contract;
// extend, don't rename.

func printJSON(rep *core.Report, eng *core.Engine) error {
	return printWireJSON(server.BuildReport(rep, eng))
}

func printWireJSON(rep *server.Report) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
