package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/layout"
)

// Client drives a running dicheckd over HTTP. It is the library behind
// `dicheck -serve` and the integration tests; methods map one-to-one onto
// the daemon's endpoints.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTPClient defaults to a client with a 5-minute timeout (cold checks
	// of large designs are slow on small machines).
	HTTPClient *http.Client
}

// NewClient creates a client for the daemon at base.
func NewClient(base string) *Client {
	return &Client{
		BaseURL:    base,
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// Create opens a session and returns its id plus the initial cold report.
func (c *Client) Create(req CreateRequest) (*CreateResponse, error) {
	var resp CreateResponse
	if err := c.do(http.MethodPost, "/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// List returns every live session.
func (c *Client) List() ([]SessionInfo, error) {
	var resp []SessionInfo
	if err := c.do(http.MethodGet, "/sessions", nil, &resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// FindByName returns the id of the live session with the given name
// ("" , false when absent; the lowest id wins if names collide).
func (c *Client) FindByName(name string) (string, bool, error) {
	infos, err := c.List()
	if err != nil {
		return "", false, err
	}
	for _, info := range infos {
		if info.Name == name {
			return info.ID, true, nil
		}
	}
	return "", false, nil
}

// Edit applies one edit batch to a session.
func (c *Client) Edit(id string, edits []layout.Edit) (*EditResponse, error) {
	var resp EditResponse
	if err := c.do(http.MethodPost, "/sessions/"+id+"/edits", EditRequest{Edits: edits}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Report fetches the session's current report, forcing any pending edits
// through a recheck first.
func (c *Client) Report(id string) (*Report, error) {
	var resp Report
	if err := c.do(http.MethodGet, "/sessions/"+id+"/report", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the session's service and engine counters.
func (c *Client) Stats(id string) (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(http.MethodGet, "/sessions/"+id+"/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Delete removes a session.
func (c *Client) Delete(id string) error {
	return c.do(http.MethodDelete, "/sessions/"+id, nil, nil)
}

// do runs one JSON round trip. Non-2xx responses decode the daemon's
// error payload into the returned error.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s %s: %s (%s)", method, path, eb.Error, resp.Status)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}
