package device

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/tech"
)

// analyzeContact models simple metal-to-lower-layer contacts. All layers of
// a contact are fused into a single node; the internal rules are cut size,
// metal enclosure, and lower-layer enclosure. The lower layer is whichever
// non-metal, non-cut conductor the symbol contains geometry on.
func analyzeContact(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem) {
	var probs []Problem
	metalID, cutID := contactLayers(tc, spec)
	metal := sym.LayerRegion(metalID)
	cut := sym.LayerRegion(cutID)

	// Find the lower conductor: the explicit "lower" role binding when the
	// deck declares one, otherwise the layer (other than metal/cut) with
	// geometry in the symbol.
	lowerID := tech.NoLayer
	if _, bound := spec.Layers["lower"]; bound {
		lowerID = roleID(tc, spec, "lower", "")
	} else {
		for _, l := range tc.Layers() {
			if l.ID == metalID || l.ID == cutID {
				continue
			}
			if !sym.LayerRegion(l.ID).Empty() {
				lowerID = l.ID
				break
			}
		}
	}
	info := &Info{SpacingExemptSameNet: true}

	if cut.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.CUT.MISSING", Detail: "contact symbol has no cut", Where: sym.Bounds(),
		})
		return info, probs
	}
	if cs := spec.Params["cut-size"]; cs > 0 {
		for _, v := range geom.WidthViolations(cut, cs) {
			probs = append(probs, Problem{
				Rule:   "DEV.CUT.SIZE",
				Detail: fmt.Sprintf("contact cut narrower than %d", cs),
				Where:  v,
			})
		}
	}
	if me := spec.Params["metal-enclosure"]; me > 0 {
		if metal.Empty() {
			probs = append(probs, Problem{
				Rule: "DEV.CUT.METAL", Detail: "contact has no metal", Where: cut.Bounds(),
			})
		} else {
			probs = requireCovered(cut.Dilate(me), metal, "DEV.CUT.METAL",
				fmt.Sprintf("metal must enclose the cut by %d", me), probs)
		}
	}
	if le := spec.Params["lower-enclosure"]; le > 0 {
		if lowerID == tech.NoLayer {
			probs = append(probs, Problem{
				Rule: "DEV.CUT.LOWER", Detail: "contact has no lower conductor", Where: cut.Bounds(),
			})
		} else {
			lower := sym.LayerRegion(lowerID)
			probs = requireCovered(cut.Dilate(le), lower, "DEV.CUT.LOWER",
				fmt.Sprintf("%s must enclose the cut by %d", tc.Layer(lowerID).Name, le), probs)
		}
	}

	// Terminals: every conductor fused into node 0.
	if !metal.Empty() {
		info.Terminals = append(info.Terminals, Terminal{Name: "m", Layer: metalID, Reg: metal, Node: 0})
	}
	if lowerID != tech.NoLayer {
		info.Terminals = append(info.Terminals, Terminal{
			Name: "l", Layer: lowerID, Reg: sym.LayerRegion(lowerID), Node: 0,
		})
	}
	return info, probs
}

// analyzeButting models the poly-diffusion butting contact of Figure 7: a
// legal structure that a naive "no contact may touch poly∩diffusion" rule
// would flag. Poly and diffusion overlap, the cut covers the overlap, and
// metal covers the cut; everything is one node.
func analyzeButting(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem) {
	var probs []Problem
	poly := roleRegion(sym, tc, spec, tech.RolePoly, tech.NMOSPoly)
	diff := roleRegion(sym, tc, spec, tech.RoleDiffusion, tech.NMOSDiff)
	cut := roleRegion(sym, tc, spec, tech.RoleContact, tech.NMOSContact)
	metal := roleRegion(sym, tc, spec, tech.RoleMetal, tech.NMOSMetal)
	info := &Info{SpacingExemptSameNet: true}

	overlap := poly.Intersect(diff)
	if overlap.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.BUTT.OVERLAP", Detail: "butting contact needs poly-diffusion overlap", Where: sym.Bounds(),
		})
		return info, probs
	}
	if ov := spec.Params["overlap"]; ov > 0 {
		if !geom.MinWidthOK(overlap, ov) {
			probs = append(probs, Problem{
				Rule:   "DEV.BUTT.OVERLAP",
				Detail: fmt.Sprintf("poly-diffusion overlap narrower than %d", ov),
				Where:  overlap.Bounds(),
			})
		}
	}
	if cut.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.BUTT.CUT", Detail: "butting contact has no cut", Where: overlap.Bounds(),
		})
	} else {
		probs = requireCovered(overlap, cut, "DEV.BUTT.CUT",
			"cut must cover the poly-diffusion overlap", probs)
	}
	if me := spec.Params["metal-enclosure"]; me > 0 && !cut.Empty() {
		probs = requireCovered(cut.Dilate(me), metal, "DEV.BUTT.METAL",
			fmt.Sprintf("metal must enclose the cut by %d", me), probs)
	}

	for _, t := range []struct {
		name string
		role string
		lay  string
		reg  geom.Region
	}{
		{"p", tech.RolePoly, tech.NMOSPoly, poly},
		{"d", tech.RoleDiffusion, tech.NMOSDiff, diff},
		{"m", tech.RoleMetal, tech.NMOSMetal, metal},
	} {
		if !t.reg.Empty() {
			info.Terminals = append(info.Terminals, Terminal{
				Name: t.name, Layer: roleID(tc, spec, t.role, t.lay), Reg: t.reg, Node: 0,
			})
		}
	}
	return info, probs
}

// analyzeBuried models the buried contact: poly and diffusion joined under
// a buried window — the paper's example of an "overlap of overlap" rule.
// The buried window must enclose the poly∩diffusion overlap.
func analyzeBuried(sym *layout.Symbol, spec tech.DeviceSpec, tc *tech.Technology) (*Info, []Problem) {
	var probs []Problem
	poly := roleRegion(sym, tc, spec, tech.RolePoly, tech.NMOSPoly)
	diff := roleRegion(sym, tc, spec, tech.RoleDiffusion, tech.NMOSDiff)
	buried := roleRegion(sym, tc, spec, tech.RoleBuried, tech.NMOSBuried)
	info := &Info{SpacingExemptSameNet: true}

	overlap := poly.Intersect(diff)
	if overlap.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.BURIED.OVERLAP", Detail: "buried contact needs poly-diffusion overlap", Where: sym.Bounds(),
		})
		return info, probs
	}
	if buried.Empty() {
		probs = append(probs, Problem{
			Rule: "DEV.BURIED.WINDOW", Detail: "buried contact has no buried window", Where: overlap.Bounds(),
		})
	} else if bo := spec.Params["buried-overlap"]; bo > 0 {
		probs = requireCovered(overlap.Dilate(bo), buried, "DEV.BURIED.WINDOW",
			fmt.Sprintf("buried window must enclose the overlap by %d", bo), probs)
	}
	if !poly.Empty() {
		info.Terminals = append(info.Terminals, Terminal{
			Name: "p", Layer: roleID(tc, spec, tech.RolePoly, tech.NMOSPoly), Reg: poly, Node: 0,
		})
	}
	if !diff.Empty() {
		info.Terminals = append(info.Terminals, Terminal{
			Name: "d", Layer: roleID(tc, spec, tech.RoleDiffusion, tech.NMOSDiff), Reg: diff, Node: 0,
		})
	}
	return info, probs
}

// contactLayers resolves the metal and cut layers through the device's
// role bindings, the technology's role tags, or the legacy layer names.
func contactLayers(tc *tech.Technology, spec tech.DeviceSpec) (metal, cut tech.LayerID) {
	metal = roleID(tc, spec, tech.RoleMetal, tech.NMOSMetal)
	cut = roleID(tc, spec, tech.RoleContact, tech.NMOSContact)
	return metal, cut
}
